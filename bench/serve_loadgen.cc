// Load generator for the multi-stream serving runtime (ROADMAP item 2):
// an open-loop Poisson-plus-burst arrival process over N sessions,
// reporting p50/p95/p99 per-step latency (from the telemetry histogram
// the serve layer populates), steady-state throughput, sessions/core, and
// a within-run multiplex-efficiency ratio. tools/bench.sh runs this as
// the SLO regression gate and folds the JSON into BENCH_PR7.json.
//
// Three phases:
//   1. Calibrate: one session, synchronous runtime — the single-stream
//      straight-line step rate this host can do.
//   2. Load: N sessions on W workers, arrivals scheduled open-loop at
//      `utilization` x the calibrated rate, with periodic burst windows
//      at `burst_factor` x the base rate. Latency percentiles come from
//      the "serve.step.latency_seconds" histogram.
//   3. Saturation: offer round-robin as fast as possible; the achieved
//      rate over the calibrated rate is the multiplex efficiency (1.0 =
//      the serve layer adds no overhead on this core count).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "common/timer.h"
#include "core/streaming_faction.h"
#include "data/dataset.h"
#include "serve/serve_runtime.h"
#include "serve/session.h"
#include "stream/trace.h"

namespace faction {
namespace {

struct LoadgenOptions {
  int workers = 2;
  std::size_t sessions = 64;
  double duration_seconds = 3.0;
  /// Offered load as a fraction of the calibrated single-stream rate.
  double utilization = 0.6;
  double burst_factor = 4.0;
  /// Fraction of each 0.5 s window spent in a burst.
  double burst_fraction = 0.1;
  double saturation_seconds = 1.0;
  std::uint64_t seed = 1;
  /// Per-session density forgetting (DESIGN.md §15): sliding window over
  /// each session's estimator (0 = off) and per-label decay (1 = off).
  std::size_t density_window = 0;
  double density_decay = 1.0;
  std::string out;    // JSON report path ("" = stdout only)
  std::string trace;  // run trace path ("" = none)
};

StreamingFactionConfig SessionConfig(const LoadgenOptions& options,
                                     std::uint64_t seed) {
  StreamingFactionConfig config;
  config.model.input_dim = 6;
  config.model.hidden_dims = {8};
  config.model.num_classes = 2;
  config.train.epochs = 2;
  config.train.batch_size = 16;
  config.warm_start = 12;
  config.burn_in = 6;
  config.refit_interval = 20;
  config.density_window = options.density_window;
  config.density_decay = options.density_decay;
  config.seed = seed;
  return config;
}

std::vector<Example> MakeStream(std::size_t n, std::size_t dim,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Example> stream(n);
  for (std::size_t i = 0; i < n; ++i) {
    Example& ex = stream[i];
    ex.label = rng.Bernoulli(0.5) ? 1 : 0;
    ex.sensitive = rng.Bernoulli(0.5) ? 1 : -1;
    ex.environment = 0;
    ex.x.resize(dim);
    const double center = ex.label == 1 ? 1.5 : -1.5;
    const double shift = ex.sensitive == 1 ? 0.4 : -0.4;
    for (std::size_t d = 0; d < dim; ++d) {
      ex.x[d] = rng.Gaussian(center + shift, 1.0);
    }
  }
  return stream;
}

/// Percentile from the fixed log-spaced telemetry bucketing: find the
/// bucket where the cumulative count crosses q, interpolate linearly
/// within its [lower, upper) bounds. Bucket slot i in [1, kNumBuckets]
/// spans [kFirstBound * 2^(i-1), kFirstBound * 2^i).
double HistogramPercentile(const Telemetry::HistogramSnapshot& snap,
                           double q) {
  if (snap.count == 0) return 0.0;
  const double target = q * static_cast<double>(snap.count);
  double cumulative = 0.0;
  for (std::size_t slot = 0; slot < snap.buckets.size(); ++slot) {
    const double in_bucket = static_cast<double>(snap.buckets[slot]);
    if (cumulative + in_bucket < target) {
      cumulative += in_bucket;
      continue;
    }
    if (slot == 0) return Telemetry::kFirstBound;  // underflow bucket
    if (slot == snap.buckets.size() - 1) return snap.max;  // overflow
    const double lower =
        Telemetry::kFirstBound * std::ldexp(1.0, static_cast<int>(slot) - 1);
    const double upper = lower * 2.0;
    const double frac =
        in_bucket > 0.0 ? (target - cumulative) / in_bucket : 0.0;
    return lower + frac * (upper - lower);
  }
  return snap.max;
}

std::size_t TotalSteps(const std::vector<ServeSession*>& sessions) {
  std::size_t total = 0;
  for (const ServeSession* s : sessions) total += s->steps();
  return total;
}

struct LoadReport {
  std::size_t offered = 0;
  std::size_t shed = 0;
  std::size_t steps = 0;
  double elapsed_seconds = 0.0;
  double throughput = 0.0;
  double achieved_fraction = 1.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

/// Phase 1: single-stream synchronous step rate (steps/second).
double Calibrate(const LoadgenOptions& loadgen_options, std::uint64_t seed) {
  ServeRuntimeOptions options;
  options.workers = 0;
  options.max_sessions = 1;
  // Keep latency recording on so the calibrated rate carries the same
  // instrumentation cost as the load/saturation phases — the multiplex
  // efficiency ratio must compare like with like.
  options.record_latency = true;
  ServeRuntime runtime(options);
  ServeSessionOptions session_options;
  session_options.stream_id = 0;
  session_options.faction = SessionConfig(loadgen_options, seed);
  ServeSession* session = runtime.CreateSession(session_options);
  const std::vector<Example> stream =
      MakeStream(240, session_options.faction.model.input_dim, seed + 7);
  // Warm: one pass covers warm-start and several refit cycles.
  for (const Example& ex : stream) runtime.Offer(session, ex);
  // Measure: three more passes of pure steady state.
  constexpr int kPasses = 3;
  Timer timer;
  for (int p = 0; p < kPasses; ++p) {
    for (const Example& ex : stream) runtime.Offer(session, ex);
  }
  const double elapsed = timer.ElapsedSeconds();
  runtime.Drain();
  return static_cast<double>(kPasses * stream.size()) / elapsed;
}

LoadReport RunLoadPhase(ServeRuntime& runtime,
                        const std::vector<ServeSession*>& sessions,
                        const std::vector<std::vector<Example>>& streams,
                        std::vector<std::size_t>& cursors,
                        const LoadgenOptions& options, double target_rate) {
  Rng rng(options.seed + 101);
  constexpr double kBurstPeriod = 0.5;
  const std::size_t steps_before = TotalSteps(sessions);
  std::size_t offered = 0;
  std::size_t shed = 0;

  Timer timer;
  double next_arrival = 0.0;
  for (;;) {
    const double now = timer.ElapsedSeconds();
    if (now >= options.duration_seconds) break;
    if (now < next_arrival) {
      std::this_thread::yield();
      continue;
    }
    const std::size_t s =
        static_cast<std::size_t>(rng.UniformInt(sessions.size()));
    const std::vector<Example>& stream = streams[s];
    if (runtime.Offer(sessions[s], stream[cursors[s] % stream.size()])) {
      ++offered;
    } else {
      ++shed;
    }
    ++cursors[s];
    // Open loop: the next arrival time advances on the schedule, never on
    // completions. Burst windows multiply the instantaneous rate.
    const double phase = std::fmod(now, kBurstPeriod) / kBurstPeriod;
    const double rate = phase < options.burst_fraction
                            ? target_rate * options.burst_factor
                            : target_rate;
    next_arrival += -std::log(1.0 - rng.Uniform()) / rate;
    // An overloaded schedule must not drift unboundedly behind the clock.
    next_arrival = std::max(next_arrival, now - 0.25);
  }
  runtime.Drain();
  const double elapsed = timer.ElapsedSeconds();

  LoadReport report;
  report.offered = offered;
  report.shed = shed;
  report.steps = TotalSteps(sessions) - steps_before;
  report.elapsed_seconds = elapsed;
  report.throughput = static_cast<double>(report.steps) / elapsed;
  report.achieved_fraction =
      offered + shed == 0
          ? 1.0
          : static_cast<double>(report.steps) /
                static_cast<double>(offered + shed);
  if (Telemetry* t = Telemetry::Get()) {
    const Telemetry::HistogramSnapshot snap =
        t->HistogramFor("serve.step.latency_seconds");
    report.p50 = HistogramPercentile(snap, 0.50);
    report.p95 = HistogramPercentile(snap, 0.95);
    report.p99 = HistogramPercentile(snap, 0.99);
  }
  return report;
}

struct SaturationReport {
  std::size_t steps = 0;
  double elapsed_seconds = 0.0;
  double throughput = 0.0;
};

SaturationReport RunSaturationPhase(
    ServeRuntime& runtime, const std::vector<ServeSession*>& sessions,
    const std::vector<std::vector<Example>>& streams,
    std::vector<std::size_t>& cursors, const LoadgenOptions& options) {
  const std::size_t steps_before = TotalSteps(sessions);
  Timer timer;
  while (timer.ElapsedSeconds() < options.saturation_seconds) {
    std::size_t accepted = 0;
    for (std::size_t s = 0; s < sessions.size(); ++s) {
      const std::vector<Example>& stream = streams[s];
      if (runtime.Offer(sessions[s], stream[cursors[s] % stream.size()])) {
        ++cursors[s];
        ++accepted;
      }
      // A full mailbox just means the workers are behind; saturation
      // measures the drain rate, not the offer rate.
    }
    // Every mailbox full: yield the core to the workers instead of
    // spinning against them (essential on low-core hosts).
    if (accepted == 0) std::this_thread::yield();
  }
  runtime.Drain();
  SaturationReport report;
  report.elapsed_seconds = timer.ElapsedSeconds();
  report.steps = TotalSteps(sessions) - steps_before;
  report.throughput =
      static_cast<double>(report.steps) / report.elapsed_seconds;
  return report;
}

int Run(const LoadgenOptions& options) {
  Telemetry::Enable()->Reset();

  const double calibrated_rate = Calibrate(options, options.seed);
  std::cerr << "serve_loadgen: calibrated single-stream rate "
            << calibrated_rate << " steps/s\n";

  ServeRuntimeOptions runtime_options;
  runtime_options.workers = options.workers;
  runtime_options.max_sessions = options.sessions;
  // Sized for the burst windows, not the sustained rate: a burst at
  // burst_factor x utilization of the calibrated rate queues roughly
  // (burst_factor - 1) * utilization * rate * window / sessions arrivals
  // per session on average (tens, spread unevenly by the uniform session
  // pick), so 64 slots shed several percent at the default settings
  // while 256 absorbs the spike and lets the SLO measure latency rather
  // than loss.
  runtime_options.mailbox_capacity = 256;
  runtime_options.record_latency = true;
  ServeRuntime runtime(runtime_options);

  std::vector<ServeSession*> sessions;
  std::vector<std::vector<Example>> streams;
  std::vector<std::size_t> cursors(options.sessions, 0);
  sessions.reserve(options.sessions);
  streams.reserve(options.sessions);
  for (std::size_t s = 0; s < options.sessions; ++s) {
    ServeSessionOptions session_options;
    session_options.stream_id = s;
    session_options.faction = SessionConfig(options, options.seed + 100 + s);
    sessions.push_back(runtime.CreateSession(session_options));
    streams.push_back(MakeStream(
        240, session_options.faction.model.input_dim, options.seed + s));
  }

  const double target_rate = options.utilization * calibrated_rate;
  const LoadReport load = RunLoadPhase(runtime, sessions, streams, cursors,
                                       options, target_rate);
  const SaturationReport saturation = RunSaturationPhase(
      runtime, sessions, streams, cursors, options);

  const double multiplex_efficiency =
      calibrated_rate > 0.0 ? saturation.throughput / calibrated_rate : 0.0;
  const double sessions_per_core =
      static_cast<double>(options.sessions) /
      static_cast<double>(std::max(options.workers, 1));

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"serve_loadgen\",\n"
       << "  \"workers\": " << options.workers << ",\n"
       << "  \"sessions\": " << options.sessions << ",\n"
       << "  \"calibrated_steps_per_second\": "
       << JsonNumber(calibrated_rate) << ",\n"
       << "  \"load\": {\n"
       << "    \"target_rate\": " << JsonNumber(target_rate) << ",\n"
       << "    \"offered\": " << load.offered << ",\n"
       << "    \"shed\": " << load.shed << ",\n"
       << "    \"steps\": " << load.steps << ",\n"
       << "    \"elapsed_seconds\": " << JsonNumber(load.elapsed_seconds)
       << ",\n"
       << "    \"throughput_steps_per_second\": "
       << JsonNumber(load.throughput) << ",\n"
       << "    \"achieved_fraction\": "
       << JsonNumber(load.achieved_fraction) << ",\n"
       << "    \"p50_seconds\": " << JsonNumber(load.p50) << ",\n"
       << "    \"p95_seconds\": " << JsonNumber(load.p95) << ",\n"
       << "    \"p99_seconds\": " << JsonNumber(load.p99) << "\n"
       << "  },\n"
       << "  \"saturation\": {\n"
       << "    \"steps\": " << saturation.steps << ",\n"
       << "    \"elapsed_seconds\": "
       << JsonNumber(saturation.elapsed_seconds) << ",\n"
       << "    \"throughput_steps_per_second\": "
       << JsonNumber(saturation.throughput) << ",\n"
       << "    \"multiplex_efficiency\": "
       << JsonNumber(multiplex_efficiency) << ",\n"
       << "    \"sessions_per_core\": " << JsonNumber(sessions_per_core)
       << "\n"
       << "  }\n"
       << "}\n";

  std::cout << json.str();
  if (!options.out.empty()) {
    std::ofstream out(options.out);
    out << json.str();
    if (!out.good()) {
      std::cerr << "serve_loadgen: failed to write " << options.out << "\n";
      return 1;
    }
  }

  if (!options.trace.empty()) {
    Result<std::unique_ptr<TraceWriter>> writer =
        TraceWriter::Create(options.trace);
    if (!writer.ok()) {
      std::cerr << "serve_loadgen: " << writer.status().ToString() << "\n";
      return 1;
    }
    TraceWriter::ServeInfo serve;
    serve.workers = options.workers;
    serve.sessions = options.sessions;
    TraceWriter::DensityInfo density;
    density.window = options.density_window;
    density.decay = options.density_decay;
    FACTION_CHECK(
        writer.value()->WriteRunStart("serve_loadgen", serve, density).ok());
    FACTION_CHECK(writer.value()->WriteRunEnd(0, 0, 0).ok());
  }
  return 0;
}

bool ParseArgs(int argc, char** argv, LoadgenOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--workers" && (v = next())) {
      options->workers = std::atoi(v);
    } else if (arg == "--sessions" && (v = next())) {
      options->sessions = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--duration-seconds" && (v = next())) {
      options->duration_seconds = std::atof(v);
    } else if (arg == "--utilization" && (v = next())) {
      options->utilization = std::atof(v);
    } else if (arg == "--burst-factor" && (v = next())) {
      options->burst_factor = std::atof(v);
    } else if (arg == "--burst-fraction" && (v = next())) {
      options->burst_fraction = std::atof(v);
    } else if (arg == "--saturation-seconds" && (v = next())) {
      options->saturation_seconds = std::atof(v);
    } else if (arg == "--seed" && (v = next())) {
      options->seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--density-window" && (v = next())) {
      options->density_window = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--density-decay" && (v = next())) {
      options->density_decay = std::atof(v);
    } else if (arg == "--out" && (v = next())) {
      options->out = v;
    } else if (arg == "--trace" && (v = next())) {
      options->trace = v;
    } else {
      std::cerr << "usage: serve_loadgen [--workers N] [--sessions N]"
                   " [--duration-seconds S] [--utilization F]"
                   " [--burst-factor F] [--burst-fraction F]"
                   " [--saturation-seconds S] [--seed N]"
                   " [--density-window N] [--density-decay F] [--out PATH]"
                   " [--trace PATH]\n";
      return false;
    }
  }
  return options->workers >= 0 && options->sessions >= 1 &&
         options->duration_seconds > 0.0 && options->utilization > 0.0 &&
         options->density_decay > 0.0 && options->density_decay <= 1.0;
}

}  // namespace
}  // namespace faction

int main(int argc, char** argv) {
  faction::LoadgenOptions options;
  if (!faction::ParseArgs(argc, argv, &options)) return 2;
  return faction::Run(options);
}
