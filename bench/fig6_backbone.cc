// Fig. 6 reproduction: backbone-generality check. The paper swaps the
// ResNet-18 for a Wide ResNet-50 on CelebA and shows FACTION's fairness
// advantage persists. Our substitute widens/deepens the spectral-normalized
// MLP backbone (see DESIGN.md); the claim under test is that FACTION's
// advantage is a property of the selection + regularization, not of one
// architecture.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace faction;
  using namespace faction::bench;

  BenchScale scale = GetBenchScale();
  // The "WRN-50" substitute: a wider and deeper feature extractor.
  scale.defaults.hidden_dims = {128, 64, 24};

  const Result<std::vector<std::vector<Dataset>>> streams =
      BuildStreams("celeba", scale);
  if (!streams.ok()) {
    std::fprintf(stderr, "stream build failed: %s\n",
                 streams.status().ToString().c_str());
    return 1;
  }
  const Result<std::vector<MethodResult>> results =
      RunMethods(AllMethodNames(), streams.value(), scale.defaults);
  if (!results.ok()) {
    std::fprintf(stderr, "bench failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }
  std::cout << "=== Fig. 6 reproduction: wide backbone (128-64-24 "
               "spectral-norm MLP) on CelebA ===\n";
  PrintSummary("stream means (mean ± std across runs)", results.value());
  return 0;
}
