#ifndef FACTION_BENCH_FIG2_COMMON_H_
#define FACTION_BENCH_FIG2_COMMON_H_

#include <cstdio>
#include <string>

#include "bench/bench_util.h"

namespace faction {
namespace bench {

/// Shared driver for the five Fig. 2 binaries: build the dataset's streams,
/// run all eight methods, print the per-task panels and summary. Returns a
/// process exit code.
inline int RunFig2(const std::string& dataset) {
  const BenchScale scale = GetBenchScale();
  const Result<std::vector<std::vector<Dataset>>> streams =
      BuildStreams(dataset, scale);
  if (!streams.ok()) {
    std::fprintf(stderr, "stream build failed: %s\n",
                 streams.status().ToString().c_str());
    return 1;
  }
  const Result<std::vector<MethodResult>> results =
      RunMethods(AllMethodNames(), streams.value(), scale.defaults);
  if (!results.ok()) {
    std::fprintf(stderr, "bench failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }
  PrintFig2Report(dataset, results.value());
  return 0;
}

}  // namespace bench
}  // namespace faction

#endif  // FACTION_BENCH_FIG2_COMMON_H_
