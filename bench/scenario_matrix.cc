// Strategy x scenario matrix (EXPERIMENTS.md): every query strategy driven
// across the scenario-engine preset cells — recurring adversarial drift,
// gradual transitions, shuffled order with label noise, supervision lag
// with group imbalance — each cell reproducible bitwise from its spec and
// the world seed. Quick scale runs the four-headline-method subset;
// FACTION_BENCH_SCALE=full runs the full extended method list.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "data/scenario.h"

namespace {

using namespace faction;
using namespace faction::bench;

int Run() {
  const BenchScale scale = GetBenchScale();
  const std::vector<std::string> methods =
      scale.full ? ExtendedMethodNames()
                 : std::vector<std::string>{"FACTION", "Random", "Bandit",
                                            "Disentangled"};

  for (const std::string& spec : ScenarioPresetSpecs()) {
    // Paired comparisons: within a repetition every method sees the same
    // materialized stream; across repetitions the world seed advances.
    std::vector<std::vector<Dataset>> streams;
    streams.reserve(scale.repetitions);
    for (std::size_t rep = 0; rep < scale.repetitions; ++rep) {
      StreamScale stream_scale;
      stream_scale.samples_per_task = scale.samples_per_task;
      stream_scale.seed = 1000 + rep;
      Result<std::vector<Dataset>> stream =
          MakeScenarioStream(spec, stream_scale);
      if (!stream.ok()) {
        std::fprintf(stderr, "scenario '%s': %s\n", spec.c_str(),
                     stream.status().ToString().c_str());
        return 1;
      }
      streams.push_back(std::move(stream).value());
    }
    const Result<std::vector<MethodResult>> results =
        RunMethods(methods, streams, scale.defaults);
    if (!results.ok()) {
      std::fprintf(stderr, "scenario '%s': %s\n", spec.c_str(),
                   results.status().ToString().c_str());
      return 1;
    }
    PrintSummary("scenario: " + spec, results.value());
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
