// Fig. 5 reproduction: empirical runtimes.
//   (a) the four fairness-aware models on every dataset — expected
//       ordering FAL > FAL-CUR > FACTION > Decoupled;
//   (b) FACTION versus its simplified variants — runtime grows as
//       components are added but stays below 2x Random.
// Absolute numbers differ from the paper's V100 testbed; the claim under
// test is the relative ordering, which is driven by algorithmic component
// counts rather than hardware.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"

namespace {

using namespace faction;
using namespace faction::bench;

int RunPanel(const char* title, const std::vector<std::string>& methods,
             const BenchScale& scale) {
  std::cout << "\n=== " << title << " ===\n";
  std::vector<std::string> headers = {"dataset"};
  for (const std::string& m : methods) headers.push_back(m);
  Table table(std::move(headers));
  for (const std::string& dataset : PaperDatasetNames()) {
    const Result<std::vector<std::vector<Dataset>>> streams =
        BuildStreams(dataset, scale);
    if (!streams.ok()) {
      std::fprintf(stderr, "stream build failed: %s\n",
                   streams.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> row = {dataset};
    for (const std::string& method : methods) {
      double total = 0.0;
      for (std::size_t rep = 0; rep < streams.value().size(); ++rep) {
        const Result<RunResult> run = RunMethodOnStream(
            method, streams.value()[rep], scale.defaults, 42 + 13 * rep);
        if (!run.ok()) {
          std::fprintf(stderr, "%s failed: %s\n", method.c_str(),
                       run.status().ToString().c_str());
          return 1;
        }
        total += run.value().total_seconds;
      }
      row.push_back(
          FormatCell(total / static_cast<double>(streams.value().size()), 2));
      std::cerr << "[bench] " << dataset << " / " << method << " done\n";
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace

int main() {
  BenchScale scale = GetBenchScale();
  // Runtime panels need one repetition per cell; medians of repeated runs
  // are reported at full scale.
  if (!scale.full) scale.repetitions = 1;

  if (RunPanel(
          "Fig. 5a: runtimes (seconds/run) of fairness-aware models",
          FairnessAwareMethodNames(), scale) != 0) {
    return 1;
  }
  return RunPanel(
      "Fig. 5b: runtimes (seconds/run) of FACTION's ablated variants",
      AblationVariantNames(), scale);
}
