#include "bench/bench_util.h"

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/stats.h"
#include "common/table.h"

namespace faction {
namespace bench {

BenchScale GetBenchScale() {
  BenchScale scale;
  const char* env = std::getenv("FACTION_BENCH_SCALE");
  if (env != nullptr && std::strcmp(env, "full") == 0) {
    scale.full = true;
    scale.samples_per_task = 2000;
    scale.repetitions = 5;
  }
  return scale;
}

Result<std::vector<std::vector<Dataset>>> BuildStreams(
    const std::string& dataset, const BenchScale& scale) {
  std::vector<std::vector<Dataset>> streams;
  for (std::size_t rep = 0; rep < scale.repetitions; ++rep) {
    StreamScale ss;
    ss.samples_per_task = scale.samples_per_task;
    ss.seed = 1000 + 77 * rep;
    FACTION_ASSIGN_OR_RETURN(std::vector<Dataset> stream,
                             MakePaperStream(dataset, ss));
    streams.push_back(std::move(stream));
  }
  return streams;
}

Result<std::vector<MethodResult>> RunMethods(
    const std::vector<std::string>& methods,
    const std::vector<std::vector<Dataset>>& streams_per_rep,
    const ExperimentDefaults& defaults) {
  if (streams_per_rep.empty()) {
    return Status::InvalidArgument("RunMethods: no streams");
  }
  const std::size_t num_tasks = streams_per_rep[0].size();
  std::vector<MethodResult> out;
  for (const std::string& method : methods) {
    MethodResult mr;
    mr.method = method;
    mr.accuracy.assign(num_tasks, 0.0);
    mr.ddp.assign(num_tasks, 0.0);
    mr.eod.assign(num_tasks, 0.0);
    mr.mi.assign(num_tasks, 0.0);
    std::vector<double> rep_acc, rep_ddp, rep_eod, rep_mi;
    for (std::size_t rep = 0; rep < streams_per_rep.size(); ++rep) {
      FACTION_ASSIGN_OR_RETURN(
          RunResult run, RunMethodOnStream(method, streams_per_rep[rep],
                                           defaults, 42 + 13 * rep));
      for (std::size_t t = 0; t < run.per_task.size() && t < num_tasks;
           ++t) {
        mr.accuracy[t] += run.per_task[t].accuracy;
        mr.ddp[t] += run.per_task[t].ddp;
        mr.eod[t] += run.per_task[t].eod;
        mr.mi[t] += run.per_task[t].mi;
      }
      rep_acc.push_back(run.summary.mean_accuracy);
      rep_ddp.push_back(run.summary.mean_ddp);
      rep_eod.push_back(run.summary.mean_eod);
      rep_mi.push_back(run.summary.mean_mi);
      mr.mean_seconds += run.total_seconds;
    }
    const double reps = static_cast<double>(streams_per_rep.size());
    for (std::size_t t = 0; t < num_tasks; ++t) {
      mr.accuracy[t] /= reps;
      mr.ddp[t] /= reps;
      mr.eod[t] /= reps;
      mr.mi[t] /= reps;
    }
    mr.mean_accuracy = Mean(rep_acc);
    mr.std_accuracy = StdDev(rep_acc);
    mr.mean_ddp = Mean(rep_ddp);
    mr.std_ddp = StdDev(rep_ddp);
    mr.mean_eod = Mean(rep_eod);
    mr.std_eod = StdDev(rep_eod);
    mr.mean_mi = Mean(rep_mi);
    mr.std_mi = StdDev(rep_mi);
    mr.mean_seconds /= reps;
    std::cerr << "[bench] finished " << method << " ("
              << FormatCell(mr.mean_seconds, 1) << " s/run)\n";
    out.push_back(std::move(mr));
  }
  return out;
}

namespace {

void PrintSeries(const std::string& metric,
                 const std::vector<MethodResult>& results,
                 const std::vector<double> MethodResult::* series) {
  std::vector<std::string> headers = {"task"};
  for (const MethodResult& r : results) headers.push_back(r.method);
  Table table(std::move(headers));
  const std::size_t num_tasks =
      results.empty() ? 0 : (results[0].*series).size();
  for (std::size_t t = 0; t < num_tasks; ++t) {
    std::vector<std::string> row = {std::to_string(t + 1)};
    for (const MethodResult& r : results) {
      row.push_back(FormatCell((r.*series)[t], 3));
    }
    table.AddRow(std::move(row));
  }
  std::cout << "\n--- per-task " << metric << " ---\n";
  table.Print(std::cout);
}

}  // namespace

void PrintFig2Report(const std::string& dataset,
                     const std::vector<MethodResult>& results) {
  std::cout << "=== Fig. 2 reproduction: " << dataset
            << " (accuracy higher is better; DDP/EOD/MI lower is better)"
            << " ===\n";
  PrintSeries("accuracy", results, &MethodResult::accuracy);
  PrintSeries("DDP", results, &MethodResult::ddp);
  PrintSeries("EOD", results, &MethodResult::eod);
  PrintSeries("MI", results, &MethodResult::mi);
  PrintSummary("stream means over tasks (mean ± std across runs)", results);
}

void PrintSummary(const std::string& title,
                  const std::vector<MethodResult>& results) {
  std::cout << "\n--- " << title << " ---\n";
  Table table({"method", "acc", "DDP", "EOD", "MI", "runtime(s)"});
  for (const MethodResult& r : results) {
    table.AddRow({r.method, FormatMeanStd(r.mean_accuracy, r.std_accuracy, 3),
                  FormatMeanStd(r.mean_ddp, r.std_ddp, 3),
                  FormatMeanStd(r.mean_eod, r.std_eod, 3),
                  FormatMeanStd(r.mean_mi, r.std_mi, 3),
                  FormatCell(r.mean_seconds, 1)});
  }
  table.Print(std::cout);
  std::cout.flush();
}

}  // namespace bench
}  // namespace faction
