// Image-stream reproduction (additional results): the paper's image
// experiments use a spectral-normalized CNN on Rotated Colored MNIST. This
// bench runs the pixel-level RCMNIST substitute (true spatial rotations,
// color carried by the red/green channels) with the ConvNetClassifier
// backbone for FACTION and representative baselines. Shape under test:
// FACTION's fairness advantage transfers from feature-vector streams to
// raw-pixel streams with a convolutional backbone.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "data/images.h"
#include "nn/conv.h"

namespace {

using namespace faction;
using namespace faction::bench;

int Run() {
  const BenchScale scale = GetBenchScale();

  std::cout << "=== Image backbone: CNN on pixel-level RCMNIST ===\n";
  Table table({"method", "accuracy", "DDP", "EOD", "MI"});
  const std::vector<std::string> methods = {"FACTION", "DDU", "Entropy-AL",
                                            "Random"};
  for (const std::string& method : methods) {
    std::vector<double> acc, ddp, eod, mi;
    for (std::size_t rep = 0; rep < scale.repetitions; ++rep) {
      RcmnistImageConfig stream_config;
      stream_config.scale.samples_per_task =
          scale.full ? 600 : 250;  // CNN passes are ~10x MLP cost
      stream_config.scale.seed = 1000 + 77 * rep;
      const Result<std::vector<Dataset>> stream =
          MakeRcmnistImageStream(stream_config);
      if (!stream.ok()) {
        std::fprintf(stderr, "stream: %s\n",
                     stream.status().ToString().c_str());
        return 1;
      }
      ExperimentDefaults defaults = scale.defaults;
      defaults.budget_per_task = 100;
      defaults.acquisition_batch = 25;
      defaults.warm_start = 60;
      defaults.epochs = 2;
      Result<std::unique_ptr<QueryStrategy>> strategy =
          MakeStrategy(method, defaults);
      if (!strategy.ok()) return 1;
      OnlineLearnerConfig config =
          MakeLearnerConfig(defaults, 128, method, 42 + 13 * rep);
      config.model_factory = [&defaults](Rng* rng) {
        ConvNetConfig net;
        net.input = ImageShape{2, 8, 8};
        net.conv1_filters = 6;
        net.conv2_filters = 6;
        net.feature_dim = 12;
        net.spectral.enabled = defaults.spectral_norm;
        net.spectral.coeff = defaults.spectral_coeff;
        return std::unique_ptr<FeatureClassifier>(
            std::make_unique<ConvNetClassifier>(net, rng));
      };
      OnlineLearner learner(config, strategy.value().get());
      const Result<RunResult> run = learner.Run(stream.value());
      if (!run.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", method.c_str(),
                     run.status().ToString().c_str());
        return 1;
      }
      acc.push_back(run.value().summary.mean_accuracy);
      ddp.push_back(run.value().summary.mean_ddp);
      eod.push_back(run.value().summary.mean_eod);
      mi.push_back(run.value().summary.mean_mi);
      std::cerr << "[bench] " << method << " rep " << rep << " done\n";
    }
    table.AddRow({method, FormatMeanStd(Mean(acc), StdDev(acc), 3),
                  FormatMeanStd(Mean(ddp), StdDev(ddp), 3),
                  FormatMeanStd(Mean(eod), StdDev(eod), 3),
                  FormatMeanStd(Mean(mi), StdDev(mi), 3)});
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace

int main() { return Run(); }
