// Theorem 1 validation: in a stationary environment (m = 1, |I_u| = T) the
// paper derives sublinear growth for the cumulative regret, R = O(sqrt(T)),
// and the cumulative fairness violation, V = O(T^(1/4)). This bench runs
// FACTION with regret tracking over stationary streams of increasing
// length and fits log-log growth exponents.
//
// Shape under test: both exponents are clearly below 1 (sublinear), the
// violation exponent is below the regret exponent, and query complexity
// stays exactly linear in T here because the budget B is saturated per
// task (the bound's min{|I_u|, ...} regime).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"

int main() {
  using namespace faction;
  using namespace faction::bench;

  const BenchScale scale = GetBenchScale();
  ExperimentDefaults defaults = scale.defaults;
  // Convex instantiation: a linear softmax model (logistic regression),
  // the example under which the paper states Assumptions 1-3 hold.
  defaults.hidden_dims = {};
  defaults.spectral_norm = false;
  const std::vector<std::size_t> horizons =
      scale.full ? std::vector<std::size_t>{4, 8, 16, 32, 64}
                 : std::vector<std::size_t>{4, 8, 16, 32};

  std::cout << "=== Theorem 1 validation: stationary environment ===\n";
  Table table({"T", "regret R(T)", "violation V(T)", "queries Q(T)"});
  std::vector<double> log_t, log_r, log_v, avg_violation;
  for (std::size_t horizon : horizons) {
    double regret = 0.0, violation = 0.0, queries = 0.0;
    for (std::size_t rep = 0; rep < scale.repetitions; ++rep) {
      StationaryConfig config;
      config.scale.samples_per_task = scale.samples_per_task;
      config.scale.seed = 500 + 31 * rep;
      config.num_tasks = horizon;
      // Theorem 1 assumes the labels are realized by a *fair* classifier
      // h* (y_i = h*(x_i) + noise with h* in the fair hypothesis class).
      // bias = 0.5 makes the stream fair-realizable; planted
      // label-sensitive correlation would add an irreducible
      // price-of-fairness term and force linear regret for any
      // constrained learner.
      config.bias = 0.5;
      const Result<std::vector<Dataset>> stream =
          MakeStationaryStream(config);
      if (!stream.ok()) {
        std::fprintf(stderr, "stream build failed: %s\n",
                     stream.status().ToString().c_str());
        return 1;
      }
      Result<std::unique_ptr<QueryStrategy>> strategy =
          MakeStrategy("FACTION", defaults);
      if (!strategy.ok()) return 1;
      OnlineLearnerConfig learner_config = MakeLearnerConfig(
          defaults, stream.value()[0].dim(), "FACTION", 42 + 13 * rep);
      learner_config.track_regret = true;
      // Theorem 1's setting: the comparator h* is the best *fair*
      // classifier, the learning rate decays as gamma_0/sqrt(t), and the
      // fairness multiplier follows the long-term-constraints dual ascent
      // (a constant mu only reaches a violation equilibrium).
      learner_config.oracle_train.use_fairness_penalty = true;
      learner_config.oracle_train.fairness =
          learner_config.train.fairness;
      learner_config.dual_ascent = true;
      learner_config.dual_step = 1.0;
      learner_config.lr_decay_power = 0.5;
      OnlineLearner learner(learner_config, strategy.value().get());
      const Result<RunResult> run = learner.Run(stream.value());
      if (!run.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     run.status().ToString().c_str());
        return 1;
      }
      regret += run.value().cumulative_regret;
      violation += run.value().cumulative_violation;
      queries += static_cast<double>(run.value().total_queries);
      if (horizon == horizons.back() && rep == 0) {
        std::cout << "\nper-task series at T=" << horizon
                  << " (regret increment / violation):\n";
        for (std::size_t i = 0; i < run.value().per_task.size(); ++i) {
          std::cout << "  t=" << i + 1 << "  r="
                    << FormatCell(run.value().regret_increments[i], 4)
                    << "  v="
                    << FormatCell(
                           run.value().per_task[i].fairness_violation, 4)
                    << "\n";
        }
      }
    }
    const double reps = static_cast<double>(scale.repetitions);
    regret /= reps;
    violation /= reps;
    queries /= reps;
    table.AddRow({std::to_string(horizon), FormatCell(regret, 4),
                  FormatCell(violation, 4), FormatCell(queries, 0)});
    log_t.push_back(std::log(static_cast<double>(horizon)));
    if (regret > 0.0) log_r.push_back(std::log(regret));
    if (violation > 0.0) log_v.push_back(std::log(violation));
    avg_violation.push_back(violation / static_cast<double>(horizon));
    std::cerr << "[bench] T=" << horizon << " done\n";
  }
  table.Print(std::cout);

  bool pass = true;
  if (log_r.size() == log_t.size()) {
    const double slope_r = OlsSlope(log_t, log_r);
    std::cout << "\nfitted log-log growth exponents:\n"
              << "  regret R(T) ~ T^" << FormatCell(slope_r, 3)
              << "   (theorem: O(sqrt(T)), i.e. exponent <= ~0.5)\n";
    pass = pass && slope_r < 1.0;
  }
  // The violation bound V = O(T^(1/4)) implies the *average* violation
  // V(T)/T vanishes. In the fair-realizable regime the per-task violation
  // sits at the sampling-noise floor (mostly exactly 0), so a log-log fit
  // on V is dominated by noise; the meaningful check is that the average
  // violation is tiny and non-increasing.
  if (!avg_violation.empty()) {
    std::cout << "  average violation V(T)/T: ";
    for (double v : avg_violation) std::cout << FormatCell(v, 4) << " ";
    std::cout << " (must stay near 0; theorem implies -> 0)\n";
    pass = pass && avg_violation.back() < 0.05;
  }
  std::cout << (pass ? "PASS: regret sublinear, average violation vanishes\n"
                     : "FAIL: bound shape violated\n");
  return pass ? 0 : 1;
}
