// Design-choice ablations beyond the paper's Fig. 4 (the choices DESIGN.md
// calls out): fairness-penalty form (symmetric |v| hinge vs the paper's
// literal [v]_+), the regularized notion (DDP vs DEO), spectral
// normalization of the feature extractor on/off, and GDA covariance
// shrinkage. All on the NYSF stream with full FACTION.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"

namespace {

using namespace faction;
using namespace faction::bench;

struct Variant {
  std::string name;
  ExperimentDefaults defaults;
};

int Run() {
  const BenchScale scale = GetBenchScale();
  const Result<std::vector<std::vector<Dataset>>> streams =
      BuildStreams("nysf", scale);
  if (!streams.ok()) {
    std::fprintf(stderr, "stream build failed: %s\n",
                 streams.status().ToString().c_str());
    return 1;
  }

  std::vector<Variant> variants;
  variants.push_back({"baseline (symmetric DDP, SN on, shrink 0.1)",
                      scale.defaults});
  {
    Variant v{"literal [v]+ penalty", scale.defaults};
    v.defaults.symmetric_penalty = false;
    variants.push_back(v);
  }
  {
    Variant v{"DEO notion", scale.defaults};
    v.defaults.notion = FairnessNotion::kDeo;
    variants.push_back(v);
  }
  {
    Variant v{"spectral norm off", scale.defaults};
    v.defaults.spectral_norm = false;
    variants.push_back(v);
  }
  {
    Variant v{"shrinkage 0.0", scale.defaults};
    v.defaults.covariance_shrinkage = 0.0;
    variants.push_back(v);
  }
  {
    Variant v{"shrinkage 0.5", scale.defaults};
    v.defaults.covariance_shrinkage = 0.5;
    variants.push_back(v);
  }

  std::cout << "=== Design-choice ablations: FACTION on NYSF ===\n";
  Table table({"variant", "accuracy", "DDP", "EOD", "MI"});
  for (const Variant& variant : variants) {
    std::vector<double> acc, ddp, eod, mi;
    for (std::size_t rep = 0; rep < streams.value().size(); ++rep) {
      const Result<RunResult> run =
          RunMethodOnStream("FACTION", streams.value()[rep],
                            variant.defaults, 42 + 13 * rep);
      if (!run.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", variant.name.c_str(),
                     run.status().ToString().c_str());
        return 1;
      }
      acc.push_back(run.value().summary.mean_accuracy);
      ddp.push_back(run.value().summary.mean_ddp);
      eod.push_back(run.value().summary.mean_eod);
      mi.push_back(run.value().summary.mean_mi);
    }
    table.AddRow({variant.name, FormatMeanStd(Mean(acc), StdDev(acc), 3),
                  FormatMeanStd(Mean(ddp), StdDev(ddp), 3),
                  FormatMeanStd(Mean(eod), StdDev(eod), 3),
                  FormatMeanStd(Mean(mi), StdDev(mi), 3)});
    std::cerr << "[bench] " << variant.name << " done\n";
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace

int main() { return Run(); }
