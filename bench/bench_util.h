#ifndef FACTION_BENCH_BENCH_UTIL_H_
#define FACTION_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "core/presets.h"
#include "data/streams.h"

namespace faction {
namespace bench {

/// Scale of a bench run. The default ("quick") keeps every binary runnable
/// on a single CPU core in seconds-to-minutes; FACTION_BENCH_SCALE=full
/// switches to paper scale (larger tasks, 5 repetitions — Sec. V-A3).
struct BenchScale {
  std::size_t samples_per_task = 600;
  std::size_t repetitions = 2;
  ExperimentDefaults defaults;
  bool full = false;
};

/// Reads FACTION_BENCH_SCALE from the environment ("quick" default,
/// "full" for paper scale).
BenchScale GetBenchScale();

/// Per-method aggregate over repetitions.
struct MethodResult {
  std::string method;
  /// Per-task metric series, averaged over repetitions.
  std::vector<double> accuracy;
  std::vector<double> ddp;
  std::vector<double> eod;
  std::vector<double> mi;
  /// Stream-level mean +- std across repetitions.
  double mean_accuracy = 0.0, std_accuracy = 0.0;
  double mean_ddp = 0.0, std_ddp = 0.0;
  double mean_eod = 0.0, std_eod = 0.0;
  double mean_mi = 0.0, std_mi = 0.0;
  double mean_seconds = 0.0;
};

/// Runs every method over fresh streams (one per repetition) built by
/// `make_stream(rep_seed)`, and aggregates. Streams are identical across
/// methods within a repetition so comparisons are paired.
Result<std::vector<MethodResult>> RunMethods(
    const std::vector<std::string>& methods,
    const std::vector<std::vector<Dataset>>& streams_per_rep,
    const ExperimentDefaults& defaults);

/// Builds `repetitions` streams for a named paper dataset.
Result<std::vector<std::vector<Dataset>>> BuildStreams(
    const std::string& dataset, const BenchScale& scale);

/// Prints the Fig. 2 panels for one dataset: per-task series for accuracy,
/// DDP, EOD and MI (one table per metric; columns = methods), followed by
/// the stream-level summary.
void PrintFig2Report(const std::string& dataset,
                     const std::vector<MethodResult>& results);

/// Prints the stream-level summary table only.
void PrintSummary(const std::string& title,
                  const std::vector<MethodResult>& results);

}  // namespace bench
}  // namespace faction

#endif  // FACTION_BENCH_BENCH_UTIL_H_
