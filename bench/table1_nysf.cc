// Table I reproduction: FACTION compared to its ablated variants on the
// NYSF stream — runtime plus mean accuracy / DDP / EOD / MI across all 16
// tasks. Expected shape (paper): the full system has the best fairness
// metrics at a small accuracy cost versus the non-fairness-aware variant,
// and runtime grows as components are added yet stays under 2x Random.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"

int main() {
  using namespace faction;
  using namespace faction::bench;

  const BenchScale scale = GetBenchScale();
  const Result<std::vector<std::vector<Dataset>>> streams =
      BuildStreams("nysf", scale);
  if (!streams.ok()) {
    std::fprintf(stderr, "stream build failed: %s\n",
                 streams.status().ToString().c_str());
    return 1;
  }
  const Result<std::vector<MethodResult>> results =
      RunMethods(AblationVariantNames(), streams.value(), scale.defaults);
  if (!results.ok()) {
    std::fprintf(stderr, "bench failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }

  std::cout << "=== Table I reproduction: FACTION ablations on NYSF ===\n";
  Table table({"Model", "Runtime(s)", "Acc(^)", "DDP(v)", "EOD(v)", "MI(v)"});
  for (const MethodResult& r : results.value()) {
    table.AddRow({r.method, FormatCell(r.mean_seconds, 1),
                  FormatCell(100.0 * r.mean_accuracy, 2),
                  FormatCell(r.mean_ddp, 3), FormatCell(r.mean_eod, 3),
                  FormatCell(r.mean_mi, 3)});
  }
  table.Print(std::cout);
  return 0;
}
