// Fig. 3 reproduction: fairness-accuracy trade-off of the four
// fairness-aware methods under their key parameter sweeps (on the NYSF
// stream). Points toward the top-left (high accuracy, low EOD) are
// preferred; the paper's claim is that FACTION's frontier dominates.
//
// Sweeps (paper Sec. V-B): FACTION mu {0.3, 0.5, 0.7, 1.4, 2.8};
// FAL l {64, 96, 128, 196, 256}; FAL-CUR beta {0.3, 0.4, 0.5, 0.6, 0.7};
// Decoupled threshold alpha {0.1, 0.2, 0.4, 0.6, 0.8}.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"

namespace {

using namespace faction;
using namespace faction::bench;

struct SweepPoint {
  std::string method;
  std::string param;
  double value = 0.0;
};

int Run() {
  const BenchScale scale = GetBenchScale();
  const Result<std::vector<std::vector<Dataset>>> streams =
      BuildStreams("nysf", scale);
  if (!streams.ok()) {
    std::fprintf(stderr, "stream build failed: %s\n",
                 streams.status().ToString().c_str());
    return 1;
  }

  std::vector<SweepPoint> sweep;
  for (double mu : {0.3, 0.5, 0.7, 1.4, 2.8}) {
    sweep.push_back({"FACTION", "mu", mu});
  }
  for (double l : {64.0, 96.0, 128.0, 196.0, 256.0}) {
    sweep.push_back({"FAL", "l", l});
  }
  for (double beta : {0.3, 0.4, 0.5, 0.6, 0.7}) {
    sweep.push_back({"FAL-CUR", "beta", beta});
  }
  for (double alpha : {0.1, 0.2, 0.4, 0.6, 0.8}) {
    sweep.push_back({"Decoupled", "alpha", alpha});
  }

  std::cout << "=== Fig. 3 reproduction: fairness-accuracy trade-offs on "
               "NYSF (top-left preferred) ===\n";
  Table table({"method", "param", "value", "accuracy", "EOD"});
  for (const SweepPoint& point : sweep) {
    ExperimentDefaults defaults = scale.defaults;
    if (point.method == "FACTION") {
      defaults.mu = point.value;
    } else if (point.method == "FAL") {
      defaults.fal_reference_size = static_cast<std::size_t>(point.value);
    } else if (point.method == "FAL-CUR") {
      defaults.falcur_beta = point.value;
    } else {
      defaults.decoupled_threshold = point.value;
    }
    std::vector<double> accs, eods;
    for (std::size_t rep = 0; rep < streams.value().size(); ++rep) {
      const Result<RunResult> run = RunMethodOnStream(
          point.method, streams.value()[rep], defaults, 42 + 13 * rep);
      if (!run.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", point.method.c_str(),
                     run.status().ToString().c_str());
        return 1;
      }
      accs.push_back(run.value().summary.mean_accuracy);
      eods.push_back(run.value().summary.mean_eod);
    }
    table.AddRow({point.method, point.param, FormatCell(point.value, 2),
                  FormatMeanStd(Mean(accs), StdDev(accs), 3),
                  FormatMeanStd(Mean(eods), StdDev(eods), 3)});
    std::cerr << "[bench] " << point.method << " " << point.param << "="
              << FormatCell(point.value, 2) << " done\n";
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace

int main() { return Run(); }
