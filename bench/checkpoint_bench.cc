// Checkpoint/state-streaming benchmark (DESIGN.md §17): the three numbers
// the PR10 regression gate pins.
//
//   1. Capture latency: CaptureSessionState on a warmed learner — the only
//      checkpoint work the hot drain path ever does. Reported as median /
//      p99 nanoseconds over many captures.
//   2. Serving SLO under active snapshotting: p99 per-step latency of the
//      multi-stream serve loop with checkpointing off vs. on (aggressive
//      interval). The gate requires the ratio stay within 1.10 — the
//      double-buffer flip plus background serialization must not bend the
//      tail.
//   3. Warm-start vs. replay at `sessions` sessions: rebuilding the fleet
//      from checkpoints via ServeRuntime::WarmStart against re-processing
//      every arrival. The gate requires >= 10x.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <chrono>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "common/timer.h"
#include "core/streaming_faction.h"
#include "data/dataset.h"
#include "serve/checkpoint.h"
#include "serve/serve_runtime.h"
#include "serve/session.h"
#include "serve/state_codec.h"
#include "stream/trace.h"

namespace faction {
namespace {

struct BenchOptions {
  int workers = 2;
  std::size_t sessions = 64;
  std::size_t steps = 2000;
  std::size_t capture_iters = 200;
  std::size_t interval_steps = 256;
  /// When false (default) the run exports FACTION_NO_FSYNC=1: the SLO
  /// ratio then pins the checkpoint orchestration overhead (buffer flip,
  /// background serialization, tmp+rename rotation) rather than the disk's
  /// barrier latency, which on a small CI box shares the only core with
  /// the drain path. --durable restores full fsync commits.
  bool durable = false;
  /// Fraction of the calibrated saturation capacity the SLO phases offer.
  /// Deep headroom by design: the gate asks whether background
  /// checkpointing bends the tail at provisioned load, and on a shared
  /// 1-2 core CI host the calibration itself is noisy, so the paced runs
  /// must sit well inside the stable regime.
  double utilization = 0.25;
  std::uint64_t seed = 1;
  std::string dir = "/tmp/faction_checkpoint_bench";
  std::string out;    // JSON report path ("" = stdout only)
  std::string trace;  // run trace path ("" = none)
};

StreamingFactionConfig SessionConfig(std::uint64_t seed) {
  StreamingFactionConfig config;
  config.model.input_dim = 6;
  config.model.hidden_dims = {8};
  config.model.num_classes = 2;
  config.train.epochs = 2;
  config.train.batch_size = 16;
  config.warm_start = 12;
  config.burn_in = 6;
  config.refit_interval = 20;
  config.seed = seed;
  return config;
}

std::vector<Example> MakeStream(std::size_t n, std::size_t dim,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Example> stream(n);
  for (std::size_t i = 0; i < n; ++i) {
    Example& ex = stream[i];
    ex.label = rng.Bernoulli(0.5) ? 1 : 0;
    ex.sensitive = rng.Bernoulli(0.5) ? 1 : -1;
    ex.environment = 0;
    ex.x.resize(dim);
    const double center = ex.label == 1 ? 1.5 : -1.5;
    const double shift = ex.sensitive == 1 ? 0.4 : -0.4;
    for (std::size_t d = 0; d < dim; ++d) {
      ex.x[d] = rng.Gaussian(center + shift, 1.0);
    }
  }
  return stream;
}

/// Percentile from the fixed log-spaced telemetry bucketing (same
/// interpolation as bench/serve_loadgen.cc, which keeps it file-local).
double HistogramPercentile(const Telemetry::HistogramSnapshot& snap,
                           double q) {
  if (snap.count == 0) return 0.0;
  const double target = q * static_cast<double>(snap.count);
  double cumulative = 0.0;
  for (std::size_t slot = 0; slot < snap.buckets.size(); ++slot) {
    const double in_bucket = static_cast<double>(snap.buckets[slot]);
    if (cumulative + in_bucket < target) {
      cumulative += in_bucket;
      continue;
    }
    if (slot == 0) return Telemetry::kFirstBound;
    if (slot == snap.buckets.size() - 1) return snap.max;
    const double lower =
        Telemetry::kFirstBound * std::ldexp(1.0, static_cast<int>(slot) - 1);
    const double upper = lower * 2.0;
    const double frac =
        in_bucket > 0.0 ? (target - cumulative) / in_bucket : 0.0;
    return lower + frac * (upper - lower);
  }
  return snap.max;
}

/// Phase 1: capture latency on a warmed learner.
struct CaptureReport {
  double median_ns = 0.0;
  double p99_ns = 0.0;
  double encode_ns_median = 0.0;
  double encode_ns_p99 = 0.0;
};

CaptureReport RunCapturePhase(const BenchOptions& options) {
  const StreamingFactionConfig config = SessionConfig(options.seed);
  StreamingFaction faction(config);
  const std::vector<Example> stream =
      MakeStream(options.steps, config.model.input_dim, options.seed + 7);
  for (const Example& ex : stream) {
    if (faction.ShouldQuery(ex).value()) {
      FACTION_CHECK(faction.ProvideLabel(ex).ok());
    }
  }

  SessionState state;
  CaptureSessionState(faction, &state);  // warm the destination
  std::vector<double> samples;
  samples.reserve(options.capture_iters);
  for (std::size_t i = 0; i < options.capture_iters; ++i) {
    Timer timer;
    CaptureSessionState(faction, &state);
    samples.push_back(timer.ElapsedSeconds() * 1e9);
  }
  std::sort(samples.begin(), samples.end());
  CaptureReport report;
  report.median_ns = samples[samples.size() / 2];
  report.p99_ns = samples[(samples.size() * 99) / 100];

  // The cold half: what each background serialize job costs in CPU.
  std::string encoded;
  samples.clear();
  for (std::size_t i = 0; i < options.capture_iters; ++i) {
    Timer timer;
    EncodeSessionState(state, &encoded);
    samples.push_back(timer.ElapsedSeconds() * 1e9);
  }
  std::sort(samples.begin(), samples.end());
  report.encode_ns_median = samples[samples.size() / 2];
  report.encode_ns_p99 = samples[(samples.size() * 99) / 100];
  return report;
}

/// Phase 2: p99 per-step serve latency, checkpointing off vs. on. Offers
/// the same round-robin arrival matrix both times as an open-loop paced
/// schedule at `target_rate` total arrivals/second — the BENCH_PR7
/// methodology: the SLO is measured at provisioned load with headroom,
/// not at 100% saturation where any background byte trades against the
/// tail one-for-one.
double RunServePhase(const BenchOptions& options,
                     const std::vector<std::vector<Example>>& streams,
                     double target_rate, bool checkpoints) {
  Telemetry* telemetry = Telemetry::Enable();
  telemetry->Reset();

  ServeRuntimeOptions runtime_options;
  runtime_options.workers = options.workers;
  runtime_options.max_sessions = options.sessions;
  runtime_options.mailbox_capacity = 256;
  runtime_options.record_latency = true;
  ServeRuntime runtime(runtime_options);
  if (checkpoints) {
    CheckpointOptions ckpt;
    ckpt.dir = options.dir;
    ckpt.interval_steps = options.interval_steps;
    runtime.EnableCheckpoints(ckpt);
  }

  std::vector<ServeSession*> sessions;
  for (std::size_t s = 0; s < options.sessions; ++s) {
    ServeSessionOptions session_options;
    session_options.stream_id = s;
    session_options.faction = SessionConfig(options.seed + s);
    sessions.push_back(runtime.CreateSession(session_options));
  }
  // The first quarter is warm-up (per-arrival training until warm_start,
  // first refits): reset the histogram once it passes so the reported
  // tail is steady-state serving.
  const std::size_t total = options.steps * options.sessions;
  const std::size_t warmup = total / 4;
  Timer timer;
  for (std::size_t k = 0; k < total; ++k) {
    if (k == warmup) telemetry->Reset();
    const double due = static_cast<double>(k) / target_rate;
    // Sleep through long waits so the producer does not spin the core
    // away from the workers (essential on low-core hosts); yield through
    // the final stretch for schedule accuracy.
    for (double now = timer.ElapsedSeconds(); now < due;
         now = timer.ElapsedSeconds()) {
      if (due - now > 2e-4) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      } else {
        std::this_thread::yield();
      }
    }
    const std::size_t s = k % options.sessions;
    const std::size_t i = k / options.sessions;
    while (!runtime.Offer(sessions[s], streams[s][i])) {
      std::this_thread::yield();
    }
  }
  runtime.Drain();
  if (checkpoints) {
    // Pin one final generation per session so phase 3 restores the full
    // `steps`-deep state.
    for (ServeSession* session : sessions) {
      runtime.checkpoints()->SnapshotNow(session);
    }
    runtime.checkpoints()->Flush();
    FACTION_CHECK(runtime.checkpoints()->failures() == 0);
  }
  const Telemetry::HistogramSnapshot snap =
      telemetry->HistogramFor("serve.step.latency_seconds");
  std::cerr << "checkpoint_bench:   p50 " << HistogramPercentile(snap, 0.50)
            << " p90 " << HistogramPercentile(snap, 0.90) << " p95 "
            << HistogramPercentile(snap, 0.95) << " p99 "
            << HistogramPercentile(snap, 0.99) << " max " << snap.max
            << "\n";
  if (checkpoints) {
    std::cerr << "checkpoint_bench:   serialized "
              << TelemetryCounterValue("serve.checkpoint.serialized")
              << " skipped_busy "
              << TelemetryCounterValue("serve.checkpoint.skipped_busy")
              << "\n";
  }
  const double p99 = HistogramPercentile(snap, 0.99);
  Telemetry::Disable();
  return p99;
}

/// Phase 3a: replay recovery — re-process every arrival of every session.
/// The arrival log (`streams`) is handed in pre-built: reading the log
/// back is common to both recovery paths, so only the re-processing is
/// timed.
double RunReplayRecovery(const BenchOptions& options,
                         const std::vector<std::vector<Example>>& streams) {
  Timer timer;
  ServeRuntimeOptions runtime_options;
  runtime_options.workers = options.workers;
  runtime_options.max_sessions = options.sessions;
  runtime_options.record_latency = false;
  ServeRuntime runtime(runtime_options);
  std::vector<ServeSession*> sessions;
  for (std::size_t s = 0; s < options.sessions; ++s) {
    ServeSessionOptions session_options;
    session_options.stream_id = s;
    session_options.faction = SessionConfig(options.seed + s);
    session_options.mailbox_capacity = options.steps;
    sessions.push_back(runtime.CreateSession(session_options));
  }
  for (std::size_t i = 0; i < options.steps; ++i) {
    for (std::size_t s = 0; s < options.sessions; ++s) {
      while (!runtime.Offer(sessions[s], streams[s][i])) {
      }
    }
  }
  runtime.Drain();
  return timer.ElapsedSeconds();
}

/// Phase 3b: warm-start recovery from the manifest phase 2 committed.
double RunWarmStartRecovery(const BenchOptions& options,
                            std::size_t* restored_sessions) {
  Timer timer;
  ServeRuntimeOptions runtime_options;
  runtime_options.workers = options.workers;
  runtime_options.max_sessions = options.sessions;
  runtime_options.record_latency = false;
  ServeRuntime runtime(runtime_options);
  Result<WarmStartReport> report =
      runtime.WarmStart(options.dir + "/manifest");
  FACTION_CHECK(report.ok());
  *restored_sessions = report.value().sessions;
  return timer.ElapsedSeconds();
}

int Run(const BenchOptions& options) {
  ::mkdir(options.dir.c_str(), 0755);
  if (!options.durable) ::setenv("FACTION_NO_FSYNC", "1", 1);

  std::vector<std::vector<Example>> streams;
  streams.reserve(options.sessions);
  for (std::size_t s = 0; s < options.sessions; ++s) {
    streams.push_back(MakeStream(options.steps,
                                 SessionConfig(options.seed).model.input_dim,
                                 options.seed + 1000 + s));
  }

  std::cerr << "checkpoint_bench: capture phase...\n";
  const CaptureReport capture = RunCapturePhase(options);
  // The saturated replay run doubles as the capacity calibration for the
  // paced SLO phases.
  std::cerr << "checkpoint_bench: replay recovery (capacity calibration)"
               "...\n";
  const double replay_seconds = RunReplayRecovery(options, streams);
  const double capacity =
      static_cast<double>(options.steps * options.sessions) /
      replay_seconds;
  const double target_rate = options.utilization * capacity;
  std::cerr << "checkpoint_bench: capacity " << capacity
            << " steps/s; pacing at " << target_rate << "\n";
  std::cerr << "checkpoint_bench: serve phase (plain)...\n";
  const double p99_plain = RunServePhase(options, streams, target_rate,
                                         false);
  std::cerr << "checkpoint_bench: serve phase (snapshotting)...\n";
  const double p99_snapshot = RunServePhase(options, streams, target_rate,
                                            true);
  std::cerr << "checkpoint_bench: warm-start recovery...\n";
  std::size_t restored_sessions = 0;
  const double warmstart_seconds =
      RunWarmStartRecovery(options, &restored_sessions);
  FACTION_CHECK(restored_sessions == options.sessions);

  const double p99_ratio =
      p99_plain > 0.0 ? p99_snapshot / p99_plain : 1.0;
  const double speedup =
      warmstart_seconds > 0.0 ? replay_seconds / warmstart_seconds : 0.0;

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"checkpoint_bench\",\n"
       << "  \"workers\": " << options.workers << ",\n"
       << "  \"sessions\": " << options.sessions << ",\n"
       << "  \"steps\": " << options.steps << ",\n"
       << "  \"interval_steps\": " << options.interval_steps << ",\n"
       << "  \"durable\": " << (options.durable ? "true" : "false")
       << ",\n"
       << "  \"utilization\": " << JsonNumber(options.utilization) << ",\n"
       << "  \"target_rate\": " << JsonNumber(target_rate) << ",\n"
       << "  \"capture_ns_median\": " << JsonNumber(capture.median_ns)
       << ",\n"
       << "  \"capture_ns_p99\": " << JsonNumber(capture.p99_ns) << ",\n"
       << "  \"encode_ns_median\": " << JsonNumber(capture.encode_ns_median)
       << ",\n"
       << "  \"encode_ns_p99\": " << JsonNumber(capture.encode_ns_p99)
       << ",\n"
       << "  \"p99_plain_seconds\": " << JsonNumber(p99_plain) << ",\n"
       << "  \"p99_snapshot_seconds\": " << JsonNumber(p99_snapshot)
       << ",\n"
       << "  \"p99_ratio\": " << JsonNumber(p99_ratio) << ",\n"
       << "  \"replay_seconds\": " << JsonNumber(replay_seconds) << ",\n"
       << "  \"warmstart_seconds\": " << JsonNumber(warmstart_seconds)
       << ",\n"
       << "  \"warmstart_speedup\": " << JsonNumber(speedup) << "\n"
       << "}\n";

  std::cout << json.str();
  if (!options.out.empty()) {
    std::ofstream out(options.out);
    out << json.str();
    if (!out.good()) {
      std::cerr << "checkpoint_bench: failed to write " << options.out
                << "\n";
      return 1;
    }
  }

  if (!options.trace.empty()) {
    Result<std::unique_ptr<TraceWriter>> writer =
        TraceWriter::Create(options.trace);
    if (!writer.ok()) {
      std::cerr << "checkpoint_bench: " << writer.status().ToString()
                << "\n";
      return 1;
    }
    TraceWriter::ServeInfo serve;
    serve.workers = options.workers;
    serve.sessions = options.sessions;
    TraceWriter::CheckpointInfo checkpoint;
    checkpoint.enabled = true;
    checkpoint.interval_steps = options.interval_steps;
    FACTION_CHECK(writer.value()
                      ->WriteRunStart("checkpoint_bench", serve, {}, {},
                                      checkpoint)
                      .ok());
    FACTION_CHECK(writer.value()->WriteRunEnd(0, 0, 0).ok());
  }
  return 0;
}

bool ParseArgs(int argc, char** argv, BenchOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--workers" && (v = next())) {
      options->workers = std::atoi(v);
    } else if (arg == "--sessions" && (v = next())) {
      options->sessions = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--steps" && (v = next())) {
      options->steps = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--capture-iters" && (v = next())) {
      options->capture_iters = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--interval-steps" && (v = next())) {
      options->interval_steps = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--seed" && (v = next())) {
      options->seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--dir" && (v = next())) {
      options->dir = v;
    } else if (arg == "--out" && (v = next())) {
      options->out = v;
    } else if (arg == "--trace" && (v = next())) {
      options->trace = v;
    } else if (arg == "--utilization" && (v = next())) {
      options->utilization = std::atof(v);
    } else if (arg == "--durable") {
      options->durable = true;
    } else {
      std::cerr << "usage: checkpoint_bench [--workers N] [--sessions N]"
                   " [--steps N] [--capture-iters N] [--interval-steps N]"
                   " [--seed N] [--dir PATH] [--out PATH] [--trace PATH]"
                   " [--utilization F] [--durable]\n";
      return false;
    }
  }
  return options->workers >= 0 && options->sessions >= 1 &&
         options->steps >= 1 && options->capture_iters >= 10 &&
         options->interval_steps >= 1 && options->utilization > 0.0 &&
         options->utilization <= 1.0;
}

}  // namespace
}  // namespace faction

int main(int argc, char** argv) {
  faction::BenchOptions options;
  if (!faction::ParseArgs(argc, argv, &options)) return 2;
  return faction::Run(options);
}
