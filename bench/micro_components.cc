// Component microbenchmarks (google-benchmark): the per-piece cost model
// behind the Fig. 5 runtime comparisons — GDA density fitting, FACTION
// scoring, training steps, metric evaluation, and clustering.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/workspace.h"

#include "cluster/kmeans.h"
#include "common/rng.h"
#include "core/fair_score.h"
#include "data/streams.h"
#include "density/fair_density.h"
#include "fairness/metrics.h"
#include "fairness/relaxed.h"
#include "nn/conv.h"
#include "nn/trainer.h"
#include "stream/evaluator.h"
#include "tensor/image.h"
#include "tensor/ops.h"
#include "tensor/simd.h"

namespace faction {
namespace {

Dataset MakePool(std::size_t n, std::size_t dim, std::uint64_t seed) {
  StationaryConfig config;
  config.scale.samples_per_task = n;
  config.scale.seed = seed;
  config.dim = dim;
  config.num_tasks = 1;
  Result<std::vector<Dataset>> stream = MakeStationaryStream(config);
  FACTION_CHECK(stream.ok());
  return std::move(stream.value()[0]);
}

void BM_GaussianFit(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t d = static_cast<std::size_t>(state.range(1));
  const Dataset pool = MakePool(n, d, 1);
  CovarianceConfig config;
  for (auto _ : state) {
    Result<Gaussian> g = Gaussian::Fit(pool.features(), config);
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_GaussianFit)->Args({200, 8})->Args({800, 16})->Args({800, 32});

void BM_FairDensityFit(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Dataset pool = MakePool(n, 16, 2);
  CovarianceConfig config;
  for (auto _ : state) {
    Result<FairDensityEstimator> est = FairDensityEstimator::Fit(
        pool.features(), pool.labels(), pool.sensitive(), config);
    benchmark::DoNotOptimize(est);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_FairDensityFit)->Arg(200)->Arg(800)->Arg(3200);

void BM_FactionScoring(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const bool fair_select = state.range(1) != 0;
  const Dataset pool = MakePool(400, 16, 3);
  const Dataset candidates = MakePool(n, 16, 4);
  CovarianceConfig config;
  Result<FairDensityEstimator> est = FairDensityEstimator::Fit(
      pool.features(), pool.labels(), pool.sensitive(), config);
  FACTION_CHECK(est.ok());
  Matrix proba(n, 2, 0.5);
  for (auto _ : state) {
    Result<std::vector<FactionScore>> scores = ComputeFactionScores(
        est.value(), candidates.features(), proba, 0.5, fair_select);
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_FactionScoring)
    ->Args({400, 1})
    ->Args({1600, 1})
    ->Args({400, 0})
    ->Args({1600, 0});

void BM_TrainEpoch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const bool fairness = state.range(1) != 0;
  const Dataset pool = MakePool(n, 16, 5);
  Rng rng(7);
  MlpConfig mconfig;
  mconfig.input_dim = 16;
  mconfig.hidden_dims = {48, 16};
  mconfig.spectral.enabled = true;
  TrainConfig tconfig;
  tconfig.epochs = 1;
  tconfig.use_fairness_penalty = fairness;
  tconfig.fairness.mu = 0.6;
  for (auto _ : state) {
    state.PauseTiming();
    Rng model_rng(11);
    MlpClassifier model(mconfig, &model_rng);
    state.ResumeTiming();
    Result<TrainReport> report =
        TrainClassifier(&model, pool, tconfig, &rng);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_TrainEpoch)->Args({800, 0})->Args({800, 1});

void BM_EvaluateOnTask(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Dataset task = MakePool(n, 16, 6);
  Rng rng(13);
  MlpConfig mconfig;
  mconfig.input_dim = 16;
  mconfig.hidden_dims = {48, 16};
  MlpClassifier model(mconfig, &rng);
  for (auto _ : state) {
    Result<TaskMetrics> metrics =
        EvaluateOnTask(model, task, FairnessNotion::kDdp);
    benchmark::DoNotOptimize(metrics);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_EvaluateOnTask)->Arg(600)->Arg(2400);

void BM_FairKMeans(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Dataset pool = MakePool(n, 16, 8);
  KMeansConfig config;
  config.k = 50;
  Rng rng(17);
  for (auto _ : state) {
    Result<Clustering> clustering = FairKMeans(
        pool.features(), pool.sensitive(), config, 0.1, &rng);
    benchmark::DoNotOptimize(clustering);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_FairKMeans)->Arg(400)->Arg(1600);

void BM_RelaxedFairness(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Dataset pool = MakePool(n, 8, 9);
  std::vector<double> scores(n, 0.5);
  for (auto _ : state) {
    Result<double> v = RelaxedFairness(FairnessNotion::kDdp, scores,
                                       pool.sensitive(), pool.labels());
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_RelaxedFairness)->Arg(1000)->Arg(10000);

void BM_FairnessMetrics(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Dataset pool = MakePool(n, 8, 10);
  std::vector<int> yhat(pool.labels());
  for (auto _ : state) {
    Result<double> ddp =
        DemographicParityDifference(yhat, pool.sensitive());
    Result<double> eod =
        EqualizedOddsDifference(yhat, pool.labels(), pool.sensitive());
    Result<double> mi = MutualInformation(yhat, pool.sensitive());
    benchmark::DoNotOptimize(ddp);
    benchmark::DoNotOptimize(eod);
    benchmark::DoNotOptimize(mi);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_FairnessMetrics)->Arg(1000)->Arg(10000);

// ------------------------------------------- parallel compute layer (PR 2)

Matrix RandomMatrix(std::size_t rows, std::size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Gaussian();
  return m;
}

// The pre-parallel serial GEMM (seed ops.cc, ikj order with the zero-skip
// branch), kept verbatim as the speedup baseline for BENCH_PR2.json.
Matrix SeedMatMul(const Matrix& a, const Matrix& b) {
  FACTION_CHECK_EQ(a.cols(), b.rows());
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row_data(i);
    double* orow = out.row_data(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.row_data(k);
      for (std::size_t j = 0; j < b.cols(); ++j) {
        orow[j] += aik * brow[j];
      }
    }
  }
  return out;
}

void BM_MatMul(benchmark::State& state) {
  Rng rng(31);
  const Matrix a = RandomMatrix(800, 256, &rng);
  const Matrix b = RandomMatrix(256, 256, &rng);
  for (auto _ : state) {
    Matrix c = MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 800 * 256 * 256);
}
BENCHMARK(BM_MatMul);

void BM_MatMulSeed(benchmark::State& state) {
  Rng rng(31);
  const Matrix a = RandomMatrix(800, 256, &rng);
  const Matrix b = RandomMatrix(256, 256, &rng);
  for (auto _ : state) {
    Matrix c = SeedMatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 800 * 256 * 256);
}
BENCHMARK(BM_MatMulSeed);

void BM_Conv2dApply(benchmark::State& state) {
  Rng rng(33);
  const ImageShape shape{3, 16, 16};
  Conv2d conv(shape, 8, &rng);
  const Matrix x = RandomMatrix(128, shape.Flat(), &rng);
  for (auto _ : state) {
    Matrix y = conv.ForwardInference(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_Conv2dApply);

// Whole-pool FACTION scoring through the batched path (one blocked solve
// per mixture component shared by the density and fairness terms).
void BM_PoolScoring(benchmark::State& state) {
  const std::size_t n = 2000;
  const Dataset pool = MakePool(400, 16, 35);
  const Dataset candidates = MakePool(n, 16, 36);
  CovarianceConfig config;
  Result<FairDensityEstimator> est = FairDensityEstimator::Fit(
      pool.features(), pool.labels(), pool.sensitive(), config);
  FACTION_CHECK(est.ok());
  Matrix proba(n, 2, 0.5);
  for (auto _ : state) {
    Result<std::vector<FactionScore>> scores = ComputeFactionScores(
        est.value(), candidates.features(), proba, 0.5, true);
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_PoolScoring);

// The legacy per-sample scoring loop (pre-batching): a marginal-density
// solve per sample plus a second per-component solve pass for the fairness
// term — the BENCH_PR2.json baseline for BM_PoolScoring.
void BM_PoolScoringPerSample(benchmark::State& state) {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  const std::size_t n = 2000;
  const Dataset pool = MakePool(400, 16, 35);
  const Dataset candidates = MakePool(n, 16, 36);
  CovarianceConfig config;
  Result<FairDensityEstimator> fit = FairDensityEstimator::Fit(
      pool.features(), pool.labels(), pool.sensitive(), config);
  FACTION_CHECK(fit.ok());
  const FairDensityEstimator& est = fit.value();
  Matrix proba(n, 2, 0.5);
  for (auto _ : state) {
    std::vector<double> log_density(n), log_unfair(n, kNegInf);
    for (std::size_t i = 0; i < n; ++i) {
      const std::vector<double> z = candidates.features().Row(i);
      log_density[i] = est.LogMarginalDensity(z);
      std::vector<double> terms;
      for (int c = 0; c < FairDensityEstimator::kNumClasses; ++c) {
        double lp = 0.0, ln = 0.0;
        est.ComponentLogDensities(z, c, &lp, &ln);
        double log_delta = kNegInf;
        if (std::isfinite(lp) && std::isfinite(ln)) {
          const double hi = lp > ln ? lp : ln;
          const double gap = hi - (lp > ln ? ln : lp);
          if (gap >= 1e-300) log_delta = hi + std::log1p(-std::exp(-gap));
        } else if (std::isfinite(lp) || std::isfinite(ln)) {
          log_delta = std::isfinite(lp) ? lp : ln;
        }
        const double pc = proba(i, static_cast<std::size_t>(c));
        if (std::isfinite(log_delta) && pc > 1e-12) {
          terms.push_back(std::log(pc) + log_delta);
        }
      }
      if (!terms.empty()) log_unfair[i] = LogSumExp(terms);
    }
    benchmark::DoNotOptimize(log_density.data());
    benchmark::DoNotOptimize(log_unfair.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_PoolScoringPerSample);

// ---------------- GEMM conv, workspace trainer, incremental refits (PR 3)

// Serial naive convolution loops: the bitwise-parity baseline for the
// im2col/GEMM lowering (speedup pair for BENCH_PR3.json).
void BM_Conv2dNaive(benchmark::State& state) {
  Rng rng(33);
  const ImageShape shape{3, 16, 16};
  Conv2d conv(shape, 8, &rng);
  const Matrix x = RandomMatrix(128, shape.Flat(), &rng);
  for (auto _ : state) {
    Matrix y = conv.ApplyNaive(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_Conv2dNaive);

// Same convolution through the im2col-lowered GEMM path (identical inputs
// and — bitwise — identical outputs to BM_Conv2dNaive).
void BM_Conv2dIm2col(benchmark::State& state) {
  Rng rng(33);
  const ImageShape shape{3, 16, 16};
  Conv2d conv(shape, 8, &rng);
  const Matrix x = RandomMatrix(128, shape.Flat(), &rng);
  for (auto _ : state) {
    Matrix y = conv.ForwardInference(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_Conv2dIm2col);

// One full training pass with the persistent Workspace the online learner
// uses: steady-state iterations reuse every batch/gradient buffer.
void BM_TrainStep(benchmark::State& state) {
  const std::size_t n = 800;
  const Dataset pool = MakePool(n, 16, 5);
  Rng rng(7);
  MlpConfig mconfig;
  mconfig.input_dim = 16;
  mconfig.hidden_dims = {48, 16};
  mconfig.spectral.enabled = true;
  TrainConfig tconfig;
  tconfig.epochs = 1;
  Workspace workspace;
  for (auto _ : state) {
    state.PauseTiming();
    Rng model_rng(11);
    MlpClassifier model(mconfig, &model_rng);
    state.ResumeTiming();
    Result<TrainReport> report =
        TrainClassifier(&model, pool, tconfig, &rng, &workspace);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_TrainStep);

// Full batch refit of the GDA estimator on a pool of `n` rows — the cost
// FACTION used to pay every acquisition round.
void BM_DensityRefitBatch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Dataset pool = MakePool(n, 16, 41);
  CovarianceConfig config;
  for (auto _ : state) {
    Result<FairDensityEstimator> est = FairDensityEstimator::Fit(
        pool.features(), pool.labels(), pool.sensitive(), config);
    benchmark::DoNotOptimize(est);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_DensityRefitBatch)->Arg(2400);

// Incremental refit: one acquisition round folds A=25 new rows into the
// sufficient statistics of a pool already holding `n` rows. Cost is
// O(A d^2) + one Cholesky per touched component, independent of n.
void BM_DensityRefitIncremental(benchmark::State& state) {
  constexpr std::size_t kAcquisition = 25;
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 16;
  const Dataset pool = MakePool(n, dim, 41);
  const Dataset fresh = MakePool(400, dim, 42);
  CovarianceConfig config;
  Result<FairDensityEstimator> est = FairDensityEstimator::Fit(
      pool.features(), pool.labels(), pool.sensitive(), config);
  FACTION_CHECK(est.ok());
  Matrix rows(kAcquisition, dim);
  std::vector<int> ys(kAcquisition), ss(kAcquisition);
  std::size_t cursor = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kAcquisition; ++i) {
      const std::size_t idx = (cursor + i) % fresh.size();
      std::copy(fresh.features().row_data(idx),
                fresh.features().row_data(idx) + dim, rows.row_data(i));
      ys[i] = fresh.labels()[idx];
      ss[i] = fresh.sensitive()[idx];
    }
    cursor = (cursor + kAcquisition) % fresh.size();
    const Status updated = est.value().Update(rows, ys, ss, config);
    FACTION_CHECK(updated.ok());
    benchmark::DoNotOptimize(est);
  }
  state.SetItemsProcessed(state.iterations() * kAcquisition);
}
BENCHMARK(BM_DensityRefitIncremental)->Arg(2400);

// --------------------------- SIMD micro-kernel compute layer (PR 5)

// Pins the dispatch tier for one benchmark run; range(0) indexes
// SimdLevel. Unsupported tiers skip instead of silently measuring the
// fallback.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) : saved_(ActiveSimdLevel()) {
    ok_ = SetSimdLevel(level).ok();
  }
  ~ScopedSimdLevel() { (void)SetSimdLevel(saved_); }
  bool ok() const { return ok_; }

 private:
  SimdLevel saved_;
  bool ok_ = false;
};

// Square-GEMM throughput of the packed micro-kernel per dispatch tier;
// items processed = FLOPs, so the reported rate reads as FLOP/s.
void BM_GemmMicroKernel(benchmark::State& state) {
  const SimdLevel level = static_cast<SimdLevel>(state.range(0));
  ScopedSimdLevel guard(level);
  if (!guard.ok()) {
    state.SkipWithError("SIMD level unsupported on this host");
    return;
  }
  Rng rng(51);
  const std::size_t n = 256;
  const Matrix a = RandomMatrix(n, n, &rng);
  const Matrix b = RandomMatrix(n, n, &rng);
  Matrix c;
  for (auto _ : state) {
    MatMulInto(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(2 * n * n * n));
  state.SetLabel(SimdLevelName(level));
}
BENCHMARK(BM_GemmMicroKernel)->Arg(0)->Arg(1)->Arg(2);

// BM_PoolScoring with the dispatch tier pinned: isolates how much of the
// scoring path rides the vectorized solve/GEMM kernels.
void BM_PoolScoringSimd(benchmark::State& state) {
  const SimdLevel level = static_cast<SimdLevel>(state.range(0));
  ScopedSimdLevel guard(level);
  if (!guard.ok()) {
    state.SkipWithError("SIMD level unsupported on this host");
    return;
  }
  const std::size_t n = 2000;
  const Dataset pool = MakePool(400, 16, 35);
  const Dataset candidates = MakePool(n, 16, 36);
  CovarianceConfig config;
  Result<FairDensityEstimator> est = FairDensityEstimator::Fit(
      pool.features(), pool.labels(), pool.sensitive(), config);
  FACTION_CHECK(est.ok());
  Matrix proba(n, 2, 0.5);
  FactionScoreScratch scratch;
  for (auto _ : state) {
    Result<std::vector<FactionScore>> scores = ComputeFactionScores(
        est.value(), candidates.features(), proba, 0.5, true, &scratch);
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
  state.SetLabel(SimdLevelName(level));
}
BENCHMARK(BM_PoolScoringSimd)->Arg(0)->Arg(1)->Arg(2);

// BM_TrainStep with the dispatch tier pinned: the MLP training pass is
// GEMM-bound, so this measures the micro-kernel end to end.
void BM_TrainStepSimd(benchmark::State& state) {
  const SimdLevel level = static_cast<SimdLevel>(state.range(0));
  ScopedSimdLevel guard(level);
  if (!guard.ok()) {
    state.SkipWithError("SIMD level unsupported on this host");
    return;
  }
  const std::size_t n = 800;
  const Dataset pool = MakePool(n, 16, 5);
  Rng rng(7);
  MlpConfig mconfig;
  mconfig.input_dim = 16;
  mconfig.hidden_dims = {48, 16};
  mconfig.spectral.enabled = true;
  TrainConfig tconfig;
  tconfig.epochs = 1;
  Workspace workspace;
  for (auto _ : state) {
    state.PauseTiming();
    Rng model_rng(11);
    MlpClassifier model(mconfig, &model_rng);
    state.ResumeTiming();
    Result<TrainReport> report =
        TrainClassifier(&model, pool, tconfig, &rng, &workspace);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
  state.SetLabel(SimdLevelName(level));
}
BENCHMARK(BM_TrainStepSimd)->Arg(0)->Arg(1)->Arg(2);

// ---------------- sliding-window density forgetting (PR 8)

// Forgetting-mode covariance (ridge regularization): the mode every
// windowed/decayed estimator runs in, where downdates are exact O(d^2)
// rank-1 factor updates.
CovarianceConfig ForgettingConfig() {
  CovarianceConfig config;
  config.forgetting = true;
  return config;
}

// Pure eviction cost: rank-1 downdating A=25 previously folded rows out
// of an estimator holding `n`. The paused phase folds the same rows back
// so the estimator is identical at every iteration's start.
void BM_DensityDowndate(benchmark::State& state) {
  constexpr std::size_t kAcquisition = 25;
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 16;
  const Dataset pool = MakePool(n, dim, 41);
  const CovarianceConfig config = ForgettingConfig();
  Result<FairDensityEstimator> est = FairDensityEstimator::Fit(
      pool.features(), pool.labels(), pool.sensitive(), config);
  FACTION_CHECK(est.ok());
  std::size_t cursor = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kAcquisition; ++i) {
      const std::size_t idx = (cursor + i) % n;
      const Status evicted = est.value().DowndateOne(
          pool.features().row_data(idx), pool.labels()[idx],
          pool.sensitive()[idx], config);
      FACTION_CHECK(evicted.ok());
    }
    state.PauseTiming();
    for (std::size_t i = 0; i < kAcquisition; ++i) {
      const std::size_t idx = (cursor + i) % n;
      const Status folded = est.value().UpdateOne(
          pool.features().row_data(idx), pool.labels()[idx],
          pool.sensitive()[idx], config);
      FACTION_CHECK(folded.ok());
    }
    cursor = (cursor + kAcquisition) % n;
    state.ResumeTiming();
    benchmark::DoNotOptimize(est);
  }
  state.SetItemsProcessed(state.iterations() * kAcquisition);
}
BENCHMARK(BM_DensityDowndate)->Arg(2400);

// Windowed batch refit: each acquisition round slides a W=2048 window by
// A=25 over an n-row stream and refits the estimator from scratch on the
// window contents — the parity-oracle path (FactionStrategy with
// incremental_density=false and density_window set). O(W d^2) per round.
void BM_WindowedTrainStepBatch(benchmark::State& state) {
  constexpr std::size_t kAcquisition = 25;
  constexpr std::size_t kWindow = 2048;
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 16;
  const Dataset pool = MakePool(n, dim, 43);
  const CovarianceConfig config = ForgettingConfig();
  Matrix window(kWindow, dim);
  std::vector<int> ys(kWindow), ss(kWindow);
  std::size_t cursor = 0;
  for (auto _ : state) {
    cursor = (cursor + kAcquisition) % n;
    for (std::size_t i = 0; i < kWindow; ++i) {
      const std::size_t idx = (cursor + i) % n;
      std::copy(pool.features().row_data(idx),
                pool.features().row_data(idx) + dim, window.row_data(i));
      ys[i] = pool.labels()[idx];
      ss[i] = pool.sensitive()[idx];
    }
    Result<FairDensityEstimator> est =
        FairDensityEstimator::Fit(window, ys, ss, config);
    FACTION_CHECK(est.ok());
    benchmark::DoNotOptimize(est);
  }
  state.SetItemsProcessed(state.iterations() * kAcquisition);
}
BENCHMARK(BM_WindowedTrainStepBatch)->Arg(2400);

// Incremental window slide over the same stream: the A=25 arrivals evict
// the 25 oldest rows (rank-1 downdates) and fold the 25 newest (rank-1
// updates) — O(A d^2) per round, independent of the window length. The
// speedup of this over BM_WindowedTrainStepBatch is the
// density_windowed_slide_vs_batch pair in BENCH_PR8.json.
void BM_WindowedTrainStepIncremental(benchmark::State& state) {
  constexpr std::size_t kAcquisition = 25;
  constexpr std::size_t kWindow = 2048;
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 16;
  const Dataset pool = MakePool(n, dim, 43);
  const CovarianceConfig config = ForgettingConfig();
  Matrix window(kWindow, dim);
  std::vector<int> ys(kWindow), ss(kWindow);
  for (std::size_t i = 0; i < kWindow; ++i) {
    std::copy(pool.features().row_data(i), pool.features().row_data(i) + dim,
              window.row_data(i));
    ys[i] = pool.labels()[i];
    ss[i] = pool.sensitive()[i];
  }
  Result<FairDensityEstimator> est =
      FairDensityEstimator::Fit(window, ys, ss, config);
  FACTION_CHECK(est.ok());
  std::size_t oldest = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kAcquisition; ++i) {
      const std::size_t evict = (oldest + i) % n;
      const std::size_t fold = (oldest + kWindow + i) % n;
      const Status evicted = est.value().DowndateOne(
          pool.features().row_data(evict), pool.labels()[evict],
          pool.sensitive()[evict], config);
      FACTION_CHECK(evicted.ok());
      const Status folded = est.value().UpdateOne(
          pool.features().row_data(fold), pool.labels()[fold],
          pool.sensitive()[fold], config);
      FACTION_CHECK(folded.ok());
    }
    oldest = (oldest + kAcquisition) % n;
    benchmark::DoNotOptimize(est);
  }
  state.SetItemsProcessed(state.iterations() * kAcquisition);
}
BENCHMARK(BM_WindowedTrainStepIncremental)->Arg(2400);

}  // namespace
}  // namespace faction

BENCHMARK_MAIN();
