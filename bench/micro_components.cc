// Component microbenchmarks (google-benchmark): the per-piece cost model
// behind the Fig. 5 runtime comparisons — GDA density fitting, FACTION
// scoring, training steps, metric evaluation, and clustering.
#include <benchmark/benchmark.h>

#include "cluster/kmeans.h"
#include "core/fair_score.h"
#include "data/streams.h"
#include "density/fair_density.h"
#include "fairness/metrics.h"
#include "fairness/relaxed.h"
#include "nn/trainer.h"
#include "stream/evaluator.h"

namespace faction {
namespace {

Dataset MakePool(std::size_t n, std::size_t dim, std::uint64_t seed) {
  StationaryConfig config;
  config.scale.samples_per_task = n;
  config.scale.seed = seed;
  config.dim = dim;
  config.num_tasks = 1;
  Result<std::vector<Dataset>> stream = MakeStationaryStream(config);
  FACTION_CHECK(stream.ok());
  return std::move(stream.value()[0]);
}

void BM_GaussianFit(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t d = static_cast<std::size_t>(state.range(1));
  const Dataset pool = MakePool(n, d, 1);
  CovarianceConfig config;
  for (auto _ : state) {
    Result<Gaussian> g = Gaussian::Fit(pool.features(), config);
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_GaussianFit)->Args({200, 8})->Args({800, 16})->Args({800, 32});

void BM_FairDensityFit(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Dataset pool = MakePool(n, 16, 2);
  CovarianceConfig config;
  for (auto _ : state) {
    Result<FairDensityEstimator> est = FairDensityEstimator::Fit(
        pool.features(), pool.labels(), pool.sensitive(), config);
    benchmark::DoNotOptimize(est);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_FairDensityFit)->Arg(200)->Arg(800)->Arg(3200);

void BM_FactionScoring(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const bool fair_select = state.range(1) != 0;
  const Dataset pool = MakePool(400, 16, 3);
  const Dataset candidates = MakePool(n, 16, 4);
  CovarianceConfig config;
  Result<FairDensityEstimator> est = FairDensityEstimator::Fit(
      pool.features(), pool.labels(), pool.sensitive(), config);
  FACTION_CHECK(est.ok());
  Matrix proba(n, 2, 0.5);
  for (auto _ : state) {
    Result<std::vector<FactionScore>> scores = ComputeFactionScores(
        est.value(), candidates.features(), proba, 0.5, fair_select);
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_FactionScoring)
    ->Args({400, 1})
    ->Args({1600, 1})
    ->Args({400, 0})
    ->Args({1600, 0});

void BM_TrainEpoch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const bool fairness = state.range(1) != 0;
  const Dataset pool = MakePool(n, 16, 5);
  Rng rng(7);
  MlpConfig mconfig;
  mconfig.input_dim = 16;
  mconfig.hidden_dims = {48, 16};
  mconfig.spectral.enabled = true;
  TrainConfig tconfig;
  tconfig.epochs = 1;
  tconfig.use_fairness_penalty = fairness;
  tconfig.fairness.mu = 0.6;
  for (auto _ : state) {
    state.PauseTiming();
    Rng model_rng(11);
    MlpClassifier model(mconfig, &model_rng);
    state.ResumeTiming();
    Result<TrainReport> report =
        TrainClassifier(&model, pool, tconfig, &rng);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_TrainEpoch)->Args({800, 0})->Args({800, 1});

void BM_EvaluateOnTask(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Dataset task = MakePool(n, 16, 6);
  Rng rng(13);
  MlpConfig mconfig;
  mconfig.input_dim = 16;
  mconfig.hidden_dims = {48, 16};
  MlpClassifier model(mconfig, &rng);
  for (auto _ : state) {
    Result<TaskMetrics> metrics =
        EvaluateOnTask(model, task, FairnessNotion::kDdp);
    benchmark::DoNotOptimize(metrics);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_EvaluateOnTask)->Arg(600)->Arg(2400);

void BM_FairKMeans(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Dataset pool = MakePool(n, 16, 8);
  KMeansConfig config;
  config.k = 50;
  Rng rng(17);
  for (auto _ : state) {
    Result<Clustering> clustering = FairKMeans(
        pool.features(), pool.sensitive(), config, 0.1, &rng);
    benchmark::DoNotOptimize(clustering);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_FairKMeans)->Arg(400)->Arg(1600);

void BM_RelaxedFairness(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Dataset pool = MakePool(n, 8, 9);
  std::vector<double> scores(n, 0.5);
  for (auto _ : state) {
    Result<double> v = RelaxedFairness(FairnessNotion::kDdp, scores,
                                       pool.sensitive(), pool.labels());
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_RelaxedFairness)->Arg(1000)->Arg(10000);

void BM_FairnessMetrics(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Dataset pool = MakePool(n, 8, 10);
  std::vector<int> yhat(pool.labels());
  for (auto _ : state) {
    Result<double> ddp =
        DemographicParityDifference(yhat, pool.sensitive());
    Result<double> eod =
        EqualizedOddsDifference(yhat, pool.labels(), pool.sensitive());
    Result<double> mi = MutualInformation(yhat, pool.sensitive());
    benchmark::DoNotOptimize(ddp);
    benchmark::DoNotOptimize(eod);
    benchmark::DoNotOptimize(mi);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_FairnessMetrics)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace faction

BENCHMARK_MAIN();
