// Fig. 2 reproduction for the nysf stream: per-task accuracy, DDP, EOD and
// MI for all eight methods (FACTION + 7 baselines).
#include "bench/fig2_common.h"

int main() { return faction::bench::RunFig2("nysf"); }
