// Fig. 4 reproduction: ablation study on all five datasets. Variants:
// full FACTION, "w/o fair select" (no Delta g term in Eq. 6),
// "w/o fair reg" (no Eq. 9 penalty), and "w/o fair select & fair reg".
// Expected shape: every simplified variant is less fair than the full
// system on most datasets.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace faction;
  using namespace faction::bench;

  const BenchScale scale = GetBenchScale();
  const std::vector<std::string> variants = {
      "FACTION", "w/o fair select", "w/o fair reg",
      "w/o fair select & fair reg"};

  std::cout << "=== Fig. 4 reproduction: FACTION ablations across datasets "
               "(lower fairness metrics are better) ===\n";
  for (const std::string& dataset : PaperDatasetNames()) {
    const Result<std::vector<std::vector<Dataset>>> streams =
        BuildStreams(dataset, scale);
    if (!streams.ok()) {
      std::fprintf(stderr, "stream build failed (%s): %s\n", dataset.c_str(),
                   streams.status().ToString().c_str());
      return 1;
    }
    const Result<std::vector<MethodResult>> results =
        RunMethods(variants, streams.value(), scale.defaults);
    if (!results.ok()) {
      std::fprintf(stderr, "bench failed (%s): %s\n", dataset.c_str(),
                   results.status().ToString().c_str());
      return 1;
    }
    PrintSummary("dataset: " + dataset, results.value());
  }
  return 0;
}
