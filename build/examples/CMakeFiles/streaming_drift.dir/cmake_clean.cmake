file(REMOVE_RECURSE
  "CMakeFiles/streaming_drift.dir/streaming_drift.cpp.o"
  "CMakeFiles/streaming_drift.dir/streaming_drift.cpp.o.d"
  "streaming_drift"
  "streaming_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
