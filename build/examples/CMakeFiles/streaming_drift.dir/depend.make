# Empty dependencies file for streaming_drift.
# This may be replaced when dependencies are built.
