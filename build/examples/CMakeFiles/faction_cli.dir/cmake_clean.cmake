file(REMOVE_RECURSE
  "CMakeFiles/faction_cli.dir/faction_cli.cpp.o"
  "CMakeFiles/faction_cli.dir/faction_cli.cpp.o.d"
  "faction_cli"
  "faction_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faction_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
