# Empty dependencies file for faction_cli.
# This may be replaced when dependencies are built.
