# Empty dependencies file for pedestrian_detection.
# This may be replaced when dependencies are built.
