file(REMOVE_RECURSE
  "CMakeFiles/pedestrian_detection.dir/pedestrian_detection.cpp.o"
  "CMakeFiles/pedestrian_detection.dir/pedestrian_detection.cpp.o.d"
  "pedestrian_detection"
  "pedestrian_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pedestrian_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
