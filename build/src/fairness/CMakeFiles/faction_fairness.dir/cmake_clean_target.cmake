file(REMOVE_RECURSE
  "libfaction_fairness.a"
)
