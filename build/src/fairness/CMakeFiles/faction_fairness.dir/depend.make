# Empty dependencies file for faction_fairness.
# This may be replaced when dependencies are built.
