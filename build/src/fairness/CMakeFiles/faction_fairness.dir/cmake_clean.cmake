file(REMOVE_RECURSE
  "CMakeFiles/faction_fairness.dir/individual.cc.o"
  "CMakeFiles/faction_fairness.dir/individual.cc.o.d"
  "CMakeFiles/faction_fairness.dir/metrics.cc.o"
  "CMakeFiles/faction_fairness.dir/metrics.cc.o.d"
  "CMakeFiles/faction_fairness.dir/relaxed.cc.o"
  "CMakeFiles/faction_fairness.dir/relaxed.cc.o.d"
  "libfaction_fairness.a"
  "libfaction_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faction_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
