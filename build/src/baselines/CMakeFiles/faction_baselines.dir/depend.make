# Empty dependencies file for faction_baselines.
# This may be replaced when dependencies are built.
