file(REMOVE_RECURSE
  "libfaction_baselines.a"
)
