file(REMOVE_RECURSE
  "CMakeFiles/faction_baselines.dir/decoupled_strategy.cc.o"
  "CMakeFiles/faction_baselines.dir/decoupled_strategy.cc.o.d"
  "CMakeFiles/faction_baselines.dir/fal_strategy.cc.o"
  "CMakeFiles/faction_baselines.dir/fal_strategy.cc.o.d"
  "CMakeFiles/faction_baselines.dir/falcur_strategy.cc.o"
  "CMakeFiles/faction_baselines.dir/falcur_strategy.cc.o.d"
  "CMakeFiles/faction_baselines.dir/simple_strategies.cc.o"
  "CMakeFiles/faction_baselines.dir/simple_strategies.cc.o.d"
  "CMakeFiles/faction_baselines.dir/uncertainty.cc.o"
  "CMakeFiles/faction_baselines.dir/uncertainty.cc.o.d"
  "libfaction_baselines.a"
  "libfaction_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faction_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
