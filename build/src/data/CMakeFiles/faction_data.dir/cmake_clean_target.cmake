file(REMOVE_RECURSE
  "libfaction_data.a"
)
