# Empty compiler generated dependencies file for faction_data.
# This may be replaced when dependencies are built.
