file(REMOVE_RECURSE
  "CMakeFiles/faction_data.dir/dataset.cc.o"
  "CMakeFiles/faction_data.dir/dataset.cc.o.d"
  "CMakeFiles/faction_data.dir/images.cc.o"
  "CMakeFiles/faction_data.dir/images.cc.o.d"
  "CMakeFiles/faction_data.dir/streams.cc.o"
  "CMakeFiles/faction_data.dir/streams.cc.o.d"
  "CMakeFiles/faction_data.dir/synthetic.cc.o"
  "CMakeFiles/faction_data.dir/synthetic.cc.o.d"
  "libfaction_data.a"
  "libfaction_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faction_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
