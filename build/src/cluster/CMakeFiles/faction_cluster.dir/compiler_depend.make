# Empty compiler generated dependencies file for faction_cluster.
# This may be replaced when dependencies are built.
