file(REMOVE_RECURSE
  "libfaction_cluster.a"
)
