file(REMOVE_RECURSE
  "CMakeFiles/faction_cluster.dir/kmeans.cc.o"
  "CMakeFiles/faction_cluster.dir/kmeans.cc.o.d"
  "libfaction_cluster.a"
  "libfaction_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faction_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
