# Empty dependencies file for faction_core.
# This may be replaced when dependencies are built.
