file(REMOVE_RECURSE
  "libfaction_core.a"
)
