file(REMOVE_RECURSE
  "CMakeFiles/faction_core.dir/faction_strategy.cc.o"
  "CMakeFiles/faction_core.dir/faction_strategy.cc.o.d"
  "CMakeFiles/faction_core.dir/fair_score.cc.o"
  "CMakeFiles/faction_core.dir/fair_score.cc.o.d"
  "CMakeFiles/faction_core.dir/presets.cc.o"
  "CMakeFiles/faction_core.dir/presets.cc.o.d"
  "CMakeFiles/faction_core.dir/streaming_faction.cc.o"
  "CMakeFiles/faction_core.dir/streaming_faction.cc.o.d"
  "libfaction_core.a"
  "libfaction_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faction_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
