# Empty dependencies file for faction_density.
# This may be replaced when dependencies are built.
