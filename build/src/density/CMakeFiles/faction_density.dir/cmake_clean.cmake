file(REMOVE_RECURSE
  "CMakeFiles/faction_density.dir/fair_density.cc.o"
  "CMakeFiles/faction_density.dir/fair_density.cc.o.d"
  "CMakeFiles/faction_density.dir/gaussian.cc.o"
  "CMakeFiles/faction_density.dir/gaussian.cc.o.d"
  "CMakeFiles/faction_density.dir/grouped_density.cc.o"
  "CMakeFiles/faction_density.dir/grouped_density.cc.o.d"
  "libfaction_density.a"
  "libfaction_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faction_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
