file(REMOVE_RECURSE
  "libfaction_density.a"
)
