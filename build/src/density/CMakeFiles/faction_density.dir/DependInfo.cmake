
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/density/fair_density.cc" "src/density/CMakeFiles/faction_density.dir/fair_density.cc.o" "gcc" "src/density/CMakeFiles/faction_density.dir/fair_density.cc.o.d"
  "/root/repo/src/density/gaussian.cc" "src/density/CMakeFiles/faction_density.dir/gaussian.cc.o" "gcc" "src/density/CMakeFiles/faction_density.dir/gaussian.cc.o.d"
  "/root/repo/src/density/grouped_density.cc" "src/density/CMakeFiles/faction_density.dir/grouped_density.cc.o" "gcc" "src/density/CMakeFiles/faction_density.dir/grouped_density.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/faction_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/faction_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
