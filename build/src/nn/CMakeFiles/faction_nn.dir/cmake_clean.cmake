file(REMOVE_RECURSE
  "CMakeFiles/faction_nn.dir/activation.cc.o"
  "CMakeFiles/faction_nn.dir/activation.cc.o.d"
  "CMakeFiles/faction_nn.dir/classifier.cc.o"
  "CMakeFiles/faction_nn.dir/classifier.cc.o.d"
  "CMakeFiles/faction_nn.dir/conv.cc.o"
  "CMakeFiles/faction_nn.dir/conv.cc.o.d"
  "CMakeFiles/faction_nn.dir/linear.cc.o"
  "CMakeFiles/faction_nn.dir/linear.cc.o.d"
  "CMakeFiles/faction_nn.dir/loss.cc.o"
  "CMakeFiles/faction_nn.dir/loss.cc.o.d"
  "CMakeFiles/faction_nn.dir/mlp.cc.o"
  "CMakeFiles/faction_nn.dir/mlp.cc.o.d"
  "CMakeFiles/faction_nn.dir/optimizer.cc.o"
  "CMakeFiles/faction_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/faction_nn.dir/serialize.cc.o"
  "CMakeFiles/faction_nn.dir/serialize.cc.o.d"
  "CMakeFiles/faction_nn.dir/trainer.cc.o"
  "CMakeFiles/faction_nn.dir/trainer.cc.o.d"
  "libfaction_nn.a"
  "libfaction_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faction_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
