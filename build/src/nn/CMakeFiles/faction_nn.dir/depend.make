# Empty dependencies file for faction_nn.
# This may be replaced when dependencies are built.
