
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cc" "src/nn/CMakeFiles/faction_nn.dir/activation.cc.o" "gcc" "src/nn/CMakeFiles/faction_nn.dir/activation.cc.o.d"
  "/root/repo/src/nn/classifier.cc" "src/nn/CMakeFiles/faction_nn.dir/classifier.cc.o" "gcc" "src/nn/CMakeFiles/faction_nn.dir/classifier.cc.o.d"
  "/root/repo/src/nn/conv.cc" "src/nn/CMakeFiles/faction_nn.dir/conv.cc.o" "gcc" "src/nn/CMakeFiles/faction_nn.dir/conv.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/faction_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/faction_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/faction_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/faction_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/nn/CMakeFiles/faction_nn.dir/mlp.cc.o" "gcc" "src/nn/CMakeFiles/faction_nn.dir/mlp.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/faction_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/faction_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/faction_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/faction_nn.dir/serialize.cc.o.d"
  "/root/repo/src/nn/trainer.cc" "src/nn/CMakeFiles/faction_nn.dir/trainer.cc.o" "gcc" "src/nn/CMakeFiles/faction_nn.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/faction_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/fairness/CMakeFiles/faction_fairness.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/faction_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/faction_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
