file(REMOVE_RECURSE
  "libfaction_nn.a"
)
