# Empty compiler generated dependencies file for faction_common.
# This may be replaced when dependencies are built.
