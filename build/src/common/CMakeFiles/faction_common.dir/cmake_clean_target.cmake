file(REMOVE_RECURSE
  "libfaction_common.a"
)
