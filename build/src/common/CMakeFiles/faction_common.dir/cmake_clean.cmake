file(REMOVE_RECURSE
  "CMakeFiles/faction_common.dir/logging.cc.o"
  "CMakeFiles/faction_common.dir/logging.cc.o.d"
  "CMakeFiles/faction_common.dir/rng.cc.o"
  "CMakeFiles/faction_common.dir/rng.cc.o.d"
  "CMakeFiles/faction_common.dir/stats.cc.o"
  "CMakeFiles/faction_common.dir/stats.cc.o.d"
  "CMakeFiles/faction_common.dir/status.cc.o"
  "CMakeFiles/faction_common.dir/status.cc.o.d"
  "CMakeFiles/faction_common.dir/table.cc.o"
  "CMakeFiles/faction_common.dir/table.cc.o.d"
  "libfaction_common.a"
  "libfaction_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faction_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
