file(REMOVE_RECURSE
  "libfaction_tensor.a"
)
