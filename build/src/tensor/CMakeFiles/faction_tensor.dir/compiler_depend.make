# Empty compiler generated dependencies file for faction_tensor.
# This may be replaced when dependencies are built.
