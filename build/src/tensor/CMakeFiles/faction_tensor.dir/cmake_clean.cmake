file(REMOVE_RECURSE
  "CMakeFiles/faction_tensor.dir/linalg.cc.o"
  "CMakeFiles/faction_tensor.dir/linalg.cc.o.d"
  "CMakeFiles/faction_tensor.dir/matrix.cc.o"
  "CMakeFiles/faction_tensor.dir/matrix.cc.o.d"
  "CMakeFiles/faction_tensor.dir/ops.cc.o"
  "CMakeFiles/faction_tensor.dir/ops.cc.o.d"
  "libfaction_tensor.a"
  "libfaction_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faction_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
