# Empty dependencies file for faction_stream.
# This may be replaced when dependencies are built.
