
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/drift.cc" "src/stream/CMakeFiles/faction_stream.dir/drift.cc.o" "gcc" "src/stream/CMakeFiles/faction_stream.dir/drift.cc.o.d"
  "/root/repo/src/stream/evaluator.cc" "src/stream/CMakeFiles/faction_stream.dir/evaluator.cc.o" "gcc" "src/stream/CMakeFiles/faction_stream.dir/evaluator.cc.o.d"
  "/root/repo/src/stream/incremental.cc" "src/stream/CMakeFiles/faction_stream.dir/incremental.cc.o" "gcc" "src/stream/CMakeFiles/faction_stream.dir/incremental.cc.o.d"
  "/root/repo/src/stream/online_learner.cc" "src/stream/CMakeFiles/faction_stream.dir/online_learner.cc.o" "gcc" "src/stream/CMakeFiles/faction_stream.dir/online_learner.cc.o.d"
  "/root/repo/src/stream/oracle.cc" "src/stream/CMakeFiles/faction_stream.dir/oracle.cc.o" "gcc" "src/stream/CMakeFiles/faction_stream.dir/oracle.cc.o.d"
  "/root/repo/src/stream/report.cc" "src/stream/CMakeFiles/faction_stream.dir/report.cc.o" "gcc" "src/stream/CMakeFiles/faction_stream.dir/report.cc.o.d"
  "/root/repo/src/stream/selection.cc" "src/stream/CMakeFiles/faction_stream.dir/selection.cc.o" "gcc" "src/stream/CMakeFiles/faction_stream.dir/selection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/faction_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/faction_data.dir/DependInfo.cmake"
  "/root/repo/build/src/fairness/CMakeFiles/faction_fairness.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/faction_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/faction_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
