file(REMOVE_RECURSE
  "CMakeFiles/faction_stream.dir/drift.cc.o"
  "CMakeFiles/faction_stream.dir/drift.cc.o.d"
  "CMakeFiles/faction_stream.dir/evaluator.cc.o"
  "CMakeFiles/faction_stream.dir/evaluator.cc.o.d"
  "CMakeFiles/faction_stream.dir/incremental.cc.o"
  "CMakeFiles/faction_stream.dir/incremental.cc.o.d"
  "CMakeFiles/faction_stream.dir/online_learner.cc.o"
  "CMakeFiles/faction_stream.dir/online_learner.cc.o.d"
  "CMakeFiles/faction_stream.dir/oracle.cc.o"
  "CMakeFiles/faction_stream.dir/oracle.cc.o.d"
  "CMakeFiles/faction_stream.dir/report.cc.o"
  "CMakeFiles/faction_stream.dir/report.cc.o.d"
  "CMakeFiles/faction_stream.dir/selection.cc.o"
  "CMakeFiles/faction_stream.dir/selection.cc.o.d"
  "libfaction_stream.a"
  "libfaction_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faction_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
