file(REMOVE_RECURSE
  "libfaction_stream.a"
)
