
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/core_test.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/faction_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/faction_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/faction_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/faction_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/density/CMakeFiles/faction_density.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/faction_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/faction_data.dir/DependInfo.cmake"
  "/root/repo/build/src/fairness/CMakeFiles/faction_fairness.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/faction_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/faction_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
