# Empty dependencies file for streaming_faction_test.
# This may be replaced when dependencies are built.
