file(REMOVE_RECURSE
  "CMakeFiles/streaming_faction_test.dir/streaming_faction_test.cc.o"
  "CMakeFiles/streaming_faction_test.dir/streaming_faction_test.cc.o.d"
  "streaming_faction_test"
  "streaming_faction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_faction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
