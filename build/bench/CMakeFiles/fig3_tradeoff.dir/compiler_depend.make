# Empty compiler generated dependencies file for fig3_tradeoff.
# This may be replaced when dependencies are built.
