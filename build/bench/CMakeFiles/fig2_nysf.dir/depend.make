# Empty dependencies file for fig2_nysf.
# This may be replaced when dependencies are built.
