file(REMOVE_RECURSE
  "CMakeFiles/fig2_nysf.dir/fig2_nysf.cc.o"
  "CMakeFiles/fig2_nysf.dir/fig2_nysf.cc.o.d"
  "fig2_nysf"
  "fig2_nysf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_nysf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
