# Empty compiler generated dependencies file for image_backbone.
# This may be replaced when dependencies are built.
