file(REMOVE_RECURSE
  "CMakeFiles/image_backbone.dir/image_backbone.cc.o"
  "CMakeFiles/image_backbone.dir/image_backbone.cc.o.d"
  "image_backbone"
  "image_backbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
