# Empty dependencies file for fig2_fairface.
# This may be replaced when dependencies are built.
