file(REMOVE_RECURSE
  "CMakeFiles/fig2_fairface.dir/fig2_fairface.cc.o"
  "CMakeFiles/fig2_fairface.dir/fig2_fairface.cc.o.d"
  "fig2_fairface"
  "fig2_fairface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_fairface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
