file(REMOVE_RECURSE
  "CMakeFiles/fig2_celeba.dir/fig2_celeba.cc.o"
  "CMakeFiles/fig2_celeba.dir/fig2_celeba.cc.o.d"
  "fig2_celeba"
  "fig2_celeba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_celeba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
