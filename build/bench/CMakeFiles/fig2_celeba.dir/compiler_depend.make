# Empty compiler generated dependencies file for fig2_celeba.
# This may be replaced when dependencies are built.
