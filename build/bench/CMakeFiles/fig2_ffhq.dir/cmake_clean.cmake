file(REMOVE_RECURSE
  "CMakeFiles/fig2_ffhq.dir/fig2_ffhq.cc.o"
  "CMakeFiles/fig2_ffhq.dir/fig2_ffhq.cc.o.d"
  "fig2_ffhq"
  "fig2_ffhq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_ffhq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
