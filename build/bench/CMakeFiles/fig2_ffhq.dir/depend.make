# Empty dependencies file for fig2_ffhq.
# This may be replaced when dependencies are built.
