# Empty compiler generated dependencies file for fig4_ablation.
# This may be replaced when dependencies are built.
