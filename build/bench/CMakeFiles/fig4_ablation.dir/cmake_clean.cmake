file(REMOVE_RECURSE
  "CMakeFiles/fig4_ablation.dir/fig4_ablation.cc.o"
  "CMakeFiles/fig4_ablation.dir/fig4_ablation.cc.o.d"
  "fig4_ablation"
  "fig4_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
