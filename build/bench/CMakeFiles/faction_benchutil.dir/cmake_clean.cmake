file(REMOVE_RECURSE
  "../lib/libfaction_benchutil.a"
  "../lib/libfaction_benchutil.pdb"
  "CMakeFiles/faction_benchutil.dir/bench_util.cc.o"
  "CMakeFiles/faction_benchutil.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faction_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
