# Empty dependencies file for faction_benchutil.
# This may be replaced when dependencies are built.
