file(REMOVE_RECURSE
  "../lib/libfaction_benchutil.a"
)
