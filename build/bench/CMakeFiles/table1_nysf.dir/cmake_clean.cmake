file(REMOVE_RECURSE
  "CMakeFiles/table1_nysf.dir/table1_nysf.cc.o"
  "CMakeFiles/table1_nysf.dir/table1_nysf.cc.o.d"
  "table1_nysf"
  "table1_nysf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_nysf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
