# Empty compiler generated dependencies file for table1_nysf.
# This may be replaced when dependencies are built.
