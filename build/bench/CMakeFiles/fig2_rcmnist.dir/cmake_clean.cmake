file(REMOVE_RECURSE
  "CMakeFiles/fig2_rcmnist.dir/fig2_rcmnist.cc.o"
  "CMakeFiles/fig2_rcmnist.dir/fig2_rcmnist.cc.o.d"
  "fig2_rcmnist"
  "fig2_rcmnist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_rcmnist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
