# Empty dependencies file for fig2_rcmnist.
# This may be replaced when dependencies are built.
