file(REMOVE_RECURSE
  "CMakeFiles/fig6_backbone.dir/fig6_backbone.cc.o"
  "CMakeFiles/fig6_backbone.dir/fig6_backbone.cc.o.d"
  "fig6_backbone"
  "fig6_backbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
