# Empty compiler generated dependencies file for fig6_backbone.
# This may be replaced when dependencies are built.
