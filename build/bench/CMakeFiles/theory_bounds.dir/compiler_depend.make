# Empty compiler generated dependencies file for theory_bounds.
# This may be replaced when dependencies are built.
