file(REMOVE_RECURSE
  "CMakeFiles/theory_bounds.dir/theory_bounds.cc.o"
  "CMakeFiles/theory_bounds.dir/theory_bounds.cc.o.d"
  "theory_bounds"
  "theory_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
