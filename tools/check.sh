#!/usr/bin/env bash
# check.sh — single driver for the FACTION correctness-tooling suites.
#
# Usage: tools/check.sh [suite...]
#
# Suites:
#   release  Release build with -Werror, then ctest
#   asan     ASan+UBSan build (DCHECKs forced on), then ctest
#   tsan     TSan build (DCHECKs forced on), then ctest
#   debug    Debug build (DCHECKs on via !NDEBUG), then ctest
#   lint     tools/lint.py repo lint over src/ tests/ bench/ examples/
#   tidy     clang-tidy over src/ (skipped with a notice if not installed)
#   format   clang-format --dry-run check (skipped if not installed)
#   all      release + asan + lint + tidy + format (default)
#
# Every suite exits non-zero on the first failure.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

JOBS="$(nproc 2>/dev/null || echo 4)"

log() { printf '\n\033[1m== %s ==\033[0m\n' "$*"; }

run_preset() {
  local preset="$1"
  log "configure [$preset]"
  cmake --preset "$preset" >/dev/null
  log "build [$preset]"
  cmake --build --preset "$preset" -j "$JOBS"
  log "ctest [$preset]"
  ctest --preset "$preset" -j "$JOBS"
}

run_lint() {
  log "repo lint self-tests (tools/lint_test.py)"
  python3 tools/lint_test.py
  log "repo lint (tools/lint.py)"
  python3 tools/lint.py
}

run_tidy() {
  log "clang-tidy"
  local tidy=""
  for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
              clang-tidy-16 clang-tidy-15; do
    if command -v "$cand" >/dev/null 2>&1; then
      tidy="$cand"
      break
    fi
  done
  if [[ -z "$tidy" ]]; then
    echo "clang-tidy not installed; skipping (CI runs it)."
    return 0
  fi
  # clang-tidy needs a compile database; the release preset exports one.
  if [[ ! -f build/release/compile_commands.json ]]; then
    cmake --preset release >/dev/null
  fi
  local files
  files="$(find src -name '*.cc' | sort)"
  # shellcheck disable=SC2086
  "$tidy" -p build/release --quiet --warnings-as-errors='*' $files
}

run_format() {
  log "clang-format check"
  local fmt=""
  for cand in clang-format clang-format-19 clang-format-18 clang-format-17 \
              clang-format-16 clang-format-15; do
    if command -v "$cand" >/dev/null 2>&1; then
      fmt="$cand"
      break
    fi
  done
  if [[ -z "$fmt" ]]; then
    echo "clang-format not installed; skipping (CI runs it)."
    return 0
  fi
  find src tests bench examples \
      \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) -print0 |
    xargs -0 "$fmt" --dry-run --Werror
}

suites=("$@")
if [[ ${#suites[@]} -eq 0 ]]; then
  suites=(all)
fi

for suite in "${suites[@]}"; do
  case "$suite" in
    release|asan|tsan|debug) run_preset "$suite" ;;
    lint) run_lint ;;
    tidy) run_tidy ;;
    format) run_format ;;
    all)
      run_preset release
      run_preset asan
      run_lint
      run_tidy
      run_format
      ;;
    *)
      echo "unknown suite: $suite" >&2
      echo "valid: release asan tsan debug lint tidy format all" >&2
      exit 2
      ;;
  esac
done

log "all requested suites passed"
