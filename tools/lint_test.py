#!/usr/bin/env python3
"""Unit tests for tools/lint.py — run directly or via ctest (lint_test).

Synthetic FileContexts exercise each rule pass in isolation; the final
test runs the full lint over the real tree and requires it to be clean,
so a rule regression and a repo violation both fail here first.
"""

from __future__ import annotations

import importlib.util
import sys
import tempfile
import unittest
from pathlib import Path

_LINT_PATH = Path(__file__).resolve().parent / "lint.py"
_SPEC = importlib.util.spec_from_file_location("faction_lint", _LINT_PATH)
lint = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(lint)


def ctx(text: str, rel: str = "src/core/fake_hot.cc") -> "lint.FileContext":
    return lint.FileContext(Path(rel), text)


def rules_of(findings: list) -> set:
    return {rule for _, _, rule, _ in findings}


class StripCommentsAndStrings(unittest.TestCase):
    def test_line_and_block_comments(self):
        out = lint.strip_comments_and_strings("int a; // new int\n/* delete x */ int b;\n")
        self.assertNotIn("new", out)
        self.assertNotIn("delete", out)
        self.assertIn("int a;", out)
        self.assertIn("int b;", out)

    def test_ordinary_strings_and_chars(self):
        out = lint.strip_comments_and_strings('auto s = "new int"; char c = \'x\';\n')
        self.assertNotIn("new", out)
        self.assertNotIn("x", out.split("=")[-1])

    def test_raw_string_literal(self):
        # The ( .. ) body must be blanked even across the quote characters
        # that would confuse the ordinary string state machine.
        src = 'auto j = R"({"key": "new int \\" delete"})"; int kept;\n'
        out = lint.strip_comments_and_strings(src)
        self.assertNotIn("new", out)
        self.assertNotIn("delete", out)
        self.assertIn("int kept;", out)

    def test_raw_string_with_delimiter(self):
        src = 'auto j = R"x(body with )" inside new)x"; int kept;\n'
        out = lint.strip_comments_and_strings(src)
        self.assertNotIn("new", out)
        self.assertIn("int kept;", out)

    def test_raw_string_preserves_line_count(self):
        src = 'auto j = R"(line1\nnew int\n)"; int kept;\n'
        out = lint.strip_comments_and_strings(src)
        self.assertEqual(src.count("\n"), out.count("\n"))
        self.assertNotIn("new", out)

    def test_identifier_ending_in_r_is_not_raw_string(self):
        out = lint.strip_comments_and_strings('auto s = var R; auto t = vaR"new";\n')
        # vaR"..." is an identifier followed by a normal string.
        self.assertNotIn("new", out)
        self.assertIn("var R;", out)


class CodeRules(unittest.TestCase):
    def run_rules(self, text: str, rel: str = "src/core/fake.cc") -> list:
        findings = []
        lint.check_code_rules(ctx(text, rel), findings)
        return findings

    def test_raw_new_flagged(self):
        self.assertIn("no-raw-new", rules_of(self.run_rules("int* p = new int;\n")))

    def test_new_in_string_not_flagged(self):
        self.assertEqual([], self.run_rules('auto s = "new";\n'))

    def test_alloc_audit_exempt_from_raw_new(self):
        findings = self.run_rules("void* operator new(std::size_t n);\n",
                                  rel="src/common/alloc_audit.cc")
        self.assertNotIn("no-raw-new", rules_of(findings))

    def test_wallclock_flagged_in_src(self):
        for snippet in ("auto t = time(nullptr);\n",
                        "auto n = std::chrono::system_clock::now();\n",
                        "auto n = std::chrono::steady_clock::now();\n",
                        "clock_gettime(CLOCK_MONOTONIC, &ts);\n"):
            self.assertIn("no-wallclock", rules_of(self.run_rules(snippet)),
                          snippet)

    def test_wallclock_allowed_in_timer(self):
        findings = self.run_rules(
            "using Clock = std::chrono::steady_clock;\n",
            rel="src/common/timer.h")
        self.assertNotIn("no-wallclock", rules_of(findings))

    def test_wallclock_not_matched_on_members(self):
        # ElapsedSeconds()-style member calls named *time( must not match.
        self.assertEqual([], self.run_rules("x.time(3); obj->clock();\n"))

    def test_wallclock_not_enforced_outside_src(self):
        findings = self.run_rules("auto t = time(nullptr);\n",
                                  rel="tests/fake_test.cc")
        self.assertNotIn("no-wallclock", rules_of(findings))


class HotAllocations(unittest.TestCase):
    HOT = "// FACTION_HOT: steady state\n"

    def run_hot(self, body: str, hot: bool = True) -> list:
        findings = []
        text = (self.HOT if hot else "") + body
        lint.check_hot_allocations(ctx(text), findings)
        return findings

    def test_not_hot_not_flagged(self):
        self.assertEqual([], self.run_hot("  std::vector<int> v;\n", hot=False))

    def test_vector_declaration_flagged(self):
        self.assertIn("no-alloc-in-hot",
                      rules_of(self.run_hot("  std::vector<int> v;\n")))

    def test_matrix_construction_flagged(self):
        self.assertIn("no-alloc-in-hot",
                      rules_of(self.run_hot("  Matrix m(3, 4);\n")))

    def test_to_string_flagged(self):
        self.assertIn("no-alloc-in-hot",
                      rules_of(self.run_hot("  auto s = std::to_string(3);\n")))

    def test_make_unique_flagged(self):
        self.assertIn(
            "no-alloc-in-hot",
            rules_of(self.run_hot("  auto p = std::make_unique<int>(3);\n")))

    def test_function_definition_not_flagged(self):
        # Column-0 signatures returning Matrix/vector are declarations of
        # the convenience API, not allocations.
        self.assertEqual([], self.run_hot("Matrix MatMul(const Matrix& a) {\n"
                                          "std::vector<double> F();\n"))

    def test_reference_and_pointer_not_flagged(self):
        self.assertEqual(
            [], self.run_hot("  std::vector<double>& r = *out;\n"
                             "  std::vector<double>* p = ws.DoublesFor(n);\n"))

    def test_cold_fence_suppresses(self):
        body = ("  // FACTION_COLD_BEGIN: wrapper\n"
                "  std::vector<int> v;\n"
                "  // FACTION_COLD_END\n"
                "  std::vector<int> w;\n")
        findings = self.run_hot(body)
        self.assertEqual(1, len(findings))
        self.assertEqual(5, findings[0][1])  # only the unfenced line

    def test_lint_allow_suppresses_single_line(self):
        body = ("  static thread_local std::vector<double> y;"
                "  // lint-allow(no-alloc-in-hot): warmup\n"
                "  std::vector<int> w;\n")
        findings = self.run_hot(body)
        self.assertEqual(1, len(findings))
        self.assertEqual(3, findings[0][1])


class ServeHot(unittest.TestCase):
    def run_serve(self, text: str, rel: str) -> list:
        findings = []
        lint.check_serve_hot(ctx(text, rel=rel), findings)
        return findings

    def test_unmarked_serve_tu_flagged(self):
        findings = self.run_serve("int x;\n", rel="src/serve/session.cc")
        self.assertIn("serve-hot", rules_of(findings))

    def test_marked_serve_tu_clean(self):
        findings = self.run_serve("// FACTION_HOT: dispatch path\nint x;\n",
                                  rel="src/serve/session.cc")
        self.assertEqual([], findings)

    def test_serve_header_exempt(self):
        findings = self.run_serve("int x;\n", rel="src/serve/session.h")
        self.assertEqual([], findings)

    def test_non_serve_tu_exempt(self):
        findings = self.run_serve("int x;\n", rel="src/core/faction.cc")
        self.assertEqual([], findings)

    def test_real_serve_tus_all_marked(self):
        serve_dir = lint.ROOT / "src/serve"
        self.assertTrue(serve_dir.is_dir())
        ccs = sorted(serve_dir.rglob("*.cc"))
        self.assertGreaterEqual(len(ccs), 4)
        for path in ccs:
            rel = path.relative_to(lint.ROOT)
            findings = self.run_serve(path.read_text(encoding="utf-8"),
                                      rel=str(rel))
            self.assertEqual([], findings, msg=str(rel))


class FfpContract(unittest.TestCase):
    def test_kernel_names_parsed_from_header(self):
        names = lint.simd_kernel_names()
        self.assertIn("matmul_rows", names)
        self.assertIn("logpdf_block", names)
        self.assertIn("row_max", names)

    def test_cmake_expand_resolves_nested_vars(self):
        variables = {"A": "-O3;${B}", "B": "-ffp-contract=off"}
        self.assertEqual("-O3;-ffp-contract=off",
                         lint.cmake_expand("${A}", variables))

    def test_pinned_sources_through_flag_variable(self):
        with tempfile.TemporaryDirectory() as tmp:
            cmake = Path(tmp) / "CMakeLists.txt"
            cmake.write_text(
                'set(FLAGS "-O3;-ffp-contract=off")\n'
                "set_source_files_properties(a.cc b.cc PROPERTIES\n"
                '                            COMPILE_OPTIONS "${FLAGS}")\n'
                "set_source_files_properties(c.cc PROPERTIES\n"
                '                            COMPILE_OPTIONS "-O2")\n')
            self.assertEqual({"a.cc", "b.cc"},
                             lint.ffp_pinned_sources(cmake))

    def test_real_tree_pins_resolved(self):
        pinned = lint.ffp_pinned_sources(
            lint.ROOT / "src/tensor/CMakeLists.txt")
        self.assertIn("ops.cc", pinned)
        self.assertIn("simd_generic.cc", pinned)

    def test_unpinned_caller_flagged(self):
        # A synthetic TU in src/tensor that calls a kernel but is absent
        # from the real CMake pin list must be reported.
        fake = ctx("void F() { ActiveSimd().axpy(1.0, x, y, n); }\n",
                   rel="src/tensor/fake_unpinned.cc")
        findings = []
        lint.check_ffp_contract([fake], findings)
        self.assertEqual({"ffp-contract"}, rules_of(findings))

    def test_unpinned_definer_flagged(self):
        fake = ctx('#include "tensor/simd_kernels.inc"\n',
                   rel="src/tensor/fake_tier.cc")
        findings = []
        lint.check_ffp_contract([fake], findings)
        self.assertEqual({"ffp-contract"}, rules_of(findings))

    def test_metadata_reader_not_flagged(self):
        # Reading ActiveSimd().name (trace provenance) is not a kernel call.
        fake = ctx("const char* n = ActiveSimd().name;\n",
                   rel="src/stream/fake_trace.cc")
        findings = []
        lint.check_ffp_contract([fake], findings)
        self.assertEqual([], findings)


class IncludeGuard(unittest.TestCase):
    def test_expected_guard(self):
        self.assertEqual("FACTION_COMMON_ALLOC_AUDIT_H_",
                         lint.expected_guard(Path("src/common/alloc_audit.h")))

    def test_missing_guard_flagged(self):
        findings = []
        lint.check_include_guard(ctx("int x;\n", rel="src/a/b.h"), findings)
        self.assertEqual({"include-guard"}, rules_of(findings))


class RepoIsClean(unittest.TestCase):
    def test_full_repo_lint_clean(self):
        findings = lint.run_lint(lint.collect_contexts())
        self.assertEqual(
            [], findings,
            "repo lint must be clean; run python3 tools/lint.py for detail")


if __name__ == "__main__":
    sys.exit(unittest.main())
