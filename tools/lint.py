#!/usr/bin/env python3
"""Repo lint: project-specific correctness rules for the FACTION codebase.

Rules (each reported as file:line: message):
  include-guard   every header carries the canonical FACTION_<PATH>_H_ guard
  no-rand         rand()/srand() are banned outside src/common/rng.* — all
                  randomness flows through the seeded faction::Rng
  no-raw-new      no raw `new` / `delete`; use make_unique / containers
                  (`= delete` for deleted members is fine)
  no-assert       no bare assert(); use FACTION_CHECK* / FACTION_DCHECK*
                  from common/check.h so failures are logged before abort
  no-const-cast   no const_cast under src/ — add a const overload instead
                  (the serializer's const Parameters() is the pattern)

Exit status: 0 when clean, 1 when any finding is reported.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SOURCE_DIRS = ("src", "tests", "bench", "examples")
EXTENSIONS = {".cc", ".h", ".cpp"}

RAND_ALLOWED = {Path("src/common/rng.h"), Path("src/common/rng.cc")}

# const_cast is banned in src/ (library code): every historical use has
# been replaced by a const overload. Files may be allowlisted here only
# with a comment explaining why no const-correct design exists.
CONST_CAST_ALLOWED: set[Path] = set()


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line breaks.

    Keeps the remaining code at the same line/column so findings point at
    the true location. A simple state machine is plenty for this codebase
    (no raw strings, no trigraphs).
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if ch == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(ch)
        elif state == "line_comment":
            if ch == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if ch == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == quote:
                state = "code"
            out.append("\n" if ch == "\n" else " ")
        i += 1
    return "".join(out)


def expected_guard(rel: Path) -> str:
    parts = list(rel.parts)
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"\.h$", "", stem)
    token = re.sub(r"[^A-Za-z0-9]", "_", stem).upper()
    return f"FACTION_{token}_H_"


def check_include_guard(rel: Path, text: str, findings: list) -> None:
    guard = expected_guard(rel)
    lines = text.splitlines()
    ifndef = f"#ifndef {guard}"
    define = f"#define {guard}"
    endif = f"#endif  // {guard}"
    if ifndef not in lines:
        findings.append((rel, 1, f"missing or wrong include guard; want '{ifndef}'"))
        return
    idx = lines.index(ifndef)
    if idx + 1 >= len(lines) or lines[idx + 1] != define:
        findings.append((rel, idx + 2, f"'#ifndef {guard}' must be followed by '{define}'"))
    if not any(line.startswith(endif) for line in lines):
        findings.append((rel, len(lines), f"missing closing '{endif}'"))


RAND_RE = re.compile(r"(?<![\w:])s?rand\s*\(")
NEW_RE = re.compile(r"(?<![\w_])new\b")
ASSERT_RE = re.compile(r"(?<![\w_])assert\s*\(")
ASSERT_INCLUDE_RE = re.compile(r'#\s*include\s*[<"](cassert|assert\.h)[>"]')
CONST_CAST_RE = re.compile(r"(?<![\w_])const_cast\s*<")


def check_code_rules(rel: Path, code: str, findings: list) -> None:
    for lineno, line in enumerate(code.splitlines(), start=1):
        if rel not in RAND_ALLOWED and RAND_RE.search(line):
            findings.append(
                (rel, lineno, "rand()/srand() banned outside common/rng; use faction::Rng"))
        m = NEW_RE.search(line)
        if m:
            findings.append(
                (rel, lineno, "raw `new` banned; use std::make_unique or a container"))
        # `= delete;` (deleted members) is legitimate; flag only delete-expressions.
        if re.search(r"(?<![\w_=])delete\s+[\w_*(]", line) and "= delete" not in line:
            findings.append((rel, lineno, "raw `delete` banned; use RAII owners"))
        if ASSERT_RE.search(line):
            findings.append(
                (rel, lineno, "bare assert() banned; use FACTION_CHECK*/FACTION_DCHECK*"))
        if ASSERT_INCLUDE_RE.search(line):
            findings.append(
                (rel, lineno, "<cassert> include banned; use common/check.h"))
        if (rel.parts[0] == "src" and rel not in CONST_CAST_ALLOWED
                and CONST_CAST_RE.search(line)):
            findings.append(
                (rel, lineno,
                 "const_cast banned in src/; add a const overload instead"))


def main() -> int:
    findings = []
    for dirname in SOURCE_DIRS:
        base = ROOT / dirname
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in EXTENSIONS or not path.is_file():
                continue
            rel = path.relative_to(ROOT)
            text = path.read_text(encoding="utf-8")
            if path.suffix == ".h":
                check_include_guard(rel, text, findings)
            check_code_rules(rel, strip_comments_and_strings(text), findings)

    for rel, lineno, message in findings:
        print(f"{rel}:{lineno}: {message}")
    if findings:
        print(f"\ntools/lint.py: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("tools/lint.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
