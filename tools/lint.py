#!/usr/bin/env python3
"""Repo lint: project-specific correctness rules for the FACTION codebase.

Rules (each reported as file:line: [rule] message):
  include-guard    every header carries the canonical FACTION_<PATH>_H_ guard
  no-rand          rand()/srand() are banned outside src/common/rng.* — all
                   randomness flows through the seeded faction::Rng
  no-raw-new       no raw `new` / `delete`; use make_unique / containers
                   (`= delete` for deleted members is fine; the allocator
                   interposer common/alloc_audit.cc is the one exemption)
  no-assert        no bare assert(); use FACTION_CHECK* / FACTION_DCHECK*
                   from common/check.h so failures are logged before abort
  no-const-cast    no const_cast under src/ — add a const overload instead
                   (the serializer's const Parameters() is the pattern)
  no-alloc-in-hot  in TUs carrying a `// FACTION_HOT` marker, allocating
                   idioms (local vector/string/Matrix construction,
                   std::to_string, make_unique, ...) are banned outside
                   `// FACTION_COLD_BEGIN` / `// FACTION_COLD_END` fences.
                   Steady-state code there must draw from Workspace arenas
                   or member scratch (DESIGN.md §13). Suppress a single
                   line with `// lint-allow(no-alloc-in-hot): reason`.
  serve-hot        every translation unit under src/serve must carry the
                   `// FACTION_HOT` marker: the serve scheduler and
                   session layer sit on the per-arrival dispatch path, so
                   dropping a marker would silently lift the
                   no-alloc-in-hot gate from steady-state serving code.
                   Cold regions belong inside FACTION_COLD fences, not in
                   unmarked TUs.
  ffp-contract     every TU that defines SIMD kernels (includes
                   simd_kernels.inc) or invokes one through the dispatch
                   table must be pinned with -ffp-contract=off in its
                   directory's CMakeLists.txt, or FMA contraction would
                   break the cross-tier bitwise-equality contract
                   (DESIGN.md §12). The kernel names are parsed from the
                   SimdKernels struct, the pinned set from the CMake
                   set_source_files_properties calls.
  no-wallclock     wall-clock reads (time(), clock(), gettimeofday,
                   std::chrono::*_clock) are banned outside common/timer.h
                   — timing flows through faction::Timer so determinism
                   audits have a single choke point.

Exit status: 0 when clean, 1 when any finding is reported.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SOURCE_DIRS = ("src", "tests", "bench", "examples")
EXTENSIONS = {".cc", ".h", ".cpp"}

RAND_ALLOWED = {Path("src/common/rng.h"), Path("src/common/rng.cc")}

# The allocation-audit interposer must spell `operator new` / `operator
# delete` to replace them; nothing else may.
NEW_ALLOWED = {Path("src/common/alloc_audit.cc")}

# const_cast is banned in src/ (library code): every historical use has
# been replaced by a const overload. Files may be allowlisted here only
# with a comment explaining why no const-correct design exists.
CONST_CAST_ALLOWED: set[Path] = set()

# Wall-clock reads live behind faction::Timer only.
WALLCLOCK_ALLOWED = {Path("src/common/timer.h")}

HOT_MARKER = "FACTION_HOT"
COLD_BEGIN = "FACTION_COLD_BEGIN"
COLD_END = "FACTION_COLD_END"
LINT_ALLOW_RE = re.compile(r"lint-allow\((?P<rule>[a-z-]+)\)")


class FileContext:
    """Per-file inputs shared by every rule pass.

    `text` is the raw file; `code` is the same text with comments and
    string/char literals blanked (same line/column layout). Markers and
    suppressions are read from the raw text because they live in comments.
    """

    def __init__(self, rel: Path, text: str):
        self.rel = rel
        self.text = text
        self.code = strip_comments_and_strings(text)
        self.raw_lines = text.splitlines()
        self.code_lines = self.code.splitlines()
        self.is_hot = any(HOT_MARKER in line and COLD_BEGIN not in line
                          and COLD_END not in line
                          for line in self.raw_lines)
        self.cold = self._cold_mask()
        self.allows = self._allow_map()

    def _cold_mask(self) -> list:
        """True for lines inside a FACTION_COLD_BEGIN/END fence."""
        mask, depth = [], 0
        for line in self.raw_lines:
            if COLD_BEGIN in line:
                depth += 1
            mask.append(depth > 0)
            if COLD_END in line:
                depth = max(0, depth - 1)
        return mask

    def _allow_map(self) -> dict:
        """Maps 1-based line number -> set of rules suppressed on it."""
        allows: dict = {}
        for lineno, line in enumerate(self.raw_lines, start=1):
            for m in LINT_ALLOW_RE.finditer(line):
                allows.setdefault(lineno, set()).add(m.group("rule"))
        return allows

    def allowed(self, lineno: int, rule: str) -> bool:
        return rule in self.allows.get(lineno, set())


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line breaks.

    Keeps the remaining code at the same line/column so findings point at
    the true location. Handles // and /* */ comments, ordinary and raw
    string literals (R"delim(...)delim"), and char literals.
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    raw_terminator = None  # set while inside a raw string literal
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if ch == "R" and nxt == '"' and not (out and
                                                 (out[-1].isalnum() or
                                                  out[-1] == "_")):
                # Raw string literal: R"delim( ... )delim". No escape
                # processing inside; it ends only at )delim".
                m = re.match(r'R"([^()\\ \t\n]{0,16})\(', text[i:])
                if m:
                    raw_terminator = ")" + m.group(1) + '"'
                    state = "raw_string"
                    out.append(" " * len(m.group(0)))
                    i += len(m.group(0))
                    continue
            if ch == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if ch == "'" and not (out and (out[-1].isdigit())):
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(ch)
        elif state == "line_comment":
            if ch == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if ch == "\n" else " ")
        elif state == "raw_string":
            if text.startswith(raw_terminator, i):
                out.append(" " * len(raw_terminator))
                i += len(raw_terminator)
                state = "code"
                raw_terminator = None
                continue
            out.append("\n" if ch == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == quote:
                state = "code"
            out.append("\n" if ch == "\n" else " ")
        i += 1
    return "".join(out)


# --------------------------------------------------------------- guards

def expected_guard(rel: Path) -> str:
    parts = list(rel.parts)
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"\.h$", "", stem)
    token = re.sub(r"[^A-Za-z0-9]", "_", stem).upper()
    return f"FACTION_{token}_H_"


def check_include_guard(ctx: FileContext, findings: list) -> None:
    guard = expected_guard(ctx.rel)
    lines = ctx.raw_lines
    ifndef = f"#ifndef {guard}"
    define = f"#define {guard}"
    endif = f"#endif  // {guard}"
    if ifndef not in lines:
        findings.append((ctx.rel, 1, "include-guard",
                         f"missing or wrong include guard; want '{ifndef}'"))
        return
    idx = lines.index(ifndef)
    if idx + 1 >= len(lines) or lines[idx + 1] != define:
        findings.append((ctx.rel, idx + 2, "include-guard",
                         f"'#ifndef {guard}' must be followed by '{define}'"))
    if not any(line.startswith(endif) for line in lines):
        findings.append((ctx.rel, len(lines), "include-guard",
                         f"missing closing '{endif}'"))


# --------------------------------------------------- per-line code rules

RAND_RE = re.compile(r"(?<![\w:])s?rand\s*\(")
NEW_RE = re.compile(r"(?<![\w_])new\b")
ASSERT_RE = re.compile(r"(?<![\w_])assert\s*\(")
ASSERT_INCLUDE_RE = re.compile(r'#\s*include\s*[<"](cassert|assert\.h)[>"]')
CONST_CAST_RE = re.compile(r"(?<![\w_])const_cast\s*<")

# Wall-clock reads. steady_clock is as banned as system_clock: Timer wraps
# it, and a second timing source would fork the determinism audit.
WALLCLOCK_RES = (
    (re.compile(r"(?<![\w:.>])time\s*\("), "time()"),
    (re.compile(r"(?<![\w:.>])clock\s*\("), "clock()"),
    (re.compile(r"(?<![\w:.>])gettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"(?<![\w:.>])clock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"std\s*::\s*chrono\s*::\s*\w*_clock"), "std::chrono clocks"),
)

# Allocating idioms banned in FACTION_HOT translation units. Each entry is
# (regex, what to use instead). These are idiom-level checks, not an
# escape-analysis: they catch the constructions that put fresh blocks on
# the heap every call — exactly what the steady-state gate forbids.
HOT_ALLOC_RES = (
    (re.compile(r"(?<![\w_])std\s*::\s*make_unique\s*<"),
     "construct once at setup time, not in a hot TU"),
    (re.compile(r"(?<![\w_])std\s*::\s*make_shared\s*<"),
     "construct once at setup time, not in a hot TU"),
    (re.compile(r"(?<![\w_])std\s*::\s*to_string\s*\("),
     "format on the cold path only"),
    # Local declarations only: anchored to indented lines so function
    # definitions returning these types (column 0) do not match.
    (re.compile(r"^\s+(?:static\s+|thread_local\s+|const\s+)*"
                r"std\s*::\s*(vector|string|deque|map|set|"
                r"unordered_map|unordered_set|list)\s*(<[^;=]*>)?\s+"
                r"\w+\s*[({;]"),
     "use a Workspace arena buffer or member scratch"),
    (re.compile(r"^\s+(?:static\s+|thread_local\s+|const\s+)*"
                r"Matrix\s+\w+\s*[({]"),
     "use Workspace::MatrixFor or member scratch"),
)


def check_code_rules(ctx: FileContext, findings: list) -> None:
    rel = ctx.rel
    for lineno, line in enumerate(ctx.code_lines, start=1):
        if rel not in RAND_ALLOWED and RAND_RE.search(line):
            findings.append((rel, lineno, "no-rand",
                             "rand()/srand() banned outside common/rng; "
                             "use faction::Rng"))
        if rel not in NEW_ALLOWED:
            if NEW_RE.search(line):
                findings.append((rel, lineno, "no-raw-new",
                                 "raw `new` banned; use std::make_unique "
                                 "or a container"))
            # `= delete;` (deleted members) is legitimate; flag only
            # delete-expressions.
            if (re.search(r"(?<![\w_=])delete\s+[\w_*(]", line)
                    and "= delete" not in line):
                findings.append((rel, lineno, "no-raw-new",
                                 "raw `delete` banned; use RAII owners"))
        if ASSERT_RE.search(line):
            findings.append((rel, lineno, "no-assert",
                             "bare assert() banned; use "
                             "FACTION_CHECK*/FACTION_DCHECK*"))
        if ASSERT_INCLUDE_RE.search(line):
            findings.append((rel, lineno, "no-assert",
                             "<cassert> include banned; use common/check.h"))
        if (rel.parts[0] == "src" and rel not in CONST_CAST_ALLOWED
                and CONST_CAST_RE.search(line)):
            findings.append((rel, lineno, "no-const-cast",
                             "const_cast banned in src/; add a const "
                             "overload instead"))
        if rel.parts[0] == "src" and rel not in WALLCLOCK_ALLOWED:
            for pattern, what in WALLCLOCK_RES:
                if pattern.search(line) and not ctx.allowed(lineno,
                                                            "no-wallclock"):
                    findings.append((rel, lineno, "no-wallclock",
                                     f"{what} banned outside common/timer.h;"
                                     " use faction::Timer"))


def check_serve_hot(ctx: FileContext, findings: list) -> None:
    """src/serve TUs must opt into the hot-allocation gate explicitly."""
    rel = ctx.rel
    if rel.parts[:2] != ("src", "serve") or rel.suffix == ".h":
        return
    if not ctx.is_hot:
        findings.append(
            (rel, 1, "serve-hot",
             f"translation units under src/serve must carry the "
             f"// {HOT_MARKER} marker so the no-alloc-in-hot gate covers "
             f"the serve dispatch path; put setup/teardown inside "
             f"{COLD_BEGIN}/{COLD_END} fences instead of dropping the "
             f"marker"))


def check_hot_allocations(ctx: FileContext, findings: list) -> None:
    if not ctx.is_hot:
        return
    for lineno, line in enumerate(ctx.code_lines, start=1):
        if ctx.cold[lineno - 1] or ctx.allowed(lineno, "no-alloc-in-hot"):
            continue
        for pattern, hint in HOT_ALLOC_RES:
            m = pattern.search(line)
            if m:
                findings.append(
                    (ctx.rel, lineno, "no-alloc-in-hot",
                     f"allocating idiom `{m.group(0).strip()}` in a "
                     f"FACTION_HOT TU; {hint} (or fence the region with "
                     f"{COLD_BEGIN}/{COLD_END})"))
                break  # one finding per line is enough


# ------------------------------------------------- ffp-contract cross-check

KERNEL_MEMBER_RE = re.compile(
    r"(?:void|double|float|int)\s*\(\s*\*\s*(\w+)\s*\)\s*\(")


def simd_kernel_names() -> set:
    """Function-pointer member names of the SimdKernels dispatch table."""
    header = ROOT / "src/tensor/simd.h"
    if not header.is_file():
        return set()
    code = strip_comments_and_strings(header.read_text(encoding="utf-8"))
    struct = re.search(r"struct\s+SimdKernels\s*\{(.*?)\n\};", code,
                       re.DOTALL)
    if not struct:
        return set()
    return set(KERNEL_MEMBER_RE.findall(struct.group(1)))


CMAKE_SET_RE = re.compile(r"set\s*\(\s*(\w+)\s+\"([^\"]*)\"\s*\)",
                          re.IGNORECASE)
CMAKE_SSFP_RE = re.compile(
    r"set_source_files_properties\s*\((.*?)\)", re.IGNORECASE | re.DOTALL)
CMAKE_VAR_RE = re.compile(r"\$\{(\w+)\}")


def cmake_expand(value: str, variables: dict, depth: int = 0) -> str:
    if depth > 8:
        return value
    return CMAKE_VAR_RE.sub(
        lambda m: cmake_expand(variables.get(m.group(1), ""), variables,
                               depth + 1), value)


def ffp_pinned_sources(cmake_path: Path) -> set:
    """File names pinned with -ffp-contract=off in one CMakeLists.txt.

    Resolves simple `set(VAR "...")` definitions so pins routed through a
    flags variable (e.g. FACTION_KERNEL_FLAGS) are still recognized.
    Conditionals are ignored: a pin inside if() counts, matching how the
    conditional tier TUs are only compiled when the pin also applies.
    """
    text = cmake_path.read_text(encoding="utf-8")
    text = re.sub(r"#[^\n]*", "", text)
    variables = {name: value for name, value in CMAKE_SET_RE.findall(text)}
    pinned = set()
    for call in CMAKE_SSFP_RE.findall(text):
        expanded = cmake_expand(call, variables)
        if "ffp-contract=off" not in expanded:
            continue
        head = call.split("PROPERTIES")[0]
        for token in head.split():
            if Path(token).suffix in EXTENSIONS:
                pinned.add(token)
    return pinned


def check_ffp_contract(contexts: list, findings: list) -> None:
    kernels = simd_kernel_names()
    if not kernels:
        findings.append((Path("src/tensor/simd.h"), 1, "ffp-contract",
                         "could not parse SimdKernels members; "
                         "update tools/lint.py if the table moved"))
        return
    invoke_re = re.compile(
        r"(?:\.|->)\s*(" + "|".join(sorted(kernels)) + r")\s*\(")
    pinned_by_dir: dict = {}
    for ctx in contexts:
        if ctx.rel.parts[0] != "src" or ctx.rel.suffix not in (".cc", ".cpp"):
            continue
        defines = bool(re.search(r'#\s*include\s*"[^"]*simd_kernels\.inc"',
                                 ctx.text))
        called = invoke_re.search(ctx.code)
        if not defines and not called:
            continue
        cmake = ROOT / ctx.rel.parent / "CMakeLists.txt"
        key = ctx.rel.parent
        if key not in pinned_by_dir:
            pinned_by_dir[key] = (ffp_pinned_sources(cmake)
                                  if cmake.is_file() else set())
        if ctx.rel.name not in pinned_by_dir[key]:
            what = ("includes simd_kernels.inc" if defines
                    else f"calls SIMD kernel `{called.group(1)}`")
            findings.append(
                (ctx.rel, 1, "ffp-contract",
                 f"{what} but is not pinned with -ffp-contract=off in "
                 f"{key}/CMakeLists.txt; FMA contraction would break "
                 "cross-tier bitwise parity (DESIGN.md §12)"))


# -------------------------------------------------------------------- main

def collect_contexts() -> list:
    contexts = []
    for dirname in SOURCE_DIRS:
        base = ROOT / dirname
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in EXTENSIONS or not path.is_file():
                continue
            rel = path.relative_to(ROOT)
            contexts.append(FileContext(rel, path.read_text(encoding="utf-8")))
    return contexts


def run_lint(contexts: list) -> list:
    findings: list = []
    for ctx in contexts:
        if ctx.rel.suffix == ".h":
            check_include_guard(ctx, findings)
        check_code_rules(ctx, findings)
        check_serve_hot(ctx, findings)
        check_hot_allocations(ctx, findings)
    check_ffp_contract(contexts, findings)
    return findings


def main() -> int:
    findings = run_lint(collect_contexts())
    for rel, lineno, rule, message in findings:
        print(f"{rel}:{lineno}: [{rule}] {message}")
    if findings:
        print(f"\ntools/lint.py: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("tools/lint.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
