#!/usr/bin/env bash
# bench.sh — benchmark driver (PR 3, extended for the PR 5 SIMD layer).
#
# Builds bench/micro_components in a dedicated native-tuned Release tree
# (build/bench), runs the tracked benchmarks at FACTION_NUM_THREADS=1 and at
# the default thread count, and merges both runs plus the derived speedups
# into BENCH_PR5.json at the repo root, stamped with the current git SHA.
#
# Reported pair speedups (baseline at 1 thread vs new path at default
# threads — the ratios the acceptance floors are defined on):
#   * conv_gemm_vs_naive              — BM_Conv2dNaive / BM_Conv2dIm2col
#   * density_refit_incremental_vs_batch
#                                     — BM_DensityRefitBatch/2400 /
#                                       BM_DensityRefitIncremental/2400
#
# The PR 5 section adds per-dispatch-tier results (BM_GemmMicroKernel /
# BM_TrainStepSimd / BM_PoolScoringSimd at generic/avx2/avx512) and
# single-thread ratios of this run against the committed BENCH_PR3.json /
# BENCH_PR2.json medians ("vs_committed"). Those ratios compare different
# machines only when the committed file came from another host; on the same
# host they are the SIMD speedup.
#
# If the output file already exists, its medians are compared against the
# fresh run and regressions above 25% are reported.
#
# The report's "known_regressions" section records the two accepted PR 5
# regressions (generic-tier train step vs the pre-SIMD scalar path;
# avx512 pool scoring vs avx2) with measured slowdowns and rationale,
# so the gate's tolerance of them is explicit rather than silent. They
# never participate in --check-against.
#
# Usage: tools/bench.sh [--min-time SECONDS] [--binary PATH]
#                       [--check-against JSON] [--out FILE]
#   --binary PATH         use an existing micro_components binary instead
#                         of configuring/building build/bench (CI smoke).
#   --check-against JSON  compare the fresh pair speedups against the
#                         "speedups" section of a committed BENCH_*.json;
#                         exit 1 if any fresh speedup falls below
#                         committed/1.25. Ratio-vs-ratio comparison, so it
#                         is portable across machines of different speeds.
#   --out FILE            output path (default BENCH_PR5.json).

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

MIN_TIME="0.2"
BINARY=""
CHECK_AGAINST=""
OUT="BENCH_PR5.json"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --min-time) MIN_TIME="$2"; shift 2 ;;
    --binary) BINARY="$2"; shift 2 ;;
    --check-against) CHECK_AGAINST="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"
BUILD_DIR="build/bench"
FILTER='BM_Conv2dNaive|BM_Conv2dIm2col|BM_TrainStep|BM_DensityRefit|BM_PoolScoring$|BM_GemmMicroKernel|BM_TrainStepSimd|BM_PoolScoringSimd'
GIT_SHA="$(git rev-parse HEAD 2>/dev/null || echo unknown)"

if [[ -z "$BINARY" ]]; then
  printf '\n\033[1m== configure+build [bench: Release, native arch] ==\033[0m\n'
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DFACTION_NATIVE_ARCH=ON \
    >/dev/null
  cmake --build "$BUILD_DIR" --target micro_components -j "$JOBS" >/dev/null
  BINARY="$BUILD_DIR/bench/micro_components"
fi
mkdir -p "$BUILD_DIR"

run_bench() {
  local threads="$1" out="$2"
  printf '\033[1m== run [FACTION_NUM_THREADS=%s] ==\033[0m\n' "$threads"
  local env_prefix=()
  if [[ "$threads" != "default" ]]; then
    env_prefix=(env "FACTION_NUM_THREADS=$threads")
  fi
  "${env_prefix[@]}" "$BINARY" \
    --benchmark_filter="$FILTER" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_out="$out" --benchmark_out_format=json \
    --benchmark_repetitions=3 --benchmark_report_aggregates_only=true
}

run_bench 1 "$BUILD_DIR/bench_t1.json"
run_bench default "$BUILD_DIR/bench_tdefault.json"

GIT_SHA="$GIT_SHA" CHECK_AGAINST="$CHECK_AGAINST" python3 - \
  "$BUILD_DIR/bench_t1.json" "$BUILD_DIR/bench_tdefault.json" "$OUT" <<'EOF'
import json
import os
import sys

t1_path, tdef_path, out_path = sys.argv[1:4]

SIMD_LEVELS = {"0": "generic", "1": "avx2", "2": "avx512"}
SIMD_BENCHES = ("BM_GemmMicroKernel", "BM_TrainStepSimd",
                "BM_PoolScoringSimd")


def load(path):
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for b in doc["benchmarks"]:
        if b.get("aggregate_name") == "median":
            times[b["run_name"]] = b["real_time"]
    return doc["context"], times


ctx1, t1 = load(t1_path)
ctxd, tdef = load(tdef_path)


def speedup(base, new):
    return round(base / new, 3) if new else None


pair_speedups = {
    "conv_gemm_vs_naive": speedup(t1["BM_Conv2dNaive"],
                                  tdef["BM_Conv2dIm2col"]),
    "density_refit_incremental_vs_batch": speedup(
        t1["BM_DensityRefitBatch/2400"],
        tdef["BM_DensityRefitIncremental/2400"],
    ),
}

# Per-dispatch-tier medians (1 thread): {bench: {generic: ns, avx2: ns, ...}}.
# Skipped tiers (unsupported host) simply do not appear in the run output.
per_level = {}
for name, ns in sorted(t1.items()):
    base, _, arg = name.partition("/")
    if base in SIMD_BENCHES and arg in SIMD_LEVELS:
        per_level.setdefault(base, {})[SIMD_LEVELS[arg]] = round(ns, 1)

# Known, accepted regressions — measured and recorded explicitly so the
# >25% --check-against gate stays honest about what it tolerates instead
# of the numbers hiding inside per_level. slowdown > 1.0 means the first
# path is slower on this run's host. Neither key participates in the
# gate: they are tracked, not enforced.
known_regressions = {}
_train_generic = per_level.get("BM_TrainStepSimd", {}).get("generic")
if _train_generic and os.path.exists("BENCH_PR3.json"):
    with open("BENCH_PR3.json") as f:
        _pre_simd = json.load(f).get("threads_1", {}).get("BM_TrainStep")
    if _pre_simd:
        known_regressions["train_step_generic_vs_pre_simd"] = {
            "slowdown": round(_train_generic / _pre_simd, 3),
            "note": (
                "Portable GCC-vector tier vs the retired scalar train "
                "step (BENCH_PR3). The generic tier exists for "
                "correctness parity and hosts without AVX; runtime "
                "dispatch never selects it when a vector tier is "
                "available, so a slowdown here is accepted."
            ),
        }
_pool = per_level.get("BM_PoolScoringSimd", {})
if _pool.get("avx2") and _pool.get("avx512"):
    known_regressions["pool_scoring_avx512_vs_avx2"] = {
        "slowdown": round(_pool["avx512"] / _pool["avx2"], 3),
        "note": (
            "512-bit pool scoring loses to avx2 on the d=16 triangular "
            "solves (half-empty zmm lanes plus license-based "
            "downclocking); GEMM-bound paths still win on avx512, so "
            "dispatch keeps preferring the highest tier."
        ),
    }

# Single-thread ratios against the committed pre-SIMD baselines. Same-host
# runs read as the SIMD speedup on each tracked hot path.
vs_committed = {}
for committed_path, pairs in (
    ("BENCH_PR3.json", (("BM_TrainStep", "simd_train_step_vs_pr3"),
                        ("BM_Conv2dIm2col", "simd_conv_im2col_vs_pr3"))),
    ("BENCH_PR2.json", (("BM_PoolScoring", "simd_pool_scoring_vs_pr2"),)),
):
    if not os.path.exists(committed_path):
        continue
    with open(committed_path) as f:
        committed_t1 = json.load(f).get("threads_1", {})
    for bench, key in pairs:
        if bench in committed_t1 and bench in t1:
            vs_committed[key] = speedup(committed_t1[bench], t1[bench])

report = {
    "meta": {
        "git_sha": os.environ.get("GIT_SHA", "unknown"),
        "date": ctxd.get("date"),
        "host_cpus": ctxd.get("num_cpus"),
        "mhz_per_cpu": ctxd.get("mhz_per_cpu"),
        "build": "Release + FACTION_NATIVE_ARCH",
        "time_unit": "ns (median of 3 repetitions, real time)",
        "note": (
            "Pair speedups compare the retained baseline implementation "
            "at 1 thread against the new path at default threads: the "
            "naive conv loops vs the im2col/GEMM lowering, and a full "
            "batch GDA refit of a 2400-row pool vs incrementally folding "
            "one 25-row acquisition round into the sufficient statistics. "
            "per_level holds single-thread medians per SIMD dispatch tier "
            "(FACTION_SIMD_LEVEL); vs_committed holds single-thread "
            "ratios of committed pre-SIMD medians (BENCH_PR3/BENCH_PR2) "
            "over this run — the SIMD speedup when produced on the same "
            "host."
        ),
    },
    "threads_1": {k: round(v, 1) for k, v in sorted(t1.items())},
    "threads_default": {k: round(v, 1) for k, v in sorted(tdef.items())},
    "per_level": per_level,
    "known_regressions": known_regressions,
    "speedups": {**pair_speedups, **vs_committed},
}

# Compare against the previous report at the same path, if any: flag any
# benchmark whose median regressed by more than 25%.
if os.path.exists(out_path):
    with open(out_path) as f:
        previous = json.load(f)
    print(f"comparison vs previous {out_path} "
          f"(sha {previous.get('meta', {}).get('git_sha', '?')[:12]}):")
    for section in ("threads_1", "threads_default"):
        old = previous.get(section, {})
        for name, fresh_ns in sorted(report[section].items()):
            if name not in old or not old[name]:
                continue
            ratio = fresh_ns / old[name]
            flag = "  REGRESSION >25%" if ratio > 1.25 else ""
            print(f"  {section:16s} {name:40s} "
                  f"{old[name]:>12.1f} -> {fresh_ns:>12.1f} ns "
                  f"({ratio:5.2f}x){flag}")

with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
print(json.dumps(report["speedups"], indent=2))
if known_regressions:
    print("known_regressions (tracked, excluded from the gate):")
    for key, entry in sorted(known_regressions.items()):
        print(f"  {key}: {entry['slowdown']:.2f}x")

# --check-against: fail when a fresh pair speedup drops below the
# committed one by more than 25%. Speedups are within-machine ratios, so
# this check is meaningful on any host. Only keys present in BOTH reports
# participate, so gating against BENCH_PR3.json keeps working.
check_path = os.environ.get("CHECK_AGAINST", "")
if check_path:
    with open(check_path) as f:
        committed = json.load(f).get("speedups", {})
    failures = []
    for key, fresh in pair_speedups.items():
        want = committed.get(key)
        if not isinstance(want, (int, float)) or fresh is None:
            continue
        floor = want / 1.25
        status = "ok" if fresh >= floor else "FAIL"
        print(f"check {key}: fresh {fresh:.2f}x vs committed {want:.2f}x "
              f"(floor {floor:.2f}x) {status}")
        if fresh < floor:
            failures.append(key)
    if failures:
        print(f"benchmark regression gate failed: {', '.join(failures)}")
        sys.exit(1)
EOF
