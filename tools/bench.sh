#!/usr/bin/env bash
# bench.sh — parallel-layer benchmark driver (PR 2).
#
# Builds bench/micro_components in a dedicated native-tuned Release tree
# (build/bench), runs the parallel-layer benchmarks at FACTION_NUM_THREADS=1
# and at the default thread count, and merges both runs plus the derived
# speedups into BENCH_PR2.json at the repo root.
#
# Reported speedups:
#   * BM_MatMul        — blocked parallel kernel at default threads vs the
#                        seed serial kernel (BM_MatMulSeed) at 1 thread.
#   * BM_Conv2dApply   — default threads vs 1 thread (pure thread scaling).
#   * BM_PoolScoring   — batched scoring at default threads vs the legacy
#                        per-sample loop (BM_PoolScoringPerSample) at 1
#                        thread.
#
# Usage: tools/bench.sh [--min-time SECONDS]

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

MIN_TIME="0.2"
if [[ "${1:-}" == "--min-time" ]]; then
  MIN_TIME="$2"
fi

JOBS="$(nproc 2>/dev/null || echo 4)"
BUILD_DIR="build/bench"
FILTER='BM_MatMul|BM_Conv2dApply|BM_PoolScoring'

printf '\n\033[1m== configure+build [bench: Release, native arch] ==\033[0m\n'
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DFACTION_NATIVE_ARCH=ON \
  >/dev/null
cmake --build "$BUILD_DIR" --target micro_components -j "$JOBS" >/dev/null

run_bench() {
  local threads="$1" out="$2"
  printf '\033[1m== run [FACTION_NUM_THREADS=%s] ==\033[0m\n' "$threads"
  if [[ "$threads" == "default" ]]; then
    "$BUILD_DIR/bench/micro_components" \
      --benchmark_filter="$FILTER" \
      --benchmark_min_time="$MIN_TIME" \
      --benchmark_out="$out" --benchmark_out_format=json \
      --benchmark_repetitions=3 --benchmark_report_aggregates_only=true
  else
    FACTION_NUM_THREADS="$threads" "$BUILD_DIR/bench/micro_components" \
      --benchmark_filter="$FILTER" \
      --benchmark_min_time="$MIN_TIME" \
      --benchmark_out="$out" --benchmark_out_format=json \
      --benchmark_repetitions=3 --benchmark_report_aggregates_only=true
  fi
}

run_bench 1 "$BUILD_DIR/bench_t1.json"
run_bench default "$BUILD_DIR/bench_tdefault.json"

python3 - "$BUILD_DIR/bench_t1.json" "$BUILD_DIR/bench_tdefault.json" \
  BENCH_PR2.json <<'EOF'
import json
import os
import sys

t1_path, tdef_path, out_path = sys.argv[1:4]


def load(path):
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for b in doc["benchmarks"]:
        if b.get("aggregate_name") == "median":
            times[b["run_name"]] = b["real_time"]
    return doc["context"], times


ctx1, t1 = load(t1_path)
ctxd, tdef = load(tdef_path)


def speedup(base, new):
    return round(base / new, 3) if new else None


report = {
    "meta": {
        "date": ctxd.get("date"),
        "host_cpus": ctxd.get("num_cpus"),
        "mhz_per_cpu": ctxd.get("mhz_per_cpu"),
        "build": "Release + FACTION_NATIVE_ARCH",
        "time_unit": "ns (median of 3 repetitions, real time)",
        "note": (
            "Speedups marked 'vs seed'/'vs per-sample' compare the new "
            "kernel at default threads against the retained baseline "
            "implementation at 1 thread; 'thread_scaling' isolates the "
            "1-thread vs default-thread ratio of the same kernel. On a "
            "single-CPU host thread_scaling is ~1 by construction."
        ),
    },
    "threads_1": {k: round(v, 1) for k, v in sorted(t1.items())},
    "threads_default": {k: round(v, 1) for k, v in sorted(tdef.items())},
    "speedups": {
        "BM_MatMul_vs_seed": speedup(t1["BM_MatMulSeed"], tdef["BM_MatMul"]),
        "BM_PoolScoring_vs_per_sample": speedup(
            t1["BM_PoolScoringPerSample"], tdef["BM_PoolScoring"]
        ),
        "thread_scaling": {
            name: speedup(t1[name], tdef[name])
            for name in ("BM_MatMul", "BM_Conv2dApply", "BM_PoolScoring")
        },
    },
}

with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
print(json.dumps(report["speedups"], indent=2))
EOF
