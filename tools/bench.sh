#!/usr/bin/env bash
# bench.sh — benchmark driver (PR 3; SIMD tiers PR 5; serve loadgen PR 7;
# density forgetting PR 8; checkpoint/warm-start PR 10).
#
# Builds bench/micro_components in a dedicated native-tuned Release tree
# (build-bench), runs the tracked benchmarks at FACTION_NUM_THREADS=1 and at
# the default thread count, runs bench/serve_loadgen against the serve
# runtime, and merges everything plus the derived speedups into
# BENCH_PR8.json at the repo root, stamped with the current git SHA and a
# report schema version (meta.bench_schema).
#
# Reported pair speedups (baseline at 1 thread vs new path at default
# threads — the ratios the acceptance floors are defined on):
#   * conv_gemm_vs_naive              — BM_Conv2dNaive / BM_Conv2dIm2col
#   * density_refit_incremental_vs_batch
#                                     — BM_DensityRefitBatch/2400 /
#                                       BM_DensityRefitIncremental/2400
#   * density_windowed_slide_vs_batch — BM_WindowedTrainStepBatch/2400 /
#                                       BM_WindowedTrainStepIncremental/2400
#                                       (PR 8: sliding a W=2048 window by
#                                       A=25 via rank-1 downdates vs
#                                       refitting the window from scratch)
#
# The PR 5 section adds per-dispatch-tier results (BM_GemmMicroKernel /
# BM_TrainStepSimd / BM_PoolScoringSimd at generic/avx2/avx512) and
# single-thread ratios of this run against the committed BENCH_PR3.json /
# BENCH_PR2.json medians ("vs_committed"). Those ratios compare different
# machines only when the committed file came from another host; on the same
# host they are the SIMD speedup.
#
# The PR 7 "serve" section records the loadgen run (open-loop Poisson +
# burst arrivals over multiplexed sessions): calibrated single-stream
# rate, p50/p95/p99 step latency under load, saturation throughput,
# multiplex efficiency, and sessions/core. Three SLO floors gate the run
# (within-run ratios plus one generous absolute, so the gate is portable
# across hosts): achieved_fraction >= 0.95, multiplex_efficiency >= 0.25,
# p99 <= 0.25 s.
#
# The PR 10 "checkpoint" section records bench/checkpoint_bench: hot-path
# capture latency, background-encode cost, p99 step latency with
# checkpointing off vs on at a paced fraction of calibrated capacity, and
# warm-start vs replay recovery at 64 sessions. Two gates: the restored
# fleet must come up >= 10x faster than replaying the arrival log
# (warmstart_speedup >= 10), and the under-snapshotting tail must hold
# the serving SLO inherited from the BENCH_PR7 baseline
# (p99_snapshot_seconds <= 1.10 x the committed serve load p99, falling
# back to the 0.25 s absolute ceiling when no baseline file exists). The
# within-run plain-vs-snapshotting tail ratio is reported for eyeballing
# but not gated: the plain phase's single-digit-ms p99 is scheduler noise
# on an oversubscribed host and swings far more run to run than any bound
# tight enough to catch a real serialize-herd stall would tolerate.
#
# If the output file already exists, its medians are compared against the
# fresh run and regressions above 25% are reported.
#
# The BENCH_PR5 "known_regressions" entries are closed as of PR 7 and no
# longer emitted: the generic train-step tier measures faster than the
# retired pre-SIMD scalar step (0.865x, parity reached — the 4-row GEMM
# tile was re-measured against a 2-row tile and a 16-row cache block and
# kept as the optimum), and the avx512 table now borrows the avx2 tier's
# d=16 log-pdf solve by default (tensor/simd.cc per-kernel dispatch;
# FACTION_SIMD_LOGPDF_LEVEL pins it), which removes the 1.195x
# pool-scoring deficit while keeping 512-bit GEMM. The avx2 tier TU is
# also pinned -mno-avx256-split-unaligned-{load,store}: without it GCC's
# generic tuning splits every unaligned 256-bit access and the avx2
# kernels ran ~5x slower in non-native-arch builds.
#
# Usage: tools/bench.sh [--min-time SECONDS] [--binary PATH]
#                       [--loadgen-binary PATH] [--skip-serve]
#                       [--checkpoint-binary PATH] [--skip-checkpoint]
#                       [--check-against JSON] [--out FILE]
#   --binary PATH         use an existing micro_components binary instead
#                         of configuring/building build-bench (CI smoke).
#   --loadgen-binary PATH use an existing serve_loadgen binary.
#   --skip-serve          skip the loadgen run and its SLO gate.
#   --checkpoint-binary PATH
#                         use an existing checkpoint_bench binary.
#   --skip-checkpoint     skip the checkpoint run and its gates.
#   --check-against JSON  compare the fresh pair speedups against the
#                         "speedups" section of a committed BENCH_*.json;
#                         exit 1 if any fresh speedup falls below
#                         committed/1.25. Ratio-vs-ratio comparison, so it
#                         is portable across machines of different speeds.
#                         The committed report's meta.bench_schema must
#                         match this script's (reports predating the stamp
#                         count as version 1): a mismatched baseline fails
#                         loudly instead of silently skipping whatever
#                         speedup keys the old layout happens to lack.
#   --out FILE            output path (default BENCH_PR10.json).

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

MIN_TIME="0.2"
BINARY=""
LOADGEN_BINARY=""
SKIP_SERVE=""
CHECKPOINT_BINARY=""
SKIP_CHECKPOINT=""
CHECK_AGAINST=""
OUT="BENCH_PR10.json"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --min-time) MIN_TIME="$2"; shift 2 ;;
    --binary) BINARY="$2"; shift 2 ;;
    --loadgen-binary) LOADGEN_BINARY="$2"; shift 2 ;;
    --skip-serve) SKIP_SERVE=1; shift ;;
    --checkpoint-binary) CHECKPOINT_BINARY="$2"; shift 2 ;;
    --skip-checkpoint) SKIP_CHECKPOINT=1; shift ;;
    --check-against) CHECK_AGAINST="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"
# Self-contained tree outside build/: nesting it at build/bench would
# clobber the main tree's bench/ binary dir and leak the nested tree's
# ctest entries (31 phantom "Not Run" tests) into `ctest --test-dir build`.
BUILD_DIR="build-bench"
FILTER='BM_Conv2dNaive|BM_Conv2dIm2col|BM_TrainStep|BM_DensityRefit|BM_PoolScoring$|BM_GemmMicroKernel|BM_TrainStepSimd|BM_PoolScoringSimd|BM_DensityDowndate|BM_WindowedTrainStep'
GIT_SHA="$(git rev-parse HEAD 2>/dev/null || echo unknown)"

if [[ -z "$BINARY" || ( -z "$SKIP_SERVE" && -z "$LOADGEN_BINARY" ) ||
      ( -z "$SKIP_CHECKPOINT" && -z "$CHECKPOINT_BINARY" ) ]]; then
  printf '\n\033[1m== configure+build [bench: Release, native arch] ==\033[0m\n'
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DFACTION_NATIVE_ARCH=ON \
    >/dev/null
  TARGETS=()
  if [[ -z "$BINARY" ]]; then TARGETS+=(micro_components); fi
  if [[ -z "$SKIP_SERVE" && -z "$LOADGEN_BINARY" ]]; then
    TARGETS+=(serve_loadgen)
  fi
  if [[ -z "$SKIP_CHECKPOINT" && -z "$CHECKPOINT_BINARY" ]]; then
    TARGETS+=(checkpoint_bench)
  fi
  cmake --build "$BUILD_DIR" --target "${TARGETS[@]}" -j "$JOBS" >/dev/null
  if [[ -z "$BINARY" ]]; then BINARY="$BUILD_DIR/bench/micro_components"; fi
  if [[ -z "$LOADGEN_BINARY" ]]; then
    LOADGEN_BINARY="$BUILD_DIR/bench/serve_loadgen"
  fi
  if [[ -z "$CHECKPOINT_BINARY" ]]; then
    CHECKPOINT_BINARY="$BUILD_DIR/bench/checkpoint_bench"
  fi
fi
mkdir -p "$BUILD_DIR"

run_bench() {
  local threads="$1" out="$2"
  printf '\033[1m== run [FACTION_NUM_THREADS=%s] ==\033[0m\n' "$threads"
  local env_prefix=()
  if [[ "$threads" != "default" ]]; then
    env_prefix=(env "FACTION_NUM_THREADS=$threads")
  fi
  "${env_prefix[@]}" "$BINARY" \
    --benchmark_filter="$FILTER" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_out="$out" --benchmark_out_format=json \
    --benchmark_repetitions=3 --benchmark_report_aggregates_only=true
}

run_bench 1 "$BUILD_DIR/bench_t1.json"
run_bench default "$BUILD_DIR/bench_tdefault.json"

# Serve loadgen: single worker on the 1-CPU CI host (the loadgen thread
# shares the core, so utilization stays moderate; the within-run SLO
# ratios are what the gate enforces). Utilization is set below the
# measured multiplex efficiency (~0.30-0.36 of single-stream): the
# target rate scales with the calibration, so a fast calibration run at
# a utilization above sustainable capacity would shed its way under the
# achieved_fraction floor on noise alone. The run also emits a
# schema-v4 trace, validated in place.
LOADGEN_JSON="$BUILD_DIR/loadgen.json"
if [[ -z "$SKIP_SERVE" ]]; then
  printf '\n\033[1m== run [serve_loadgen] ==\033[0m\n'
  "$LOADGEN_BINARY" \
    --workers 1 --sessions 64 --utilization 0.28 \
    --duration-seconds 3 --saturation-seconds 1 --seed 7 \
    --out "$LOADGEN_JSON" --trace "$BUILD_DIR/loadgen_trace.jsonl"
  python3 tools/validate_trace.py "$BUILD_DIR/loadgen_trace.jsonl"
else
  LOADGEN_JSON=""
fi

# Checkpoint/warm-start bench: replay calibration, paced SLO phases with
# snapshotting off/on, and the recovery comparison. Scratch dir inside the
# bench tree so reruns and CI leave /tmp alone; the run also emits a
# schema-v7 trace (checkpoint object), validated in place.
CHECKPOINT_JSON="$BUILD_DIR/checkpoint.json"
if [[ -z "$SKIP_CHECKPOINT" ]]; then
  printf '\n\033[1m== run [checkpoint_bench] ==\033[0m\n'
  rm -rf "$BUILD_DIR/checkpoint-scratch"
  mkdir -p "$BUILD_DIR/checkpoint-scratch"
  "$CHECKPOINT_BINARY" \
    --workers 2 --sessions 64 --steps 2000 --seed 7 \
    --dir "$BUILD_DIR/checkpoint-scratch" \
    --out "$CHECKPOINT_JSON" --trace "$BUILD_DIR/checkpoint_trace.jsonl"
  python3 tools/validate_trace.py "$BUILD_DIR/checkpoint_trace.jsonl"
else
  CHECKPOINT_JSON=""
fi

GIT_SHA="$GIT_SHA" CHECK_AGAINST="$CHECK_AGAINST" LOADGEN_JSON="$LOADGEN_JSON" \
  CHECKPOINT_JSON="$CHECKPOINT_JSON" \
  python3 - \
  "$BUILD_DIR/bench_t1.json" "$BUILD_DIR/bench_tdefault.json" "$OUT" <<'EOF'
import json
import os
import sys

t1_path, tdef_path, out_path = sys.argv[1:4]

# Report layout version stamped into meta.bench_schema. Bump when the
# tracked benchmark set or the speedup keys change shape; --check-against
# refuses a baseline stamped with a different version (absent == 1, the
# pre-stamp layout) instead of silently comparing whatever keys overlap.
# v2: PR 8 — density forgetting pair (density_windowed_slide_vs_batch,
#     BM_DensityDowndate / BM_WindowedTrainStep*).
# v3: PR 10 — "checkpoint" section (bench/checkpoint_bench: capture/encode
#     latency, paced p99 with snapshotting off/on, warm-start vs replay)
#     and its gates.
BENCH_SCHEMA = 3

SIMD_LEVELS = {"0": "generic", "1": "avx2", "2": "avx512"}
SIMD_BENCHES = ("BM_GemmMicroKernel", "BM_TrainStepSimd",
                "BM_PoolScoringSimd")


def load(path):
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for b in doc["benchmarks"]:
        if b.get("aggregate_name") == "median":
            times[b["run_name"]] = b["real_time"]
    return doc["context"], times


ctx1, t1 = load(t1_path)
ctxd, tdef = load(tdef_path)


def speedup(base, new):
    return round(base / new, 3) if new else None


pair_speedups = {
    "conv_gemm_vs_naive": speedup(t1["BM_Conv2dNaive"],
                                  tdef["BM_Conv2dIm2col"]),
    "density_refit_incremental_vs_batch": speedup(
        t1["BM_DensityRefitBatch/2400"],
        tdef["BM_DensityRefitIncremental/2400"],
    ),
    "density_windowed_slide_vs_batch": speedup(
        t1["BM_WindowedTrainStepBatch/2400"],
        tdef["BM_WindowedTrainStepIncremental/2400"],
    ),
}

# Per-dispatch-tier medians (1 thread): {bench: {generic: ns, avx2: ns, ...}}.
# Skipped tiers (unsupported host) simply do not appear in the run output.
per_level = {}
for name, ns in sorted(t1.items()):
    base, _, arg = name.partition("/")
    if base in SIMD_BENCHES and arg in SIMD_LEVELS:
        per_level.setdefault(base, {})[SIMD_LEVELS[arg]] = round(ns, 1)

# The BENCH_PR5 known_regressions entries are closed (see the header
# comment): per_level still carries every tier's raw medians, so a future
# regression on either path shows up there and in the >25% comparison
# against the previous report.

# Serve loadgen report, produced by the run above. The SLO gate enforces
# the three floors on it after the merged report is written.
serve = None
loadgen_path = os.environ.get("LOADGEN_JSON", "")
if loadgen_path:
    with open(loadgen_path) as f:
        serve = json.load(f)

# Checkpoint bench report; its gates run after the merged report is
# written.
checkpoint = None
checkpoint_path = os.environ.get("CHECKPOINT_JSON", "")
if checkpoint_path:
    with open(checkpoint_path) as f:
        checkpoint = json.load(f)

# Single-thread ratios against the committed pre-SIMD baselines. Same-host
# runs read as the SIMD speedup on each tracked hot path.
vs_committed = {}
for committed_path, pairs in (
    ("BENCH_PR3.json", (("BM_TrainStep", "simd_train_step_vs_pr3"),
                        ("BM_Conv2dIm2col", "simd_conv_im2col_vs_pr3"))),
    ("BENCH_PR2.json", (("BM_PoolScoring", "simd_pool_scoring_vs_pr2"),)),
):
    if not os.path.exists(committed_path):
        continue
    with open(committed_path) as f:
        committed_t1 = json.load(f).get("threads_1", {})
    for bench, key in pairs:
        if bench in committed_t1 and bench in t1:
            vs_committed[key] = speedup(committed_t1[bench], t1[bench])

report = {
    "meta": {
        "bench_schema": BENCH_SCHEMA,
        "git_sha": os.environ.get("GIT_SHA", "unknown"),
        "date": ctxd.get("date"),
        "host_cpus": ctxd.get("num_cpus"),
        "mhz_per_cpu": ctxd.get("mhz_per_cpu"),
        "build": "Release + FACTION_NATIVE_ARCH",
        "time_unit": "ns (median of 3 repetitions, real time)",
        "note": (
            "Pair speedups compare the retained baseline implementation "
            "at 1 thread against the new path at default threads: the "
            "naive conv loops vs the im2col/GEMM lowering, and a full "
            "batch GDA refit of a 2400-row pool vs incrementally folding "
            "one 25-row acquisition round into the sufficient statistics. "
            "per_level holds single-thread medians per SIMD dispatch tier "
            "(FACTION_SIMD_LEVEL); vs_committed holds single-thread "
            "ratios of committed pre-SIMD medians (BENCH_PR3/BENCH_PR2) "
            "over this run — the SIMD speedup when produced on the same "
            "host. serve holds the loadgen run over the PR 7 serve "
            "runtime (open-loop Poisson+burst arrivals, then a "
            "saturation sweep); its SLO floors are achieved_fraction >= "
            "0.95, multiplex_efficiency >= 0.25, p99 <= 0.25 s. "
            "checkpoint holds the PR 10 background-snapshot run "
            "(bench/checkpoint_bench); its gates are warmstart_speedup >= "
            "10, p99_snapshot_seconds <= 1.10 x the committed BENCH_PR7 "
            "serve load p99 (absolute 0.25 s ceiling when no baseline "
            "exists); the within-run p99_ratio is reported, not gated."
        ),
    },
    "threads_1": {k: round(v, 1) for k, v in sorted(t1.items())},
    "threads_default": {k: round(v, 1) for k, v in sorted(tdef.items())},
    "per_level": per_level,
    "speedups": {**pair_speedups, **vs_committed},
}
if serve is not None:
    report["serve"] = serve
if checkpoint is not None:
    report["checkpoint"] = checkpoint

# Compare against the previous report at the same path, if any: flag any
# benchmark whose median regressed by more than 25%.
if os.path.exists(out_path):
    with open(out_path) as f:
        previous = json.load(f)
    print(f"comparison vs previous {out_path} "
          f"(sha {previous.get('meta', {}).get('git_sha', '?')[:12]}):")
    for section in ("threads_1", "threads_default"):
        old = previous.get(section, {})
        for name, fresh_ns in sorted(report[section].items()):
            if name not in old or not old[name]:
                continue
            ratio = fresh_ns / old[name]
            flag = "  REGRESSION >25%" if ratio > 1.25 else ""
            print(f"  {section:16s} {name:40s} "
                  f"{old[name]:>12.1f} -> {fresh_ns:>12.1f} ns "
                  f"({ratio:5.2f}x){flag}")

with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
print(json.dumps(report["speedups"], indent=2))

# Serve SLO gate. Two within-run ratios (portable across hosts of any
# speed) plus one generous absolute latency ceiling:
#   achieved_fraction    — the open-loop phase kept up with its offered
#                          rate; below 0.95 the runtime shed or lagged.
#   multiplex_efficiency — saturation throughput over the calibrated
#                          single-stream rate; 64 interleaved sessions on
#                          one worker must retain >= 25% of a dedicated
#                          stream's rate (scheduling + cold-cache tax).
#   p99_seconds          — tail step latency under the offered load.
if serve is not None:
    slo = (
        ("load.achieved_fraction",
         serve["load"]["achieved_fraction"], 0.95, "min"),
        ("saturation.multiplex_efficiency",
         serve["saturation"]["multiplex_efficiency"], 0.25, "min"),
        ("load.p99_seconds", serve["load"]["p99_seconds"], 0.25, "max"),
    )
    slo_failures = []
    for key, value, bound, kind in slo:
        ok = value >= bound if kind == "min" else value <= bound
        word = ">=" if kind == "min" else "<="
        print(f"serve SLO {key}: {value:.4g} {word} {bound:g} "
              f"{'ok' if ok else 'FAIL'}")
        if not ok:
            slo_failures.append(key)
    if slo_failures:
        print(f"serve SLO gate failed: {', '.join(slo_failures)}")
        sys.exit(1)

# Checkpoint gates (PR 10). The p99 ceiling is inherited from the
# committed BENCH_PR7 serve baseline when available — the target's literal
# criterion: snapshotting must hold the serving SLO the runtime already
# demonstrated. The within-run plain-vs-snapshot ratio is reported but
# NOT gated: its denominator (the plain phase's p99, single-digit ms) is
# dominated by scheduler noise on an oversubscribed host and swings 2-40x
# run to run, so any bound tight enough to catch a real serialize-herd
# stall (10x+ before the per-session phase staggering landed) also flakes
# on clean runs. The absolute ceiling against the committed baseline is
# the binding criterion; the ratio stays in the JSON for eyeballing.
if checkpoint is not None:
    p99_ceiling = 0.25 * 1.10
    baseline_note = "absolute fallback"
    if os.path.exists("BENCH_PR7.json"):
        with open("BENCH_PR7.json") as f:
            pr7 = json.load(f)
        baseline_p99 = pr7.get("serve", {}).get("load", {}).get(
            "p99_seconds")
        if isinstance(baseline_p99, (int, float)) and baseline_p99 > 0:
            p99_ceiling = 1.10 * baseline_p99
            baseline_note = f"1.10 x BENCH_PR7 load p99 {baseline_p99:.4g}"
    gates = (
        ("warmstart_speedup",
         checkpoint["warmstart_speedup"], 10.0, "min", "floor 10x"),
        ("p99_snapshot_seconds",
         checkpoint["p99_snapshot_seconds"], p99_ceiling, "max",
         baseline_note),
    )
    print(f"checkpoint p99_ratio (reported, not gated): "
          f"{checkpoint['p99_ratio']:.4g}")
    ckpt_failures = []
    for key, value, bound, kind, note in gates:
        ok = value >= bound if kind == "min" else value <= bound
        word = ">=" if kind == "min" else "<="
        print(f"checkpoint gate {key}: {value:.4g} {word} {bound:.4g} "
              f"({note}) {'ok' if ok else 'FAIL'}")
        if not ok:
            ckpt_failures.append(key)
    if ckpt_failures:
        print(f"checkpoint gate failed: {', '.join(ckpt_failures)}")
        sys.exit(1)

# --check-against: fail when a fresh pair speedup drops below the
# committed one by more than 25%. Speedups are within-machine ratios, so
# this check is meaningful on any host. The baseline must carry the same
# bench_schema as this script: an old layout would silently lack the newer
# speedup keys and the gate would pass while checking nothing, so a
# mismatch is an explicit failure telling the operator to regenerate.
check_path = os.environ.get("CHECK_AGAINST", "")
if check_path:
    with open(check_path) as f:
        committed_report = json.load(f)
    committed_schema = committed_report.get("meta", {}).get(
        "bench_schema", 1)
    if committed_schema != BENCH_SCHEMA:
        print(f"check-against schema mismatch: {check_path} has "
              f"bench_schema {committed_schema}, this script writes "
              f"{BENCH_SCHEMA}; the regression comparison would silently "
              f"skip the speedup keys the old layout lacks. Regenerate "
              f"the baseline with tools/bench.sh --out {check_path}.")
        sys.exit(1)
    committed = committed_report.get("speedups", {})
    failures = []
    for key, fresh in pair_speedups.items():
        want = committed.get(key)
        if not isinstance(want, (int, float)) or fresh is None:
            continue
        floor = want / 1.25
        status = "ok" if fresh >= floor else "FAIL"
        print(f"check {key}: fresh {fresh:.2f}x vs committed {want:.2f}x "
              f"(floor {floor:.2f}x) {status}")
        if fresh < floor:
            failures.append(key)
    if failures:
        print(f"benchmark regression gate failed: {', '.join(failures)}")
        sys.exit(1)
EOF
