#!/usr/bin/env python3
"""Validates a FACTION JSONL run trace against the pinned schema
(DESIGN.md §11).

Usage: tools/validate_trace.py <trace.jsonl>

Checks:
  * every line is a standalone JSON object with a known "type"
  * the first record is run_start (pinned schema_version, simd_level,
    alloc_audit, the v5 density object, the v6 scenario object, the v7
    checkpoint object, and — when present — the v4 serve object), the
    last is run_end
  * exactly one run_start / run_end; every other record is a task
  * task records carry all required keys with the right types;
    metrics.{ddp,eod,mi} may be null only when metric_defined.* is false
  * task_index values are consecutive from 0
  * run_end totals agree with the task records

Exit status: 0 when valid, 1 with a diagnostic otherwise.
"""

from __future__ import annotations

import json
import sys

SCHEMA_VERSION = 7
SIMD_LEVELS = {"generic", "avx2", "avx512"}
ALLOC_AUDIT_MODES = {"on", "off"}
REFIT_MODES = {"batch", "incremental", "mixed", "none", "unknown"}

TASK_INT_KEYS = ("task_index", "environment", "queries",
                 "acquisition_batches", "train_steps", "drift_fired")
METRIC_KEYS = ("accuracy", "nll", "ddp", "eod", "mi")
DEFINED_KEYS = ("ddp", "eod", "mi")
WALL_KEYS = ("evaluate_seconds", "acquire_seconds", "train_seconds",
             "task_seconds")


def fail(lineno: int, message: str) -> None:
    print(f"validate_trace: line {lineno}: {message}", file=sys.stderr)
    sys.exit(1)


def require(condition: bool, lineno: int, message: str) -> None:
    if not condition:
        fail(lineno, message)


def check_task(record: dict, lineno: int) -> None:
    for key in TASK_INT_KEYS:
        require(isinstance(record.get(key), int) and record[key] >= 0,
                lineno, f"task record needs non-negative int '{key}'")
    require(record.get("density_refit_mode") in REFIT_MODES, lineno,
            f"density_refit_mode must be one of {sorted(REFIT_MODES)}")

    metrics = record.get("metrics")
    require(isinstance(metrics, dict), lineno, "task record needs 'metrics'")
    defined = record.get("metric_defined")
    require(isinstance(defined, dict), lineno,
            "task record needs 'metric_defined'")
    for key in METRIC_KEYS:
        require(key in metrics, lineno, f"metrics.{key} missing")
        value = metrics[key]
        require(value is None or isinstance(value, (int, float)), lineno,
                f"metrics.{key} must be a number or null")
    for key in DEFINED_KEYS:
        flag = defined.get(key)
        require(isinstance(flag, bool), lineno,
                f"metric_defined.{key} must be a bool")
        if metrics[key] is None:
            require(not flag, lineno,
                    f"metrics.{key} is null but metric_defined.{key} is true")
        else:
            require(flag, lineno,
                    f"metrics.{key} has a value but metric_defined.{key} "
                    "is false")
    for key in ("accuracy", "nll"):
        require(metrics[key] is not None, lineno,
                f"metrics.{key} must never be null")

    wall = record.get("wall")
    require(isinstance(wall, dict), lineno, "task record needs 'wall'")
    for key in WALL_KEYS:
        require(isinstance(wall.get(key), (int, float)) and wall[key] >= 0,
                lineno, f"wall.{key} must be a non-negative number")


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1], encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as err:
        print(f"validate_trace: {err}", file=sys.stderr)
        return 1
    if not lines:
        print("validate_trace: empty trace", file=sys.stderr)
        return 1

    tasks = []
    run_end = None
    for lineno, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as err:
            fail(lineno, f"not valid JSON: {err}")
        require(isinstance(record, dict), lineno, "record must be an object")
        kind = record.get("type")
        if lineno == 1:
            require(kind == "run_start", lineno,
                    "first record must be run_start")
            require(record.get("schema_version") == SCHEMA_VERSION, lineno,
                    f"schema_version must be {SCHEMA_VERSION}")
            require(isinstance(record.get("strategy"), str), lineno,
                    "run_start needs a string 'strategy'")
            require(record.get("simd_level") in SIMD_LEVELS, lineno,
                    f"run_start simd_level must be one of {sorted(SIMD_LEVELS)}")
            require(record.get("alloc_audit") in ALLOC_AUDIT_MODES, lineno,
                    f"run_start alloc_audit must be one of"
                    f" {sorted(ALLOC_AUDIT_MODES)}")
            # v5: every run stamps its density-forgetting configuration.
            density = record.get("density")
            require(isinstance(density, dict), lineno,
                    "run_start needs a 'density' object (schema v5)")
            require(set(density.keys()) == {"window", "decay"}, lineno,
                    "run_start.density must have exactly the keys "
                    "'window' and 'decay'")
            require(isinstance(density.get("window"), int)
                    and not isinstance(density.get("window"), bool)
                    and density["window"] >= 0, lineno,
                    "run_start.density.window must be an int >= 0")
            decay = density.get("decay")
            require(isinstance(decay, (int, float))
                    and not isinstance(decay, bool)
                    and 0.0 < decay <= 1.0, lineno,
                    "run_start.density.decay must be a number in (0, 1]")
            # v6: every run stamps its scenario provenance — the canonical
            # scenario DSL spec ("none" outside the scenario engine) and
            # the world seed the sub-seeds derive from.
            scenario = record.get("scenario")
            require(isinstance(scenario, dict), lineno,
                    "run_start needs a 'scenario' object (schema v6)")
            require(set(scenario.keys()) == {"spec", "world_seed"}, lineno,
                    "run_start.scenario must have exactly the keys "
                    "'spec' and 'world_seed'")
            spec = scenario.get("spec")
            require(isinstance(spec, str) and spec != "", lineno,
                    "run_start.scenario.spec must be a non-empty string")
            require(isinstance(scenario.get("world_seed"), int)
                    and not isinstance(scenario.get("world_seed"), bool)
                    and scenario["world_seed"] >= 0, lineno,
                    "run_start.scenario.world_seed must be an int >= 0")
            # v7: every run stamps its checkpointing configuration —
            # whether background state streaming was active and the
            # steps-between-snapshots cadence.
            checkpoint = record.get("checkpoint")
            require(isinstance(checkpoint, dict), lineno,
                    "run_start needs a 'checkpoint' object (schema v7)")
            require(set(checkpoint.keys()) == {"enabled", "interval_steps"},
                    lineno,
                    "run_start.checkpoint must have exactly the keys "
                    "'enabled' and 'interval_steps'")
            require(isinstance(checkpoint.get("enabled"), bool), lineno,
                    "run_start.checkpoint.enabled must be a bool")
            require(isinstance(checkpoint.get("interval_steps"), int)
                    and not isinstance(checkpoint.get("interval_steps"), bool)
                    and checkpoint["interval_steps"] >= 0, lineno,
                    "run_start.checkpoint.interval_steps must be an "
                    "int >= 0")
            require(not checkpoint["enabled"]
                    or checkpoint["interval_steps"] >= 1, lineno,
                    "run_start.checkpoint.interval_steps must be >= 1 "
                    "when enabled")
            # v4: multi-stream serving runs stamp a "serve" object; it is
            # optional (absent for single-stream runs) but pinned when
            # present.
            if "serve" in record:
                serve = record["serve"]
                require(isinstance(serve, dict), lineno,
                        "run_start.serve must be an object")
                require(set(serve.keys()) == {"workers", "sessions"},
                        lineno,
                        "run_start.serve must have exactly the keys "
                        "'workers' and 'sessions'")
                require(isinstance(serve.get("workers"), int)
                        and not isinstance(serve.get("workers"), bool)
                        and serve["workers"] >= 0, lineno,
                        "run_start.serve.workers must be an int >= 0")
                require(isinstance(serve.get("sessions"), int)
                        and not isinstance(serve.get("sessions"), bool)
                        and serve["sessions"] >= 1, lineno,
                        "run_start.serve.sessions must be an int >= 1")
            continue
        require(kind in ("task", "run_end"), lineno,
                f"unknown record type {kind!r}")
        require(run_end is None, lineno, "record after run_end")
        if kind == "task":
            check_task(record, lineno)
            require(record["task_index"] == len(tasks), lineno,
                    f"task_index must be consecutive (expected {len(tasks)})")
            tasks.append(record)
        else:
            run_end = (record, lineno)

    if run_end is None:
        fail(len(lines), "missing run_end record")
    record, lineno = run_end
    require(record.get("tasks") == len(tasks), lineno,
            f"run_end.tasks {record.get('tasks')} != {len(tasks)} task records")
    total_queries = sum(t["queries"] for t in tasks)
    require(record.get("total_queries") == total_queries, lineno,
            f"run_end.total_queries {record.get('total_queries')} != "
            f"sum of task queries {total_queries}")
    undefined = sum(
        1 for t in tasks if not all(t["metric_defined"].values()))
    require(record.get("undefined_metric_tasks") == undefined, lineno,
            f"run_end.undefined_metric_tasks "
            f"{record.get('undefined_metric_tasks')} != {undefined}")

    print(f"validate_trace: OK ({len(tasks)} task record(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
