// FACTION_HOT: Submit/Enqueue/Execute and the deque operations run on the
// serve steady-state path for every session step; they must not allocate.
// One-time construction (arena, deques, worker spawn) sits inside
// FACTION_COLD fences.
#include "serve/job_system.h"

#include <algorithm>

#include "common/check.h"
#include "common/parallel.h"
#include "common/telemetry.h"

namespace faction {

namespace {

// Identity of the current thread inside its owning JobSystem, set once in
// WorkerMain. Non-worker threads keep {nullptr, -1}.
thread_local JobSystem* tl_worker_system = nullptr;
thread_local int tl_worker_index = -1;

// Minimal TTAS spinlock over std::atomic_flag. Critical sections here are
// a handful of loads/stores (free-list pop, continuation registration), so
// spinning beats a mutex and keeps the lock allocation-free and usable
// under the steady-state allocation ban.
class SpinGuard {
 public:
  explicit SpinGuard(std::atomic_flag* flag) : flag_(flag) {
    while (flag_->test_and_set(std::memory_order_seq_cst)) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    }
  }
  ~SpinGuard() { flag_->clear(std::memory_order_seq_cst); }

  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  std::atomic_flag* flag_;
};

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t cap = 1;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

// ---------------------------------------------------------------------------
// WorkStealingDeque
//
// Bounded Chase-Lev deque with every atomic at seq_cst (rationale in the
// header). top_ only ever increases; bottom_ is owner-private except for
// the loads in Steal/SizeEstimate. A slot at ring position i can only be
// overwritten by a Push at index b >= i + capacity, and Push refuses while
// b - t >= capacity, so no live entry is ever clobbered.
// ---------------------------------------------------------------------------

// FACTION_COLD_BEGIN: construction only.
WorkStealingDeque::WorkStealingDeque(std::size_t capacity)
    : mask_(RoundUpPow2(std::max<std::size_t>(capacity, 2)) - 1),
      slots_(mask_ + 1) {}
// FACTION_COLD_END

bool WorkStealingDeque::Push(std::uint32_t value) {
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
  const std::int64_t t = top_.load(std::memory_order_seq_cst);
  // A stale t only underestimates the free space (t never decreases), so
  // this check can reject spuriously but never admit past capacity.
  if (b - t >= static_cast<std::int64_t>(capacity())) return false;
  slots_[static_cast<std::size_t>(b) & mask_].store(
      value, std::memory_order_seq_cst);
  bottom_.store(b + 1, std::memory_order_seq_cst);
  return true;
}

bool WorkStealingDeque::Pop(std::uint32_t* value) {
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst) - 1;
  // Reserve the bottom entry before reading top: after this store a thief
  // that loads bottom_ sees the shrunken deque, so owner and thief can
  // race only for the single remaining entry, resolved by the CAS below.
  bottom_.store(b, std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  if (t > b) {  // deque was empty
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return false;
  }
  *value =
      slots_[static_cast<std::size_t>(b) & mask_].load(
          std::memory_order_seq_cst);
  if (t == b) {
    // Last entry: win it against thieves by advancing top_ ourselves.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
      bottom_.store(b + 1, std::memory_order_seq_cst);  // thief took it
      return false;
    }
    bottom_.store(b + 1, std::memory_order_seq_cst);  // deque now empty
  }
  return true;
}

bool WorkStealingDeque::Steal(std::uint32_t* value) {
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) return false;
  // Read the slot before the CAS: winning the CAS proves no Push had
  // recycled ring position t at read time (Push stays >= t + capacity
  // until top_ advances past t, which only this CAS can do).
  *value =
      slots_[static_cast<std::size_t>(t) & mask_].load(
          std::memory_order_seq_cst);
  return top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst);
}

std::size_t WorkStealingDeque::SizeEstimate() const {
  const std::int64_t t = top_.load(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
  return b > t ? static_cast<std::size_t>(b - t) : 0;
}

// ---------------------------------------------------------------------------
// JobSystem
// ---------------------------------------------------------------------------

// FACTION_COLD_BEGIN: construction pre-sizes every arena and ring and
// spawns the workers; nothing after this allocates.
JobSystem::JobSystem(const Options& options)
    : options_(options), jobs_(std::max<std::size_t>(options.max_jobs, 1)) {
  options_.workers = std::max(0, options_.workers);
  // Thread the free list through the arena.
  for (std::size_t i = 0; i + 1 < jobs_.size(); ++i) {
    jobs_[i].next_free = static_cast<std::uint32_t>(i + 1);
  }
  free_head_ = 0;
  inject_ring_.assign(jobs_.size(), UINT32_MAX);
  deques_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    deques_.push_back(
        std::make_unique<WorkStealingDeque>(options_.deque_capacity));
  }
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
}
// FACTION_COLD_END

// FACTION_COLD_BEGIN: teardown.
JobSystem::~JobSystem() {
  WaitIdle();
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    stop_ = true;
    ++wake_epoch_;
  }
  park_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}
// FACTION_COLD_END

std::uint32_t JobSystem::Allocate(JobFn fn, void* ctx,
                                  std::uint32_t pending) {
  std::uint32_t index;
  {
    SpinGuard guard(&free_lock_);
    FACTION_CHECK(free_head_ != UINT32_MAX);  // arena exhausted: raise
                                              // Options::max_jobs
    index = free_head_;
    free_head_ = jobs_[index].next_free;
  }
  Job& job = jobs_[index];
  // Bump the generation before publishing any other field: a stale handle
  // carrying the old generation now reads "recycled == finished" no matter
  // how it interleaves with the writes below.
  job.generation.fetch_add(1, std::memory_order_seq_cst);
  job.done.store(false, std::memory_order_seq_cst);
  job.fn = fn;
  job.ctx = ctx;
  job.num_continuations = 0;
  job.next_free = UINT32_MAX;
  job.pending.store(pending, std::memory_order_seq_cst);
  in_flight_.fetch_add(1, std::memory_order_seq_cst);
  return index;
}

void JobSystem::Release(std::uint32_t index) {
  SpinGuard guard(&free_lock_);
  jobs_[index].next_free = free_head_;
  free_head_ = index;
}

void JobSystem::NotifyWork() {
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    ++wake_epoch_;
    if (sleepers_ == 0) return;
  }
  park_cv_.notify_all();
}

bool JobSystem::PopInjected(std::uint32_t* index) {
  std::lock_guard<std::mutex> lock(inject_mu_);
  if (inject_size_ == 0) return false;
  *index = inject_ring_[inject_head_];
  inject_head_ = (inject_head_ + 1) % inject_ring_.size();
  --inject_size_;
  return true;
}

void JobSystem::Enqueue(std::uint32_t index) {
  if (options_.workers == 0) {
    Execute(index);  // synchronous mode: run inline, recursing through any
    return;          // continuations this unblocks
  }
  if (tl_worker_system == this &&
      deques_[static_cast<std::size_t>(tl_worker_index)]->Push(index)) {
    // Published to our own deque; parked siblings may want to steal it.
    NotifyWork();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(inject_mu_);
    // Ring capacity equals the job arena size, so it cannot overflow.
    FACTION_CHECK(inject_size_ < inject_ring_.size());
    inject_ring_[(inject_head_ + inject_size_) % inject_ring_.size()] =
        index;
    ++inject_size_;
  }
  TelemetryCount("serve.jobs.injected", 1);
  NotifyWork();
}

void JobSystem::Execute(std::uint32_t index) {
  Job& job = jobs_[index];
  {
    // Serve workers multiplex many sessions; intra-kernel ParallelFor
    // would serialize on the process-wide pool, so force the (bitwise
    // identical) serial path for the job body.
    ScopedForceSerialParallel serial;
    job.fn(job.ctx);
  }
  TelemetryCount("serve.jobs.executed", 1);
  std::uint32_t continuations[kMaxContinuations];
  std::uint32_t num_continuations;
  {
    // Completion and continuation registration are mutually exclusive:
    // after done=true is published under this lock, SubmitAfter counts
    // this dependency as satisfied instead of registering.
    SpinGuard guard(&job.cont_lock);
    num_continuations = job.num_continuations;
    for (std::uint32_t i = 0; i < num_continuations; ++i) {
      continuations[i] = job.continuations[i];
    }
    job.num_continuations = 0;
    job.done.store(true, std::memory_order_seq_cst);
  }
  Release(index);
  for (std::uint32_t i = 0; i < num_continuations; ++i) {
    const std::uint32_t c = continuations[i];
    if (jobs_[c].pending.fetch_sub(1, std::memory_order_seq_cst) == 1) {
      Enqueue(c);
    }
  }
  if (in_flight_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    // Transition to zero: wake WaitIdle callers. Taking idle_mu_ orders
    // this notify after any waiter's in_flight_ re-check under the lock.
    std::lock_guard<std::mutex> lock(idle_mu_);
    idle_cv_.notify_all();
  }
}

bool JobSystem::TryAcquire(std::uint32_t* index, int self) {
  if (PopInjected(index)) return true;
  const int n = static_cast<int>(deques_.size());
  for (int i = 0; i < n; ++i) {
    if (i == self) continue;
    if (deques_[static_cast<std::size_t>(i)]->Steal(index)) {
      TelemetryCount("serve.jobs.stolen", 1);
      return true;
    }
  }
  return false;
}

void JobSystem::WorkerMain(int worker_index) {
  tl_worker_system = this;
  tl_worker_index = worker_index;
  WorkStealingDeque& own =
      *deques_[static_cast<std::size_t>(worker_index)];
  std::uint32_t index;
  for (;;) {
    if (own.Pop(&index) || TryAcquire(&index, worker_index)) {
      Execute(index);
      continue;
    }
    std::uint64_t epoch;
    {
      std::lock_guard<std::mutex> lock(park_mu_);
      if (stop_) return;
      epoch = wake_epoch_;
    }
    // Re-check with the epoch pinned: any enqueue after the read above
    // bumps wake_epoch_ under park_mu_, so the wait below cannot sleep
    // through it.
    if (own.Pop(&index) || TryAcquire(&index, worker_index)) {
      Execute(index);
      continue;
    }
    std::unique_lock<std::mutex> lock(park_mu_);
    ++sleepers_;
    TelemetryCount("serve.workers.parked", 1);
    park_cv_.wait(lock, [&] { return stop_ || wake_epoch_ != epoch; });
    --sleepers_;
    if (stop_) return;
  }
}

JobSystem::JobHandle JobSystem::Submit(JobFn fn, void* ctx) {
  const std::uint32_t index = Allocate(fn, ctx, /*pending=*/1);
  // Read the generation before dropping the submission guard: in
  // synchronous mode the job (and its recycling) completes inside
  // Enqueue, after which the slot's generation may move on.
  const JobHandle handle{
      index, jobs_[index].generation.load(std::memory_order_seq_cst)};
  if (jobs_[index].pending.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    Enqueue(index);
  }
  return handle;
}

JobSystem::JobHandle JobSystem::SubmitAfter(const JobHandle* deps,
                                            std::size_t ndeps, JobFn fn,
                                            void* ctx) {
  // pending = ndeps + 1: the +1 submission guard keeps the job from
  // launching while dependencies are still being registered, even if they
  // all finish mid-loop.
  const std::uint32_t index =
      Allocate(fn, ctx, static_cast<std::uint32_t>(ndeps) + 1);
  const JobHandle handle{
      index, jobs_[index].generation.load(std::memory_order_seq_cst)};
  std::uint32_t satisfied = 0;
  for (std::size_t i = 0; i < ndeps; ++i) {
    const JobHandle& dep = deps[i];
    if (dep.index == UINT32_MAX ||
        dep.index >= static_cast<std::uint32_t>(jobs_.size())) {
      ++satisfied;
      continue;
    }
    Job& dep_job = jobs_[dep.index];
    bool registered = false;
    {
      SpinGuard guard(&dep_job.cont_lock);
      // Same lock as completion in Execute: either we register before the
      // dependency publishes done (and it will decrement us), or we
      // observe done/recycled and count the dependency as satisfied.
      if (dep_job.generation.load(std::memory_order_seq_cst) ==
              dep.generation &&
          !dep_job.done.load(std::memory_order_seq_cst)) {
        FACTION_CHECK(dep_job.num_continuations < kMaxContinuations);
        dep_job.continuations[dep_job.num_continuations++] = index;
        registered = true;
      }
    }
    if (!registered) ++satisfied;
  }
  if (jobs_[index].pending.fetch_sub(satisfied + 1,
                                     std::memory_order_seq_cst) ==
      satisfied + 1) {
    Enqueue(index);
  }
  return handle;
}

bool JobSystem::Done(const JobHandle& handle) const {
  if (handle.index == UINT32_MAX ||
      handle.index >= static_cast<std::uint32_t>(jobs_.size())) {
    return true;
  }
  const Job& job = jobs_[handle.index];
  // A generation mismatch means the slot was recycled, which implies the
  // job finished first.
  if (job.generation.load(std::memory_order_seq_cst) != handle.generation) {
    return true;
  }
  return job.done.load(std::memory_order_seq_cst);
}

void JobSystem::Wait(const JobHandle& handle) {
  const int self = tl_worker_system == this ? tl_worker_index : -1;
  std::uint32_t index;
  while (!Done(handle)) {
    if (self >= 0 &&
        deques_[static_cast<std::size_t>(self)]->Pop(&index)) {
      Execute(index);
    } else if (TryAcquire(&index, self)) {
      Execute(index);
    } else {
      std::this_thread::yield();
    }
  }
}

void JobSystem::WaitIdle() {
  // Would deadlock from inside a job: the caller's own job counts toward
  // in_flight_ and can never retire while it blocks here.
  FACTION_CHECK(tl_worker_system != this);
  std::uint32_t index;
  while (TryAcquire(&index, /*self=*/-1)) Execute(index);
  std::unique_lock<std::mutex> lock(idle_mu_);
  idle_cv_.wait(lock, [&] {
    return in_flight_.load(std::memory_order_seq_cst) == 0;
  });
}

std::size_t JobSystem::InFlight() const {
  const std::int64_t n = in_flight_.load(std::memory_order_seq_cst);
  return n > 0 ? static_cast<std::size_t>(n) : 0;
}

}  // namespace faction
