// FACTION_HOT: Offer/Schedule/DrainJob run once per served arrival.
// Construction and session registration sit inside FACTION_COLD fences.
#include "serve/serve_runtime.h"

#include <algorithm>

#include "common/check.h"
#include "common/telemetry.h"

namespace faction {

// FACTION_COLD_BEGIN: runtime construction and session registration.
ServeRuntime::ServeRuntime(const ServeRuntimeOptions& options)
    : options_(options), jobs_([&] {
        JobSystem::Options jobs;
        jobs.workers = options.workers;
        // One in-flight drain plus one reschedule per session, plus up to
        // two queued checkpoint-serializer jobs (one per snapshot buffer),
        // with slack for the transient overlaps.
        jobs.max_jobs = std::max<std::size_t>(options.max_sessions, 1) * 4 + 16;
        jobs.deque_capacity =
            std::max<std::size_t>(options.max_sessions, 1);
        return jobs;
      }()) {}

ServeSession* ServeRuntime::CreateSession(ServeSessionOptions options) {
  FACTION_CHECK(registry_.size() < options_.max_sessions);
  if (options.mailbox_capacity == 0) {
    options.mailbox_capacity = options_.mailbox_capacity;
  }
  ServeSession* session = registry_.Create(options);
  session->set_runtime(this);
  if (checkpoints_) {
    session->set_checkpoint_slot(checkpoints_->Attach(session));
  }
  return session;
}

CheckpointManager* ServeRuntime::EnableCheckpoints(
    const CheckpointOptions& options) {
  FACTION_CHECK(checkpoints_ == nullptr);
  checkpoints_ = std::make_unique<CheckpointManager>(options, &jobs_);
  for (ServeSession* session : registry_.Sessions()) {
    session->set_checkpoint_slot(checkpoints_->Attach(session));
  }
  return checkpoints_.get();
}

Result<WarmStartReport> ServeRuntime::WarmStart(
    const std::string& manifest_path, const WarmStartOptions& options) {
  FACTION_ASSIGN_OR_RETURN(std::vector<CheckpointManifestEntry> entries,
                           CheckpointManager::ReadManifest(manifest_path));
  const std::size_t slash = manifest_path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? std::string(".")
                                 : manifest_path.substr(0, slash);
  WarmStartReport report;
  SessionState state;
  for (const CheckpointManifestEntry& entry : entries) {
    FACTION_RETURN_IF_ERROR(
        DecodeSessionStateFromFile(dir + "/" + entry.filename, &state));
    if (state.stream_id != entry.stream_id) {
      return Status::InvalidArgument(
          "WarmStart: checkpoint " + entry.filename +
          " does not belong to the manifest's stream id");
    }
    ServeSessionOptions session_options;
    session_options.stream_id = state.stream_id;
    session_options.faction = state.config;
    session_options.mailbox_capacity = options.mailbox_capacity;
    session_options.decision_log_capacity = options.decision_log_capacity;
    ServeSession* session = CreateSession(session_options);
    FACTION_RETURN_IF_ERROR(
        RestoreSessionState(state, session->mutable_faction()));
    session->set_restored_steps(state.steps);
    if (CheckpointSlot* slot = session->checkpoint_slot()) {
      // Resume the generation sequence where the checkpointed session
      // left off, so rotation and the manifest stay monotone.
      slot->next_generation = state.generation + 1;
      slot->last_snapshot_steps = state.steps;
    }
    ++report.sessions;
    report.max_generation = std::max(report.max_generation, state.generation);
    report.total_steps += state.steps;
  }
  return report;
}
// FACTION_COLD_END

void ServeRuntime::DrainJob(void* ctx) {
  auto* session = static_cast<ServeSession*>(ctx);
  ServeRuntime* runtime = session->runtime();
  session->Drain(runtime->options_.record_latency ? &runtime->clock_
                                                  : nullptr);
  // Snapshot while still holding the schedule: the capture reads learner
  // state, and the holder is the only writer. Interval-gated and
  // double-buffered, so this flips a pre-sized buffer (or skips) — it
  // never serializes or touches a file on this thread.
  if (runtime->checkpoints_) runtime->checkpoints_->MaybeSnapshot(session);
  if (session->FinishSchedule()) {
    // Arrivals raced in after the final drain pass and we re-took the
    // schedule; requeue rather than loop inline so one hot session cannot
    // monopolize a worker.
    runtime->Schedule(session);
  }
}

void ServeRuntime::Schedule(ServeSession* session) {
  jobs_.Submit(&ServeRuntime::DrainJob, session);
}

bool ServeRuntime::Offer(ServeSession* session, const Example& example) {
  FACTION_CHECK(session != nullptr && session->runtime() == this);
  const double enqueue_seconds =
      options_.record_latency ? clock_.ElapsedSeconds() : -1.0;
  if (!session->Push(example, enqueue_seconds)) return false;
  TelemetryCount("serve.arrivals.offered", 1);
  // Won the idle->scheduled CAS: exactly one drain job owns the session
  // until FinishSchedule releases it. Lost it: the current holder's
  // FinishSchedule re-check is ordered after our Push and picks the
  // arrival up.
  if (session->BeginSchedule()) Schedule(session);
  return true;
}

void ServeRuntime::Drain() { jobs_.WaitIdle(); }

}  // namespace faction
