// FACTION_HOT: Offer/Schedule/DrainJob run once per served arrival.
// Construction and session registration sit inside FACTION_COLD fences.
#include "serve/serve_runtime.h"

#include <algorithm>

#include "common/check.h"
#include "common/telemetry.h"

namespace faction {

// FACTION_COLD_BEGIN: runtime construction and session registration.
ServeRuntime::ServeRuntime(const ServeRuntimeOptions& options)
    : options_(options), jobs_([&] {
        JobSystem::Options jobs;
        jobs.workers = options.workers;
        // One in-flight drain plus one reschedule per session, with slack
        // for the transient overlap while both exist.
        jobs.max_jobs = std::max<std::size_t>(options.max_sessions, 1) * 2 + 8;
        jobs.deque_capacity =
            std::max<std::size_t>(options.max_sessions, 1);
        return jobs;
      }()) {}

ServeSession* ServeRuntime::CreateSession(ServeSessionOptions options) {
  FACTION_CHECK(registry_.size() < options_.max_sessions);
  if (options.mailbox_capacity == 0) {
    options.mailbox_capacity = options_.mailbox_capacity;
  }
  ServeSession* session = registry_.Create(options);
  session->set_runtime(this);
  return session;
}
// FACTION_COLD_END

void ServeRuntime::DrainJob(void* ctx) {
  auto* session = static_cast<ServeSession*>(ctx);
  ServeRuntime* runtime = session->runtime();
  session->Drain(runtime->options_.record_latency ? &runtime->clock_
                                                  : nullptr);
  if (session->FinishSchedule()) {
    // Arrivals raced in after the final drain pass and we re-took the
    // schedule; requeue rather than loop inline so one hot session cannot
    // monopolize a worker.
    runtime->Schedule(session);
  }
}

void ServeRuntime::Schedule(ServeSession* session) {
  jobs_.Submit(&ServeRuntime::DrainJob, session);
}

bool ServeRuntime::Offer(ServeSession* session, const Example& example) {
  FACTION_CHECK(session != nullptr && session->runtime() == this);
  const double enqueue_seconds =
      options_.record_latency ? clock_.ElapsedSeconds() : -1.0;
  if (!session->Push(example, enqueue_seconds)) return false;
  TelemetryCount("serve.arrivals.offered", 1);
  // Won the idle->scheduled CAS: exactly one drain job owns the session
  // until FinishSchedule releases it. Lost it: the current holder's
  // FinishSchedule re-check is ordered after our Push and picks the
  // arrival up.
  if (session->BeginSchedule()) Schedule(session);
  return true;
}

void ServeRuntime::Drain() { jobs_.WaitIdle(); }

}  // namespace faction
