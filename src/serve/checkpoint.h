#ifndef FACTION_SERVE_CHECKPOINT_H_
#define FACTION_SERVE_CHECKPOINT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "density/fair_density.h"
#include "serve/state_codec.h"

// Background checkpoint/state streaming (DESIGN.md §17). The drain holder
// flips a pre-sized double-buffered SessionState between drains (hot,
// allocation-free once warm, never blocks on I/O); a low-priority job on
// the serve runtime's work-stealing JobSystem serializes the flipped
// buffer to the hexfloat session format and tmp+rename-rotates it into a
// per-session checkpoint file under a generation-counting manifest. When
// both buffers of a session are still in the hands of serializer jobs the
// snapshot is skipped (telemetry-counted) — checkpointing must never stall
// Offer/Drain.

namespace faction {

class JobSystem;
class ServeSession;
class CheckpointManager;

struct CheckpointOptions {
  /// Directory receiving per-session checkpoint files and the manifest.
  /// Must exist; files are named "session-<id>.gen<G>.ckpt".
  std::string dir;
  /// A session becomes snapshot-eligible every `interval_steps` drained
  /// arrivals (steps-based on purpose: wall-clock would break determinism
  /// audits). The eligible snapshot is taken by the next drain holder.
  std::size_t interval_steps = 64;
  /// Checkpoint generations retained per session; older files are removed
  /// after the manifest advances past them. Minimum 1.
  std::size_t keep_generations = 2;
};

/// One snapshot buffer: the captured state, the encoded bytes, and the
/// handoff latch between the capturing drain holder and the serializer
/// job. `state`/`encoded` retain capacity across generations, so a warm
/// capture allocates nothing.
struct CheckpointBuffer {
  enum : int { kFree = 0, kQueued = 1 };

  SessionState state;
  std::string encoded;
  /// kFree: owned by the next capturing drain holder. kQueued: owned by a
  /// serializer job (capture must skip it).
  std::atomic<int> status{kFree};
  CheckpointManager* manager = nullptr;
};

/// Per-session checkpoint state, owned by the manager and pointed to by
/// the session. Mutated only by the session's current drain holder (the
/// serve layer guarantees at most one), except `buffers[i].status`, which
/// the serializer job flips back to kFree.
struct CheckpointSlot {
  ServeSession* session = nullptr;
  std::uint64_t next_generation = 1;
  /// Step count at the last MaybeSnapshot trigger. Attach seeds it with a
  /// per-slot phase offset in [0, interval) so same-aged sessions do not
  /// serialize in lockstep bursts; the first attached slot keeps offset 0.
  std::uint64_t last_snapshot_steps = 0;
  CheckpointBuffer buffers[2];
};

/// One line of the checkpoint manifest: the latest durably committed
/// generation per session.
struct CheckpointManifestEntry {
  std::uint64_t stream_id = 0;
  std::uint64_t generation = 0;
  std::uint64_t steps = 0;
  std::string filename;
};

/// Owns every session's checkpoint slots and the manifest. Thread
/// contract: Attach is cold (registration path, mutex-guarded);
/// MaybeSnapshot/SnapshotNow are called by drain holders (at most one per
/// session); serializer jobs run on the shared JobSystem and only touch
/// their own buffer plus the mutex-guarded manifest.
class CheckpointManager {
 public:
  CheckpointManager(const CheckpointOptions& options, JobSystem* jobs);

  /// Flushes outstanding serializer work (via the job system) before
  /// tearing down the slots they reference.
  ~CheckpointManager();

  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  /// Registers a session (cold). Returns its slot; the caller stores it on
  /// the session so the hot path needs no lookup.
  CheckpointSlot* Attach(ServeSession* session);

  /// Hot path, drain holder only: captures a snapshot when the session has
  /// advanced `interval_steps` past the last one and a buffer is free.
  /// Returns true when a snapshot was captured and queued. Never blocks on
  /// I/O or the serializer; a busy double-buffer pair skips (counted on
  /// "serve.checkpoint.skipped_busy").
  bool MaybeSnapshot(ServeSession* session);

  /// Drain holder only: captures regardless of the interval (still skips
  /// when both buffers are busy).
  bool SnapshotNow(ServeSession* session);

  /// Blocks until every queued serializer job has finished (runs the whole
  /// job system idle — acceptable for shutdown/tests).
  void Flush();

  const CheckpointOptions& options() const { return options_; }
  std::string ManifestPath() const;

  /// Serialization failures since construction (I/O errors are counted and
  /// logged, never fatal: the previous durable generation stays valid).
  std::uint64_t failures() const {
    return failures_.load(std::memory_order_seq_cst);
  }

  /// Reads a manifest file ("faction-manifest v1"). Errors name the path.
  static Result<std::vector<CheckpointManifestEntry>> ReadManifest(
      const std::string& path);

 private:
  static void SerializeJob(void* ctx);
  void Serialize(CheckpointBuffer* buffer);
  /// Advances the in-memory manifest (newer generations only) and durably
  /// rewrites the manifest file. Returns the generation this session's
  /// entry replaced (0 when none).
  Status CommitManifest(const SessionState& state,
                        const std::string& filename);

  CheckpointOptions options_;
  JobSystem* jobs_;

  std::mutex slots_mu_;
  std::vector<std::unique_ptr<CheckpointSlot>> slots_;

  std::mutex manifest_mu_;
  std::map<std::uint64_t, CheckpointManifestEntry> manifest_;

  std::atomic<std::uint64_t> failures_{0};
};

/// Warm-start configuration: how ServeRuntime::WarmStart builds the
/// restored sessions (0 = the runtime's defaults).
struct WarmStartOptions {
  std::size_t mailbox_capacity = 0;
  std::size_t decision_log_capacity = 0;
};

struct WarmStartReport {
  std::size_t sessions = 0;
  std::uint64_t max_generation = 0;
  /// Sum of the restored sessions' checkpointed step counts — the arrivals
  /// a replay-based recovery would have had to re-process.
  std::uint64_t total_steps = 0;
};

/// Cross-shard sufficient-stats merge (ROADMAP item 1): decodes each
/// shard's session checkpoint (in parallel when `jobs` is given), then
/// folds every shard density into one global estimator in path order via
/// FairDensityEstimator::MergeFrom — O(A * d^2) additions plus a single
/// re-factorization per touched component, independent of how many samples
/// each shard absorbed. Fails when no shard carries a density estimator or
/// the shards disagree on dimension/forgetting mode.
Result<FairDensityEstimator> MergeSufficientStats(
    const std::vector<std::string>& checkpoint_paths,
    const CovarianceConfig& config, JobSystem* jobs = nullptr);

}  // namespace faction

#endif  // FACTION_SERVE_CHECKPOINT_H_
