// FACTION_HOT: Find sits on the serve dispatch path (one hash lookup, no
// allocation). The mutating control-plane operations live inside
// FACTION_COLD fences.
#include "serve/session_registry.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace faction {

// FACTION_COLD_BEGIN: control-plane mutations and snapshots.
ServeSession* SessionRegistry::Create(const ServeSessionOptions& options) {
  auto session = std::make_unique<ServeSession>(options);
  ServeSession* raw = session.get();
  std::lock_guard<std::mutex> lock(mu_);
  const bool inserted =
      sessions_.emplace(options.stream_id, std::move(session)).second;
  FACTION_CHECK(inserted);  // duplicate stream id
  return raw;
}

bool SessionRegistry::Erase(std::uint64_t stream_id) {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.erase(stream_id) > 0;
}

std::vector<ServeSession*> SessionRegistry::Sessions() const {
  std::vector<ServeSession*> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(sessions_.size());
    for (const auto& entry : sessions_) out.push_back(entry.second.get());
  }
  std::sort(out.begin(), out.end(),
            [](const ServeSession* a, const ServeSession* b) {
              return a->stream_id() < b->stream_id();
            });
  return out;
}
// FACTION_COLD_END

ServeSession* SessionRegistry::Find(std::uint64_t stream_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(stream_id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

std::size_t SessionRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace faction
