#ifndef FACTION_SERVE_SESSION_H_
#define FACTION_SERVE_SESSION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/timer.h"
#include "core/streaming_faction.h"
#include "data/dataset.h"

// One serving session = one independent per-cohort StreamingFaction
// stream plus an SPSC arrival mailbox (DESIGN.md §14). Sessions share
// nothing, which is what makes multi-worker serving bitwise deterministic:
// a session's outputs depend only on its own arrival order, which the
// mailbox preserves, and on its own learner state, which exactly one
// scheduled drain at a time may touch.

namespace faction {

class ServeRuntime;
struct CheckpointSlot;

struct ServeSessionOptions {
  /// Registry key; also a convenient per-cohort identifier.
  std::uint64_t stream_id = 0;
  /// Learner configuration; the session owns the learner and all of its
  /// scratch (Workspace lives inside StreamingFaction).
  StreamingFactionConfig faction;
  /// Mailbox slots. A full mailbox rejects Push — open-loop load
  /// generators count that as a shed arrival.
  std::size_t mailbox_capacity = 64;
  /// When nonzero, every query decision (0/1 per arrival, in arrival
  /// order) is recorded up to this capacity for replay comparison; the
  /// capacity is pre-reserved so recording never allocates. Pushing past
  /// the capacity is a FACTION_CHECK failure.
  std::size_t decision_log_capacity = 0;
};

/// A registered stream session: learner + mailbox + scheduling flag.
///
/// Threading contract:
///   * Push is called by at most one producer thread at a time per
///     session (the serve runtime's Offer path).
///   * Drain/FinishSchedule run on whichever job-system worker holds the
///     session's schedule; BeginSchedule/FinishSchedule guarantee at most
///     one holder, so learner state needs no further locking.
class ServeSession {
 public:
  // FACTION_COLD_BEGIN: construction pre-sizes the mailbox (each slot's
  // feature vector at full dimension) and the decision log.
  explicit ServeSession(const ServeSessionOptions& options);
  // FACTION_COLD_END

  ServeSession(const ServeSession&) = delete;
  ServeSession& operator=(const ServeSession&) = delete;

  /// Producer side: copies the example into a pre-sized mailbox slot.
  /// False when the mailbox is full (arrival shed). `enqueue_seconds` is
  /// the serve clock at arrival, used for step-latency histograms; pass
  /// a negative value when no latency accounting is wanted.
  bool Push(const Example& example, double enqueue_seconds);

  /// Consumer side: folds every currently-visible arrival into the
  /// learner, in mailbox order. `clock` may be null (no latency
  /// accounting). Caller must hold the schedule.
  void Drain(const Timer* clock);

  /// Attempts to take the schedule (idle -> scheduled). True means the
  /// caller must arrange exactly one Drain + FinishSchedule.
  bool BeginSchedule();

  /// Releases the schedule, then re-takes it if arrivals raced in after
  /// the final Drain. True means the caller must schedule another drain —
  /// this is what closes the "push landed between drain and release"
  /// window without ever losing or double-processing an arrival.
  bool FinishSchedule();

  /// Backpointer set once at registration so a drain job's context can be
  /// just the session; never dereferenced by this class.
  void set_runtime(ServeRuntime* runtime) { runtime_ = runtime; }
  ServeRuntime* runtime() const { return runtime_; }

  std::uint64_t stream_id() const { return stream_id_; }
  const StreamingFaction& faction() const { return faction_; }
  /// Restore-path access (ServeRuntime::WarmStart): the caller must hold
  /// the same exclusivity a drain holder has (no concurrent Offer/Drain).
  StreamingFaction* mutable_faction() { return &faction_; }
  /// Query decisions in arrival order (empty unless recording was
  /// enabled).
  const std::vector<std::uint8_t>& decisions() const { return decisions_; }
  /// Arrivals folded into the learner so far, including the arrivals the
  /// learner had already absorbed before a warm-start restore.
  std::size_t steps() const {
    return restored_steps_ + pop_count_.load(std::memory_order_seq_cst);
  }

  /// Checkpoint wiring (serve/checkpoint.h). The slot pointer is set once
  /// at registration; the restored-steps base once during warm-start,
  /// before any Offer.
  void set_checkpoint_slot(CheckpointSlot* slot) { checkpoint_slot_ = slot; }
  CheckpointSlot* checkpoint_slot() const { return checkpoint_slot_; }
  void set_restored_steps(std::size_t steps) { restored_steps_ = steps; }
  /// Arrivals rejected by a full mailbox.
  std::size_t shed() const {
    return shed_.load(std::memory_order_seq_cst);
  }
  std::size_t mailbox_capacity() const { return slots_.size(); }
  bool MailboxEmpty() const {
    return push_count_.load(std::memory_order_seq_cst) ==
           pop_count_.load(std::memory_order_seq_cst);
  }

 private:
  struct Arrival {
    Example example;
    double enqueue_seconds = -1.0;
  };

  enum : int { kIdle = 0, kScheduled = 1 };

  void Step(const Arrival& arrival, const Timer* clock);

  const std::uint64_t stream_id_;
  ServeRuntime* runtime_ = nullptr;
  CheckpointSlot* checkpoint_slot_ = nullptr;
  /// Step-count base carried over from a restored checkpoint.
  std::size_t restored_steps_ = 0;
  StreamingFaction faction_;

  // SPSC mailbox ring. push_count_/pop_count_ are total counts; the slot
  // index is count % capacity. The producer owns push_count_, the
  // schedule holder owns pop_count_.
  std::vector<Arrival> slots_;
  std::atomic<std::uint64_t> push_count_{0};
  std::atomic<std::uint64_t> pop_count_{0};
  std::atomic<std::uint64_t> shed_{0};

  // kIdle or kScheduled; flipped by BeginSchedule/FinishSchedule.
  std::atomic<int> sched_{kIdle};

  std::vector<std::uint8_t> decisions_;
};

}  // namespace faction

#endif  // FACTION_SERVE_SESSION_H_
