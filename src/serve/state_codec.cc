// FACTION_HOT: CaptureSessionState runs on the serve dispatch path (the
// drain holder flips a snapshot buffer between drains), so this TU opts
// into the no-alloc-in-hot gate. Everything else — encode, decode,
// restore, the standalone pipeline codecs — is cold and fenced.

#include "serve/state_codec.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/workspace.h"
#include "data/dataset.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace faction {

/// The single befriended accessor: every read or write of private
/// checkpointed state funnels through these static helpers, so the set of
/// fields the checkpoint covers is auditable in one place.
struct StateCodecAccess {
  // ----------------------------------------------------------- capture
  // Hot-path legal: copy assignments only (std::vector and Matrix
  // operator= reuse capacity), no local container construction.

  static void CaptureGaussian(const Gaussian& g, GaussianSnapshot* out) {
    out->count = g.count_;
    out->weight = g.weight_;
    out->ridge = g.ridge_;
    out->log_det = g.log_det_;
    out->forgetting = g.forgetting_;
    out->mean = g.mean_;
    out->sum = g.sum_;
    out->chol = g.chol_;
    out->scatter = g.scatter_;
  }

  static void CaptureDensity(const std::optional<FairDensityEstimator>& est,
                             DensitySnapshot* out) {
    out->has_value = est.has_value();
    if (!est.has_value()) return;
    const FairDensityEstimator& e = *est;
    out->dim = e.dim_;
    out->forgetting = e.forgetting_;
    out->total = e.total_;
    out->wtotal = e.wtotal_;
    for (int c = 0; c < DensitySnapshot::kCells; ++c) {
      out->present[c] = e.present_[c];
      out->counts[c] = e.counts_[c];
      out->wcounts[c] = e.wcounts_[c];
      out->weights[c] = e.weights_[c];
      out->log_weights[c] = e.log_weights_[c];
      if (e.present_[c]) {
        CaptureGaussian(e.components_[c], &out->components[c]);
      }
    }
  }

  static void CaptureLinear(const Linear& layer, Matrix* w, Matrix* b,
                            LinearSnapshot* out) {
    *w = layer.w_;
    *b = layer.b_;
    out->scale = layer.scale_;
    out->sigma = layer.sigma_;
    out->sn_sigma = layer.sn_est_.sigma;
    out->sn_u = layer.sn_est_.u;
    out->sn_v = layer.sn_est_.v;
    out->sn_rng = layer.sn_rng_.SaveState();
  }

  static void Capture(const StreamingFaction& f, SessionState* out) {
    out->config = f.config_;
    out->rng = f.rng_.SaveState();

    const MlpClassifier& model = *f.model_;
    const std::size_t num_linear = model.hidden_.size() + 1;
    out->params.resize(2 * num_linear);
    out->layers.resize(num_linear);
    for (std::size_t i = 0; i < model.hidden_.size(); ++i) {
      CaptureLinear(*model.hidden_[i], &out->params[2 * i],
                    &out->params[2 * i + 1], &out->layers[i]);
    }
    CaptureLinear(*model.head_, &out->params[2 * num_linear - 2],
                  &out->params[2 * num_linear - 1],
                  &out->layers[num_linear - 1]);

    // Pool: read features_ directly — features() would compact the matrix
    // and discard the spare rows the zero-alloc steady state depends on.
    // The first size() rows of features_ are the valid data (row-major).
    const Dataset& pool = f.pool_;
    const std::size_t n = pool.labels_.size();
    const std::size_t d = pool.dim_;
    out->pool_size = n;
    // Grow the destination to the pool's *reserved* shape first, then trim
    // to n rows: capacity is retained, so captures between pool growths
    // are allocation-free even as n creeps up toward the reserve.
    const std::size_t reserve = n + f.config_.refit_interval + 1;
    out->pool_features.ResizeForOverwrite(reserve, d);
    out->pool_features.ResizeForOverwrite(n, d);
    std::copy(pool.features_.data(), pool.features_.data() + n * d,
              out->pool_features.data());
    out->pool_labels = pool.labels_;
    out->pool_sensitive = pool.sensitive_;
    out->pool_environments = pool.environments_;
    out->pool_labels.reserve(reserve);
    out->pool_sensitive.reserve(reserve);
    out->pool_environments.reserve(reserve);

    // Ring: canonicalize oldest-first so restore can rebuild with
    // ring_start_ = 0 (slot layout is unobservable).
    const std::size_t rn = f.ring_size_;
    const std::size_t rd = f.ring_z_.cols();
    out->ring_size = rn;
    out->ring_z.ResizeForOverwrite(rn, rd);
    out->ring_label.resize(rn);
    out->ring_sensitive.resize(rn);
    out->ring_weight.resize(rn);
    const std::size_t cap = f.ring_label_.size();
    for (std::size_t i = 0; i < rn; ++i) {
      const std::size_t slot = (f.ring_start_ + i) % cap;
      std::copy(f.ring_z_.row_data(slot), f.ring_z_.row_data(slot) + rd,
                out->ring_z.row_data(i));
      out->ring_label[i] = f.ring_label_[slot];
      out->ring_sensitive[i] = f.ring_sensitive_[slot];
      out->ring_weight[i] = f.ring_weight_[slot];
    }

    CaptureDensity(f.estimator_, &out->density);

    out->norm_count = f.normalizer_.count();
    out->norm_min = f.normalizer_.min();
    out->norm_max = f.normalizer_.max();

    out->seen = f.seen_;
    out->queried = f.queried_;
    out->labels_since_refit = f.labels_since_refit_;
    out->trained_once = f.trained_once_;
  }

  // FACTION_COLD_BEGIN (restore: warm-start path, may allocate freely)

  static Status RestoreLinear(const LinearSnapshot& snap, const Matrix& w,
                              const Matrix& b, Linear* layer) {
    if (w.rows() != layer->w_.rows() || w.cols() != layer->w_.cols()) {
      return Status::InvalidArgument(
          "RestoreSessionState: layer weight shape mismatch");
    }
    if (b.rows() != layer->b_.rows() || b.cols() != layer->b_.cols()) {
      return Status::InvalidArgument(
          "RestoreSessionState: layer bias shape mismatch");
    }
    layer->w_ = w;
    layer->b_ = b;
    layer->scale_ = snap.scale;
    layer->sigma_ = snap.sigma;
    layer->sn_est_.sigma = snap.sn_sigma;
    layer->sn_est_.u = snap.sn_u;
    layer->sn_est_.v = snap.sn_v;
    layer->sn_rng_.RestoreState(snap.sn_rng);
    return Status::Ok();
  }

  static Status RestoreDensityImpl(const DensitySnapshot& snap,
                                   const CovarianceConfig& config,
                                   std::optional<FairDensityEstimator>* out) {
    if (!snap.has_value) {
      out->reset();
      return Status::Ok();
    }
    if (snap.forgetting != config.forgetting) {
      return Status::InvalidArgument(
          "RestoreDensity: snapshot/config forgetting-mode mismatch");
    }
    constexpr int kCells = DensitySnapshot::kCells;
    FairDensityEstimator est;
    est.dim_ = snap.dim;
    est.forgetting_ = snap.forgetting;
    est.total_ = snap.total;
    est.wtotal_ = snap.wtotal;
    est.components_.resize(kCells);
    est.present_.assign(kCells, false);
    est.counts_.assign(kCells, 0);
    est.wcounts_.assign(kCells, 0.0);
    est.weights_.assign(kCells, 0.0);
    est.log_weights_.assign(kCells,
                            -std::numeric_limits<double>::infinity());
    for (int c = 0; c < kCells; ++c) {
      est.present_[c] = snap.present[c];
      est.counts_[c] = snap.counts[c];
      est.wcounts_[c] = snap.wcounts[c];
      est.weights_[c] = snap.weights[c];
      est.log_weights_[c] = snap.log_weights[c];
      if (!snap.present[c]) continue;
      const GaussianSnapshot& gs = snap.components[c];
      const std::size_t d = snap.dim;
      if (gs.mean.size() != d || gs.sum.size() != d || gs.chol.rows() != d ||
          gs.chol.cols() != d || gs.scatter.rows() != d ||
          gs.scatter.cols() != d) {
        return Status::InvalidArgument(
            "RestoreDensity: component shape mismatch");
      }
      if (gs.count == 0) {
        return Status::InvalidArgument(
            "RestoreDensity: present component with zero count");
      }
      if (gs.forgetting != snap.forgetting) {
        return Status::InvalidArgument(
            "RestoreDensity: component forgetting-mode mismatch");
      }
      Gaussian& g = est.components_[c];
      g.mean_ = gs.mean;
      g.chol_ = gs.chol;
      g.log_det_ = gs.log_det;
      g.count_ = gs.count;
      g.sum_ = gs.sum;
      g.scatter_ = gs.scatter;
      g.forgetting_ = gs.forgetting;
      g.weight_ = gs.weight;
      g.ridge_ = gs.ridge;
      // Pre-size the refresh scratch so the first post-restore fold or
      // eviction is as allocation-free as in the captured session.
      g.cov_scratch_.ResizeForOverwrite(d, d);
      g.reg_scratch_.ResizeForOverwrite(d, d);
      g.chol_try_.ResizeForOverwrite(d, d);
      if (gs.forgetting) {
        g.down_v_.assign(d, 0.0);
        g.down_p_.assign(d, 0.0);
      }
    }
    *out = std::move(est);
    return Status::Ok();
  }

  static Status Restore(const SessionState& s, StreamingFaction* f) {
    const MlpConfig& model_cfg = f->config_.model;
    if (model_cfg.input_dim != s.config.model.input_dim ||
        model_cfg.num_classes != s.config.model.num_classes ||
        model_cfg.hidden_dims != s.config.model.hidden_dims) {
      return Status::InvalidArgument(
          "RestoreSessionState: learner architecture differs from the "
          "captured config; construct the learner from state.config");
    }
    if (f->config_.density_window != s.config.density_window) {
      return Status::InvalidArgument(
          "RestoreSessionState: density_window differs from the captured "
          "config; construct the learner from state.config");
    }

    MlpClassifier& model = *f->model_;
    const std::size_t num_linear = model.hidden_.size() + 1;
    if (s.params.size() != 2 * num_linear || s.layers.size() != num_linear) {
      return Status::InvalidArgument(
          "RestoreSessionState: parameter tensor count mismatch");
    }
    for (std::size_t i = 0; i < model.hidden_.size(); ++i) {
      FACTION_RETURN_IF_ERROR(RestoreLinear(s.layers[i], s.params[2 * i],
                                            s.params[2 * i + 1],
                                            model.hidden_[i].get()));
    }
    FACTION_RETURN_IF_ERROR(
        RestoreLinear(s.layers[num_linear - 1], s.params[2 * num_linear - 2],
                      s.params[2 * num_linear - 1], model.head_.get()));

    f->rng_.RestoreState(s.rng);

    // Pool. The snapshot's feature matrix holds exactly pool_size valid
    // rows; Reserve() re-grows the spare rows the steady state expects.
    const std::size_t n = s.pool_size;
    if (s.pool_features.rows() != n || s.pool_labels.size() != n ||
        s.pool_sensitive.size() != n || s.pool_environments.size() != n ||
        (n > 0 && s.pool_features.cols() != model_cfg.input_dim)) {
      return Status::InvalidArgument(
          "RestoreSessionState: inconsistent pool section");
    }
    Dataset& pool = f->pool_;
    pool.dim_ = model_cfg.input_dim;
    pool.features_ = s.pool_features;
    pool.labels_ = s.pool_labels;
    pool.sensitive_ = s.pool_sensitive;
    pool.environments_ = s.pool_environments;
    pool.Reserve(n + f->config_.refit_interval + 1);

    // Ring: slots were canonicalized oldest-first at capture; rebuild with
    // ring_start_ = 0 into the pre-sized ring (allocated by the ctor when
    // density_window > 0).
    const std::size_t cap = f->ring_label_.size();
    if (s.ring_size > cap ||
        (s.ring_size > 0 && s.ring_z.cols() != f->ring_z_.cols())) {
      return Status::InvalidArgument(
          "RestoreSessionState: ring exceeds the configured density_window");
    }
    if (s.ring_label.size() != s.ring_size ||
        s.ring_sensitive.size() != s.ring_size ||
        s.ring_weight.size() != s.ring_size ||
        s.ring_z.rows() != s.ring_size) {
      return Status::InvalidArgument(
          "RestoreSessionState: inconsistent ring section");
    }
    for (std::size_t i = 0; i < s.ring_size; ++i) {
      std::copy(s.ring_z.row_data(i), s.ring_z.row_data(i) + s.ring_z.cols(),
                f->ring_z_.row_data(i));
      f->ring_label_[i] = s.ring_label[i];
      f->ring_sensitive_[i] = s.ring_sensitive[i];
      f->ring_weight_[i] = s.ring_weight[i];
    }
    f->ring_start_ = 0;
    f->ring_size_ = s.ring_size;

    FACTION_RETURN_IF_ERROR(RestoreDensityImpl(
        s.density, f->config_.covariance, &f->estimator_));

    f->normalizer_.RestoreState(s.norm_count, s.norm_min, s.norm_max);
    f->seen_ = s.seen;
    f->queried_ = s.queried;
    f->labels_since_refit_ = s.labels_since_refit;
    f->trained_once_ = s.trained_once;

    // Warm the workspace arena: one scoring pass over a zero vector grows
    // every steady-state buffer ("streaming.x_row", the inference
    // ping-pong, ...) to its working size. ScoreSample consumes no RNG and
    // touches no persistent state, so this does not perturb parity.
    if (f->estimator_.has_value() && f->trained_once_) {
      std::vector<double> warm_x(model_cfg.input_dim, 0.0);
      (void)f->ScoreSample(warm_x);
    }
    return Status::Ok();
  }

  // ------------------------------------------- standalone pipeline state

  static void CaptureDrift(const DriftDetector& d, DriftDetectorState* out) {
    out->n = d.stats_.n_;
    out->mean = d.stats_.mean_;
    out->m2 = d.stats_.m2_;
    out->cooldown_remaining = d.cooldown_remaining_;
  }

  static void RestoreDrift(const DriftDetectorState& s, DriftDetector* d) {
    d->stats_.n_ = s.n;
    d->stats_.mean_ = s.mean;
    d->stats_.m2_ = s.m2;
    d->cooldown_remaining_ = s.cooldown_remaining;
  }

  static void CaptureBandit(const BanditStrategy& b, BanditState* out) {
    out->pulls = b.pulls_;
    out->reward_sum = b.reward_sum_;
  }

  static void RestoreBandit(const BanditState& s, BanditStrategy* b) {
    b->pulls_ = s.pulls;
    b->reward_sum_ = s.reward_sum;
  }

  static void CaptureDisentangled(const DisentangledStrategy& d,
                                  DisentangledState* out) {
    out->global = d.global_;
    out->deltas = d.deltas_;
  }

  static void RestoreDisentangled(const DisentangledState& s,
                                  DisentangledStrategy* d) {
    d->global_ = s.global;
    d->deltas_ = s.deltas;
  }
  // FACTION_COLD_END
};

void CaptureSessionState(const StreamingFaction& faction, SessionState* out) {
  StateCodecAccess::Capture(faction, out);
}

// FACTION_COLD_BEGIN (encode / decode / restore: background jobs and
// warm-start only — never on the dispatch path)

Status RestoreSessionState(const SessionState& state,
                           StreamingFaction* faction) {
  return StateCodecAccess::Restore(state, faction);
}

Status RestoreDensity(const DensitySnapshot& snapshot,
                      const CovarianceConfig& config,
                      std::optional<FairDensityEstimator>* out) {
  return StateCodecAccess::RestoreDensityImpl(snapshot, config, out);
}

namespace {

constexpr char kSessionMagic[] = "faction-session v1";
constexpr char kDriftMagic[] = "faction-drift v1";
constexpr char kBanditMagic[] = "faction-bandit v1";
constexpr char kDisentangledMagic[] = "faction-disentangled v1";

// ----------------------------------------------------------------- encode

void PutDouble(std::ostream& os, double v) {
  // Hexfloat round-trips every finite double bit-for-bit (nn/serialize.cc
  // idiom). The infinities print as "inf"/"-inf", which the reader accepts
  // — log_weights_ carries -inf for zero-mass mixture cells. snprintf %a
  // rather than iostream hexfloat: the serializer runs on the shared job
  // system next to drain work, and printf formatting is several times
  // cheaper than the locale-aware ostream path for the same bytes.
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), " %a", v);
  os.write(buf, n);
}

void PutDoubles(std::ostream& os, const double* v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) PutDouble(os, v[i]);
}

void PutVector(std::ostream& os, const std::vector<double>& v) {
  os << v.size();
  PutDoubles(os, v.data(), v.size());
}

void PutInts(std::ostream& os, const std::vector<int>& v) {
  for (const int x : v) os << ' ' << x;
}

void PutRngState(std::ostream& os, const Rng::State& s) {
  os << s.s[0] << ' ' << s.s[1] << ' ' << s.s[2] << ' ' << s.s[3] << ' '
     << (s.have_cached_gaussian ? 1 : 0);
  PutDouble(os, s.cached_gaussian);
}

void PutMatrix(std::ostream& os, const Matrix& m) {
  os << m.rows() << ' ' << m.cols();
  PutDoubles(os, m.data(), m.rows() * m.cols());
  os << '\n';
}

void PutGaussian(std::ostream& os, const GaussianSnapshot& g) {
  os << "gaussian " << g.count;
  PutDouble(os, g.weight);
  PutDouble(os, g.ridge);
  PutDouble(os, g.log_det);
  os << ' ' << (g.forgetting ? 1 : 0) << '\n';
  os << "mean ";
  PutVector(os, g.mean);
  os << "\nsum ";
  PutVector(os, g.sum);
  os << "\nchol ";
  PutMatrix(os, g.chol);
  os << "scatter ";
  PutMatrix(os, g.scatter);
}

// ----------------------------------------------------------------- decode

/// Token-stream reader over an istream; every failure names the source and
/// the byte offset where parsing stopped.
class TokenReader {
 public:
  TokenReader(std::istream& is, const std::string& source)
      : is_(is), source_(source) {}

  Status Fail(const std::string& what) {
    // A failed extraction sets failbit, under which tellg() returns -1;
    // clear first so the offset points at the stream position reached.
    is_.clear();
    const std::streamoff pos = static_cast<std::streamoff>(is_.tellg());
    std::string msg = "DecodeSessionState: " + what + " in " + source_;
    if (pos >= 0) {
      msg += " @byte " + std::to_string(static_cast<long long>(pos));
    }
    return Status::InvalidArgument(std::move(msg));
  }

  Status Token(std::string* out, const char* what) {
    if (!(is_ >> *out)) return Fail(std::string("truncated ") + what);
    return Status::Ok();
  }

  Status Expect(const char* tag) {
    FACTION_RETURN_IF_ERROR(Token(&tok_, tag));
    if (tok_ != tag) {
      return Fail(std::string("expected '") + tag + "', got '" + tok_ + "'");
    }
    return Status::Ok();
  }

  Status ReadU64(std::uint64_t* out, const char* what) {
    if (!(is_ >> *out)) return Fail(std::string("bad ") + what);
    return Status::Ok();
  }

  Status ReadSize(std::size_t* out, const char* what) {
    if (!(is_ >> *out)) return Fail(std::string("bad ") + what);
    return Status::Ok();
  }

  Status ReadInt(int* out, const char* what) {
    if (!(is_ >> *out)) return Fail(std::string("bad ") + what);
    return Status::Ok();
  }

  Status ReadBool(bool* out, const char* what) {
    int v = 0;
    FACTION_RETURN_IF_ERROR(ReadInt(&v, what));
    if (v != 0 && v != 1) return Fail(std::string("non-boolean ") + what);
    *out = (v == 1);
    return Status::Ok();
  }

  /// Parses one double token via strtod: accepts hexfloat and the
  /// infinities (mixture log-weights are -inf at zero mass), rejects NaN
  /// and trailing garbage.
  Status ReadDouble(double* out, const char* what) {
    FACTION_RETURN_IF_ERROR(Token(&tok_, what));
    const char* begin = tok_.c_str();
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin || *end != '\0') {
      return Fail(std::string("bad ") + what + " '" + tok_ + "'");
    }
    if (std::isnan(v)) {
      return Fail(std::string("non-finite ") + what + " '" + tok_ + "'");
    }
    *out = v;
    return Status::Ok();
  }

  Status ReadDoubles(double* out, std::size_t n, const char* what) {
    for (std::size_t i = 0; i < n; ++i) {
      FACTION_RETURN_IF_ERROR(ReadDouble(&out[i], what));
    }
    return Status::Ok();
  }

  Status ReadVector(std::vector<double>* out, const char* what,
                    std::size_t max_len = 1u << 24) {
    std::size_t n = 0;
    FACTION_RETURN_IF_ERROR(ReadSize(&n, what));
    if (n > max_len) return Fail(std::string("oversized ") + what);
    out->resize(n);
    return ReadDoubles(out->data(), n, what);
  }

  Status ReadInts(std::vector<int>* out, std::size_t n, const char* what) {
    out->resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      FACTION_RETURN_IF_ERROR(ReadInt(&(*out)[i], what));
    }
    return Status::Ok();
  }

  Status ReadRngState(Rng::State* out, const char* what) {
    for (int i = 0; i < 4; ++i) {
      FACTION_RETURN_IF_ERROR(ReadU64(&out->s[i], what));
    }
    FACTION_RETURN_IF_ERROR(ReadBool(&out->have_cached_gaussian, what));
    return ReadDouble(&out->cached_gaussian, what);
  }

  Status ReadMatrix(Matrix* out, const char* what,
                    std::size_t max_dim = 1u << 20) {
    std::size_t r = 0, c = 0;
    FACTION_RETURN_IF_ERROR(ReadSize(&r, what));
    FACTION_RETURN_IF_ERROR(ReadSize(&c, what));
    if (r > max_dim || c > max_dim || (c != 0 && r > max_dim / c + 1)) {
      return Fail(std::string("oversized ") + what);
    }
    out->ResizeForOverwrite(r, c);
    return ReadDoubles(out->data(), r * c, what);
  }

  Status ReadGaussian(GaussianSnapshot* out) {
    FACTION_RETURN_IF_ERROR(Expect("gaussian"));
    FACTION_RETURN_IF_ERROR(ReadSize(&out->count, "gaussian count"));
    FACTION_RETURN_IF_ERROR(ReadDouble(&out->weight, "gaussian weight"));
    FACTION_RETURN_IF_ERROR(ReadDouble(&out->ridge, "gaussian ridge"));
    FACTION_RETURN_IF_ERROR(ReadDouble(&out->log_det, "gaussian log_det"));
    FACTION_RETURN_IF_ERROR(
        ReadBool(&out->forgetting, "gaussian forgetting flag"));
    FACTION_RETURN_IF_ERROR(Expect("mean"));
    FACTION_RETURN_IF_ERROR(ReadVector(&out->mean, "gaussian mean"));
    FACTION_RETURN_IF_ERROR(Expect("sum"));
    FACTION_RETURN_IF_ERROR(ReadVector(&out->sum, "gaussian sum"));
    FACTION_RETURN_IF_ERROR(Expect("chol"));
    FACTION_RETURN_IF_ERROR(ReadMatrix(&out->chol, "gaussian factor"));
    FACTION_RETURN_IF_ERROR(Expect("scatter"));
    return ReadMatrix(&out->scatter, "gaussian scatter");
  }

  Status ExpectMagic(const char* word1, const char* word2) {
    FACTION_RETURN_IF_ERROR(Token(&tok_, "magic header"));
    std::string second;
    FACTION_RETURN_IF_ERROR(Token(&second, "magic header"));
    if (tok_ != word1 || second != word2) {
      return Fail("bad magic header '" + tok_ + " " + second + "'");
    }
    return Status::Ok();
  }

 private:
  std::istream& is_;
  std::string source_;
  std::string tok_;
};

}  // namespace

void EncodeSessionState(const SessionState& state, std::string* out) {
  std::ostringstream os;
  os << std::hexfloat;  // integers are unaffected; every double round-trips
  os << kSessionMagic << '\n';
  os << "stream " << state.stream_id << ' ' << state.generation << ' '
     << state.steps << '\n';

  const StreamingFactionConfig& c = state.config;
  os << "config";
  PutDouble(os, c.lambda);
  PutDouble(os, c.alpha);
  os << ' ' << c.warm_start << ' ' << c.burn_in << ' ' << c.refit_interval
     << ' ' << (c.incremental_density ? 1 : 0) << ' ' << c.density_window;
  PutDouble(os, c.density_decay);
  os << ' ' << c.seed << '\n';

  os << "covariance";
  PutDouble(os, c.covariance.shrinkage);
  PutDouble(os, c.covariance.jitter);
  os << ' ' << c.covariance.max_jitter_doublings << ' '
     << (c.covariance.forgetting ? 1 : 0);
  PutDouble(os, c.covariance.ridge);
  os << '\n';

  os << "model " << c.model.input_dim << ' ' << c.model.num_classes << ' '
     << c.model.hidden_dims.size();
  for (const std::size_t h : c.model.hidden_dims) os << ' ' << h;
  os << '\n';

  os << "spectral " << (c.model.spectral.enabled ? 1 : 0);
  PutDouble(os, c.model.spectral.coeff);
  os << ' ' << c.model.spectral.power_iterations << '\n';

  const TrainConfig& t = c.train;
  os << "train " << t.epochs << ' ' << t.batch_size;
  PutDouble(os, t.learning_rate);
  PutDouble(os, t.momentum);
  PutDouble(os, t.weight_decay);
  os << ' ' << (t.use_fairness_penalty ? 1 : 0) << ' '
     << static_cast<int>(t.fairness.notion);
  PutDouble(os, t.fairness.mu);
  PutDouble(os, t.fairness.epsilon);
  os << ' ' << (t.fairness.symmetric ? 1 : 0) << ' '
     << (t.use_individual_penalty ? 1 : 0);
  PutDouble(os, t.individual.weight);
  PutDouble(os, t.individual.bandwidth);
  PutDouble(os, t.individual.similarity_cutoff);
  os << ' ' << t.individual.max_pairs << '\n';

  os << "rng ";
  PutRngState(os, state.rng);
  os << '\n';

  os << "tensors " << state.params.size() << '\n';
  for (const Matrix& m : state.params) PutMatrix(os, m);

  os << "layers " << state.layers.size() << '\n';
  for (const LinearSnapshot& l : state.layers) {
    PutDouble(os, l.scale);
    PutDouble(os, l.sigma);
    PutDouble(os, l.sn_sigma);
    os << ' ';
    PutVector(os, l.sn_u);
    os << ' ';
    PutVector(os, l.sn_v);
    os << ' ';
    PutRngState(os, l.sn_rng);
    os << '\n';
  }

  os << "pool " << state.pool_size << ' ' << state.pool_features.cols();
  PutDoubles(os, state.pool_features.data(),
             state.pool_size * state.pool_features.cols());
  os << "\nlabels";
  PutInts(os, state.pool_labels);
  os << "\nsensitive";
  PutInts(os, state.pool_sensitive);
  os << "\nenvironments";
  PutInts(os, state.pool_environments);
  os << '\n';

  os << "ring " << state.ring_size << ' ' << state.ring_z.cols();
  PutDoubles(os, state.ring_z.data(), state.ring_size * state.ring_z.cols());
  os << "\nringlabels";
  PutInts(os, state.ring_label);
  os << "\nringsensitive";
  PutInts(os, state.ring_sensitive);
  os << "\nringweights";
  PutDoubles(os, state.ring_weight.data(), state.ring_weight.size());
  os << '\n';

  os << "normalizer " << state.norm_count;
  PutDouble(os, state.norm_min);
  PutDouble(os, state.norm_max);
  os << '\n';

  os << "counters " << state.seen << ' ' << state.queried << ' '
     << state.labels_since_refit << ' ' << (state.trained_once ? 1 : 0)
     << '\n';

  const DensitySnapshot& dsnap = state.density;
  os << "density " << (dsnap.has_value ? 1 : 0) << '\n';
  if (dsnap.has_value) {
    os << dsnap.dim << ' ' << (dsnap.forgetting ? 1 : 0) << ' '
       << dsnap.total;
    PutDouble(os, dsnap.wtotal);
    os << '\n';
    for (int cell = 0; cell < DensitySnapshot::kCells; ++cell) {
      os << "cell " << (dsnap.present[cell] ? 1 : 0) << ' '
         << dsnap.counts[cell];
      PutDouble(os, dsnap.wcounts[cell]);
      PutDouble(os, dsnap.weights[cell]);
      PutDouble(os, dsnap.log_weights[cell]);
      os << '\n';
      if (dsnap.present[cell]) PutGaussian(os, dsnap.components[cell]);
    }
  }
  os << "end\n";
  *out = os.str();
}

Status DecodeSessionState(std::istream& is, const std::string& source,
                          SessionState* out) {
  TokenReader r(is, source);
  FACTION_RETURN_IF_ERROR(r.ExpectMagic("faction-session", "v1"));

  FACTION_RETURN_IF_ERROR(r.Expect("stream"));
  FACTION_RETURN_IF_ERROR(r.ReadU64(&out->stream_id, "stream id"));
  FACTION_RETURN_IF_ERROR(r.ReadU64(&out->generation, "generation"));
  FACTION_RETURN_IF_ERROR(r.ReadU64(&out->steps, "step count"));

  StreamingFactionConfig& c = out->config;
  FACTION_RETURN_IF_ERROR(r.Expect("config"));
  FACTION_RETURN_IF_ERROR(r.ReadDouble(&c.lambda, "lambda"));
  FACTION_RETURN_IF_ERROR(r.ReadDouble(&c.alpha, "alpha"));
  FACTION_RETURN_IF_ERROR(r.ReadSize(&c.warm_start, "warm_start"));
  FACTION_RETURN_IF_ERROR(r.ReadSize(&c.burn_in, "burn_in"));
  FACTION_RETURN_IF_ERROR(r.ReadSize(&c.refit_interval, "refit_interval"));
  FACTION_RETURN_IF_ERROR(
      r.ReadBool(&c.incremental_density, "incremental_density"));
  FACTION_RETURN_IF_ERROR(r.ReadSize(&c.density_window, "density_window"));
  FACTION_RETURN_IF_ERROR(r.ReadDouble(&c.density_decay, "density_decay"));
  FACTION_RETURN_IF_ERROR(r.ReadU64(&c.seed, "seed"));

  FACTION_RETURN_IF_ERROR(r.Expect("covariance"));
  FACTION_RETURN_IF_ERROR(r.ReadDouble(&c.covariance.shrinkage, "shrinkage"));
  FACTION_RETURN_IF_ERROR(r.ReadDouble(&c.covariance.jitter, "jitter"));
  FACTION_RETURN_IF_ERROR(
      r.ReadInt(&c.covariance.max_jitter_doublings, "max_jitter_doublings"));
  FACTION_RETURN_IF_ERROR(
      r.ReadBool(&c.covariance.forgetting, "covariance forgetting flag"));
  FACTION_RETURN_IF_ERROR(r.ReadDouble(&c.covariance.ridge, "ridge"));

  FACTION_RETURN_IF_ERROR(r.Expect("model"));
  FACTION_RETURN_IF_ERROR(r.ReadSize(&c.model.input_dim, "input_dim"));
  FACTION_RETURN_IF_ERROR(r.ReadSize(&c.model.num_classes, "num_classes"));
  std::size_t num_hidden = 0;
  FACTION_RETURN_IF_ERROR(r.ReadSize(&num_hidden, "hidden layer count"));
  if (num_hidden > 1024) return r.Fail("oversized hidden layer count");
  c.model.hidden_dims.resize(num_hidden);
  for (std::size_t i = 0; i < num_hidden; ++i) {
    FACTION_RETURN_IF_ERROR(
        r.ReadSize(&c.model.hidden_dims[i], "hidden width"));
  }

  FACTION_RETURN_IF_ERROR(r.Expect("spectral"));
  FACTION_RETURN_IF_ERROR(
      r.ReadBool(&c.model.spectral.enabled, "spectral enabled flag"));
  FACTION_RETURN_IF_ERROR(
      r.ReadDouble(&c.model.spectral.coeff, "spectral coeff"));
  FACTION_RETURN_IF_ERROR(
      r.ReadInt(&c.model.spectral.power_iterations, "power_iterations"));

  TrainConfig& t = c.train;
  FACTION_RETURN_IF_ERROR(r.Expect("train"));
  FACTION_RETURN_IF_ERROR(r.ReadInt(&t.epochs, "epochs"));
  FACTION_RETURN_IF_ERROR(r.ReadSize(&t.batch_size, "batch_size"));
  FACTION_RETURN_IF_ERROR(r.ReadDouble(&t.learning_rate, "learning_rate"));
  FACTION_RETURN_IF_ERROR(r.ReadDouble(&t.momentum, "momentum"));
  FACTION_RETURN_IF_ERROR(r.ReadDouble(&t.weight_decay, "weight_decay"));
  FACTION_RETURN_IF_ERROR(
      r.ReadBool(&t.use_fairness_penalty, "use_fairness_penalty"));
  int notion = 0;
  FACTION_RETURN_IF_ERROR(r.ReadInt(&notion, "fairness notion"));
  if (notion != static_cast<int>(FairnessNotion::kDdp) &&
      notion != static_cast<int>(FairnessNotion::kDeo)) {
    return r.Fail("unknown fairness notion");
  }
  t.fairness.notion = static_cast<FairnessNotion>(notion);
  FACTION_RETURN_IF_ERROR(r.ReadDouble(&t.fairness.mu, "fairness mu"));
  FACTION_RETURN_IF_ERROR(
      r.ReadDouble(&t.fairness.epsilon, "fairness epsilon"));
  FACTION_RETURN_IF_ERROR(
      r.ReadBool(&t.fairness.symmetric, "fairness symmetric flag"));
  FACTION_RETURN_IF_ERROR(
      r.ReadBool(&t.use_individual_penalty, "use_individual_penalty"));
  FACTION_RETURN_IF_ERROR(
      r.ReadDouble(&t.individual.weight, "individual weight"));
  FACTION_RETURN_IF_ERROR(
      r.ReadDouble(&t.individual.bandwidth, "individual bandwidth"));
  FACTION_RETURN_IF_ERROR(
      r.ReadDouble(&t.individual.similarity_cutoff, "similarity_cutoff"));
  FACTION_RETURN_IF_ERROR(r.ReadSize(&t.individual.max_pairs, "max_pairs"));

  FACTION_RETURN_IF_ERROR(r.Expect("rng"));
  FACTION_RETURN_IF_ERROR(r.ReadRngState(&out->rng, "rng state"));

  FACTION_RETURN_IF_ERROR(r.Expect("tensors"));
  std::size_t num_tensors = 0;
  FACTION_RETURN_IF_ERROR(r.ReadSize(&num_tensors, "tensor count"));
  if (num_tensors != 2 * (num_hidden + 1)) {
    return r.Fail("tensor count does not match the architecture");
  }
  out->params.resize(num_tensors);
  for (std::size_t i = 0; i < num_tensors; ++i) {
    FACTION_RETURN_IF_ERROR(r.ReadMatrix(&out->params[i], "tensor"));
  }

  FACTION_RETURN_IF_ERROR(r.Expect("layers"));
  std::size_t num_layers = 0;
  FACTION_RETURN_IF_ERROR(r.ReadSize(&num_layers, "layer count"));
  if (num_layers != num_hidden + 1) {
    return r.Fail("layer count does not match the architecture");
  }
  out->layers.resize(num_layers);
  for (std::size_t i = 0; i < num_layers; ++i) {
    LinearSnapshot& l = out->layers[i];
    FACTION_RETURN_IF_ERROR(r.ReadDouble(&l.scale, "layer scale"));
    FACTION_RETURN_IF_ERROR(r.ReadDouble(&l.sigma, "layer sigma"));
    FACTION_RETURN_IF_ERROR(r.ReadDouble(&l.sn_sigma, "layer sn_sigma"));
    FACTION_RETURN_IF_ERROR(r.ReadVector(&l.sn_u, "layer sn_u"));
    FACTION_RETURN_IF_ERROR(r.ReadVector(&l.sn_v, "layer sn_v"));
    FACTION_RETURN_IF_ERROR(r.ReadRngState(&l.sn_rng, "layer rng state"));
  }

  FACTION_RETURN_IF_ERROR(r.Expect("pool"));
  std::size_t pool_dim = 0;
  FACTION_RETURN_IF_ERROR(r.ReadSize(&out->pool_size, "pool size"));
  FACTION_RETURN_IF_ERROR(r.ReadSize(&pool_dim, "pool dimension"));
  if (pool_dim != c.model.input_dim) {
    return r.Fail("pool dimension does not match the model input");
  }
  out->pool_features.ResizeForOverwrite(out->pool_size, pool_dim);
  FACTION_RETURN_IF_ERROR(r.ReadDoubles(
      out->pool_features.data(), out->pool_size * pool_dim, "pool row"));
  FACTION_RETURN_IF_ERROR(r.Expect("labels"));
  FACTION_RETURN_IF_ERROR(
      r.ReadInts(&out->pool_labels, out->pool_size, "pool label"));
  FACTION_RETURN_IF_ERROR(r.Expect("sensitive"));
  FACTION_RETURN_IF_ERROR(
      r.ReadInts(&out->pool_sensitive, out->pool_size, "pool sensitive"));
  FACTION_RETURN_IF_ERROR(r.Expect("environments"));
  FACTION_RETURN_IF_ERROR(r.ReadInts(&out->pool_environments, out->pool_size,
                                     "pool environment"));

  FACTION_RETURN_IF_ERROR(r.Expect("ring"));
  std::size_t ring_dim = 0;
  FACTION_RETURN_IF_ERROR(r.ReadSize(&out->ring_size, "ring size"));
  FACTION_RETURN_IF_ERROR(r.ReadSize(&ring_dim, "ring dimension"));
  if (out->ring_size > c.density_window) {
    return r.Fail("ring size exceeds density_window");
  }
  out->ring_z.ResizeForOverwrite(out->ring_size, ring_dim);
  FACTION_RETURN_IF_ERROR(r.ReadDoubles(
      out->ring_z.data(), out->ring_size * ring_dim, "ring row"));
  FACTION_RETURN_IF_ERROR(r.Expect("ringlabels"));
  FACTION_RETURN_IF_ERROR(
      r.ReadInts(&out->ring_label, out->ring_size, "ring label"));
  FACTION_RETURN_IF_ERROR(r.Expect("ringsensitive"));
  FACTION_RETURN_IF_ERROR(
      r.ReadInts(&out->ring_sensitive, out->ring_size, "ring sensitive"));
  FACTION_RETURN_IF_ERROR(r.Expect("ringweights"));
  out->ring_weight.resize(out->ring_size);
  FACTION_RETURN_IF_ERROR(r.ReadDoubles(out->ring_weight.data(),
                                        out->ring_size, "ring weight"));

  FACTION_RETURN_IF_ERROR(r.Expect("normalizer"));
  FACTION_RETURN_IF_ERROR(r.ReadSize(&out->norm_count, "normalizer count"));
  FACTION_RETURN_IF_ERROR(r.ReadDouble(&out->norm_min, "normalizer min"));
  FACTION_RETURN_IF_ERROR(r.ReadDouble(&out->norm_max, "normalizer max"));

  FACTION_RETURN_IF_ERROR(r.Expect("counters"));
  FACTION_RETURN_IF_ERROR(r.ReadSize(&out->seen, "seen counter"));
  FACTION_RETURN_IF_ERROR(r.ReadSize(&out->queried, "queried counter"));
  FACTION_RETURN_IF_ERROR(
      r.ReadSize(&out->labels_since_refit, "labels_since_refit"));
  FACTION_RETURN_IF_ERROR(
      r.ReadBool(&out->trained_once, "trained_once flag"));

  DensitySnapshot& dsnap = out->density;
  FACTION_RETURN_IF_ERROR(r.Expect("density"));
  FACTION_RETURN_IF_ERROR(r.ReadBool(&dsnap.has_value, "density presence"));
  if (dsnap.has_value) {
    FACTION_RETURN_IF_ERROR(r.ReadSize(&dsnap.dim, "density dimension"));
    FACTION_RETURN_IF_ERROR(
        r.ReadBool(&dsnap.forgetting, "density forgetting flag"));
    FACTION_RETURN_IF_ERROR(r.ReadSize(&dsnap.total, "density total"));
    FACTION_RETURN_IF_ERROR(r.ReadDouble(&dsnap.wtotal, "density wtotal"));
    for (int cell = 0; cell < DensitySnapshot::kCells; ++cell) {
      FACTION_RETURN_IF_ERROR(r.Expect("cell"));
      FACTION_RETURN_IF_ERROR(
          r.ReadBool(&dsnap.present[cell], "cell presence"));
      FACTION_RETURN_IF_ERROR(r.ReadSize(&dsnap.counts[cell], "cell count"));
      FACTION_RETURN_IF_ERROR(
          r.ReadDouble(&dsnap.wcounts[cell], "cell wcount"));
      FACTION_RETURN_IF_ERROR(
          r.ReadDouble(&dsnap.weights[cell], "cell weight"));
      FACTION_RETURN_IF_ERROR(
          r.ReadDouble(&dsnap.log_weights[cell], "cell log-weight"));
      if (dsnap.present[cell]) {
        FACTION_RETURN_IF_ERROR(r.ReadGaussian(&dsnap.components[cell]));
      }
    }
  }
  return r.Expect("end");
}

Status DecodeSessionStateFromFile(const std::string& path,
                                  SessionState* out) {
  std::ifstream is(path);
  if (!is.is_open()) {
    return Status::NotFound("DecodeSessionStateFromFile: cannot open " +
                            path);
  }
  return DecodeSessionState(is, path, out);
}

// ------------------------------------------- standalone pipeline state

void CaptureDriftDetectorState(const DriftDetector& detector,
                               DriftDetectorState* out) {
  StateCodecAccess::CaptureDrift(detector, out);
}

void RestoreDriftDetectorState(const DriftDetectorState& state,
                               DriftDetector* detector) {
  StateCodecAccess::RestoreDrift(state, detector);
}

void EncodeDriftDetectorState(const DriftDetectorState& state,
                              std::string* out) {
  std::ostringstream os;
  os << std::hexfloat;
  os << kDriftMagic << '\n' << state.n;
  PutDouble(os, state.mean);
  PutDouble(os, state.m2);
  os << ' ' << state.cooldown_remaining << '\n';
  *out = os.str();
}

Status DecodeDriftDetectorState(std::istream& is, const std::string& source,
                                DriftDetectorState* out) {
  TokenReader r(is, source);
  FACTION_RETURN_IF_ERROR(r.ExpectMagic("faction-drift", "v1"));
  FACTION_RETURN_IF_ERROR(r.ReadSize(&out->n, "history count"));
  FACTION_RETURN_IF_ERROR(r.ReadDouble(&out->mean, "running mean"));
  FACTION_RETURN_IF_ERROR(r.ReadDouble(&out->m2, "running m2"));
  return r.ReadSize(&out->cooldown_remaining, "cooldown");
}

void CaptureBanditState(const BanditStrategy& strategy, BanditState* out) {
  StateCodecAccess::CaptureBandit(strategy, out);
}

void RestoreBanditState(const BanditState& state, BanditStrategy* strategy) {
  StateCodecAccess::RestoreBandit(state, strategy);
}

void EncodeBanditState(const BanditState& state, std::string* out) {
  std::ostringstream os;
  os << std::hexfloat;
  os << kBanditMagic << '\n';
  PutDouble(os, state.pulls[0]);
  PutDouble(os, state.pulls[1]);
  PutDouble(os, state.reward_sum[0]);
  PutDouble(os, state.reward_sum[1]);
  os << '\n';
  *out = os.str();
}

Status DecodeBanditState(std::istream& is, const std::string& source,
                         BanditState* out) {
  TokenReader r(is, source);
  FACTION_RETURN_IF_ERROR(r.ExpectMagic("faction-bandit", "v1"));
  FACTION_RETURN_IF_ERROR(r.ReadDouble(&out->pulls[0], "arm pulls"));
  FACTION_RETURN_IF_ERROR(r.ReadDouble(&out->pulls[1], "arm pulls"));
  FACTION_RETURN_IF_ERROR(r.ReadDouble(&out->reward_sum[0], "arm reward"));
  return r.ReadDouble(&out->reward_sum[1], "arm reward");
}

void CaptureDisentangledState(const DisentangledStrategy& strategy,
                              DisentangledState* out) {
  StateCodecAccess::CaptureDisentangled(strategy, out);
}

void RestoreDisentangledState(const DisentangledState& state,
                              DisentangledStrategy* strategy) {
  StateCodecAccess::RestoreDisentangled(state, strategy);
}

void EncodeDisentangledState(const DisentangledState& state,
                             std::string* out) {
  std::ostringstream os;
  os << std::hexfloat;
  os << kDisentangledMagic << '\n';
  PutVector(os, state.global);
  os << '\n' << state.deltas.size() << '\n';
  for (const auto& [env, delta] : state.deltas) {
    os << env << ' ';
    PutVector(os, delta);
    os << '\n';
  }
  *out = os.str();
}

Status DecodeDisentangledState(std::istream& is, const std::string& source,
                               DisentangledState* out) {
  TokenReader r(is, source);
  FACTION_RETURN_IF_ERROR(r.ExpectMagic("faction-disentangled", "v1"));
  FACTION_RETURN_IF_ERROR(r.ReadVector(&out->global, "global weights"));
  std::size_t num_deltas = 0;
  FACTION_RETURN_IF_ERROR(r.ReadSize(&num_deltas, "delta count"));
  if (num_deltas > 1u << 20) return r.Fail("oversized delta count");
  out->deltas.clear();
  for (std::size_t i = 0; i < num_deltas; ++i) {
    int env = 0;
    FACTION_RETURN_IF_ERROR(r.ReadInt(&env, "delta environment"));
    std::vector<double> delta;
    FACTION_RETURN_IF_ERROR(r.ReadVector(&delta, "delta weights"));
    out->deltas.emplace(env, std::move(delta));
  }
  return Status::Ok();
}

// FACTION_COLD_END

}  // namespace faction
