#ifndef FACTION_SERVE_SESSION_REGISTRY_H_
#define FACTION_SERVE_SESSION_REGISTRY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "serve/session.h"

namespace faction {

/// Owns every ServeSession, keyed by stream id. Node-based storage keeps
/// session addresses stable for the lifetime of the registry, so the serve
/// runtime and job contexts may hold raw ServeSession* across rehashes.
///
/// Create/Erase are cold control-plane operations (they allocate and take
/// the mutex); Find is hot-path legal (lookup only, no allocation).
class SessionRegistry {
 public:
  SessionRegistry() = default;

  SessionRegistry(const SessionRegistry&) = delete;
  SessionRegistry& operator=(const SessionRegistry&) = delete;

  /// Creates and registers a session; FACTION_CHECKs that the stream id is
  /// unused. The returned pointer stays valid until Erase/destruction.
  ServeSession* Create(const ServeSessionOptions& options);

  /// Null when the stream id is unknown.
  ServeSession* Find(std::uint64_t stream_id) const;

  /// True when a session existed and was destroyed. The caller must
  /// guarantee no in-flight job still references it (ServeRuntime drains
  /// first).
  bool Erase(std::uint64_t stream_id);

  std::size_t size() const;

  /// Stable-order snapshot of the registered sessions (ascending stream
  /// id) for iteration by tests, benchmarks, and drain loops.
  std::vector<ServeSession*> Sessions() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::unique_ptr<ServeSession>>
      sessions_;
};

}  // namespace faction

#endif  // FACTION_SERVE_SESSION_REGISTRY_H_
