#ifndef FACTION_SERVE_SERVE_RUNTIME_H_
#define FACTION_SERVE_SERVE_RUNTIME_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/timer.h"
#include "serve/checkpoint.h"
#include "serve/job_system.h"
#include "serve/session.h"
#include "serve/session_registry.h"

// Multi-stream serve loop (DESIGN.md §14): a SessionRegistry of
// independent per-cohort learners multiplexed over a work-stealing
// JobSystem. Per-session ordering guarantee: at most one drain job per
// session holds its schedule at a time, and the mailbox preserves arrival
// order, so every session's outputs are bitwise identical to running that
// session alone — for any worker count and any cross-session
// interleaving (enforced by tests/serve_test.cc).

namespace faction {

struct ServeRuntimeOptions {
  /// Worker threads for the job system; 0 = synchronous inline execution
  /// on the offering thread (the determinism reference and the mode the
  /// allocation-audit gate runs in).
  int workers = 1;
  /// Upper bound on concurrently registered sessions; sizes the job arena
  /// (each session keeps at most one drain job in flight, plus one
  /// immediate reschedule).
  std::size_t max_sessions = 4096;
  /// Default mailbox capacity for CreateSession.
  std::size_t mailbox_capacity = 64;
  /// When true, Offer observes per-arrival step latency into the
  /// "serve.step.latency_seconds" telemetry histogram (needs telemetry
  /// enabled to have any effect).
  bool record_latency = true;
};

/// Owns the job system, the session registry, and the serve clock.
class ServeRuntime {
 public:
  // FACTION_COLD_BEGIN: constructor spawns workers and pre-sizes the job
  // arena (2x max_sessions: one in-flight drain plus one reschedule per
  // session).
  explicit ServeRuntime(const ServeRuntimeOptions& options);
  // FACTION_COLD_END

  ServeRuntime(const ServeRuntime&) = delete;
  ServeRuntime& operator=(const ServeRuntime&) = delete;

  /// Registers a new session (cold path). `options.mailbox_capacity`
  /// defaults from the runtime options when left at 0.
  ServeSession* CreateSession(ServeSessionOptions options);

  /// Hands one arrival to a session: mailbox push + drain-job scheduling.
  /// False when the mailbox was full (arrival shed, learner untouched).
  /// At most one Offer per session may run concurrently (SPSC mailbox);
  /// Offers to distinct sessions are free to race.
  bool Offer(ServeSession* session, const Example& example);

  /// Blocks until every scheduled drain (and every drain it reschedules)
  /// has finished. Quiescent once no producer is offering concurrently.
  void Drain();

  /// Enables background checkpointing (cold; call before serving starts).
  /// Every current and future session gets a checkpoint slot; drain
  /// holders snapshot eligible sessions off the hot path and serializer
  /// jobs stream them to `options.dir`. Returns the manager (owned by the
  /// runtime) for Flush/inspection.
  CheckpointManager* EnableCheckpoints(const CheckpointOptions& options);
  CheckpointManager* checkpoints() { return checkpoints_.get(); }

  /// Rebuilds the session registry from a checkpoint manifest: one session
  /// per manifest entry, constructed from its checkpointed config and
  /// restored to bitwise parity with the captured learner (no replay).
  /// When checkpointing is enabled, restored sessions resume their
  /// generation sequence. Call on a freshly constructed runtime before any
  /// Offer.
  Result<WarmStartReport> WarmStart(const std::string& manifest_path,
                                    const WarmStartOptions& options = {});

  SessionRegistry& registry() { return registry_; }
  const SessionRegistry& registry() const { return registry_; }
  int workers() const { return jobs_.workers(); }
  /// Seconds since runtime construction on the serve clock.
  double NowSeconds() const { return clock_.ElapsedSeconds(); }

 private:
  /// Job body: drain the session, then keep rescheduling while
  /// FinishSchedule re-takes the schedule (arrivals raced in).
  static void DrainJob(void* ctx);

  void Schedule(ServeSession* session);

  ServeRuntimeOptions options_;
  Timer clock_;
  SessionRegistry registry_;
  JobSystem jobs_;
  /// Background checkpointing; null until EnableCheckpoints. Destroyed
  /// before jobs_ (member order), flushing serializer jobs first.
  std::unique_ptr<CheckpointManager> checkpoints_;
};

}  // namespace faction

#endif  // FACTION_SERVE_SERVE_RUNTIME_H_
