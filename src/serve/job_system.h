#ifndef FACTION_SERVE_JOB_SYSTEM_H_
#define FACTION_SERVE_JOB_SYSTEM_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

// Work-stealing job system for the multi-stream serving runtime
// (DESIGN.md §14).
//
// Layout: one persistent worker per configured slot, each owning a bounded
// LIFO deque of job indices. A worker drains its own deque bottom-first
// (cache-warm continuation of what it just produced), falls back to the
// shared injection queue (jobs submitted from non-worker threads), then
// steals oldest-first from sibling deques, and finally parks on a
// condition variable until new work arrives.
//
// Memory-ordering stance: every cross-thread atomic in this file uses
// seq_cst. The Chase-Lev deque is usually published with relaxed atomics
// plus standalone fences, but (a) standalone fences are invisible to
// ThreadSanitizer, which would report false races on the slot array, and
// (b) the correctness argument under sequential consistency is the classic
// textbook one with no fence subtleties. Jobs here are session steps —
// microseconds to milliseconds of work — so a handful of seq_cst
// operations per job is noise; determinism and a TSan-clean tree are worth
// far more than the saved fences.
//
// Allocation discipline: every job node lives in a pre-sized arena and
// every queue is a pre-sized ring, all built in the constructor. Submit,
// dependency registration, execution, completion, and recycling perform
// zero heap allocations, which keeps the whole scheduler legal inside the
// steady-state allocation ban (alloc_audit.h; gated by
// tests/alloc_audit_test.cc).

namespace faction {

/// Bounded lock-free work-stealing deque of job indices. The owner pushes
/// and pops at the bottom (LIFO); any other thread steals from the top
/// (FIFO). Capacity is rounded up to a power of two and never grows — a
/// full deque makes Push return false and the caller falls back to the
/// injection queue. All operations are lock-free and allocation-free.
class WorkStealingDeque {
 public:
  explicit WorkStealingDeque(std::size_t capacity);

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only. False when the deque is full.
  bool Push(std::uint32_t value);

  /// Owner only; newest entry first. False when empty.
  bool Pop(std::uint32_t* value);

  /// Any thread; oldest entry first. False when empty or when it lost the
  /// race for the last entry (callers treat both as "nothing stolen").
  bool Steal(std::uint32_t* value);

  /// Approximate occupancy; exact when no concurrent operations run.
  std::size_t SizeEstimate() const;

  std::size_t capacity() const { return mask_ + 1; }

 private:
  std::size_t mask_;
  std::vector<std::atomic<std::uint32_t>> slots_;
  // top_/bottom_ grow without bound; indices wrap via mask_. Separate cache
  // lines so steals do not false-share with owner pushes.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

/// Work-stealing job scheduler with task-graph dependencies.
///
/// Jobs are plain function pointer + context (no std::function, so
/// submission never allocates). A job becomes runnable when all of its
/// dependencies have finished; per-session FIFO ordering in the serve
/// layer is built on top of this via session mailboxes (session.h), not by
/// job priorities.
///
/// `workers == 0` selects synchronous mode: Submit runs the job (and any
/// continuations it unblocks) inline on the calling thread before
/// returning. The serve determinism tests and the allocation-audit gate
/// use this mode as the single-threaded reference execution.
class JobSystem {
 public:
  using JobFn = void (*)(void* ctx);

  /// Opaque ticket for Wait/Done. Valid until the job system is destroyed;
  /// a recycled slot is detected via the generation counter, so waiting on
  /// a long-finished job is safe and returns immediately.
  struct JobHandle {
    std::uint32_t index = UINT32_MAX;
    std::uint64_t generation = 0;
  };

  struct Options {
    /// Worker thread count; 0 = synchronous inline execution.
    int workers = 1;
    /// Job-node arena size: the maximum number of unfinished jobs alive at
    /// once. Submit FACTION_CHECKs against exhaustion (the serve runtime
    /// sizes this at sessions + slack, since a session keeps at most one
    /// job in flight).
    std::size_t max_jobs = 4096;
    /// Per-worker deque capacity (rounded up to a power of two). Overflow
    /// falls back to the shared injection queue, so this is a performance
    /// knob, not a correctness bound.
    std::size_t deque_capacity = 1024;
  };

  /// A job may fan into at most this many dependent jobs registered via
  /// SubmitAfter while it is still running; FACTION_CHECK-enforced.
  static constexpr std::size_t kMaxContinuations = 8;

  explicit JobSystem(const Options& options);
  ~JobSystem();

  JobSystem(const JobSystem&) = delete;
  JobSystem& operator=(const JobSystem&) = delete;

  /// Submits an immediately-runnable job.
  JobHandle Submit(JobFn fn, void* ctx);

  /// Submits a job that becomes runnable once every handle in
  /// deps[0..ndeps) has finished. Already-finished (or recycled) handles
  /// count as satisfied, so graphs can be built incrementally.
  JobHandle SubmitAfter(const JobHandle* deps, std::size_t ndeps, JobFn fn,
                        void* ctx);

  /// True once the job has finished (or its slot was recycled, which
  /// implies it finished).
  bool Done(const JobHandle& handle) const;

  /// Blocks until the job finishes, executing other runnable jobs while it
  /// waits (so waiting from inside a job cannot starve the system).
  void Wait(const JobHandle& handle);

  /// Blocks until no submitted job remains unfinished, helping to execute
  /// runnable jobs while it waits.
  void WaitIdle();

  int workers() const { return static_cast<int>(workers_.size()); }

  /// Unfinished jobs (runnable, queued, or executing) at this instant.
  std::size_t InFlight() const;

 private:
  struct Job {
    JobFn fn = nullptr;
    void* ctx = nullptr;
    /// Unsatisfied dependencies + 1 submission guard; the job is enqueued
    /// when this reaches zero.
    std::atomic<std::uint32_t> pending{0};
    /// Bumped at allocation; a handle whose generation disagrees refers to
    /// a finished, recycled job.
    std::atomic<std::uint64_t> generation{0};
    std::atomic<bool> done{false};
    /// Guards the continuation list against a dependent registering while
    /// the job completes. (C++20 default-initializes the flag clear.)
    std::atomic_flag cont_lock;
    std::uint32_t num_continuations = 0;
    std::uint32_t continuations[kMaxContinuations] = {};
    std::uint32_t next_free = UINT32_MAX;
  };

  std::uint32_t Allocate(JobFn fn, void* ctx, std::uint32_t pending);
  void Release(std::uint32_t index);
  /// Makes a zero-pending job runnable: own deque for workers, injection
  /// queue (plus wakeup) otherwise. Synchronous mode executes inline.
  void Enqueue(std::uint32_t index);
  void Execute(std::uint32_t index);
  /// Resolves one runnable job from the injection queue or by stealing.
  bool TryAcquire(std::uint32_t* index, int self);
  bool PopInjected(std::uint32_t* index);
  void WorkerMain(int worker_index);
  void NotifyWork();

  Options options_;
  std::vector<Job> jobs_;
  // unique_ptr because the deque's atomics make it immovable, and vector
  // element construction requires movability.
  std::vector<std::unique_ptr<WorkStealingDeque>> deques_;  // one per worker
  std::vector<std::thread> workers_;

  // Free list of job nodes, spinlock-guarded (allocation is off the
  // per-arrival fast path: one job covers a whole mailbox drain).
  std::atomic_flag free_lock_;
  std::uint32_t free_head_ = UINT32_MAX;

  // Injection ring for jobs enqueued from non-worker threads (and deque
  // overflow). Mutex-guarded; capacity max_jobs so it can never overflow.
  mutable std::mutex inject_mu_;
  std::vector<std::uint32_t> inject_ring_;
  std::size_t inject_head_ = 0;  // pop side
  std::size_t inject_size_ = 0;

  std::atomic<std::int64_t> in_flight_{0};

  // Worker parking. wake_epoch_ is bumped (under park_mu_) on every
  // enqueue, so a worker that re-checks queues, finds nothing, and then
  // waits can never miss work published in between.
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::uint64_t wake_epoch_ = 0;
  int sleepers_ = 0;
  bool stop_ = false;

  // Idle notification for WaitIdle.
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
};

}  // namespace faction

#endif  // FACTION_SERVE_JOB_SYSTEM_H_
