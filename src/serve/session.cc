// FACTION_HOT: Push/Drain/Step run once per served arrival; everything
// outside the FACTION_COLD construction fence must stay allocation-free
// (the learner's own hot path is already audited in streaming_faction.cc).
#include "serve/session.h"

#include <algorithm>

#include "common/check.h"
#include "common/telemetry.h"

namespace faction {

// FACTION_COLD_BEGIN: one-time construction. Every mailbox slot's feature
// vector is pre-sized to the model's input dimension so Push is a pure
// element copy, and the decision log reserves its full capacity up front.
ServeSession::ServeSession(const ServeSessionOptions& options)
    : stream_id_(options.stream_id), faction_(options.faction) {
  FACTION_CHECK(options.mailbox_capacity > 0);
  slots_.resize(options.mailbox_capacity);
  for (Arrival& slot : slots_) {
    slot.example.x.resize(options.faction.model.input_dim, 0.0);
  }
  decisions_.reserve(options.decision_log_capacity);
}
// FACTION_COLD_END

bool ServeSession::Push(const Example& example, double enqueue_seconds) {
  const std::uint64_t push = push_count_.load(std::memory_order_seq_cst);
  const std::uint64_t pop = pop_count_.load(std::memory_order_seq_cst);
  if (push - pop >= slots_.size()) {
    shed_.fetch_add(1, std::memory_order_seq_cst);
    TelemetryCount("serve.arrivals.shed", 1);
    return false;
  }
  Arrival& slot = slots_[static_cast<std::size_t>(push % slots_.size())];
  FACTION_CHECK(example.x.size() == slot.example.x.size());
  std::copy(example.x.begin(), example.x.end(), slot.example.x.begin());
  slot.example.sensitive = example.sensitive;
  slot.example.label = example.label;
  slot.example.environment = example.environment;
  slot.enqueue_seconds = enqueue_seconds;
  // Publishing the count releases the slot writes to the drainer (seq_cst
  // store; the drainer's matching load is seq_cst too).
  push_count_.store(push + 1, std::memory_order_seq_cst);
  return true;
}

void ServeSession::Step(const Arrival& arrival, const Timer* clock) {
  const Result<bool> query = faction_.ShouldQuery(arrival.example);
  FACTION_CHECK(query.ok());
  if (query.value()) {
    const Status fold = faction_.ProvideLabel(arrival.example);
    FACTION_CHECK(fold.ok());
  }
  if (decisions_.capacity() > 0) {
    // reserve() ran in the constructor, so this push_back never
    // reallocates; overflowing the pre-sized log is a setup bug.
    FACTION_CHECK(decisions_.size() < decisions_.capacity());
    decisions_.push_back(query.value() ? 1 : 0);
  }
  if (clock != nullptr && arrival.enqueue_seconds >= 0.0) {
    TelemetryObserve("serve.step.latency_seconds",
                     clock->ElapsedSeconds() - arrival.enqueue_seconds);
  }
}

void ServeSession::Drain(const Timer* clock) {
  std::uint64_t pop = pop_count_.load(std::memory_order_seq_cst);
  // Snapshot the push count once per pass; arrivals landing mid-drain are
  // picked up by the next pass (or by FinishSchedule's re-take).
  std::uint64_t push = push_count_.load(std::memory_order_seq_cst);
  while (pop != push) {
    while (pop != push) {
      Step(slots_[static_cast<std::size_t>(pop % slots_.size())], clock);
      ++pop;
      // Publish per-arrival so the producer regains the slot promptly.
      pop_count_.store(pop, std::memory_order_seq_cst);
    }
    push = push_count_.load(std::memory_order_seq_cst);
  }
}

bool ServeSession::BeginSchedule() {
  int expected = kIdle;
  return sched_.compare_exchange_strong(expected, kScheduled,
                                        std::memory_order_seq_cst,
                                        std::memory_order_seq_cst);
}

bool ServeSession::FinishSchedule() {
  sched_.store(kIdle, std::memory_order_seq_cst);
  // Under seq_cst this re-check closes the race with a producer whose
  // Push landed after our final Drain snapshot but whose BeginSchedule
  // CAS lost to our still-held schedule: either the producer's CAS runs
  // after our store above and wins (it schedules), or it ran before and
  // failed — in which case its push_count_ store is already visible to
  // the load below and we re-take the schedule ourselves.
  if (MailboxEmpty()) return false;
  return BeginSchedule();
}

}  // namespace faction
