// FACTION_HOT: MaybeSnapshot/SnapshotNow run on the drain path (the holder
// flips a snapshot buffer between drains). Serialization, manifest I/O,
// and the cross-shard merge are background-job / warm-start cold paths
// inside FACTION_COLD fences.
#include "serve/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/fsio.h"
#include "common/logging.h"
#include "common/telemetry.h"
#include "serve/job_system.h"
#include "serve/session.h"

namespace faction {

// FACTION_COLD_BEGIN: construction, registration, teardown.
CheckpointManager::CheckpointManager(const CheckpointOptions& options,
                                    JobSystem* jobs)
    : options_(options), jobs_(jobs) {
  FACTION_CHECK(jobs_ != nullptr);
  FACTION_CHECK(!options_.dir.empty());
  options_.keep_generations = std::max<std::size_t>(
      options_.keep_generations, 1);
  if (options_.interval_steps == 0) options_.interval_steps = 1;
}

CheckpointManager::~CheckpointManager() { Flush(); }

CheckpointSlot* CheckpointManager::Attach(ServeSession* session) {
  FACTION_CHECK(session != nullptr);
  std::lock_guard<std::mutex> lock(slots_mu_);
  slots_.push_back(std::make_unique<CheckpointSlot>());
  CheckpointSlot* slot = slots_.back().get();
  slot->session = session;
  slot->buffers[0].manager = this;
  slot->buffers[1].manager = this;
  // De-synchronize the periodic snapshots: same-aged sessions would
  // otherwise all cross the interval boundary together and flood the job
  // system with a burst of serialize jobs (a latency herd on the drain
  // workers). A multiplicative hash of the attach order spreads the
  // first-snapshot phase across the interval; each session keeps its
  // phase afterwards because last_snapshot_steps advances by whole
  // intervals. The first slot keeps offset zero.
  slot->last_snapshot_steps =
      ((slots_.size() - 1) * 2654435761ull) % options_.interval_steps;
  return slot;
}

void CheckpointManager::Flush() { jobs_->WaitIdle(); }

std::string CheckpointManager::ManifestPath() const {
  return options_.dir + "/manifest";
}
// FACTION_COLD_END

bool CheckpointManager::MaybeSnapshot(ServeSession* session) {
  CheckpointSlot* slot = session->checkpoint_slot();
  if (slot == nullptr) return false;
  const std::size_t steps = session->steps();
  if (steps < slot->last_snapshot_steps + options_.interval_steps) {
    return false;
  }
  return SnapshotNow(session);
}

bool CheckpointManager::SnapshotNow(ServeSession* session) {
  CheckpointSlot* slot = session->checkpoint_slot();
  if (slot == nullptr) return false;
  // Double buffer: one may still be in a serializer job's hands while the
  // other captures the next generation. Both busy means the serializer is
  // behind — skip rather than stall the drain path.
  CheckpointBuffer* buffer = nullptr;
  for (CheckpointBuffer& candidate : slot->buffers) {
    if (candidate.status.load(std::memory_order_seq_cst) ==
        CheckpointBuffer::kFree) {
      buffer = &candidate;
      break;
    }
  }
  if (buffer == nullptr) {
    TelemetryCount("serve.checkpoint.skipped_busy", 1);
    return false;
  }
  CaptureSessionState(session->faction(), &buffer->state);
  buffer->state.stream_id = session->stream_id();
  buffer->state.generation = slot->next_generation++;
  buffer->state.steps = session->steps();
  slot->last_snapshot_steps = buffer->state.steps;
  // Publish to the serializer job *before* submitting: the job may start
  // on another worker immediately.
  buffer->status.store(CheckpointBuffer::kQueued, std::memory_order_seq_cst);
  TelemetryCount("serve.checkpoint.captured", 1);
  jobs_->Submit(&CheckpointManager::SerializeJob, buffer);
  return true;
}

// FACTION_COLD_BEGIN: serializer job, manifest I/O, warm-start helpers —
// background cadence, never on the drain path.
void CheckpointManager::SerializeJob(void* ctx) {
  auto* buffer = static_cast<CheckpointBuffer*>(ctx);
  buffer->manager->Serialize(buffer);
}

void CheckpointManager::Serialize(CheckpointBuffer* buffer) {
  const SessionState& state = buffer->state;
  EncodeSessionState(state, &buffer->encoded);
  const std::string filename = "session-" + std::to_string(state.stream_id) +
                               ".gen" + std::to_string(state.generation) +
                               ".ckpt";
  const std::string final_path = options_.dir + "/" + filename;
  const std::string tmp_path = final_path + ".tmp";
  Status status = [&]() -> Status {
    {
      std::ofstream os(tmp_path, std::ios::trunc);
      if (!os.is_open()) {
        return Status::Internal("checkpoint: cannot open " + tmp_path);
      }
      os << buffer->encoded;
      os.flush();
      if (!os.good()) {
        return Status::Internal("checkpoint: write failed for " + tmp_path);
      }
    }
    FACTION_RETURN_IF_ERROR(CommitFileDurable(tmp_path, final_path));
    return CommitManifest(state, filename);
  }();
  if (status.ok()) {
    TelemetryCount("serve.checkpoint.serialized", 1);
    // Rotate: the manifest has durably advanced to `generation`, so the
    // generation that fell out of the retention window is dead weight.
    if (state.generation > options_.keep_generations) {
      const std::uint64_t dead = state.generation - options_.keep_generations;
      const std::string dead_path = options_.dir + "/session-" +
                                    std::to_string(state.stream_id) + ".gen" +
                                    std::to_string(dead) + ".ckpt";
      std::remove(dead_path.c_str());
    }
  } else {
    // Never fatal: the previous durable generation stays valid and the
    // next interval retries with fresh state.
    failures_.fetch_add(1, std::memory_order_seq_cst);
    TelemetryCount("serve.checkpoint.errors", 1);
    FACTION_LOG(kWarning) << "checkpoint serialize failed: "
                          << status.ToString();
  }
  buffer->status.store(CheckpointBuffer::kFree, std::memory_order_seq_cst);
}

Status CheckpointManager::CommitManifest(const SessionState& state,
                                         const std::string& filename) {
  std::lock_guard<std::mutex> lock(manifest_mu_);
  CheckpointManifestEntry& entry = manifest_[state.stream_id];
  // Serializer jobs of one session can complete out of order (buffer A's
  // job may outlive buffer B's); the manifest only ever advances.
  if (entry.generation >= state.generation) return Status::Ok();
  entry.stream_id = state.stream_id;
  entry.generation = state.generation;
  entry.steps = state.steps;
  entry.filename = filename;

  std::ostringstream os;
  os << "faction-manifest v1\n" << "sessions " << manifest_.size() << '\n';
  for (const auto& [id, e] : manifest_) {
    os << id << ' ' << e.generation << ' ' << e.steps << ' ' << e.filename
       << '\n';
  }
  const std::string manifest_path = ManifestPath();
  const std::string tmp_path = manifest_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out.is_open()) {
      return Status::Internal("checkpoint: cannot open " + tmp_path);
    }
    out << os.str();
    out.flush();
    if (!out.good()) {
      return Status::Internal("checkpoint: manifest write failed for " +
                              tmp_path);
    }
  }
  return CommitFileDurable(tmp_path, manifest_path);
}

Result<std::vector<CheckpointManifestEntry>> CheckpointManager::ReadManifest(
    const std::string& path) {
  std::ifstream is(path);
  if (!is.is_open()) {
    return Status::NotFound("ReadManifest: cannot open " + path);
  }
  std::string word1, word2;
  if (!(is >> word1 >> word2) || word1 != "faction-manifest" ||
      word2 != "v1") {
    return Status::InvalidArgument("ReadManifest: bad magic header in " +
                                   path);
  }
  std::size_t count = 0;
  if (!(is >> word1 >> count) || word1 != "sessions") {
    return Status::InvalidArgument("ReadManifest: bad session count in " +
                                   path);
  }
  std::vector<CheckpointManifestEntry> entries(count);
  for (std::size_t i = 0; i < count; ++i) {
    CheckpointManifestEntry& e = entries[i];
    if (!(is >> e.stream_id >> e.generation >> e.steps >> e.filename)) {
      return Status::InvalidArgument("ReadManifest: truncated entry in " +
                                     path);
    }
  }
  return entries;
}

namespace {

/// Context of one parallel shard decode in MergeSufficientStats.
struct ShardDecode {
  const std::string* path = nullptr;
  SessionState state;
  Status status;
};

void DecodeShardJob(void* ctx) {
  auto* shard = static_cast<ShardDecode*>(ctx);
  shard->status = DecodeSessionStateFromFile(*shard->path, &shard->state);
}

}  // namespace

Result<FairDensityEstimator> MergeSufficientStats(
    const std::vector<std::string>& checkpoint_paths,
    const CovarianceConfig& config, JobSystem* jobs) {
  if (checkpoint_paths.empty()) {
    return Status::InvalidArgument("MergeSufficientStats: no shards given");
  }
  std::vector<ShardDecode> shards(checkpoint_paths.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    shards[i].path = &checkpoint_paths[i];
  }
  if (jobs != nullptr && shards.size() > 1) {
    std::vector<JobSystem::JobHandle> handles(shards.size());
    for (std::size_t i = 0; i < shards.size(); ++i) {
      handles[i] = jobs->Submit(&DecodeShardJob, &shards[i]);
    }
    for (const JobSystem::JobHandle& handle : handles) jobs->Wait(handle);
  } else {
    for (ShardDecode& shard : shards) DecodeShardJob(&shard);
  }
  for (const ShardDecode& shard : shards) {
    FACTION_RETURN_IF_ERROR(shard.status);
  }
  // Fold in path order: MergeFrom is additive, so the result is
  // independent of the order up to floating-point association, but a fixed
  // order keeps repeated merges bitwise reproducible.
  std::optional<FairDensityEstimator> merged;
  std::optional<FairDensityEstimator> shard_density;
  for (const ShardDecode& shard : shards) {
    if (!shard.state.density.has_value) continue;
    FACTION_RETURN_IF_ERROR(
        RestoreDensity(shard.state.density, config, &shard_density));
    if (!merged.has_value()) {
      merged = std::move(shard_density);
    } else {
      FACTION_RETURN_IF_ERROR(merged->MergeFrom(*shard_density, config));
    }
  }
  if (!merged.has_value()) {
    return Status::FailedPrecondition(
        "MergeSufficientStats: no shard carries a density estimator");
  }
  return std::move(*merged);
}
// FACTION_COLD_END

}  // namespace faction
