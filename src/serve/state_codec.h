#ifndef FACTION_SERVE_STATE_CODEC_H_
#define FACTION_SERVE_STATE_CODEC_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <istream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "baselines/bandit_strategy.h"
#include "baselines/disentangled_strategy.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/streaming_faction.h"
#include "density/fair_density.h"
#include "stream/drift.h"
#include "tensor/matrix.h"

// Full-session state codec (DESIGN.md §17): captures the COMPLETE state of
// a StreamingFaction — model parameters, per-layer spectral-normalization
// state, labeled pool, eviction ring, per-(class, sensitive) Gaussian
// sufficient statistics, incremental normalizer, RNG position, and every
// counter — into a plain-data SessionState, and restores it such that the
// restored learner's future outputs are bitwise identical to the
// uninterrupted one's. The text encoding extends the hexfloat serializer
// idiom of nn/serialize.cc (format "faction-session v1"): every double
// round-trips bit-for-bit, and decode errors name the source and byte
// offset.
//
// Split of responsibilities:
//   * CaptureSessionState is the hot half — called by the drain holder
//     between drains; allocation-free once the destination buffers are
//     warm (copy assignments reuse capacity).
//   * Encode/Decode/Restore are the cold half — they run on background
//     serializer jobs or during warm-start and may allocate freely.

namespace faction {

/// Snapshot of one fitted Gaussian component: cached factorization plus
/// the additive sufficient statistics the cross-shard merge folds.
struct GaussianSnapshot {
  std::size_t count = 0;
  double weight = 0.0;
  double ridge = 0.0;
  double log_det = 0.0;
  bool forgetting = false;
  std::vector<double> mean;
  std::vector<double> sum;
  Matrix chol;
  Matrix scatter;
};

/// Snapshot of the (class x sensitive) mixture. Mixture weights are stored
/// verbatim (not recomputed on restore) so the restored estimator is
/// bitwise identical, including log_weights_ entries that are -infinity
/// for zero-mass cells.
struct DensitySnapshot {
  static constexpr int kCells =
      FairDensityEstimator::kNumClasses * FairDensityEstimator::kNumGroups;
  bool has_value = false;
  std::size_t dim = 0;
  bool forgetting = false;
  std::size_t total = 0;
  double wtotal = 0.0;
  std::array<bool, kCells> present = {};
  std::array<std::size_t, kCells> counts = {};
  std::array<double, kCells> wcounts = {};
  std::array<double, kCells> weights = {};
  std::array<double, kCells> log_weights = {};
  std::array<GaussianSnapshot, kCells> components;
};

/// Per-Linear persistent spectral-normalization state: the effective
/// weight used by inference is W * scale, and each training forward draws
/// from sn_rng, so restore-time parity needs all of it exact.
struct LinearSnapshot {
  double scale = 1.0;
  double sigma = 0.0;
  double sn_sigma = 0.0;
  std::vector<double> sn_u;
  std::vector<double> sn_v;
  Rng::State sn_rng;
};

/// The complete serializable state of one serving session. Plain data: the
/// checkpoint manager double-buffers SessionState instances and hands them
/// to background serializer jobs.
struct SessionState {
  // Stamped by the checkpoint layer, not by Capture.
  std::uint64_t stream_id = 0;
  std::uint64_t generation = 0;
  std::uint64_t steps = 0;

  StreamingFactionConfig config;
  Rng::State rng;
  /// Model parameters, layer order: hidden[0].W, hidden[0].b, ...,
  /// head.W, head.b.
  std::vector<Matrix> params;
  /// One entry per Linear, same order as the parameter pairs.
  std::vector<LinearSnapshot> layers;

  std::size_t pool_size = 0;
  Matrix pool_features;
  std::vector<int> pool_labels;
  std::vector<int> pool_sensitive;
  std::vector<int> pool_environments;

  /// Eviction ring, canonicalized oldest-first (restore rebuilds with
  /// ring_start = 0; slot layout is not observable, so this is bitwise
  /// safe).
  std::size_t ring_size = 0;
  Matrix ring_z;
  std::vector<int> ring_label;
  std::vector<int> ring_sensitive;
  std::vector<double> ring_weight;

  DensitySnapshot density;

  std::size_t norm_count = 0;
  double norm_min = 0.0;
  double norm_max = 0.0;

  std::size_t seen = 0;
  std::size_t queried = 0;
  std::size_t labels_since_refit = 0;
  bool trained_once = false;
};

/// Captures the learner's full state into *out. Hot-path legal: once the
/// destination's buffers are warm (same shapes as the previous capture)
/// the call performs no heap allocation. Does not stamp
/// stream_id/generation/steps.
void CaptureSessionState(const StreamingFaction& faction, SessionState* out);

/// Restores a captured state into a learner constructed from the SAME
/// configuration (`StreamingFaction(state.config)`). After a successful
/// restore the learner's future ShouldQuery/ProvideLabel outputs are
/// bitwise identical to the captured learner's. Pre-sizes all steady-state
/// scratch (Gaussian factor buffers, pool spare rows, workspace arena) so
/// the first post-restore arrival is as allocation-free as any other.
Status RestoreSessionState(const SessionState& state,
                           StreamingFaction* faction);

/// Serializes a SessionState to the "faction-session v1" text format
/// (hexfloat payload). Overwrites *out.
void EncodeSessionState(const SessionState& state, std::string* out);

/// Parses a "faction-session v1" stream. `source` names the stream in
/// error messages (path or a logical label); every failure reports the
/// byte offset where parsing stopped.
Status DecodeSessionState(std::istream& is, const std::string& source,
                          SessionState* out);

/// Convenience file reader: NotFound when the path cannot be opened,
/// decode errors carry the path and byte offset.
Status DecodeSessionStateFromFile(const std::string& path,
                                  SessionState* out);

/// Rebuilds a FairDensityEstimator from a snapshot (reset when the
/// snapshot is empty). Shared by session restore and the cross-shard
/// merge; `config` is validated against the snapshot's forgetting mode.
Status RestoreDensity(const DensitySnapshot& snapshot,
                      const CovarianceConfig& config,
                      std::optional<FairDensityEstimator>* out);

// --- Standalone pipeline state -------------------------------------------
//
// The drift detector and the bandit/disentangled acquisition strategies
// live outside StreamingFaction (the task-stream pipelines own them), so
// they checkpoint through their own sections with the same capture /
// restore / encode / decode shape.

/// Drift detector running statistics + re-arm state (configs are owned by
/// the caller and not serialized).
struct DriftDetectorState {
  std::size_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;
  std::size_t cooldown_remaining = 0;
};

void CaptureDriftDetectorState(const DriftDetector& detector,
                               DriftDetectorState* out);
void RestoreDriftDetectorState(const DriftDetectorState& state,
                               DriftDetector* detector);
void EncodeDriftDetectorState(const DriftDetectorState& state,
                              std::string* out);
Status DecodeDriftDetectorState(std::istream& is, const std::string& source,
                                DriftDetectorState* out);

/// Discounted UCB arm statistics of the bandit strategy.
struct BanditState {
  std::array<double, 2> pulls = {0.0, 0.0};
  std::array<double, 2> reward_sum = {0.0, 0.0};
};

void CaptureBanditState(const BanditStrategy& strategy, BanditState* out);
void RestoreBanditState(const BanditState& state, BanditStrategy* strategy);
void EncodeBanditState(const BanditState& state, std::string* out);
Status DecodeBanditState(std::istream& is, const std::string& source,
                         BanditState* out);

/// Disentangled probe weights: the shared global component plus every
/// per-environment delta.
struct DisentangledState {
  std::vector<double> global;
  std::map<int, std::vector<double>> deltas;
};

void CaptureDisentangledState(const DisentangledStrategy& strategy,
                              DisentangledState* out);
void RestoreDisentangledState(const DisentangledState& state,
                              DisentangledStrategy* strategy);
void EncodeDisentangledState(const DisentangledState& state,
                             std::string* out);
Status DecodeDisentangledState(std::istream& is, const std::string& source,
                               DisentangledState* out);

}  // namespace faction

#endif  // FACTION_SERVE_STATE_CODEC_H_
