#include "fairness/relaxed.h"

#include <cmath>

#include "common/check.h"

namespace faction {

namespace {

constexpr double kMinGroupMass = 1e-9;

}  // namespace

Status RelaxedFairnessCoefficientsInto(FairnessNotion notion,
                                       const std::vector<int>& sensitive,
                                       const std::vector<int>& labels,
                                       std::size_t* m_out,
                                       std::vector<double>* coeffs) {
  FACTION_CHECK(coeffs != nullptr);
  const std::size_t n = sensitive.size();
  if (n == 0) {
    return Status::InvalidArgument("relaxed fairness: empty input");
  }
  if (notion == FairnessNotion::kDeo && labels.size() != n) {
    return Status::InvalidArgument(
        "relaxed fairness (DEO): labels required and must match size");
  }

  // Which samples contribute (all for DDP, positive-label for DEO), and
  // the empirical p_hat_1 over them.
  const bool deo = notion == FairnessNotion::kDeo;
  std::size_t m = 0;
  std::size_t group_pos = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (deo && labels[i] != 1) continue;
    ++m;
    if (sensitive[i] == 1) ++group_pos;
  }
  if (m == 0) {
    return Status::FailedPrecondition(
        "relaxed fairness: no contributing samples");
  }
  const double p1 = static_cast<double>(group_pos) / static_cast<double>(m);
  const double mass = p1 * (1.0 - p1);
  if (mass < kMinGroupMass) {
    return Status::FailedPrecondition(
        "relaxed fairness: a sensitive group is (nearly) empty, p1=" +
        std::to_string(p1));
  }

  coeffs->assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (deo && labels[i] != 1) continue;
    const double indicator = sensitive[i] == 1 ? 1.0 : 0.0;
    (*coeffs)[i] = (indicator - p1) / mass;
  }
  if (m_out != nullptr) *m_out = m;
  return Status::Ok();
}

Result<std::vector<double>> RelaxedFairnessCoefficients(
    FairnessNotion notion, const std::vector<int>& sensitive,
    const std::vector<int>& labels, std::size_t* m_out) {
  std::vector<double> coeffs;
  FACTION_RETURN_IF_ERROR(RelaxedFairnessCoefficientsInto(
      notion, sensitive, labels, m_out, &coeffs));
  return coeffs;
}

Result<double> RelaxedFairness(FairnessNotion notion,
                               const std::vector<double>& scores,
                               const std::vector<int>& sensitive,
                               const std::vector<int>& labels) {
  if (scores.size() != sensitive.size()) {
    return Status::InvalidArgument("relaxed fairness: size mismatch");
  }
  std::size_t m = 0;
  FACTION_ASSIGN_OR_RETURN(
      std::vector<double> coeffs,
      RelaxedFairnessCoefficients(notion, sensitive, labels, &m));
  double acc = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    acc += coeffs[i] * scores[i];
  }
  FACTION_DCHECK_FINITE(acc);
  return acc / static_cast<double>(m);
}

}  // namespace faction
