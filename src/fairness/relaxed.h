#ifndef FACTION_FAIRNESS_RELAXED_H_
#define FACTION_FAIRNESS_RELAXED_H_

#include <vector>

#include "common/status.h"

namespace faction {

/// Which linear relaxation of Definition 1 to instantiate.
///   kDdp: p_hat_1 = P(s=+1), averaged over all samples (difference of
///         demographic parity).
///   kDeo: p_hat_1 = P(y=1, s=+1), averaged over positive-label samples
///         (difference of equality of opportunity).
enum class FairnessNotion { kDdp, kDeo };

/// The linear approximated fairness notion of Eq. 1 (Lohaus et al.):
///
///   v(D, theta) = E[ 1/(p1(1-p1)) * ((s+1)/2 - p1) * h(x, theta) ]
///
/// where h(x, theta) is the real-valued classifier score for the positive
/// class. v is linear in the scores, hence convex and differentiable — it is
/// the quantity FACTION regularizes in the loss (Eq. 8-9).
///
/// `scores` is the per-sample score h (in this library: the model's softmax
/// probability of class 1). For kDeo, `labels` must be provided and only
/// samples with y=1 contribute. Returns an error when a required group is
/// empty (p1 degenerate).
Result<double> RelaxedFairness(FairnessNotion notion,
                               const std::vector<double>& scores,
                               const std::vector<int>& sensitive,
                               const std::vector<int>& labels);

/// Per-sample coefficients c_i such that v = (1/M) * sum_i c_i * h_i, where
/// M is the number of contributing samples (all samples for kDdp, positive
/// samples for kDeo). Non-contributing samples receive coefficient 0.
///
/// dv/dh_i = c_i / M, so callers can backpropagate v through the score head
/// without recomputing group statistics. `m_out` receives M.
Result<std::vector<double>> RelaxedFairnessCoefficients(
    FairnessNotion notion, const std::vector<int>& sensitive,
    const std::vector<int>& labels, std::size_t* m_out);

/// Allocation-aware variant: identical numerics and error conditions, but
/// the coefficients are assign()-ed into *coeffs so a caller-owned buffer
/// is reused across batches (zero allocation once its capacity is warm).
Status RelaxedFairnessCoefficientsInto(FairnessNotion notion,
                                       const std::vector<int>& sensitive,
                                       const std::vector<int>& labels,
                                       std::size_t* m_out,
                                       std::vector<double>* coeffs);

}  // namespace faction

#endif  // FACTION_FAIRNESS_RELAXED_H_
