#ifndef FACTION_FAIRNESS_INDIVIDUAL_H_
#define FACTION_FAIRNESS_INDIVIDUAL_H_

#include <vector>

#include "common/status.h"
#include "tensor/matrix.h"

namespace faction {

/// Individual-fairness extension sketched in the paper's Sec. IV-H: "with
/// an appropriate similarity metric, FACTION could enforce individual
/// fairness by penalizing inconsistent treatment of similar samples."
///
/// This module implements that extension as a Lipschitz-style consistency
/// penalty over a batch:
///
///   L_ind = (1 / |P|) * sum_{(i,j) in P} w_ij * (h_i - h_j)^2
///
/// where h is the positive-class probability, w_ij =
/// exp(-||x_i - x_j||^2 / (2 sigma^2)) is an RBF similarity on the raw
/// inputs, and P is the set of pairs with w_ij above a cutoff (distant
/// pairs contribute nothing and are skipped for cost).
struct IndividualFairnessConfig {
  /// Weight of the penalty in the total loss.
  double weight = 0.5;
  /// RBF bandwidth sigma of the similarity metric.
  double bandwidth = 1.0;
  /// Pairs with similarity below this are ignored.
  double similarity_cutoff = 0.05;
  /// Cap on the number of (randomly ordered, deterministic) pairs scored
  /// per batch, bounding the O(n^2) cost on large batches.
  std::size_t max_pairs = 4096;
};

/// Evaluates the individual-fairness penalty on a batch and accumulates
/// its gradient into *dlogits (which must hold the upstream gradient with
/// matching shape). `inputs` are the raw features used by the similarity
/// metric; `logits` the binary-classification logits. Returns the penalty
/// value added to the loss (0 when no pair passes the cutoff).
Result<double> AddIndividualFairnessPenalty(
    const Matrix& inputs, const Matrix& logits,
    const IndividualFairnessConfig& config, Matrix* dlogits);

/// The penalty value alone (no gradient): used for evaluation and tests.
Result<double> IndividualFairnessPenalty(
    const Matrix& inputs, const Matrix& logits,
    const IndividualFairnessConfig& config);

}  // namespace faction

#endif  // FACTION_FAIRNESS_INDIVIDUAL_H_
