#include "fairness/individual.h"

#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace faction {

namespace {

struct PairTerm {
  std::size_t i;
  std::size_t j;
  double similarity;
};

Result<std::vector<PairTerm>> CollectPairs(
    const Matrix& inputs, const IndividualFairnessConfig& config) {
  const std::size_t n = inputs.rows();
  std::vector<PairTerm> pairs;
  const double denom = 2.0 * config.bandwidth * config.bandwidth;
  if (denom <= 0.0) {
    return Status::InvalidArgument(
        "individual fairness: bandwidth must be positive");
  }
  for (std::size_t i = 0; i < n && pairs.size() < config.max_pairs; ++i) {
    for (std::size_t j = i + 1; j < n && pairs.size() < config.max_pairs;
         ++j) {
      double dist2 = 0.0;
      const double* a = inputs.row_data(i);
      const double* b = inputs.row_data(j);
      for (std::size_t k = 0; k < inputs.cols(); ++k) {
        const double d = a[k] - b[k];
        dist2 += d * d;
      }
      const double sim = std::exp(-dist2 / denom);
      if (sim >= config.similarity_cutoff) {
        pairs.push_back({i, j, sim});
      }
    }
  }
  return pairs;
}

}  // namespace

Result<double> AddIndividualFairnessPenalty(
    const Matrix& inputs, const Matrix& logits,
    const IndividualFairnessConfig& config, Matrix* dlogits) {
  FACTION_CHECK(dlogits != nullptr);
  if (logits.cols() != 2) {
    return Status::InvalidArgument(
        "individual fairness: binary classification required");
  }
  if (inputs.rows() != logits.rows()) {
    return Status::InvalidArgument("individual fairness: row mismatch");
  }
  if (dlogits->rows() != logits.rows() ||
      dlogits->cols() != logits.cols()) {
    return Status::InvalidArgument(
        "individual fairness: dlogits shape mismatch");
  }
  FACTION_ASSIGN_OR_RETURN(std::vector<PairTerm> pairs,
                           CollectPairs(inputs, config));
  if (pairs.empty()) return 0.0;

  const Matrix proba = SoftmaxRows(logits);
  double penalty = 0.0;
  const double scale =
      config.weight / static_cast<double>(pairs.size());
  for (const PairTerm& pair : pairs) {
    const double hi = proba(pair.i, 1);
    const double hj = proba(pair.j, 1);
    const double gap = hi - hj;
    penalty += pair.similarity * gap * gap;
    // d/dh_i = 2 w gap; chain through the softmax:
    // dh/dlogit_0 = -h(1-h) is wrong sign-wise; dh/dlogit_1 = h(1-h),
    // dh/dlogit_0 = -h*p0 with p0 = 1-h, i.e. -h(1-h).
    const double base = 2.0 * scale * pair.similarity * gap;
    const double di = base * hi * (1.0 - hi);
    const double dj = -base * hj * (1.0 - hj);
    (*dlogits)(pair.i, 1) += di;
    (*dlogits)(pair.i, 0) -= di;
    (*dlogits)(pair.j, 1) += dj;
    (*dlogits)(pair.j, 0) -= dj;
  }
  FACTION_DCHECK_FINITE(penalty);
  return config.weight * penalty / static_cast<double>(pairs.size());
}

Result<double> IndividualFairnessPenalty(
    const Matrix& inputs, const Matrix& logits,
    const IndividualFairnessConfig& config) {
  Matrix scratch(logits.rows(), logits.cols(), 0.0);
  return AddIndividualFairnessPenalty(inputs, logits, config, &scratch);
}

}  // namespace faction
