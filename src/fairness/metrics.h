#ifndef FACTION_FAIRNESS_METRICS_H_
#define FACTION_FAIRNESS_METRICS_H_

#include <vector>

#include "common/status.h"

namespace faction {

/// Group-fairness evaluation metrics from Sec. V-A of the paper. All three
/// compare binary predictions yhat against the binary sensitive attribute s
/// (and, for EOD, the ground-truth label y). Lower absolute value is better.

/// Difference of Demographic Parity:
///   DDP = | P(yhat=1 | s=+1) - P(yhat=1 | s=-1) |.
/// Groups with no members contribute rate 0 (and the result is flagged by
/// returning an error when either group is empty, since the metric is then
/// undefined).
Result<double> DemographicParityDifference(const std::vector<int>& yhat,
                                           const std::vector<int>& sensitive);

/// Equalized Odds Difference: the maximum over y in {0,1} of the cross-group
/// gap in P(yhat=1 | y, s), i.e. max(TPR gap, FPR gap) (Hardt et al.).
/// Conditioning cells with no members are skipped; an error is returned when
/// no cell is comparable.
Result<double> EqualizedOddsDifference(const std::vector<int>& yhat,
                                       const std::vector<int>& labels,
                                       const std::vector<int>& sensitive);

/// Mutual information I(yhat; s) in nats between the prediction and the
/// sensitive attribute, estimated from empirical counts. Zero iff the
/// empirical joint factorizes.
Result<double> MutualInformation(const std::vector<int>& yhat,
                                 const std::vector<int>& sensitive);

/// Classification accuracy = mean(yhat == y).
Result<double> Accuracy(const std::vector<int>& yhat,
                        const std::vector<int>& labels);

/// Group-wise calibration gap (the fair online learning literature's
/// calibration notion): bin the positive-class scores into `bins` equal
/// intervals and take the maximum, over bins populated by both sensitive
/// groups, of | P(y=1 | bin, s=+1) - P(y=1 | bin, s=-1) |. Zero means the
/// score is equally calibrated for both groups. Returns an error when no
/// bin is comparable.
Result<double> GroupCalibrationGap(const std::vector<double>& scores,
                                   const std::vector<int>& labels,
                                   const std::vector<int>& sensitive,
                                   std::size_t bins = 10);

}  // namespace faction

#endif  // FACTION_FAIRNESS_METRICS_H_
