#include "fairness/metrics.h"

#include <array>
#include <cmath>

namespace faction {

namespace {

Status CheckSizes(std::size_t a, std::size_t b, const char* what) {
  if (a != b) {
    return Status::InvalidArgument(std::string(what) +
                                   " size mismatch: " + std::to_string(a) +
                                   " vs " + std::to_string(b));
  }
  if (a == 0) {
    return Status::InvalidArgument(std::string(what) + ": empty input");
  }
  return Status::Ok();
}

}  // namespace

Result<double> DemographicParityDifference(const std::vector<int>& yhat,
                                           const std::vector<int>& sensitive) {
  FACTION_RETURN_IF_ERROR(CheckSizes(yhat.size(), sensitive.size(), "DDP"));
  std::size_t n_pos = 0, n_neg = 0, hit_pos = 0, hit_neg = 0;
  for (std::size_t i = 0; i < yhat.size(); ++i) {
    if (sensitive[i] == 1) {
      ++n_pos;
      if (yhat[i] == 1) ++hit_pos;
    } else {
      ++n_neg;
      if (yhat[i] == 1) ++hit_neg;
    }
  }
  if (n_pos == 0 || n_neg == 0) {
    return Status::FailedPrecondition(
        "DDP undefined: a sensitive group is empty");
  }
  const double rate_pos =
      static_cast<double>(hit_pos) / static_cast<double>(n_pos);
  const double rate_neg =
      static_cast<double>(hit_neg) / static_cast<double>(n_neg);
  return std::fabs(rate_pos - rate_neg);
}

Result<double> EqualizedOddsDifference(const std::vector<int>& yhat,
                                       const std::vector<int>& labels,
                                       const std::vector<int>& sensitive) {
  FACTION_RETURN_IF_ERROR(CheckSizes(yhat.size(), labels.size(), "EOD"));
  FACTION_RETURN_IF_ERROR(CheckSizes(yhat.size(), sensitive.size(), "EOD"));
  double worst = -1.0;
  for (int y : {0, 1}) {
    std::size_t n_pos = 0, n_neg = 0, hit_pos = 0, hit_neg = 0;
    for (std::size_t i = 0; i < yhat.size(); ++i) {
      if (labels[i] != y) continue;
      if (sensitive[i] == 1) {
        ++n_pos;
        if (yhat[i] == 1) ++hit_pos;
      } else {
        ++n_neg;
        if (yhat[i] == 1) ++hit_neg;
      }
    }
    if (n_pos == 0 || n_neg == 0) continue;  // cell not comparable
    const double gap =
        std::fabs(static_cast<double>(hit_pos) / static_cast<double>(n_pos) -
                  static_cast<double>(hit_neg) / static_cast<double>(n_neg));
    if (gap > worst) worst = gap;
  }
  if (worst < 0.0) {
    return Status::FailedPrecondition(
        "EOD undefined: no label cell contains both sensitive groups");
  }
  return worst;
}

Result<double> MutualInformation(const std::vector<int>& yhat,
                                 const std::vector<int>& sensitive) {
  FACTION_RETURN_IF_ERROR(CheckSizes(yhat.size(), sensitive.size(), "MI"));
  // Joint counts over (yhat in {0,1}) x (s in {-1,+1}).
  double joint[2][2] = {{0, 0}, {0, 0}};
  const double n = static_cast<double>(yhat.size());
  for (std::size_t i = 0; i < yhat.size(); ++i) {
    const int a = yhat[i] == 1 ? 1 : 0;
    const int b = sensitive[i] == 1 ? 1 : 0;
    joint[a][b] += 1.0;
  }
  double p_yhat[2] = {0, 0};
  double p_s[2] = {0, 0};
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      joint[a][b] /= n;
      p_yhat[a] += joint[a][b];
      p_s[b] += joint[a][b];
    }
  }
  double mi = 0.0;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      if (joint[a][b] <= 0.0) continue;
      mi += joint[a][b] * std::log(joint[a][b] / (p_yhat[a] * p_s[b]));
    }
  }
  // Clamp tiny negative values caused by floating-point rounding.
  return mi < 0.0 ? 0.0 : mi;
}

Result<double> GroupCalibrationGap(const std::vector<double>& scores,
                                   const std::vector<int>& labels,
                                   const std::vector<int>& sensitive,
                                   std::size_t bins) {
  FACTION_RETURN_IF_ERROR(
      CheckSizes(scores.size(), labels.size(), "calibration"));
  FACTION_RETURN_IF_ERROR(
      CheckSizes(scores.size(), sensitive.size(), "calibration"));
  if (bins == 0) {
    return Status::InvalidArgument("calibration: bins must be positive");
  }
  // counts[b][g], positives[b][g] with g = 0 for s=-1 and 1 for s=+1.
  std::vector<std::array<double, 2>> counts(bins, {0.0, 0.0});
  std::vector<std::array<double, 2>> positives(bins, {0.0, 0.0});
  for (std::size_t i = 0; i < scores.size(); ++i) {
    double s = scores[i];
    if (s < 0.0) s = 0.0;
    if (s > 1.0) s = 1.0;
    std::size_t b = static_cast<std::size_t>(s * static_cast<double>(bins));
    if (b == bins) b = bins - 1;
    const int g = sensitive[i] == 1 ? 1 : 0;
    counts[b][g] += 1.0;
    if (labels[i] == 1) positives[b][g] += 1.0;
  }
  double worst = -1.0;
  for (std::size_t b = 0; b < bins; ++b) {
    if (counts[b][0] == 0.0 || counts[b][1] == 0.0) continue;
    const double gap = std::fabs(positives[b][1] / counts[b][1] -
                                 positives[b][0] / counts[b][0]);
    if (gap > worst) worst = gap;
  }
  if (worst < 0.0) {
    return Status::FailedPrecondition(
        "calibration: no bin contains both sensitive groups");
  }
  return worst;
}

Result<double> Accuracy(const std::vector<int>& yhat,
                        const std::vector<int>& labels) {
  FACTION_RETURN_IF_ERROR(CheckSizes(yhat.size(), labels.size(), "accuracy"));
  std::size_t hits = 0;
  for (std::size_t i = 0; i < yhat.size(); ++i) {
    if (yhat[i] == labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(yhat.size());
}

}  // namespace faction
