#ifndef FACTION_CLUSTER_KMEANS_H_
#define FACTION_CLUSTER_KMEANS_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "tensor/matrix.h"

namespace faction {

/// Configuration for (fair) k-means clustering.
struct KMeansConfig {
  std::size_t k = 4;
  int max_iterations = 50;
  /// Relative center-movement threshold for convergence.
  double tolerance = 1e-4;
};

/// Result of a clustering run.
struct Clustering {
  Matrix centroids;                     ///< k x d
  std::vector<std::size_t> assignment;  ///< cluster id per point
  std::vector<std::size_t> sizes;       ///< points per cluster
  double inertia = 0.0;                 ///< sum of squared distances
  int iterations = 0;
};

/// Lloyd's k-means with k-means++ seeding. Fails when there are no points
/// or k == 0; when k exceeds the number of points, k is reduced to it.
Result<Clustering> KMeans(const Matrix& points, const KMeansConfig& config,
                          Rng* rng);

/// Fairness-aware k-means used by the FAL-CUR baseline: standard Lloyd
/// updates followed by a balance-repair step that moves points of the
/// over-represented sensitive group from unbalanced clusters to their
/// second-nearest centroid until each cluster's group ratio is within
/// `balance_slack` of the global ratio (or no admissible move remains).
Result<Clustering> FairKMeans(const Matrix& points,
                              const std::vector<int>& sensitive,
                              const KMeansConfig& config,
                              double balance_slack, Rng* rng);

/// Share of points with s == +1 per cluster; clusters with no members get
/// the global ratio.
std::vector<double> ClusterGroupRatios(const Clustering& clustering,
                                       const std::vector<int>& sensitive);

}  // namespace faction

#endif  // FACTION_CLUSTER_KMEANS_H_
