#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/ops.h"

namespace faction {

namespace {

double RowDistance2(const Matrix& points, std::size_t row,
                    const Matrix& centroids, std::size_t c) {
  const double* p = points.row_data(row);
  const double* q = centroids.row_data(c);
  double acc = 0.0;
  for (std::size_t j = 0; j < points.cols(); ++j) {
    const double d = p[j] - q[j];
    acc += d * d;
  }
  return acc;
}

// k-means++ seeding: first center uniform, later centers proportional to
// squared distance from the nearest existing center.
Matrix SeedPlusPlus(const Matrix& points, std::size_t k, Rng* rng) {
  const std::size_t n = points.rows();
  Matrix centroids(k, points.cols());
  std::vector<double> d2(n, std::numeric_limits<double>::max());
  std::size_t first = static_cast<std::size_t>(rng->UniformInt(n));
  centroids.SetRow(0, points.Row(first));
  for (std::size_t c = 1; c < k; ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      d2[i] = std::min(d2[i], RowDistance2(points, i, centroids, c - 1));
    }
    const std::size_t next = rng->Categorical(d2);
    centroids.SetRow(c, points.Row(next));
  }
  return centroids;
}

// One Lloyd assignment + update sweep; returns squared center movement.
double LloydSweep(const Matrix& points, Clustering* state) {
  const std::size_t n = points.rows();
  const std::size_t k = state->centroids.rows();
  const std::size_t d = points.cols();
  state->assignment.resize(n);
  state->inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::max();
    std::size_t arg = 0;
    for (std::size_t c = 0; c < k; ++c) {
      const double dist = RowDistance2(points, i, state->centroids, c);
      if (dist < best) {
        best = dist;
        arg = c;
      }
    }
    state->assignment[i] = arg;
    state->inertia += best;
  }
  Matrix fresh(k, d);
  state->sizes.assign(k, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = state->assignment[i];
    ++state->sizes[c];
    const double* p = points.row_data(i);
    double* q = fresh.row_data(c);
    for (std::size_t j = 0; j < d; ++j) q[j] += p[j];
  }
  double movement = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    if (state->sizes[c] == 0) {
      // Keep empty clusters where they are; repair happens via seeding in
      // later sweeps if points migrate.
      fresh.SetRow(c, state->centroids.Row(c));
      continue;
    }
    double* q = fresh.row_data(c);
    for (std::size_t j = 0; j < d; ++j) {
      q[j] /= static_cast<double>(state->sizes[c]);
      const double delta = q[j] - state->centroids(c, j);
      movement += delta * delta;
    }
  }
  state->centroids = std::move(fresh);
  return movement;
}

}  // namespace

Result<Clustering> KMeans(const Matrix& points, const KMeansConfig& config,
                          Rng* rng) {
  if (points.rows() == 0) {
    return Status::InvalidArgument("KMeans: no points");
  }
  if (config.k == 0) {
    return Status::InvalidArgument("KMeans: k must be positive");
  }
  const std::size_t k = std::min(config.k, points.rows());
  Clustering state;
  state.centroids = SeedPlusPlus(points, k, rng);
  for (int it = 0; it < config.max_iterations; ++it) {
    const double movement = LloydSweep(points, &state);
    state.iterations = it + 1;
    if (movement < config.tolerance * config.tolerance) break;
  }
  return state;
}

std::vector<double> ClusterGroupRatios(const Clustering& clustering,
                                       const std::vector<int>& sensitive) {
  const std::size_t k = clustering.centroids.rows();
  std::vector<double> pos(k, 0.0), total(k, 0.0);
  double global_pos = 0.0;
  for (std::size_t i = 0; i < clustering.assignment.size(); ++i) {
    const std::size_t c = clustering.assignment[i];
    total[c] += 1.0;
    if (sensitive[i] == 1) {
      pos[c] += 1.0;
      global_pos += 1.0;
    }
  }
  const double global_ratio =
      clustering.assignment.empty()
          ? 0.5
          : global_pos / static_cast<double>(clustering.assignment.size());
  std::vector<double> ratios(k, global_ratio);
  for (std::size_t c = 0; c < k; ++c) {
    if (total[c] > 0.0) ratios[c] = pos[c] / total[c];
  }
  return ratios;
}

Result<Clustering> FairKMeans(const Matrix& points,
                              const std::vector<int>& sensitive,
                              const KMeansConfig& config,
                              double balance_slack, Rng* rng) {
  if (sensitive.size() != points.rows()) {
    return Status::InvalidArgument("FairKMeans: sensitive size mismatch");
  }
  FACTION_ASSIGN_OR_RETURN(Clustering state, KMeans(points, config, rng));
  const std::size_t k = state.centroids.rows();
  const std::size_t n = points.rows();
  double global_pos = 0.0;
  for (int s : sensitive) global_pos += s == 1 ? 1.0 : 0.0;
  const double global_ratio = n > 0 ? global_pos / static_cast<double>(n) : 0.5;

  // Balance repair: move members of the over-represented group in the most
  // unbalanced cluster to their second-nearest centroid. Bounded sweeps
  // keep this O(n * k) per sweep.
  const int max_moves = static_cast<int>(n);
  for (int move = 0; move < max_moves; ++move) {
    const std::vector<double> ratios = ClusterGroupRatios(state, sensitive);
    // Find the cluster with the largest imbalance beyond the slack.
    std::size_t worst = k;
    double worst_gap = balance_slack;
    for (std::size_t c = 0; c < k; ++c) {
      if (state.sizes[c] < 2) continue;
      const double gap = std::fabs(ratios[c] - global_ratio);
      if (gap > worst_gap) {
        worst_gap = gap;
        worst = c;
      }
    }
    if (worst == k) break;  // all clusters within slack
    const int over_group = ratios[worst] > global_ratio ? 1 : -1;
    // Cheapest admissible move: the over-group member of `worst` whose
    // second-nearest centroid is closest.
    double best_cost = std::numeric_limits<double>::max();
    std::size_t best_point = n;
    std::size_t best_target = k;
    for (std::size_t i = 0; i < n; ++i) {
      if (state.assignment[i] != worst || sensitive[i] != over_group) {
        continue;
      }
      for (std::size_t c = 0; c < k; ++c) {
        if (c == worst) continue;
        const double cost = RowDistance2(points, i, state.centroids, c);
        if (cost < best_cost) {
          best_cost = cost;
          best_point = i;
          best_target = c;
        }
      }
    }
    if (best_point == n) break;  // no admissible move
    state.assignment[best_point] = best_target;
    --state.sizes[worst];
    ++state.sizes[best_target];
  }
  return state;
}

}  // namespace faction
