#include "data/synthetic.h"

#include <cmath>
#include <string>

namespace faction {

Example SampleFromEnvironment(const EnvironmentSpec& env, int env_id,
                              Rng* rng) {
  const std::size_t d = env.class0_mean.size();
  Example e;
  e.environment = env_id;
  e.label = rng->Bernoulli(env.positive_fraction) ? 1 : 0;
  const double p_pos =
      (e.label == 1 ? env.bias : 1.0 - env.bias) * env.group_rate_scale;
  e.sensitive = rng->Bernoulli(p_pos) ? 1 : -1;

  const std::vector<double>& mean =
      e.label == 1 ? env.class1_mean : env.class0_mean;
  e.x.resize(d);
  for (std::size_t j = 0; j < d; ++j) {
    double offset = 0.0;
    if (j < env.group_offset.size()) {
      offset = 0.5 * static_cast<double>(e.sensitive) * env.group_offset[j];
    }
    e.x[j] = mean[j] + offset + rng->Gaussian(0.0, env.noise);
  }
  if (env.sensitive_channel >= 0 &&
      static_cast<std::size_t>(env.sensitive_channel) < d) {
    int channel = e.sensitive;
    if (rng->Bernoulli(env.channel_noise)) channel = -channel;
    e.x[static_cast<std::size_t>(env.sensitive_channel)] =
        static_cast<double>(channel);
  }
  if (!env.rotation.empty()) {
    std::vector<double> rotated(d, 0.0);
    for (std::size_t i = 0; i < d; ++i) {
      const double* row = env.rotation.row_data(i);
      double acc = 0.0;
      for (std::size_t j = 0; j < d; ++j) acc += row[j] * e.x[j];
      rotated[i] = acc;
    }
    e.x = std::move(rotated);
  }
  for (std::size_t j = 0; j < env.shift.size() && j < d; ++j) {
    e.x[j] += env.shift[j];
  }
  return e;
}

namespace {

// Shared precondition checks of both generator entry points.
Status ValidateStreamInputs(const std::vector<EnvironmentSpec>& environments,
                            const std::vector<TaskPlan>& plan) {
  if (environments.empty()) {
    return Status::InvalidArgument("GenerateStream: no environments");
  }
  const std::size_t d = environments[0].class0_mean.size();
  for (const auto& env : environments) {
    if (env.class0_mean.size() != d || env.class1_mean.size() != d) {
      return Status::InvalidArgument(
          "GenerateStream: inconsistent environment dimensions");
    }
    if (env.bias < 0.0 || env.bias > 1.0) {
      return Status::InvalidArgument("GenerateStream: bias must be in [0,1]");
    }
    if (!(env.group_rate_scale > 0.0 && env.group_rate_scale <= 1.0)) {
      return Status::InvalidArgument(
          "GenerateStream: group_rate_scale must be in (0, 1]");
    }
    if (!env.rotation.empty() &&
        (env.rotation.rows() != d || env.rotation.cols() != d)) {
      return Status::InvalidArgument(
          "GenerateStream: rotation must be d x d");
    }
  }
  for (const TaskPlan& tp : plan) {
    if (tp.environment < 0 ||
        static_cast<std::size_t>(tp.environment) >= environments.size()) {
      return Status::OutOfRange("GenerateStream: unknown environment " +
                                std::to_string(tp.environment));
    }
  }
  return Status::Ok();
}

// The environment id stamped into a task's examples.
int RecordedEnvironment(const TaskPlan& tp) {
  return tp.record_environment >= 0 ? tp.record_environment : tp.environment;
}

Result<Dataset> MaterializeTask(const EnvironmentSpec& env, const TaskPlan& tp,
                                std::size_t dim, Rng* rng) {
  Dataset task(dim);
  const int env_id = RecordedEnvironment(tp);
  for (std::size_t i = 0; i < tp.num_samples; ++i) {
    FACTION_RETURN_IF_ERROR(
        task.Append(SampleFromEnvironment(env, env_id, rng)));
  }
  return task;
}

}  // namespace

Result<std::vector<Dataset>> GenerateStream(
    const std::vector<EnvironmentSpec>& environments,
    const std::vector<TaskPlan>& plan, Rng* rng) {
  FACTION_RETURN_IF_ERROR(ValidateStreamInputs(environments, plan));
  const std::size_t d = environments[0].class0_mean.size();
  std::vector<Dataset> tasks;
  tasks.reserve(plan.size());
  for (const TaskPlan& tp : plan) {
    const EnvironmentSpec& env =
        environments[static_cast<std::size_t>(tp.environment)];
    FACTION_ASSIGN_OR_RETURN(Dataset task,
                             MaterializeTask(env, tp, d, rng));
    tasks.push_back(std::move(task));
  }
  return tasks;
}

Result<std::vector<Dataset>> GenerateStreamSeeded(
    const std::vector<EnvironmentSpec>& environments,
    const std::vector<TaskPlan>& plan, std::uint64_t world_seed,
    const std::string& tag) {
  FACTION_RETURN_IF_ERROR(ValidateStreamInputs(environments, plan));
  const std::size_t d = environments[0].class0_mean.size();
  // Occurrence counter per recorded environment: the k-th task of
  // environment e draws from SubSeed(seed, "<tag>/env/<e>/task/<k>")
  // regardless of where in the plan it sits.
  std::vector<std::size_t> occurrence;
  std::vector<Dataset> tasks;
  tasks.reserve(plan.size());
  for (const TaskPlan& tp : plan) {
    const EnvironmentSpec& env =
        environments[static_cast<std::size_t>(tp.environment)];
    const std::size_t env_id = static_cast<std::size_t>(RecordedEnvironment(tp));
    if (env_id >= occurrence.size()) occurrence.resize(env_id + 1, 0);
    const std::string task_tag = tag + "/env/" + std::to_string(env_id) +
                                 "/task/" +
                                 std::to_string(occurrence[env_id]++);
    Rng task_rng(SubSeed(world_seed, task_tag));
    FACTION_ASSIGN_OR_RETURN(Dataset task,
                             MaterializeTask(env, tp, d, &task_rng));
    tasks.push_back(std::move(task));
  }
  return tasks;
}

Matrix PairwiseRotation(std::size_t dim, double degrees) {
  const double rad = degrees * M_PI / 180.0;
  const double c = std::cos(rad);
  const double s = std::sin(rad);
  Matrix rot = Matrix::Identity(dim);
  for (std::size_t j = 0; j + 1 < dim; j += 2) {
    rot(j, j) = c;
    rot(j, j + 1) = -s;
    rot(j + 1, j) = s;
    rot(j + 1, j + 1) = c;
  }
  return rot;
}

std::vector<std::vector<double>> DrawPrototypes(std::size_t count,
                                                std::size_t dim, double radius,
                                                Rng* rng) {
  std::vector<std::vector<double>> protos;
  protos.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    std::vector<double> v(dim);
    double norm2 = 0.0;
    for (std::size_t j = 0; j < dim; ++j) {
      v[j] = rng->Gaussian();
      norm2 += v[j] * v[j];
    }
    const double norm = std::sqrt(norm2);
    for (std::size_t j = 0; j < dim; ++j) {
      v[j] = norm > 1e-12 ? radius * v[j] / norm : 0.0;
    }
    protos.push_back(std::move(v));
  }
  return protos;
}

}  // namespace faction
