#ifndef FACTION_DATA_SCENARIO_H_
#define FACTION_DATA_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/streams.h"

namespace faction {

/// Scenario engine (DESIGN.md §16): a composable DSL layering changing-
/// environment stressors over the paper's five generators (plus the
/// stationary control). A scenario is written as a compact spec string:
///
///   <base>[;<key>=<value>]*
///
///   rcmnist;drift=recurring:3;order=adversarial;label_noise=0.05
///   nysf;drift=gradual:2;label_delay=1;imbalance=0.3
///
/// Layers (all optional, any combination):
///   drift=abrupt              task-to-task environment switches as the
///                             base generator emits them (default)
///   drift=gradual[:K]         K interpolated transition tasks inserted at
///                             every environment boundary (default K=1)
///   drift=recurring[:C]       the whole task plan repeats for C cycles so
///                             every environment recurs (default C=2)
///   order=plan                the base generator's task order (default)
///   order=adversarial         greedy max-distance environment walk — each
///                             next task comes from the environment most
///                             distant from the current one
///   order=shuffle             sub-seeded random permutation of the plan
///   label_noise=p             each label flips with probability p,
///                             p in [0, 0.5]
///   label_delay=k             supervision lag: task i's label-coupling
///                             fields (bias, positive fraction) come from
///                             the environment of task i-k while its
///                             covariates stay current — labels arriving k
///                             tasks late, as seen by a drift adapter
///   imbalance=f               group imbalance: P(s=+1|y) scaled by (1-f),
///                             f in [0, 0.9]
///
/// Every stochastic layer derives its own FNV-1a sub-seed from the world
/// seed (common/rng.h SubSeed), so any scenario cell is reproducible
/// bitwise from (spec, StreamScale) alone, and layers never perturb each
/// other's draws: adding label noise leaves the features bit-identical.
struct ScenarioConfig {
  enum class DriftShape { kAbrupt, kGradual, kRecurring };
  enum class TaskOrder { kPlan, kAdversarial, kShuffle };

  /// Base generator: "rcmnist", "celeba", "fairface", "ffhq", "nysf", or
  /// "stationary".
  std::string base = "nysf";
  DriftShape drift = DriftShape::kAbrupt;
  /// Transition tasks inserted per environment boundary (gradual drift).
  std::size_t gradual_steps = 1;
  /// Total passes over the task plan (recurring drift); >= 1.
  std::size_t recurring_cycles = 2;
  TaskOrder order = TaskOrder::kPlan;
  double label_noise = 0.0;
  std::size_t label_delay = 0;
  double group_imbalance = 0.0;
};

/// Parses a scenario spec string. Strict: unknown bases, unknown keys,
/// duplicate keys, malformed or out-of-range values are all
/// InvalidArgument with the offending token in the message.
Result<ScenarioConfig> ParseScenario(const std::string& spec);

/// Canonical spec string of a config (base first, layers in a fixed order,
/// defaults omitted). Parsing the result reproduces the config; this is
/// the provenance string stamped into trace run_start records (schema v6).
std::string CanonicalScenarioSpec(const ScenarioConfig& config);

/// Builds the scenario's blueprint: base blueprint -> task ordering ->
/// drift shape -> label delay -> group imbalance. Label noise is applied
/// at materialization (it transforms samples, not specs).
Result<StreamBlueprint> BuildScenarioBlueprint(const ScenarioConfig& config,
                                               const StreamScale& scale);

/// Materializes the scenario stream: blueprint tasks plus the sub-seeded
/// label-noise layer. Same (config, scale) always yields bitwise-identical
/// streams.
Result<std::vector<Dataset>> MakeScenarioStream(const ScenarioConfig& config,
                                                const StreamScale& scale);

/// Convenience: parse + materialize.
Result<std::vector<Dataset>> MakeScenarioStream(const std::string& spec,
                                                const StreamScale& scale);

/// Representative scenario cells of the strategy x scenario matrix
/// (EXPERIMENTS.md): one spec per drift/ordering/corruption axis.
const std::vector<std::string>& ScenarioPresetSpecs();

}  // namespace faction

#endif  // FACTION_DATA_SCENARIO_H_
