#include "data/images.h"

#include <cmath>

namespace faction {

std::vector<std::vector<std::uint8_t>> MakeDigitStencils(
    std::size_t count, const ImageShape& shape, std::size_t pixels,
    Rng* rng) {
  std::vector<std::vector<std::uint8_t>> stencils;
  stencils.reserve(count);
  const int h = static_cast<int>(shape.height);
  const int w = static_cast<int>(shape.width);
  for (std::size_t k = 0; k < count; ++k) {
    std::vector<std::uint8_t> bitmap(shape.height * shape.width, 0);
    // Random walk from near the center, marking pixels as it goes; a
    // second walk adds a distinguishing stroke.
    for (int walk = 0; walk < 2; ++walk) {
      int r = h / 2 + static_cast<int>(rng->UniformInt(3)) - 1;
      int c = w / 2 + static_cast<int>(rng->UniformInt(3)) - 1;
      const std::size_t steps = pixels / 2 + 2;
      for (std::size_t s = 0; s < steps; ++s) {
        bitmap[static_cast<std::size_t>(r) * shape.width +
               static_cast<std::size_t>(c)] = 1;
        const int dir = static_cast<int>(rng->UniformInt(4));
        const int dr = dir == 0 ? -1 : dir == 1 ? 1 : 0;
        const int dc = dir == 2 ? -1 : dir == 3 ? 1 : 0;
        r = std::min(h - 1, std::max(0, r + dr));
        c = std::min(w - 1, std::max(0, c + dc));
      }
    }
    stencils.push_back(std::move(bitmap));
  }
  return stencils;
}

std::vector<double> RenderDigitImage(const std::vector<std::uint8_t>& stencil,
                                     const ImageShape& shape, int channel,
                                     double rotation_deg, double pixel_noise,
                                     Rng* rng) {
  FACTION_CHECK(stencil.size() == shape.height * shape.width);
  FACTION_CHECK(channel >= 0 &&
                static_cast<std::size_t>(channel) < shape.channels);
  std::vector<double> image(shape.Flat(), 0.0);
  const double rad = rotation_deg * M_PI / 180.0;
  const double cosr = std::cos(rad);
  const double sinr = std::sin(rad);
  const double cy = (static_cast<double>(shape.height) - 1.0) / 2.0;
  const double cx = (static_cast<double>(shape.width) - 1.0) / 2.0;
  double* plane =
      image.data() + static_cast<std::size_t>(channel) * shape.height *
                         shape.width;
  // Inverse-map each destination pixel to the unrotated stencil
  // (nearest neighbor), i.e. a true spatial rotation of the glyph.
  for (std::size_t r = 0; r < shape.height; ++r) {
    for (std::size_t c = 0; c < shape.width; ++c) {
      const double dy = static_cast<double>(r) - cy;
      const double dx = static_cast<double>(c) - cx;
      const double sy = cosr * dy + sinr * dx + cy;
      const double sx = -sinr * dy + cosr * dx + cx;
      const long ry = std::lround(sy);
      const long rx = std::lround(sx);
      if (ry < 0 || rx < 0 || ry >= static_cast<long>(shape.height) ||
          rx >= static_cast<long>(shape.width)) {
        continue;
      }
      if (stencil[static_cast<std::size_t>(ry) * shape.width +
                  static_cast<std::size_t>(rx)] != 0) {
        plane[r * shape.width + c] = 1.0;
      }
    }
  }
  if (pixel_noise > 0.0) {
    for (double& v : image) v += rng->Gaussian(0.0, pixel_noise);
  }
  return image;
}

Result<std::vector<Dataset>> MakeRcmnistImageStream(
    const RcmnistImageConfig& config) {
  if (config.biases.size() != config.rotations_deg.size()) {
    return Status::InvalidArgument(
        "rcmnist images: biases and rotations must align");
  }
  if (config.shape.channels < 2) {
    return Status::InvalidArgument(
        "rcmnist images: need >= 2 channels (red/green)");
  }
  Rng rng(config.scale.seed);
  const auto stencils =
      MakeDigitStencils(10, config.shape, config.stencil_pixels, &rng);

  std::vector<Dataset> tasks;
  for (std::size_t env = 0; env < config.biases.size(); ++env) {
    for (std::size_t t = 0; t < config.tasks_per_environment; ++t) {
      Dataset task(config.shape.Flat());
      for (std::size_t i = 0; i < config.scale.samples_per_task; ++i) {
        const std::size_t digit = rng.UniformInt(10);
        Example e;
        e.environment = static_cast<int>(env);
        e.label = digit < 5 ? 0 : 1;
        const double p_pos =
            e.label == 1 ? config.biases[env] : 1.0 - config.biases[env];
        e.sensitive = rng.Bernoulli(p_pos) ? 1 : -1;
        // Red channel (0) for s=+1, green (1) for s=-1: the color
        // shortcut of the colored-MNIST construction.
        const int channel = e.sensitive == 1 ? 0 : 1;
        e.x = RenderDigitImage(stencils[digit], config.shape, channel,
                               config.rotations_deg[env],
                               config.pixel_noise, &rng);
        FACTION_RETURN_IF_ERROR(task.Append(e));
      }
      tasks.push_back(std::move(task));
    }
  }
  return tasks;
}

}  // namespace faction
