#ifndef FACTION_DATA_SYNTHETIC_H_
#define FACTION_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "tensor/matrix.h"

namespace faction {

/// One environment of a changing-environments stream: a joint distribution
/// over (x, s, y) that the generator can sample from. Environments model the
/// paper's rotation angles (RCMNIST), attribute combinations (CelebA /
/// FFHQ), racial groups (FairFace), and area x quarter cells (NYSF).
///
/// Sampling procedure per example:
///   1. y ~ Bernoulli(positive_fraction)
///   2. s = +1 with probability `bias` when y == 1, else with probability
///      (1 - bias): `bias` is the label-sensitive correlation coefficient of
///      the RCMNIST construction (0.5 = unbiased, 0.9 = highly biased).
///   3. x = class prototype mean + (s/2) * group_offset + N(0, noise^2 I)
///   4. if sensitive_channel >= 0, feature[sensitive_channel] additionally
///      encodes s corrupted with flip probability channel_noise (the "digit
///      color" shortcut feature).
///   5. x <- rotation * x + shift  (environment-specific covariate shift)
struct EnvironmentSpec {
  std::vector<double> class0_mean;
  std::vector<double> class1_mean;
  std::vector<double> group_offset;  ///< how s displaces features
  double noise = 0.6;
  double bias = 0.7;                 ///< P(s=+1 | y=1); 1-bias for y=0
  double positive_fraction = 0.5;
  /// Multiplies P(s=+1 | y) uniformly, shrinking the s=+1 group's
  /// prevalence without touching the label-sensitive correlation shape —
  /// the scenario engine's group-imbalance layer. 1 = balanced as per
  /// `bias`; must stay in (0, 1].
  double group_rate_scale = 1.0;
  int sensitive_channel = -1;        ///< feature index carrying s, or -1
  double channel_noise = 0.1;        ///< flip probability of that channel
  Matrix rotation;                   ///< d x d; empty = identity
  std::vector<double> shift;         ///< additive; empty = zero
};

/// The task plan of a stream: which environment each task draws from and
/// how many samples it contains.
struct TaskPlan {
  int environment = 0;
  std::size_t num_samples = 600;
  /// Environment id recorded in the generated examples; -1 (default) means
  /// record `environment` itself. The scenario engine's label-delay layer
  /// materializes hybrid specs appended past the original environments but
  /// must keep the examples' covariate-environment ids intact.
  int record_environment = -1;
};

/// Draws one example from the environment. `env_id` is recorded in the
/// example's environment field.
Example SampleFromEnvironment(const EnvironmentSpec& env, int env_id,
                              Rng* rng);

/// Materializes a full task sequence: one Dataset per TaskPlan entry.
/// Fails when a plan references an unknown environment or dimensions are
/// inconsistent across environments.
///
/// All tasks draw sequentially from the single `rng`, so a task's content
/// depends on every draw before it. Prefer GenerateStreamSeeded for
/// streams whose reproducibility must survive plan edits.
Result<std::vector<Dataset>> GenerateStream(
    const std::vector<EnvironmentSpec>& environments,
    const std::vector<TaskPlan>& plan, Rng* rng);

/// Like GenerateStream, but every task draws from its own generator seeded
/// via SubSeed(world_seed, "<tag>/env/<e>/task/<k>"), where e is the
/// task's (recorded) environment and k counts that environment's prior
/// occurrences in the plan. A task's samples therefore depend only on the
/// world seed, the tag, its environment spec, and its occurrence index —
/// never on how many other tasks surround it. This is what lets a 3- and a
/// 4-tasks-per-environment stream agree bitwise on their shared tasks, and
/// what makes every scenario cell reproducible from one world seed.
Result<std::vector<Dataset>> GenerateStreamSeeded(
    const std::vector<EnvironmentSpec>& environments,
    const std::vector<TaskPlan>& plan, std::uint64_t world_seed,
    const std::string& tag);

/// Returns a d x d rotation matrix rotating consecutive coordinate pairs
/// (0,1), (2,3), ... by `degrees`. Used by the RCMNIST substitute.
Matrix PairwiseRotation(std::size_t dim, double degrees);

/// Draws `count` prototype mean vectors on a sphere of the given radius,
/// spread apart by rejection; deterministic given the rng.
std::vector<std::vector<double>> DrawPrototypes(std::size_t count,
                                                std::size_t dim, double radius,
                                                Rng* rng);

}  // namespace faction

#endif  // FACTION_DATA_SYNTHETIC_H_
