#ifndef FACTION_DATA_SYNTHETIC_H_
#define FACTION_DATA_SYNTHETIC_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "tensor/matrix.h"

namespace faction {

/// One environment of a changing-environments stream: a joint distribution
/// over (x, s, y) that the generator can sample from. Environments model the
/// paper's rotation angles (RCMNIST), attribute combinations (CelebA /
/// FFHQ), racial groups (FairFace), and area x quarter cells (NYSF).
///
/// Sampling procedure per example:
///   1. y ~ Bernoulli(positive_fraction)
///   2. s = +1 with probability `bias` when y == 1, else with probability
///      (1 - bias): `bias` is the label-sensitive correlation coefficient of
///      the RCMNIST construction (0.5 = unbiased, 0.9 = highly biased).
///   3. x = class prototype mean + (s/2) * group_offset + N(0, noise^2 I)
///   4. if sensitive_channel >= 0, feature[sensitive_channel] additionally
///      encodes s corrupted with flip probability channel_noise (the "digit
///      color" shortcut feature).
///   5. x <- rotation * x + shift  (environment-specific covariate shift)
struct EnvironmentSpec {
  std::vector<double> class0_mean;
  std::vector<double> class1_mean;
  std::vector<double> group_offset;  ///< how s displaces features
  double noise = 0.6;
  double bias = 0.7;                 ///< P(s=+1 | y=1); 1-bias for y=0
  double positive_fraction = 0.5;
  int sensitive_channel = -1;        ///< feature index carrying s, or -1
  double channel_noise = 0.1;        ///< flip probability of that channel
  Matrix rotation;                   ///< d x d; empty = identity
  std::vector<double> shift;         ///< additive; empty = zero
};

/// The task plan of a stream: which environment each task draws from and
/// how many samples it contains.
struct TaskPlan {
  int environment = 0;
  std::size_t num_samples = 600;
};

/// Draws one example from the environment. `env_id` is recorded in the
/// example's environment field.
Example SampleFromEnvironment(const EnvironmentSpec& env, int env_id,
                              Rng* rng);

/// Materializes a full task sequence: one Dataset per TaskPlan entry.
/// Fails when a plan references an unknown environment or dimensions are
/// inconsistent across environments.
Result<std::vector<Dataset>> GenerateStream(
    const std::vector<EnvironmentSpec>& environments,
    const std::vector<TaskPlan>& plan, Rng* rng);

/// Returns a d x d rotation matrix rotating consecutive coordinate pairs
/// (0,1), (2,3), ... by `degrees`. Used by the RCMNIST substitute.
Matrix PairwiseRotation(std::size_t dim, double degrees);

/// Draws `count` prototype mean vectors on a sphere of the given radius,
/// spread apart by rejection; deterministic given the rng.
std::vector<std::vector<double>> DrawPrototypes(std::size_t count,
                                                std::size_t dim, double radius,
                                                Rng* rng);

}  // namespace faction

#endif  // FACTION_DATA_SYNTHETIC_H_
