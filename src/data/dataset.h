#ifndef FACTION_DATA_DATASET_H_
#define FACTION_DATA_DATASET_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "tensor/matrix.h"

namespace faction {

struct StateCodecAccess;  // serve/state_codec.cc checkpoint accessor

/// A single example in the data space P = X x S x Y x E of the paper:
/// features x in R^d, binary sensitive attribute s in {-1,+1}, binary label
/// y in {0,1}, and an environment id e.
struct Example {
  std::vector<double> x;
  int sensitive = 1;    ///< s in {-1, +1}
  int label = 0;        ///< y in {0, 1}
  int environment = 0;  ///< e in N
};

/// Column-oriented batch of examples. Features are a dense n x d matrix;
/// labels / sensitive attributes / environments are parallel vectors.
///
/// This is the unit the streaming pipeline moves around: an incoming task
/// D_t^U is a Dataset whose labels are hidden behind the LabelOracle.
class Dataset {
 public:
  Dataset() = default;

  /// Creates an empty dataset with feature dimension d (so Append can check
  /// shapes before the first row arrives).
  explicit Dataset(std::size_t dim) : dim_(dim) {}

  std::size_t size() const { return labels_.size(); }
  std::size_t dim() const { return dim_; }
  bool empty() const { return labels_.empty(); }

  /// The n x d feature matrix (compacted lazily after appends).
  const Matrix& features() const;
  const std::vector<int>& labels() const { return labels_; }
  const std::vector<int>& sensitive() const { return sensitive_; }
  const std::vector<int>& environments() const { return environments_; }

  /// Appends one example. Fails when the feature dimension disagrees or the
  /// sensitive/label encodings are out of range.
  Status Append(const Example& example);

  /// Pre-grows backing storage so the next `rows - size()` Appends perform
  /// no heap allocation. Note features() compacts the matrix back down to
  /// size(), so reserve *after* the last features() call of a round (the
  /// streaming pipeline reserves at the end of each refit).
  void Reserve(std::size_t rows);

  /// Appends every row of `other` (dimensions must agree).
  Status AppendAll(const Dataset& other);

  /// Returns the i-th example by value.
  Example Get(std::size_t i) const;

  /// Allocation-aware Get: fills *out in place, reusing out->x capacity —
  /// a loop-carried Example makes repeated gets heap-free.
  void GetInto(std::size_t i, Example* out) const;

  /// Returns the subset at the given row indices, in order.
  Dataset Subset(const std::vector<std::size_t>& indices) const;

  /// Fraction of examples with s == +1; 0 when empty.
  double GroupFraction() const;

  /// Fraction of examples with label == 1; 0 when empty.
  double PositiveFraction() const;

  /// Number of examples with the given (label, sensitive) combination.
  std::size_t CountGroup(int label, int sensitive) const;

  /// Empirical joint probability p(y, s) (Eq. 3's mixture weights).
  double JointProbability(int label, int sensitive) const;

  /// True when both sensitive groups and both labels are present — the
  /// precondition for fitting the C x S density estimator.
  bool HasAllGroups() const;

 private:
  // The checkpoint codec reads features_ directly: calling features()
  // during a snapshot capture would compact the matrix and discard the
  // spare pre-reserved rows the zero-alloc steady state depends on.
  friend struct StateCodecAccess;

  std::size_t dim_ = 0;
  /// Backing storage; may hold spare capacity rows beyond size(). Mutable so
  /// features() can compact lazily without breaking const-correct callers.
  mutable Matrix features_;
  std::vector<int> labels_;
  std::vector<int> sensitive_;
  std::vector<int> environments_;
};

}  // namespace faction

#endif  // FACTION_DATA_DATASET_H_
