#include "data/streams.h"

#include <cmath>

#include "common/rng.h"
#include "data/synthetic.h"

namespace faction {

namespace {

// Builds the shared group offset: the sensitive attribute displaces a few
// leading feature dimensions so s is partially inferable from x — the
// precondition for demographic disparity to appear in an unconstrained
// learner.
std::vector<double> MakeGroupOffset(std::size_t dim, double strength,
                                    Rng* rng) {
  std::vector<double> offset(dim, 0.0);
  const std::size_t active = dim < 4 ? dim : 4;
  for (std::size_t j = 0; j < active; ++j) {
    offset[j] = strength * (rng->Bernoulli(0.5) ? 1.0 : -1.0);
  }
  return offset;
}

std::vector<TaskPlan> RepeatEnvironments(std::size_t num_envs,
                                         std::size_t tasks_per_env,
                                         std::size_t samples) {
  std::vector<TaskPlan> plan;
  for (std::size_t e = 0; e < num_envs; ++e) {
    for (std::size_t t = 0; t < tasks_per_env; ++t) {
      plan.push_back(TaskPlan{static_cast<int>(e), samples});
    }
  }
  return plan;
}

// Each stochastic component of a blueprint draws from its own sub-seeded
// generator: "<tag>/<component>" under the world seed. Changing how much
// one component consumes (e.g. more environments drawing more shift
// prototypes) can then never perturb another component's draws — the
// seed-coupling bug the tag scheme replaces.
Rng ComponentRng(const StreamScale& scale, const std::string& tag,
                 const std::string& component) {
  return Rng(SubSeed(scale.seed, tag + "/" + component));
}

}  // namespace

Result<std::vector<Dataset>> MaterializeStream(
    const StreamBlueprint& blueprint) {
  return GenerateStreamSeeded(blueprint.environments, blueprint.plan,
                              blueprint.world_seed, blueprint.tag);
}

Result<StreamBlueprint> MakeRcmnistBlueprint(const RcmnistConfig& config) {
  if (config.biases.size() != config.rotations_deg.size()) {
    return Status::InvalidArgument(
        "rcmnist: biases and rotations must align");
  }
  StreamBlueprint bp;
  bp.tag = "rcmnist";
  bp.world_seed = config.scale.seed;
  // Ten digit prototypes; digits 0-4 map to label 0, digits 5-9 to label 1.
  // The binary-class means are the centroids of each digit group, which
  // keeps within-class multimodality (as real digit features would have).
  Rng proto_rng = ComponentRng(config.scale, bp.tag, "prototypes");
  const auto protos = DrawPrototypes(10, config.dim, 2.2, &proto_rng);
  std::vector<double> mean0(config.dim, 0.0), mean1(config.dim, 0.0);
  for (std::size_t k = 0; k < 10; ++k) {
    for (std::size_t j = 0; j < config.dim; ++j) {
      (k < 5 ? mean0 : mean1)[j] += protos[k][j] / 5.0;
    }
  }
  Rng offset_rng = ComponentRng(config.scale, bp.tag, "group_offset");
  const std::vector<double> group_offset =
      MakeGroupOffset(config.dim, 0.8, &offset_rng);

  for (std::size_t e = 0; e < config.biases.size(); ++e) {
    EnvironmentSpec env;
    env.class0_mean = mean0;
    env.class1_mean = mean1;
    env.group_offset = group_offset;
    env.noise = 0.7;
    env.bias = config.biases[e];
    // The last feature is the digit "color" channel (the sensitive
    // shortcut the colored-MNIST construction plants).
    env.sensitive_channel = static_cast<int>(config.dim) - 1;
    env.channel_noise = 0.1;
    env.rotation = PairwiseRotation(config.dim, config.rotations_deg[e]);
    bp.environments.push_back(std::move(env));
  }
  bp.plan = RepeatEnvironments(bp.environments.size(),
                               config.tasks_per_environment,
                               config.scale.samples_per_task);
  return bp;
}

Result<std::vector<Dataset>> MakeRcmnistStream(const RcmnistConfig& config) {
  FACTION_ASSIGN_OR_RETURN(StreamBlueprint bp, MakeRcmnistBlueprint(config));
  return MaterializeStream(bp);
}

Result<StreamBlueprint> MakeCelebaBlueprint(const CelebaConfig& config) {
  StreamBlueprint bp;
  bp.tag = "celeba";
  bp.world_seed = config.scale.seed;
  Rng proto_rng = ComponentRng(config.scale, bp.tag, "prototypes");
  const auto base = DrawPrototypes(2, config.dim, 1.8, &proto_rng);
  Rng offset_rng = ComponentRng(config.scale, bp.tag, "group_offset");
  const std::vector<double> group_offset =
      MakeGroupOffset(config.dim, 1.0, &offset_rng);
  // Two latent binary factors (Young, Smiling) define 4 environments, each
  // shifting the feature distribution along its own direction.
  Rng factor_rng = ComponentRng(config.scale, bp.tag, "factors");
  const auto factors = DrawPrototypes(2, config.dim, 1.2, &factor_rng);
  for (int young : {0, 1}) {
    for (int smiling : {0, 1}) {
      EnvironmentSpec env;
      env.class0_mean = base[0];
      env.class1_mean = base[1];
      env.group_offset = group_offset;
      env.noise = 0.8;
      env.bias = config.bias;
      env.shift.assign(config.dim, 0.0);
      for (std::size_t j = 0; j < config.dim; ++j) {
        env.shift[j] = (young != 0 ? factors[0][j] : -factors[0][j]) +
                       (smiling != 0 ? factors[1][j] : -factors[1][j]);
      }
      bp.environments.push_back(std::move(env));
    }
  }
  bp.plan = RepeatEnvironments(bp.environments.size(),
                               config.tasks_per_environment,
                               config.scale.samples_per_task);
  return bp;
}

Result<std::vector<Dataset>> MakeCelebaStream(const CelebaConfig& config) {
  FACTION_ASSIGN_OR_RETURN(StreamBlueprint bp, MakeCelebaBlueprint(config));
  return MaterializeStream(bp);
}

Result<StreamBlueprint> MakeFairfaceBlueprint(const FairfaceConfig& config) {
  StreamBlueprint bp;
  bp.tag = "fairface";
  bp.world_seed = config.scale.seed;
  Rng proto_rng = ComponentRng(config.scale, bp.tag, "prototypes");
  const auto base = DrawPrototypes(2, config.dim, 1.6, &proto_rng);
  Rng offset_rng = ComponentRng(config.scale, bp.tag, "group_offset");
  const std::vector<double> group_offset =
      MakeGroupOffset(config.dim, 0.9, &offset_rng);
  Rng shift_rng = ComponentRng(config.scale, bp.tag, "race_shifts");
  const auto race_shifts =
      DrawPrototypes(config.num_environments, config.dim, 1.5, &shift_rng);
  for (std::size_t e = 0; e < config.num_environments; ++e) {
    EnvironmentSpec env;
    env.class0_mean = base[0];
    env.class1_mean = base[1];
    env.group_offset = group_offset;
    env.noise = 0.8;
    env.bias = config.bias;
    // Age>50 is the minority class in face datasets.
    env.positive_fraction = 0.35;
    env.shift = race_shifts[e];
    bp.environments.push_back(std::move(env));
  }
  bp.plan = RepeatEnvironments(bp.environments.size(),
                               config.tasks_per_environment,
                               config.scale.samples_per_task);
  return bp;
}

Result<std::vector<Dataset>> MakeFairfaceStream(const FairfaceConfig& config) {
  FACTION_ASSIGN_OR_RETURN(StreamBlueprint bp, MakeFairfaceBlueprint(config));
  return MaterializeStream(bp);
}

Result<StreamBlueprint> MakeFfhqBlueprint(const FfhqConfig& config) {
  StreamBlueprint bp;
  bp.tag = "ffhq";
  bp.world_seed = config.scale.seed;
  Rng proto_rng = ComponentRng(config.scale, bp.tag, "prototypes");
  const auto base = DrawPrototypes(2, config.dim, 1.7, &proto_rng);
  Rng offset_rng = ComponentRng(config.scale, bp.tag, "group_offset");
  const std::vector<double> group_offset =
      MakeGroupOffset(config.dim, 0.9, &offset_rng);
  // Four facial-expression environments.
  Rng shift_rng = ComponentRng(config.scale, bp.tag, "expression_shifts");
  const auto expr_shifts = DrawPrototypes(4, config.dim, 1.3, &shift_rng);
  for (std::size_t e = 0; e < 4; ++e) {
    EnvironmentSpec env;
    env.class0_mean = base[0];
    env.class1_mean = base[1];
    env.group_offset = group_offset;
    env.noise = 0.75;
    env.bias = config.bias;
    env.positive_fraction = 0.4;
    env.shift = expr_shifts[e];
    bp.environments.push_back(std::move(env));
  }
  bp.plan = RepeatEnvironments(bp.environments.size(),
                               config.tasks_per_environment,
                               config.scale.samples_per_task);
  return bp;
}

Result<std::vector<Dataset>> MakeFfhqStream(const FfhqConfig& config) {
  FACTION_ASSIGN_OR_RETURN(StreamBlueprint bp, MakeFfhqBlueprint(config));
  return MaterializeStream(bp);
}

Result<StreamBlueprint> MakeNysfBlueprint(const NysfConfig& config) {
  StreamBlueprint bp;
  bp.tag = "nysf";
  bp.world_seed = config.scale.seed;
  Rng proto_rng = ComponentRng(config.scale, bp.tag, "prototypes");
  const auto base = DrawPrototypes(2, config.dim, 1.4, &proto_rng);
  Rng offset_rng = ComponentRng(config.scale, bp.tag, "group_offset");
  const std::vector<double> group_offset =
      MakeGroupOffset(config.dim, 1.1, &offset_rng);
  Rng area_rng = ComponentRng(config.scale, bp.tag, "area_shifts");
  const auto area_shifts =
      DrawPrototypes(config.num_areas, config.dim, 1.4, &area_rng);
  // Quarterly drift direction, applied incrementally within each area.
  Rng drift_rng = ComponentRng(config.scale, bp.tag, "drift");
  const auto drift = DrawPrototypes(1, config.dim, 0.5, &drift_rng)[0];

  for (std::size_t area = 0; area < config.num_areas; ++area) {
    for (std::size_t quarter = 0; quarter < config.num_quarters; ++quarter) {
      EnvironmentSpec env;
      env.class0_mean = base[0];
      env.class1_mean = base[1];
      env.group_offset = group_offset;
      env.noise = 0.85;
      env.bias = config.bias;
      // Frisk decisions are the minority outcome.
      env.positive_fraction = 0.35;
      env.shift.assign(config.dim, 0.0);
      for (std::size_t j = 0; j < config.dim; ++j) {
        env.shift[j] = area_shifts[area][j] +
                       static_cast<double>(quarter) * drift[j];
      }
      bp.plan.push_back(TaskPlan{static_cast<int>(bp.environments.size()),
                                 config.scale.samples_per_task});
      bp.environments.push_back(std::move(env));
    }
  }
  return bp;
}

Result<std::vector<Dataset>> MakeNysfStream(const NysfConfig& config) {
  FACTION_ASSIGN_OR_RETURN(StreamBlueprint bp, MakeNysfBlueprint(config));
  return MaterializeStream(bp);
}

Result<StreamBlueprint> MakeStationaryBlueprint(
    const StationaryConfig& config) {
  StreamBlueprint bp;
  bp.tag = "stationary";
  bp.world_seed = config.scale.seed;
  Rng proto_rng = ComponentRng(config.scale, bp.tag, "prototypes");
  const auto base = DrawPrototypes(2, config.dim, 1.6, &proto_rng);
  EnvironmentSpec env;
  env.class0_mean = base[0];
  env.class1_mean = base[1];
  Rng offset_rng = ComponentRng(config.scale, bp.tag, "group_offset");
  env.group_offset = MakeGroupOffset(config.dim, 0.9, &offset_rng);
  env.noise = 0.8;
  env.bias = config.bias;
  bp.environments.push_back(std::move(env));
  bp.plan.assign(config.num_tasks,
                 TaskPlan{0, config.scale.samples_per_task});
  return bp;
}

Result<std::vector<Dataset>> MakeStationaryStream(
    const StationaryConfig& config) {
  FACTION_ASSIGN_OR_RETURN(StreamBlueprint bp,
                           MakeStationaryBlueprint(config));
  return MaterializeStream(bp);
}

const std::vector<std::string>& PaperDatasetNames() {
  static const std::vector<std::string> names = {"rcmnist", "celeba", "ffhq",
                                                 "fairface", "nysf"};
  return names;
}

Result<StreamBlueprint> MakePaperBlueprint(const std::string& name,
                                           const StreamScale& scale) {
  if (name == "rcmnist") {
    RcmnistConfig c;
    c.scale = scale;
    return MakeRcmnistBlueprint(c);
  }
  if (name == "celeba") {
    CelebaConfig c;
    c.scale = scale;
    return MakeCelebaBlueprint(c);
  }
  if (name == "fairface") {
    FairfaceConfig c;
    c.scale = scale;
    return MakeFairfaceBlueprint(c);
  }
  if (name == "ffhq") {
    FfhqConfig c;
    c.scale = scale;
    return MakeFfhqBlueprint(c);
  }
  if (name == "nysf") {
    NysfConfig c;
    c.scale = scale;
    return MakeNysfBlueprint(c);
  }
  if (name == "stationary") {
    StationaryConfig c;
    c.scale = scale;
    return MakeStationaryBlueprint(c);
  }
  return Status::NotFound("unknown dataset: " + name);
}

Result<std::vector<Dataset>> MakePaperStream(const std::string& name,
                                             const StreamScale& scale) {
  FACTION_ASSIGN_OR_RETURN(StreamBlueprint bp,
                           MakePaperBlueprint(name, scale));
  return MaterializeStream(bp);
}

}  // namespace faction
