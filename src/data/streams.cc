#include "data/streams.h"

#include <cmath>

#include "common/rng.h"
#include "data/synthetic.h"

namespace faction {

namespace {

// Builds the shared group offset: the sensitive attribute displaces a few
// leading feature dimensions so s is partially inferable from x — the
// precondition for demographic disparity to appear in an unconstrained
// learner.
std::vector<double> MakeGroupOffset(std::size_t dim, double strength,
                                    Rng* rng) {
  std::vector<double> offset(dim, 0.0);
  const std::size_t active = dim < 4 ? dim : 4;
  for (std::size_t j = 0; j < active; ++j) {
    offset[j] = strength * (rng->Bernoulli(0.5) ? 1.0 : -1.0);
  }
  return offset;
}

std::vector<TaskPlan> RepeatEnvironments(std::size_t num_envs,
                                         std::size_t tasks_per_env,
                                         std::size_t samples) {
  std::vector<TaskPlan> plan;
  for (std::size_t e = 0; e < num_envs; ++e) {
    for (std::size_t t = 0; t < tasks_per_env; ++t) {
      plan.push_back(TaskPlan{static_cast<int>(e), samples});
    }
  }
  return plan;
}

}  // namespace

Result<std::vector<Dataset>> MakeRcmnistStream(const RcmnistConfig& config) {
  if (config.biases.size() != config.rotations_deg.size()) {
    return Status::InvalidArgument(
        "rcmnist: biases and rotations must align");
  }
  Rng rng(config.scale.seed);
  // Ten digit prototypes; digits 0-4 map to label 0, digits 5-9 to label 1.
  // The binary-class means are the centroids of each digit group, which
  // keeps within-class multimodality (as real digit features would have).
  const auto protos = DrawPrototypes(10, config.dim, 2.2, &rng);
  std::vector<double> mean0(config.dim, 0.0), mean1(config.dim, 0.0);
  for (std::size_t k = 0; k < 10; ++k) {
    for (std::size_t j = 0; j < config.dim; ++j) {
      (k < 5 ? mean0 : mean1)[j] += protos[k][j] / 5.0;
    }
  }
  const std::vector<double> group_offset =
      MakeGroupOffset(config.dim, 0.8, &rng);

  std::vector<EnvironmentSpec> envs;
  for (std::size_t e = 0; e < config.biases.size(); ++e) {
    EnvironmentSpec env;
    env.class0_mean = mean0;
    env.class1_mean = mean1;
    env.group_offset = group_offset;
    env.noise = 0.7;
    env.bias = config.biases[e];
    // The last feature is the digit "color" channel (the sensitive
    // shortcut the colored-MNIST construction plants).
    env.sensitive_channel = static_cast<int>(config.dim) - 1;
    env.channel_noise = 0.1;
    env.rotation = PairwiseRotation(config.dim, config.rotations_deg[e]);
    envs.push_back(std::move(env));
  }
  return GenerateStream(envs,
                        RepeatEnvironments(envs.size(),
                                           config.tasks_per_environment,
                                           config.scale.samples_per_task),
                        &rng);
}

Result<std::vector<Dataset>> MakeCelebaStream(const CelebaConfig& config) {
  Rng rng(config.scale.seed);
  const auto base = DrawPrototypes(2, config.dim, 1.8, &rng);
  const std::vector<double> group_offset =
      MakeGroupOffset(config.dim, 1.0, &rng);
  // Two latent binary factors (Young, Smiling) define 4 environments, each
  // shifting the feature distribution along its own direction.
  const auto factors = DrawPrototypes(2, config.dim, 1.2, &rng);
  std::vector<EnvironmentSpec> envs;
  for (int young : {0, 1}) {
    for (int smiling : {0, 1}) {
      EnvironmentSpec env;
      env.class0_mean = base[0];
      env.class1_mean = base[1];
      env.group_offset = group_offset;
      env.noise = 0.8;
      env.bias = config.bias;
      env.shift.assign(config.dim, 0.0);
      for (std::size_t j = 0; j < config.dim; ++j) {
        env.shift[j] = (young != 0 ? factors[0][j] : -factors[0][j]) +
                       (smiling != 0 ? factors[1][j] : -factors[1][j]);
      }
      envs.push_back(std::move(env));
    }
  }
  return GenerateStream(envs,
                        RepeatEnvironments(envs.size(),
                                           config.tasks_per_environment,
                                           config.scale.samples_per_task),
                        &rng);
}

Result<std::vector<Dataset>> MakeFairfaceStream(const FairfaceConfig& config) {
  Rng rng(config.scale.seed);
  const auto base = DrawPrototypes(2, config.dim, 1.6, &rng);
  const std::vector<double> group_offset =
      MakeGroupOffset(config.dim, 0.9, &rng);
  const auto race_shifts =
      DrawPrototypes(config.num_environments, config.dim, 1.5, &rng);
  std::vector<EnvironmentSpec> envs;
  for (std::size_t e = 0; e < config.num_environments; ++e) {
    EnvironmentSpec env;
    env.class0_mean = base[0];
    env.class1_mean = base[1];
    env.group_offset = group_offset;
    env.noise = 0.8;
    env.bias = config.bias;
    // Age>50 is the minority class in face datasets.
    env.positive_fraction = 0.35;
    env.shift = race_shifts[e];
    envs.push_back(std::move(env));
  }
  return GenerateStream(envs,
                        RepeatEnvironments(envs.size(),
                                           config.tasks_per_environment,
                                           config.scale.samples_per_task),
                        &rng);
}

Result<std::vector<Dataset>> MakeFfhqStream(const FfhqConfig& config) {
  Rng rng(config.scale.seed);
  const auto base = DrawPrototypes(2, config.dim, 1.7, &rng);
  const std::vector<double> group_offset =
      MakeGroupOffset(config.dim, 0.9, &rng);
  // Four facial-expression environments.
  const auto expr_shifts = DrawPrototypes(4, config.dim, 1.3, &rng);
  std::vector<EnvironmentSpec> envs;
  for (std::size_t e = 0; e < 4; ++e) {
    EnvironmentSpec env;
    env.class0_mean = base[0];
    env.class1_mean = base[1];
    env.group_offset = group_offset;
    env.noise = 0.75;
    env.bias = config.bias;
    env.positive_fraction = 0.4;
    env.shift = expr_shifts[e];
    envs.push_back(std::move(env));
  }
  return GenerateStream(envs,
                        RepeatEnvironments(envs.size(),
                                           config.tasks_per_environment,
                                           config.scale.samples_per_task),
                        &rng);
}

Result<std::vector<Dataset>> MakeNysfStream(const NysfConfig& config) {
  Rng rng(config.scale.seed);
  const auto base = DrawPrototypes(2, config.dim, 1.4, &rng);
  const std::vector<double> group_offset =
      MakeGroupOffset(config.dim, 1.1, &rng);
  const auto area_shifts =
      DrawPrototypes(config.num_areas, config.dim, 1.4, &rng);
  // Quarterly drift direction, applied incrementally within each area.
  const auto drift = DrawPrototypes(1, config.dim, 0.5, &rng)[0];

  std::vector<EnvironmentSpec> envs;
  std::vector<TaskPlan> plan;
  for (std::size_t area = 0; area < config.num_areas; ++area) {
    for (std::size_t quarter = 0; quarter < config.num_quarters; ++quarter) {
      EnvironmentSpec env;
      env.class0_mean = base[0];
      env.class1_mean = base[1];
      env.group_offset = group_offset;
      env.noise = 0.85;
      env.bias = config.bias;
      // Frisk decisions are the minority outcome.
      env.positive_fraction = 0.35;
      env.shift.assign(config.dim, 0.0);
      for (std::size_t j = 0; j < config.dim; ++j) {
        env.shift[j] = area_shifts[area][j] +
                       static_cast<double>(quarter) * drift[j];
      }
      plan.push_back(TaskPlan{static_cast<int>(envs.size()),
                              config.scale.samples_per_task});
      envs.push_back(std::move(env));
    }
  }
  return GenerateStream(envs, plan, &rng);
}

Result<std::vector<Dataset>> MakeStationaryStream(
    const StationaryConfig& config) {
  Rng rng(config.scale.seed);
  const auto base = DrawPrototypes(2, config.dim, 1.6, &rng);
  EnvironmentSpec env;
  env.class0_mean = base[0];
  env.class1_mean = base[1];
  env.group_offset = MakeGroupOffset(config.dim, 0.9, &rng);
  env.noise = 0.8;
  env.bias = config.bias;
  std::vector<TaskPlan> plan(config.num_tasks,
                             TaskPlan{0, config.scale.samples_per_task});
  return GenerateStream({env}, plan, &rng);
}

const std::vector<std::string>& PaperDatasetNames() {
  static const std::vector<std::string> names = {"rcmnist", "celeba", "ffhq",
                                                 "fairface", "nysf"};
  return names;
}

Result<std::vector<Dataset>> MakePaperStream(const std::string& name,
                                             const StreamScale& scale) {
  if (name == "rcmnist") {
    RcmnistConfig c;
    c.scale = scale;
    return MakeRcmnistStream(c);
  }
  if (name == "celeba") {
    CelebaConfig c;
    c.scale = scale;
    return MakeCelebaStream(c);
  }
  if (name == "fairface") {
    FairfaceConfig c;
    c.scale = scale;
    return MakeFairfaceStream(c);
  }
  if (name == "ffhq") {
    FfhqConfig c;
    c.scale = scale;
    return MakeFfhqStream(c);
  }
  if (name == "nysf") {
    NysfConfig c;
    c.scale = scale;
    return MakeNysfStream(c);
  }
  return Status::NotFound("unknown dataset: " + name);
}

}  // namespace faction
