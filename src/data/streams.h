#ifndef FACTION_DATA_STREAMS_H_
#define FACTION_DATA_STREAMS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/synthetic.h"

namespace faction {

/// Scale knobs shared by all dataset streams. Paper scale: each task holds
/// roughly 10x the query budget (B = 200); the reduced default keeps the
/// single-core benches fast while preserving task >> budget.
struct StreamScale {
  std::size_t samples_per_task = 600;
  std::uint64_t seed = 7;
};

/// A stream before materialization: the environment specs, the task plan,
/// and the seed-derivation namespace. Every stochastic component of a
/// blueprint — each prototype draw, the group offset, and each task's
/// samples — is seeded via SubSeed(world_seed, "<tag>/<component>"), so no
/// component's draws depend on any other component's consumption. The
/// scenario engine (data/scenario.h) transforms blueprints (reordering,
/// recurring environments, gradual transitions, label delay, imbalance)
/// before materializing them.
struct StreamBlueprint {
  std::vector<EnvironmentSpec> environments;
  std::vector<TaskPlan> plan;
  /// Sub-seed namespace, e.g. "rcmnist"; per-task draws use
  /// "<tag>/env/<e>/task/<k>".
  std::string tag;
  std::uint64_t world_seed = 0;
};

/// Materializes a blueprint via GenerateStreamSeeded: one Dataset per plan
/// entry, each task's draws independent of every other task's.
Result<std::vector<Dataset>> MaterializeStream(
    const StreamBlueprint& blueprint);

/// Builds the blueprint of a paper dataset by name ("rcmnist", "celeba",
/// "fairface", "ffhq", "nysf") or "stationary", at the given scale.
Result<StreamBlueprint> MakePaperBlueprint(const std::string& name,
                                           const StreamScale& scale);

/// Rotated Colored MNIST substitute (Sec. V-A1): 4 environments — feature
/// rotations of {0, 15, 30, 45} degrees — with label-color correlation
/// coefficients {0.9, 0.8, 0.7, 0.6}; digit color is the sensitive
/// attribute, carried by a dedicated feature channel. 3 tasks per
/// environment = 12 sequential tasks.
struct RcmnistConfig {
  StreamScale scale;
  std::size_t dim = 16;
  /// Per-environment label-sensitive correlation (paper's coefficients).
  std::vector<double> biases = {0.9, 0.8, 0.7, 0.6};
  std::vector<double> rotations_deg = {0.0, 15.0, 30.0, 45.0};
  std::size_t tasks_per_environment = 3;
};
Result<std::vector<Dataset>> MakeRcmnistStream(const RcmnistConfig& config);
Result<StreamBlueprint> MakeRcmnistBlueprint(const RcmnistConfig& config);

/// CelebA substitute: environments are the 4 combinations of two latent
/// binary factors (Young x Smiling) shifting the feature distribution;
/// s = Male, y = Attractive, 12 tasks.
struct CelebaConfig {
  StreamScale scale;
  std::size_t dim = 18;
  double bias = 0.64;
  std::size_t tasks_per_environment = 3;
};
Result<std::vector<Dataset>> MakeCelebaStream(const CelebaConfig& config);
Result<StreamBlueprint> MakeCelebaBlueprint(const CelebaConfig& config);

/// FairFace substitute: 7 racial-group environments (cluster mean shifts),
/// s = gender, y = age>50; 3 tasks per environment = 21 tasks.
struct FairfaceConfig {
  StreamScale scale;
  std::size_t dim = 16;
  double bias = 0.6;
  std::size_t num_environments = 7;
  std::size_t tasks_per_environment = 3;
};
Result<std::vector<Dataset>> MakeFairfaceStream(const FairfaceConfig& config);
Result<StreamBlueprint> MakeFairfaceBlueprint(const FairfaceConfig& config);

/// FFHQ-Features substitute: 4 facial-expression environments, s = gender,
/// y = age>50; 12 tasks.
struct FfhqConfig {
  StreamScale scale;
  std::size_t dim = 16;
  double bias = 0.62;
  std::size_t tasks_per_environment = 3;
};
Result<std::vector<Dataset>> MakeFfhqStream(const FfhqConfig& config);
Result<StreamBlueprint> MakeFfhqBlueprint(const FfhqConfig& config);

/// New York Stop-and-Frisk substitute: tabular stream over 4 geographic
/// areas x 4 yearly quarters = 16 tasks; s = race, y = frisked, with
/// group-dependent base rates (historical bias) and quarterly drift.
struct NysfConfig {
  StreamScale scale;
  std::size_t dim = 12;
  double bias = 0.6;
  std::size_t num_areas = 4;
  std::size_t num_quarters = 4;
};
Result<std::vector<Dataset>> MakeNysfStream(const NysfConfig& config);
Result<StreamBlueprint> MakeNysfBlueprint(const NysfConfig& config);

/// Stationary single-environment stream of T tasks, used by the Theorem 1
/// validation bench (m = 1, |I_u| = T).
struct StationaryConfig {
  StreamScale scale;
  std::size_t dim = 12;
  double bias = 0.7;
  std::size_t num_tasks = 16;
};
Result<std::vector<Dataset>> MakeStationaryStream(
    const StationaryConfig& config);
Result<StreamBlueprint> MakeStationaryBlueprint(const StationaryConfig& config);

/// Names of the five paper datasets, in the order Fig. 2 reports them.
const std::vector<std::string>& PaperDatasetNames();

/// Builds the stream for a paper dataset by name ("rcmnist", "celeba",
/// "fairface", "ffhq", "nysf") at the given scale.
Result<std::vector<Dataset>> MakePaperStream(const std::string& name,
                                             const StreamScale& scale);

}  // namespace faction

#endif  // FACTION_DATA_STREAMS_H_
