#include "data/dataset.h"

namespace faction {

const Matrix& Dataset::features() const {
  if (features_.rows() != size()) {
    Matrix compact(size(), dim_);
    for (std::size_t i = 0; i < size(); ++i) {
      std::copy(features_.row_data(i), features_.row_data(i) + dim_,
                compact.row_data(i));
    }
    features_ = std::move(compact);
  }
  return features_;
}

Status Dataset::Append(const Example& example) {
  if (dim_ == 0 && features_.rows() == 0) {
    dim_ = example.x.size();
  }
  if (example.x.size() != dim_) {
    return Status::InvalidArgument(
        "example dimension " + std::to_string(example.x.size()) +
        " does not match dataset dimension " + std::to_string(dim_));
  }
  if (example.sensitive != -1 && example.sensitive != 1) {
    return Status::InvalidArgument("sensitive attribute must be -1 or +1");
  }
  if (example.label != 0 && example.label != 1) {
    return Status::InvalidArgument("label must be 0 or 1");
  }
  // Grow the feature matrix by one row. Matrix::Resize zero-fills, so copy
  // through a staging matrix; amortize by doubling capacity.
  const std::size_t n = labels_.size();
  if (features_.rows() <= n) {
    Matrix grown(n == 0 ? 8 : n * 2, dim_);
    for (std::size_t i = 0; i < n; ++i) {
      std::copy(features_.row_data(i), features_.row_data(i) + dim_,
                grown.row_data(i));
    }
    features_ = std::move(grown);
  }
  std::copy(example.x.begin(), example.x.end(), features_.row_data(n));
  labels_.push_back(example.label);
  sensitive_.push_back(example.sensitive);
  environments_.push_back(example.environment);
  return Status::Ok();
}

void Dataset::Reserve(std::size_t rows) {
  labels_.reserve(rows);
  sensitive_.reserve(rows);
  environments_.reserve(rows);
  if (dim_ == 0 || rows <= features_.rows()) return;
  const std::size_t n = labels_.size();
  Matrix grown(rows, dim_);
  for (std::size_t i = 0; i < n; ++i) {
    std::copy(features_.row_data(i), features_.row_data(i) + dim_,
              grown.row_data(i));
  }
  features_ = std::move(grown);
}

Status Dataset::AppendAll(const Dataset& other) {
  for (std::size_t i = 0; i < other.size(); ++i) {
    FACTION_RETURN_IF_ERROR(Append(other.Get(i)));
  }
  return Status::Ok();
}

Example Dataset::Get(std::size_t i) const {
  Example e;
  GetInto(i, &e);
  return e;
}

void Dataset::GetInto(std::size_t i, Example* out) const {
  FACTION_CHECK(i < size());
  out->x.assign(features_.row_data(i), features_.row_data(i) + dim_);
  out->label = labels_[i];
  out->sensitive = sensitive_[i];
  out->environment = environments_[i];
}

Dataset Dataset::Subset(const std::vector<std::size_t>& indices) const {
  Dataset out(dim_);
  for (std::size_t idx : indices) {
    const Status st = out.Append(Get(idx));
    FACTION_CHECK(st.ok());
  }
  return out;
}

double Dataset::GroupFraction() const {
  if (empty()) return 0.0;
  std::size_t pos = 0;
  for (int s : sensitive_) {
    if (s == 1) ++pos;
  }
  return static_cast<double>(pos) / static_cast<double>(size());
}

double Dataset::PositiveFraction() const {
  if (empty()) return 0.0;
  std::size_t pos = 0;
  for (int y : labels_) {
    if (y == 1) ++pos;
  }
  return static_cast<double>(pos) / static_cast<double>(size());
}

std::size_t Dataset::CountGroup(int label, int sensitive) const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    if (labels_[i] == label && sensitive_[i] == sensitive) ++count;
  }
  return count;
}

double Dataset::JointProbability(int label, int sensitive) const {
  if (empty()) return 0.0;
  return static_cast<double>(CountGroup(label, sensitive)) /
         static_cast<double>(size());
}

bool Dataset::HasAllGroups() const {
  for (int y : {0, 1}) {
    for (int s : {-1, 1}) {
      if (CountGroup(y, s) == 0) return false;
    }
  }
  return true;
}

}  // namespace faction
