#ifndef FACTION_DATA_IMAGES_H_
#define FACTION_DATA_IMAGES_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "data/streams.h"
#include "tensor/image.h"

namespace faction {

/// Pixel-level Rotated Colored MNIST substitute: instead of the feature-
/// vector abstraction in data/streams.h, this generator renders actual
/// low-resolution two-channel images — digit-like stroke stencils drawn
/// into the red or green channel according to the sensitive attribute,
/// rotated *as images* by the environment's angle. This is the faithful
/// substrate for the CNN backbone (ConvNetClassifier): the rotation is a
/// genuine spatial transform and the color shortcut is a genuine channel
/// statistic, exactly the structure the paper's colored-MNIST construction
/// plants.
struct RcmnistImageConfig {
  StreamScale scale;
  ImageShape shape{2, 8, 8};  ///< channel 0 = red, channel 1 = green
  /// Label-color correlation per environment (paper coefficients).
  std::vector<double> biases = {0.9, 0.8, 0.7, 0.6};
  std::vector<double> rotations_deg = {0.0, 15.0, 30.0, 45.0};
  std::size_t tasks_per_environment = 3;
  /// Additive per-pixel Gaussian noise.
  double pixel_noise = 0.15;
  /// Stroke pixels per digit stencil.
  std::size_t stencil_pixels = 14;
};

/// Builds the image task stream: one Dataset per task, rows flattened in
/// (channel, row, col) order with dimension shape.Flat().
Result<std::vector<Dataset>> MakeRcmnistImageStream(
    const RcmnistImageConfig& config);

/// Renders one sample for tests/examples: draws stencil `digit` with the
/// given color channel and rotation, plus noise.
std::vector<double> RenderDigitImage(const std::vector<std::uint8_t>& stencil,
                                     const ImageShape& shape, int channel,
                                     double rotation_deg, double pixel_noise,
                                     Rng* rng);

/// Generates `count` digit stencils (height x width bitmaps as flat byte
/// vectors) by random walks; deterministic given the rng.
std::vector<std::vector<std::uint8_t>> MakeDigitStencils(
    std::size_t count, const ImageShape& shape, std::size_t pixels,
    Rng* rng);

}  // namespace faction

#endif  // FACTION_DATA_IMAGES_H_
