#include "data/scenario.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "common/rng.h"

namespace faction {

namespace {

// ------------------------------------------------------------ DSL parsing

// Strict double parse: the whole token must convert, finitely.
bool ParseDoubleStrict(const std::string& token, double* out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (errno == ERANGE || end != token.c_str() + token.size() ||
      !std::isfinite(value)) {
    return false;
  }
  *out = value;
  return true;
}

// Strict non-negative integer parse (digits only, no sign, no overflow).
bool ParseSizeStrict(const std::string& token, std::size_t* out) {
  if (token.empty() || token[0] == '-' || token[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (errno == ERANGE || end != token.c_str() + token.size()) return false;
  *out = static_cast<std::size_t>(value);
  return true;
}

Status BadSpec(const std::string& what, const std::string& token) {
  return Status::InvalidArgument("scenario: " + what + ": '" + token + "'");
}

bool IsKnownBase(const std::string& name) {
  if (name == "stationary") return true;
  for (const std::string& known : PaperDatasetNames()) {
    if (name == known) return true;
  }
  return false;
}

// Parses "drift=gradual:2"-style values: shape name plus an optional
// ":<count>" argument.
Status ParseDrift(const std::string& value, ScenarioConfig* config) {
  std::string shape = value;
  std::string arg;
  const std::size_t colon = value.find(':');
  if (colon != std::string::npos) {
    shape = value.substr(0, colon);
    arg = value.substr(colon + 1);
  }
  if (shape == "abrupt") {
    if (!arg.empty()) return BadSpec("drift=abrupt takes no argument", value);
    config->drift = ScenarioConfig::DriftShape::kAbrupt;
    return Status::Ok();
  }
  if (shape == "gradual") {
    config->drift = ScenarioConfig::DriftShape::kGradual;
    if (!arg.empty()) {
      if (!ParseSizeStrict(arg, &config->gradual_steps) ||
          config->gradual_steps == 0 || config->gradual_steps > 16) {
        return BadSpec("gradual steps must be an integer in [1, 16]", value);
      }
    }
    return Status::Ok();
  }
  if (shape == "recurring") {
    config->drift = ScenarioConfig::DriftShape::kRecurring;
    if (!arg.empty()) {
      if (!ParseSizeStrict(arg, &config->recurring_cycles) ||
          config->recurring_cycles == 0 || config->recurring_cycles > 16) {
        return BadSpec("recurring cycles must be an integer in [1, 16]",
                       value);
      }
    }
    return Status::Ok();
  }
  return BadSpec("unknown drift shape", value);
}

// --------------------------------------------------- blueprint transforms

// Signature of an environment for the adversarial ordering: the class-0
// mean plus the additive shift — the direction covariate drift actually
// moves the data.
std::vector<double> EnvSignature(const EnvironmentSpec& env) {
  std::vector<double> sig = env.class0_mean;
  for (std::size_t j = 0; j < env.shift.size() && j < sig.size(); ++j) {
    sig[j] += env.shift[j];
  }
  return sig;
}

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double d2 = 0.0;
  for (std::size_t j = 0; j < a.size() && j < b.size(); ++j) {
    const double d = a[j] - b[j];
    d2 += d * d;
  }
  return d2;
}

// Greedy max-distance walk: starting from the first task, repeatedly jump
// to the remaining task whose environment is farthest from the current one
// (ties by plan index). Maximizes consecutive environment change — the
// adversarial ordering for a drift adapter.
void AdversarialOrder(const std::vector<EnvironmentSpec>& envs,
                      std::vector<TaskPlan>* plan) {
  if (plan->size() < 3) return;
  std::vector<std::vector<double>> signatures;
  signatures.reserve(envs.size());
  for (const EnvironmentSpec& env : envs) {
    signatures.push_back(EnvSignature(env));
  }
  std::vector<TaskPlan> ordered;
  ordered.reserve(plan->size());
  std::vector<bool> used(plan->size(), false);
  std::size_t current = 0;
  used[0] = true;
  ordered.push_back((*plan)[0]);
  for (std::size_t step = 1; step < plan->size(); ++step) {
    const auto& cur_sig =
        signatures[static_cast<std::size_t>((*plan)[current].environment)];
    double best = -1.0;
    std::size_t best_idx = 0;
    for (std::size_t i = 0; i < plan->size(); ++i) {
      if (used[i]) continue;
      const double d2 = SquaredDistance(
          cur_sig,
          signatures[static_cast<std::size_t>((*plan)[i].environment)]);
      if (d2 > best) {
        best = d2;
        best_idx = i;
      }
    }
    used[best_idx] = true;
    ordered.push_back((*plan)[best_idx]);
    current = best_idx;
  }
  *plan = std::move(ordered);
}

void ShuffleOrder(std::uint64_t world_seed, const std::string& tag,
                  std::vector<TaskPlan>* plan) {
  Rng rng(SubSeed(world_seed, tag + "/scenario/order/shuffle"));
  std::vector<std::size_t> perm;
  rng.Permutation(plan->size(), &perm);
  std::vector<TaskPlan> shuffled;
  shuffled.reserve(plan->size());
  for (const std::size_t i : perm) shuffled.push_back((*plan)[i]);
  *plan = std::move(shuffled);
}

double Lerp(double a, double b, double t) { return a + t * (b - a); }

// A blend of two environments at fraction t in [0, 1]: continuous fields
// interpolate linearly; discrete structure (rotation, sensitive channel)
// comes from the nearer endpoint.
EnvironmentSpec BlendEnvironments(const EnvironmentSpec& from,
                                  const EnvironmentSpec& to, double t) {
  const EnvironmentSpec& nearer = t < 0.5 ? from : to;
  EnvironmentSpec env = nearer;
  for (std::size_t j = 0; j < env.class0_mean.size(); ++j) {
    env.class0_mean[j] = Lerp(from.class0_mean[j], to.class0_mean[j], t);
    env.class1_mean[j] = Lerp(from.class1_mean[j], to.class1_mean[j], t);
  }
  const std::size_t dim = env.class0_mean.size();
  std::vector<double> shift(dim, 0.0);
  for (std::size_t j = 0; j < dim; ++j) {
    const double sf = j < from.shift.size() ? from.shift[j] : 0.0;
    const double st = j < to.shift.size() ? to.shift[j] : 0.0;
    shift[j] = Lerp(sf, st, t);
  }
  env.shift = std::move(shift);
  env.noise = Lerp(from.noise, to.noise, t);
  env.bias = Lerp(from.bias, to.bias, t);
  env.positive_fraction =
      Lerp(from.positive_fraction, to.positive_fraction, t);
  return env;
}

// Inserts `steps` interpolated transition tasks at every boundary between
// tasks of different environments. Transition tasks record the nearer
// endpoint's environment id, so per-environment metrics stay attributable.
void GradualTransitions(std::size_t steps, StreamBlueprint* bp) {
  std::vector<TaskPlan> plan;
  plan.reserve(bp->plan.size() * (1 + steps));
  for (std::size_t i = 0; i < bp->plan.size(); ++i) {
    plan.push_back(bp->plan[i]);
    if (i + 1 >= bp->plan.size()) break;
    const TaskPlan& cur = bp->plan[i];
    const TaskPlan& next = bp->plan[i + 1];
    if (cur.environment == next.environment) continue;
    // By value: the push_back below may reallocate bp->environments.
    const EnvironmentSpec from =
        bp->environments[static_cast<std::size_t>(cur.environment)];
    const EnvironmentSpec to =
        bp->environments[static_cast<std::size_t>(next.environment)];
    for (std::size_t s = 1; s <= steps; ++s) {
      const double t =
          static_cast<double>(s) / static_cast<double>(steps + 1);
      TaskPlan tp;
      tp.environment = static_cast<int>(bp->environments.size());
      tp.num_samples = cur.num_samples;
      tp.record_environment =
          t < 0.5 ? cur.environment : next.environment;
      bp->environments.push_back(BlendEnvironments(from, to, t));
      plan.push_back(tp);
    }
  }
  bp->plan = std::move(plan);
}

void RecurringCycles(std::size_t cycles, StreamBlueprint* bp) {
  const std::vector<TaskPlan> once = bp->plan;
  bp->plan.clear();
  bp->plan.reserve(once.size() * cycles);
  for (std::size_t c = 0; c < cycles; ++c) {
    bp->plan.insert(bp->plan.end(), once.begin(), once.end());
  }
}

// Supervision lag: task i keeps its covariate environment but draws its
// label-coupling fields (bias, positive fraction) from the environment of
// task i-k — the label process a k-task-delayed oracle would exhibit.
void DelayLabels(std::size_t delay, StreamBlueprint* bp) {
  const std::vector<TaskPlan> plan = bp->plan;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const std::size_t lag_index = i >= delay ? i - delay : 0;
    const int cur_env = plan[i].environment;
    const int lag_env = plan[lag_index].environment;
    if (lag_env == cur_env) continue;
    EnvironmentSpec hybrid =
        bp->environments[static_cast<std::size_t>(cur_env)];
    const EnvironmentSpec& lagged =
        bp->environments[static_cast<std::size_t>(lag_env)];
    hybrid.bias = lagged.bias;
    hybrid.positive_fraction = lagged.positive_fraction;
    TaskPlan& tp = bp->plan[i];
    if (tp.record_environment < 0) tp.record_environment = cur_env;
    tp.environment = static_cast<int>(bp->environments.size());
    bp->environments.push_back(std::move(hybrid));
  }
}

// Flips each label with probability `p`, under a per-task sub-seed — the
// features stay bit-identical to the noise-free stream.
Result<std::vector<Dataset>> ApplyLabelNoise(
    std::vector<Dataset> tasks, double p, std::uint64_t world_seed,
    const std::string& tag) {
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    Rng rng(SubSeed(world_seed,
                    tag + "/scenario/label_noise/task/" + std::to_string(t)));
    Dataset noisy(tasks[t].dim());
    Example e;
    for (std::size_t i = 0; i < tasks[t].size(); ++i) {
      tasks[t].GetInto(i, &e);
      if (rng.Bernoulli(p)) e.label = 1 - e.label;
      FACTION_RETURN_IF_ERROR(noisy.Append(e));
    }
    tasks[t] = std::move(noisy);
  }
  return tasks;
}

}  // namespace

Result<ScenarioConfig> ParseScenario(const std::string& spec) {
  ScenarioConfig config;
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t semi = spec.find(';', start);
    const std::size_t end = semi == std::string::npos ? spec.size() : semi;
    tokens.push_back(spec.substr(start, end - start));
    if (semi == std::string::npos) break;
    start = semi + 1;
  }
  if (tokens.empty() || tokens[0].empty()) {
    return BadSpec("missing base dataset", spec);
  }
  if (!IsKnownBase(tokens[0])) {
    return BadSpec("unknown base dataset", tokens[0]);
  }
  config.base = tokens[0];

  std::set<std::string> seen;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token.empty()) return BadSpec("empty layer", spec);
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) return BadSpec("layer needs key=value",
                                                token);
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (!seen.insert(key).second) return BadSpec("duplicate layer", key);
    if (key == "drift") {
      FACTION_RETURN_IF_ERROR(ParseDrift(value, &config));
    } else if (key == "order") {
      if (value == "plan") {
        config.order = ScenarioConfig::TaskOrder::kPlan;
      } else if (value == "adversarial") {
        config.order = ScenarioConfig::TaskOrder::kAdversarial;
      } else if (value == "shuffle") {
        config.order = ScenarioConfig::TaskOrder::kShuffle;
      } else {
        return BadSpec("unknown task order", value);
      }
    } else if (key == "label_noise") {
      if (!ParseDoubleStrict(value, &config.label_noise) ||
          config.label_noise < 0.0 || config.label_noise > 0.5) {
        return BadSpec("label_noise must be a number in [0, 0.5]", value);
      }
    } else if (key == "label_delay") {
      if (!ParseSizeStrict(value, &config.label_delay)) {
        return BadSpec("label_delay must be a non-negative integer", value);
      }
    } else if (key == "imbalance") {
      if (!ParseDoubleStrict(value, &config.group_imbalance) ||
          config.group_imbalance < 0.0 || config.group_imbalance > 0.9) {
        return BadSpec("imbalance must be a number in [0, 0.9]", value);
      }
    } else {
      return BadSpec("unknown layer key", key);
    }
  }
  return config;
}

std::string CanonicalScenarioSpec(const ScenarioConfig& config) {
  std::string spec = config.base;
  switch (config.drift) {
    case ScenarioConfig::DriftShape::kAbrupt:
      break;
    case ScenarioConfig::DriftShape::kGradual:
      spec += ";drift=gradual:" + std::to_string(config.gradual_steps);
      break;
    case ScenarioConfig::DriftShape::kRecurring:
      spec += ";drift=recurring:" + std::to_string(config.recurring_cycles);
      break;
  }
  switch (config.order) {
    case ScenarioConfig::TaskOrder::kPlan:
      break;
    case ScenarioConfig::TaskOrder::kAdversarial:
      spec += ";order=adversarial";
      break;
    case ScenarioConfig::TaskOrder::kShuffle:
      spec += ";order=shuffle";
      break;
  }
  // Short round-trippable decimals: the config values come from the parser,
  // so %g at default precision reproduces them.
  char buf[48];
  if (config.label_noise > 0.0) {
    std::snprintf(buf, sizeof(buf), ";label_noise=%g", config.label_noise);
    spec += buf;
  }
  if (config.label_delay > 0) {
    spec += ";label_delay=" + std::to_string(config.label_delay);
  }
  if (config.group_imbalance > 0.0) {
    std::snprintf(buf, sizeof(buf), ";imbalance=%g", config.group_imbalance);
    spec += buf;
  }
  return spec;
}

Result<StreamBlueprint> BuildScenarioBlueprint(const ScenarioConfig& config,
                                               const StreamScale& scale) {
  FACTION_ASSIGN_OR_RETURN(StreamBlueprint bp,
                           MakePaperBlueprint(config.base, scale));
  switch (config.order) {
    case ScenarioConfig::TaskOrder::kPlan:
      break;
    case ScenarioConfig::TaskOrder::kAdversarial:
      AdversarialOrder(bp.environments, &bp.plan);
      break;
    case ScenarioConfig::TaskOrder::kShuffle:
      ShuffleOrder(bp.world_seed, bp.tag, &bp.plan);
      break;
  }
  switch (config.drift) {
    case ScenarioConfig::DriftShape::kAbrupt:
      break;
    case ScenarioConfig::DriftShape::kGradual:
      GradualTransitions(config.gradual_steps, &bp);
      break;
    case ScenarioConfig::DriftShape::kRecurring:
      RecurringCycles(config.recurring_cycles, &bp);
      break;
  }
  if (config.label_delay > 0) DelayLabels(config.label_delay, &bp);
  if (config.group_imbalance > 0.0) {
    for (EnvironmentSpec& env : bp.environments) {
      env.group_rate_scale = 1.0 - config.group_imbalance;
    }
  }
  return bp;
}

Result<std::vector<Dataset>> MakeScenarioStream(const ScenarioConfig& config,
                                                const StreamScale& scale) {
  FACTION_ASSIGN_OR_RETURN(StreamBlueprint bp,
                           BuildScenarioBlueprint(config, scale));
  FACTION_ASSIGN_OR_RETURN(std::vector<Dataset> tasks,
                           MaterializeStream(bp));
  if (config.label_noise > 0.0) {
    return ApplyLabelNoise(std::move(tasks), config.label_noise,
                           bp.world_seed, bp.tag);
  }
  return tasks;
}

Result<std::vector<Dataset>> MakeScenarioStream(const std::string& spec,
                                                const StreamScale& scale) {
  FACTION_ASSIGN_OR_RETURN(ScenarioConfig config, ParseScenario(spec));
  return MakeScenarioStream(config, scale);
}

const std::vector<std::string>& ScenarioPresetSpecs() {
  static const std::vector<std::string> specs = {
      "stationary",
      "rcmnist",
      "rcmnist;drift=recurring:2;order=adversarial",
      "nysf;drift=gradual:2",
      "fairface;order=shuffle;label_noise=0.05",
      "celeba;label_delay=1;imbalance=0.3",
  };
  return specs;
}

}  // namespace faction
