#include "tensor/simd.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/logging.h"
#include "common/telemetry.h"

namespace faction {

// Per-tier tables, defined by simd_kernels.inc under tier namespaces. The
// wide tiers exist only when the compiler accepted the matching -m flag;
// their code is reached exclusively through these tables, after the cpuid
// check below — never before dispatch.
namespace simd_generic {
const SimdKernels& Kernels();
}  // namespace simd_generic
#if defined(FACTION_SIMD_HAVE_AVX2)
namespace simd_avx2 {
const SimdKernels& Kernels();
}  // namespace simd_avx2
#endif
#if defined(FACTION_SIMD_HAVE_AVX512)
namespace simd_avx512 {
const SimdKernels& Kernels();
}  // namespace simd_avx512
#endif

namespace {

std::atomic<const SimdKernels*> g_active{nullptr};

const SimdKernels* TableFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kGeneric:
      return &simd_generic::Kernels();
    case SimdLevel::kAvx2:
#if defined(FACTION_SIMD_HAVE_AVX2)
      return &simd_avx2::Kernels();
#else
      return nullptr;
#endif
    case SimdLevel::kAvx512:
#if defined(FACTION_SIMD_HAVE_AVX512)
      return &simd_avx512::Kernels();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

bool CpuSupports(SimdLevel level) {
  switch (level) {
    case SimdLevel::kGeneric:
      return true;
    case SimdLevel::kAvx2:
#if defined(FACTION_SIMD_HAVE_AVX2)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdLevel::kAvx512:
#if defined(FACTION_SIMD_HAVE_AVX512)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

SimdLevel HighestSupported() {
  if (SimdLevelSupported(SimdLevel::kAvx512)) return SimdLevel::kAvx512;
  if (SimdLevelSupported(SimdLevel::kAvx2)) return SimdLevel::kAvx2;
  return SimdLevel::kGeneric;
}

// First-use resolution: FACTION_SIMD_LEVEL when set and usable, otherwise
// the widest tier this binary and CPU support. Concurrent first calls
// resolve to the same table, so the benign store race is harmless.
const SimdKernels* Resolve() {
  SimdLevel level = HighestSupported();
  const char* env = std::getenv("FACTION_SIMD_LEVEL");
  if (env != nullptr && *env != '\0') {
    Result<SimdLevel> parsed = ParseSimdLevel(env);
    if (!parsed.ok()) {
      FACTION_LOG(kWarning) << "FACTION_SIMD_LEVEL=" << env
                            << " not recognized; using "
                            << SimdLevelName(level);
    } else if (!SimdLevelSupported(parsed.value())) {
      FACTION_LOG(kWarning) << "FACTION_SIMD_LEVEL=" << env
                            << " not supported on this host; using "
                            << SimdLevelName(level);
    } else {
      level = parsed.value();
    }
  }
  return TableFor(level);
}

}  // namespace

const SimdKernels& ActiveSimd() {
  const SimdKernels* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    table = Resolve();
    g_active.store(table, std::memory_order_release);
  }
  return *table;
}

SimdLevel ActiveSimdLevel() { return ActiveSimd().level; }

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kGeneric:
      return "generic";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool SimdLevelSupported(SimdLevel level) {
  return TableFor(level) != nullptr && CpuSupports(level);
}

Result<SimdLevel> ParseSimdLevel(const std::string& value) {
  if (value == "generic") return SimdLevel::kGeneric;
  if (value == "avx2") return SimdLevel::kAvx2;
  if (value == "avx512") return SimdLevel::kAvx512;
  if (value == "native") return HighestSupported();
  return Status::InvalidArgument("unknown SIMD level: " + value);
}

Status SetSimdLevel(SimdLevel level) {
  if (!SimdLevelSupported(level)) {
    return Status::InvalidArgument(std::string("SIMD level not supported: ") +
                                   SimdLevelName(level));
  }
  g_active.store(TableFor(level), std::memory_order_release);
  return Status::Ok();
}

void PublishSimdTelemetry() {
  const SimdKernels& kernels = ActiveSimd();
  TelemetryGauge("simd.dispatch_level", static_cast<double>(kernels.level));
  TelemetryCount((std::string("simd.dispatch.") + kernels.name).c_str());
}

}  // namespace faction
