#include "tensor/simd.h"

#include <atomic>
#include <mutex>
#include <cstdlib>
#include <string>

#include "common/logging.h"
#include "common/telemetry.h"

namespace faction {

// Per-tier tables, defined by simd_kernels.inc under tier namespaces. The
// wide tiers exist only when the compiler accepted the matching -m flag;
// their code is reached exclusively through these tables, after the cpuid
// check below — never before dispatch.
namespace simd_generic {
const SimdKernels& Kernels();
}  // namespace simd_generic
#if defined(FACTION_SIMD_HAVE_AVX2)
namespace simd_avx2 {
const SimdKernels& Kernels();
}  // namespace simd_avx2
#endif
#if defined(FACTION_SIMD_HAVE_AVX512)
namespace simd_avx512 {
const SimdKernels& Kernels();
}  // namespace simd_avx512
#endif

namespace {

std::atomic<const SimdKernels*> g_active{nullptr};

bool CpuSupports(SimdLevel level);

const SimdKernels* BaseTableFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kGeneric:
      return &simd_generic::Kernels();
    case SimdLevel::kAvx2:
#if defined(FACTION_SIMD_HAVE_AVX2)
      return &simd_avx2::Kernels();
#else
      return nullptr;
#endif
    case SimdLevel::kAvx512:
#if defined(FACTION_SIMD_HAVE_AVX512)
      return &simd_avx512::Kernels();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

// Per-kernel dispatch for the blocked log-pdf solve. The triangular
// solves run at the model dimension (d=16 doubles): one column of the
// solve fills barely two zmm registers' worth of work, so 512-bit width
// buys nothing there while 512-bit instruction use can license-downclock
// the core around it. Measured on the fleet host, the avx512 table with
// avx2's solve wins pool scoring by ~1.2x over the all-avx512 table
// (BENCH_PR5 recorded the same ratio), so by default the avx512 tier
// borrows the avx2 solve kernel; GEMM-bound kernels keep their 512-bit
// versions, which still win. FACTION_SIMD_LOGPDF_LEVEL ("generic" |
// "avx2" | "avx512", read once at first dispatch) pins the solve kernel
// of EVERY tier's table instead — "avx512" restores the uniform table on
// hosts that do not downclock. Every tier is bitwise-identical by
// contract (simd_kernels.inc), so borrowing a kernel across tiers can
// never change an output — only its speed.
//
// Deliberately avoids ParseSimdLevel/SimdLevelSupported here: both call
// back into TableFor, which would re-enter this magic static while it
// is still initializing.
struct LogPdfOverride {
  bool active = false;
  SimdLevel level = SimdLevel::kGeneric;
};

const LogPdfOverride& GetLogPdfOverride() {
  static const LogPdfOverride resolved = [] {
    LogPdfOverride o;
    const char* env = std::getenv("FACTION_SIMD_LOGPDF_LEVEL");
    if (env == nullptr || *env == '\0') return o;
    const std::string value(env);
    SimdLevel level;
    if (value == "generic") {
      level = SimdLevel::kGeneric;
    } else if (value == "avx2") {
      level = SimdLevel::kAvx2;
    } else if (value == "avx512") {
      level = SimdLevel::kAvx512;
    } else {
      FACTION_LOG(kWarning) << "FACTION_SIMD_LOGPDF_LEVEL=" << value
                            << " not recognized; using per-tier kernels";
      return o;
    }
    if (BaseTableFor(level) == nullptr || !CpuSupports(level)) {
      FACTION_LOG(kWarning) << "FACTION_SIMD_LOGPDF_LEVEL=" << value
                            << " not supported on this host; using "
                            << "per-tier kernels";
      return o;
    }
    o.active = true;
    o.level = level;
    return o;
  }();
  return resolved;
}

// Tier whose logpdf_block the `level` table should carry: the pinned
// tier when FACTION_SIMD_LOGPDF_LEVEL is set, otherwise avx2 for the
// avx512 table (the measured-fastest default above) and the tier's own
// kernel everywhere else.
SimdLevel LogPdfLevelFor(SimdLevel level) {
  const LogPdfOverride& pinned = GetLogPdfOverride();
  if (pinned.active) return pinned.level;
  if (level == SimdLevel::kAvx512 &&
      BaseTableFor(SimdLevel::kAvx2) != nullptr &&
      CpuSupports(SimdLevel::kAvx2)) {
    return SimdLevel::kAvx2;
  }
  return level;
}

const SimdKernels* TableFor(SimdLevel level) {
  const SimdKernels* base = BaseTableFor(level);
  if (base == nullptr) return nullptr;
  const SimdLevel solve_level = LogPdfLevelFor(level);
  if (solve_level == level) return base;
  // One patched copy per tier, built on first use. The name/level fields
  // keep the host tier's identity: the table still *is* that dispatch
  // tier, with one kernel borrowed.
  static SimdKernels patched[3];
  static std::once_flag once[3];
  const int idx = static_cast<int>(level);
  std::call_once(once[idx], [base, solve_level, idx] {
    patched[idx] = *base;
    // The two triangular-solve kernels travel together: both run at the
    // model dimension, so whatever tier wins (or is pinned) for the
    // log-pdf solve is right for the downdate guard solve too.
    patched[idx].logpdf_block = BaseTableFor(solve_level)->logpdf_block;
    patched[idx].downdate_solve = BaseTableFor(solve_level)->downdate_solve;
  });
  return &patched[idx];
}

bool CpuSupports(SimdLevel level) {
  switch (level) {
    case SimdLevel::kGeneric:
      return true;
    case SimdLevel::kAvx2:
#if defined(FACTION_SIMD_HAVE_AVX2)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdLevel::kAvx512:
#if defined(FACTION_SIMD_HAVE_AVX512)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

SimdLevel HighestSupported() {
  if (SimdLevelSupported(SimdLevel::kAvx512)) return SimdLevel::kAvx512;
  if (SimdLevelSupported(SimdLevel::kAvx2)) return SimdLevel::kAvx2;
  return SimdLevel::kGeneric;
}

// First-use resolution: FACTION_SIMD_LEVEL when set and usable, otherwise
// the widest tier this binary and CPU support. Concurrent first calls
// resolve to the same table, so the benign store race is harmless.
const SimdKernels* Resolve() {
  SimdLevel level = HighestSupported();
  const char* env = std::getenv("FACTION_SIMD_LEVEL");
  if (env != nullptr && *env != '\0') {
    Result<SimdLevel> parsed = ParseSimdLevel(env);
    if (!parsed.ok()) {
      FACTION_LOG(kWarning) << "FACTION_SIMD_LEVEL=" << env
                            << " not recognized; using "
                            << SimdLevelName(level);
    } else if (!SimdLevelSupported(parsed.value())) {
      FACTION_LOG(kWarning) << "FACTION_SIMD_LEVEL=" << env
                            << " not supported on this host; using "
                            << SimdLevelName(level);
    } else {
      level = parsed.value();
    }
  }
  return TableFor(level);
}

}  // namespace

const SimdKernels& ActiveSimd() {
  const SimdKernels* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    table = Resolve();
    g_active.store(table, std::memory_order_release);
  }
  return *table;
}

SimdLevel ActiveSimdLevel() { return ActiveSimd().level; }

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kGeneric:
      return "generic";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool SimdLevelSupported(SimdLevel level) {
  return TableFor(level) != nullptr && CpuSupports(level);
}

Result<SimdLevel> ParseSimdLevel(const std::string& value) {
  if (value == "generic") return SimdLevel::kGeneric;
  if (value == "avx2") return SimdLevel::kAvx2;
  if (value == "avx512") return SimdLevel::kAvx512;
  if (value == "native") return HighestSupported();
  return Status::InvalidArgument("unknown SIMD level: " + value);
}

Status SetSimdLevel(SimdLevel level) {
  if (!SimdLevelSupported(level)) {
    return Status::InvalidArgument(std::string("SIMD level not supported: ") +
                                   SimdLevelName(level));
  }
  g_active.store(TableFor(level), std::memory_order_release);
  return Status::Ok();
}

void PublishSimdTelemetry() {
  const SimdKernels& kernels = ActiveSimd();
  TelemetryGauge("simd.dispatch_level", static_cast<double>(kernels.level));
  TelemetryCount((std::string("simd.dispatch.") + kernels.name).c_str());
}

}  // namespace faction
