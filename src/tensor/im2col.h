#ifndef FACTION_TENSOR_IM2COL_H_
#define FACTION_TENSOR_IM2COL_H_

#include <cstddef>

namespace faction {

/// Geometry of a 2-D convolution over CHW-flattened images. Generalizes the
/// fixed 3x3/stride-1/pad-1 case used by Conv2d so the lowering kernels can
/// be exercised (and parity-tested) on odd shapes, strides, and paddings.
struct ConvGeometry {
  std::size_t in_channels = 1;
  std::size_t height = 1;
  std::size_t width = 1;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t pad = 1;

  std::size_t OutHeight() const {
    return (height + 2 * pad - kernel) / stride + 1;
  }
  std::size_t OutWidth() const {
    return (width + 2 * pad - kernel) / stride + 1;
  }
  /// Elements in one input image (in_channels x height x width).
  std::size_t InFlat() const { return in_channels * height * width; }
  /// Elements in one receptive-field patch (in_channels x kernel x kernel);
  /// the K dimension of the lowered GEMM.
  std::size_t PatchSize() const { return in_channels * kernel * kernel; }
  /// Output positions per channel (the N dimension of the lowered GEMM).
  std::size_t OutPositions() const { return OutHeight() * OutWidth(); }

  /// True when the kernel fits the padded image and stride/kernel are
  /// nonzero — the precondition of every kernel below.
  bool Valid() const {
    return in_channels > 0 && kernel > 0 && stride > 0 &&
           height + 2 * pad >= kernel && width + 2 * pad >= kernel;
  }
};

/// Lowers one CHW image (g.InFlat() doubles) into patch-major column form:
/// col has shape (PatchSize x OutPositions), row k = (ic*kernel+dr)*kernel+dc
/// holding the input tap at kernel offset (dr,dc) of channel ic for every
/// output position in row-major (OutHeight, OutWidth) order. Padding taps
/// are written as +0.0. `col` must hold PatchSize()*OutPositions() doubles;
/// every element is overwritten.
void Im2Col(const double* img, const ConvGeometry& g, double* col);

/// Same lowering but position-major: col has shape
/// (OutPositions x PatchSize), row o holding the full receptive-field patch
/// of output position o. This is the layout the weight-gradient GEMM wants
/// (unit-stride over the patch axis). Every element is overwritten.
void Im2ColRows(const double* img, const ConvGeometry& g, double* col);

/// Adjoint of Im2Col: scatter-adds a patch-major column buffer back into
/// image form. `img` (g.InFlat() doubles) is zeroed first, then every
/// in-bounds tap of `col` (PatchSize x OutPositions) is accumulated in
/// ascending (k, o) order; padding taps are dropped. Note: Col2Im sums the
/// contributions to one pixel in (k, o) order, which is NOT the (oc, o, k)
/// order the naive convolution backward uses — the bitwise-parity dX path
/// in conv_kernels.cc therefore uses a padded scatter instead. Col2Im is
/// the general-purpose adjoint, used by tests to pin the im2col/col2im
/// pair to the gather/scatter identity.
void Col2Im(const double* col, const ConvGeometry& g, double* img);

}  // namespace faction

#endif  // FACTION_TENSOR_IM2COL_H_
