#ifndef FACTION_TENSOR_LINALG_H_
#define FACTION_TENSOR_LINALG_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "tensor/matrix.h"

namespace faction {

/// Cholesky factor L (lower triangular, A = L L^T) of a symmetric
/// positive-definite matrix. Fails with NumericalError when A is not SPD
/// within tolerance.
Result<Matrix> Cholesky(const Matrix& a);

/// As Cholesky, writing the factor into *l (resized to n x n; capacity is
/// retained so refactorizations of a warm buffer allocate nothing).
/// Bitwise-identical to Cholesky: same elimination order, same pivots.
Status CholeskyInto(const Matrix& a, Matrix* l);

/// Solves L y = b for lower-triangular L (forward substitution).
std::vector<double> ForwardSolve(const Matrix& lower,
                                 const std::vector<double>& b);

/// In-place forward substitution: overwrites b[0, n) with the solution of
/// L y = b. The update order (ascending i, inner k < i) reads only already
/// finalized entries, so aliasing input and output is exact — the
/// arithmetic sequence matches ForwardSolve bit for bit.
void ForwardSolveInPlace(const Matrix& lower, double* b, std::size_t n);

/// Solves L^T x = y for lower-triangular L (back substitution on the
/// transpose).
std::vector<double> BackSolveTranspose(const Matrix& lower,
                                       const std::vector<double>& y);

/// Solves A x = b given the Cholesky factor of SPD A.
std::vector<double> CholeskySolve(const Matrix& lower,
                                  const std::vector<double>& b);

/// log(det(A)) from the Cholesky factor: 2 * sum(log(L_ii)).
double LogDetFromCholesky(const Matrix& lower);

/// Rank-1 Cholesky update: given lower-triangular L with A = L L^T,
/// rewrites L in place so that L L^T = A + v v^T. O(n^2) Givens-style
/// sweep (ascending column k, then ascending row i within the column — a
/// fixed scalar operation order, so results are bitwise identical across
/// builds and thread counts). `v` (length n) is clobbered. Cannot fail:
/// adding v v^T keeps A positive definite.
void CholeskyRank1UpdateInPlace(Matrix* l, double* v, std::size_t n);

/// Rank-1 Cholesky downdate: rewrites L in place so that L L^T = A - v v^T,
/// via the LINPACK-style hyperbolic sweep (same fixed operation order as
/// the update). Fails with NumericalError when A - v v^T is not positive
/// definite within tolerance — a pivot would go non-positive. On failure L
/// is partially mutated and must be refactored by the caller. `v` (length
/// n) is clobbered.
Status CholeskyRank1DowndateInPlace(Matrix* l, double* v, std::size_t n);

/// Inverse of an SPD matrix via its Cholesky factorization.
Result<Matrix> SpdInverse(const Matrix& a);

/// Result of a power-iteration estimate of the largest singular value.
struct SpectralEstimate {
  double sigma = 0.0;            ///< estimated largest singular value
  std::vector<double> u;         ///< left singular vector estimate
  std::vector<double> v;         ///< right singular vector estimate
};

/// Estimates the spectral norm (largest singular value) of `w` by power
/// iteration, warm-started from `u0` when its size matches w.rows(). This is
/// the primitive behind spectral normalization in the feature extractor
/// (Miyato et al., as adopted by the paper's DDU-style backbone).
SpectralEstimate PowerIteration(const Matrix& w, const std::vector<double>& u0,
                                int iters, Rng* rng);

/// Allocation-free PowerIteration: est->u/est->v double as the working
/// buffers. Warm-starts from est->u when its size matches w.rows()
/// (otherwise fills it from `rng`), so a persistent SpectralEstimate gives
/// the classic spectral-normalization warm restart without per-call heap
/// traffic. Identical arithmetic to PowerIteration.
void PowerIterationInto(const Matrix& w, int iters, Rng* rng,
                        SpectralEstimate* est);

}  // namespace faction

#endif  // FACTION_TENSOR_LINALG_H_
