// Portable tier: 128-bit vectors, no extra -m flags. Always compiled and
// always runnable — the dispatch fallback on any CPU.

#define FACTION_SIMD_NAMESPACE simd_generic
#define FACTION_SIMD_LANES 2
#define FACTION_SIMD_LEVEL_ENUM SimdLevel::kGeneric
#define FACTION_SIMD_LEVEL_NAME "generic"

#include "tensor/simd_kernels.inc"
