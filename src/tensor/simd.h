#ifndef FACTION_TENSOR_SIMD_H_
#define FACTION_TENSOR_SIMD_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace faction {

/// Vector instruction tiers the SIMD compute layer can dispatch to. Every
/// tier computes bitwise-identical results (see simd_kernels.inc): the
/// kernels vectorize only across independent output elements, so the lane
/// width never changes any element's accumulation order. kGeneric is
/// plain 128-bit (SSE2-era) code compiled without extra -m flags and is
/// always available; the wider tiers are compiled into dedicated
/// translation units and selected at runtime via cpuid.
enum class SimdLevel : int {
  kGeneric = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// Function-pointer table of the level-specialized kernels. One table per
/// compiled tier; ActiveSimd() returns the dispatched one. All kernels are
/// deterministic for any thread count and bitwise-identical across levels.
///
/// Packed-GEMM layout: B (kk x n, row-major) is packed into ceil(n/n_tile)
/// contiguous panels; panel t holds columns [t*n_tile, (t+1)*n_tile) in
/// k-major order with the ragged last panel zero-padded. Padded lanes are
/// computed but never stored, so they cannot affect results.
struct SimdKernels {
  SimdLevel level;
  const char* name;     ///< "generic" | "avx2" | "avx512"
  std::size_t lanes;    ///< doubles per vector register
  std::size_t n_tile;   ///< packed panel width in columns (2 * lanes)

  /// Packs b (kk x n row-major) into zero-padded k-major panels.
  void (*pack_b)(const double* b, std::size_t kk, std::size_t n, double* bp);
  /// Packs b (bn x kk row-major) as b^T panels: panel t row k holds
  /// b[t*n_tile + j][k] for j in [0, n_tile), zero-padded.
  void (*pack_bt)(const double* b, std::size_t bn, std::size_t kk,
                  double* bp);
  /// Rows [r0, r1) of c = a * b from packed panels. Per output element the
  /// k order is the blocked reference's: ascending 4-wide quads combined
  /// (a0*b0 + a1*b1) + (a2*b2 + a3*b3), then a scalar tail.
  void (*matmul_rows)(const double* a, const double* bp, double* c,
                      std::size_t r0, std::size_t r1, std::size_t n,
                      std::size_t kk);
  /// Rows [r0, r1) of c = a * b^T from pack_bt panels. Per element: four
  /// quad partial sums combined (s0+s1)+(s2+s3), then a scalar tail.
  void (*matmul_bt_rows)(const double* a, const double* btp, double* c,
                         std::size_t r0, std::size_t r1, std::size_t bn,
                         std::size_t kk);
  /// Output rows [c0, c1) of c = a^T * b, unpacked operands (a is m x ac,
  /// b is m x n). Per element: single mul-add per ascending k from zero.
  void (*matmul_at_cols)(const double* a, std::size_t ac, const double* b,
                         double* c, std::size_t m, std::size_t n,
                         std::size_t c0, std::size_t c1);
  /// y (oc x ohw) = w (oc x patch) @ col (patch x ohw) + bias broadcast.
  /// Per element: acc = bias, then single mul-add per ascending k — the
  /// naive conv kernel's order.
  void (*conv_forward)(const double* w, const double* col,
                       const double* bias, double* y, std::size_t oc,
                       std::size_t patch, std::size_t ohw);
  /// y[i] += a * x[i].
  void (*axpy)(double a, const double* x, double* y, std::size_t n);
  /// x[i] /= s (kept as a division — not a reciprocal multiply — to match
  /// the scalar reference bitwise).
  void (*divide)(double* x, std::size_t n, double s);
  /// max over x[0..n), n >= 1. Value-equal to the sequential std::max scan
  /// (may differ only in the sign of a +-0.0 result; see simd_kernels.inc
  /// for why that cannot reach any observable output).
  double (*row_max)(const double* x, std::size_t n);
  /// Blocked lower-triangular forward solve + Mahalanobis term for a
  /// dim-major block ys (d x width): in-place L y = c per sample column,
  /// then out[t] = -0.5 * (base + sum_j ys[j][t]^2). Per sample this is
  /// the exact operation order of Gaussian::ForwardSolve.
  ///
  /// This slot dispatches per kernel, not per table. The solve runs at
  /// the model dimension (d=16), where 512-bit width buys nothing and
  /// license-downclocking can tax everything nearby, so by default the
  /// avx512 table borrows the avx2 tier's solve (measured ~1.2x faster
  /// pool scoring) while keeping its own GEMM kernels. Setting
  /// FACTION_SIMD_LOGPDF_LEVEL ("generic" | "avx2" | "avx512", read
  /// once at first dispatch) pins every table's solve to that tier
  /// instead — "avx512" restores the uniform avx512 table. Either way
  /// the choice is bitwise-neutral by the cross-tier parity contract —
  /// it changes speed, never results.
  void (*logpdf_block)(const double* chol, std::size_t d, double* ys,
                       std::size_t width, double base, double* out);
  /// Blocked lower-triangular forward solve + squared norm for a dim-major
  /// block vs (d x width): in-place L p = v per guard-vector column, then
  /// pnorm2[t] = sum_j vs[j][t]^2 in ascending j. The first half of a
  /// rank-1 Cholesky downdate: the norm drives the positive-definiteness
  /// guard (Gaussian::DowndateOne), so the cross-tier bitwise contract is
  /// load-bearing — the guard's *branch* must be identical at every tier.
  /// Shares logpdf_block's per-kernel dispatch (the same triangular-solve
  /// shape at the model dimension): by default the avx512 table borrows
  /// the avx2 kernel, and FACTION_SIMD_LOGPDF_LEVEL pins both solve slots
  /// together.
  void (*downdate_solve)(const double* chol, std::size_t d, double* vs,
                         std::size_t width, double* pnorm2);
};

/// Number of doubles a pack_b/pack_bt destination buffer must hold.
inline std::size_t SimdPackedCount(const SimdKernels& k, std::size_t kk,
                                   std::size_t n) {
  const std::size_t tiles = (n + k.n_tile - 1) / k.n_tile;
  return tiles * kk * k.n_tile;
}

/// The dispatched kernel table. First call resolves the level: the
/// FACTION_SIMD_LEVEL environment variable ("generic", "avx2", "avx512",
/// or "native") when set and supported, otherwise the widest tier this
/// binary and CPU support. Unsupported requests log a warning and fall
/// back to the widest supported tier. Thread-safe; the resolved table is
/// cached until SetSimdLevel overrides it.
const SimdKernels& ActiveSimd();

/// Level of the table ActiveSimd() currently returns.
SimdLevel ActiveSimdLevel();

/// "generic" / "avx2" / "avx512".
const char* SimdLevelName(SimdLevel level);

/// True when the tier is both compiled into this binary and supported by
/// the running CPU. kGeneric is always supported.
bool SimdLevelSupported(SimdLevel level);

/// Parses a FACTION_SIMD_LEVEL value. "native" maps to the widest tier the
/// binary and CPU support; unknown strings are an InvalidArgument error.
Result<SimdLevel> ParseSimdLevel(const std::string& value);

/// Re-dispatches to an explicit tier (parity tests, per-level benchmarks).
/// InvalidArgument when the tier is not supported on this host.
Status SetSimdLevel(SimdLevel level);

/// Records the dispatched tier in the telemetry registry (gauge
/// "simd.dispatch_level" plus a counter named after the tier). Call sites
/// that start a run (OnlineLearner, faction_cli) publish once so the
/// "## Telemetry" report shows which kernels executed.
void PublishSimdTelemetry();

}  // namespace faction

#endif  // FACTION_TENSOR_SIMD_H_
