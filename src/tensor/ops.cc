#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/parallel.h"

namespace faction {

namespace {

// Parallel grain sizes. Chunk layout depends only on these constants and
// the problem shape — never on the thread count — which is what keeps every
// op bitwise deterministic across thread counts (see common/parallel.h).
constexpr std::size_t kGemmRowGrain = 8;   // output rows per chunk
constexpr std::size_t kGemmKBlock = 64;    // k panel kept hot across rows
constexpr std::size_t kRowGrain = 64;      // rows per chunk, rowwise ops
constexpr std::size_t kColGrain = 64;      // cols per chunk, columnwise ops
constexpr std::size_t kElemGrain = 1 << 14;  // flat elements per chunk
constexpr std::size_t kTransposeTile = 32;

// The *Into ops hand out caller-owned buffers; writing through an aliased
// output would corrupt the inputs mid-kernel, so the overlap is a
// programmer error checked at entry.
inline void CheckNoAlias(const Matrix& in, const Matrix* out) {
  FACTION_CHECK(&in != out);
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix out;
  MatMulInto(a, b, &out);
  return out;
}

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  FACTION_CHECK_EQ(a.cols(), b.rows());
  CheckNoAlias(a, out);
  CheckNoAlias(b, out);
  out->Resize(a.rows(), b.cols());  // kernel accumulates: needs zeros
  const std::size_t kk = a.cols();
  const std::size_t nn = b.cols();
  // Cache-blocked ikj kernel, parallel over row panels: each output row is
  // produced by exactly one chunk, and the k accumulation order is fixed by
  // the block size and the 4-wide unroll, so the result is identical for
  // any thread count. The inner loop is a dense 4-row axpy — no zero-skip
  // branch (it mispredicts on dense data).
  ParallelFor(0, a.rows(), kGemmRowGrain,
              [&](std::size_t r0, std::size_t r1) {
    for (std::size_t k0 = 0; k0 < kk; k0 += kGemmKBlock) {
      const std::size_t k1 = std::min(kk, k0 + kGemmKBlock);
      for (std::size_t i = r0; i < r1; ++i) {
        const double* arow = a.row_data(i);
        double* orow = out->row_data(i);
        std::size_t k = k0;
        for (; k + 4 <= k1; k += 4) {
          const double a0 = arow[k];
          const double a1 = arow[k + 1];
          const double a2 = arow[k + 2];
          const double a3 = arow[k + 3];
          const double* b0 = b.row_data(k);
          const double* b1 = b.row_data(k + 1);
          const double* b2 = b.row_data(k + 2);
          const double* b3 = b.row_data(k + 3);
          for (std::size_t j = 0; j < nn; ++j) {
            orow[j] +=
                (a0 * b0[j] + a1 * b1[j]) + (a2 * b2[j] + a3 * b3[j]);
          }
        }
        for (; k < k1; ++k) {
          const double ak = arow[k];
          const double* brow = b.row_data(k);
          for (std::size_t j = 0; j < nn; ++j) orow[j] += ak * brow[j];
        }
      }
    }
  });
}

Matrix MatMulBt(const Matrix& a, const Matrix& b) {
  Matrix out;
  MatMulBtInto(a, b, &out);
  return out;
}

void MatMulBtInto(const Matrix& a, const Matrix& b, Matrix* out) {
  FACTION_CHECK_EQ(a.cols(), b.cols());
  CheckNoAlias(a, out);
  CheckNoAlias(b, out);
  out->ResizeForOverwrite(a.rows(), b.rows());  // every element assigned
  const std::size_t kk = a.cols();
  ParallelFor(0, a.rows(), kGemmRowGrain,
              [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const double* arow = a.row_data(i);
      double* orow = out->row_data(i);
      for (std::size_t j = 0; j < b.rows(); ++j) {
        const double* brow = b.row_data(j);
        // Four partial dot products combined in a fixed order.
        double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
        std::size_t k = 0;
        for (; k + 4 <= kk; k += 4) {
          s0 += arow[k] * brow[k];
          s1 += arow[k + 1] * brow[k + 1];
          s2 += arow[k + 2] * brow[k + 2];
          s3 += arow[k + 3] * brow[k + 3];
        }
        double acc = (s0 + s1) + (s2 + s3);
        for (; k < kk; ++k) acc += arow[k] * brow[k];
        orow[j] = acc;
      }
    }
  });
}

Matrix MatMulAt(const Matrix& a, const Matrix& b) {
  Matrix out;
  MatMulAtInto(a, b, &out);
  return out;
}

void MatMulAtInto(const Matrix& a, const Matrix& b, Matrix* out) {
  FACTION_CHECK_EQ(a.rows(), b.rows());
  CheckNoAlias(a, out);
  CheckNoAlias(b, out);
  out->Resize(a.cols(), b.cols());  // kernel accumulates: needs zeros
  const std::size_t mm = a.rows();
  const std::size_t nn = b.cols();
  // Parallel over panels of output rows (= columns of a). Within a panel k
  // runs over the shared dimension with the panel of `out` as the in-cache
  // accumulator tile; every out element sees the same ascending-k order as
  // the serial kernel. Dense inner loop, no zero-skip branch.
  ParallelFor(0, a.cols(), kGemmRowGrain,
              [&](std::size_t r0, std::size_t r1) {
    for (std::size_t k = 0; k < mm; ++k) {
      const double* arow = a.row_data(k);
      const double* brow = b.row_data(k);
      for (std::size_t i = r0; i < r1; ++i) {
        const double aki = arow[i];
        double* orow = out->row_data(i);
        for (std::size_t j = 0; j < nn; ++j) orow[j] += aki * brow[j];
      }
    }
  });
}

Matrix Transpose(const Matrix& m) {
  Matrix out;
  TransposeInto(m, &out);
  return out;
}

void TransposeInto(const Matrix& m, Matrix* out) {
  CheckNoAlias(m, out);
  out->ResizeForOverwrite(m.cols(), m.rows());
  const std::size_t rows = m.rows();
  double* dst = out->data();
  // Tiled transpose, parallel over output row panels. Raw row-pointer
  // writes: the per-element bounds DCHECKs of operator() are hoisted into
  // the shape setup above.
  ParallelFor(0, m.cols(), kTransposeTile,
              [&](std::size_t c0, std::size_t c1) {
    for (std::size_t i0 = 0; i0 < rows; i0 += kTransposeTile) {
      const std::size_t i1 = std::min(rows, i0 + kTransposeTile);
      for (std::size_t i = i0; i < i1; ++i) {
        const double* row = m.row_data(i);
        for (std::size_t j = c0; j < c1; ++j) dst[j * rows + i] = row[j];
      }
    }
  });
}

Matrix Add(const Matrix& a, const Matrix& b) {
  FACTION_CHECK_SAME_SHAPE(a, b);
  Matrix out = a;
  double* dst = out.data();
  const double* src = b.data();
  ParallelFor(0, out.size(), kElemGrain,
              [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) dst[i] += src[i];
  });
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  FACTION_CHECK_SAME_SHAPE(a, b);
  Matrix out = a;
  double* dst = out.data();
  const double* src = b.data();
  ParallelFor(0, out.size(), kElemGrain,
              [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) dst[i] -= src[i];
  });
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  FACTION_CHECK_SAME_SHAPE(a, b);
  Matrix out = a;
  double* dst = out.data();
  const double* src = b.data();
  ParallelFor(0, out.size(), kElemGrain,
              [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) dst[i] *= src[i];
  });
  return out;
}

Matrix Scale(const Matrix& m, double s) {
  Matrix out = m;
  double* dst = out.data();
  ParallelFor(0, out.size(), kElemGrain,
              [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) dst[i] *= s;
  });
  return out;
}

void AddScaled(Matrix* a, const Matrix& b, double s) {
  FACTION_CHECK_SAME_SHAPE(*a, b);
  double* dst = a->data();
  const double* src = b.data();
  ParallelFor(0, a->size(), kElemGrain,
              [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) dst[i] += s * src[i];
  });
}

void AddRowBroadcast(Matrix* m, const std::vector<double>& row) {
  FACTION_CHECK_LEN(row, m->cols());
  ParallelFor(0, m->rows(), kRowGrain,
              [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      double* r = m->row_data(i);
      for (std::size_t j = 0; j < m->cols(); ++j) r[j] += row[j];
    }
  });
}

std::vector<double> ColSums(const Matrix& m) {
  std::vector<double> out;
  ColSumsInto(m, &out);
  return out;
}

void ColSumsInto(const Matrix& m, std::vector<double>* out) {
  out->assign(m.cols(), 0.0);
  // Parallel over column panels: each column's sum is accumulated by one
  // chunk in ascending row order, exactly as the serial loop did.
  double* sums = out->data();
  ParallelFor(0, m.cols(), kColGrain,
              [&](std::size_t c0, std::size_t c1) {
    for (std::size_t i = 0; i < m.rows(); ++i) {
      const double* r = m.row_data(i);
      for (std::size_t j = c0; j < c1; ++j) sums[j] += r[j];
    }
  });
}

std::vector<double> RowSums(const Matrix& m) {
  std::vector<double> out(m.rows(), 0.0);
  double* sums = out.data();
  ParallelFor(0, m.rows(), kRowGrain,
              [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const double* r = m.row_data(i);
      for (std::size_t j = 0; j < m.cols(); ++j) sums[i] += r[j];
    }
  });
  return out;
}

double FrobeniusNorm2(const Matrix& m) {
  double acc = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) acc += m.data()[i] * m.data()[i];
  return acc;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  FACTION_CHECK_SAME_SHAPE(a, b);
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  FACTION_CHECK_LEN(b, a.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  FACTION_CHECK_LEN(b, a.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

Matrix SoftmaxRows(const Matrix& logits) {
  Matrix out;
  SoftmaxRowsInto(logits, &out);
  return out;
}

void SoftmaxRowsInto(const Matrix& logits, Matrix* out) {
  CheckNoAlias(logits, out);
  out->ResizeForOverwrite(logits.rows(), logits.cols());
  std::copy(logits.data(), logits.data() + logits.size(), out->data());
  ParallelFor(0, out->rows(), kRowGrain,
              [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      double* r = out->row_data(i);
      double mx = r[0];
      for (std::size_t j = 1; j < out->cols(); ++j) mx = std::max(mx, r[j]);
      double sum = 0.0;
      for (std::size_t j = 0; j < out->cols(); ++j) {
        r[j] = std::exp(r[j] - mx);
        sum += r[j];
      }
      for (std::size_t j = 0; j < out->cols(); ++j) r[j] /= sum;
    }
  });
}

Matrix LogSoftmaxRows(const Matrix& logits) {
  Matrix out;
  LogSoftmaxRowsInto(logits, &out);
  return out;
}

void LogSoftmaxRowsInto(const Matrix& logits, Matrix* out) {
  CheckNoAlias(logits, out);
  out->ResizeForOverwrite(logits.rows(), logits.cols());
  std::copy(logits.data(), logits.data() + logits.size(), out->data());
  ParallelFor(0, out->rows(), kRowGrain,
              [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      double* r = out->row_data(i);
      double mx = r[0];
      for (std::size_t j = 1; j < out->cols(); ++j) mx = std::max(mx, r[j]);
      double sum = 0.0;
      for (std::size_t j = 0; j < out->cols(); ++j) sum += std::exp(r[j] - mx);
      const double lse = mx + std::log(sum);
      for (std::size_t j = 0; j < out->cols(); ++j) r[j] -= lse;
    }
  });
}

double LogSumExp(const double* xs, std::size_t n) {
  FACTION_CHECK(n > 0);
  double mx = xs[0];
  for (std::size_t i = 0; i < n; ++i) mx = std::max(mx, xs[i]);
  if (!std::isfinite(mx)) return mx;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += std::exp(xs[i] - mx);
  return mx + std::log(sum);
}

double LogSumExp(const std::vector<double>& xs) {
  FACTION_CHECK(!xs.empty());
  return LogSumExp(xs.data(), xs.size());
}

}  // namespace faction
