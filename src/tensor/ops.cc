// FACTION_HOT: the GEMM/softmax entry points back every training step and
// ban-guarded scoring region; allocating idioms here are lint findings
// (tools/lint.py no-alloc-in-hot, DESIGN.md §13). The *Into variants write
// through caller-owned buffers; the value-returning wrappers are the
// convenience API and sit inside FACTION_COLD fences.
#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "tensor/simd.h"

namespace faction {

namespace {

// Parallel grain sizes. Chunk layout depends only on these constants and
// the problem shape — never on the thread count — which is what keeps every
// op bitwise deterministic across thread counts (see common/parallel.h).
constexpr std::size_t kGemmRowGrain = 8;   // output rows per chunk
constexpr std::size_t kGemmKBlock = 64;    // k panel kept hot across rows
constexpr std::size_t kRowGrain = 64;      // rows per chunk, rowwise ops
constexpr std::size_t kColGrain = 64;      // cols per chunk, columnwise ops
constexpr std::size_t kElemGrain = 1 << 14;  // flat elements per chunk
constexpr std::size_t kTransposeTile = 32;

// The *Into ops hand out caller-owned buffers; writing through an aliased
// output would corrupt the inputs mid-kernel, so the overlap is a
// programmer error checked at entry.
inline void CheckNoAlias(const Matrix& in, const Matrix* out) {
  FACTION_CHECK(&in != out);
}

// Per-thread panel-packing scratch for the SIMD GEMM entry points. The
// buffer keeps its capacity, so steady-state GEMMs allocate nothing. The
// pool workers never touch it — only the calling thread packs; workers
// read the packed panels through a plain pointer.
std::vector<double>& PackScratch() {
  static thread_local std::vector<double> scratch;  // lint-allow(no-alloc-in-hot): per-thread warmup only
  return scratch;
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix out;
  MatMulInto(a, b, &out);
  return out;
}

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  FACTION_CHECK_EQ(a.cols(), b.rows());
  CheckNoAlias(a, out);
  CheckNoAlias(b, out);
  out->ResizeForOverwrite(a.rows(), b.cols());  // kernel assigns every element
  const std::size_t kk = a.cols();
  const std::size_t nn = b.cols();
  if (out->size() == 0) return;
  if (kk == 0) {
    std::fill(out->data(), out->data() + out->size(), 0.0);
    return;
  }
  // Register-blocked micro-kernel over k-major packed panels of b; the
  // per-element k order matches the retained blocked reference exactly
  // (ascending 4-wide quads + scalar tail — the reference's 64-wide k
  // blocks are 4-aligned, so its global pattern is the same flat one).
  const SimdKernels& kern = ActiveSimd();
  std::vector<double>& bp = PackScratch();
  bp.resize(SimdPackedCount(kern, kk, nn));
  kern.pack_b(b.data(), kk, nn, bp.data());
  TelemetryCount("simd.gemm_calls");
  TelemetryCount("simd.packed_bytes", bp.size() * sizeof(double));
  TelemetryObserve("simd.gemm_flops",
                   2.0 * static_cast<double>(a.rows()) *
                       static_cast<double>(nn) * static_cast<double>(kk));
  const double* bpp = bp.data();
  ParallelFor(0, a.rows(), kGemmRowGrain,
              [&, bpp](std::size_t r0, std::size_t r1) {
    kern.matmul_rows(a.data(), bpp, out->data(), r0, r1, nn, kk);
  });
}

void ReferenceMatMulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  FACTION_CHECK_EQ(a.cols(), b.rows());
  CheckNoAlias(a, out);
  CheckNoAlias(b, out);
  out->Resize(a.rows(), b.cols());  // kernel accumulates: needs zeros
  const std::size_t kk = a.cols();
  const std::size_t nn = b.cols();
  // Cache-blocked ikj kernel, parallel over row panels: each output row is
  // produced by exactly one chunk, and the k accumulation order is fixed by
  // the block size and the 4-wide unroll, so the result is identical for
  // any thread count. The inner loop is a dense 4-row axpy — no zero-skip
  // branch (it mispredicts on dense data).
  ParallelFor(0, a.rows(), kGemmRowGrain,
              [&](std::size_t r0, std::size_t r1) {
    for (std::size_t k0 = 0; k0 < kk; k0 += kGemmKBlock) {
      const std::size_t k1 = std::min(kk, k0 + kGemmKBlock);
      for (std::size_t i = r0; i < r1; ++i) {
        const double* arow = a.row_data(i);
        double* orow = out->row_data(i);
        std::size_t k = k0;
        for (; k + 4 <= k1; k += 4) {
          const double a0 = arow[k];
          const double a1 = arow[k + 1];
          const double a2 = arow[k + 2];
          const double a3 = arow[k + 3];
          const double* b0 = b.row_data(k);
          const double* b1 = b.row_data(k + 1);
          const double* b2 = b.row_data(k + 2);
          const double* b3 = b.row_data(k + 3);
          for (std::size_t j = 0; j < nn; ++j) {
            orow[j] +=
                (a0 * b0[j] + a1 * b1[j]) + (a2 * b2[j] + a3 * b3[j]);
          }
        }
        for (; k < k1; ++k) {
          const double ak = arow[k];
          const double* brow = b.row_data(k);
          for (std::size_t j = 0; j < nn; ++j) orow[j] += ak * brow[j];
        }
      }
    }
  });
}

Matrix MatMulBt(const Matrix& a, const Matrix& b) {
  Matrix out;
  MatMulBtInto(a, b, &out);
  return out;
}

void MatMulBtInto(const Matrix& a, const Matrix& b, Matrix* out) {
  FACTION_CHECK_EQ(a.cols(), b.cols());
  CheckNoAlias(a, out);
  CheckNoAlias(b, out);
  out->ResizeForOverwrite(a.rows(), b.rows());  // every element assigned
  const std::size_t kk = a.cols();
  const std::size_t bn = b.rows();
  if (out->size() == 0) return;
  if (kk == 0) {
    std::fill(out->data(), out->data() + out->size(), 0.0);
    return;
  }
  const SimdKernels& kern = ActiveSimd();
  std::vector<double>& bp = PackScratch();
  bp.resize(SimdPackedCount(kern, kk, bn));
  kern.pack_bt(b.data(), bn, kk, bp.data());
  TelemetryCount("simd.gemm_calls");
  TelemetryCount("simd.packed_bytes", bp.size() * sizeof(double));
  const double* bpp = bp.data();
  ParallelFor(0, a.rows(), kGemmRowGrain,
              [&, bpp](std::size_t r0, std::size_t r1) {
    kern.matmul_bt_rows(a.data(), bpp, out->data(), r0, r1, bn, kk);
  });
}

void ReferenceMatMulBtInto(const Matrix& a, const Matrix& b, Matrix* out) {
  FACTION_CHECK_EQ(a.cols(), b.cols());
  CheckNoAlias(a, out);
  CheckNoAlias(b, out);
  out->ResizeForOverwrite(a.rows(), b.rows());  // every element assigned
  const std::size_t kk = a.cols();
  ParallelFor(0, a.rows(), kGemmRowGrain,
              [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const double* arow = a.row_data(i);
      double* orow = out->row_data(i);
      for (std::size_t j = 0; j < b.rows(); ++j) {
        const double* brow = b.row_data(j);
        // Four partial dot products combined in a fixed order.
        double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
        std::size_t k = 0;
        for (; k + 4 <= kk; k += 4) {
          s0 += arow[k] * brow[k];
          s1 += arow[k + 1] * brow[k + 1];
          s2 += arow[k + 2] * brow[k + 2];
          s3 += arow[k + 3] * brow[k + 3];
        }
        double acc = (s0 + s1) + (s2 + s3);
        for (; k < kk; ++k) acc += arow[k] * brow[k];
        orow[j] = acc;
      }
    }
  });
}

Matrix MatMulAt(const Matrix& a, const Matrix& b) {
  Matrix out;
  MatMulAtInto(a, b, &out);
  return out;
}

void MatMulAtInto(const Matrix& a, const Matrix& b, Matrix* out) {
  FACTION_CHECK_EQ(a.rows(), b.rows());
  CheckNoAlias(a, out);
  CheckNoAlias(b, out);
  out->ResizeForOverwrite(a.cols(), b.cols());  // kernel assigns every element
  const std::size_t mm = a.rows();
  const std::size_t nn = b.cols();
  if (out->size() == 0) return;
  if (mm == 0) {
    std::fill(out->data(), out->data() + out->size(), 0.0);
    return;
  }
  // Unpacked register-tiled kernel (a's column quads are contiguous per k
  // row, so packing buys nothing here); per element the order is a single
  // mul-add per ascending k from zero, as in the reference.
  const SimdKernels& kern = ActiveSimd();
  TelemetryCount("simd.gemm_calls");
  ParallelFor(0, a.cols(), kGemmRowGrain,
              [&](std::size_t c0, std::size_t c1) {
    kern.matmul_at_cols(a.data(), a.cols(), b.data(), out->data(), mm, nn,
                        c0, c1);
  });
}

void ReferenceMatMulAtInto(const Matrix& a, const Matrix& b, Matrix* out) {
  FACTION_CHECK_EQ(a.rows(), b.rows());
  CheckNoAlias(a, out);
  CheckNoAlias(b, out);
  out->Resize(a.cols(), b.cols());  // kernel accumulates: needs zeros
  const std::size_t mm = a.rows();
  const std::size_t nn = b.cols();
  // Parallel over panels of output rows (= columns of a). Within a panel k
  // runs over the shared dimension with the panel of `out` as the in-cache
  // accumulator tile; every out element sees the same ascending-k order as
  // the serial kernel. Dense inner loop, no zero-skip branch.
  ParallelFor(0, a.cols(), kGemmRowGrain,
              [&](std::size_t r0, std::size_t r1) {
    for (std::size_t k = 0; k < mm; ++k) {
      const double* arow = a.row_data(k);
      const double* brow = b.row_data(k);
      for (std::size_t i = r0; i < r1; ++i) {
        const double aki = arow[i];
        double* orow = out->row_data(i);
        for (std::size_t j = 0; j < nn; ++j) orow[j] += aki * brow[j];
      }
    }
  });
}

Matrix Transpose(const Matrix& m) {
  Matrix out;
  TransposeInto(m, &out);
  return out;
}

void TransposeInto(const Matrix& m, Matrix* out) {
  CheckNoAlias(m, out);
  out->ResizeForOverwrite(m.cols(), m.rows());
  const std::size_t rows = m.rows();
  double* dst = out->data();
  // Tiled transpose, parallel over output row panels. Raw row-pointer
  // writes: the per-element bounds DCHECKs of operator() are hoisted into
  // the shape setup above.
  ParallelFor(0, m.cols(), kTransposeTile,
              [&](std::size_t c0, std::size_t c1) {
    for (std::size_t i0 = 0; i0 < rows; i0 += kTransposeTile) {
      const std::size_t i1 = std::min(rows, i0 + kTransposeTile);
      for (std::size_t i = i0; i < i1; ++i) {
        const double* row = m.row_data(i);
        for (std::size_t j = c0; j < c1; ++j) dst[j * rows + i] = row[j];
      }
    }
  });
}

Matrix Add(const Matrix& a, const Matrix& b) {
  FACTION_CHECK_SAME_SHAPE(a, b);
  Matrix out = a;
  double* dst = out.data();
  const double* src = b.data();
  ParallelFor(0, out.size(), kElemGrain,
              [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) dst[i] += src[i];
  });
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  FACTION_CHECK_SAME_SHAPE(a, b);
  Matrix out = a;
  double* dst = out.data();
  const double* src = b.data();
  ParallelFor(0, out.size(), kElemGrain,
              [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) dst[i] -= src[i];
  });
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  FACTION_CHECK_SAME_SHAPE(a, b);
  Matrix out = a;
  double* dst = out.data();
  const double* src = b.data();
  ParallelFor(0, out.size(), kElemGrain,
              [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) dst[i] *= src[i];
  });
  return out;
}

Matrix Scale(const Matrix& m, double s) {
  Matrix out = m;
  double* dst = out.data();
  ParallelFor(0, out.size(), kElemGrain,
              [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) dst[i] *= s;
  });
  return out;
}

void AddScaled(Matrix* a, const Matrix& b, double s) {
  FACTION_CHECK_SAME_SHAPE(*a, b);
  double* dst = a->data();
  const double* src = b.data();
  ParallelFor(0, a->size(), kElemGrain,
              [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) dst[i] += s * src[i];
  });
}

void AddRowBroadcast(Matrix* m, const std::vector<double>& row) {
  FACTION_CHECK_LEN(row, m->cols());
  ParallelFor(0, m->rows(), kRowGrain,
              [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      double* r = m->row_data(i);
      for (std::size_t j = 0; j < m->cols(); ++j) r[j] += row[j];
    }
  });
}

// FACTION_COLD_BEGIN: value-returning convenience wrapper.
std::vector<double> ColSums(const Matrix& m) {
  std::vector<double> out;
  ColSumsInto(m, &out);
  return out;
}
// FACTION_COLD_END

void ColSumsInto(const Matrix& m, std::vector<double>* out) {
  out->assign(m.cols(), 0.0);
  // Parallel over column panels: each column's sum is accumulated by one
  // chunk in ascending row order, exactly as the serial loop did.
  double* sums = out->data();
  ParallelFor(0, m.cols(), kColGrain,
              [&](std::size_t c0, std::size_t c1) {
    for (std::size_t i = 0; i < m.rows(); ++i) {
      const double* r = m.row_data(i);
      for (std::size_t j = c0; j < c1; ++j) sums[j] += r[j];
    }
  });
}

// FACTION_COLD_BEGIN: value-returning helper (metrics/tests cadence).
std::vector<double> RowSums(const Matrix& m) {
  std::vector<double> out(m.rows(), 0.0);
  double* sums = out.data();
  ParallelFor(0, m.rows(), kRowGrain,
              [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const double* r = m.row_data(i);
      for (std::size_t j = 0; j < m.cols(); ++j) sums[i] += r[j];
    }
  });
  return out;
}
// FACTION_COLD_END

double FrobeniusNorm2(const Matrix& m) {
  double acc = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) acc += m.data()[i] * m.data()[i];
  return acc;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  FACTION_CHECK_SAME_SHAPE(a, b);
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  FACTION_CHECK_LEN(b, a.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  FACTION_CHECK_LEN(b, a.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

Matrix SoftmaxRows(const Matrix& logits) {
  Matrix out;
  SoftmaxRowsInto(logits, &out);
  return out;
}

void SoftmaxRowsInto(const Matrix& logits, Matrix* out) {
  CheckNoAlias(logits, out);
  out->ResizeForOverwrite(logits.rows(), logits.cols());
  std::copy(logits.data(), logits.data() + logits.size(), out->data());
  ParallelFor(0, out->rows(), kRowGrain,
              [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      double* r = out->row_data(i);
      double mx = r[0];
      for (std::size_t j = 1; j < out->cols(); ++j) mx = std::max(mx, r[j]);
      double sum = 0.0;
      for (std::size_t j = 0; j < out->cols(); ++j) {
        r[j] = std::exp(r[j] - mx);
        sum += r[j];
      }
      for (std::size_t j = 0; j < out->cols(); ++j) r[j] /= sum;
    }
  });
}

Matrix LogSoftmaxRows(const Matrix& logits) {
  Matrix out;
  LogSoftmaxRowsInto(logits, &out);
  return out;
}

void LogSoftmaxRowsInto(const Matrix& logits, Matrix* out) {
  CheckNoAlias(logits, out);
  out->ResizeForOverwrite(logits.rows(), logits.cols());
  std::copy(logits.data(), logits.data() + logits.size(), out->data());
  ParallelFor(0, out->rows(), kRowGrain,
              [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      double* r = out->row_data(i);
      double mx = r[0];
      for (std::size_t j = 1; j < out->cols(); ++j) mx = std::max(mx, r[j]);
      double sum = 0.0;
      for (std::size_t j = 0; j < out->cols(); ++j) sum += std::exp(r[j] - mx);
      const double lse = mx + std::log(sum);
      for (std::size_t j = 0; j < out->cols(); ++j) r[j] -= lse;
    }
  });
}

double LogSumExp(const double* xs, std::size_t n) {
  FACTION_CHECK(n > 0);
  double mx = xs[0];
  for (std::size_t i = 0; i < n; ++i) mx = std::max(mx, xs[i]);
  if (!std::isfinite(mx)) return mx;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += std::exp(xs[i] - mx);
  return mx + std::log(sum);
}

double LogSumExp(const std::vector<double>& xs) {
  FACTION_CHECK(!xs.empty());
  return LogSumExp(xs.data(), xs.size());
}

}  // namespace faction
