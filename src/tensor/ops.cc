#include "tensor/ops.h"

#include "common/check.h"

#include <algorithm>
#include <cmath>

namespace faction {

Matrix MatMul(const Matrix& a, const Matrix& b) {
  FACTION_CHECK_EQ(a.cols(), b.rows());
  Matrix out(a.rows(), b.cols());
  // ikj loop order keeps the inner loop streaming over contiguous rows.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row_data(i);
    double* orow = out.row_data(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.row_data(k);
      for (std::size_t j = 0; j < b.cols(); ++j) {
        orow[j] += aik * brow[j];
      }
    }
  }
  return out;
}

Matrix MatMulBt(const Matrix& a, const Matrix& b) {
  FACTION_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row_data(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.row_data(j);
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      out(i, j) = acc;
    }
  }
  return out;
}

Matrix MatMulAt(const Matrix& a, const Matrix& b) {
  FACTION_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.row_data(k);
    const double* brow = b.row_data(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* orow = out.row_data(i);
      for (std::size_t j = 0; j < b.cols(); ++j) {
        orow[j] += aki * brow[j];
      }
    }
  }
  return out;
}

Matrix Transpose(const Matrix& m) {
  Matrix out(m.cols(), m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) out(j, i) = m(i, j);
  }
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  FACTION_CHECK_SAME_SHAPE(a, b);
  Matrix out = a;
  for (std::size_t i = 0; i < out.size(); ++i) out.data()[i] += b.data()[i];
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  FACTION_CHECK_SAME_SHAPE(a, b);
  Matrix out = a;
  for (std::size_t i = 0; i < out.size(); ++i) out.data()[i] -= b.data()[i];
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  FACTION_CHECK_SAME_SHAPE(a, b);
  Matrix out = a;
  for (std::size_t i = 0; i < out.size(); ++i) out.data()[i] *= b.data()[i];
  return out;
}

Matrix Scale(const Matrix& m, double s) {
  Matrix out = m;
  for (std::size_t i = 0; i < out.size(); ++i) out.data()[i] *= s;
  return out;
}

void AddScaled(Matrix* a, const Matrix& b, double s) {
  FACTION_CHECK_SAME_SHAPE(*a, b);
  for (std::size_t i = 0; i < a->size(); ++i) a->data()[i] += s * b.data()[i];
}

void AddRowBroadcast(Matrix* m, const std::vector<double>& row) {
  FACTION_CHECK_LEN(row, m->cols());
  for (std::size_t i = 0; i < m->rows(); ++i) {
    double* r = m->row_data(i);
    for (std::size_t j = 0; j < m->cols(); ++j) r[j] += row[j];
  }
}

std::vector<double> ColSums(const Matrix& m) {
  std::vector<double> out(m.cols(), 0.0);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* r = m.row_data(i);
    for (std::size_t j = 0; j < m.cols(); ++j) out[j] += r[j];
  }
  return out;
}

std::vector<double> RowSums(const Matrix& m) {
  std::vector<double> out(m.rows(), 0.0);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* r = m.row_data(i);
    for (std::size_t j = 0; j < m.cols(); ++j) out[i] += r[j];
  }
  return out;
}

double FrobeniusNorm2(const Matrix& m) {
  double acc = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) acc += m.data()[i] * m.data()[i];
  return acc;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  FACTION_CHECK_SAME_SHAPE(a, b);
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  FACTION_CHECK_LEN(b, a.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  FACTION_CHECK_LEN(b, a.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

Matrix SoftmaxRows(const Matrix& logits) {
  Matrix out = logits;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    double* r = out.row_data(i);
    double mx = r[0];
    for (std::size_t j = 1; j < out.cols(); ++j) mx = std::max(mx, r[j]);
    double sum = 0.0;
    for (std::size_t j = 0; j < out.cols(); ++j) {
      r[j] = std::exp(r[j] - mx);
      sum += r[j];
    }
    for (std::size_t j = 0; j < out.cols(); ++j) r[j] /= sum;
  }
  return out;
}

Matrix LogSoftmaxRows(const Matrix& logits) {
  Matrix out = logits;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    double* r = out.row_data(i);
    double mx = r[0];
    for (std::size_t j = 1; j < out.cols(); ++j) mx = std::max(mx, r[j]);
    double sum = 0.0;
    for (std::size_t j = 0; j < out.cols(); ++j) sum += std::exp(r[j] - mx);
    const double lse = mx + std::log(sum);
    for (std::size_t j = 0; j < out.cols(); ++j) r[j] -= lse;
  }
  return out;
}

double LogSumExp(const std::vector<double>& xs) {
  FACTION_CHECK(!xs.empty());
  double mx = xs[0];
  for (double x : xs) mx = std::max(mx, x);
  if (!std::isfinite(mx)) return mx;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - mx);
  return mx + std::log(sum);
}

}  // namespace faction
