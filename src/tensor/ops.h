#ifndef FACTION_TENSOR_OPS_H_
#define FACTION_TENSOR_OPS_H_

#include <vector>

#include "tensor/matrix.h"

namespace faction {

/// Matrix product a*b. Precondition: a.cols() == b.rows().
///
/// The GEMM-shaped ops (MatMul/MatMulBt/MatMulAt) run as register-blocked,
/// panel-packed SIMD micro-kernels (tensor/simd.h) on the shared thread
/// pool (common/parallel.h); Transpose and the rowwise/elementwise ops run
/// as cache-blocked kernels. Results are bitwise identical for any
/// FACTION_NUM_THREADS setting and any SIMD dispatch level: every output
/// element is produced by exactly one chunk with a k-accumulation order
/// fixed by the problem shape alone (see DESIGN.md §12).
///
/// Each GEMM/rowwise op also has an *Into output-parameter variant that
/// writes into a caller-owned Matrix (resized as needed, capacity
/// retained). These are the allocation-free hot-path entry points used with
/// Workspace buffers (common/workspace.h); the value-returning forms are
/// thin wrappers and numerically identical. `out` must not alias an input.
Matrix MatMul(const Matrix& a, const Matrix& b);
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out);

/// a * b^T without materializing the transpose.
Matrix MatMulBt(const Matrix& a, const Matrix& b);
void MatMulBtInto(const Matrix& a, const Matrix& b, Matrix* out);

/// a^T * b without materializing the transpose.
Matrix MatMulAt(const Matrix& a, const Matrix& b);
void MatMulAtInto(const Matrix& a, const Matrix& b, Matrix* out);

/// Retained pre-SIMD blocked kernels: the bitwise parity oracles the SIMD
/// micro-kernels are tested against (tests/simd_test.cc). Same contracts
/// as the dispatched entry points; not for production call sites.
void ReferenceMatMulInto(const Matrix& a, const Matrix& b, Matrix* out);
void ReferenceMatMulBtInto(const Matrix& a, const Matrix& b, Matrix* out);
void ReferenceMatMulAtInto(const Matrix& a, const Matrix& b, Matrix* out);

/// Transpose.
Matrix Transpose(const Matrix& m);
void TransposeInto(const Matrix& m, Matrix* out);

/// Elementwise sum. Shapes must match.
Matrix Add(const Matrix& a, const Matrix& b);

/// Elementwise difference. Shapes must match.
Matrix Sub(const Matrix& a, const Matrix& b);

/// Elementwise (Hadamard) product. Shapes must match.
Matrix Hadamard(const Matrix& a, const Matrix& b);

/// Scalar multiple.
Matrix Scale(const Matrix& m, double s);

/// In-place a += s*b (axpy). Shapes must match.
void AddScaled(Matrix* a, const Matrix& b, double s);

/// Adds a length-cols row vector to every row of m (broadcast), in place.
void AddRowBroadcast(Matrix* m, const std::vector<double>& row);

/// Column-wise sums: returns a vector of length m.cols().
std::vector<double> ColSums(const Matrix& m);
void ColSumsInto(const Matrix& m, std::vector<double>* out);

/// Row-wise sums: returns a vector of length m.rows().
std::vector<double> RowSums(const Matrix& m);

/// Sum of squares of all elements (squared Frobenius norm).
double FrobeniusNorm2(const Matrix& m);

/// Max |a - b| over matching elements; used heavily in tests.
double MaxAbsDiff(const Matrix& a, const Matrix& b);

/// Dot product of equal-length vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm of a vector.
double Norm2(const std::vector<double>& v);

/// Squared Euclidean distance between equal-length vectors.
double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

/// Row-wise softmax of a logits matrix (numerically stable).
Matrix SoftmaxRows(const Matrix& logits);
void SoftmaxRowsInto(const Matrix& logits, Matrix* out);

/// Row-wise log-softmax of a logits matrix (numerically stable).
Matrix LogSoftmaxRows(const Matrix& logits);
void LogSoftmaxRowsInto(const Matrix& logits, Matrix* out);

/// log(sum(exp(xs))) computed stably.
double LogSumExp(const std::vector<double>& xs);

/// Allocation-free overload over a raw span; n must be > 0. Used by the
/// batched density scorers on their per-sample hot path.
double LogSumExp(const double* xs, std::size_t n);

}  // namespace faction

#endif  // FACTION_TENSOR_OPS_H_
