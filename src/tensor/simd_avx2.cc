// AVX2 tier: 256-bit vectors. Compiled with -mavx2 only when the compiler
// supports the flag (see tensor/CMakeLists.txt); executed only after the
// runtime cpuid check in simd.cc, so no pre-dispatch code in this TU may
// run on a non-AVX2 CPU — everything here is reached exclusively through
// the Kernels() table.

#define FACTION_SIMD_NAMESPACE simd_avx2
#define FACTION_SIMD_LANES 4
#define FACTION_SIMD_LEVEL_ENUM SimdLevel::kAvx2
#define FACTION_SIMD_LEVEL_NAME "avx2"

#include "tensor/simd_kernels.inc"
