#ifndef FACTION_TENSOR_IMAGE_H_
#define FACTION_TENSOR_IMAGE_H_

#include <cstddef>

namespace faction {

/// Shape of an image batch: each Matrix row is one image flattened in
/// (channel, row, col) order. Shared by the image generators (data/) and
/// the CNN layers (nn/).
struct ImageShape {
  std::size_t channels = 1;
  std::size_t height = 8;
  std::size_t width = 8;
  std::size_t Flat() const { return channels * height * width; }
};

}  // namespace faction

#endif  // FACTION_TENSOR_IMAGE_H_
