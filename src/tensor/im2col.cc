#include "tensor/im2col.h"

#include <algorithm>

#include "common/check.h"

namespace faction {

namespace {

using std::ptrdiff_t;

// Input row index for output row `orow` at kernel offset `dr`, or negative /
// >= height when the tap lands in the padding band. Signed arithmetic: with
// large pads the offset can be negative.
inline ptrdiff_t InRow(std::size_t orow, std::size_t dr, std::size_t stride,
                       std::size_t pad) {
  return static_cast<ptrdiff_t>(orow * stride + dr) -
         static_cast<ptrdiff_t>(pad);
}

}  // namespace

void Im2Col(const double* img, const ConvGeometry& g, double* col) {
  FACTION_DCHECK(g.Valid());
  const std::size_t oh = g.OutHeight();
  const std::size_t ow = g.OutWidth();
  const std::size_t ohw = oh * ow;
  const ptrdiff_t h = static_cast<ptrdiff_t>(g.height);
  const ptrdiff_t w = static_cast<ptrdiff_t>(g.width);
  std::size_t k = 0;
  for (std::size_t ic = 0; ic < g.in_channels; ++ic) {
    const double* plane = img + ic * g.height * g.width;
    for (std::size_t dr = 0; dr < g.kernel; ++dr) {
      for (std::size_t dc = 0; dc < g.kernel; ++dc, ++k) {
        double* crow = col + k * ohw;
        for (std::size_t orow = 0; orow < oh; ++orow) {
          double* dst = crow + orow * ow;
          const ptrdiff_t rr = InRow(orow, dr, g.stride, g.pad);
          if (rr < 0 || rr >= h) {
            std::fill(dst, dst + ow, 0.0);
            continue;
          }
          const double* srow = plane + static_cast<std::size_t>(rr) * g.width;
          if (g.stride == 1) {
            // cc = ocol + dc - pad; valid while 0 <= cc < w.
            const ptrdiff_t shift = static_cast<ptrdiff_t>(dc) -
                                    static_cast<ptrdiff_t>(g.pad);
            const ptrdiff_t c0 = std::max<ptrdiff_t>(0, -shift);
            const ptrdiff_t c1 = std::min<ptrdiff_t>(
                static_cast<ptrdiff_t>(ow), w - shift);
            ptrdiff_t c = 0;
            for (; c < c0; ++c) dst[c] = 0.0;
            if (c1 > c0) {
              std::copy(srow + c0 + shift, srow + c1 + shift, dst + c0);
              c = c1;
            }
            for (; c < static_cast<ptrdiff_t>(ow); ++c) dst[c] = 0.0;
          } else {
            for (std::size_t ocol = 0; ocol < ow; ++ocol) {
              const ptrdiff_t cc =
                  static_cast<ptrdiff_t>(ocol * g.stride + dc) -
                  static_cast<ptrdiff_t>(g.pad);
              dst[ocol] = (cc < 0 || cc >= w)
                              ? 0.0
                              : srow[static_cast<std::size_t>(cc)];
            }
          }
        }
      }
    }
  }
}

void Im2ColRows(const double* img, const ConvGeometry& g, double* col) {
  FACTION_DCHECK(g.Valid());
  const std::size_t oh = g.OutHeight();
  const std::size_t ow = g.OutWidth();
  const std::size_t patch = g.PatchSize();
  const ptrdiff_t h = static_cast<ptrdiff_t>(g.height);
  const ptrdiff_t w = static_cast<ptrdiff_t>(g.width);
  for (std::size_t orow = 0; orow < oh; ++orow) {
    for (std::size_t ocol = 0; ocol < ow; ++ocol) {
      double* dst = col + (orow * ow + ocol) * patch;
      std::size_t k = 0;
      for (std::size_t ic = 0; ic < g.in_channels; ++ic) {
        const double* plane = img + ic * g.height * g.width;
        for (std::size_t dr = 0; dr < g.kernel; ++dr) {
          const ptrdiff_t rr = InRow(orow, dr, g.stride, g.pad);
          if (rr < 0 || rr >= h) {
            for (std::size_t dc = 0; dc < g.kernel; ++dc) dst[k++] = 0.0;
            continue;
          }
          const double* srow = plane + static_cast<std::size_t>(rr) * g.width;
          for (std::size_t dc = 0; dc < g.kernel; ++dc, ++k) {
            const ptrdiff_t cc =
                static_cast<ptrdiff_t>(ocol * g.stride + dc) -
                static_cast<ptrdiff_t>(g.pad);
            dst[k] = (cc < 0 || cc >= w) ? 0.0
                                         : srow[static_cast<std::size_t>(cc)];
          }
        }
      }
    }
  }
}

void Col2Im(const double* col, const ConvGeometry& g, double* img) {
  FACTION_DCHECK(g.Valid());
  const std::size_t oh = g.OutHeight();
  const std::size_t ow = g.OutWidth();
  const std::size_t ohw = oh * ow;
  const ptrdiff_t h = static_cast<ptrdiff_t>(g.height);
  const ptrdiff_t w = static_cast<ptrdiff_t>(g.width);
  std::fill(img, img + g.InFlat(), 0.0);
  std::size_t k = 0;
  for (std::size_t ic = 0; ic < g.in_channels; ++ic) {
    double* plane = img + ic * g.height * g.width;
    for (std::size_t dr = 0; dr < g.kernel; ++dr) {
      for (std::size_t dc = 0; dc < g.kernel; ++dc, ++k) {
        const double* crow = col + k * ohw;
        for (std::size_t orow = 0; orow < oh; ++orow) {
          const ptrdiff_t rr = InRow(orow, dr, g.stride, g.pad);
          if (rr < 0 || rr >= h) continue;
          double* drow = plane + static_cast<std::size_t>(rr) * g.width;
          const double* src = crow + orow * ow;
          for (std::size_t ocol = 0; ocol < ow; ++ocol) {
            const ptrdiff_t cc =
                static_cast<ptrdiff_t>(ocol * g.stride + dc) -
                static_cast<ptrdiff_t>(g.pad);
            if (cc < 0 || cc >= w) continue;
            drow[static_cast<std::size_t>(cc)] += src[ocol];
          }
        }
      }
    }
  }
}

}  // namespace faction
