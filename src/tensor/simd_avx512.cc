// AVX-512 tier: 512-bit vectors. Compiled with -mavx512f only when the
// compiler supports the flag; executed only after the runtime cpuid check
// in simd.cc (same contract as the AVX2 TU).

#define FACTION_SIMD_NAMESPACE simd_avx512
#define FACTION_SIMD_LANES 8
#define FACTION_SIMD_LEVEL_ENUM SimdLevel::kAvx512
#define FACTION_SIMD_LEVEL_NAME "avx512"

#include "tensor/simd_kernels.inc"
