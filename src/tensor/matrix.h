#ifndef FACTION_TENSOR_MATRIX_H_
#define FACTION_TENSOR_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/check.h"

namespace faction {

/// Dense row-major matrix of doubles. This is the numeric workhorse under
/// the neural nets, the GDA/GMM density estimator, and the clustering code.
///
/// The class is a value type (copyable and movable). Indexing is
/// bounds-checked only via FACTION_CHECK in At(); the unchecked operator()
/// is used on hot paths.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Zero-initialized rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Constant-filled rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists: Matrix m = {{1,2},{3,4}};
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Element access; bounds-checked only in debug/sanitizer builds
  /// (hot paths).
  double& operator()(std::size_t r, std::size_t c) {
    FACTION_DCHECK_LT(r, rows_);
    FACTION_DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    FACTION_DCHECK_LT(r, rows_);
    FACTION_DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  /// Checked element access; aborts on out-of-range (programmer error).
  double& At(std::size_t r, std::size_t c);
  double At(std::size_t r, std::size_t c) const;

  /// Raw storage access for bulk ops.
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Pointer to the start of row r; r is bounds-checked only in
  /// debug/sanitizer builds.
  double* row_data(std::size_t r) {
    FACTION_DCHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }
  const double* row_data(std::size_t r) const {
    FACTION_DCHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }

  /// Copies row r into a vector.
  std::vector<double> Row(std::size_t r) const;

  /// Overwrites row r from a vector of length cols().
  void SetRow(std::size_t r, const std::vector<double>& values);

  /// Sets every element to `value`.
  void Fill(double value);

  /// Resizes to rows x cols, zero-filling (previous contents discarded).
  void Resize(std::size_t rows, std::size_t cols);

  /// Resizes to rows x cols without zero-filling: element values are
  /// unspecified (stale) until written. For scratch buffers whose every
  /// element the caller overwrites before reading — skips the O(rows*cols)
  /// clear that Resize() pays. Capacity is retained across calls, so
  /// repeated ResizeForOverwrite to the same-or-smaller shape allocates
  /// nothing.
  void ResizeForOverwrite(std::size_t rows, std::size_t cols);

  /// Identity matrix of order n.
  static Matrix Identity(std::size_t n);

  /// Matrix whose single row is `v`.
  static Matrix FromRowVector(const std::vector<double>& v);

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

}  // namespace faction

#endif  // FACTION_TENSOR_MATRIX_H_
