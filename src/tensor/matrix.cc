#include "tensor/matrix.h"

namespace faction {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ > 0 ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    FACTION_CHECK_EQ(row.size(), cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

double& Matrix::At(std::size_t r, std::size_t c) {
  FACTION_CHECK_LT(r, rows_);
  FACTION_CHECK_LT(c, cols_);
  return data_[r * cols_ + c];
}

double Matrix::At(std::size_t r, std::size_t c) const {
  FACTION_CHECK_LT(r, rows_);
  FACTION_CHECK_LT(c, cols_);
  return data_[r * cols_ + c];
}

std::vector<double> Matrix::Row(std::size_t r) const {
  FACTION_CHECK_LT(r, rows_);
  return std::vector<double>(row_data(r), row_data(r) + cols_);
}

void Matrix::SetRow(std::size_t r, const std::vector<double>& values) {
  FACTION_CHECK_LT(r, rows_);
  FACTION_CHECK_LEN(values, cols_);
  std::copy(values.begin(), values.end(), row_data(r));
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::Resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

void Matrix::ResizeForOverwrite(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromRowVector(const std::vector<double>& v) {
  Matrix m(1, v.size());
  m.SetRow(0, v);
  return m;
}

}  // namespace faction
