#include "tensor/linalg.h"

#include <cmath>

#include "common/check.h"

namespace faction {

Status CholeskyInto(const Matrix& a, Matrix* l) {
  FACTION_CHECK(l != nullptr);
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const std::size_t n = a.rows();
  // Resize zero-fills while retaining capacity: the strict upper triangle
  // stays zero exactly as in the freshly constructed Matrix of Cholesky().
  l->Resize(n, n);
  Matrix& lo = *l;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= lo(i, k) * lo(j, k);
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) {
          return Status::NumericalError(
              "matrix is not positive definite (pivot " +
              std::to_string(sum) + " at " + std::to_string(i) + ")");
        }
        lo(i, j) = std::sqrt(sum);
      } else {
        lo(i, j) = sum / lo(j, j);
      }
    }
  }
  return Status::Ok();
}

Result<Matrix> Cholesky(const Matrix& a) {
  Matrix l;
  FACTION_RETURN_IF_ERROR(CholeskyInto(a, &l));
  return l;
}

std::vector<double> ForwardSolve(const Matrix& lower,
                                 const std::vector<double>& b) {
  const std::size_t n = lower.rows();
  FACTION_DCHECK_EQ(lower.cols(), n);
  FACTION_CHECK_LEN(b, n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    const double* row = lower.row_data(i);
    for (std::size_t k = 0; k < i; ++k) sum -= row[k] * y[k];
    y[i] = sum / row[i];
  }
  return y;
}

void ForwardSolveInPlace(const Matrix& lower, double* b, std::size_t n) {
  FACTION_DCHECK_EQ(lower.rows(), n);
  FACTION_DCHECK_EQ(lower.cols(), n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    const double* row = lower.row_data(i);
    for (std::size_t k = 0; k < i; ++k) sum -= row[k] * b[k];
    b[i] = sum / row[i];
  }
}

std::vector<double> BackSolveTranspose(const Matrix& lower,
                                       const std::vector<double>& y) {
  const std::size_t n = lower.rows();
  FACTION_DCHECK_EQ(lower.cols(), n);
  FACTION_CHECK_LEN(y, n);
  std::vector<double> x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= lower(k, i) * x[k];
    x[i] = sum / lower(i, i);
  }
  return x;
}

std::vector<double> CholeskySolve(const Matrix& lower,
                                  const std::vector<double>& b) {
  return BackSolveTranspose(lower, ForwardSolve(lower, b));
}

double LogDetFromCholesky(const Matrix& lower) {
  FACTION_DCHECK_EQ(lower.rows(), lower.cols());
  double acc = 0.0;
  for (std::size_t i = 0; i < lower.rows(); ++i) {
    acc += std::log(lower(i, i));
  }
  return 2.0 * acc;
}

void CholeskyRank1UpdateInPlace(Matrix* l, double* v, std::size_t n) {
  FACTION_CHECK(l != nullptr);
  FACTION_DCHECK_EQ(l->rows(), n);
  FACTION_DCHECK_EQ(l->cols(), n);
  FACTION_DCHECK(v != nullptr);
  Matrix& lo = *l;
  for (std::size_t k = 0; k < n; ++k) {
    const double lkk = lo(k, k);
    const double r = std::sqrt(lkk * lkk + v[k] * v[k]);
    const double c = r / lkk;
    const double s = v[k] / lkk;
    lo(k, k) = r;
    for (std::size_t i = k + 1; i < n; ++i) {
      lo(i, k) = (lo(i, k) + s * v[i]) / c;
      v[i] = c * v[i] - s * lo(i, k);
    }
  }
}

Status CholeskyRank1DowndateInPlace(Matrix* l, double* v, std::size_t n) {
  FACTION_CHECK(l != nullptr);
  FACTION_DCHECK_EQ(l->rows(), n);
  FACTION_DCHECK_EQ(l->cols(), n);
  FACTION_DCHECK(v != nullptr);
  Matrix& lo = *l;
  for (std::size_t k = 0; k < n; ++k) {
    const double lkk = lo(k, k);
    // (lkk - v)(lkk + v) is lkk^2 - v^2 with better cancellation behavior
    // near the positive-definiteness boundary.
    const double r2 = (lkk - v[k]) * (lkk + v[k]);
    if (r2 <= 0.0 || !std::isfinite(r2)) {
      return Status::NumericalError(
          "rank-1 downdate would lose positive definiteness (pivot " +
          std::to_string(r2) + " at " + std::to_string(k) + ")");
    }
    const double r = std::sqrt(r2);
    const double c = r / lkk;
    const double s = v[k] / lkk;
    lo(k, k) = r;
    for (std::size_t i = k + 1; i < n; ++i) {
      lo(i, k) = (lo(i, k) - s * v[i]) / c;
      v[i] = c * v[i] - s * lo(i, k);
    }
  }
  return Status::Ok();
}

Result<Matrix> SpdInverse(const Matrix& a) {
  FACTION_ASSIGN_OR_RETURN(Matrix l, Cholesky(a));
  const std::size_t n = a.rows();
  Matrix inv(n, n);
  std::vector<double> e(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    const std::vector<double> col = CholeskySolve(l, e);
    for (std::size_t i = 0; i < n; ++i) inv(i, j) = col[i];
    e[j] = 0.0;
  }
  return inv;
}

void PowerIterationInto(const Matrix& w, int iters, Rng* rng,
                        SpectralEstimate* est) {
  FACTION_CHECK(rng != nullptr);
  FACTION_CHECK(est != nullptr);
  FACTION_CHECK_GE(iters, 0);
  const std::size_t rows = w.rows();
  const std::size_t cols = w.cols();
  est->sigma = 0.0;
  if (rows == 0 || cols == 0) {
    est->u.assign(rows, 0.0);
    est->v.assign(cols, 0.0);
    return;
  }

  std::vector<double>& u = est->u;
  std::vector<double>& v = est->v;
  if (u.size() != rows) {
    // Cold start: draw a fresh Gaussian direction (same draw sequence as
    // the by-value PowerIteration took on its cold path).
    u.resize(rows);
    for (auto& x : u) x = rng->Gaussian();
  }
  auto normalize = [](std::vector<double>* vec) {
    double n2 = 0.0;
    for (double x : *vec) n2 += x * x;
    const double norm = std::sqrt(n2);
    if (norm < 1e-12) {
      // Degenerate direction: restart from a unit basis vector.
      std::fill(vec->begin(), vec->end(), 0.0);
      (*vec)[0] = 1.0;
      return;
    }
    for (double& x : *vec) x /= norm;
  };
  normalize(&u);

  v.assign(cols, 0.0);
  for (int it = 0; it < iters; ++it) {
    // v = W^T u
    std::fill(v.begin(), v.end(), 0.0);
    for (std::size_t i = 0; i < rows; ++i) {
      const double* row = w.row_data(i);
      const double ui = u[i];
      for (std::size_t j = 0; j < cols; ++j) v[j] += row[j] * ui;
    }
    normalize(&v);
    // u = W v
    for (std::size_t i = 0; i < rows; ++i) {
      const double* row = w.row_data(i);
      double acc = 0.0;
      for (std::size_t j = 0; j < cols; ++j) acc += row[j] * v[j];
      u[i] = acc;
    }
    normalize(&u);
  }
  // sigma = u^T W v
  double sigma = 0.0;
  for (std::size_t i = 0; i < rows; ++i) {
    const double* row = w.row_data(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < cols; ++j) acc += row[j] * v[j];
    sigma += u[i] * acc;
  }
  est->sigma = std::fabs(sigma);
}

SpectralEstimate PowerIteration(const Matrix& w, const std::vector<double>& u0,
                                int iters, Rng* rng) {
  SpectralEstimate est;
  est.u = u0;  // warm start iff the size matches, as before
  PowerIterationInto(w, iters, rng, &est);
  return est;
}

}  // namespace faction
