#include "density/grouped_density.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/parallel.h"
#include "tensor/ops.h"

namespace faction {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

}  // namespace

void GroupedDensityEstimator::BuildGroupLookup() {
  group_lookup_.clear();
  group_lookup_.reserve(sensitive_values_.size());
  for (std::size_t i = 0; i < sensitive_values_.size(); ++i) {
    group_lookup_.emplace_back(sensitive_values_[i], i);
  }
  std::sort(group_lookup_.begin(), group_lookup_.end());
}

std::size_t GroupedDensityEstimator::GroupPosition(int sensitive) const {
  const auto it = std::lower_bound(
      group_lookup_.begin(), group_lookup_.end(), sensitive,
      [](const std::pair<int, std::size_t>& e, int v) { return e.first < v; });
  if (it == group_lookup_.end() || it->first != sensitive) {
    return sensitive_values_.size();
  }
  return it->second;
}

Result<GroupedDensityEstimator> GroupedDensityEstimator::Fit(
    const Matrix& features, const std::vector<int>& labels,
    const std::vector<int>& sensitive, int num_classes,
    std::vector<int> sensitive_values, const CovarianceConfig& config) {
  const std::size_t n = features.rows();
  if (n == 0) {
    return Status::InvalidArgument("GroupedDensityEstimator: no samples");
  }
  if (labels.size() != n || sensitive.size() != n) {
    return Status::InvalidArgument(
        "GroupedDensityEstimator: labels/sensitive size mismatch");
  }
  if (num_classes < 2 || sensitive_values.empty()) {
    return Status::InvalidArgument(
        "GroupedDensityEstimator: need >= 2 classes and >= 1 sensitive "
        "value");
  }
  // Sensitive values must be unique.
  std::vector<int> sorted = sensitive_values;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return Status::InvalidArgument(
        "GroupedDensityEstimator: duplicate sensitive values");
  }

  GroupedDensityEstimator est;
  est.dim_ = features.cols();
  est.num_classes_ = num_classes;
  est.sensitive_values_ = std::move(sensitive_values);
  est.BuildGroupLookup();
  const std::size_t num_groups = est.sensitive_values_.size();
  const std::size_t total = static_cast<std::size_t>(num_classes) * num_groups;
  est.components_.resize(total);
  est.present_.assign(total, false);
  est.weights_.assign(total, 0.0);
  est.log_weights_.assign(total, kNegInf);
  est.counts_.assign(total, 0);
  est.total_ = n;
  est.forgetting_ = config.forgetting;
  est.wcounts_.assign(total, 0.0);
  est.wtotal_ = static_cast<double>(n);

  // Validate inputs and bucket row indices per component.
  std::vector<std::vector<std::size_t>> buckets(total);
  for (std::size_t i = 0; i < n; ++i) {
    if (labels[i] < 0 || labels[i] >= num_classes) {
      return Status::OutOfRange("GroupedDensityEstimator: label " +
                                std::to_string(labels[i]) +
                                " outside [0, C)");
    }
    const std::size_t group = est.GroupPosition(sensitive[i]);
    if (group == num_groups) {
      return Status::OutOfRange(
          "GroupedDensityEstimator: sensitive value " +
          std::to_string(sensitive[i]) + " not in the declared set");
    }
    buckets[est.ComponentIndex(labels[i], group)].push_back(i);
  }

  std::size_t fitted = 0;
  for (std::size_t idx = 0; idx < total; ++idx) {
    est.counts_[idx] = buckets[idx].size();
    est.wcounts_[idx] = static_cast<double>(buckets[idx].size());
    est.weights_[idx] = static_cast<double>(buckets[idx].size()) /
                        static_cast<double>(n);
    if (est.weights_[idx] > 0.0) {
      est.log_weights_[idx] = std::log(est.weights_[idx]);
    }
    if (buckets[idx].empty()) continue;
    Matrix rows(buckets[idx].size(), est.dim_);
    for (std::size_t r = 0; r < buckets[idx].size(); ++r) {
      std::copy(features.row_data(buckets[idx][r]),
                features.row_data(buckets[idx][r]) + est.dim_,
                rows.row_data(r));
    }
    FACTION_ASSIGN_OR_RETURN(Gaussian g, Gaussian::Fit(rows, config));
    est.components_[idx] = std::move(g);
    est.present_[idx] = true;
    ++fitted;
  }
  if (fitted == 0) {
    return Status::FailedPrecondition(
        "GroupedDensityEstimator: no component has samples");
  }
  return est;
}

void GroupedDensityEstimator::RefreshWeights() {
  const std::size_t total = counts_.size();
  weights_.assign(total, 0.0);
  log_weights_.assign(total, kNegInf);
  for (std::size_t idx = 0; idx < total; ++idx) {
    weights_[idx] =
        forgetting_
            ? wcounts_[idx] / wtotal_
            : static_cast<double>(counts_[idx]) / static_cast<double>(total_);
    if (weights_[idx] > 0.0) log_weights_[idx] = std::log(weights_[idx]);
  }
}

Status GroupedDensityEstimator::UpdateOne(const double* z, int label,
                                          int sensitive,
                                          const CovarianceConfig& config) {
  if (total_ == 0) {
    return Status::FailedPrecondition(
        "GroupedDensityEstimator::UpdateOne requires a prior successful Fit");
  }
  FACTION_CHECK(z != nullptr);
  if (label < 0 || label >= num_classes_) {
    return Status::OutOfRange("GroupedDensityEstimator: label " +
                              std::to_string(label) + " outside [0, C)");
  }
  const std::size_t group = GroupPosition(sensitive);
  if (group == sensitive_values_.size()) {
    return Status::OutOfRange("GroupedDensityEstimator: sensitive value " +
                              std::to_string(sensitive) +
                              " not in the declared set");
  }
  total_ += 1;
  wtotal_ += 1.0;
  const int idx = ComponentIndex(label, group);
  counts_[idx] += 1;
  wcounts_[idx] += 1.0;
  if (present_[idx]) {
    FACTION_RETURN_IF_ERROR(components_[idx].UpdateOne(z, config));
  } else {
    Matrix row(1, dim_);
    std::copy(z, z + dim_, row.row_data(0));
    FACTION_ASSIGN_OR_RETURN(Gaussian g, Gaussian::Fit(row, config));
    components_[idx] = std::move(g);
    present_[idx] = true;
  }
  RefreshWeights();
  return Status::Ok();
}

Status GroupedDensityEstimator::DowndateOne(const double* z, int label,
                                            int sensitive,
                                            const CovarianceConfig& config,
                                            double row_weight) {
  FACTION_CHECK(z != nullptr);
  FACTION_CHECK_GT(total_, std::size_t{0});
  if (label < 0 || label >= num_classes_) {
    return Status::OutOfRange("GroupedDensityEstimator: label " +
                              std::to_string(label) + " outside [0, C)");
  }
  const std::size_t group = GroupPosition(sensitive);
  if (group == sensitive_values_.size()) {
    return Status::OutOfRange("GroupedDensityEstimator: sensitive value " +
                              std::to_string(sensitive) +
                              " not in the declared set");
  }
  const int idx = ComponentIndex(label, group);
  // Evicting a row the component never absorbed is a caller bug.
  FACTION_CHECK(present_[idx]);
  FACTION_CHECK_GT(counts_[idx], std::size_t{0});
  total_ -= 1;
  wtotal_ -= row_weight;
  counts_[idx] -= 1;
  wcounts_[idx] -= row_weight;
  if (counts_[idx] == 0) {
    present_[idx] = false;
    wcounts_[idx] = 0.0;
  } else {
    FACTION_RETURN_IF_ERROR(
        components_[idx].DowndateOne(z, config, row_weight));
  }
  RefreshWeights();
  return Status::Ok();
}

void GroupedDensityEstimator::Decay(double gamma) {
  FACTION_CHECK(forgetting_);
  FACTION_CHECK(gamma > 0.0 && gamma <= 1.0);
  for (std::size_t idx = 0; idx < components_.size(); ++idx) {
    if (present_[idx]) components_[idx].Decay(gamma);
    wcounts_[idx] *= gamma;
  }
  wtotal_ *= gamma;
  // Uniform scaling cancels in every weight ratio — no RefreshWeights.
}

bool GroupedDensityEstimator::HasComponent(int label, int sensitive) const {
  const std::size_t group = GroupPosition(sensitive);
  if (group == sensitive_values_.size() || label < 0 ||
      label >= num_classes_) {
    return false;
  }
  return present_[ComponentIndex(label, group)];
}

double GroupedDensityEstimator::LogComponentDensity(
    const std::vector<double>& z, int label, int sensitive) const {
  FACTION_DCHECK_LEN(z, dim_);
  const std::size_t group = GroupPosition(sensitive);
  if (group == sensitive_values_.size() || label < 0 ||
      label >= num_classes_) {
    return kNegInf;
  }
  const int idx = ComponentIndex(label, group);
  return present_[idx] ? components_[idx].LogPdf(z) : kNegInf;
}

double GroupedDensityEstimator::Weight(int label, int sensitive) const {
  const std::size_t group = GroupPosition(sensitive);
  if (group == sensitive_values_.size() || label < 0 ||
      label >= num_classes_) {
    return 0.0;
  }
  return weights_[ComponentIndex(label, group)];
}

double GroupedDensityEstimator::LogMarginalDensity(
    const std::vector<double>& z) const {
  FACTION_DCHECK_LEN(z, dim_);
  std::vector<double> terms;
  for (int y = 0; y < num_classes_; ++y) {
    for (std::size_t g = 0; g < sensitive_values_.size(); ++g) {
      const int idx = ComponentIndex(y, g);
      if (!present_[idx] || weights_[idx] <= 0.0) continue;
      terms.push_back(components_[idx].LogPdf(z) + std::log(weights_[idx]));
    }
  }
  if (terms.empty()) return kNegInf;
  return LogSumExp(terms);
}

double GroupedDensityEstimator::DeltaG(const std::vector<double>& z,
                                       int label) const {
  FACTION_DCHECK_LEN(z, dim_);
  if (label < 0 || label >= num_classes_) return 0.0;
  // Collect raw densities (0 for missing components).
  std::vector<double> densities;
  std::size_t with_signal = 0;
  for (std::size_t g = 0; g < sensitive_values_.size(); ++g) {
    const int idx = ComponentIndex(label, g);
    if (present_[idx]) {
      densities.push_back(std::exp(components_[idx].LogPdf(z)));
      ++with_signal;
    } else {
      densities.push_back(0.0);
    }
  }
  if (with_signal == 0 || sensitive_values_.size() < 2) return 0.0;
  const auto [mn, mx] =
      std::minmax_element(densities.begin(), densities.end());
  return *mx - *mn;
}

double GroupedDensityEstimator::LogDeltaG(const std::vector<double>& z,
                                          int label) const {
  FACTION_DCHECK_LEN(z, dim_);
  if (label < 0 || label >= num_classes_ || sensitive_values_.size() < 2) {
    return kNegInf;
  }
  // max pairwise |g - g'| = g_max - g_min; compute log(g_max - g_min)
  // stably from the log densities.
  double log_max = kNegInf;
  double log_min = std::numeric_limits<double>::infinity();
  bool any_missing = false;
  for (std::size_t g = 0; g < sensitive_values_.size(); ++g) {
    const int idx = ComponentIndex(label, g);
    if (!present_[idx]) {
      any_missing = true;
      continue;
    }
    const double lp = components_[idx].LogPdf(z);
    log_max = std::max(log_max, lp);
    log_min = std::min(log_min, lp);
  }
  if (!std::isfinite(log_max)) return kNegInf;  // no fitted group
  if (any_missing) return log_max;              // gap against density 0
  const double gap = log_max - log_min;
  if (gap < 1e-300) return kNegInf;
  return log_max + std::log1p(-std::exp(-gap));
}

void GroupedDensityEstimator::LogMarginalDensityBatch(const Matrix& zs,
                                                      double* out) const {
  FACTION_CHECK_EQ(zs.cols(), dim_);
  const std::size_t n = zs.rows();
  if (n == 0) return;
  // Active components in ascending index order — the same term order the
  // per-sample path uses, so the LogSumExp combine is bitwise identical.
  std::vector<std::size_t> active;
  for (std::size_t idx = 0; idx < components_.size(); ++idx) {
    if (present_[idx] && weights_[idx] > 0.0) active.push_back(idx);
  }
  if (active.empty()) {
    for (std::size_t i = 0; i < n; ++i) out[i] = kNegInf;
    return;
  }
  // One blocked solve per active component for the whole batch, instead of
  // n per-sample solves with per-call temporaries.
  Matrix comp(active.size(), n);
  for (std::size_t a = 0; a < active.size(); ++a) {
    components_[active[a]].LogPdfBatch(zs, comp.row_data(a));
  }
  constexpr std::size_t kCombineGrain = 512;
  ParallelFor(0, n, kCombineGrain, [&](std::size_t i0, std::size_t i1) {
    std::vector<double> terms(active.size());
    for (std::size_t i = i0; i < i1; ++i) {
      for (std::size_t a = 0; a < active.size(); ++a) {
        terms[a] = comp(a, i) + log_weights_[active[a]];
      }
      out[i] = LogSumExp(terms.data(), terms.size());
    }
  });
}

std::vector<double> GroupedDensityEstimator::LogMarginalDensityBatch(
    const Matrix& zs) const {
  std::vector<double> out(zs.rows());
  LogMarginalDensityBatch(zs, out.data());
  return out;
}

void GroupedDensityEstimator::LogDeltaGBatch(const Matrix& zs, int label,
                                             double* out) const {
  FACTION_CHECK_EQ(zs.cols(), dim_);
  const std::size_t n = zs.rows();
  if (n == 0) return;
  if (label < 0 || label >= num_classes_ || sensitive_values_.size() < 2) {
    for (std::size_t i = 0; i < n; ++i) out[i] = kNegInf;
    return;
  }
  std::vector<std::size_t> fitted;  // present components of this class
  bool any_missing = false;
  for (std::size_t g = 0; g < sensitive_values_.size(); ++g) {
    const std::size_t idx = ComponentIndex(label, g);
    if (present_[idx]) {
      fitted.push_back(idx);
    } else {
      any_missing = true;
    }
  }
  if (fitted.empty()) {
    for (std::size_t i = 0; i < n; ++i) out[i] = kNegInf;
    return;
  }
  Matrix comp(fitted.size(), n);
  for (std::size_t a = 0; a < fitted.size(); ++a) {
    components_[fitted[a]].LogPdfBatch(zs, comp.row_data(a));
  }
  constexpr std::size_t kCombineGrain = 1024;
  ParallelFor(0, n, kCombineGrain, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      double log_max = kNegInf;
      double log_min = std::numeric_limits<double>::infinity();
      for (std::size_t a = 0; a < fitted.size(); ++a) {
        const double lp = comp(a, i);
        log_max = std::max(log_max, lp);
        log_min = std::min(log_min, lp);
      }
      if (!std::isfinite(log_max)) {
        out[i] = kNegInf;
      } else if (any_missing) {
        out[i] = log_max;  // gap against density 0
      } else {
        const double gap = log_max - log_min;
        out[i] =
            gap < 1e-300 ? kNegInf : log_max + std::log1p(-std::exp(-gap));
      }
    }
  });
}

std::vector<double> GroupedDensityEstimator::LogDeltaGBatch(const Matrix& zs,
                                                            int label) const {
  std::vector<double> out(zs.rows());
  LogDeltaGBatch(zs, label, out.data());
  return out;
}

}  // namespace faction
