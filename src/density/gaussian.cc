#include "density/gaussian.h"

#include <cmath>

#include "common/check.h"

#include "tensor/linalg.h"

namespace faction {

Result<Gaussian> Gaussian::Fit(const Matrix& samples,
                               const CovarianceConfig& config,
                               double fallback_scale) {
  const std::size_t n = samples.rows();
  const std::size_t d = samples.cols();
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("Gaussian::Fit requires samples");
  }
  Gaussian g;
  g.mean_.assign(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = samples.row_data(i);
    for (std::size_t j = 0; j < d; ++j) g.mean_[j] += row[j];
  }
  for (double& m : g.mean_) m /= static_cast<double>(n);

  Matrix cov(d, d);
  if (n >= 2) {
    for (std::size_t i = 0; i < n; ++i) {
      const double* row = samples.row_data(i);
      for (std::size_t a = 0; a < d; ++a) {
        const double da = row[a] - g.mean_[a];
        for (std::size_t b = 0; b <= a; ++b) {
          cov(a, b) += da * (row[b] - g.mean_[b]);
        }
      }
    }
    for (std::size_t a = 0; a < d; ++a) {
      for (std::size_t b = 0; b <= a; ++b) {
        cov(a, b) /= static_cast<double>(n);
        cov(b, a) = cov(a, b);
      }
    }
    // Shrinkage toward the scaled identity.
    double trace = 0.0;
    for (std::size_t a = 0; a < d; ++a) trace += cov(a, a);
    const double iso = trace / static_cast<double>(d);
    const double rho = config.shrinkage;
    for (std::size_t a = 0; a < d; ++a) {
      for (std::size_t b = 0; b < d; ++b) {
        cov(a, b) *= 1.0 - rho;
        if (a == b) cov(a, b) += rho * iso;
      }
    }
  } else {
    // A single sample carries no covariance information.
    for (std::size_t a = 0; a < d; ++a) cov(a, a) = fallback_scale;
  }

  // Progressive jitter until the Cholesky succeeds.
  double jitter = config.jitter;
  for (int attempt = 0; attempt <= config.max_jitter_doublings; ++attempt) {
    Matrix regularized = cov;
    for (std::size_t a = 0; a < d; ++a) regularized(a, a) += jitter;
    Result<Matrix> chol = Cholesky(regularized);
    if (chol.ok()) {
      g.chol_ = std::move(chol).value();
      g.log_det_ = LogDetFromCholesky(g.chol_);
      FACTION_DCHECK_FINITE(g.log_det_);
      return g;
    }
    jitter = jitter > 0.0 ? jitter * 2.0 : 1e-8;
  }
  return Status::NumericalError(
      "Gaussian::Fit: covariance not positive definite even after jitter");
}

double Gaussian::MahalanobisSquared(const std::vector<double>& z) const {
  FACTION_CHECK_LEN(z, dim());
  std::vector<double> centered(dim());
  for (std::size_t j = 0; j < dim(); ++j) centered[j] = z[j] - mean_[j];
  // Solve L y = (z - mu); then |y|^2 is the Mahalanobis square.
  const std::vector<double> y = ForwardSolve(chol_, centered);
  double acc = 0.0;
  for (double v : y) acc += v * v;
  FACTION_DCHECK_FINITE(acc);
  return acc;
}

double Gaussian::LogPdf(const std::vector<double>& z) const {
  static constexpr double kLog2Pi = 1.8378770664093453;
  const double maha = MahalanobisSquared(z);
  return -0.5 * (static_cast<double>(dim()) * kLog2Pi + log_det_ + maha);
}

}  // namespace faction
