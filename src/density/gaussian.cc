#include "density/gaussian.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "tensor/linalg.h"

namespace faction {

Result<Gaussian> Gaussian::Fit(const Matrix& samples,
                               const CovarianceConfig& config,
                               double fallback_scale) {
  const std::size_t n = samples.rows();
  const std::size_t d = samples.cols();
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("Gaussian::Fit requires samples");
  }
  Gaussian g;
  g.mean_.assign(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = samples.row_data(i);
    for (std::size_t j = 0; j < d; ++j) g.mean_[j] += row[j];
  }
  for (double& m : g.mean_) m /= static_cast<double>(n);

  Matrix cov(d, d);
  if (n >= 2) {
    for (std::size_t i = 0; i < n; ++i) {
      const double* row = samples.row_data(i);
      for (std::size_t a = 0; a < d; ++a) {
        const double da = row[a] - g.mean_[a];
        for (std::size_t b = 0; b <= a; ++b) {
          cov(a, b) += da * (row[b] - g.mean_[b]);
        }
      }
    }
    for (std::size_t a = 0; a < d; ++a) {
      for (std::size_t b = 0; b <= a; ++b) {
        cov(a, b) /= static_cast<double>(n);
        cov(b, a) = cov(a, b);
      }
    }
    // Shrinkage toward the scaled identity.
    double trace = 0.0;
    for (std::size_t a = 0; a < d; ++a) trace += cov(a, a);
    const double iso = trace / static_cast<double>(d);
    const double rho = config.shrinkage;
    for (std::size_t a = 0; a < d; ++a) {
      for (std::size_t b = 0; b < d; ++b) {
        cov(a, b) *= 1.0 - rho;
        if (a == b) cov(a, b) += rho * iso;
      }
    }
  } else {
    // A single sample carries no covariance information.
    for (std::size_t a = 0; a < d; ++a) cov(a, a) = fallback_scale;
  }

  // Progressive jitter until the Cholesky succeeds.
  double jitter = config.jitter;
  for (int attempt = 0; attempt <= config.max_jitter_doublings; ++attempt) {
    Matrix regularized = cov;
    for (std::size_t a = 0; a < d; ++a) regularized(a, a) += jitter;
    Result<Matrix> chol = Cholesky(regularized);
    if (chol.ok()) {
      g.chol_ = std::move(chol).value();
      g.log_det_ = LogDetFromCholesky(g.chol_);
      FACTION_DCHECK_FINITE(g.log_det_);
      return g;
    }
    jitter = jitter > 0.0 ? jitter * 2.0 : 1e-8;
  }
  return Status::NumericalError(
      "Gaussian::Fit: covariance not positive definite even after jitter");
}

double Gaussian::MahalanobisSquared(const std::vector<double>& z) const {
  FACTION_CHECK_LEN(z, dim());
  std::vector<double> centered(dim());
  for (std::size_t j = 0; j < dim(); ++j) centered[j] = z[j] - mean_[j];
  // Solve L y = (z - mu); then |y|^2 is the Mahalanobis square.
  const std::vector<double> y = ForwardSolve(chol_, centered);
  double acc = 0.0;
  for (double v : y) acc += v * v;
  FACTION_DCHECK_FINITE(acc);
  return acc;
}

double Gaussian::LogPdf(const std::vector<double>& z) const {
  static constexpr double kLog2Pi = 1.8378770664093453;
  const double maha = MahalanobisSquared(z);
  return -0.5 * (static_cast<double>(dim()) * kLog2Pi + log_det_ + maha);
}

void Gaussian::LogPdfBatch(const Matrix& zs, double* out) const {
  static constexpr double kLog2Pi = 1.8378770664093453;
  const std::size_t d = dim();
  FACTION_CHECK_EQ(zs.cols(), d);
  const std::size_t n = zs.rows();
  if (n == 0) return;
  const double base = static_cast<double>(d) * kLog2Pi + log_det_;
  // Samples per block: bounds the dim-major scratch to ~d * 2KB while
  // leaving enough blocks to parallelize a pool-sized batch.
  constexpr std::size_t kBlock = 256;
  ParallelFor(0, n, kBlock, [&](std::size_t s0, std::size_t s1) {
    const std::size_t width = s1 - s0;
    // Dim-major scratch: y[j * width + t] belongs to sample s0 + t, so the
    // inner solve loops stream contiguously over the block.
    std::vector<double> y(d * width);
    for (std::size_t t = 0; t < width; ++t) {
      const double* zrow = zs.row_data(s0 + t);
      for (std::size_t j = 0; j < d; ++j) {
        y[j * width + t] = zrow[j] - mean_[j];
      }
    }
    // Forward solve L Y = C for the whole block; per sample this is the
    // exact operation order of ForwardSolve (ascending k, then a divide).
    for (std::size_t j = 0; j < d; ++j) {
      const double* lrow = chol_.row_data(j);
      double* yj = y.data() + j * width;
      for (std::size_t k = 0; k < j; ++k) {
        const double ljk = lrow[k];
        const double* yk = y.data() + k * width;
        for (std::size_t t = 0; t < width; ++t) yj[t] -= ljk * yk[t];
      }
      const double ljj = lrow[j];
      for (std::size_t t = 0; t < width; ++t) yj[t] /= ljj;
    }
    for (std::size_t t = 0; t < width; ++t) {
      double maha = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        const double v = y[j * width + t];
        maha += v * v;
      }
      FACTION_DCHECK_FINITE(maha);
      out[s0 + t] = -0.5 * (base + maha);
    }
  });
}

std::vector<double> Gaussian::LogPdfBatch(const Matrix& zs) const {
  std::vector<double> out(zs.rows());
  LogPdfBatch(zs, out.data());
  return out;
}

}  // namespace faction
