// FACTION_HOT: density evaluation backs both the per-arrival score and the
// batched pool scoring ban regions; allocating idioms here are lint
// findings (tools/lint.py no-alloc-in-hot, DESIGN.md §13). Fitting and the
// scalar convenience wrappers sit inside FACTION_COLD fences.
#include "density/gaussian.h"

#include <cmath>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "tensor/linalg.h"
#include "tensor/simd.h"

namespace faction {

namespace {

// Rank-1 downdate guard margin: p^T p above 1 - kDowndateGuardTol means
// the downdated covariance would sit too close to the positive-definite
// boundary for the hyperbolic sweep to be trustworthy — refactor instead.
constexpr double kDowndateGuardTol = 1e-8;

}  // namespace

// FACTION_COLD_BEGIN: batch fitting allocates the moment matrices once per
// (re)fit — amortized per round, not per arrival.
Result<Gaussian> Gaussian::Fit(const Matrix& samples,
                               const CovarianceConfig& config,
                               double fallback_scale) {
  const std::size_t n = samples.rows();
  const std::size_t d = samples.cols();
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("Gaussian::Fit requires samples");
  }
  if (config.forgetting && !(config.ridge > 0.0)) {
    return Status::InvalidArgument(
        "Gaussian::Fit: forgetting mode requires ridge > 0");
  }
  Gaussian g;
  g.count_ = n;
  g.forgetting_ = config.forgetting;
  g.weight_ = static_cast<double>(n);
  g.ridge_ = config.ridge;
  g.sum_.assign(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = samples.row_data(i);
    for (std::size_t j = 0; j < d; ++j) g.sum_[j] += row[j];
  }
  g.mean_.resize(d);
  for (std::size_t j = 0; j < d; ++j) {
    g.mean_[j] = g.sum_[j] / static_cast<double>(n);
  }

  Matrix cov(d, d);
  g.scatter_ = Matrix(d, d);
  if (n >= 2) {
    for (std::size_t i = 0; i < n; ++i) {
      const double* row = samples.row_data(i);
      for (std::size_t a = 0; a < d; ++a) {
        const double da = row[a] - g.mean_[a];
        double* cov_a = cov.row_data(a);
        for (std::size_t b = 0; b <= a; ++b) {
          cov_a[b] += da * (row[b] - g.mean_[b]);
        }
      }
    }
    // Derive the raw scatter sum_i x_i x_i^T from the centered one before
    // the in-place normalization below destroys it:
    //   S_raw = S_c + (sum sum^T)/n.
    for (std::size_t a = 0; a < d; ++a) {
      const double* cov_a = cov.row_data(a);
      double* sc_a = g.scatter_.row_data(a);
      for (std::size_t b = 0; b <= a; ++b) {
        sc_a[b] =
            cov_a[b] + g.sum_[a] * g.sum_[b] / static_cast<double>(n);
        g.scatter_(b, a) = sc_a[b];
      }
    }
    if (config.forgetting) {
      // Ridge regularization: Sigma = (M + ridge * I) / n on the centered
      // scatter M still sitting in cov's lower triangle. No shrinkage, no
      // jitter — the exact matrix the rank-1 update/downdate path
      // maintains.
      for (std::size_t a = 0; a < d; ++a) {
        double* cov_a = cov.row_data(a);
        for (std::size_t b = 0; b <= a; ++b) {
          double m = cov_a[b];
          if (a == b) m += config.ridge;
          cov_a[b] = m / static_cast<double>(n);
          cov(b, a) = cov_a[b];
        }
      }
    } else {
      for (std::size_t a = 0; a < d; ++a) {
        double* cov_a = cov.row_data(a);
        for (std::size_t b = 0; b <= a; ++b) {
          cov_a[b] /= static_cast<double>(n);
          cov(b, a) = cov_a[b];
        }
      }
      // Shrinkage toward the scaled identity.
      double trace = 0.0;
      for (std::size_t a = 0; a < d; ++a) trace += cov(a, a);
      const double iso = trace / static_cast<double>(d);
      const double rho = config.shrinkage;
      for (std::size_t a = 0; a < d; ++a) {
        double* cov_a = cov.row_data(a);
        for (std::size_t b = 0; b < d; ++b) {
          cov_a[b] *= 1.0 - rho;
          if (a == b) cov_a[b] += rho * iso;
        }
      }
    }
  } else {
    // A single sample carries no covariance information, but its raw
    // scatter is exactly x x^T = sum sum^T.
    for (std::size_t a = 0; a < d; ++a) {
      double* sc_a = g.scatter_.row_data(a);
      for (std::size_t b = 0; b <= a; ++b) {
        sc_a[b] = g.sum_[a] * g.sum_[b];
        g.scatter_(b, a) = sc_a[b];
      }
    }
    for (std::size_t a = 0; a < d; ++a) {
      cov(a, a) = config.forgetting ? config.ridge : fallback_scale;
    }
  }

  if (config.forgetting) {
    FACTION_RETURN_IF_ERROR(g.FactorRidgeCovariance(cov, config));
    // Rank-1 scratch sized here, in the cold batch path, so the first
    // steady-state update/evict after a (re)fit allocates nothing.
    g.down_v_.assign(d, 0.0);
    g.down_p_.assign(d, 0.0);
  } else {
    FACTION_RETURN_IF_ERROR(g.FactorCovariance(cov, config));
  }
  // Leave the instance fold-warm: RefreshFromMoments writes cov_scratch_
  // and CholeskyInto the trial factor, both still empty on a fresh fit
  // (the accepted factor was swapped *out* of chol_try_). Sizing them here,
  // in the cold batch path, keeps the first incremental UpdateOne after a
  // (re)fit allocation-free — the steady-state gate measures that arrival
  // like any other.
  g.cov_scratch_.ResizeForOverwrite(d, d);
  g.chol_try_.ResizeForOverwrite(d, d);
  return g;
}
// FACTION_COLD_END

Status Gaussian::Update(const Matrix& new_samples,
                        const CovarianceConfig& config,
                        double fallback_scale) {
  if (count_ == 0) {
    return Status::FailedPrecondition(
        "Gaussian::Update requires a prior successful Fit");
  }
  const std::size_t d = dim();
  if (new_samples.cols() != d) {
    return Status::InvalidArgument("Gaussian::Update: dimension mismatch");
  }
  const std::size_t added = new_samples.rows();
  if (added == 0) return Status::Ok();

  if (forgetting_) {
    // Per-row rank-1 factor updates: O(added * d^2) total, no
    // refactorization at all.
    for (std::size_t i = 0; i < added; ++i) {
      FACTION_RETURN_IF_ERROR(
          UpdateOne(new_samples.row_data(i), config, fallback_scale));
    }
    return Status::Ok();
  }

  // Fold the new rows into the raw moments: O(added * d^2), independent of
  // how many samples were absorbed before.
  for (std::size_t i = 0; i < added; ++i) {
    const double* row = new_samples.row_data(i);
    for (std::size_t a = 0; a < d; ++a) {
      const double va = row[a];
      sum_[a] += va;
      double* sc_a = scatter_.row_data(a);
      for (std::size_t b = 0; b <= a; ++b) sc_a[b] += va * row[b];
    }
  }
  count_ += added;
  return RefreshFromMoments(config, fallback_scale);
}

Status Gaussian::UpdateOne(const double* row, const CovarianceConfig& config,
                           double fallback_scale) {
  if (count_ == 0) {
    return Status::FailedPrecondition(
        "Gaussian::UpdateOne requires a prior successful Fit");
  }
  FACTION_CHECK(row != nullptr);
  const std::size_t d = dim();
  if (forgetting_) {
    // Rank-1 factor update, O(d^2): with w' = w + 1 and v = x - mu_old,
    //   Sigma' = (w/w') Sigma + (w/w'^2) v v^T,
    // so the new factor is the old one scaled by sqrt(w/w') then updated
    // with u = v * sqrt(w)/w'. Adding v v^T keeps Sigma' positive
    // definite, so no guard is needed on this side.
    const double w = weight_;
    const double w2 = w + 1.0;
    double* v = down_v_.data();
    for (std::size_t j = 0; j < d; ++j) v[j] = row[j] - mean_[j];
    for (std::size_t a = 0; a < d; ++a) {
      const double va = row[a];
      sum_[a] += va;
      double* sc_a = scatter_.row_data(a);
      for (std::size_t b = 0; b <= a; ++b) sc_a[b] += va * row[b];
    }
    count_ += 1;
    weight_ = w2;
    for (std::size_t j = 0; j < d; ++j) mean_[j] = sum_[j] / w2;
    const double scale = std::sqrt(w / w2);
    for (std::size_t a = 0; a < d; ++a) {
      double* ch_a = chol_.row_data(a);
      for (std::size_t b = 0; b <= a; ++b) ch_a[b] *= scale;
    }
    const double vs = std::sqrt(w) / w2;
    for (std::size_t j = 0; j < d; ++j) v[j] *= vs;
    CholeskyRank1UpdateInPlace(&chol_, v, d);
    log_det_ = LogDetFromCholesky(chol_);
    FACTION_DCHECK_FINITE(log_det_);
    return Status::Ok();
  }
  for (std::size_t a = 0; a < d; ++a) {
    const double va = row[a];
    sum_[a] += va;
    double* sc_a = scatter_.row_data(a);
    for (std::size_t b = 0; b <= a; ++b) sc_a[b] += va * row[b];
  }
  count_ += 1;
  return RefreshFromMoments(config, fallback_scale);
}

Status Gaussian::Downdate(const Matrix& old_rows,
                          const CovarianceConfig& config,
                          double fallback_scale) {
  if (count_ == 0) {
    return Status::FailedPrecondition(
        "Gaussian::Downdate requires a prior successful Fit");
  }
  if (old_rows.cols() != dim()) {
    return Status::InvalidArgument("Gaussian::Downdate: dimension mismatch");
  }
  for (std::size_t i = 0; i < old_rows.rows(); ++i) {
    FACTION_RETURN_IF_ERROR(
        DowndateOne(old_rows.row_data(i), config, 1.0, fallback_scale));
  }
  return Status::Ok();
}

Status Gaussian::DowndateOne(const double* row, const CovarianceConfig& config,
                             double row_weight, double fallback_scale) {
  FACTION_CHECK(row != nullptr);
  // Evicting the last sample would leave nothing to estimate from; the
  // mixture layer drops the component instead of downdating it to zero.
  FACTION_CHECK_GT(count_, std::size_t{1});
  const std::size_t d = dim();
  TelemetryCount("density.downdates");
  if (!forgetting_) {
    FACTION_CHECK(row_weight == 1.0);
    for (std::size_t a = 0; a < d; ++a) {
      const double va = row[a];
      sum_[a] -= va;
      double* sc_a = scatter_.row_data(a);
      for (std::size_t b = 0; b <= a; ++b) sc_a[b] -= va * row[b];
    }
    count_ -= 1;
    // Legacy regularization cannot be maintained rank-1 (see
    // CovarianceConfig::forgetting): every legacy downdate is a refactor.
    TelemetryCount("density.downdate_fallback_refactors");
    return RefreshFromMoments(config, fallback_scale);
  }
  FACTION_CHECK(row_weight > 0.0);
  const double w = weight_;
  const double omega = row_weight;
  const double w2 = w - omega;
  // Moments first: wherever the guard trips below, the fallback refactor
  // reads fully downdated statistics.
  for (std::size_t a = 0; a < d; ++a) {
    const double va = omega * row[a];
    sum_[a] -= va;
    double* sc_a = scatter_.row_data(a);
    for (std::size_t b = 0; b <= a; ++b) sc_a[b] -= va * row[b];
  }
  count_ -= 1;
  weight_ = w2;
  if (!(w2 >= static_cast<double>(d) + 1.0)) {
    // Below d + 1 effective samples the downdated covariance sits too
    // close to rank deficiency for a guarded rank-1 sweep.
    TelemetryCount("density.downdate_fallback_refactors");
    return RefreshRidge(config);
  }
  for (std::size_t j = 0; j < d; ++j) mean_[j] = sum_[j] / w2;
  // Positive-definiteness guard against the *unmodified* factor: with
  // v = x - mu', the downdated covariance is
  //   Sigma' = (w/w') Sigma - (omega/w) v v^T = S S^T - u u^T
  // for S = sqrt(w/w') L and u = v sqrt(omega/w); Sigma' stays positive
  // definite iff |S^-1 u|^2 = (omega w' / w^2) |L^-1 v|^2 < 1. The solve
  // runs through the dispatched kernel — bitwise-identical across tiers,
  // so the guard's branch is too.
  double* v = down_v_.data();
  double* p = down_p_.data();
  for (std::size_t j = 0; j < d; ++j) {
    v[j] = row[j] - mean_[j];
    p[j] = v[j];
  }
  double pnorm2 = 0.0;
  ActiveSimd().downdate_solve(chol_.data(), d, p, 1, &pnorm2);
  const double guard = (omega * w2 / (w * w)) * pnorm2;
  if (!(guard < 1.0 - kDowndateGuardTol)) {
    TelemetryCount("density.downdate_fallback_refactors");
    return RefreshRidge(config);
  }
  const double scale = std::sqrt(w / w2);
  for (std::size_t a = 0; a < d; ++a) {
    double* ch_a = chol_.row_data(a);
    for (std::size_t b = 0; b <= a; ++b) ch_a[b] *= scale;
  }
  const double vs = std::sqrt(omega / w);
  for (std::size_t j = 0; j < d; ++j) v[j] *= vs;
  const Status downdated = CholeskyRank1DowndateInPlace(&chol_, v, d);
  if (!downdated.ok()) {
    // Pivot lost mid-sweep despite the guard: the factor is partially
    // mutated, but the refactor below overwrites it entirely from the
    // already-downdated moments.
    TelemetryCount("density.downdate_fallback_refactors");
    return RefreshRidge(config);
  }
  log_det_ = LogDetFromCholesky(chol_);
  FACTION_DCHECK_FINITE(log_det_);
  return Status::Ok();
}

void Gaussian::Decay(double gamma) {
  FACTION_CHECK(forgetting_);
  FACTION_CHECK(gamma > 0.0 && gamma <= 1.0);
  // Sigma = (gamma*M + gamma*ridge*I) / (gamma*w) is invariant: only the
  // raw statistics scale; mean_, chol_, and log_det_ stay bitwise
  // untouched (tests pin this). The decay's effect surfaces at the next
  // Update/Downdate, whose sample meets a lighter history.
  weight_ *= gamma;
  ridge_ *= gamma;
  const std::size_t d = dim();
  for (std::size_t j = 0; j < d; ++j) sum_[j] *= gamma;
  double* sc = scatter_.data();
  for (std::size_t i = 0; i < d * d; ++i) sc[i] *= gamma;
  TelemetryCount("density.decays");
}

Status Gaussian::RefreshRidge(const CovarianceConfig& config) {
  const std::size_t d = dim();
  const double w = weight_;
  FACTION_CHECK(w > 0.0);
  for (std::size_t j = 0; j < d; ++j) mean_[j] = sum_[j] / w;
  for (std::size_t a = 0; a < d; ++a) {
    const double* sc_a = scatter_.row_data(a);
    for (std::size_t b = 0; b < a; ++b) scatter_(b, a) = sc_a[b];
  }
  Matrix& cov = cov_scratch_;
  // Every element is written (lower triangle then mirror) before the
  // factorization reads it, so the skip-the-clear resize is exact.
  cov.ResizeForOverwrite(d, d);
  for (std::size_t a = 0; a < d; ++a) {
    const double* sc_a = scatter_.row_data(a);
    double* cov_a = cov.row_data(a);
    for (std::size_t b = 0; b <= a; ++b) {
      double m = sc_a[b] - sum_[a] * sum_[b] / w;
      if (a == b) m += ridge_;
      cov_a[b] = m / w;
      cov(b, a) = cov_a[b];
    }
  }
  return FactorRidgeCovariance(cov, config);
}

Status Gaussian::FactorRidgeCovariance(const Matrix& cov,
                                       const CovarianceConfig& config) {
  // The ridge keeps cov positive definite by construction, so factor it
  // directly — the incremental factor and a refactor then describe the
  // same matrix, jitter-free. The progressive-jitter loop is a rescue for
  // numerical failure only.
  const Status direct = CholeskyInto(cov, &chol_try_);
  if (direct.ok()) {
    std::swap(chol_, chol_try_);
    log_det_ = LogDetFromCholesky(chol_);
    FACTION_DCHECK_FINITE(log_det_);
    return Status::Ok();
  }
  return FactorCovariance(cov, config);
}

Status Gaussian::RefreshFromMoments(const CovarianceConfig& config,
                                    double fallback_scale) {
  if (forgetting_) return RefreshRidge(config);
  const std::size_t d = dim();
  const double n = static_cast<double>(count_);
  for (std::size_t j = 0; j < d; ++j) mean_[j] = sum_[j] / n;
  for (std::size_t a = 0; a < d; ++a) {
    const double* sc_a = scatter_.row_data(a);
    for (std::size_t b = 0; b < a; ++b) scatter_(b, a) = sc_a[b];
  }

  Matrix& cov = cov_scratch_;
  if (count_ >= 2) {
    // Every element is written (lower triangle then its mirror) before the
    // shrinkage pass reads it back, so the skip-the-clear resize is exact.
    cov.ResizeForOverwrite(d, d);
    // Covariance from the raw moments (scatter/n - mean mean^T): the same
    // estimator as the batch two-pass computation up to rounding.
    for (std::size_t a = 0; a < d; ++a) {
      const double* sc_a = scatter_.row_data(a);
      double* cov_a = cov.row_data(a);
      for (std::size_t b = 0; b <= a; ++b) {
        cov_a[b] = sc_a[b] / n - mean_[a] * mean_[b];
        cov(b, a) = cov_a[b];
      }
    }
    double trace = 0.0;
    for (std::size_t a = 0; a < d; ++a) trace += cov(a, a);
    const double iso = trace / static_cast<double>(d);
    const double rho = config.shrinkage;
    for (std::size_t a = 0; a < d; ++a) {
      double* cov_a = cov.row_data(a);
      for (std::size_t b = 0; b < d; ++b) {
        cov_a[b] *= 1.0 - rho;
        if (a == b) cov_a[b] += rho * iso;
      }
    }
  } else {
    cov.Resize(d, d);
    for (std::size_t a = 0; a < d; ++a) cov(a, a) = fallback_scale;
  }
  return FactorCovariance(cov, config);
}

Status Gaussian::FactorCovariance(const Matrix& cov,
                                  const CovarianceConfig& config) {
  const std::size_t d = cov.rows();
  // Progressive jitter until the Cholesky succeeds. The jittered copy and
  // the trial factor live in member scratch (capacity-retaining copies),
  // and the accepted factor is swapped into chol_, so re-factorizing a
  // warm instance allocates nothing.
  double jitter = config.jitter;
  for (int attempt = 0; attempt <= config.max_jitter_doublings; ++attempt) {
    reg_scratch_ = cov;
    for (std::size_t a = 0; a < d; ++a) reg_scratch_(a, a) += jitter;
    const Status chol_status = CholeskyInto(reg_scratch_, &chol_try_);
    if (chol_status.ok()) {
      std::swap(chol_, chol_try_);
      log_det_ = LogDetFromCholesky(chol_);
      FACTION_DCHECK_FINITE(log_det_);
      return Status::Ok();
    }
    jitter = jitter > 0.0 ? jitter * 2.0 : 1e-8;
  }
  return Status::NumericalError(
      "Gaussian: covariance not positive definite even after jitter");
}

// FACTION_COLD_BEGIN: scalar reference implementations the raw-pointer and
// batched paths are parity-tested against; tests and one-off callers only.
double Gaussian::MahalanobisSquared(const std::vector<double>& z) const {
  FACTION_CHECK_LEN(z, dim());
  std::vector<double> centered(dim());
  for (std::size_t j = 0; j < dim(); ++j) centered[j] = z[j] - mean_[j];
  // Solve L y = (z - mu); then |y|^2 is the Mahalanobis square.
  const std::vector<double> y = ForwardSolve(chol_, centered);
  double acc = 0.0;
  for (double v : y) acc += v * v;
  FACTION_DCHECK_FINITE(acc);
  return acc;
}

double Gaussian::LogPdf(const std::vector<double>& z) const {
  static constexpr double kLog2Pi = 1.8378770664093453;
  const double maha = MahalanobisSquared(z);
  return -0.5 * (static_cast<double>(dim()) * kLog2Pi + log_det_ + maha);
}
// FACTION_COLD_END

double Gaussian::LogPdf(const double* z, double* scratch) const {
  static constexpr double kLog2Pi = 1.8378770664093453;
  const std::size_t d = dim();
  FACTION_DCHECK(z != nullptr);
  FACTION_DCHECK(scratch != nullptr);
  // Center, solve L y = (z - mu) in place, and reduce — the exact
  // operation order of MahalanobisSquared, without its temporaries.
  for (std::size_t j = 0; j < d; ++j) scratch[j] = z[j] - mean_[j];
  ForwardSolveInPlace(chol_, scratch, d);
  double acc = 0.0;
  for (std::size_t j = 0; j < d; ++j) acc += scratch[j] * scratch[j];
  FACTION_DCHECK_FINITE(acc);
  return -0.5 * (static_cast<double>(d) * kLog2Pi + log_det_ + acc);
}

void Gaussian::LogPdfBatch(const Matrix& zs, double* out) const {
  static constexpr double kLog2Pi = 1.8378770664093453;
  const std::size_t d = dim();
  FACTION_CHECK_EQ(zs.cols(), d);
  const std::size_t n = zs.rows();
  if (n == 0) return;
  const double base = static_cast<double>(d) * kLog2Pi + log_det_;
  // Samples per block: bounds the dim-major scratch to ~d * 2KB while
  // leaving enough blocks to parallelize a pool-sized batch.
  constexpr std::size_t kBlock = 256;
  const SimdKernels& kern = ActiveSimd();
  ParallelFor(0, n, kBlock, [&](std::size_t s0, std::size_t s1) {
    const std::size_t width = s1 - s0;
    // Dim-major scratch: y[j * width + t] belongs to sample s0 + t, so the
    // inner solve loops stream contiguously over the block. Per-thread and
    // capacity-retaining (the arena is single-threaded, so worker scratch
    // cannot come from it): after the first block of a given shape the
    // batch path allocates nothing.
    static thread_local std::vector<double> y;  // lint-allow(no-alloc-in-hot): per-thread warmup only
    y.resize(d * width);
    for (std::size_t t = 0; t < width; ++t) {
      const double* zrow = zs.row_data(s0 + t);
      for (std::size_t j = 0; j < d; ++j) {
        y[j * width + t] = zrow[j] - mean_[j];
      }
    }
    // Vectorized forward solve + Mahalanobis reduction across the block's
    // sample lanes. Per sample this replays the exact operation order of
    // ForwardSolve (ascending k, then one divide) and the ascending-j
    // squared-norm sum, so the result is bitwise identical to per-sample
    // LogPdf at every dispatch level (tests/simd_test.cc pins this).
    kern.logpdf_block(chol_.data(), d, y.data(), width, base, out + s0);
    // One finiteness sweep per block instead of one check per sample in
    // the hot accumulation loop.
    FACTION_DCHECK_FINITE_ALL(out + s0, width);
  });
}

// FACTION_COLD_BEGIN: value-returning convenience wrapper.
std::vector<double> Gaussian::LogPdfBatch(const Matrix& zs) const {
  std::vector<double> out(zs.rows());
  LogPdfBatch(zs, out.data());
  return out;
}
// FACTION_COLD_END

// FACTION_COLD_BEGIN: cross-shard merge — warm-start / aggregation
// cadence, never on the per-arrival path.
Status Gaussian::MergeFrom(const Gaussian& other,
                           const CovarianceConfig& config,
                           double fallback_scale) {
  if (count_ == 0 || other.count_ == 0) {
    return Status::FailedPrecondition(
        "Gaussian::MergeFrom requires both sides fitted");
  }
  if (other.dim() != dim()) {
    return Status::InvalidArgument(
        "Gaussian::MergeFrom: dimension mismatch");
  }
  if (other.forgetting_ != forgetting_) {
    return Status::InvalidArgument(
        "Gaussian::MergeFrom: forgetting-mode mismatch");
  }
  // The sufficient statistics are additive across shards: each side's
  // count/sum/scatter describe disjoint sample sets, so a single O(d^2)
  // accumulation followed by one refactor reproduces what a joint fit on
  // the union of the rows computes from its own moments.
  count_ += other.count_;
  const std::size_t d = dim();
  for (std::size_t j = 0; j < d; ++j) sum_[j] += other.sum_[j];
  double* s = scatter_.data();
  const double* os = other.scatter_.data();
  for (std::size_t i = 0; i < d * d; ++i) s[i] += os[i];
  if (forgetting_) {
    // Ridges add as Wishart pseudo-observation mass (see the header): the
    // merged covariance (M_a + M_b + (r_a + r_b) I) / (w_a + w_b) weights
    // each shard's regularizer by the mass it contributed.
    weight_ += other.weight_;
    ridge_ += other.ridge_;
    return RefreshRidge(config);
  }
  return RefreshFromMoments(config, fallback_scale);
}
// FACTION_COLD_END

}  // namespace faction
