// FACTION_HOT: the mixture evaluation paths run under the per-arrival and
// pool-scoring allocation bans; allocating idioms here are lint findings
// (tools/lint.py no-alloc-in-hot, DESIGN.md §13). Fitting, batch updates,
// and the baseline ClassDensityEstimator sit inside FACTION_COLD fences.
#include "density/fair_density.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "common/alloc_audit.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "tensor/ops.h"

namespace faction {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// FACTION_COLD_BEGIN: batch fitting/refitting — per-round cadence.
// Copies the listed rows of `features` into a dense matrix for Gaussian::Fit.
Matrix GatherRows(const Matrix& features,
                  const std::vector<std::size_t>& idx) {
  Matrix out(idx.size(), features.cols());
  for (std::size_t r = 0; r < idx.size(); ++r) {
    std::copy(features.row_data(idx[r]),
              features.row_data(idx[r]) + features.cols(), out.row_data(r));
  }
  return out;
}

}  // namespace

Result<FairDensityEstimator> FairDensityEstimator::Fit(
    const Matrix& features, const std::vector<int>& labels,
    const std::vector<int>& sensitive, const CovarianceConfig& config) {
  const std::size_t n = features.rows();
  if (n == 0) {
    return Status::InvalidArgument("FairDensityEstimator: no samples");
  }
  if (labels.size() != n || sensitive.size() != n) {
    return Status::InvalidArgument(
        "FairDensityEstimator: labels/sensitive size mismatch");
  }

  FairDensityEstimator est;
  est.dim_ = features.cols();
  const int total = kNumClasses * kNumGroups;
  est.components_.resize(total);
  est.present_.assign(total, false);
  est.counts_.assign(total, 0);
  est.total_ = n;
  est.forgetting_ = config.forgetting;
  est.wcounts_.assign(total, 0.0);
  est.wtotal_ = static_cast<double>(n);

  // Single pass over the samples: bucket each usable row by component
  // instead of re-scanning all n rows once per component. Rows with labels
  // or sensitive values outside the binary domain fall in no bucket, as
  // before.
  std::array<std::vector<std::size_t>, kNumClasses * kNumGroups> buckets;
  for (std::size_t i = 0; i < n; ++i) {
    if (labels[i] < 0 || labels[i] >= kNumClasses) continue;
    if (sensitive[i] != 1 && sensitive[i] != -1) continue;
    buckets[ComponentIndex(labels[i], sensitive[i])].push_back(i);
  }

  std::size_t fitted = 0;
  for (int idx = 0; idx < total; ++idx) {
    const std::vector<std::size_t>& bucket = buckets[idx];
    est.counts_[idx] = bucket.size();
    est.wcounts_[idx] = static_cast<double>(bucket.size());
    if (bucket.empty()) continue;
    FACTION_ASSIGN_OR_RETURN(
        Gaussian g, Gaussian::Fit(GatherRows(features, bucket), config));
    est.components_[idx] = std::move(g);
    est.present_[idx] = true;
    ++fitted;
  }
  if (fitted == 0) {
    return Status::FailedPrecondition(
        "FairDensityEstimator: no component has samples");
  }
  est.RefreshWeights();
  TelemetryCount("density.fair_fit");
  TelemetryCount("density.class_fit", fitted);
  return est;
}

void FairDensityEstimator::RefreshWeights() {
  const std::size_t total = counts_.size();
  weights_.assign(total, 0.0);
  log_weights_.assign(total, kNegInf);
  for (std::size_t idx = 0; idx < total; ++idx) {
    // Legacy mode keeps the integer-count ratio (bitwise-identical weights
    // to before forgetting existed); forgetting mode weighs by the decayed
    // masses so evictions and decay release exactly the mass still carried.
    weights_[idx] =
        forgetting_
            ? wcounts_[idx] / wtotal_
            : static_cast<double>(counts_[idx]) / static_cast<double>(total_);
    if (weights_[idx] > 0.0) log_weights_[idx] = std::log(weights_[idx]);
  }
}

Status FairDensityEstimator::Update(const Matrix& features,
                                    const std::vector<int>& labels,
                                    const std::vector<int>& sensitive,
                                    const CovarianceConfig& config) {
  if (total_ == 0) {
    return Status::FailedPrecondition(
        "FairDensityEstimator::Update requires a prior successful Fit");
  }
  const std::size_t n = features.rows();
  if (labels.size() != n || sensitive.size() != n) {
    return Status::InvalidArgument(
        "FairDensityEstimator::Update: labels/sensitive size mismatch");
  }
  if (n == 0) return Status::Ok();
  if (features.cols() != dim_) {
    return Status::InvalidArgument(
        "FairDensityEstimator::Update: dimension mismatch");
  }

  std::array<std::vector<std::size_t>, kNumClasses * kNumGroups> buckets;
  for (std::size_t i = 0; i < n; ++i) {
    if (labels[i] < 0 || labels[i] >= kNumClasses) continue;
    if (sensitive[i] != 1 && sensitive[i] != -1) continue;
    buckets[ComponentIndex(labels[i], sensitive[i])].push_back(i);
  }
  total_ += n;
  wtotal_ += static_cast<double>(n);
  std::uint64_t touched = 0;
  for (std::size_t idx = 0; idx < components_.size(); ++idx) {
    const std::vector<std::size_t>& bucket = buckets[idx];
    if (bucket.empty()) continue;  // untouched: cached factor stays valid
    counts_[idx] += bucket.size();
    wcounts_[idx] += static_cast<double>(bucket.size());
    const Matrix rows = GatherRows(features, bucket);
    if (present_[idx]) {
      FACTION_RETURN_IF_ERROR(components_[idx].Update(rows, config));
    } else {
      // A component seen for the first time mid-stream is fitted fresh.
      FACTION_ASSIGN_OR_RETURN(Gaussian g, Gaussian::Fit(rows, config));
      components_[idx] = std::move(g);
      present_[idx] = true;
    }
    ++touched;
  }
  RefreshWeights();
  TelemetryCount("density.fair_update");
  TelemetryCount("density.class_update", touched);
  return Status::Ok();
}
// FACTION_COLD_END

Status FairDensityEstimator::UpdateOne(const double* z, int label,
                                       int sensitive,
                                       const CovarianceConfig& config) {
  if (total_ == 0) {
    return Status::FailedPrecondition(
        "FairDensityEstimator::UpdateOne requires a prior successful Fit");
  }
  FACTION_CHECK(z != nullptr);
  total_ += 1;
  wtotal_ += 1.0;
  std::uint64_t touched = 0;
  const bool in_domain = label >= 0 && label < kNumClasses &&
                         (sensitive == 1 || sensitive == -1);
  if (in_domain) {
    const int idx = ComponentIndex(label, sensitive);
    counts_[idx] += 1;
    wcounts_[idx] += 1.0;
    if (present_[idx]) {
      FACTION_RETURN_IF_ERROR(components_[idx].UpdateOne(z, config));
    } else {
      // A component seen for the first time mid-stream is fitted fresh —
      // a once-per-component event, exempt from steady-state alloc bans.
      ScopedAllocationAllow allow_fresh_fit;
      Matrix row(1, dim_);  // lint-allow(no-alloc-in-hot): once per component
      std::copy(z, z + dim_, row.row_data(0));
      FACTION_ASSIGN_OR_RETURN(Gaussian g, Gaussian::Fit(row, config));
      components_[idx] = std::move(g);
      present_[idx] = true;
    }
    ++touched;
  }
  // weights_/log_weights_ keep their size, so the refresh reuses capacity.
  RefreshWeights();
  TelemetryCount("density.fair_update");
  TelemetryCount("density.class_update", touched);
  return Status::Ok();
}

Status FairDensityEstimator::DowndateOne(const double* z, int label,
                                         int sensitive,
                                         const CovarianceConfig& config,
                                         double row_weight) {
  FACTION_CHECK(z != nullptr);
  // Evicting from an empty estimator means the window handed back a row it
  // never folded — a caller bug, not a recoverable state.
  FACTION_CHECK_GT(total_, std::size_t{0});
  total_ -= 1;
  wtotal_ -= row_weight;
  const bool in_domain = label >= 0 && label < kNumClasses &&
                         (sensitive == 1 || sensitive == -1);
  if (in_domain) {
    const int idx = ComponentIndex(label, sensitive);
    // Same caller-bug contract per component: the evicted (label,
    // sensitive) must have absorbed at least this row.
    FACTION_CHECK(present_[idx]);
    FACTION_CHECK_GT(counts_[idx], std::size_t{0});
    counts_[idx] -= 1;
    wcounts_[idx] -= row_weight;
    if (counts_[idx] == 0) {
      // Evicting a component's last row drops it from the mixture —
      // exactly what a batch fit on the remaining window produces — and
      // re-arms the fresh-fit path should the component reappear.
      present_[idx] = false;
      wcounts_[idx] = 0.0;
    } else {
      FACTION_RETURN_IF_ERROR(
          components_[idx].DowndateOne(z, config, row_weight));
    }
  }
  RefreshWeights();
  TelemetryCount("density.fair_downdate");
  return Status::Ok();
}

void FairDensityEstimator::Decay(double gamma) {
  FACTION_CHECK(forgetting_);
  FACTION_CHECK(gamma > 0.0 && gamma <= 1.0);
  for (std::size_t idx = 0; idx < components_.size(); ++idx) {
    if (present_[idx]) components_[idx].Decay(gamma);
    wcounts_[idx] *= gamma;
  }
  wtotal_ *= gamma;
  // No RefreshWeights: uniform scaling cancels in every wcount/wtotal
  // ratio, so the weights are left literally (bitwise) untouched rather
  // than recomputed with fresh rounding.
}

bool FairDensityEstimator::HasComponent(int label, int sensitive) const {
  return present_[ComponentIndex(label, sensitive)];
}

double FairDensityEstimator::LogComponentDensity(const std::vector<double>& z,
                                                 int label,
                                                 int sensitive) const {
  FACTION_DCHECK_LEN(z, dim_);
  const int idx = ComponentIndex(label, sensitive);
  if (!present_[idx]) return kNegInf;
  return components_[idx].LogPdf(z);
}

double FairDensityEstimator::Weight(int label, int sensitive) const {
  return weights_[ComponentIndex(label, sensitive)];
}

// FACTION_COLD_BEGIN: scalar reference path the raw-pointer overload is
// parity-tested against; tests and one-off callers only.
double FairDensityEstimator::LogMarginalDensity(
    const std::vector<double>& z) const {
  FACTION_DCHECK_LEN(z, dim_);
  std::vector<double> terms;
  terms.reserve(components_.size());
  for (int y = 0; y < kNumClasses; ++y) {
    for (int s : {-1, 1}) {
      const int idx = ComponentIndex(y, s);
      if (!present_[idx] || weights_[idx] <= 0.0) continue;
      terms.push_back(components_[idx].LogPdf(z) + std::log(weights_[idx]));
    }
  }
  if (terms.empty()) return kNegInf;
  return LogSumExp(terms);
}
// FACTION_COLD_END

double FairDensityEstimator::LogMarginalDensity(const double* z,
                                                double* scratch) const {
  // Terms in ascending component order with the precomputed log weights —
  // bit-equal to std::log(weights_[idx]) recomputed per call, and exactly
  // the order/combine of the vector overload above.
  std::array<double, kNumClasses * kNumGroups> terms;
  std::size_t nt = 0;
  for (std::size_t idx = 0; idx < components_.size(); ++idx) {
    if (!present_[idx] || weights_[idx] <= 0.0) continue;
    terms[nt++] = components_[idx].LogPdf(z, scratch) + log_weights_[idx];
  }
  return nt == 0 ? kNegInf : LogSumExp(terms.data(), nt);
}

void FairDensityEstimator::ComponentLogPdfBatch(const Matrix& zs,
                                                Matrix* out) const {
  FACTION_CHECK_EQ(zs.cols(), dim_);
  const std::size_t n = zs.rows();
  const std::size_t total = components_.size();
  // Every entry is written below (densities or -inf), so skip the clear
  // and let a warm caller-owned matrix be reused allocation-free.
  out->ResizeForOverwrite(n, total);
  if (n == 0) return;
  // Per-thread, capacity-retaining column scratch: after the first batch
  // of a given pool size the scoring path allocates nothing (every element
  // is overwritten by LogPdfBatch before the copy reads it).
  static thread_local std::vector<double> col;  // lint-allow(no-alloc-in-hot): per-thread warmup only
  col.resize(n);
  for (std::size_t idx = 0; idx < total; ++idx) {
    if (!present_[idx]) {
      for (std::size_t i = 0; i < n; ++i) (*out)(i, idx) = kNegInf;
      continue;
    }
    // One blocked triangular solve for the whole batch.
    components_[idx].LogPdfBatch(zs, col.data());
    for (std::size_t i = 0; i < n; ++i) (*out)(i, idx) = col[i];
  }
}

void FairDensityEstimator::LogMarginalFromComponents(const Matrix& comp,
                                                     double* out) const {
  const std::size_t total = components_.size();
  FACTION_CHECK_EQ(comp.cols(), total);
  const std::size_t n = comp.rows();
  if (n == 0) return;
  constexpr std::size_t kCombineGrain = 1024;
  ParallelFor(0, n, kCombineGrain, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      // Terms in ascending component order — exactly the order the
      // per-sample LogMarginalDensity loop pushes them.
      std::array<double, kNumClasses * kNumGroups> terms;
      std::size_t nt = 0;
      const double* row = comp.row_data(i);
      for (std::size_t idx = 0; idx < total; ++idx) {
        if (!present_[idx] || weights_[idx] <= 0.0) continue;
        terms[nt++] = row[idx] + log_weights_[idx];
      }
      out[i] = nt == 0 ? kNegInf : LogSumExp(terms.data(), nt);
    }
  });
}

// FACTION_COLD_BEGIN: value-returning convenience wrapper, scalar
// conveniences, and the baseline ClassDensityEstimator (per-task cadence —
// never inside a steady-state ban region).
std::vector<double> FairDensityEstimator::LogMarginalDensityBatch(
    const Matrix& zs) const {
  Matrix comp;
  ComponentLogPdfBatch(zs, &comp);
  std::vector<double> out(zs.rows());
  LogMarginalFromComponents(comp, out.data());
  return out;
}

void FairDensityEstimator::ComponentLogDensities(const std::vector<double>& z,
                                                 int label, double* log_pos,
                                                 double* log_neg) const {
  *log_pos = LogComponentDensity(z, label, 1);
  *log_neg = LogComponentDensity(z, label, -1);
}

void FairDensityEstimator::ComponentLogDensities(const double* z, int label,
                                                 double* scratch,
                                                 double* log_pos,
                                                 double* log_neg) const {
  const int pos = ComponentIndex(label, 1);
  const int neg = ComponentIndex(label, -1);
  *log_pos =
      present_[pos] ? components_[pos].LogPdf(z, scratch) : kNegInf;
  *log_neg =
      present_[neg] ? components_[neg].LogPdf(z, scratch) : kNegInf;
}

double FairDensityEstimator::DeltaG(const std::vector<double>& z,
                                    int label) const {
  double lp = 0.0, ln = 0.0;
  ComponentLogDensities(z, label, &lp, &ln);
  const double dp = std::isinf(lp) ? 0.0 : std::exp(lp);
  const double dn = std::isinf(ln) ? 0.0 : std::exp(ln);
  return std::fabs(dp - dn);
}

double FairDensityEstimator::MarginalDensity(
    const std::vector<double>& z) const {
  const double lg = LogMarginalDensity(z);
  return std::isinf(lg) ? 0.0 : std::exp(lg);
}

Result<ClassDensityEstimator> ClassDensityEstimator::Fit(
    const Matrix& features, const std::vector<int>& labels,
    const CovarianceConfig& config) {
  const std::size_t n = features.rows();
  if (n == 0) {
    return Status::InvalidArgument("ClassDensityEstimator: no samples");
  }
  if (labels.size() != n) {
    return Status::InvalidArgument(
        "ClassDensityEstimator: labels size mismatch");
  }
  ClassDensityEstimator est;
  est.dim_ = features.cols();
  est.components_.resize(FairDensityEstimator::kNumClasses);
  est.present_.assign(FairDensityEstimator::kNumClasses, false);
  est.counts_.assign(FairDensityEstimator::kNumClasses, 0);
  est.total_ = n;
  est.forgetting_ = config.forgetting;
  est.wcounts_.assign(FairDensityEstimator::kNumClasses, 0.0);
  est.wtotal_ = static_cast<double>(n);
  std::array<std::vector<std::size_t>, FairDensityEstimator::kNumClasses>
      buckets;
  for (std::size_t i = 0; i < n; ++i) {
    if (labels[i] < 0 || labels[i] >= FairDensityEstimator::kNumClasses) {
      continue;
    }
    buckets[labels[i]].push_back(i);
  }
  std::size_t fitted = 0;
  for (int y = 0; y < FairDensityEstimator::kNumClasses; ++y) {
    const std::vector<std::size_t>& bucket = buckets[y];
    est.counts_[y] = bucket.size();
    est.wcounts_[y] = static_cast<double>(bucket.size());
    if (bucket.empty()) continue;
    FACTION_ASSIGN_OR_RETURN(
        Gaussian g, Gaussian::Fit(GatherRows(features, bucket), config));
    est.components_[y] = std::move(g);
    est.present_[y] = true;
    ++fitted;
  }
  if (fitted == 0) {
    return Status::FailedPrecondition(
        "ClassDensityEstimator: no class has samples");
  }
  est.RefreshWeights();
  return est;
}

void ClassDensityEstimator::RefreshWeights() {
  const std::size_t total = counts_.size();
  weights_.assign(total, 0.0);
  log_weights_.assign(total, kNegInf);
  for (std::size_t idx = 0; idx < total; ++idx) {
    // Same branch as FairDensityEstimator::RefreshWeights: decayed masses
    // in forgetting mode, the bitwise-stable integer ratio otherwise.
    weights_[idx] =
        forgetting_
            ? wcounts_[idx] / wtotal_
            : static_cast<double>(counts_[idx]) / static_cast<double>(total_);
    if (weights_[idx] > 0.0) log_weights_[idx] = std::log(weights_[idx]);
  }
}

Status ClassDensityEstimator::Update(const Matrix& features,
                                     const std::vector<int>& labels,
                                     const CovarianceConfig& config) {
  if (total_ == 0) {
    return Status::FailedPrecondition(
        "ClassDensityEstimator::Update requires a prior successful Fit");
  }
  const std::size_t n = features.rows();
  if (labels.size() != n) {
    return Status::InvalidArgument(
        "ClassDensityEstimator::Update: labels size mismatch");
  }
  if (n == 0) return Status::Ok();
  if (features.cols() != dim_) {
    return Status::InvalidArgument(
        "ClassDensityEstimator::Update: dimension mismatch");
  }
  std::array<std::vector<std::size_t>, FairDensityEstimator::kNumClasses>
      buckets;
  for (std::size_t i = 0; i < n; ++i) {
    if (labels[i] < 0 || labels[i] >= FairDensityEstimator::kNumClasses) {
      continue;
    }
    buckets[labels[i]].push_back(i);
  }
  total_ += n;
  wtotal_ += static_cast<double>(n);
  for (std::size_t y = 0; y < components_.size(); ++y) {
    const std::vector<std::size_t>& bucket = buckets[y];
    if (bucket.empty()) continue;
    counts_[y] += bucket.size();
    wcounts_[y] += static_cast<double>(bucket.size());
    const Matrix rows = GatherRows(features, bucket);
    if (present_[y]) {
      FACTION_RETURN_IF_ERROR(components_[y].Update(rows, config));
    } else {
      FACTION_ASSIGN_OR_RETURN(Gaussian g, Gaussian::Fit(rows, config));
      components_[y] = std::move(g);
      present_[y] = true;
    }
  }
  RefreshWeights();
  return Status::Ok();
}

Status ClassDensityEstimator::DowndateOne(const double* z, int label,
                                          const CovarianceConfig& config,
                                          double row_weight) {
  FACTION_CHECK(z != nullptr);
  FACTION_CHECK_GT(total_, std::size_t{0});
  total_ -= 1;
  wtotal_ -= row_weight;
  if (label >= 0 && label < FairDensityEstimator::kNumClasses) {
    FACTION_CHECK(present_[label]);
    FACTION_CHECK_GT(counts_[label], std::size_t{0});
    counts_[label] -= 1;
    wcounts_[label] -= row_weight;
    if (counts_[label] == 0) {
      present_[label] = false;
      wcounts_[label] = 0.0;
    } else {
      FACTION_RETURN_IF_ERROR(
          components_[label].DowndateOne(z, config, row_weight));
    }
  }
  RefreshWeights();
  return Status::Ok();
}

void ClassDensityEstimator::Decay(double gamma) {
  FACTION_CHECK(forgetting_);
  FACTION_CHECK(gamma > 0.0 && gamma <= 1.0);
  for (std::size_t y = 0; y < components_.size(); ++y) {
    if (present_[y]) components_[y].Decay(gamma);
    wcounts_[y] *= gamma;
  }
  wtotal_ *= gamma;
}

double ClassDensityEstimator::LogClassDensity(const std::vector<double>& z,
                                              int label) const {
  FACTION_DCHECK_LEN(z, dim_);
  FACTION_CHECK_GE(label, 0);
  FACTION_CHECK_LT(label, FairDensityEstimator::kNumClasses);
  if (!present_[label]) return kNegInf;
  return components_[label].LogPdf(z);
}

double ClassDensityEstimator::LogMarginalDensity(
    const std::vector<double>& z) const {
  std::vector<double> terms;
  for (int y = 0; y < FairDensityEstimator::kNumClasses; ++y) {
    if (!present_[y] || weights_[y] <= 0.0) continue;
    terms.push_back(components_[y].LogPdf(z) + std::log(weights_[y]));
  }
  if (terms.empty()) return kNegInf;
  return LogSumExp(terms);
}

void ClassDensityEstimator::LogMarginalDensityBatch(const Matrix& zs,
                                                    double* out) const {
  FACTION_CHECK_EQ(zs.cols(), dim_);
  const std::size_t n = zs.rows();
  if (n == 0) return;
  std::vector<std::size_t> active;  // ascending class order, as per sample
  for (std::size_t y = 0; y < components_.size(); ++y) {
    if (present_[y] && weights_[y] > 0.0) active.push_back(y);
  }
  if (active.empty()) {
    for (std::size_t i = 0; i < n; ++i) out[i] = kNegInf;
    return;
  }
  Matrix comp(active.size(), n);
  for (std::size_t a = 0; a < active.size(); ++a) {
    components_[active[a]].LogPdfBatch(zs, comp.row_data(a));
  }
  constexpr std::size_t kCombineGrain = 1024;
  ParallelFor(0, n, kCombineGrain, [&](std::size_t i0, std::size_t i1) {
    std::array<double, FairDensityEstimator::kNumClasses> terms;
    for (std::size_t i = i0; i < i1; ++i) {
      for (std::size_t a = 0; a < active.size(); ++a) {
        terms[a] = comp(a, i) + log_weights_[active[a]];
      }
      out[i] = LogSumExp(terms.data(), active.size());
    }
  });
}

std::vector<double> ClassDensityEstimator::LogMarginalDensityBatch(
    const Matrix& zs) const {
  std::vector<double> out(zs.rows());
  LogMarginalDensityBatch(zs, out.data());
  return out;
}
// FACTION_COLD_END

// FACTION_COLD_BEGIN: cross-shard sufficient-stats merge (ROADMAP item 1)
// — aggregation cadence, never per arrival.
Status FairDensityEstimator::MergeFrom(const FairDensityEstimator& other,
                                       const CovarianceConfig& config) {
  if (other.total_ == 0) return Status::Ok();
  if (total_ == 0) {
    *this = other;
    TelemetryCount("density.fair_merge");
    return Status::Ok();
  }
  if (other.dim_ != dim_) {
    return Status::InvalidArgument(
        "FairDensityEstimator::MergeFrom: dimension mismatch");
  }
  if (other.forgetting_ != forgetting_) {
    return Status::InvalidArgument(
        "FairDensityEstimator::MergeFrom: forgetting-mode mismatch");
  }
  const int cells = kNumClasses * kNumGroups;
  for (int idx = 0; idx < cells; ++idx) {
    if (other.present_[idx]) {
      if (present_[idx]) {
        FACTION_RETURN_IF_ERROR(
            components_[idx].MergeFrom(other.components_[idx], config));
      } else {
        // Only one shard saw this (y, s) cell: its fitted component *is*
        // the union fit — copy it wholesale, factor included.
        components_[idx] = other.components_[idx];
        present_[idx] = true;
      }
    }
    counts_[idx] += other.counts_[idx];
    wcounts_[idx] += other.wcounts_[idx];
  }
  total_ += other.total_;
  wtotal_ += other.wtotal_;
  RefreshWeights();
  TelemetryCount("density.fair_merge");
  return Status::Ok();
}
// FACTION_COLD_END

}  // namespace faction
