#include "density/fair_density.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "tensor/ops.h"

namespace faction {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Gathers the rows of `features` whose index passes `pred` into a matrix.
template <typename Pred>
Matrix GatherRows(const Matrix& features, Pred pred) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < features.rows(); ++i) {
    if (pred(i)) idx.push_back(i);
  }
  Matrix out(idx.size(), features.cols());
  for (std::size_t r = 0; r < idx.size(); ++r) {
    std::copy(features.row_data(idx[r]),
              features.row_data(idx[r]) + features.cols(), out.row_data(r));
  }
  return out;
}

}  // namespace

Result<FairDensityEstimator> FairDensityEstimator::Fit(
    const Matrix& features, const std::vector<int>& labels,
    const std::vector<int>& sensitive, const CovarianceConfig& config) {
  const std::size_t n = features.rows();
  if (n == 0) {
    return Status::InvalidArgument("FairDensityEstimator: no samples");
  }
  if (labels.size() != n || sensitive.size() != n) {
    return Status::InvalidArgument(
        "FairDensityEstimator: labels/sensitive size mismatch");
  }

  FairDensityEstimator est;
  est.dim_ = features.cols();
  const int total = kNumClasses * kNumGroups;
  est.components_.resize(total);
  est.present_.assign(total, false);
  est.weights_.assign(total, 0.0);

  std::size_t fitted = 0;
  for (int y = 0; y < kNumClasses; ++y) {
    for (int s : {-1, 1}) {
      const int idx = ComponentIndex(y, s);
      const Matrix rows = GatherRows(features, [&](std::size_t i) {
        return labels[i] == y && sensitive[i] == s;
      });
      est.weights_[idx] =
          static_cast<double>(rows.rows()) / static_cast<double>(n);
      if (rows.rows() == 0) continue;
      FACTION_ASSIGN_OR_RETURN(Gaussian g, Gaussian::Fit(rows, config));
      est.components_[idx] = std::move(g);
      est.present_[idx] = true;
      ++fitted;
    }
  }
  if (fitted == 0) {
    return Status::FailedPrecondition(
        "FairDensityEstimator: no component has samples");
  }
  return est;
}

bool FairDensityEstimator::HasComponent(int label, int sensitive) const {
  return present_[ComponentIndex(label, sensitive)];
}

double FairDensityEstimator::LogComponentDensity(const std::vector<double>& z,
                                                 int label,
                                                 int sensitive) const {
  FACTION_DCHECK_LEN(z, dim_);
  const int idx = ComponentIndex(label, sensitive);
  if (!present_[idx]) return kNegInf;
  return components_[idx].LogPdf(z);
}

double FairDensityEstimator::Weight(int label, int sensitive) const {
  return weights_[ComponentIndex(label, sensitive)];
}

double FairDensityEstimator::LogMarginalDensity(
    const std::vector<double>& z) const {
  FACTION_DCHECK_LEN(z, dim_);
  std::vector<double> terms;
  terms.reserve(components_.size());
  for (int y = 0; y < kNumClasses; ++y) {
    for (int s : {-1, 1}) {
      const int idx = ComponentIndex(y, s);
      if (!present_[idx] || weights_[idx] <= 0.0) continue;
      terms.push_back(components_[idx].LogPdf(z) + std::log(weights_[idx]));
    }
  }
  if (terms.empty()) return kNegInf;
  return LogSumExp(terms);
}

void FairDensityEstimator::ComponentLogDensities(const std::vector<double>& z,
                                                 int label, double* log_pos,
                                                 double* log_neg) const {
  *log_pos = LogComponentDensity(z, label, 1);
  *log_neg = LogComponentDensity(z, label, -1);
}

double FairDensityEstimator::DeltaG(const std::vector<double>& z,
                                    int label) const {
  double lp = 0.0, ln = 0.0;
  ComponentLogDensities(z, label, &lp, &ln);
  const double dp = std::isinf(lp) ? 0.0 : std::exp(lp);
  const double dn = std::isinf(ln) ? 0.0 : std::exp(ln);
  return std::fabs(dp - dn);
}

double FairDensityEstimator::MarginalDensity(
    const std::vector<double>& z) const {
  const double lg = LogMarginalDensity(z);
  return std::isinf(lg) ? 0.0 : std::exp(lg);
}

Result<ClassDensityEstimator> ClassDensityEstimator::Fit(
    const Matrix& features, const std::vector<int>& labels,
    const CovarianceConfig& config) {
  const std::size_t n = features.rows();
  if (n == 0) {
    return Status::InvalidArgument("ClassDensityEstimator: no samples");
  }
  if (labels.size() != n) {
    return Status::InvalidArgument(
        "ClassDensityEstimator: labels size mismatch");
  }
  ClassDensityEstimator est;
  est.dim_ = features.cols();
  est.components_.resize(FairDensityEstimator::kNumClasses);
  est.present_.assign(FairDensityEstimator::kNumClasses, false);
  est.weights_.assign(FairDensityEstimator::kNumClasses, 0.0);
  std::size_t fitted = 0;
  for (int y = 0; y < FairDensityEstimator::kNumClasses; ++y) {
    const Matrix rows =
        GatherRows(features, [&](std::size_t i) { return labels[i] == y; });
    est.weights_[y] =
        static_cast<double>(rows.rows()) / static_cast<double>(n);
    if (rows.rows() == 0) continue;
    FACTION_ASSIGN_OR_RETURN(Gaussian g, Gaussian::Fit(rows, config));
    est.components_[y] = std::move(g);
    est.present_[y] = true;
    ++fitted;
  }
  if (fitted == 0) {
    return Status::FailedPrecondition(
        "ClassDensityEstimator: no class has samples");
  }
  return est;
}

double ClassDensityEstimator::LogClassDensity(const std::vector<double>& z,
                                              int label) const {
  FACTION_DCHECK_LEN(z, dim_);
  FACTION_CHECK_GE(label, 0);
  FACTION_CHECK_LT(label, FairDensityEstimator::kNumClasses);
  if (!present_[label]) return kNegInf;
  return components_[label].LogPdf(z);
}

double ClassDensityEstimator::LogMarginalDensity(
    const std::vector<double>& z) const {
  std::vector<double> terms;
  for (int y = 0; y < FairDensityEstimator::kNumClasses; ++y) {
    if (!present_[y] || weights_[y] <= 0.0) continue;
    terms.push_back(components_[y].LogPdf(z) + std::log(weights_[y]));
  }
  if (terms.empty()) return kNegInf;
  return LogSumExp(terms);
}

}  // namespace faction
