#ifndef FACTION_DENSITY_FAIR_DENSITY_H_
#define FACTION_DENSITY_FAIR_DENSITY_H_

#include <vector>

#include "common/status.h"
#include "density/gaussian.h"
#include "tensor/matrix.h"

namespace faction {

struct StateCodecAccess;  // serve/state_codec.cc checkpoint accessor

/// The paper's fairness-aware density estimator G(z) (Sec. IV-B): a
/// GDA-fitted Gaussian mixture with one component per (class y, sensitive s)
/// combination, weighted by the empirical joint p(y, s) (Eq. 3).
///
/// Fitted on feature vectors z = r(x, theta) of the labeled pool; evaluated
/// on unlabeled candidates to obtain
///   - the marginal density g(z), measuring epistemic uncertainty (low
///     density = high uncertainty / OOD), and
///   - the per-class cross-group gaps Delta g_c(z) = |g(z|c,+1) - g(z|c,-1)|
///     (Eqs. 4-5), the paper's per-sample unfairness measure.
///
/// All evaluation is done in log space; the scorer re-exponentiates with a
/// shared per-batch shift, which leaves FACTION's min-max-normalized score
/// invariant while avoiding underflow for far-OOD samples.
class FairDensityEstimator {
 public:
  /// Number of classes (fixed binary in this implementation, matching the
  /// paper's experiments) and sensitive values.
  static constexpr int kNumClasses = 2;
  static constexpr int kNumGroups = 2;  // s in {-1, +1}

  FairDensityEstimator() = default;

  /// Flat index of the (label, sensitive) component; column order of the
  /// batched evaluation below and term order of every LogSumExp combine.
  static int ComponentIndex(int label, int sensitive) {
    return label * kNumGroups + (sensitive == 1 ? 1 : 0);
  }

  /// Fits the C x S components from labeled feature vectors. Components
  /// with no samples are marked missing: their conditional density is 0
  /// (log-density -inf) and their mixture weight is 0, which matches the
  /// empirical p(y,s) = 0. Fails when every component would be empty or
  /// inputs are inconsistent.
  static Result<FairDensityEstimator> Fit(const Matrix& features,
                                          const std::vector<int>& labels,
                                          const std::vector<int>& sensitive,
                                          const CovarianceConfig& config);

  /// Incrementally absorbs newly labeled feature vectors: each touched
  /// component folds its rows via Gaussian::Update (O(rows * d^2) plus one
  /// Cholesky per touched component, instead of re-scanning the whole
  /// pool), previously empty components are fitted fresh, and all mixture
  /// weights are refreshed from the running counts. Components untouched
  /// by the batch keep their cached factorization. Requires a prior
  /// successful Fit; on error the estimator should be considered stale and
  /// re-Fit from scratch.
  Status Update(const Matrix& features, const std::vector<int>& labels,
                const std::vector<int>& sensitive,
                const CovarianceConfig& config);

  /// Absorbs a single labeled feature vector (length dim()) — the
  /// steady-state per-arrival fold. Identical numerics to Update with a
  /// one-row batch; allocation-free once the touched component's scratch
  /// is warm, except when `label`/`sensitive` hit a component for the
  /// first time (fresh fit, deliberately amortized).
  Status UpdateOne(const double* z, int label, int sensitive,
                   const CovarianceConfig& config);

  /// Evicts one previously folded feature vector — the sliding-window
  /// forgetting path. In-domain rows route to their component's rank-1
  /// Gaussian::DowndateOne; evicting a component's last row drops the
  /// component from the mixture entirely (exactly what a batch fit on the
  /// remaining window produces). Off-domain rows only release their share
  /// of the total mass. `row_weight` is the evicted row's decayed
  /// effective weight (1 without decay). Evicting a row from a component
  /// that never absorbed one is a checked abort — the window must only
  /// hand back rows it folded.
  Status DowndateOne(const double* z, int label, int sensitive,
                     const CovarianceConfig& config, double row_weight = 1.0);

  /// Exponentially down-weights every component and the mixture masses by
  /// `gamma` in (0, 1]. Mixture weights are ratios of uniformly scaled
  /// masses, so they are left literally untouched (as are every
  /// component's mean/factor — see Gaussian::Decay); only the raw masses
  /// scale. Forgetting mode (CovarianceConfig::forgetting) only.
  void Decay(double gamma);

  /// Total samples currently absorbed: Fit plus every Update, minus every
  /// eviction; includes rows whose label/sensitive values fell outside the
  /// binary domain.
  std::size_t total_count() const { return total_; }

  std::size_t dim() const { return dim_; }

  /// True when the (y, s) component was fitted from at least one sample.
  bool HasComponent(int label, int sensitive) const;

  /// log g(z | y, s); -infinity for missing components.
  double LogComponentDensity(const std::vector<double>& z, int label,
                             int sensitive) const;

  /// Mixture weight p(y, s).
  double Weight(int label, int sensitive) const;

  /// log g(z) = log sum_{y,s} g(z|y,s) p(y,s) (Eq. 3, log space).
  double LogMarginalDensity(const std::vector<double>& z) const;

  /// Allocation-free LogMarginalDensity: `z` points at dim() coordinates,
  /// `scratch` at dim() caller-owned doubles (clobbered by the per-
  /// component triangular solves). Same term order and combine as the
  /// vector overload, so the result is bitwise identical.
  double LogMarginalDensity(const double* z, double* scratch) const;

  /// Batched component log-densities for every row of `zs`: fills `out`
  /// (resized to zs.rows() x kNumClasses*kNumGroups) so that
  /// out(i, ComponentIndex(y, s)) = log g(z_i | y, s), with -inf columns
  /// for missing components. One blocked triangular solve per component
  /// for the whole batch; bitwise identical to per-sample LogPdf calls for
  /// any thread count.
  void ComponentLogPdfBatch(const Matrix& zs, Matrix* out) const;

  /// Combines a ComponentLogPdfBatch matrix into per-sample marginals:
  /// out[i] = log g(z_i), bitwise identical to LogMarginalDensity.
  void LogMarginalFromComponents(const Matrix& comp, double* out) const;

  /// Batched LogMarginalDensity over the rows of `zs`.
  std::vector<double> LogMarginalDensityBatch(const Matrix& zs) const;

  /// Log-space description of Delta g_c(z): returns the pair of component
  /// log-densities (log g(z|c,+1), log g(z|c,-1)). The scorer combines them
  /// after the shared batch shift. Missing components contribute -inf.
  void ComponentLogDensities(const std::vector<double>& z, int label,
                             double* log_pos, double* log_neg) const;

  /// Allocation-free ComponentLogDensities over raw pointers; `scratch`
  /// holds dim() caller-owned doubles (clobbered).
  void ComponentLogDensities(const double* z, int label, double* scratch,
                             double* log_pos, double* log_neg) const;

  /// Direct (unshifted) Delta g_c(z) = |g(z|c,+1) - g(z|c,-1)|. Convenient
  /// for tests and small-dimensional use; may underflow far from the data.
  double DeltaG(const std::vector<double>& z, int label) const;

  /// Direct (unshifted) marginal density g(z).
  double MarginalDensity(const std::vector<double>& z) const;

  /// Folds another shard's estimator into this one — the cross-shard
  /// sufficient-stats merge (ROADMAP item 1). Per (class, sensitive) cell:
  /// components present on both sides merge via Gaussian::MergeFrom (O(d^2)
  /// additions + one re-factorization per touched component), components
  /// present only on `other` are copied wholesale, and the mixture masses
  /// (counts, decayed weights, totals) add before one RefreshWeights.
  /// Both sides must share dim() and the forgetting mode.
  Status MergeFrom(const FairDensityEstimator& other,
                   const CovarianceConfig& config);

 private:
  friend struct StateCodecAccess;

  /// Recomputes weights_/log_weights_ from counts_/total_.
  void RefreshWeights();

  std::size_t dim_ = 0;
  std::vector<Gaussian> components_;  // size C*S, indexed by ComponentIndex
  std::vector<bool> present_;
  std::vector<double> weights_;      // empirical p(y, s)
  std::vector<double> log_weights_;  // log(weights_), -inf at zero weight
  std::vector<std::size_t> counts_;  // per-component sample counts
  std::size_t total_ = 0;            // rows currently absorbed
  // Forgetting mode: decayed effective masses mirroring counts_/total_.
  // Weights come from these so decayed and evicted rows release exactly
  // the mass they still carry; in legacy mode the integer counts stay
  // authoritative (bitwise-identical weights to before this mode existed).
  bool forgetting_ = false;
  std::vector<double> wcounts_;
  double wtotal_ = 0.0;
};

/// Per-class density estimator used by the DDU baseline (Mukhoti et al.):
/// identical machinery but with one component per class only.
class ClassDensityEstimator {
 public:
  static Result<ClassDensityEstimator> Fit(const Matrix& features,
                                           const std::vector<int>& labels,
                                           const CovarianceConfig& config);

  /// Per-class analogue of FairDensityEstimator::Update.
  Status Update(const Matrix& features, const std::vector<int>& labels,
                const CovarianceConfig& config);

  /// Per-class analogue of FairDensityEstimator::DowndateOne.
  Status DowndateOne(const double* z, int label,
                     const CovarianceConfig& config, double row_weight = 1.0);

  /// Per-class analogue of FairDensityEstimator::Decay.
  void Decay(double gamma);

  std::size_t total_count() const { return total_; }

  std::size_t dim() const { return dim_; }

  /// log g(z | y); -infinity for classes absent from the fit.
  double LogClassDensity(const std::vector<double>& z, int label) const;

  /// log g(z) = log sum_y g(z|y) p(y).
  double LogMarginalDensity(const std::vector<double>& z) const;

  /// Batched LogMarginalDensity over the rows of `zs`; bitwise identical
  /// to the per-sample path for any thread count.
  void LogMarginalDensityBatch(const Matrix& zs, double* out) const;
  std::vector<double> LogMarginalDensityBatch(const Matrix& zs) const;

 private:
  void RefreshWeights();

  std::size_t dim_ = 0;
  std::vector<Gaussian> components_;
  std::vector<bool> present_;
  std::vector<double> weights_;
  std::vector<double> log_weights_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  bool forgetting_ = false;
  std::vector<double> wcounts_;
  double wtotal_ = 0.0;
};

}  // namespace faction

#endif  // FACTION_DENSITY_FAIR_DENSITY_H_
