#ifndef FACTION_DENSITY_GAUSSIAN_H_
#define FACTION_DENSITY_GAUSSIAN_H_

#include <vector>

#include "common/status.h"
#include "tensor/matrix.h"

namespace faction {

struct StateCodecAccess;  // serve/state_codec.cc checkpoint accessor

/// Regularization for covariance estimates fitted from few samples — the
/// situation FACTION is always in early in the stream, when a (class,
/// sensitive) component may hold only a handful of labeled examples.
struct CovarianceConfig {
  /// Shrinkage toward the scaled identity: Sigma_reg =
  /// (1-shrinkage)*Sigma + shrinkage*(tr(Sigma)/d)*I.
  double shrinkage = 0.1;
  /// Absolute jitter added to the diagonal; doubled on Cholesky failure up
  /// to max_jitter_doublings times.
  double jitter = 1e-6;
  int max_jitter_doublings = 20;
  /// Forgetting mode (DESIGN.md §15): replaces the shrinkage/jitter
  /// regularization with a fixed ridge, Sigma = (M + ridge * I) / w for
  /// the centered scatter M and effective weight w. Shrinkage mixes in a
  /// full-rank diagonal term whose coefficient moves with the trace and
  /// count, which makes exact O(d^2) rank-1 factor maintenance impossible;
  /// the ridge keeps Sigma an affine function of rank-1-maintainable
  /// statistics, so Update/Downdate become exact factor updates and
  /// Decay a pure statistics rescale that leaves the factor untouched.
  /// `ridge` must be > 0 in this mode — it also keeps Sigma positive
  /// definite at any weight, so the single-sample fallback_scale identity
  /// never applies.
  bool forgetting = false;
  double ridge = 1.0;
};

/// Multivariate Gaussian fitted by maximum likelihood with shrinkage, used
/// as the class/sensitive-conditional density g(z | y, s) in the paper's
/// GDA-based estimator (Sec. IV-B).
class Gaussian {
 public:
  Gaussian() = default;

  /// Fits mean and regularized covariance from the rows of `samples`.
  /// With a single sample the covariance falls back to the identity scaled
  /// by `fallback_scale`. Fails on zero samples.
  ///
  /// Also records the sufficient statistics (count, coordinate sums, raw
  /// second-moment scatter) that Update() folds new samples into. The
  /// batch numerics are unchanged: mean and covariance still come from the
  /// two-pass centered computation.
  static Result<Gaussian> Fit(const Matrix& samples,
                              const CovarianceConfig& config,
                              double fallback_scale = 1.0);

  /// Incrementally folds the rows of `new_samples` into the fitted
  /// Gaussian: O(A * d^2) to update the sufficient statistics for A new
  /// rows plus one O(d^3) Cholesky re-factorization, independent of how
  /// many samples were already absorbed. The refreshed covariance is
  /// derived from the raw moments (scatter/n - mean mean^T), which is
  /// algebraically identical to the batch two-pass estimate but associates
  /// differently, so incremental and batch fits agree to rounding (the
  /// means agree bitwise when rows arrive in the same order). Requires a
  /// prior successful Fit and matching dimension.
  Status Update(const Matrix& new_samples, const CovarianceConfig& config,
                double fallback_scale = 1.0);

  /// Folds a single sample (length dim()) into the sufficient statistics —
  /// the steady-state per-arrival path. Identical numerics to Update with
  /// a one-row matrix, but allocation-free once the internal covariance/
  /// factor scratch buffers are warm.
  Status UpdateOne(const double* row, const CovarianceConfig& config,
                   double fallback_scale = 1.0);

  /// Removes previously absorbed rows from the fit — the sliding-window
  /// eviction path. Each row is removed via DowndateOne (unit weight), so
  /// in forgetting mode the whole call is O(rows * d^2) with no
  /// refactorization unless a positive-definiteness guard trips.
  Status Downdate(const Matrix& old_rows, const CovarianceConfig& config,
                  double fallback_scale = 1.0);

  /// Removes one previously absorbed sample with effective weight
  /// `row_weight` (1 unless the row has been decayed since it was folded).
  /// In forgetting mode this is an O(d^2) rank-1 Cholesky downdate: the
  /// positive-definiteness guard solves L q = (x - mu') against the
  /// *unmodified* factor (through the dispatched downdate_solve kernel)
  /// and falls back to a full refactor from the downdated moments when the
  /// guard trips, the remaining effective weight drops below dim() + 1, or
  /// the hyperbolic sweep loses a pivot. In legacy mode every downdate is
  /// a moment subtraction plus refactor (and `row_weight` must be 1).
  /// Requires count() > 1: evicting the last absorbed sample is the
  /// caller's responsibility (drop the component instead).
  Status DowndateOne(const double* row, const CovarianceConfig& config,
                     double row_weight = 1.0, double fallback_scale = 1.0);

  /// Exponentially down-weights the absorbed statistics: the effective
  /// weight, sums, scatter, and tracked ridge all scale by `gamma` in
  /// (0, 1]. Sigma = (gamma*M + gamma*ridge*I) / (gamma*w) is invariant,
  /// so the cached mean, factor, and log-determinant are left bitwise
  /// untouched — decay changes no density until the next Update/Downdate,
  /// which sees its sample at relatively higher weight. Forgetting mode
  /// only.
  void Decay(double gamma);

  /// Number of samples absorbed so far (via Fit plus every Update).
  std::size_t count() const { return count_; }

  /// Effective absorbed mass: count() in legacy mode; in forgetting mode
  /// the decayed weight, which Decay shrinks and Downdate reduces by the
  /// evicted row's weight.
  double weight() const {
    return forgetting_ ? weight_ : static_cast<double>(count_);
  }

  /// log N(z; mean, cov). Precondition: z.size() == dim().
  double LogPdf(const std::vector<double>& z) const;

  /// Allocation-free LogPdf: `z` points at dim() coordinates and `scratch`
  /// at dim() caller-owned doubles (clobbered). Bitwise-identical to the
  /// vector overload: same centering, solve, and reduction order.
  double LogPdf(const double* z, double* scratch) const;

  /// Batched LogPdf over the rows of `zs` (n x dim()): one blocked
  /// triangular solve against the cached Cholesky factor per sample block
  /// instead of n per-sample solves with per-call temporaries. Follows the
  /// exact per-sample operation order of LogPdf, runs in parallel over
  /// sample blocks, and is bitwise deterministic for any thread count.
  /// Writes zs.rows() values into `out`.
  void LogPdfBatch(const Matrix& zs, double* out) const;

  /// Convenience allocation form of the batched evaluation.
  std::vector<double> LogPdfBatch(const Matrix& zs) const;

  /// Squared Mahalanobis distance (z-mu)^T Sigma^-1 (z-mu).
  double MahalanobisSquared(const std::vector<double>& z) const;

  std::size_t dim() const { return mean_.size(); }
  const std::vector<double>& mean() const { return mean_; }
  double log_det() const { return log_det_; }

  /// Folds another Gaussian's additive sufficient statistics (count, sums,
  /// scatter, effective weight, tracked ridge) into this one — the
  /// cross-shard merge (ROADMAP item 1): O(d^2) statistic additions plus a
  /// single re-factorization, regardless of how many samples either side
  /// absorbed. Both sides must share the dimension and the forgetting
  /// mode. Ridges add because each shard's ridge is a Wishart-style
  /// pseudo-observation mass: the merged covariance
  /// (M_a + M_b + (r_a + r_b) I) / (w_a + w_b) weights each shard's
  /// regularizer by the mass it contributed, and Decay keeps scaling the
  /// merged ridge consistently.
  Status MergeFrom(const Gaussian& other, const CovarianceConfig& config,
                   double fallback_scale = 1.0);

 private:
  friend struct StateCodecAccess;

  /// Applies progressive diagonal jitter to `cov` until the Cholesky
  /// succeeds, then caches the factor and log-determinant. Shared tail of
  /// Fit and Update. Works out of member scratch (reg_scratch_/chol_try_),
  /// so re-factorizations of a warm instance allocate nothing.
  Status FactorCovariance(const Matrix& cov, const CovarianceConfig& config);

  /// Recomputes mean/covariance from the raw moments and re-factorizes.
  /// Shared tail of Update and UpdateOne (identical arithmetic order).
  Status RefreshFromMoments(const CovarianceConfig& config,
                            double fallback_scale);

  /// Forgetting-mode refactor: mean from sums, covariance
  /// (scatter - sum sum^T / w + ridge * I) / w, factored without jitter
  /// (the ridge keeps it positive definite); the progressive-jitter rescue
  /// only runs on numerical failure. The fallback target of every guarded
  /// downdate — it overwrites the factor entirely, so a partially mutated
  /// hyperbolic sweep leaves no residue.
  Status RefreshRidge(const CovarianceConfig& config);

  /// Factors `cov` directly (no jitter), falling back to the progressive-
  /// jitter loop on failure. Shared tail of the forgetting-mode Fit and
  /// RefreshRidge.
  Status FactorRidgeCovariance(const Matrix& cov,
                               const CovarianceConfig& config);

  std::vector<double> mean_;
  Matrix chol_;  // lower Cholesky factor of the regularized covariance
  double log_det_ = 0.0;

  // Sufficient statistics for incremental refits: sample count, per-
  // coordinate sums, and the raw second moment sum_i x_i x_i^T (lower
  // triangle authoritative, kept symmetric).
  std::size_t count_ = 0;
  std::vector<double> sum_;
  Matrix scatter_;

  // Forgetting-mode state: the exponentially decayed effective weight and
  // ridge (both scale under Decay; weight_ == count_ until the first
  // Decay), plus the mode flag captured at Fit.
  bool forgetting_ = false;
  double weight_ = 0.0;
  double ridge_ = 0.0;

  // Warm scratch for the incremental path (covariance from moments, the
  // jittered copy handed to the factorization, and the trial factor that
  // is swapped into chol_ on success). Capacity is retained, so the
  // steady-state UpdateOne performs no heap allocation.
  Matrix cov_scratch_;
  Matrix reg_scratch_;
  Matrix chol_try_;

  // Rank-1 scratch (forgetting mode): the update/downdate vector and the
  // guard-solve copy the dispatched kernel clobbers. Pre-sized at Fit so
  // the steady-state evict -> downdate path allocates nothing.
  std::vector<double> down_v_;
  std::vector<double> down_p_;
};

}  // namespace faction

#endif  // FACTION_DENSITY_GAUSSIAN_H_
