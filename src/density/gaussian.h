#ifndef FACTION_DENSITY_GAUSSIAN_H_
#define FACTION_DENSITY_GAUSSIAN_H_

#include <vector>

#include "common/status.h"
#include "tensor/matrix.h"

namespace faction {

/// Regularization for covariance estimates fitted from few samples — the
/// situation FACTION is always in early in the stream, when a (class,
/// sensitive) component may hold only a handful of labeled examples.
struct CovarianceConfig {
  /// Shrinkage toward the scaled identity: Sigma_reg =
  /// (1-shrinkage)*Sigma + shrinkage*(tr(Sigma)/d)*I.
  double shrinkage = 0.1;
  /// Absolute jitter added to the diagonal; doubled on Cholesky failure up
  /// to max_jitter_doublings times.
  double jitter = 1e-6;
  int max_jitter_doublings = 20;
};

/// Multivariate Gaussian fitted by maximum likelihood with shrinkage, used
/// as the class/sensitive-conditional density g(z | y, s) in the paper's
/// GDA-based estimator (Sec. IV-B).
class Gaussian {
 public:
  Gaussian() = default;

  /// Fits mean and regularized covariance from the rows of `samples`.
  /// With a single sample the covariance falls back to the identity scaled
  /// by `fallback_scale`. Fails on zero samples.
  static Result<Gaussian> Fit(const Matrix& samples,
                              const CovarianceConfig& config,
                              double fallback_scale = 1.0);

  /// log N(z; mean, cov). Precondition: z.size() == dim().
  double LogPdf(const std::vector<double>& z) const;

  /// Batched LogPdf over the rows of `zs` (n x dim()): one blocked
  /// triangular solve against the cached Cholesky factor per sample block
  /// instead of n per-sample solves with per-call temporaries. Follows the
  /// exact per-sample operation order of LogPdf, runs in parallel over
  /// sample blocks, and is bitwise deterministic for any thread count.
  /// Writes zs.rows() values into `out`.
  void LogPdfBatch(const Matrix& zs, double* out) const;

  /// Convenience allocation form of the batched evaluation.
  std::vector<double> LogPdfBatch(const Matrix& zs) const;

  /// Squared Mahalanobis distance (z-mu)^T Sigma^-1 (z-mu).
  double MahalanobisSquared(const std::vector<double>& z) const;

  std::size_t dim() const { return mean_.size(); }
  const std::vector<double>& mean() const { return mean_; }
  double log_det() const { return log_det_; }

 private:
  std::vector<double> mean_;
  Matrix chol_;  // lower Cholesky factor of the regularized covariance
  double log_det_ = 0.0;
};

}  // namespace faction

#endif  // FACTION_DENSITY_GAUSSIAN_H_
