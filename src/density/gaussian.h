#ifndef FACTION_DENSITY_GAUSSIAN_H_
#define FACTION_DENSITY_GAUSSIAN_H_

#include <vector>

#include "common/status.h"
#include "tensor/matrix.h"

namespace faction {

/// Regularization for covariance estimates fitted from few samples — the
/// situation FACTION is always in early in the stream, when a (class,
/// sensitive) component may hold only a handful of labeled examples.
struct CovarianceConfig {
  /// Shrinkage toward the scaled identity: Sigma_reg =
  /// (1-shrinkage)*Sigma + shrinkage*(tr(Sigma)/d)*I.
  double shrinkage = 0.1;
  /// Absolute jitter added to the diagonal; doubled on Cholesky failure up
  /// to max_jitter_doublings times.
  double jitter = 1e-6;
  int max_jitter_doublings = 20;
};

/// Multivariate Gaussian fitted by maximum likelihood with shrinkage, used
/// as the class/sensitive-conditional density g(z | y, s) in the paper's
/// GDA-based estimator (Sec. IV-B).
class Gaussian {
 public:
  Gaussian() = default;

  /// Fits mean and regularized covariance from the rows of `samples`.
  /// With a single sample the covariance falls back to the identity scaled
  /// by `fallback_scale`. Fails on zero samples.
  ///
  /// Also records the sufficient statistics (count, coordinate sums, raw
  /// second-moment scatter) that Update() folds new samples into. The
  /// batch numerics are unchanged: mean and covariance still come from the
  /// two-pass centered computation.
  static Result<Gaussian> Fit(const Matrix& samples,
                              const CovarianceConfig& config,
                              double fallback_scale = 1.0);

  /// Incrementally folds the rows of `new_samples` into the fitted
  /// Gaussian: O(A * d^2) to update the sufficient statistics for A new
  /// rows plus one O(d^3) Cholesky re-factorization, independent of how
  /// many samples were already absorbed. The refreshed covariance is
  /// derived from the raw moments (scatter/n - mean mean^T), which is
  /// algebraically identical to the batch two-pass estimate but associates
  /// differently, so incremental and batch fits agree to rounding (the
  /// means agree bitwise when rows arrive in the same order). Requires a
  /// prior successful Fit and matching dimension.
  Status Update(const Matrix& new_samples, const CovarianceConfig& config,
                double fallback_scale = 1.0);

  /// Folds a single sample (length dim()) into the sufficient statistics —
  /// the steady-state per-arrival path. Identical numerics to Update with
  /// a one-row matrix, but allocation-free once the internal covariance/
  /// factor scratch buffers are warm.
  Status UpdateOne(const double* row, const CovarianceConfig& config,
                   double fallback_scale = 1.0);

  /// Number of samples absorbed so far (via Fit plus every Update).
  std::size_t count() const { return count_; }

  /// log N(z; mean, cov). Precondition: z.size() == dim().
  double LogPdf(const std::vector<double>& z) const;

  /// Allocation-free LogPdf: `z` points at dim() coordinates and `scratch`
  /// at dim() caller-owned doubles (clobbered). Bitwise-identical to the
  /// vector overload: same centering, solve, and reduction order.
  double LogPdf(const double* z, double* scratch) const;

  /// Batched LogPdf over the rows of `zs` (n x dim()): one blocked
  /// triangular solve against the cached Cholesky factor per sample block
  /// instead of n per-sample solves with per-call temporaries. Follows the
  /// exact per-sample operation order of LogPdf, runs in parallel over
  /// sample blocks, and is bitwise deterministic for any thread count.
  /// Writes zs.rows() values into `out`.
  void LogPdfBatch(const Matrix& zs, double* out) const;

  /// Convenience allocation form of the batched evaluation.
  std::vector<double> LogPdfBatch(const Matrix& zs) const;

  /// Squared Mahalanobis distance (z-mu)^T Sigma^-1 (z-mu).
  double MahalanobisSquared(const std::vector<double>& z) const;

  std::size_t dim() const { return mean_.size(); }
  const std::vector<double>& mean() const { return mean_; }
  double log_det() const { return log_det_; }

 private:
  /// Applies progressive diagonal jitter to `cov` until the Cholesky
  /// succeeds, then caches the factor and log-determinant. Shared tail of
  /// Fit and Update. Works out of member scratch (reg_scratch_/chol_try_),
  /// so re-factorizations of a warm instance allocate nothing.
  Status FactorCovariance(const Matrix& cov, const CovarianceConfig& config);

  /// Recomputes mean/covariance from the raw moments and re-factorizes.
  /// Shared tail of Update and UpdateOne (identical arithmetic order).
  Status RefreshFromMoments(const CovarianceConfig& config,
                            double fallback_scale);

  std::vector<double> mean_;
  Matrix chol_;  // lower Cholesky factor of the regularized covariance
  double log_det_ = 0.0;

  // Sufficient statistics for incremental refits: sample count, per-
  // coordinate sums, and the raw second moment sum_i x_i x_i^T (lower
  // triangle authoritative, kept symmetric).
  std::size_t count_ = 0;
  std::vector<double> sum_;
  Matrix scatter_;

  // Warm scratch for the incremental path (covariance from moments, the
  // jittered copy handed to the factorization, and the trial factor that
  // is swapped into chol_ on success). Capacity is retained, so the
  // steady-state UpdateOne performs no heap allocation.
  Matrix cov_scratch_;
  Matrix reg_scratch_;
  Matrix chol_try_;
};

}  // namespace faction

#endif  // FACTION_DENSITY_GAUSSIAN_H_
