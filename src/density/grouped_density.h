#ifndef FACTION_DENSITY_GROUPED_DENSITY_H_
#define FACTION_DENSITY_GROUPED_DENSITY_H_

#include <utility>
#include <vector>

#include "common/status.h"
#include "density/gaussian.h"
#include "tensor/matrix.h"

namespace faction {

/// Generalized form of the paper's fairness-aware density estimator
/// (Sec. IV-B): one GDA component per (class, sensitive-value) pair for an
/// arbitrary number of classes C and arbitrary discrete sensitive values.
/// The paper's experiments fix C = 2 and S = {-1, +1}
/// (FairDensityEstimator); this class implements the multi-class /
/// multi-valued extension the paper leaves as future work.
///
/// The per-class unfairness Delta g_c generalizes to the maximum pairwise
/// cross-group gap:
///   Delta g_c(z) = max_{s, s'} | g(z|c, s) - g(z|c, s') |
/// which reduces to Eqs. 4-5 in the binary-sensitive case.
class GroupedDensityEstimator {
 public:
  GroupedDensityEstimator() = default;

  /// Fits components for `num_classes` classes and the given set of
  /// sensitive values. Labels must lie in [0, num_classes); sensitive
  /// values must appear in `sensitive_values`. Components with no samples
  /// are missing (zero weight, -inf log-density). Fails when inputs are
  /// inconsistent or every component would be empty.
  static Result<GroupedDensityEstimator> Fit(
      const Matrix& features, const std::vector<int>& labels,
      const std::vector<int>& sensitive, int num_classes,
      std::vector<int> sensitive_values, const CovarianceConfig& config);

  /// Absorbs one labeled feature vector (length dim()) — the grouped
  /// analogue of FairDensityEstimator::UpdateOne. Unlike the binary
  /// estimator, out-of-domain rows are errors here, matching Fit's strict
  /// validation.
  Status UpdateOne(const double* z, int label, int sensitive,
                   const CovarianceConfig& config);

  /// Evicts one previously folded feature vector with effective weight
  /// `row_weight` — the grouped analogue of
  /// FairDensityEstimator::DowndateOne (rank-1 Gaussian downdate;
  /// last-row evictions drop the component; evicting a row never folded
  /// into its component is a checked abort).
  Status DowndateOne(const double* z, int label, int sensitive,
                     const CovarianceConfig& config, double row_weight = 1.0);

  /// Exponentially down-weights every component and the mixture masses by
  /// `gamma` in (0, 1]; mixture weights and component factors stay
  /// literally untouched. Forgetting mode only.
  void Decay(double gamma);

  /// Rows currently absorbed (Fit plus updates, minus evictions).
  std::size_t total_count() const { return total_; }

  std::size_t dim() const { return dim_; }
  int num_classes() const { return num_classes_; }
  const std::vector<int>& sensitive_values() const {
    return sensitive_values_;
  }

  /// True when the (label, sensitive) component was fitted from data.
  bool HasComponent(int label, int sensitive) const;

  /// log g(z | y, s); -infinity when the component is missing. `sensitive`
  /// must be one of sensitive_values().
  double LogComponentDensity(const std::vector<double>& z, int label,
                             int sensitive) const;

  /// Empirical mixture weight p(y, s).
  double Weight(int label, int sensitive) const;

  /// log g(z) = log sum_{y,s} g(z|y,s) p(y,s).
  double LogMarginalDensity(const std::vector<double>& z) const;

  /// Batched LogMarginalDensity over the rows of `zs`: one blocked
  /// triangular solve per component for the whole batch instead of
  /// zs.rows() * components per-sample solves. Bitwise identical to the
  /// per-sample path for any thread count. Writes zs.rows() values.
  void LogMarginalDensityBatch(const Matrix& zs, double* out) const;
  std::vector<double> LogMarginalDensityBatch(const Matrix& zs) const;

  /// Generalized per-class unfairness: the maximum pairwise cross-group
  /// density gap for class `label`, in the *raw* density domain. Missing
  /// components are treated as density 0 and participate in the pairwise
  /// max only when at least one other component of the class exists.
  /// Returns 0 when fewer than two groups have any signal.
  double DeltaG(const std::vector<double>& z, int label) const;

  /// Log-domain variant of DeltaG: log max pairwise |g - g'|, computed
  /// stably; -infinity when no pair differs.
  double LogDeltaG(const std::vector<double>& z, int label) const;

  /// Batched LogDeltaG for one class over the rows of `zs`. Bitwise
  /// identical to the per-sample path for any thread count.
  void LogDeltaGBatch(const Matrix& zs, int label, double* out) const;
  std::vector<double> LogDeltaGBatch(const Matrix& zs, int label) const;

 private:
  int ComponentIndex(int label, std::size_t group_pos) const {
    return label * static_cast<int>(sensitive_values_.size()) +
           static_cast<int>(group_pos);
  }
  /// Position of a sensitive value in sensitive_values_, or
  /// sensitive_values_.size() when absent. Binary search over the lookup
  /// table built at Fit time — no per-query linear scan.
  std::size_t GroupPosition(int sensitive) const;
  /// Rebuilds group_lookup_ from sensitive_values_.
  void BuildGroupLookup();
  /// Recomputes weights_/log_weights_ from the running counts (legacy) or
  /// decayed masses (forgetting).
  void RefreshWeights();

  std::size_t dim_ = 0;
  int num_classes_ = 0;
  std::vector<int> sensitive_values_;
  /// (sensitive value, position in sensitive_values_) sorted by value.
  std::vector<std::pair<int, std::size_t>> group_lookup_;
  std::vector<Gaussian> components_;
  std::vector<bool> present_;
  std::vector<double> weights_;
  std::vector<double> log_weights_;  // log(weights_), -inf at zero weight
  std::vector<std::size_t> counts_;  // per-component sample counts
  std::size_t total_ = 0;            // rows currently absorbed
  // Forgetting mode: decayed effective masses mirroring counts_/total_
  // (see FairDensityEstimator for the weight-derivation contract).
  bool forgetting_ = false;
  std::vector<double> wcounts_;
  double wtotal_ = 0.0;
};

}  // namespace faction

#endif  // FACTION_DENSITY_GROUPED_DENSITY_H_
