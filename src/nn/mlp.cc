#include "nn/mlp.h"

#include <utility>

#include "common/check.h"
#include "common/workspace.h"
#include "tensor/ops.h"

namespace faction {

MlpClassifier::MlpClassifier(const MlpConfig& config, Rng* rng)
    : config_(config) {
  FACTION_CHECK_GE(config_.num_classes, std::size_t{2});
  std::size_t in = config_.input_dim;
  for (std::size_t width : config_.hidden_dims) {
    hidden_.push_back(
        std::make_unique<Linear>(in, width, config_.spectral, rng));
    relus_.emplace_back();
    in = width;
  }
  // The classification head is never spectrally normalized: the Lipschitz
  // constraint is a property of the feature extractor only.
  SpectralNormConfig no_sn;
  head_ = std::make_unique<Linear>(in, config_.num_classes, no_sn, rng);
  acts_.resize(hidden_.size());
}

Matrix MlpClassifier::Forward(const Matrix& x) {
  Matrix logits;
  ForwardInto(x, &logits);
  return logits;
}

void MlpClassifier::ForwardInto(const Matrix& x, Matrix* out) {
  FACTION_CHECK_EQ(x.cols(), config_.input_dim);
  const Matrix* h = &x;
  for (std::size_t i = 0; i < hidden_.size(); ++i) {
    hidden_[i]->ForwardInto(*h, &acts_[i]);
    relus_[i].ForwardInPlace(&acts_[i]);
    h = &acts_[i];
  }
  last_features_ = *h;  // reuses capacity across same-shape batches
  head_->ForwardInto(*h, out);
}

Matrix MlpClassifier::Logits(const Matrix& x) const {
  Matrix h = x;
  for (const auto& lin : hidden_) {
    h = Relu::ForwardInference(lin->ForwardInference(h));
  }
  return head_->ForwardInference(h);
}

void MlpClassifier::LogitsInto(const Matrix& x, Workspace* ws,
                               Matrix* out) const {
  Matrix* features = ws->MatrixFor("mlp.infer_features", x.rows(),
                                   feature_dim());
  ExtractFeaturesInto(x, ws, features);
  head_->ForwardInferenceInto(*features, out);
}

Matrix MlpClassifier::ExtractFeatures(const Matrix& x) const {
  Matrix h = x;
  for (const auto& lin : hidden_) {
    h = Relu::ForwardInference(lin->ForwardInference(h));
  }
  return h;
}

void MlpClassifier::ExtractFeaturesInto(const Matrix& x, Workspace* ws,
                                        Matrix* out) const {
  FACTION_CHECK_EQ(x.cols(), config_.input_dim);
  if (hidden_.empty()) {
    *out = x;  // copy-assign: reuses capacity across same-shape batches
    return;
  }
  // Hidden chain ping-pongs between two Workspace buffers; the final layer
  // writes straight into *out. The input of each layer never aliases its
  // output: x is the caller's matrix, and a/b alternate.
  const Matrix* h = &x;
  Matrix* a = ws->MatrixFor("mlp.infer_a", 0, 0);
  Matrix* b = ws->MatrixFor("mlp.infer_b", 0, 0);
  for (std::size_t i = 0; i < hidden_.size(); ++i) {
    Matrix* target = i + 1 == hidden_.size() ? out : a;
    hidden_[i]->ForwardInferenceInto(*h, target);
    Relu::ForwardInferenceInPlace(target);
    h = target;
    std::swap(a, b);
  }
}

void MlpClassifier::Backward(const Matrix& dlogits) {
  head_->BackwardInto(dlogits, &dbuf_);
  for (std::size_t ii = hidden_.size(); ii > 0; --ii) {
    const std::size_t i = ii - 1;
    relus_[i].BackwardInPlace(&dbuf_);
    hidden_[i]->BackwardInto(dbuf_, &dbuf_swap_);
    std::swap(dbuf_, dbuf_swap_);
  }
}

void MlpClassifier::ZeroGrad() {
  for (auto& lin : hidden_) lin->ZeroGrad();
  head_->ZeroGrad();
}

std::vector<Matrix*> MlpClassifier::Parameters() {
  std::vector<Matrix*> out;
  for (auto& lin : hidden_) {
    out.push_back(lin->weight());
    out.push_back(lin->bias());
  }
  out.push_back(head_->weight());
  out.push_back(head_->bias());
  return out;
}

std::vector<const Matrix*> MlpClassifier::Parameters() const {
  std::vector<const Matrix*> out;
  for (const auto& lin : hidden_) {
    const Linear& layer = *lin;
    out.push_back(&layer.weight());
    out.push_back(&layer.bias());
  }
  const Linear& head = *head_;
  out.push_back(&head.weight());
  out.push_back(&head.bias());
  return out;
}

std::vector<Matrix*> MlpClassifier::Gradients() {
  std::vector<Matrix*> out;
  for (auto& lin : hidden_) {
    out.push_back(lin->weight_grad());
    out.push_back(lin->bias_grad());
  }
  out.push_back(head_->weight_grad());
  out.push_back(head_->bias_grad());
  return out;
}

}  // namespace faction
