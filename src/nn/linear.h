#ifndef FACTION_NN_LINEAR_H_
#define FACTION_NN_LINEAR_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "tensor/linalg.h"
#include "tensor/matrix.h"

namespace faction {

struct StateCodecAccess;  // serve/state_codec.cc checkpoint accessor

/// Configuration for spectral normalization of a Linear layer's weight
/// (Miyato et al., used by the paper's feature extractor to keep the feature
/// space smooth and sensitive — the property the density-based epistemic
/// uncertainty estimate relies on).
struct SpectralNormConfig {
  bool enabled = false;
  /// Soft Lipschitz budget: the effective weight is W * min(1, coeff/sigma),
  /// so layers with spectral norm below `coeff` are untouched.
  double coeff = 3.0;
  /// Power-iteration steps per forward pass; the iteration vector is
  /// persistent across steps, so 1 suffices in practice.
  int power_iterations = 1;
};

/// Fully connected layer y = x * W_eff^T + b with optional spectral
/// normalization and cached activations for layer-wise backpropagation.
///
/// Shapes: x is (n x in), W is (out x in), b is (1 x out), y is (n x out).
class Linear {
 public:
  /// He-initializes the weight for the given fan-in.
  Linear(std::size_t in_dim, std::size_t out_dim,
         const SpectralNormConfig& sn, Rng* rng);

  std::size_t in_dim() const { return w_.cols(); }
  std::size_t out_dim() const { return w_.rows(); }

  /// Forward pass; caches the input for Backward. During training call
  /// Forward; for pure inference ForwardInference avoids the cache.
  Matrix Forward(const Matrix& x);

  /// Allocation-free training forward: writes the output into *y (resized,
  /// capacity retained; must not alias x). Value-identical to Forward.
  void ForwardInto(const Matrix& x, Matrix* y);

  /// Forward pass without caching (const). Uses the effective (normalized)
  /// weight computed from the current persistent power-iteration state.
  Matrix ForwardInference(const Matrix& x) const;

  /// Allocation-free inference forward: writes into *y (resized, capacity
  /// retained; must not alias x). Bitwise-identical to ForwardInference.
  void ForwardInferenceInto(const Matrix& x, Matrix* y) const;

  /// Backpropagates dL/dy, accumulating weight gradients, and returns
  /// dL/dx. Must follow a Forward call with the matching batch.
  Matrix Backward(const Matrix& dy);

  /// Allocation-free variant of Backward: writes dL/dx into *dx (must not
  /// alias dy). Gradient temporaries live in persistent member scratch.
  void BackwardInto(const Matrix& dy, Matrix* dx);

  /// Clears accumulated gradients.
  void ZeroGrad();

  /// Parameter / gradient access for the optimizer.
  Matrix* weight() { return &w_; }
  Matrix* bias() { return &b_; }
  Matrix* weight_grad() { return &gw_; }
  Matrix* bias_grad() { return &gb_; }
  const Matrix& weight() const { return w_; }
  const Matrix& bias() const { return b_; }

  /// The scale min(1, coeff/sigma) applied at the last Forward (1 when
  /// spectral normalization is disabled).
  double last_scale() const { return scale_; }

  /// Estimated spectral norm of W from the last Forward (0 before any
  /// forward when normalization is disabled).
  double last_sigma() const { return sigma_; }

 private:
  // The codec checkpoints the persistent spectral state (sn_est_, sn_rng_,
  // scale_, sigma_): ForwardInference applies scale_ and each training
  // Forward draws from sn_rng_, so restore-time parity needs them exact.
  friend struct StateCodecAccess;

  void RefreshSpectralScale();

  SpectralNormConfig sn_;
  Matrix w_;   // (out x in)
  Matrix b_;   // (1 x out)
  Matrix gw_;  // gradient accumulator, same shape as w_
  Matrix gb_;  // gradient accumulator, same shape as b_
  Matrix cached_input_;
  Matrix dw_scratch_;              // dy^T x temporary, reused across steps
  std::vector<double> db_scratch_;  // column sums of dy, reused across steps
  // Persistent power-iteration state: u doubles as the classic warm-start
  // vector, and PowerIterationInto reuses u/v as working buffers so a
  // steady-state spectral refresh performs no heap allocation.
  SpectralEstimate sn_est_;
  Rng sn_rng_;
  double scale_ = 1.0;
  double sigma_ = 0.0;
};

}  // namespace faction

#endif  // FACTION_NN_LINEAR_H_
