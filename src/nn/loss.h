#ifndef FACTION_NN_LOSS_H_
#define FACTION_NN_LOSS_H_

#include <vector>

#include "common/status.h"
#include "fairness/relaxed.h"
#include "tensor/matrix.h"

namespace faction {

class Workspace;

/// Mean softmax cross-entropy over the batch. Writes dL/dlogits (already
/// divided by the batch size) into *dlogits (resized to match). Returns the
/// scalar loss.
///
/// Two-pass reference path: materializes LogSoftmaxRows, then derives the
/// loss and gradient from it. Retained as the parity oracle for
/// FusedSoftmaxCrossEntropy (tests pin the two to identical results).
double SoftmaxCrossEntropy(const Matrix& logits, const std::vector<int>& labels,
                           Matrix* dlogits);

/// Fused log-softmax + cross-entropy + gradient in one pass over the batch:
/// no intermediate log-probability matrix is materialized; per-row losses
/// land in *row_loss_scratch (optional, resized; pass a Workspace buffer to
/// make the call allocation-free) and are reduced serially in row order, so
/// the loss is bitwise identical to the reference for any thread count.
/// Per-element numerics replicate SoftmaxCrossEntropy exactly: gradient and
/// loss are bitwise equal to the two-pass path.
double FusedSoftmaxCrossEntropy(const Matrix& logits,
                                const std::vector<int>& labels,
                                Matrix* dlogits,
                                std::vector<double>* row_loss_scratch =
                                    nullptr);

/// Configuration of the fairness regularizer of Eqs. 8-9:
///   L_total = L_CE + mu * (L_fair - epsilon),  L_fair = [v(D, theta)]_+.
struct FairnessPenaltyConfig {
  FairnessNotion notion = FairnessNotion::kDdp;
  /// Trade-off weight mu of Eq. 9.
  double mu = 1.0;
  /// Constraint slack epsilon of Eq. 9: violations below epsilon are free.
  double epsilon = 0.01;
  /// When true, penalize |v| (both directions of disparity) via
  /// [|v| - epsilon]_+; when false, use the paper's literal [v]_+ - epsilon.
  /// Symmetric is the default because DDP is a magnitude.
  bool symmetric = true;
};

/// Evaluates the fairness penalty on a batch and accumulates its gradient
/// (scaled by mu) into *dlogits, which must already hold the cross-entropy
/// gradient with matching shape. The score h(x, theta) is the softmax
/// probability of class 1, so this requires num_classes == 2.
///
/// Returns the penalty value added to the total loss. Returns an error when
/// the batch cannot support the notion (e.g. a sensitive group is absent) —
/// callers typically skip the penalty for that batch.
///
/// When `workspace` is non-null the coefficient vector and the softmax
/// probability matrix live in arena buffers ("loss.fair_coeffs" /
/// "loss.fair_proba") and the call is allocation-free once their capacity
/// is warm; results are bitwise identical either way.
Result<double> AddFairnessPenalty(const Matrix& logits,
                                  const std::vector<int>& labels,
                                  const std::vector<int>& sensitive,
                                  const FairnessPenaltyConfig& config,
                                  Matrix* dlogits,
                                  Workspace* workspace = nullptr);

/// Convenience: mean negative log-likelihood of the true labels under the
/// softmax (no gradient); used for regret tracking.
double SoftmaxNll(const Matrix& logits, const std::vector<int>& labels);

}  // namespace faction

#endif  // FACTION_NN_LOSS_H_
