#ifndef FACTION_NN_CONV_H_
#define FACTION_NN_CONV_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/activation.h"
#include "nn/classifier.h"
#include "nn/conv_kernels.h"
#include "nn/linear.h"
#include "tensor/image.h"
#include "tensor/im2col.h"
#include "tensor/matrix.h"

namespace faction {

/// 3x3 same-padding convolution (stride 1) with cached activations for
/// backprop. Forward/Backward run on the GEMM-lowered im2col kernels from
/// nn/conv_kernels.h (bitwise identical to the retained naive reference,
/// see ApplyNaive), parallel over samples with per-chunk scratch reused
/// across minibatches.
class Conv2d {
 public:
  Conv2d(const ImageShape& in, std::size_t out_channels, Rng* rng);

  const ImageShape& input_shape() const { return in_; }
  ImageShape output_shape() const {
    return ImageShape{out_channels_, in_.height, in_.width};
  }

  /// x: (n x in.Flat()) -> (n x out.Flat()); caches x for Backward.
  Matrix Forward(const Matrix& x);

  /// Inference path (no cache).
  Matrix ForwardInference(const Matrix& x) const;

  /// dL/dy -> dL/dx, accumulating weight/bias gradients.
  Matrix Backward(const Matrix& dy);

  void ZeroGrad();
  Matrix* weight() { return &w_; }
  Matrix* bias() { return &b_; }
  Matrix* weight_grad() { return &gw_; }
  Matrix* bias_grad() { return &gb_; }
  const Matrix& weight() const { return w_; }
  const Matrix& bias() const { return b_; }

  /// Serial naive-loop forward, retained as the bitwise-parity reference
  /// for the GEMM-lowered path (parity pinned by tests and benchmarked as
  /// BM_Conv2dNaive).
  Matrix ApplyNaive(const Matrix& x) const;

  static constexpr std::size_t kKernel = 3;

 private:
  Matrix Apply(const Matrix& x) const;
  ConvGeometry Geometry() const;
  /// Grows the per-chunk scratch pool to `nchunks` entries; called before
  /// every parallel region so worker chunk `i` can use scratch_[i] without
  /// synchronization.
  void EnsureScratch(std::size_t nchunks) const;

  ImageShape in_;
  std::size_t out_channels_;
  Matrix w_;   // (out_channels x in_channels*3*3)
  Matrix b_;   // (1 x out_channels)
  Matrix gw_;
  Matrix gb_;
  Matrix cached_input_;
  // Per-parallel-chunk im2col scratch, reused across minibatches. mutable:
  // scratch only, never observable state. Chunk-disjoint by construction.
  mutable std::vector<ConvScratch> scratch_;
  // Per-chunk gradient partials (see Backward), reused across steps.
  Matrix gw_partial_;
  Matrix gb_partial_;
};

/// 2x2 max pooling with stride 2 (input height/width must be even).
class MaxPool2d {
 public:
  explicit MaxPool2d(const ImageShape& in);

  ImageShape output_shape() const {
    return ImageShape{in_.channels, in_.height / 2, in_.width / 2};
  }

  Matrix Forward(const Matrix& x);
  Matrix ForwardInference(const Matrix& x) const;
  Matrix Backward(const Matrix& dy) const;

 private:
  Matrix Apply(const Matrix& x, std::vector<std::size_t>* argmax) const;

  ImageShape in_;
  std::vector<std::size_t> cached_argmax_;  // flat source index per output
  std::size_t cached_rows_ = 0;
};

/// Configuration of the small CNN backbone: two conv+pool stages followed
/// by a (optionally spectral-normalized) feature layer, standing in for
/// the paper's spectral-normalized ResNet-18 on image streams (see
/// DESIGN.md's substitution table).
struct ConvNetConfig {
  ImageShape input;
  std::size_t conv1_filters = 8;
  std::size_t conv2_filters = 8;
  std::size_t feature_dim = 16;
  std::size_t num_classes = 2;
  SpectralNormConfig spectral;  ///< applied to the feature Linear
};

/// CNN classifier implementing the FeatureClassifier contract; usable as a
/// drop-in backbone for the online learner via
/// OnlineLearnerConfig::model_factory.
class ConvNetClassifier : public FeatureClassifier {
 public:
  ConvNetClassifier(const ConvNetConfig& config, Rng* rng);

  const ConvNetConfig& config() const { return config_; }
  std::size_t input_dim() const override { return config_.input.Flat(); }
  std::size_t feature_dim() const override { return config_.feature_dim; }
  std::size_t num_classes() const override { return config_.num_classes; }

  Matrix Forward(const Matrix& x) override;
  Matrix Logits(const Matrix& x) const override;
  Matrix ExtractFeatures(const Matrix& x) const override;
  void Backward(const Matrix& dlogits) override;
  void ZeroGrad() override;
  std::vector<Matrix*> Parameters() override;
  std::vector<const Matrix*> Parameters() const override;
  std::vector<Matrix*> Gradients() override;
  std::unique_ptr<FeatureClassifier> CloneArchitecture(
      Rng* rng) const override;

 private:
  ConvNetConfig config_;
  std::unique_ptr<Conv2d> conv1_;
  Relu relu1_;
  std::unique_ptr<MaxPool2d> pool1_;
  std::unique_ptr<Conv2d> conv2_;
  Relu relu2_;
  std::unique_ptr<MaxPool2d> pool2_;
  std::unique_ptr<Linear> fc_;  // flattened -> feature_dim
  Relu relu3_;
  std::unique_ptr<Linear> head_;
};

}  // namespace faction

#endif  // FACTION_NN_CONV_H_
