#include "nn/conv_kernels.h"

#include <algorithm>

#include "common/check.h"
#include "tensor/simd.h"

namespace faction {

namespace {

using std::ptrdiff_t;

inline ptrdiff_t InCoord(std::size_t out, std::size_t delta,
                         std::size_t stride, std::size_t pad) {
  return static_cast<ptrdiff_t>(out * stride + delta) -
         static_cast<ptrdiff_t>(pad);
}

}  // namespace

void NaiveConvForward(const ConvGeometry& g, std::size_t out_channels,
                      const double* x, const double* w, const double* bias,
                      double* y) {
  FACTION_DCHECK(g.Valid());
  const std::size_t oh = g.OutHeight();
  const std::size_t ow = g.OutWidth();
  const std::size_t ohw = oh * ow;
  const std::size_t patch = g.PatchSize();
  const ptrdiff_t h = static_cast<ptrdiff_t>(g.height);
  const ptrdiff_t wid = static_cast<ptrdiff_t>(g.width);
  for (std::size_t oc = 0; oc < out_channels; ++oc) {
    const double* kernel = w + oc * patch;
    const double b = bias[oc];
    double* dst = y + oc * ohw;
    for (std::size_t orow = 0; orow < oh; ++orow) {
      for (std::size_t ocol = 0; ocol < ow; ++ocol) {
        double acc = b;
        std::size_t kidx = 0;
        for (std::size_t ic = 0; ic < g.in_channels; ++ic) {
          const double* plane = x + ic * g.height * g.width;
          for (std::size_t dr = 0; dr < g.kernel; ++dr) {
            const ptrdiff_t rr = InCoord(orow, dr, g.stride, g.pad);
            for (std::size_t dc = 0; dc < g.kernel; ++dc, ++kidx) {
              const ptrdiff_t cc = InCoord(ocol, dc, g.stride, g.pad);
              if (rr < 0 || cc < 0 || rr >= h || cc >= wid) continue;
              acc += kernel[kidx] *
                     plane[static_cast<std::size_t>(rr) * g.width +
                           static_cast<std::size_t>(cc)];
            }
          }
        }
        dst[orow * ow + ocol] = acc;
      }
    }
  }
}

void NaiveConvBackward(const ConvGeometry& g, std::size_t out_channels,
                       const double* x, const double* w, const double* dy,
                       double* dx, double* gw, double* gb) {
  FACTION_DCHECK(g.Valid());
  const std::size_t oh = g.OutHeight();
  const std::size_t ow = g.OutWidth();
  const std::size_t ohw = oh * ow;
  const std::size_t patch = g.PatchSize();
  const ptrdiff_t h = static_cast<ptrdiff_t>(g.height);
  const ptrdiff_t wid = static_cast<ptrdiff_t>(g.width);
  std::fill(dx, dx + g.InFlat(), 0.0);
  for (std::size_t oc = 0; oc < out_channels; ++oc) {
    const double* kernel = w + oc * patch;
    double* gkernel = gw + oc * patch;
    const double* grad = dy + oc * ohw;
    double gbias = 0.0;
    for (std::size_t orow = 0; orow < oh; ++orow) {
      for (std::size_t ocol = 0; ocol < ow; ++ocol) {
        const double gval = grad[orow * ow + ocol];
        if (gval == 0.0) continue;
        gbias += gval;
        std::size_t kidx = 0;
        for (std::size_t ic = 0; ic < g.in_channels; ++ic) {
          const double* plane = x + ic * g.height * g.width;
          double* dplane = dx + ic * g.height * g.width;
          for (std::size_t dr = 0; dr < g.kernel; ++dr) {
            const ptrdiff_t rr = InCoord(orow, dr, g.stride, g.pad);
            for (std::size_t dc = 0; dc < g.kernel; ++dc, ++kidx) {
              const ptrdiff_t cc = InCoord(ocol, dc, g.stride, g.pad);
              if (rr < 0 || cc < 0 || rr >= h || cc >= wid) continue;
              const std::size_t src =
                  static_cast<std::size_t>(rr) * g.width +
                  static_cast<std::size_t>(cc);
              gkernel[kidx] += gval * plane[src];
              dplane[src] += gval * kernel[kidx];
            }
          }
        }
      }
    }
    gb[oc] += gbias;
  }
}

void GemmConvForward(const ConvGeometry& g, std::size_t out_channels,
                     const double* x, const double* w, const double* bias,
                     double* y, ConvScratch* scratch) {
  FACTION_DCHECK(g.Valid());
  const std::size_t ohw = g.OutPositions();
  const std::size_t patch = g.PatchSize();
  scratch->col.resize(patch * ohw);
  double* col = scratch->col.data();
  Im2Col(x, g, col);
  // The SIMD micro-kernel keeps per-register accumulators per output
  // element, initialized to the bias and updated in ascending k — the same
  // chain as the naive kernel's acc = bias; acc += w[k]*tap(k). Padding
  // taps contribute exact zeros (see header).
  ActiveSimd().conv_forward(w, col, bias, y, out_channels, patch, ohw);
}

void GemmConvBackward(const ConvGeometry& g, std::size_t out_channels,
                      const double* x, const double* w, const double* dy,
                      double* dx, double* gw, double* gb,
                      ConvScratch* scratch) {
  FACTION_DCHECK(g.Valid());
  const std::size_t oh = g.OutHeight();
  const std::size_t ow = g.OutWidth();
  const std::size_t ohw = oh * ow;
  const std::size_t patch = g.PatchSize();
  // dW/db: position-major patches make the per-position update a
  // unit-stride axpy over the whole filter. Contributions arrive in
  // ascending output-position order per element — same as naive.
  scratch->colt.resize(ohw * patch);
  double* colt = scratch->colt.data();
  Im2ColRows(x, g, colt);
  const SimdKernels& kern = ActiveSimd();
  for (std::size_t oc = 0; oc < out_channels; ++oc) {
    double* gkernel = gw + oc * patch;
    const double* grad = dy + oc * ohw;
    double gbias = 0.0;
    for (std::size_t o = 0; o < ohw; ++o) {
      const double gval = grad[o];
      if (gval == 0.0) continue;
      gbias += gval;
      kern.axpy(gval, colt + o * patch, gkernel, patch);
    }
    gb[oc] += gbias;
  }
  // dX: scatter through a padded image so the bounds branch leaves the
  // inner loop entirely. Every interior pixel receives exactly the same
  // contribution sequence, in the same (oc, o, k) order, as the naive
  // kernel; out-of-range taps land in the padding ring and are dropped
  // when the interior is copied out.
  const std::size_t ph = g.height + 2 * g.pad;
  const std::size_t pw = g.width + 2 * g.pad;
  scratch->padded.assign(g.in_channels * ph * pw, 0.0);
  double* padded = scratch->padded.data();
  for (std::size_t oc = 0; oc < out_channels; ++oc) {
    const double* kernel = w + oc * patch;
    const double* grad = dy + oc * ohw;
    for (std::size_t orow = 0; orow < oh; ++orow) {
      for (std::size_t ocol = 0; ocol < ow; ++ocol) {
        const double gval = grad[orow * ow + ocol];
        if (gval == 0.0) continue;
        std::size_t kidx = 0;
        for (std::size_t ic = 0; ic < g.in_channels; ++ic) {
          double* corner = padded + ic * ph * pw + orow * g.stride * pw +
                           ocol * g.stride;
          for (std::size_t dr = 0; dr < g.kernel; ++dr) {
            double* drow = corner + dr * pw;
            for (std::size_t dc = 0; dc < g.kernel; ++dc, ++kidx) {
              drow[dc] += gval * kernel[kidx];
            }
          }
        }
      }
    }
  }
  for (std::size_t ic = 0; ic < g.in_channels; ++ic) {
    const double* src = padded + ic * ph * pw + g.pad * pw + g.pad;
    double* dst = dx + ic * g.height * g.width;
    for (std::size_t r = 0; r < g.height; ++r) {
      std::copy(src + r * pw, src + r * pw + g.width, dst + r * g.width);
    }
  }
}

}  // namespace faction
