#ifndef FACTION_NN_SERIALIZE_H_
#define FACTION_NN_SERIALIZE_H_

#include <istream>
#include <ostream>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "nn/mlp.h"

namespace faction {

/// Serializes the classifier (architecture + parameters) to a versioned
/// text format. Deployed online learners use this to checkpoint theta_t
/// between tasks or hand a trained model to a serving process.
Status SaveModel(const MlpClassifier& model, std::ostream& os);

/// Reads a model back. Fails with a descriptive status on format or
/// version mismatches; the parameters are restored bit-for-bit modulo
/// decimal round-trip (the format prints with max_digits10 precision, so
/// doubles survive exactly).
Result<MlpClassifier> LoadModel(std::istream& is);

/// Convenience wrappers over files.
Status SaveModelToFile(const MlpClassifier& model, const std::string& path);
Result<MlpClassifier> LoadModelFromFile(const std::string& path);

}  // namespace faction

#endif  // FACTION_NN_SERIALIZE_H_
