#ifndef FACTION_NN_SERIALIZE_H_
#define FACTION_NN_SERIALIZE_H_

#include <istream>
#include <ostream>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "nn/mlp.h"

namespace faction {

/// Serializes the classifier (architecture + parameters) to a versioned
/// text format (current: v2, hexfloat tensor payload for bitwise-exact
/// round-trips). Deployed online learners use this to checkpoint theta_t
/// between tasks or hand a trained model to a serving process.
///
/// Models with non-finite (NaN/Inf) parameters are rejected with
/// kNumericalError *before* anything is written: a non-finite weight would
/// serialize into a checkpoint no loader can read.
Status SaveModel(const MlpClassifier& model, std::ostream& os);

/// Reads a model back; accepts the current v2 (hexfloat) and the legacy v1
/// (decimal) payloads. Fails with a descriptive status on format or
/// version mismatches and on non-finite tensor values; v2 parameters are
/// restored bit-for-bit.
Result<MlpClassifier> LoadModel(std::istream& is);

/// Crash-safe file save: writes to `path + ".tmp"` and renames it over
/// `path` on success, so a failed save (I/O error, non-finite model) never
/// truncates or clobbers an existing good checkpoint.
Status SaveModelToFile(const MlpClassifier& model, const std::string& path);
Result<MlpClassifier> LoadModelFromFile(const std::string& path);

}  // namespace faction

#endif  // FACTION_NN_SERIALIZE_H_
