#ifndef FACTION_NN_SERIALIZE_H_
#define FACTION_NN_SERIALIZE_H_

#include <istream>
#include <ostream>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "nn/mlp.h"

namespace faction {

/// Serializes the classifier (architecture + parameters) to a versioned
/// text format (current: v2, hexfloat tensor payload for bitwise-exact
/// round-trips). Deployed online learners use this to checkpoint theta_t
/// between tasks or hand a trained model to a serving process.
///
/// Models with non-finite (NaN/Inf) parameters are rejected with
/// kNumericalError *before* anything is written: a non-finite weight would
/// serialize into a checkpoint no loader can read.
Status SaveModel(const MlpClassifier& model, std::ostream& os);

/// Reads a model back; accepts the current v2 (hexfloat) and the legacy v1
/// (decimal) payloads. Fails with a descriptive status on format or
/// version mismatches and on non-finite tensor values; v2 parameters are
/// restored bit-for-bit. `source` names the stream in error messages (the
/// file path, or any logical label); every parse failure also reports the
/// byte offset where reading stopped, so a truncated or corrupted
/// checkpoint points at its own damage.
Result<MlpClassifier> LoadModel(std::istream& is,
                                const std::string& source = "");

/// Crash-safe, durable file save: writes to `path + ".tmp"`, fsyncs it,
/// renames it over `path`, and fsyncs the parent directory
/// (common/fsio.h), so a failed save never truncates an existing good
/// checkpoint and a completed save survives power loss. Set the
/// FACTION_NO_FSYNC environment variable to skip the fsyncs (bulk
/// experiment runs where durability does not matter); atomicity is
/// unaffected.
Status SaveModelToFile(const MlpClassifier& model, const std::string& path);
/// Opens and loads `path`; decode errors carry the path and byte offset.
Result<MlpClassifier> LoadModelFromFile(const std::string& path);

}  // namespace faction

#endif  // FACTION_NN_SERIALIZE_H_
