#include "nn/trainer.h"

#include <algorithm>

#include "nn/optimizer.h"

namespace faction {

Result<TrainReport> TrainClassifier(FeatureClassifier* model,
                                    const Dataset& labeled,
                                    const TrainConfig& config, Rng* rng) {
  if (labeled.empty()) {
    return Status::FailedPrecondition("cannot train on an empty dataset");
  }
  if (labeled.dim() != model->input_dim()) {
    return Status::InvalidArgument(
        "dataset dimension " + std::to_string(labeled.dim()) +
        " does not match model input " +
        std::to_string(model->input_dim()));
  }
  if (config.epochs <= 0 || config.batch_size == 0) {
    return Status::InvalidArgument("epochs and batch_size must be positive");
  }

  SgdOptimizer opt(config.learning_rate, config.momentum,
                   config.weight_decay);
  const std::vector<Matrix*> params = model->Parameters();
  const std::vector<Matrix*> grads = model->Gradients();

  TrainReport report;
  const std::size_t n = labeled.size();
  std::vector<std::size_t> order;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng->Permutation(n, &order);
    double epoch_loss = 0.0, epoch_ce = 0.0, epoch_pen = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < n; start += config.batch_size) {
      const std::size_t end = std::min(n, start + config.batch_size);
      const std::size_t bs = end - start;
      Matrix x(bs, labeled.dim());
      std::vector<int> y(bs), s(bs);
      for (std::size_t i = 0; i < bs; ++i) {
        const std::size_t idx = order[start + i];
        std::copy(labeled.features().row_data(idx),
                  labeled.features().row_data(idx) + labeled.dim(),
                  x.row_data(i));
        y[i] = labeled.labels()[idx];
        s[i] = labeled.sensitive()[idx];
      }
      const Matrix logits = model->Forward(x);
      Matrix dlogits;
      const double ce = SoftmaxCrossEntropy(logits, y, &dlogits);
      double penalty = 0.0;
      if (config.use_fairness_penalty) {
        const Result<double> pen =
            AddFairnessPenalty(logits, y, s, config.fairness, &dlogits);
        // Batches lacking a sensitive group cannot support the notion; the
        // penalty is simply skipped for them.
        if (pen.ok()) penalty = pen.value();
      }
      if (config.use_individual_penalty) {
        const Result<double> pen = AddIndividualFairnessPenalty(
            x, logits, config.individual, &dlogits);
        if (pen.ok()) penalty += pen.value();
      }
      model->ZeroGrad();
      model->Backward(dlogits);
      opt.Step(params, grads);
      ++report.steps;
      epoch_ce += ce;
      epoch_pen += penalty;
      epoch_loss += ce + penalty;
      ++batches;
    }
    if (batches > 0) {
      report.final_loss = epoch_loss / static_cast<double>(batches);
      report.final_ce = epoch_ce / static_cast<double>(batches);
      report.final_penalty = epoch_pen / static_cast<double>(batches);
    }
  }
  return report;
}

}  // namespace faction
