#include "nn/trainer.h"

#include <algorithm>

#include "common/telemetry.h"
#include "nn/optimizer.h"

namespace faction {

Result<TrainReport> TrainClassifier(FeatureClassifier* model,
                                    const Dataset& labeled,
                                    const TrainConfig& config, Rng* rng,
                                    Workspace* workspace) {
  if (labeled.empty()) {
    return Status::FailedPrecondition("cannot train on an empty dataset");
  }
  if (labeled.dim() != model->input_dim()) {
    return Status::InvalidArgument(
        "dataset dimension " + std::to_string(labeled.dim()) +
        " does not match model input " +
        std::to_string(model->input_dim()));
  }
  if (config.epochs <= 0 || config.batch_size == 0) {
    return Status::InvalidArgument("epochs and batch_size must be positive");
  }
  TelemetryCount("trainer.calls");
  ScopedTimer train_timer("trainer.seconds");

  SgdOptimizer opt(config.learning_rate, config.momentum,
                   config.weight_decay);
  const std::vector<Matrix*> params = model->Parameters();
  const std::vector<Matrix*> grads = model->Gradients();
  opt.Prepare(params);  // momentum state sized up front, not mid-epoch

  TrainReport report;
  const std::size_t n = labeled.size();
  // All per-step temporaries come from the arena: sized once to the max
  // batch and reused across minibatches, epochs, and (with a caller-owned
  // workspace) across retraining rounds. Every buffer is fully overwritten
  // before use, so reuse cannot change results.
  Workspace local_workspace;
  Workspace& arena = workspace != nullptr ? *workspace : local_workspace;
  const std::size_t max_bs = std::min(n, config.batch_size);
  Matrix* x = arena.MatrixFor("trainer.x", max_bs, labeled.dim());
  Matrix* logits = arena.MatrixFor("trainer.logits", max_bs,
                                   model->num_classes());
  Matrix* dlogits = arena.MatrixFor("trainer.dlogits", max_bs,
                                    model->num_classes());
  std::vector<int>* y = arena.IntsFor("trainer.y", max_bs);
  std::vector<int>* s = arena.IntsFor("trainer.s", max_bs);
  std::vector<double>* row_loss = arena.DoublesFor("trainer.row_loss",
                                                   max_bs);
  std::vector<std::size_t>* order = arena.SizesFor("trainer.order", n);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng->Permutation(n, order);
    double epoch_loss = 0.0, epoch_ce = 0.0, epoch_pen = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < n; start += config.batch_size) {
      const std::size_t end = std::min(n, start + config.batch_size);
      const std::size_t bs = end - start;
      x->ResizeForOverwrite(bs, labeled.dim());
      y->resize(bs);
      s->resize(bs);
      for (std::size_t i = 0; i < bs; ++i) {
        const std::size_t idx = (*order)[start + i];
        std::copy(labeled.features().row_data(idx),
                  labeled.features().row_data(idx) + labeled.dim(),
                  x->row_data(i));
        (*y)[i] = labeled.labels()[idx];
        (*s)[i] = labeled.sensitive()[idx];
      }
      model->ForwardInto(*x, logits);
      const double ce = FusedSoftmaxCrossEntropy(*logits, *y, dlogits,
                                                 row_loss);
      double penalty = 0.0;
      if (config.use_fairness_penalty) {
        const Result<double> pen = AddFairnessPenalty(
            *logits, *y, *s, config.fairness, dlogits, &arena);
        // Batches lacking a sensitive group cannot support the notion; the
        // penalty is simply skipped for them.
        if (pen.ok()) {
          penalty = pen.value();
        } else {
          TelemetryCount("trainer.fairness_penalty_skipped");
        }
      }
      if (config.use_individual_penalty) {
        const Result<double> pen = AddIndividualFairnessPenalty(
            *x, *logits, config.individual, dlogits);
        if (pen.ok()) penalty += pen.value();
      }
      model->ZeroGrad();
      model->Backward(*dlogits);
      opt.Step(params, grads);
      ++report.steps;
      epoch_ce += ce;
      epoch_pen += penalty;
      epoch_loss += ce + penalty;
      ++batches;
    }
    if (batches > 0) {
      report.final_loss = epoch_loss / static_cast<double>(batches);
      report.final_ce = epoch_ce / static_cast<double>(batches);
      report.final_penalty = epoch_pen / static_cast<double>(batches);
    }
  }
  TelemetryCount("trainer.steps", static_cast<std::uint64_t>(report.steps));
  return report;
}

}  // namespace faction
