#include "nn/serialize.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

namespace faction {

namespace {

constexpr int kFormatVersion = 1;
constexpr char kMagic[] = "faction-mlp";

}  // namespace

Status SaveModel(const MlpClassifier& model, std::ostream& os) {
  const MlpConfig& config = model.config();
  os << kMagic << " v" << kFormatVersion << "\n";
  os << "input_dim " << config.input_dim << "\n";
  os << "num_classes " << config.num_classes << "\n";
  os << "hidden";
  for (std::size_t width : config.hidden_dims) os << ' ' << width;
  os << "\n";
  os << "spectral " << (config.spectral.enabled ? 1 : 0) << ' '
     << config.spectral.coeff << ' ' << config.spectral.power_iterations
     << "\n";
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  auto* mutable_model = const_cast<MlpClassifier*>(&model);
  const std::vector<Matrix*> params = mutable_model->Parameters();
  os << "tensors " << params.size() << "\n";
  for (const Matrix* p : params) {
    os << p->rows() << ' ' << p->cols();
    for (std::size_t i = 0; i < p->size(); ++i) os << ' ' << p->data()[i];
    os << "\n";
  }
  if (!os.good()) return Status::Internal("SaveModel: stream write failed");
  return Status::Ok();
}

Result<MlpClassifier> LoadModel(std::istream& is) {
  std::string magic, version;
  if (!(is >> magic >> version) || magic != kMagic) {
    return Status::InvalidArgument("LoadModel: bad magic header");
  }
  if (version != "v" + std::to_string(kFormatVersion)) {
    return Status::InvalidArgument("LoadModel: unsupported version " +
                                   version);
  }
  MlpConfig config;
  std::string key;
  if (!(is >> key >> config.input_dim) || key != "input_dim") {
    return Status::InvalidArgument("LoadModel: missing input_dim");
  }
  if (!(is >> key >> config.num_classes) || key != "num_classes") {
    return Status::InvalidArgument("LoadModel: missing num_classes");
  }
  if (!(is >> key) || key != "hidden") {
    return Status::InvalidArgument("LoadModel: missing hidden widths");
  }
  config.hidden_dims.clear();
  // Hidden widths run to the end of the line.
  std::string rest;
  std::getline(is, rest);
  std::istringstream hidden(rest);
  std::size_t width = 0;
  while (hidden >> width) config.hidden_dims.push_back(width);
  int spectral_enabled = 0;
  if (!(is >> key >> spectral_enabled >> config.spectral.coeff >>
        config.spectral.power_iterations) ||
      key != "spectral") {
    return Status::InvalidArgument("LoadModel: missing spectral config");
  }
  config.spectral.enabled = spectral_enabled != 0;

  std::size_t tensor_count = 0;
  if (!(is >> key >> tensor_count) || key != "tensors") {
    return Status::InvalidArgument("LoadModel: missing tensor count");
  }
  Rng rng(0);  // initialization is immediately overwritten
  MlpClassifier model(config, &rng);
  const std::vector<Matrix*> params = model.Parameters();
  if (params.size() != tensor_count) {
    return Status::InvalidArgument(
        "LoadModel: tensor count " + std::to_string(tensor_count) +
        " does not match architecture (" + std::to_string(params.size()) +
        ")");
  }
  for (Matrix* p : params) {
    std::size_t rows = 0, cols = 0;
    if (!(is >> rows >> cols) || rows != p->rows() || cols != p->cols()) {
      return Status::InvalidArgument("LoadModel: tensor shape mismatch");
    }
    for (std::size_t i = 0; i < p->size(); ++i) {
      if (!(is >> p->data()[i])) {
        return Status::InvalidArgument("LoadModel: truncated tensor data");
      }
    }
  }
  return model;
}

Status SaveModelToFile(const MlpClassifier& model, const std::string& path) {
  std::ofstream os(path);
  if (!os.is_open()) {
    return Status::NotFound("SaveModelToFile: cannot open " + path);
  }
  return SaveModel(model, os);
}

Result<MlpClassifier> LoadModelFromFile(const std::string& path) {
  std::ifstream is(path);
  if (!is.is_open()) {
    return Status::NotFound("LoadModelFromFile: cannot open " + path);
  }
  return LoadModel(is);
}

}  // namespace faction
