#include "nn/serialize.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

namespace faction {

namespace {

// v1 printed decimal (max_digits10) tensor payloads; v2 prints hexfloat,
// which round-trips every finite double bit-for-bit on any conforming
// strtod. Loaders accept both.
constexpr int kFormatVersion = 2;
constexpr int kOldestReadableVersion = 1;
constexpr char kMagic[] = "faction-mlp";

/// Parses one whitespace-delimited double token: decimal for v1 payloads,
/// hexfloat (or decimal) for v2. Rejects trailing garbage and — matching
/// SaveModel's contract — non-finite values.
Status ReadDoubleToken(std::istream& is, double* out) {
  std::string token;
  if (!(is >> token)) {
    return Status::InvalidArgument("LoadModel: truncated tensor data");
  }
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || token.empty()) {
    return Status::InvalidArgument("LoadModel: bad tensor value '" + token +
                                   "'");
  }
  if (!std::isfinite(value)) {
    return Status::InvalidArgument(
        "LoadModel: non-finite tensor value '" + token + "'");
  }
  *out = value;
  return Status::Ok();
}

}  // namespace

Status SaveModel(const MlpClassifier& model, std::ostream& os) {
  const MlpConfig& config = model.config();
  const std::vector<const Matrix*> params = model.Parameters();
  // Reject non-finite parameters up front: a NaN/Inf weight would
  // serialize as "nan"/"inf", which no loader accepts — the checkpoint
  // would save "successfully" and then be unreadable.
  for (std::size_t t = 0; t < params.size(); ++t) {
    const Matrix& p = *params[t];
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (!std::isfinite(p.data()[i])) {
        return Status::NumericalError(
            "SaveModel: non-finite parameter in tensor " + std::to_string(t) +
            " at element " + std::to_string(i));
      }
    }
  }
  os << kMagic << " v" << kFormatVersion << "\n";
  os << "input_dim " << config.input_dim << "\n";
  os << "num_classes " << config.num_classes << "\n";
  os << "hidden";
  for (std::size_t width : config.hidden_dims) os << ' ' << width;
  os << "\n";
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "spectral " << (config.spectral.enabled ? 1 : 0) << ' '
     << config.spectral.coeff << ' ' << config.spectral.power_iterations
     << "\n";
  os << "tensors " << params.size() << "\n";
  // Hexfloat payload: exact binary round-trip for every finite double,
  // including denormals and signed zeros.
  os << std::hexfloat;
  for (const Matrix* p : params) {
    os << p->rows() << ' ' << p->cols();
    for (std::size_t i = 0; i < p->size(); ++i) os << ' ' << p->data()[i];
    os << "\n";
  }
  os << std::defaultfloat;
  if (!os.good()) return Status::Internal("SaveModel: stream write failed");
  return Status::Ok();
}

Result<MlpClassifier> LoadModel(std::istream& is) {
  std::string magic, version;
  if (!(is >> magic >> version) || magic != kMagic) {
    return Status::InvalidArgument("LoadModel: bad magic header");
  }
  bool known_version = false;
  for (int v = kOldestReadableVersion; v <= kFormatVersion; ++v) {
    if (version == "v" + std::to_string(v)) known_version = true;
  }
  if (!known_version) {
    return Status::InvalidArgument("LoadModel: unsupported version " +
                                   version);
  }
  MlpConfig config;
  std::string key;
  if (!(is >> key >> config.input_dim) || key != "input_dim") {
    return Status::InvalidArgument("LoadModel: missing input_dim");
  }
  if (!(is >> key >> config.num_classes) || key != "num_classes") {
    return Status::InvalidArgument("LoadModel: missing num_classes");
  }
  if (!(is >> key) || key != "hidden") {
    return Status::InvalidArgument("LoadModel: missing hidden widths");
  }
  config.hidden_dims.clear();
  // Hidden widths run to the end of the line.
  std::string rest;
  std::getline(is, rest);
  std::istringstream hidden(rest);
  std::size_t width = 0;
  while (hidden >> width) config.hidden_dims.push_back(width);
  int spectral_enabled = 0;
  if (!(is >> key >> spectral_enabled >> config.spectral.coeff >>
        config.spectral.power_iterations) ||
      key != "spectral") {
    return Status::InvalidArgument("LoadModel: missing spectral config");
  }
  config.spectral.enabled = spectral_enabled != 0;

  std::size_t tensor_count = 0;
  if (!(is >> key >> tensor_count) || key != "tensors") {
    return Status::InvalidArgument("LoadModel: missing tensor count");
  }
  Rng rng(0);  // initialization is immediately overwritten
  MlpClassifier model(config, &rng);
  const std::vector<Matrix*> params = model.Parameters();
  if (params.size() != tensor_count) {
    return Status::InvalidArgument(
        "LoadModel: tensor count " + std::to_string(tensor_count) +
        " does not match architecture (" + std::to_string(params.size()) +
        ")");
  }
  for (Matrix* p : params) {
    std::size_t rows = 0, cols = 0;
    if (!(is >> rows >> cols) || rows != p->rows() || cols != p->cols()) {
      return Status::InvalidArgument("LoadModel: tensor shape mismatch");
    }
    for (std::size_t i = 0; i < p->size(); ++i) {
      // strtod-based parse handles both the v1 decimal and the v2 hexfloat
      // payloads (istream operator>> cannot parse hexfloat portably).
      FACTION_RETURN_IF_ERROR(ReadDoubleToken(is, &p->data()[i]));
    }
  }
  return model;
}

Status SaveModelToFile(const MlpClassifier& model, const std::string& path) {
  // Crash-safe save: serialize into a sibling temp file and rename it over
  // the target, so a failed or interrupted save never truncates an
  // existing good checkpoint.
  const std::string tmp_path = path + ".tmp";
  Status save_status;
  {
    std::ofstream os(tmp_path, std::ios::trunc);
    if (!os.is_open()) {
      return Status::NotFound("SaveModelToFile: cannot open " + tmp_path);
    }
    save_status = SaveModel(model, os);
    if (save_status.ok()) {
      os.flush();
      if (!os.good()) {
        save_status = Status::Internal("SaveModelToFile: flush failed for " +
                                       tmp_path);
      }
    }
  }
  if (!save_status.ok()) {
    std::remove(tmp_path.c_str());
    return save_status;
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Internal("SaveModelToFile: cannot rename " + tmp_path +
                            " to " + path);
  }
  return Status::Ok();
}

Result<MlpClassifier> LoadModelFromFile(const std::string& path) {
  std::ifstream is(path);
  if (!is.is_open()) {
    return Status::NotFound("LoadModelFromFile: cannot open " + path);
  }
  return LoadModel(is);
}

}  // namespace faction
