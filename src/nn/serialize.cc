#include "nn/serialize.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <utility>

#include "common/fsio.h"

namespace faction {

namespace {

// v1 printed decimal (max_digits10) tensor payloads; v2 prints hexfloat,
// which round-trips every finite double bit-for-bit on any conforming
// strtod. Loaders accept both.
constexpr int kFormatVersion = 2;
constexpr int kOldestReadableVersion = 1;
constexpr char kMagic[] = "faction-mlp";

/// Builds a LoadModel error naming what failed, the stream's source label
/// (when one was given), and the byte offset where reading stopped — a
/// truncated or corrupted checkpoint points at its own damage.
Status LoadFail(std::istream& is, const std::string& source,
                const std::string& what) {
  // A failed extraction sets failbit, under which tellg() returns -1;
  // clear first so the offset reflects the position actually reached.
  is.clear();
  const std::streamoff pos = static_cast<std::streamoff>(is.tellg());
  std::string msg = "LoadModel: " + what;
  if (!source.empty()) msg += " in " + source;
  if (pos >= 0) msg += " @byte " + std::to_string(static_cast<long long>(pos));
  return Status::InvalidArgument(std::move(msg));
}

/// Parses one whitespace-delimited double token: decimal for v1 payloads,
/// hexfloat (or decimal) for v2. Rejects trailing garbage and — matching
/// SaveModel's contract — non-finite values.
Status ReadDoubleToken(std::istream& is, const std::string& source,
                       double* out) {
  std::string token;
  if (!(is >> token)) {
    return LoadFail(is, source, "truncated tensor data");
  }
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || token.empty()) {
    return LoadFail(is, source, "bad tensor value '" + token + "'");
  }
  if (!std::isfinite(value)) {
    return LoadFail(is, source, "non-finite tensor value '" + token + "'");
  }
  *out = value;
  return Status::Ok();
}

}  // namespace

Status SaveModel(const MlpClassifier& model, std::ostream& os) {
  const MlpConfig& config = model.config();
  const std::vector<const Matrix*> params = model.Parameters();
  // Reject non-finite parameters up front: a NaN/Inf weight would
  // serialize as "nan"/"inf", which no loader accepts — the checkpoint
  // would save "successfully" and then be unreadable.
  for (std::size_t t = 0; t < params.size(); ++t) {
    const Matrix& p = *params[t];
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (!std::isfinite(p.data()[i])) {
        return Status::NumericalError(
            "SaveModel: non-finite parameter in tensor " + std::to_string(t) +
            " at element " + std::to_string(i));
      }
    }
  }
  os << kMagic << " v" << kFormatVersion << "\n";
  os << "input_dim " << config.input_dim << "\n";
  os << "num_classes " << config.num_classes << "\n";
  os << "hidden";
  for (std::size_t width : config.hidden_dims) os << ' ' << width;
  os << "\n";
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "spectral " << (config.spectral.enabled ? 1 : 0) << ' '
     << config.spectral.coeff << ' ' << config.spectral.power_iterations
     << "\n";
  os << "tensors " << params.size() << "\n";
  // Hexfloat payload: exact binary round-trip for every finite double,
  // including denormals and signed zeros.
  os << std::hexfloat;
  for (const Matrix* p : params) {
    os << p->rows() << ' ' << p->cols();
    for (std::size_t i = 0; i < p->size(); ++i) os << ' ' << p->data()[i];
    os << "\n";
  }
  os << std::defaultfloat;
  if (!os.good()) return Status::Internal("SaveModel: stream write failed");
  return Status::Ok();
}

Result<MlpClassifier> LoadModel(std::istream& is, const std::string& source) {
  std::string magic, version;
  if (!(is >> magic >> version) || magic != kMagic) {
    return LoadFail(is, source, "bad magic header");
  }
  bool known_version = false;
  for (int v = kOldestReadableVersion; v <= kFormatVersion; ++v) {
    if (version == "v" + std::to_string(v)) known_version = true;
  }
  if (!known_version) {
    return LoadFail(is, source, "unsupported version " + version);
  }
  MlpConfig config;
  std::string key;
  if (!(is >> key >> config.input_dim) || key != "input_dim") {
    return LoadFail(is, source, "missing input_dim");
  }
  if (!(is >> key >> config.num_classes) || key != "num_classes") {
    return LoadFail(is, source, "missing num_classes");
  }
  if (!(is >> key) || key != "hidden") {
    return LoadFail(is, source, "missing hidden widths");
  }
  config.hidden_dims.clear();
  // Hidden widths run to the end of the line.
  std::string rest;
  std::getline(is, rest);
  std::istringstream hidden(rest);
  std::size_t width = 0;
  while (hidden >> width) config.hidden_dims.push_back(width);
  int spectral_enabled = 0;
  if (!(is >> key >> spectral_enabled >> config.spectral.coeff >>
        config.spectral.power_iterations) ||
      key != "spectral") {
    return LoadFail(is, source, "missing spectral config");
  }
  config.spectral.enabled = spectral_enabled != 0;

  std::size_t tensor_count = 0;
  if (!(is >> key >> tensor_count) || key != "tensors") {
    return LoadFail(is, source, "missing tensor count");
  }
  Rng rng(0);  // initialization is immediately overwritten
  MlpClassifier model(config, &rng);
  const std::vector<Matrix*> params = model.Parameters();
  if (params.size() != tensor_count) {
    return LoadFail(is, source,
                    "tensor count " + std::to_string(tensor_count) +
                        " does not match architecture (" +
                        std::to_string(params.size()) + ")");
  }
  for (Matrix* p : params) {
    std::size_t rows = 0, cols = 0;
    if (!(is >> rows >> cols) || rows != p->rows() || cols != p->cols()) {
      return LoadFail(is, source, "tensor shape mismatch");
    }
    for (std::size_t i = 0; i < p->size(); ++i) {
      // strtod-based parse handles both the v1 decimal and the v2 hexfloat
      // payloads (istream operator>> cannot parse hexfloat portably).
      FACTION_RETURN_IF_ERROR(ReadDoubleToken(is, source, &p->data()[i]));
    }
  }
  return model;
}

Status SaveModelToFile(const MlpClassifier& model, const std::string& path) {
  // Crash-safe save: serialize into a sibling temp file and rename it over
  // the target, so a failed or interrupted save never truncates an
  // existing good checkpoint.
  const std::string tmp_path = path + ".tmp";
  Status save_status;
  {
    std::ofstream os(tmp_path, std::ios::trunc);
    if (!os.is_open()) {
      return Status::NotFound("SaveModelToFile: cannot open " + tmp_path);
    }
    save_status = SaveModel(model, os);
    if (save_status.ok()) {
      os.flush();
      if (!os.good()) {
        save_status = Status::Internal("SaveModelToFile: flush failed for " +
                                       tmp_path);
      }
    }
  }
  if (!save_status.ok()) {
    std::remove(tmp_path.c_str());
    return save_status;
  }
  // Durable commit (fsync tmp -> rename -> fsync parent): rename alone is
  // atomic but not durable — on power loss the filesystem may persist the
  // rename before the data blocks, leaving a correctly-named torn
  // checkpoint. CommitFileDurable removes the tmp file on failure.
  return CommitFileDurable(tmp_path, path);
}

Result<MlpClassifier> LoadModelFromFile(const std::string& path) {
  std::ifstream is(path);
  if (!is.is_open()) {
    return Status::NotFound("LoadModelFromFile: cannot open " + path);
  }
  return LoadModel(is, path);
}

}  // namespace faction
