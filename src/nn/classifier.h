#ifndef FACTION_NN_CLASSIFIER_H_
#define FACTION_NN_CLASSIFIER_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "tensor/matrix.h"

namespace faction {

class Workspace;

/// Abstract classifier-with-a-feature-space: the contract FACTION's
/// machinery needs from a backbone. Two implementations ship with the
/// library — the spectral-normalized MLP (the paper's tabular backbone)
/// and a small CNN (standing in for the paper's ResNet-18 on image
/// streams). The density estimator, the selection strategies, and the
/// online learner all program against this interface, so a new backbone
/// only has to implement it.
class FeatureClassifier {
 public:
  virtual ~FeatureClassifier() = default;

  virtual std::size_t input_dim() const = 0;
  virtual std::size_t feature_dim() const = 0;
  virtual std::size_t num_classes() const = 0;

  /// Training forward pass: logits (n x num_classes); caches activations
  /// for Backward.
  virtual Matrix Forward(const Matrix& x) = 0;

  /// Allocation-aware training forward: writes logits into *out (resized,
  /// capacity retained). Value-identical to Forward. The base default
  /// delegates to Forward and copy-assigns; backbones on the zero-alloc
  /// path override it to write directly into the caller's buffer.
  virtual void ForwardInto(const Matrix& x, Matrix* out);

  /// Inference-only logits.
  virtual Matrix Logits(const Matrix& x) const = 0;

  /// Allocation-aware inference logits: intermediate activations live in
  /// the caller's Workspace, the result in *out. Bitwise-identical to
  /// Logits. The base default delegates to Logits and copy-assigns.
  virtual void LogitsInto(const Matrix& x, Workspace* ws, Matrix* out) const;

  /// Feature vectors z = r(x, theta) (n x feature_dim), inference path.
  virtual Matrix ExtractFeatures(const Matrix& x) const = 0;

  /// Allocation-aware feature extraction into *out via the caller's
  /// Workspace. Bitwise-identical to ExtractFeatures; base default
  /// delegates and copy-assigns.
  virtual void ExtractFeaturesInto(const Matrix& x, Workspace* ws,
                                   Matrix* out) const;

  /// Backpropagates dL/dlogits from the last Forward.
  virtual void Backward(const Matrix& dlogits) = 0;

  virtual void ZeroGrad() = 0;
  virtual std::vector<Matrix*> Parameters() = 0;
  /// Read-only parameter access (serialization, checksums, inspection);
  /// same tensors in the same stable order as the mutable overload.
  virtual std::vector<const Matrix*> Parameters() const = 0;
  virtual std::vector<Matrix*> Gradients() = 0;

  /// Fresh instance with the same architecture and new random weights.
  virtual std::unique_ptr<FeatureClassifier> CloneArchitecture(
      Rng* rng) const = 0;

  /// Copies parameters from an architecture-identical classifier.
  void CopyParametersFrom(const FeatureClassifier& other);

  /// Row-wise softmax class probabilities (inference path).
  Matrix PredictProba(const Matrix& x) const;

  /// Allocation-aware PredictProba: logits land in a Workspace buffer
  /// ("classifier.proba_logits"), probabilities in *out. Bitwise-identical
  /// to PredictProba.
  void PredictProbaInto(const Matrix& x, Workspace* ws, Matrix* out) const;

  /// Argmax class predictions (inference path).
  std::vector<int> Predict(const Matrix& x) const;

  /// Total scalar parameter count.
  std::size_t ParameterCount() const;
};

}  // namespace faction

#endif  // FACTION_NN_CLASSIFIER_H_
