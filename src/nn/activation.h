#ifndef FACTION_NN_ACTIVATION_H_
#define FACTION_NN_ACTIVATION_H_

#include "tensor/matrix.h"

namespace faction {

/// ReLU activation with cached mask for backpropagation.
class Relu {
 public:
  /// Elementwise max(0, x); caches the active mask.
  Matrix Forward(const Matrix& x);

  /// Elementwise max(0, x) without caching (inference path).
  static Matrix ForwardInference(const Matrix& x);

  /// Backpropagates through the cached mask. Must follow a matching
  /// Forward.
  Matrix Backward(const Matrix& dy) const;

 private:
  Matrix mask_;  // 1.0 where the input was positive, else 0.0
};

}  // namespace faction

#endif  // FACTION_NN_ACTIVATION_H_
