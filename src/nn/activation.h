#ifndef FACTION_NN_ACTIVATION_H_
#define FACTION_NN_ACTIVATION_H_

#include "tensor/matrix.h"

namespace faction {

/// ReLU activation with cached mask for backpropagation.
class Relu {
 public:
  /// Elementwise max(0, x); caches the active mask.
  Matrix Forward(const Matrix& x);

  /// In-place training forward: clamps *x to max(0, x) and caches the
  /// active mask. Value-identical to Forward; used on the allocation-free
  /// training path (MlpClassifier buffer chain).
  void ForwardInPlace(Matrix* x);

  /// Elementwise max(0, x) without caching (inference path).
  static Matrix ForwardInference(const Matrix& x);

  /// In-place inference clamp: *x = max(0, *x), no mask. Value-identical
  /// to ForwardInference; used on the allocation-free inference chain.
  static void ForwardInferenceInPlace(Matrix* x);

  /// Backpropagates through the cached mask. Must follow a matching
  /// Forward.
  Matrix Backward(const Matrix& dy) const;

  /// In-place variant of Backward: *dy *= mask elementwise.
  void BackwardInPlace(Matrix* dy) const;

 private:
  Matrix mask_;  // 1.0 where the input was positive, else 0.0
};

}  // namespace faction

#endif  // FACTION_NN_ACTIVATION_H_
