#ifndef FACTION_NN_OPTIMIZER_H_
#define FACTION_NN_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "tensor/matrix.h"

namespace faction {

/// Interface for first-order optimizers over a fixed list of parameter
/// tensors. Implementations keep per-parameter state indexed by position, so
/// the same parameter list (same order, same shapes) must be passed on every
/// step.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update step: params[i] is updated in place using grads[i].
  virtual void Step(const std::vector<Matrix*>& params,
                    const std::vector<Matrix*>& grads) = 0;

  /// Current base learning rate.
  virtual double learning_rate() const = 0;

  /// Overrides the base learning rate (used by schedules such as the
  /// gamma_t sequence in Theorem 1).
  virtual void set_learning_rate(double lr) = 0;
};

/// SGD with optional momentum and decoupled weight decay.
class SgdOptimizer : public Optimizer {
 public:
  explicit SgdOptimizer(double lr, double momentum = 0.0,
                        double weight_decay = 0.0);

  /// Pre-sizes the momentum state for the given parameter list so the
  /// first Step performs no allocation. Optional: Step self-initializes
  /// lazily when Prepare was not called.
  void Prepare(const std::vector<Matrix*>& params);

  void Step(const std::vector<Matrix*>& params,
            const std::vector<Matrix*>& grads) override;
  double learning_rate() const override { return lr_; }
  void set_learning_rate(double lr) override { lr_ = lr; }

 private:
  double lr_;
  double momentum_;
  double weight_decay_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba) with decoupled weight decay (AdamW-style).
class AdamOptimizer : public Optimizer {
 public:
  explicit AdamOptimizer(double lr, double beta1 = 0.9, double beta2 = 0.999,
                         double eps = 1e-8, double weight_decay = 0.0);

  void Step(const std::vector<Matrix*>& params,
            const std::vector<Matrix*>& grads) override;
  double learning_rate() const override { return lr_; }
  void set_learning_rate(double lr) override { lr_ = lr; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  double weight_decay_;
  long step_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace faction

#endif  // FACTION_NN_OPTIMIZER_H_
