#ifndef FACTION_NN_CONV_KERNELS_H_
#define FACTION_NN_CONV_KERNELS_H_

#include <cstddef>
#include <vector>

#include "tensor/im2col.h"

namespace faction {

/// Reusable per-worker scratch for the GEMM-lowered convolution kernels.
/// Buffers grow on demand and keep their capacity, so steady-state calls
/// allocate nothing. One ConvScratch must never be shared by concurrent
/// workers (Conv2d keeps one per parallel chunk).
struct ConvScratch {
  std::vector<double> col;     ///< (PatchSize x OutPositions), forward
  std::vector<double> colt;    ///< (OutPositions x PatchSize), backward dW
  std::vector<double> padded;  ///< (in_channels x padded image), backward dX
};

// Single-sample convolution kernels. Layouts (all row-major, CHW):
//   x:    g.InFlat()                      input image
//   w:    out_channels x g.PatchSize()    filters, tap order (ic, dr, dc)
//   bias: out_channels
//   y/dy: out_channels x g.OutPositions() output / its gradient
//   dx:   g.InFlat()                      input gradient (fully overwritten)
//   gw:   out_channels x g.PatchSize()    weight gradient (accumulated, +=)
//   gb:   out_channels                    bias gradient (accumulated, +=)
//
// The naive kernels are the bitwise-parity reference (the seed's loop nest,
// generalized to arbitrary kernel/stride/pad). The Gemm* kernels lower the
// same computation onto im2col + axpy panels while preserving the naive
// per-element floating-point accumulation order, so naive and GEMM results
// are bitwise identical (see DESIGN.md §10 for the ±0.0 caveat on padding
// taps — padding contributes exact +0.0/-0.0 terms that cannot change any
// finite accumulator).

/// Reference forward: y[oc][o] = bias[oc] + sum_k w[oc][k] * tap(k, o),
/// accumulated in ascending k with out-of-bounds taps skipped.
void NaiveConvForward(const ConvGeometry& g, std::size_t out_channels,
                      const double* x, const double* w, const double* bias,
                      double* y);

/// Reference backward. For each (oc, o) with dy != 0.0 (zero gradients are
/// skipped, matching the seed's post-ReLU sparsity shortcut): gb[oc] += dy;
/// then ascending k: gw[oc][k] += dy * tap, dx[tap] += dy * w[oc][k].
/// dx is zeroed first; gw/gb accumulate.
void NaiveConvBackward(const ConvGeometry& g, std::size_t out_channels,
                       const double* x, const double* w, const double* dy,
                       double* dx, double* gw, double* gb);

/// GEMM-lowered forward: im2col once, then per output channel one bias
/// broadcast followed by PatchSize unit-stride axpy passes over the output
/// row. Bitwise identical to NaiveConvForward.
void GemmConvForward(const ConvGeometry& g, std::size_t out_channels,
                     const double* x, const double* w, const double* bias,
                     double* y, ConvScratch* scratch);

/// GEMM-lowered backward: position-major im2col drives unit-stride axpy
/// panels for gw, and dx is scattered through a padded image buffer so the
/// padding branch disappears from the inner loop. Bitwise identical to
/// NaiveConvBackward (same dx/gw/gb semantics).
void GemmConvBackward(const ConvGeometry& g, std::size_t out_channels,
                      const double* x, const double* w, const double* dy,
                      double* dx, double* gw, double* gb,
                      ConvScratch* scratch);

}  // namespace faction

#endif  // FACTION_NN_CONV_KERNELS_H_
