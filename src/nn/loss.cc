#include "nn/loss.h"

#include <cmath>

#include "common/check.h"
#include "common/parallel.h"
#include "common/workspace.h"

#include "tensor/ops.h"
#include "tensor/simd.h"

namespace faction {

namespace {

// Rows per parallel chunk in the fused loss. Chunk layout depends only on
// this constant and the batch size, never the thread count (determinism
// contract of common/parallel.h).
constexpr std::size_t kLossRowGrain = 64;

}  // namespace

double SoftmaxCrossEntropy(const Matrix& logits,
                           const std::vector<int>& labels, Matrix* dlogits) {
  FACTION_CHECK(dlogits != nullptr);
  FACTION_CHECK_LEN(labels, logits.rows());
  const std::size_t n = logits.rows();
  const std::size_t c = logits.cols();
  const Matrix logp = LogSoftmaxRows(logits);
  double loss = 0.0;
  dlogits->Resize(n, c);
  for (std::size_t i = 0; i < n; ++i) {
    const int y = labels[i];
    FACTION_CHECK_GE(y, 0);
    FACTION_CHECK_LT(static_cast<std::size_t>(y), c);
    loss -= logp(i, static_cast<std::size_t>(y));
    double* drow = dlogits->row_data(i);
    const double* lrow = logp.row_data(i);
    for (std::size_t j = 0; j < c; ++j) {
      drow[j] = std::exp(lrow[j]);  // softmax probability
    }
    drow[static_cast<std::size_t>(y)] -= 1.0;
    for (std::size_t j = 0; j < c; ++j) drow[j] /= static_cast<double>(n);
  }
  const double mean_loss = loss / static_cast<double>(n);
  FACTION_DCHECK_FINITE(mean_loss);
  return mean_loss;
}

double FusedSoftmaxCrossEntropy(const Matrix& logits,
                                const std::vector<int>& labels,
                                Matrix* dlogits,
                                std::vector<double>* row_loss_scratch) {
  FACTION_CHECK(dlogits != nullptr);
  FACTION_CHECK_LEN(labels, logits.rows());
  const std::size_t n = logits.rows();
  const std::size_t c = logits.cols();
  const double batch_n = static_cast<double>(n);
  std::vector<double> local_scratch;
  std::vector<double>* row_loss =
      row_loss_scratch != nullptr ? row_loss_scratch : &local_scratch;
  row_loss->resize(n);
  dlogits->ResizeForOverwrite(n, c);
  double* row_loss_p = row_loss->data();
  // One pass per row: max, stable log-sum-exp, then gradient written
  // straight into dlogits. Every double matches the two-pass reference:
  // lse = mx + log(sum exp(r[j]-mx)) with the same ascending-j sum, the
  // gradient is exp(r[j]-lse) — the same value LogSoftmaxRows would have
  // materialized — and the per-row loss is -(r[y]-lse).
  // The SIMD row_max may pick the other sign when +0.0 and -0.0 tie for
  // the row maximum; exp(x - mx) and mx + log(sum) are bitwise invariant
  // to that sign flip (DESIGN.md §12), so the results stay identical. The
  // vectorized divide performs the same one rounded division per element.
  const SimdKernels& kern = ActiveSimd();
  ParallelFor(0, n, kLossRowGrain, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const int y = labels[i];
      FACTION_CHECK_GE(y, 0);
      FACTION_CHECK_LT(static_cast<std::size_t>(y), c);
      const double* lrow = logits.row_data(i);
      double* drow = dlogits->row_data(i);
      const double mx = kern.row_max(lrow, c);
      double sum = 0.0;
      for (std::size_t j = 0; j < c; ++j) sum += std::exp(lrow[j] - mx);
      const double lse = mx + std::log(sum);
      row_loss_p[i] = lrow[static_cast<std::size_t>(y)] - lse;
      for (std::size_t j = 0; j < c; ++j) {
        drow[j] = std::exp(lrow[j] - lse);
      }
      drow[static_cast<std::size_t>(y)] -= 1.0;
      kern.divide(drow, c, batch_n);
    }
  });
  // Serial reduction in ascending row order — the same association the
  // reference's `loss -= logp(i, y)` loop uses, so the total is bitwise
  // stable across thread counts and equal to the two-pass path.
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) loss -= row_loss_p[i];
  const double mean_loss = loss / static_cast<double>(n);
  FACTION_DCHECK_FINITE(mean_loss);
  FACTION_DCHECK_FINITE_ALL(dlogits->data(), dlogits->size());
  return mean_loss;
}

Result<double> AddFairnessPenalty(const Matrix& logits,
                                  const std::vector<int>& labels,
                                  const std::vector<int>& sensitive,
                                  const FairnessPenaltyConfig& config,
                                  Matrix* dlogits, Workspace* workspace) {
  FACTION_CHECK(dlogits != nullptr);
  if (logits.cols() != 2) {
    return Status::InvalidArgument(
        "fairness penalty requires binary classification (2 logits)");
  }
  if (logits.rows() != sensitive.size() ||
      dlogits->rows() != logits.rows() || dlogits->cols() != logits.cols()) {
    return Status::InvalidArgument("fairness penalty: shape mismatch");
  }
  const std::size_t n = logits.rows();

  // Temporaries come from the caller's arena when one is supplied.
  std::vector<double> local_coeffs;
  Matrix local_proba;
  std::vector<double>* coeffs = &local_coeffs;
  Matrix* proba = &local_proba;
  if (workspace != nullptr) {
    coeffs = workspace->DoublesFor("loss.fair_coeffs", n);
    proba = workspace->MatrixFor("loss.fair_proba", n, logits.cols());
  }
  std::size_t m = 0;
  FACTION_RETURN_IF_ERROR(RelaxedFairnessCoefficientsInto(
      config.notion, sensitive, labels, &m, coeffs));

  // Scores h_i = softmax probability of class 1; v = (1/M) sum c_i h_i.
  SoftmaxRowsInto(logits, proba);
  double v = 0.0;
  for (std::size_t i = 0; i < n; ++i) v += (*coeffs)[i] * (*proba)(i, 1);
  v /= static_cast<double>(m);
  FACTION_DCHECK_FINITE(v);

  // Penalty value and its derivative w.r.t. v.
  double penalty = 0.0;
  double dpen_dv = 0.0;
  if (config.symmetric) {
    const double excess = std::fabs(v) - config.epsilon;
    if (excess > 0.0) {
      penalty = excess;
      dpen_dv = v > 0.0 ? 1.0 : -1.0;
    }
  } else {
    // Literal Eq. 8-9 form: L_fair = [v]_+, total adds mu*([v]_+ - eps).
    if (v > 0.0) {
      penalty = v;
      dpen_dv = 1.0;
    }
    penalty -= config.epsilon;
  }

  if (dpen_dv != 0.0) {
    // dv/dlogit_{i,k} = (c_i / M) * p1_i * (delta_{1k} - p_{ik}).
    const double scale = config.mu * dpen_dv / static_cast<double>(m);
    for (std::size_t i = 0; i < n; ++i) {
      if ((*coeffs)[i] == 0.0) continue;
      const double p0 = (*proba)(i, 0);
      const double p1 = (*proba)(i, 1);
      const double base = scale * (*coeffs)[i] * p1;
      (*dlogits)(i, 0) += base * (-p0);
      (*dlogits)(i, 1) += base * (1.0 - p1);
    }
  }
  return config.mu * penalty;
}

double SoftmaxNll(const Matrix& logits, const std::vector<int>& labels) {
  FACTION_CHECK_LEN(labels, logits.rows());
  const Matrix logp = LogSoftmaxRows(logits);
  double loss = 0.0;
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    loss -= logp(i, static_cast<std::size_t>(labels[i]));
  }
  return logits.rows() > 0 ? loss / static_cast<double>(logits.rows()) : 0.0;
}

}  // namespace faction
