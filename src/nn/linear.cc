#include "nn/linear.h"

#include <cmath>

#include "common/check.h"

#include "tensor/linalg.h"
#include "tensor/ops.h"

namespace faction {

Linear::Linear(std::size_t in_dim, std::size_t out_dim,
               const SpectralNormConfig& sn, Rng* rng)
    : sn_(sn),
      w_(out_dim, in_dim),
      b_(1, out_dim),
      gw_(out_dim, in_dim),
      gb_(1, out_dim),
      sn_rng_(rng->Fork()) {
  // He initialization: N(0, 2/fan_in), appropriate for ReLU stacks.
  const double std = std::sqrt(2.0 / static_cast<double>(in_dim));
  for (std::size_t i = 0; i < w_.size(); ++i) {
    w_.data()[i] = rng->Gaussian(0.0, std);
  }
}

void Linear::RefreshSpectralScale() {
  if (!sn_.enabled) {
    scale_ = 1.0;
    return;
  }
  PowerIterationInto(w_, sn_.power_iterations, &sn_rng_, &sn_est_);
  sigma_ = sn_est_.sigma;
  FACTION_DCHECK_FINITE(sigma_);
  scale_ = sigma_ > sn_.coeff && sigma_ > 0.0 ? sn_.coeff / sigma_ : 1.0;
}

Matrix Linear::Forward(const Matrix& x) {
  Matrix y;
  ForwardInto(x, &y);
  return y;
}

void Linear::ForwardInto(const Matrix& x, Matrix* y) {
  FACTION_CHECK_EQ(x.cols(), in_dim());
  RefreshSpectralScale();
  cached_input_ = x;  // vector copy-assign: reuses capacity, no alloc
  MatMulBtInto(x, w_, y);
  if (scale_ != 1.0) {
    for (std::size_t i = 0; i < y->size(); ++i) y->data()[i] *= scale_;
  }
  // Bias broadcast straight from b_'s storage (the vector-building
  // AddRowBroadcast overload would allocate per call).
  const double* bias = b_.row_data(0);
  for (std::size_t i = 0; i < y->rows(); ++i) {
    double* r = y->row_data(i);
    for (std::size_t j = 0; j < y->cols(); ++j) r[j] += bias[j];
  }
}

Matrix Linear::ForwardInference(const Matrix& x) const {
  Matrix y;
  ForwardInferenceInto(x, &y);
  return y;
}

void Linear::ForwardInferenceInto(const Matrix& x, Matrix* y) const {
  FACTION_CHECK_EQ(x.cols(), in_dim());
  MatMulBtInto(x, w_, y);
  if (scale_ != 1.0) {
    for (std::size_t i = 0; i < y->size(); ++i) y->data()[i] *= scale_;
  }
  // Bias broadcast straight from b_'s storage: the same per-element adds
  // as AddRowBroadcast over a copied bias row, without the copies.
  const double* bias = b_.row_data(0);
  for (std::size_t i = 0; i < y->rows(); ++i) {
    double* r = y->row_data(i);
    for (std::size_t j = 0; j < y->cols(); ++j) r[j] += bias[j];
  }
}

Matrix Linear::Backward(const Matrix& dy) {
  Matrix dx;
  BackwardInto(dy, &dx);
  return dx;
}

void Linear::BackwardInto(const Matrix& dy, Matrix* dx) {
  FACTION_CHECK_EQ(dy.rows(), cached_input_.rows());
  FACTION_CHECK_EQ(dy.cols(), out_dim());
  // dW_eff = dy^T x; with W_eff = scale*W (scale treated as constant),
  // dW = scale * dW_eff.
  MatMulAtInto(dy, cached_input_, &dw_scratch_);
  AddScaled(&gw_, dw_scratch_, scale_);
  ColSumsInto(dy, &db_scratch_);
  for (std::size_t j = 0; j < b_.cols(); ++j) gb_(0, j) += db_scratch_[j];
  // dx = dy * W_eff = scale * dy * W.
  MatMulInto(dy, w_, dx);
  if (scale_ != 1.0) {
    for (std::size_t i = 0; i < dx->size(); ++i) dx->data()[i] *= scale_;
  }
}

void Linear::ZeroGrad() {
  gw_.Fill(0.0);
  gb_.Fill(0.0);
}

}  // namespace faction
