#ifndef FACTION_NN_MLP_H_
#define FACTION_NN_MLP_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/activation.h"
#include "nn/classifier.h"
#include "nn/linear.h"
#include "tensor/matrix.h"

namespace faction {

struct StateCodecAccess;  // serve/state_codec.cc checkpoint accessor

/// Architecture of the classifier/feature-extractor. The paper uses a
/// spectral-normalized ResNet-18 for images and a 2-layer MLP for tabular
/// data; this library's backbone is the MLP (see DESIGN.md for the
/// substitution rationale). The last hidden activation is the feature vector
/// z = r(x, theta) consumed by the density estimator.
struct MlpConfig {
  std::size_t input_dim = 16;
  /// Hidden widths; the final entry is the feature dimension of z. An
  /// empty list yields a *linear* softmax model (multiclass logistic
  /// regression) whose feature vector is the raw input — the convex
  /// instantiation under which the paper's Theorem 1 assumptions hold.
  std::vector<std::size_t> hidden_dims = {64, 16};
  std::size_t num_classes = 2;
  SpectralNormConfig spectral;
};

/// MLP classifier with an exposed feature layer, layer-wise backprop, and
/// parameter access for optimizers. Move-only (owns training caches).
class MlpClassifier : public FeatureClassifier {
 public:
  MlpClassifier(const MlpConfig& config, Rng* rng);

  MlpClassifier(MlpClassifier&&) = default;
  MlpClassifier& operator=(MlpClassifier&&) = default;
  MlpClassifier(const MlpClassifier&) = delete;
  MlpClassifier& operator=(const MlpClassifier&) = delete;

  const MlpConfig& config() const { return config_; }
  std::size_t input_dim() const override { return config_.input_dim; }
  std::size_t num_classes() const override { return config_.num_classes; }
  std::size_t feature_dim() const override {
    return config_.hidden_dims.empty() ? config_.input_dim
                                       : config_.hidden_dims.back();
  }

  /// Training forward pass: returns logits (n x num_classes), caching all
  /// intermediate activations for Backward.
  Matrix Forward(const Matrix& x) override;

  /// Allocation-free training forward: logits land in *out (resized,
  /// capacity retained). Value-identical to Forward.
  void ForwardInto(const Matrix& x, Matrix* out) override;

  /// Inference-only logits (no caches touched).
  Matrix Logits(const Matrix& x) const override;

  /// Allocation-free inference logits: the hidden chain ping-pongs through
  /// two Workspace buffers ("mlp.infer_a"/"mlp.infer_b", plus
  /// "mlp.infer_features" for the final hidden activation), the result
  /// goes to *out. Bitwise-identical to Logits.
  void LogitsInto(const Matrix& x, Workspace* ws, Matrix* out) const override;

  /// Feature vectors z = r(x, theta): the last hidden activation
  /// (n x feature_dim). Inference path.
  Matrix ExtractFeatures(const Matrix& x) const override;

  /// Allocation-free feature extraction into *out via the caller's
  /// Workspace ping-pong buffers. Bitwise-identical to ExtractFeatures.
  void ExtractFeaturesInto(const Matrix& x, Workspace* ws,
                           Matrix* out) const override;

  /// The cached feature activations from the last training Forward.
  const Matrix& last_features() const { return last_features_; }

  /// Backpropagates dL/dlogits from the last Forward, accumulating
  /// parameter gradients.
  void Backward(const Matrix& dlogits) override;

  /// Clears all accumulated gradients.
  void ZeroGrad() override;

  /// Parameters and matching gradients, in a stable order.
  std::vector<Matrix*> Parameters() override;
  std::vector<const Matrix*> Parameters() const override;
  std::vector<Matrix*> Gradients() override;

  std::unique_ptr<FeatureClassifier> CloneArchitecture(
      Rng* rng) const override {
    return std::make_unique<MlpClassifier>(config_, rng);
  }

 private:
  friend struct StateCodecAccess;

  MlpConfig config_;
  std::vector<std::unique_ptr<Linear>> hidden_;
  std::vector<Relu> relus_;
  std::unique_ptr<Linear> head_;
  Matrix last_features_;
  // Persistent training buffers (reused across minibatches): one
  // activation per hidden layer, plus a gradient ping-pong pair for
  // Backward. Capacity is retained, so steady-state steps allocate only
  // the returned logits matrix.
  std::vector<Matrix> acts_;
  Matrix dbuf_;
  Matrix dbuf_swap_;
};

}  // namespace faction

#endif  // FACTION_NN_MLP_H_
