#include "nn/classifier.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace faction {

void FeatureClassifier::CopyParametersFrom(const FeatureClassifier& other) {
  const std::vector<const Matrix*> from = other.Parameters();
  std::vector<Matrix*> to = Parameters();
  FACTION_CHECK_LEN(from, to.size());
  for (std::size_t i = 0; i < from.size(); ++i) {
    FACTION_CHECK_SAME_SHAPE(*from[i], *to[i]);
    *to[i] = *from[i];
  }
}

Matrix FeatureClassifier::PredictProba(const Matrix& x) const {
  return SoftmaxRows(Logits(x));
}

std::vector<int> FeatureClassifier::Predict(const Matrix& x) const {
  const Matrix logits = Logits(x);
  std::vector<int> out(logits.rows());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const double* row = logits.row_data(i);
    std::size_t best = 0;
    for (std::size_t j = 1; j < logits.cols(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = static_cast<int>(best);
  }
  return out;
}

std::size_t FeatureClassifier::ParameterCount() const {
  std::size_t count = 0;
  for (const Matrix* p : Parameters()) count += p->size();
  return count;
}

}  // namespace faction
