#include "nn/classifier.h"

#include "common/check.h"
#include "common/workspace.h"
#include "tensor/ops.h"

namespace faction {

void FeatureClassifier::ForwardInto(const Matrix& x, Matrix* out) {
  // Default: one temporary from Forward; the copy-assign into *out reuses
  // its capacity across same-shape batches.
  *out = Forward(x);
}

void FeatureClassifier::LogitsInto(const Matrix& x, Workspace* /*ws*/,
                                   Matrix* out) const {
  *out = Logits(x);
}

void FeatureClassifier::ExtractFeaturesInto(const Matrix& x,
                                            Workspace* /*ws*/,
                                            Matrix* out) const {
  *out = ExtractFeatures(x);
}

void FeatureClassifier::PredictProbaInto(const Matrix& x, Workspace* ws,
                                         Matrix* out) const {
  Matrix* logits =
      ws->MatrixFor("classifier.proba_logits", x.rows(), num_classes());
  LogitsInto(x, ws, logits);
  SoftmaxRowsInto(*logits, out);
}

void FeatureClassifier::CopyParametersFrom(const FeatureClassifier& other) {
  const std::vector<const Matrix*> from = other.Parameters();
  std::vector<Matrix*> to = Parameters();
  FACTION_CHECK_LEN(from, to.size());
  for (std::size_t i = 0; i < from.size(); ++i) {
    FACTION_CHECK_SAME_SHAPE(*from[i], *to[i]);
    *to[i] = *from[i];
  }
}

Matrix FeatureClassifier::PredictProba(const Matrix& x) const {
  return SoftmaxRows(Logits(x));
}

std::vector<int> FeatureClassifier::Predict(const Matrix& x) const {
  const Matrix logits = Logits(x);
  std::vector<int> out(logits.rows());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const double* row = logits.row_data(i);
    std::size_t best = 0;
    for (std::size_t j = 1; j < logits.cols(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = static_cast<int>(best);
  }
  return out;
}

std::size_t FeatureClassifier::ParameterCount() const {
  std::size_t count = 0;
  for (const Matrix* p : Parameters()) count += p->size();
  return count;
}

}  // namespace faction
