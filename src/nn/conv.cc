#include "nn/conv.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/parallel.h"

namespace faction {

namespace {

constexpr std::size_t kPad = 1;  // same padding for the 3x3 kernel

// Samples per parallel chunk. Forward work is sample-disjoint so grain 1
// would be fine; the backward pass keeps one weight/bias partial and one
// im2col scratch per chunk, so a larger grain bounds that scratch memory.
// The chunk layout (and therefore the gradient accumulation order) depends
// only on this constant, never on the thread count.
constexpr std::size_t kSampleGrain = 4;

}  // namespace

Conv2d::Conv2d(const ImageShape& in, std::size_t out_channels, Rng* rng)
    : in_(in),
      out_channels_(out_channels),
      w_(out_channels, in.channels * kKernel * kKernel),
      b_(1, out_channels),
      gw_(out_channels, in.channels * kKernel * kKernel),
      gb_(1, out_channels) {
  const double std =
      std::sqrt(2.0 / static_cast<double>(w_.cols()));
  for (std::size_t i = 0; i < w_.size(); ++i) {
    w_.data()[i] = rng->Gaussian(0.0, std);
  }
}

ConvGeometry Conv2d::Geometry() const {
  ConvGeometry g;
  g.in_channels = in_.channels;
  g.height = in_.height;
  g.width = in_.width;
  g.kernel = kKernel;
  g.stride = 1;
  g.pad = kPad;
  return g;
}

void Conv2d::EnsureScratch(std::size_t nchunks) const {
  if (scratch_.size() < nchunks) scratch_.resize(nchunks);
}

Matrix Conv2d::Apply(const Matrix& x) const {
  FACTION_CHECK_EQ(x.cols(), in_.Flat());
  const std::size_t n = x.rows();
  const ConvGeometry g = Geometry();
  Matrix out(n, out_channels_ * g.OutPositions());
  // One sample is fully convolved by one chunk; output rows are disjoint
  // and each chunk owns its im2col scratch, so the result is bitwise
  // identical for any thread count. The scratch pool persists across
  // calls (steady-state minibatches allocate nothing), which also means a
  // Conv2d must not be driven from two threads at once — consistent with
  // Forward() caching the input.
  const std::size_t nchunks = ParallelChunkCount(0, n, kSampleGrain);
  EnsureScratch(nchunks);
  ParallelForChunks(
      0, n, kSampleGrain,
      [&](std::size_t chunk, std::size_t s0, std::size_t s1) {
        ConvScratch* scratch = &scratch_[chunk];
        for (std::size_t s = s0; s < s1; ++s) {
          GemmConvForward(g, out_channels_, x.row_data(s), w_.data(),
                          b_.row_data(0), out.row_data(s), scratch);
        }
      });
  return out;
}

Matrix Conv2d::ApplyNaive(const Matrix& x) const {
  FACTION_CHECK_EQ(x.cols(), in_.Flat());
  const ConvGeometry g = Geometry();
  Matrix out(x.rows(), out_channels_ * g.OutPositions());
  for (std::size_t s = 0; s < x.rows(); ++s) {
    NaiveConvForward(g, out_channels_, x.row_data(s), w_.data(),
                     b_.row_data(0), out.row_data(s));
  }
  return out;
}

Matrix Conv2d::Forward(const Matrix& x) {
  cached_input_ = x;
  return Apply(x);
}

Matrix Conv2d::ForwardInference(const Matrix& x) const { return Apply(x); }

Matrix Conv2d::Backward(const Matrix& dy) {
  const std::size_t n = cached_input_.rows();
  const ConvGeometry g = Geometry();
  FACTION_CHECK_EQ(dy.rows(), n);
  FACTION_CHECK_EQ(dy.cols(), out_channels_ * g.OutPositions());
  Matrix dx(n, in_.Flat());
  // dx rows are sample-disjoint, but the weight/bias gradients are shared
  // across samples. Each chunk therefore accumulates into its own partial
  // buffers (persistent members, zeroed per call), combined below in chunk
  // order. The chunk layout depends only on kSampleGrain, so the
  // accumulation order — and the result — is bitwise identical for any
  // thread count.
  const std::size_t nchunks = ParallelChunkCount(0, n, kSampleGrain);
  EnsureScratch(nchunks);
  gw_partial_.Resize(nchunks, w_.size());
  gb_partial_.Resize(nchunks, out_channels_);
  ParallelForChunks(
      0, n, kSampleGrain,
      [&](std::size_t chunk, std::size_t s0, std::size_t s1) {
        double* gw_chunk = gw_partial_.row_data(chunk);
        double* gb_chunk = gb_partial_.row_data(chunk);
        ConvScratch* scratch = &scratch_[chunk];
        for (std::size_t s = s0; s < s1; ++s) {
          GemmConvBackward(g, out_channels_, cached_input_.row_data(s),
                           w_.data(), dy.row_data(s), dx.row_data(s),
                           gw_chunk, gb_chunk, scratch);
        }
      });
  for (std::size_t chunk = 0; chunk < nchunks; ++chunk) {
    const double* pw = gw_partial_.row_data(chunk);
    double* gw = gw_.data();
    for (std::size_t i = 0; i < w_.size(); ++i) gw[i] += pw[i];
    const double* pb = gb_partial_.row_data(chunk);
    for (std::size_t oc = 0; oc < out_channels_; ++oc) gb_(0, oc) += pb[oc];
  }
  return dx;
}

void Conv2d::ZeroGrad() {
  gw_.Fill(0.0);
  gb_.Fill(0.0);
}

MaxPool2d::MaxPool2d(const ImageShape& in) : in_(in) {
  FACTION_CHECK(in.height % 2 == 0 && in.width % 2 == 0);
}

Matrix MaxPool2d::Apply(const Matrix& x,
                        std::vector<std::size_t>* argmax) const {
  FACTION_CHECK(x.cols() == in_.Flat());
  const std::size_t n = x.rows();
  const std::size_t oh = in_.height / 2;
  const std::size_t ow = in_.width / 2;
  Matrix out(n, in_.channels * oh * ow);
  if (argmax != nullptr) argmax->assign(n * out.cols(), 0);
  for (std::size_t s = 0; s < n; ++s) {
    const double* img = x.row_data(s);
    double* dst = out.row_data(s);
    for (std::size_t ch = 0; ch < in_.channels; ++ch) {
      const double* plane = img + ch * in_.height * in_.width;
      for (std::size_t r = 0; r < oh; ++r) {
        for (std::size_t c = 0; c < ow; ++c) {
          double best = -std::numeric_limits<double>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t dr = 0; dr < 2; ++dr) {
            for (std::size_t dc = 0; dc < 2; ++dc) {
              const std::size_t idx =
                  (2 * r + dr) * in_.width + (2 * c + dc);
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          const std::size_t out_idx = ch * oh * ow + r * ow + c;
          dst[out_idx] = best;
          if (argmax != nullptr) {
            (*argmax)[s * out.cols() + out_idx] =
                ch * in_.height * in_.width + best_idx;
          }
        }
      }
    }
  }
  return out;
}

Matrix MaxPool2d::Forward(const Matrix& x) {
  cached_rows_ = x.rows();
  return Apply(x, &cached_argmax_);
}

Matrix MaxPool2d::ForwardInference(const Matrix& x) const {
  return Apply(x, nullptr);
}

Matrix MaxPool2d::Backward(const Matrix& dy) const {
  FACTION_CHECK(dy.rows() == cached_rows_);
  Matrix dx(dy.rows(), in_.Flat());
  for (std::size_t s = 0; s < dy.rows(); ++s) {
    const double* grad = dy.row_data(s);
    double* dst = dx.row_data(s);
    for (std::size_t j = 0; j < dy.cols(); ++j) {
      dst[cached_argmax_[s * dy.cols() + j]] += grad[j];
    }
  }
  return dx;
}

ConvNetClassifier::ConvNetClassifier(const ConvNetConfig& config, Rng* rng)
    : config_(config) {
  FACTION_CHECK(config_.input.height % 4 == 0 &&
                config_.input.width % 4 == 0);
  conv1_ = std::make_unique<Conv2d>(config_.input, config_.conv1_filters,
                                    rng);
  pool1_ = std::make_unique<MaxPool2d>(conv1_->output_shape());
  conv2_ = std::make_unique<Conv2d>(pool1_->output_shape(),
                                    config_.conv2_filters, rng);
  pool2_ = std::make_unique<MaxPool2d>(conv2_->output_shape());
  const std::size_t flat = pool2_->output_shape().Flat();
  fc_ = std::make_unique<Linear>(flat, config_.feature_dim,
                                 config_.spectral, rng);
  SpectralNormConfig no_sn;
  head_ = std::make_unique<Linear>(config_.feature_dim,
                                   config_.num_classes, no_sn, rng);
}

Matrix ConvNetClassifier::Forward(const Matrix& x) {
  Matrix h = relu1_.Forward(conv1_->Forward(x));
  h = pool1_->Forward(h);
  h = relu2_.Forward(conv2_->Forward(h));
  h = pool2_->Forward(h);
  h = relu3_.Forward(fc_->Forward(h));
  return head_->Forward(h);
}

Matrix ConvNetClassifier::Logits(const Matrix& x) const {
  Matrix h = Relu::ForwardInference(conv1_->ForwardInference(x));
  h = pool1_->ForwardInference(h);
  h = Relu::ForwardInference(conv2_->ForwardInference(h));
  h = pool2_->ForwardInference(h);
  h = Relu::ForwardInference(fc_->ForwardInference(h));
  return head_->ForwardInference(h);
}

Matrix ConvNetClassifier::ExtractFeatures(const Matrix& x) const {
  Matrix h = Relu::ForwardInference(conv1_->ForwardInference(x));
  h = pool1_->ForwardInference(h);
  h = Relu::ForwardInference(conv2_->ForwardInference(h));
  h = pool2_->ForwardInference(h);
  return Relu::ForwardInference(fc_->ForwardInference(h));
}

void ConvNetClassifier::Backward(const Matrix& dlogits) {
  Matrix d = head_->Backward(dlogits);
  d = relu3_.Backward(d);
  d = fc_->Backward(d);
  d = pool2_->Backward(d);
  d = relu2_.Backward(d);
  d = conv2_->Backward(d);
  d = pool1_->Backward(d);
  d = relu1_.Backward(d);
  conv1_->Backward(d);
}

void ConvNetClassifier::ZeroGrad() {
  conv1_->ZeroGrad();
  conv2_->ZeroGrad();
  fc_->ZeroGrad();
  head_->ZeroGrad();
}

std::vector<Matrix*> ConvNetClassifier::Parameters() {
  return {conv1_->weight(), conv1_->bias(), conv2_->weight(),
          conv2_->bias(),   fc_->weight(),  fc_->bias(),
          head_->weight(),  head_->bias()};
}

std::vector<const Matrix*> ConvNetClassifier::Parameters() const {
  const Conv2d& c1 = *conv1_;
  const Conv2d& c2 = *conv2_;
  const Linear& fc = *fc_;
  const Linear& head = *head_;
  return {&c1.weight(), &c1.bias(), &c2.weight(), &c2.bias(),
          &fc.weight(), &fc.bias(), &head.weight(), &head.bias()};
}

std::vector<Matrix*> ConvNetClassifier::Gradients() {
  return {conv1_->weight_grad(), conv1_->bias_grad(),
          conv2_->weight_grad(), conv2_->bias_grad(),
          fc_->weight_grad(),    fc_->bias_grad(),
          head_->weight_grad(),  head_->bias_grad()};
}

std::unique_ptr<FeatureClassifier> ConvNetClassifier::CloneArchitecture(
    Rng* rng) const {
  return std::make_unique<ConvNetClassifier>(config_, rng);
}

}  // namespace faction
