#ifndef FACTION_NN_TRAINER_H_
#define FACTION_NN_TRAINER_H_

#include "common/rng.h"
#include "common/status.h"
#include "common/workspace.h"
#include "data/dataset.h"
#include "fairness/individual.h"
#include "nn/loss.h"
#include "nn/mlp.h"

namespace faction {

/// Mini-batch training configuration for one (re)fit of the classifier on
/// the labeled pool D_t (Algorithm 1 lines 7-8).
struct TrainConfig {
  int epochs = 5;
  std::size_t batch_size = 64;
  /// Learning rate gamma_t; the paper keeps it constant across tasks.
  double learning_rate = 0.05;
  double momentum = 0.9;
  double weight_decay = 1e-4;
  /// Whether the fairness regularizer of Eq. 9 is applied ("w/o fair reg"
  /// ablation flips this off).
  bool use_fairness_penalty = false;
  FairnessPenaltyConfig fairness;
  /// Optional individual-fairness consistency penalty (the Sec. IV-H
  /// extension; see fairness/individual.h). Off in the paper's
  /// group-fairness experiments.
  bool use_individual_penalty = false;
  IndividualFairnessConfig individual;
};

/// Summary of one training run.
struct TrainReport {
  double final_loss = 0.0;     ///< mean total loss over the last epoch
  double final_ce = 0.0;       ///< mean cross-entropy over the last epoch
  double final_penalty = 0.0;  ///< mean fairness penalty over the last epoch
  int steps = 0;               ///< optimizer steps taken
};

/// Trains `model` on the labeled dataset with SGD+momentum using
/// L_total = L_CE + mu*(L_fair - epsilon) when the penalty is enabled.
/// Batches that cannot support the fairness notion (e.g. single-group
/// batches) silently skip the penalty, matching the practical behaviour of
/// the reference implementation.
///
/// All per-step temporaries (batch gather buffer, label/sensitive vectors,
/// the shuffled index order, dlogits, per-row loss scratch) live in a
/// Workspace and are reused across minibatches and epochs. Pass a
/// persistent `workspace` to also reuse them across calls — the online
/// learner retrains every round, so this removes the per-round allocation
/// churn; results are identical with or without it (buffers are fully
/// overwritten each step). When `workspace` is null a call-local arena is
/// used.
Result<TrainReport> TrainClassifier(FeatureClassifier* model,
                                    const Dataset& labeled,
                                    const TrainConfig& config, Rng* rng,
                                    Workspace* workspace = nullptr);

}  // namespace faction

#endif  // FACTION_NN_TRAINER_H_
