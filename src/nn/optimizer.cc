#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace faction {

SgdOptimizer::SgdOptimizer(double lr, double momentum, double weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {}

void SgdOptimizer::Prepare(const std::vector<Matrix*>& params) {
  if (!velocity_.empty() || momentum_ == 0.0) return;
  velocity_.reserve(params.size());
  for (Matrix* p : params) velocity_.emplace_back(p->rows(), p->cols());
}

void SgdOptimizer::Step(const std::vector<Matrix*>& params,
                        const std::vector<Matrix*>& grads) {
  FACTION_CHECK_LEN(grads, params.size());
  Prepare(params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    Matrix& p = *params[i];
    const Matrix& g = *grads[i];
    FACTION_CHECK_SAME_SHAPE(p, g);
    if (weight_decay_ != 0.0) {
      for (std::size_t k = 0; k < p.size(); ++k) {
        p.data()[k] *= 1.0 - lr_ * weight_decay_;
      }
    }
    if (momentum_ != 0.0) {
      Matrix& vel = velocity_[i];
      for (std::size_t k = 0; k < p.size(); ++k) {
        vel.data()[k] = momentum_ * vel.data()[k] + g.data()[k];
        p.data()[k] -= lr_ * vel.data()[k];
      }
    } else {
      for (std::size_t k = 0; k < p.size(); ++k) {
        p.data()[k] -= lr_ * g.data()[k];
      }
    }
  }
}

AdamOptimizer::AdamOptimizer(double lr, double beta1, double beta2, double eps,
                             double weight_decay)
    : lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {}

void AdamOptimizer::Step(const std::vector<Matrix*>& params,
                         const std::vector<Matrix*>& grads) {
  FACTION_CHECK_LEN(grads, params.size());
  if (m_.empty()) {
    for (Matrix* p : params) {
      m_.emplace_back(p->rows(), p->cols());
      v_.emplace_back(p->rows(), p->cols());
    }
  }
  ++step_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    Matrix& p = *params[i];
    const Matrix& g = *grads[i];
    FACTION_CHECK_SAME_SHAPE(p, g);
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (std::size_t k = 0; k < p.size(); ++k) {
      const double gk = g.data()[k];
      m.data()[k] = beta1_ * m.data()[k] + (1.0 - beta1_) * gk;
      v.data()[k] = beta2_ * v.data()[k] + (1.0 - beta2_) * gk * gk;
      const double mhat = m.data()[k] / bc1;
      const double vhat = v.data()[k] / bc2;
      double update = mhat / (std::sqrt(vhat) + eps_);
      if (weight_decay_ != 0.0) update += weight_decay_ * p.data()[k];
      p.data()[k] -= lr_ * update;
    }
  }
}

}  // namespace faction
