#include "nn/activation.h"

#include "common/check.h"

namespace faction {

Matrix Relu::Forward(const Matrix& x) {
  Matrix out = x;
  ForwardInPlace(&out);
  return out;
}

void Relu::ForwardInPlace(Matrix* x) {
  mask_.ResizeForOverwrite(x->rows(), x->cols());
  double* v = x->data();
  double* m = mask_.data();
  for (std::size_t i = 0; i < x->size(); ++i) {
    if (v[i] > 0.0) {
      m[i] = 1.0;
    } else {
      v[i] = 0.0;
      m[i] = 0.0;
    }
  }
}

Matrix Relu::ForwardInference(const Matrix& x) {
  Matrix out = x;
  ForwardInferenceInPlace(&out);
  return out;
}

void Relu::ForwardInferenceInPlace(Matrix* x) {
  double* v = x->data();
  for (std::size_t i = 0; i < x->size(); ++i) {
    if (v[i] < 0.0) v[i] = 0.0;
  }
}

Matrix Relu::Backward(const Matrix& dy) const {
  Matrix dx = dy;
  BackwardInPlace(&dx);
  return dx;
}

void Relu::BackwardInPlace(Matrix* dy) const {
  FACTION_CHECK_SAME_SHAPE(*dy, mask_);
  double* v = dy->data();
  const double* m = mask_.data();
  for (std::size_t i = 0; i < dy->size(); ++i) v[i] *= m[i];
}

}  // namespace faction
