#include "nn/activation.h"

#include "common/check.h"

namespace faction {

Matrix Relu::Forward(const Matrix& x) {
  mask_.Resize(x.rows(), x.cols());
  Matrix out = x;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out.data()[i] > 0.0) {
      mask_.data()[i] = 1.0;
    } else {
      out.data()[i] = 0.0;
    }
  }
  return out;
}

Matrix Relu::ForwardInference(const Matrix& x) {
  Matrix out = x;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out.data()[i] < 0.0) out.data()[i] = 0.0;
  }
  return out;
}

Matrix Relu::Backward(const Matrix& dy) const {
  FACTION_CHECK_SAME_SHAPE(dy, mask_);
  Matrix dx = dy;
  for (std::size_t i = 0; i < dx.size(); ++i) dx.data()[i] *= mask_.data()[i];
  return dx;
}

}  // namespace faction
