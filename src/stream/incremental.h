#ifndef FACTION_STREAM_INCREMENTAL_H_
#define FACTION_STREAM_INCREMENTAL_H_

#include <cstddef>

#include "common/rng.h"

namespace faction {

/// Incremental score normalizer for the single-sample arrival setting the
/// paper sketches in Sec. IV-D: "samples arriving individually, where the
/// normalization range can be updated incrementally with all gathered
/// scores." Tracks the running min/max of every score observed so far and
/// normalizes each new score against that range.
class IncrementalNormalizer {
 public:
  /// Records a score, expanding the running range.
  void Observe(double score);

  /// Normalizes a score against the running range: (x - min)/(max - min),
  /// clamped to [0, 1]. Before any observation (or with a degenerate
  /// range) every score maps to 0.5.
  double Normalize(double score) const;

  std::size_t count() const { return count_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Forgets the range (e.g. on an explicit environment-change signal).
  void Reset();

  /// Overwrites the running range wholesale — the checkpoint-restore path
  /// (serve/state_codec.h): a restored normalizer must resume from exactly
  /// the captured count/min/max so future Normalize calls are bitwise
  /// identical to the uninterrupted session's.
  void RestoreState(std::size_t count, double min, double max) {
    count_ = count;
    min_ = min;
    max_ = max;
  }

 private:
  std::size_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Per-sample query decision for the single-sample protocol: maintains the
/// incremental range over u(x) scores and runs the paper's Bernoulli rule
/// omega = 1 - Normalize(u), p = min(alpha * omega, 1) on each arrival.
class OnlineQueryDecider {
 public:
  /// `alpha` is the query-rate multiplier of Algorithm 1 line 29;
  /// `burn_in` arrivals are always observed (never queried) so the range
  /// is meaningful before the first decision.
  OnlineQueryDecider(double alpha, std::size_t burn_in = 8);

  /// Feeds one score; returns true when the sample's label should be
  /// queried. The score is observed (range updated) in either case.
  bool ShouldQuery(double score, Rng* rng);

  std::size_t seen() const { return normalizer_.count(); }
  const IncrementalNormalizer& normalizer() const { return normalizer_; }

 private:
  double alpha_;
  std::size_t burn_in_;
  IncrementalNormalizer normalizer_;
};

}  // namespace faction

#endif  // FACTION_STREAM_INCREMENTAL_H_
