#include "stream/incremental.h"

#include <algorithm>

namespace faction {

void IncrementalNormalizer::Observe(double score) {
  if (count_ == 0) {
    min_ = score;
    max_ = score;
  } else {
    min_ = std::min(min_, score);
    max_ = std::max(max_, score);
  }
  ++count_;
}

double IncrementalNormalizer::Normalize(double score) const {
  if (count_ == 0 || max_ - min_ < 1e-300) return 0.5;
  const double norm = (score - min_) / (max_ - min_);
  return std::clamp(norm, 0.0, 1.0);
}

void IncrementalNormalizer::Reset() {
  count_ = 0;
  min_ = 0.0;
  max_ = 0.0;
}

OnlineQueryDecider::OnlineQueryDecider(double alpha, std::size_t burn_in)
    : alpha_(alpha), burn_in_(burn_in) {}

bool OnlineQueryDecider::ShouldQuery(double score, Rng* rng) {
  const bool warmed = normalizer_.count() >= burn_in_;
  const double omega = 1.0 - normalizer_.Normalize(score);
  normalizer_.Observe(score);
  if (!warmed) return false;
  const double p = std::min(alpha_ * omega, 1.0);
  return rng->Bernoulli(p);
}

}  // namespace faction
