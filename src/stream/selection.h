#ifndef FACTION_STREAM_SELECTION_H_
#define FACTION_STREAM_SELECTION_H_

#include <vector>

#include "common/rng.h"

namespace faction {

/// Reusable buffers for the per-iteration acquisition loop. A strategy
/// keeps one of these across SelectBatch calls so the visit order, the
/// taken flags, and the normalized-score vector stop being per-call
/// allocations on the stream hot path. Buffers grow on demand and keep
/// their capacity; never share one across concurrent callers.
struct SelectionScratch {
  std::vector<std::size_t> order;     ///< candidate visit order
  std::vector<unsigned char> taken;   ///< 0/1 accepted flags, per candidate
  std::vector<double> normalized;     ///< MinMaxNormalizeInto output
};

/// Min-max normalizes scores into [0, 1]. A constant vector maps to all
/// 0.5 (every sample equally preferable). This is the Normalize of Eq. 7;
/// it is invariant to positive affine transforms of the scores, which is
/// what lets the density scorer apply a shared per-batch log-space shift.
std::vector<double> MinMaxNormalize(const std::vector<double>& scores);

/// Allocation-free variant: writes into *out (resized to scores.size(),
/// capacity retained). `out` must not alias `scores`.
void MinMaxNormalizeInto(const std::vector<double>& scores,
                         std::vector<double>* out);

/// The paper's probabilistic acquisition loop (Algorithm 1, lines 25-36):
/// candidates are visited in descending probability order, each subjected
/// to a Bernoulli trial with p = min(alpha * omega, 1), cycling until
/// `batch` candidates are accepted (or the pool is exhausted).
///
/// `omega` holds the selection probabilities (already 1 - Normalize(u)).
/// NaN probabilities are legal: a NaN omega sorts after every finite
/// candidate (treated as -inf, ties by index) and its trial probability is
/// 0, so such candidates are only ever taken by the deterministic
/// exhaustion fallback. Returns positions into `omega` of the accepted
/// candidates. `scratch` is optional; passing one reuses its buffers
/// instead of allocating.
std::vector<std::size_t> BernoulliSelect(const std::vector<double>& omega,
                                         double alpha, std::size_t batch,
                                         Rng* rng,
                                         SelectionScratch* scratch = nullptr);

/// Allocation-aware variant: accepted positions are written into *out
/// (cleared first, capacity retained), so a caller-owned buffer makes the
/// steady-state call heap-free. Identical draws and acceptance order.
void BernoulliSelectInto(const std::vector<double>& omega, double alpha,
                         std::size_t batch, Rng* rng,
                         SelectionScratch* scratch,
                         std::vector<std::size_t>* out);

/// Deterministic top-k by score (descending). Ties broken by index order;
/// NaN scores order after every finite score (treated as -inf).
/// Used by the deterministic baselines (Entropy-AL, DDU, FAL, ...).
std::vector<std::size_t> TopK(const std::vector<double>& scores,
                              std::size_t k);

}  // namespace faction

#endif  // FACTION_STREAM_SELECTION_H_
