#ifndef FACTION_STREAM_SELECTION_H_
#define FACTION_STREAM_SELECTION_H_

#include <vector>

#include "common/rng.h"

namespace faction {

/// Min-max normalizes scores into [0, 1]. A constant vector maps to all
/// 0.5 (every sample equally preferable). This is the Normalize of Eq. 7;
/// it is invariant to positive affine transforms of the scores, which is
/// what lets the density scorer apply a shared per-batch log-space shift.
std::vector<double> MinMaxNormalize(const std::vector<double>& scores);

/// The paper's probabilistic acquisition loop (Algorithm 1, lines 25-36):
/// candidates are visited in descending probability order, each subjected
/// to a Bernoulli trial with p = min(alpha * omega, 1), cycling until
/// `batch` candidates are accepted (or the pool is exhausted).
///
/// `omega` holds the selection probabilities (already 1 - Normalize(u)).
/// Returns positions into `omega` of the accepted candidates.
std::vector<std::size_t> BernoulliSelect(const std::vector<double>& omega,
                                         double alpha, std::size_t batch,
                                         Rng* rng);

/// Deterministic top-k by score (descending). Ties broken by index order.
/// Used by the deterministic baselines (Entropy-AL, DDU, FAL, ...).
std::vector<std::size_t> TopK(const std::vector<double>& scores,
                              std::size_t k);

}  // namespace faction

#endif  // FACTION_STREAM_SELECTION_H_
