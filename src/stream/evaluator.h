#ifndef FACTION_STREAM_EVALUATOR_H_
#define FACTION_STREAM_EVALUATOR_H_

#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "fairness/relaxed.h"
#include "nn/classifier.h"

namespace faction {

/// Metrics recorded for one task, mirroring the panels of Fig. 2 plus the
/// quantities Theorem 1 bounds.
struct TaskMetrics {
  int task_index = 0;
  int environment = 0;
  double accuracy = 0.0;
  double ddp = 0.0;  ///< demographic parity difference
  double eod = 0.0;  ///< equalized odds difference
  double mi = 0.0;   ///< mutual information I(yhat; s)
  double nll = 0.0;  ///< mean negative log-likelihood (instantaneous loss)
  /// [v(D_t, theta_t)]_+ with the relaxed DDP notion — the per-task term of
  /// the cumulative fairness violation V in Theorem 1.
  double fairness_violation = 0.0;
  std::size_t queries_used = 0;
  double seconds = 0.0;  ///< wall-clock spent on this task
};

/// Evaluates the model on a full task (the paper evaluates each incoming
/// task on all of its samples before adaptation). `notion` instantiates the
/// violation term. Fairness metrics that are undefined on the task (e.g. a
/// single-group task) are reported as 0.
Result<TaskMetrics> EvaluateOnTask(const FeatureClassifier& model,
                                   const Dataset& task,
                                   FairnessNotion notion);

/// Aggregates per-task metrics into stream-level means (Table I reports
/// the mean across all tasks).
struct StreamSummary {
  double mean_accuracy = 0.0;
  double mean_ddp = 0.0;
  double mean_eod = 0.0;
  double mean_mi = 0.0;
  double total_seconds = 0.0;
  std::size_t total_queries = 0;
};
StreamSummary Summarize(const std::vector<TaskMetrics>& per_task);

}  // namespace faction

#endif  // FACTION_STREAM_EVALUATOR_H_
