#ifndef FACTION_STREAM_EVALUATOR_H_
#define FACTION_STREAM_EVALUATOR_H_

#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "fairness/relaxed.h"
#include "nn/classifier.h"

namespace faction {

/// Metrics recorded for one task, mirroring the panels of Fig. 2 plus the
/// quantities Theorem 1 bounds.
///
/// Fairness metrics can be *undefined* on degenerate tasks (e.g. a task
/// whose samples all share one sensitive group leaves DDP meaningless).
/// Undefined metrics carry value NaN with the matching *_defined flag
/// cleared; they are excluded from every mean and counted separately —
/// never coerced to 0.0, which would make a failed computation look like
/// perfect fairness. The flags default to true so hand-assembled metrics
/// (tests, adapters) keep their plain-struct ergonomics.
struct TaskMetrics {
  int task_index = 0;
  int environment = 0;
  double accuracy = 0.0;
  double ddp = 0.0;  ///< demographic parity difference; NaN when undefined
  double eod = 0.0;  ///< equalized odds difference; NaN when undefined
  double mi = 0.0;   ///< mutual information I(yhat; s); NaN when undefined
  bool ddp_defined = true;
  bool eod_defined = true;
  bool mi_defined = true;
  double nll = 0.0;  ///< mean negative log-likelihood (instantaneous loss)
  /// [v(D_t, theta_t)]_+ with the relaxed DDP notion — the per-task term of
  /// the cumulative fairness violation V in Theorem 1.
  double fairness_violation = 0.0;
  std::size_t queries_used = 0;
  double seconds = 0.0;  ///< wall-clock spent on this task

  /// True when at least one fairness metric is undefined on this task.
  bool AnyMetricUndefined() const {
    return !ddp_defined || !eod_defined || !mi_defined;
  }
};

/// Evaluates the model on a full task (the paper evaluates each incoming
/// task on all of its samples before adaptation). `notion` instantiates the
/// violation term. Fairness metrics that are undefined on the task (e.g. a
/// single-group task) are reported as NaN with the *_defined flag cleared
/// and counted in telemetry ("evaluator.*_undefined").
Result<TaskMetrics> EvaluateOnTask(const FeatureClassifier& model,
                                   const Dataset& task,
                                   FairnessNotion notion);

/// Aggregates per-task metrics into stream-level means (Table I reports
/// the mean across all tasks). Fairness means are taken over the tasks on
/// which the metric is defined ("*_defined_tasks"); when no task defines a
/// metric its mean is NaN.
struct StreamSummary {
  double mean_accuracy = 0.0;
  double mean_ddp = 0.0;
  double mean_eod = 0.0;
  double mean_mi = 0.0;
  std::size_t ddp_defined_tasks = 0;
  std::size_t eod_defined_tasks = 0;
  std::size_t mi_defined_tasks = 0;
  /// Tasks with at least one undefined fairness metric.
  std::size_t undefined_metric_tasks = 0;
  double total_seconds = 0.0;
  std::size_t total_queries = 0;
};
StreamSummary Summarize(const std::vector<TaskMetrics>& per_task);

}  // namespace faction

#endif  // FACTION_STREAM_EVALUATOR_H_
