#include "stream/online_learner.h"

#include <algorithm>
#include <cmath>

#include "common/telemetry.h"
#include "common/timer.h"
#include "common/workspace.h"
#include "nn/loss.h"
#include "stream/oracle.h"
#include "stream/trace.h"
#include "tensor/simd.h"

namespace faction {

namespace {

// Builds the candidate view (features + sensitive + environment of
// unlabeled samples) for the strategy. Every element of the outputs is
// overwritten, so the feature matrix keeps its capacity across calls.
void BuildCandidateView(const Dataset& task,
                        const std::vector<std::size_t>& unlabeled,
                        Matrix* features, std::vector<int>* sensitive,
                        std::vector<int>* environments) {
  features->ResizeForOverwrite(unlabeled.size(), task.dim());
  sensitive->resize(unlabeled.size());
  environments->resize(unlabeled.size());
  for (std::size_t i = 0; i < unlabeled.size(); ++i) {
    const std::size_t idx = unlabeled[i];
    std::copy(task.features().row_data(idx),
              task.features().row_data(idx) + task.dim(),
              features->row_data(i));
    (*sensitive)[i] = task.sensitive()[idx];
    (*environments)[i] = task.environments()[idx];
  }
}

// Snapshot of the strategy/drift counters taken at a task boundary;
// per-task deltas feed the trace record. All zeros when telemetry is off.
struct CounterSnapshot {
  std::uint64_t density_full = 0;
  std::uint64_t density_incremental = 0;
  std::uint64_t drift_fired = 0;

  static CounterSnapshot Take() {
    CounterSnapshot s;
    s.density_full = TelemetryCounterValue("faction.density_full_refit");
    s.density_incremental =
        TelemetryCounterValue("faction.density_incremental_refit");
    s.drift_fired = TelemetryCounterValue("drift.fired");
    return s;
  }
};

// Names the density-refresh mode a task experienced from counter deltas.
std::string RefitMode(const CounterSnapshot& before,
                      const CounterSnapshot& after) {
  if (Telemetry::Get() == nullptr) return "unknown";
  const std::uint64_t full = after.density_full - before.density_full;
  const std::uint64_t incremental =
      after.density_incremental - before.density_incremental;
  if (full > 0 && incremental > 0) return "mixed";
  if (full > 0) return "batch";
  if (incremental > 0) return "incremental";
  return "none";
}

}  // namespace

OnlineLearner::OnlineLearner(OnlineLearnerConfig config,
                             QueryStrategy* strategy)
    : config_(std::move(config)), strategy_(strategy) {
  FACTION_CHECK(strategy_ != nullptr);
}

Result<RunResult> OnlineLearner::Run(const std::vector<Dataset>& tasks) {
  if (tasks.empty()) {
    return Status::InvalidArgument("OnlineLearner: no tasks");
  }
  if (config_.acquisition_batch == 0 ||
      config_.budget_per_task < config_.acquisition_batch) {
    return Status::InvalidArgument(
        "OnlineLearner: need 0 < acquisition_batch <= budget_per_task");
  }
  const std::size_t dim = tasks[0].dim();
  Rng rng(config_.seed);
  Rng model_rng = rng.Fork();
  std::unique_ptr<FeatureClassifier> model_owner =
      config_.model_factory
          ? config_.model_factory(&model_rng)
          : std::make_unique<MlpClassifier>(config_.model, &model_rng);
  FeatureClassifier& model = *model_owner;
  if (dim != model.input_dim()) {
    return Status::InvalidArgument(
        "OnlineLearner: model input_dim does not match task dimension");
  }
  Dataset pool(dim);
  // One arena for the whole run: TrainClassifier is called up to three
  // times per task and its batch/gradient temporaries are shape-stable, so
  // the buffers are allocated on the first round and reused ever after.
  Workspace train_workspace;

  RunResult result;
  result.strategy_name = strategy_->name();
  Timer total_timer;
  // Record the resolved dispatch tier once per run so telemetry reports
  // carry the same provenance as the trace's run_start record.
  PublishSimdTelemetry();
  if (config_.trace != nullptr) {
    TraceWriter::DensityInfo density;
    density.window = config_.density_window;
    density.decay = config_.density_decay;
    TraceWriter::ScenarioInfo scenario;
    scenario.spec = config_.scenario_spec;
    scenario.world_seed = config_.scenario_world_seed;
    FACTION_RETURN_IF_ERROR(
        config_.trace->WriteRunStart(result.strategy_name, density, scenario));
  }
  std::size_t undefined_metric_tasks = 0;

  TrainConfig train = config_.train;
  const double base_lr = train.learning_rate;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const Dataset& task = tasks[t];
    if (task.dim() != dim) {
      return Status::InvalidArgument("OnlineLearner: task dimension drift");
    }
    if (config_.lr_decay_power > 0.0) {
      train.learning_rate =
          base_lr /
          std::pow(static_cast<double>(t + 1), config_.lr_decay_power);
    }
    Timer task_timer;
    LabelOracle oracle(task, config_.budget_per_task);
    TelemetryCount("learner.tasks");
    const CounterSnapshot counters_before = CounterSnapshot::Take();
    std::size_t task_train_steps = 0;
    std::size_t acquisition_batches = 0;
    double train_seconds = 0.0;
    double acquire_seconds = 0.0;

    if (t == 0 && config_.warm_start > 0) {
      // Free warm-start labels, identical protocol for every method.
      std::vector<std::size_t> perm;
      rng.Permutation(task.size(), &perm);
      const std::size_t take = std::min(config_.warm_start, task.size());
      for (std::size_t i = 0; i < take; ++i) {
        FACTION_ASSIGN_OR_RETURN(int label, oracle.RevealFree(perm[i]));
        Example e = task.Get(perm[i]);
        e.label = label;
        FACTION_RETURN_IF_ERROR(pool.Append(e));
      }
      Timer train_timer;
      FACTION_ASSIGN_OR_RETURN(
          TrainReport warm_report,
          TrainClassifier(&model, pool, train, &rng, &train_workspace));
      task_train_steps += static_cast<std::size_t>(warm_report.steps);
      train_seconds += train_timer.ElapsedSeconds();
    }

    // Line 4 of Algorithm 1: record performance of theta_{t-1} on D_t^U.
    Timer evaluate_timer;
    FACTION_ASSIGN_OR_RETURN(TaskMetrics metrics,
                             EvaluateOnTask(model, task, config_.notion));
    const double evaluate_seconds = evaluate_timer.ElapsedSeconds();
    metrics.task_index = static_cast<int>(t);

    // AL iterations: train, score, acquire A labels, repeat until B used.
    // Candidate-view buffers are loop-carried: BuildCandidateView resizes
    // them in place, so after the first iteration (shrinking candidate
    // pool) they never reallocate.
    std::vector<std::size_t> unlabeled;
    Matrix cand_features;
    std::vector<int> cand_sensitive, cand_envs;
    Example acquired;
    while (oracle.budget_remaining() >= 1 && oracle.num_unlabeled() > 0) {
      if (!pool.empty()) {
        Timer train_timer;
        FACTION_ASSIGN_OR_RETURN(
            TrainReport train_report,
            TrainClassifier(&model, pool, train, &rng, &train_workspace));
        task_train_steps += static_cast<std::size_t>(train_report.steps);
        train_seconds += train_timer.ElapsedSeconds();
      }
      Timer acquire_timer;
      oracle.UnlabeledIndicesInto(&unlabeled);
      BuildCandidateView(task, unlabeled, &cand_features, &cand_sensitive,
                         &cand_envs);
      SelectionContext ctx;
      ctx.model = &model;
      ctx.labeled_pool = &pool;
      ctx.candidate_features = &cand_features;
      ctx.candidate_sensitive = &cand_sensitive;
      ctx.candidate_environments = &cand_envs;
      ctx.rng = &rng;
      const std::size_t want =
          std::min({config_.acquisition_batch, oracle.budget_remaining(),
                    unlabeled.size()});
      FACTION_ASSIGN_OR_RETURN(std::vector<std::size_t> picked,
                               strategy_->SelectBatch(ctx, want));
      ++acquisition_batches;
      TelemetryCount("learner.acquisition_batches");
      if (picked.empty()) {
        acquire_seconds += acquire_timer.ElapsedSeconds();
        break;  // strategy declined; avoid spinning
      }
      if (picked.size() > want) picked.resize(want);
      for (std::size_t pos : picked) {
        if (pos >= unlabeled.size()) {
          return Status::Internal(strategy_->name() +
                                  ": selected position out of range");
        }
        const std::size_t idx = unlabeled[pos];
        FACTION_ASSIGN_OR_RETURN(int label, oracle.QueryLabel(idx));
        task.GetInto(idx, &acquired);
        acquired.label = label;
        FACTION_RETURN_IF_ERROR(pool.Append(acquired));
      }
      acquire_seconds += acquire_timer.ElapsedSeconds();
    }
    // Sliding-window eviction keeps the pool (and the per-iteration
    // training cost) bounded on long streams.
    if (config_.max_pool_size > 0 && pool.size() > config_.max_pool_size) {
      std::vector<std::size_t> keep;
      for (std::size_t i = pool.size() - config_.max_pool_size;
           i < pool.size(); ++i) {
        keep.push_back(i);
      }
      pool = pool.Subset(keep);
    }

    // theta_t <- theta_temp (line 39): fold in the final acquisitions so
    // the next task is met with everything learned from this one.
    if (!pool.empty()) {
      Timer train_timer;
      FACTION_ASSIGN_OR_RETURN(
          TrainReport final_report,
          TrainClassifier(&model, pool, train, &rng, &train_workspace));
      task_train_steps += static_cast<std::size_t>(final_report.steps);
      train_seconds += train_timer.ElapsedSeconds();
    }

    metrics.queries_used = oracle.queries_used();
    metrics.seconds = task_timer.ElapsedSeconds();
    result.cumulative_violation += metrics.fairness_violation;
    TelemetryCount("learner.queries", metrics.queries_used);
    if (metrics.AnyMetricUndefined()) ++undefined_metric_tasks;

    if (config_.dual_ascent && train.use_fairness_penalty) {
      // Long-term-constraints dual update: the multiplier grows while the
      // constraint is violated beyond the slack and shrinks otherwise.
      train.fairness.mu = std::max(
          0.0, train.fairness.mu +
                   config_.dual_step * (metrics.fairness_violation -
                                        train.fairness.epsilon));
    }

    if (config_.track_regret) {
      // f*_t: a fresh model fitted on the fully labeled task approximates
      // the per-task optimal loss.
      Rng oracle_rng = rng.Fork();
      std::unique_ptr<FeatureClassifier> oracle_model =
          model.CloneArchitecture(&oracle_rng);
      FACTION_RETURN_IF_ERROR(
          TrainClassifier(oracle_model.get(), task, config_.oracle_train,
                          &oracle_rng)
              .status());
      const Matrix oracle_logits = oracle_model->Logits(task.features());
      const double best_nll = SoftmaxNll(oracle_logits, task.labels());
      const double increment = std::max(0.0, metrics.nll - best_nll);
      result.regret_increments.push_back(increment);
      result.cumulative_regret += increment;
    }

    if (config_.trace != nullptr) {
      const CounterSnapshot counters_after = CounterSnapshot::Take();
      TaskTraceRecord record;
      record.task_index = metrics.task_index;
      record.environment = metrics.environment;
      record.queries_spent = metrics.queries_used;
      record.acquisition_batches = acquisition_batches;
      record.train_steps = task_train_steps;
      record.density_refit_mode = RefitMode(counters_before, counters_after);
      record.drift_fired =
          counters_after.drift_fired - counters_before.drift_fired;
      record.accuracy = metrics.accuracy;
      record.nll = metrics.nll;
      record.ddp = metrics.ddp;
      record.eod = metrics.eod;
      record.mi = metrics.mi;
      record.ddp_defined = metrics.ddp_defined;
      record.eod_defined = metrics.eod_defined;
      record.mi_defined = metrics.mi_defined;
      record.wall_evaluate_seconds = evaluate_seconds;
      record.wall_acquire_seconds = acquire_seconds;
      record.wall_train_seconds = train_seconds;
      record.wall_task_seconds = metrics.seconds;
      FACTION_RETURN_IF_ERROR(config_.trace->WriteTask(record));
    }

    result.per_task.push_back(metrics);
  }

  result.summary = Summarize(result.per_task);
  result.total_queries = result.summary.total_queries;
  result.total_seconds = total_timer.ElapsedSeconds();
  if (config_.trace != nullptr) {
    FACTION_RETURN_IF_ERROR(config_.trace->WriteRunEnd(
        result.per_task.size(), result.total_queries,
        undefined_metric_tasks));
  }
  return result;
}

}  // namespace faction
