#ifndef FACTION_STREAM_STRATEGY_H_
#define FACTION_STREAM_STRATEGY_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "nn/classifier.h"
#include "tensor/matrix.h"

namespace faction {

/// Everything a query strategy may look at when choosing which candidates
/// to label within one acquisition iteration. Candidate labels are *not*
/// available — that is the point of active learning; the sensitive
/// attribute and environment are observable.
struct SelectionContext {
  /// Classifier theta_{t-1}/theta_temp trained on the labeled pool so far.
  const FeatureClassifier* model = nullptr;
  /// The labeled pool D_t accumulated across tasks (with labels).
  const Dataset* labeled_pool = nullptr;
  /// Raw features x of the unlabeled candidates, one row each.
  const Matrix* candidate_features = nullptr;
  /// Sensitive attribute of each candidate (+1 / -1).
  const std::vector<int>* candidate_sensitive = nullptr;
  /// Environment id of each candidate.
  const std::vector<int>* candidate_environments = nullptr;
  Rng* rng = nullptr;
};

/// Interface implemented by FACTION and every baseline: pick up to `batch`
/// candidates (positions into the context's candidate arrays) to query.
/// Strategies may keep internal state across calls (e.g. Decoupled's
/// per-group models).
class QueryStrategy {
 public:
  virtual ~QueryStrategy() = default;

  /// Display name used in result tables ("FACTION", "QuFUR", ...).
  virtual std::string name() const = 0;

  /// Selects up to `batch` candidate positions. Returning fewer than
  /// `batch` is allowed only when the pool is smaller than `batch`.
  virtual Result<std::vector<std::size_t>> SelectBatch(
      const SelectionContext& context, std::size_t batch) = 0;
};

}  // namespace faction

#endif  // FACTION_STREAM_STRATEGY_H_
