#include "stream/oracle.h"

namespace faction {

LabelOracle::LabelOracle(const Dataset& task, std::size_t budget)
    : task_(&task), budget_(budget), labeled_(task.size(), false) {}

std::vector<std::size_t> LabelOracle::UnlabeledIndices() const {
  std::vector<std::size_t> out;
  UnlabeledIndicesInto(&out);
  return out;
}

void LabelOracle::UnlabeledIndicesInto(std::vector<std::size_t>* out) const {
  out->clear();
  out->reserve(task_->size() - num_labeled_);
  for (std::size_t i = 0; i < labeled_.size(); ++i) {
    if (!labeled_[i]) out->push_back(i);
  }
}

Result<int> LabelOracle::QueryLabel(std::size_t index) {
  if (index >= task_->size()) {
    return Status::OutOfRange("oracle: index " + std::to_string(index) +
                              " out of range");
  }
  if (labeled_[index]) {
    return Status::FailedPrecondition("oracle: sample already labeled");
  }
  if (budget_ == 0) {
    return Status::ResourceExhausted("oracle: query budget exhausted");
  }
  --budget_;
  ++queries_;
  labeled_[index] = true;
  ++num_labeled_;
  return task_->labels()[index];
}

Result<int> LabelOracle::RevealFree(std::size_t index) {
  if (index >= task_->size()) {
    return Status::OutOfRange("oracle: index out of range");
  }
  if (labeled_[index]) {
    return Status::FailedPrecondition("oracle: sample already labeled");
  }
  labeled_[index] = true;
  ++num_labeled_;
  return task_->labels()[index];
}

}  // namespace faction
