#ifndef FACTION_STREAM_DRIFT_H_
#define FACTION_STREAM_DRIFT_H_

#include <cstddef>

#include "common/stats.h"
#include "density/fair_density.h"
#include "tensor/matrix.h"

namespace faction {

/// Environment-change detection built on the same signal FACTION's
/// selection exploits: when a new task comes from a shifted environment,
/// its samples' density under the current estimator collapses (high
/// epistemic uncertainty; Sec. IV-C "The Role of Epistemic Uncertainty").
///
/// The detector watches a scalar per-task statistic (the mean feature-space
/// log-density of the incoming task) and raises a drift flag when the new
/// value falls more than `threshold` standard deviations below the running
/// mean of previously observed tasks. Detected drifts are natural hooks for
/// resetting incremental normalizers or temporarily raising the query rate
/// alpha.
struct DriftDetectorConfig {
  /// One-sided z-score threshold.
  double threshold = 3.0;
  /// Minimum observations before detection can fire.
  std::size_t min_history = 2;
  /// Standard-deviation floor, guarding against a near-constant history
  /// flagging every tiny wobble.
  double min_std = 1e-3;
};

/// Generic one-sided drop detector over a scalar stream.
class DriftDetector {
 public:
  explicit DriftDetector(const DriftDetectorConfig& config = {})
      : config_(config) {}

  /// Feeds the next per-task statistic. Returns true when the value is a
  /// drift (an abnormal drop); drift values do NOT enter the running
  /// statistics (the caller typically refits and then observes the
  /// post-adaptation value).
  bool Observe(double value);

  /// Number of values absorbed into the running statistics.
  std::size_t history() const { return stats_.count(); }
  double mean() const { return stats_.mean(); }

  /// Forgets all history (e.g. after adapting to the new environment).
  void Reset();

 private:
  DriftDetectorConfig config_;
  RunningStat stats_;
};

/// Mean log marginal density of a batch of feature vectors under the
/// estimator — the per-task statistic the detector consumes. -infinity
/// rows (no fitted components) are skipped; returns the mean over the
/// rest, or a very negative constant when every row is -infinity.
double MeanLogDensity(const FairDensityEstimator& estimator,
                      const Matrix& features);

}  // namespace faction

#endif  // FACTION_STREAM_DRIFT_H_
