#ifndef FACTION_STREAM_DRIFT_H_
#define FACTION_STREAM_DRIFT_H_

#include <cstddef>

#include "common/stats.h"
#include "density/fair_density.h"
#include "tensor/matrix.h"

namespace faction {

struct StateCodecAccess;  // serve/state_codec.cc checkpoint accessor

/// Environment-change detection built on the same signal FACTION's
/// selection exploits: when a new task comes from a shifted environment,
/// its samples' density under the current estimator collapses (high
/// epistemic uncertainty; Sec. IV-C "The Role of Epistemic Uncertainty").
///
/// The detector watches a scalar per-task statistic (the mean feature-space
/// log-density of the incoming task) and raises a drift flag when the new
/// value falls more than `threshold` standard deviations below the running
/// mean of previously observed tasks. Detected drifts are natural hooks for
/// resetting incremental normalizers or temporarily raising the query rate
/// alpha.
/// What the detector does with its pre-drift statistics after it fires —
/// the re-arm semantics. Without re-arming (kManual), the pre-shift
/// history stays intact and the triggering value is never folded, so a
/// sustained distribution shift makes the detector fire on every
/// subsequent arrival instead of adapting to the new regime.
enum class DriftReArm {
  /// Fire-and-adapt (default): on fire, drop the pre-drift history and
  /// seed the running statistics with the triggering value — the first
  /// observation of the new regime. A sustained shift fires exactly once.
  kResetOnFire,
  /// On fire, keep the history but fold the triggering value and every
  /// value of the next `cooldown` observations while suppressing further
  /// firings; the shifted regime is absorbed gradually.
  kCooldown,
  /// Pre-fix semantics: keep pre-drift statistics intact and never fold
  /// the triggering value. The caller owns re-arming via Reset() — and a
  /// caller that forgets gets a fire on every post-shift arrival.
  kManual,
};

struct DriftDetectorConfig {
  /// One-sided z-score threshold.
  double threshold = 3.0;
  /// Minimum observations before detection can fire.
  std::size_t min_history = 2;
  /// Standard-deviation floor, guarding against a near-constant history
  /// flagging every tiny wobble.
  double min_std = 1e-3;
  /// Re-arm semantics after a firing.
  DriftReArm rearm = DriftReArm::kResetOnFire;
  /// Observations with detection suppressed after a firing (kCooldown).
  std::size_t cooldown = 3;
};

/// Generic one-sided drop detector over a scalar stream.
class DriftDetector {
 public:
  explicit DriftDetector(const DriftDetectorConfig& config = {})
      : config_(config) {}

  /// Feeds the next per-task statistic. Returns true when the value is a
  /// drift (an abnormal drop). What happens to the running statistics on a
  /// firing is governed by DriftDetectorConfig::rearm; see DriftReArm.
  bool Observe(double value);

  /// Number of values absorbed into the running statistics.
  std::size_t history() const { return stats_.count(); }
  double mean() const { return stats_.mean(); }

  /// Observations left in the post-fire suppression window (kCooldown).
  std::size_t cooldown_remaining() const { return cooldown_remaining_; }

  /// Forgets all history (e.g. after adapting to the new environment).
  void Reset();

 private:
  friend struct StateCodecAccess;

  DriftDetectorConfig config_;
  RunningStat stats_;
  std::size_t cooldown_remaining_ = 0;
};

/// Mean log marginal density of a batch of feature vectors under the
/// estimator — the per-task statistic the detector consumes. -infinity
/// rows (no fitted components) are skipped; returns the mean over the
/// rest, or a very negative constant when every row is -infinity.
double MeanLogDensity(const FairDensityEstimator& estimator,
                      const Matrix& features);

}  // namespace faction

#endif  // FACTION_STREAM_DRIFT_H_
