#include "stream/evaluator.h"

#include <cmath>
#include <limits>

#include "common/telemetry.h"
#include "fairness/metrics.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace faction {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Unpacks a fairness-metric Result into (value, defined), bumping the
/// telemetry counter when the metric is undefined on this task.
double MetricValue(const Result<double>& r, bool* defined,
                   const char* undefined_counter) {
  *defined = r.ok();
  if (!r.ok()) {
    TelemetryCount(undefined_counter);
    return kNan;
  }
  return r.value();
}

}  // namespace

Result<TaskMetrics> EvaluateOnTask(const FeatureClassifier& model,
                                   const Dataset& task,
                                   FairnessNotion notion) {
  if (task.empty()) {
    return Status::InvalidArgument("EvaluateOnTask: empty task");
  }
  ScopedTimer timer("evaluator.seconds");
  TelemetryCount("evaluator.tasks");
  TaskMetrics m;
  m.environment = task.environments()[0];

  const Matrix logits = model.Logits(task.features());
  std::vector<int> yhat(task.size());
  for (std::size_t i = 0; i < task.size(); ++i) {
    yhat[i] = logits(i, 1) > logits(i, 0) ? 1 : 0;
  }

  FACTION_ASSIGN_OR_RETURN(m.accuracy, Accuracy(yhat, task.labels()));
  m.nll = SoftmaxNll(logits, task.labels());

  // Fairness metrics can be undefined on degenerate tasks (one group or
  // one label). Record them as NaN + cleared flag — NOT 0.0: a coerced
  // zero reads as perfect fairness, silently flattering exactly the
  // quantities the paper reports (Fig. 2, Table I).
  m.ddp = MetricValue(DemographicParityDifference(yhat, task.sensitive()),
                      &m.ddp_defined, "evaluator.ddp_undefined");
  m.eod = MetricValue(
      EqualizedOddsDifference(yhat, task.labels(), task.sensitive()),
      &m.eod_defined, "evaluator.eod_undefined");
  m.mi = MetricValue(MutualInformation(yhat, task.sensitive()),
                     &m.mi_defined, "evaluator.mi_undefined");
  if (m.AnyMetricUndefined()) {
    TelemetryCount("evaluator.metric_undefined_tasks");
  }

  // Violation term of Theorem 1: [v(D_t, theta_t)]_+ on the relaxed notion,
  // scored with the model's class-1 probabilities.
  const Matrix proba = SoftmaxRows(logits);
  std::vector<double> scores(task.size());
  for (std::size_t i = 0; i < task.size(); ++i) scores[i] = proba(i, 1);
  const Result<double> v =
      RelaxedFairness(notion, scores, task.sensitive(), task.labels());
  if (v.ok()) m.fairness_violation = std::max(0.0, v.value());

  return m;
}

StreamSummary Summarize(const std::vector<TaskMetrics>& per_task) {
  StreamSummary s;
  if (per_task.empty()) return s;
  double ddp_sum = 0.0, eod_sum = 0.0, mi_sum = 0.0;
  for (const TaskMetrics& m : per_task) {
    s.mean_accuracy += m.accuracy;
    if (m.ddp_defined) {
      ddp_sum += m.ddp;
      ++s.ddp_defined_tasks;
    }
    if (m.eod_defined) {
      eod_sum += m.eod;
      ++s.eod_defined_tasks;
    }
    if (m.mi_defined) {
      mi_sum += m.mi;
      ++s.mi_defined_tasks;
    }
    if (m.AnyMetricUndefined()) ++s.undefined_metric_tasks;
    s.total_seconds += m.seconds;
    s.total_queries += m.queries_used;
  }
  s.mean_accuracy /= static_cast<double>(per_task.size());
  // Undefined tasks are excluded from the means; a metric defined on no
  // task has an undefined mean (NaN), never a fabricated zero.
  constexpr double kNoTasks = std::numeric_limits<double>::quiet_NaN();
  s.mean_ddp = s.ddp_defined_tasks > 0
                   ? ddp_sum / static_cast<double>(s.ddp_defined_tasks)
                   : kNoTasks;
  s.mean_eod = s.eod_defined_tasks > 0
                   ? eod_sum / static_cast<double>(s.eod_defined_tasks)
                   : kNoTasks;
  s.mean_mi = s.mi_defined_tasks > 0
                  ? mi_sum / static_cast<double>(s.mi_defined_tasks)
                  : kNoTasks;
  return s;
}

}  // namespace faction
