#include "stream/evaluator.h"

#include <cmath>

#include "fairness/metrics.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace faction {

Result<TaskMetrics> EvaluateOnTask(const FeatureClassifier& model,
                                   const Dataset& task,
                                   FairnessNotion notion) {
  if (task.empty()) {
    return Status::InvalidArgument("EvaluateOnTask: empty task");
  }
  TaskMetrics m;
  m.environment = task.environments()[0];

  const Matrix logits = model.Logits(task.features());
  std::vector<int> yhat(task.size());
  for (std::size_t i = 0; i < task.size(); ++i) {
    yhat[i] = logits(i, 1) > logits(i, 0) ? 1 : 0;
  }

  FACTION_ASSIGN_OR_RETURN(m.accuracy, Accuracy(yhat, task.labels()));
  m.nll = SoftmaxNll(logits, task.labels());

  // Fairness metrics can be undefined on degenerate tasks (one group or
  // one label). Report 0 in that case rather than failing the run.
  const Result<double> ddp =
      DemographicParityDifference(yhat, task.sensitive());
  m.ddp = ddp.ok() ? ddp.value() : 0.0;
  const Result<double> eod =
      EqualizedOddsDifference(yhat, task.labels(), task.sensitive());
  m.eod = eod.ok() ? eod.value() : 0.0;
  const Result<double> mi = MutualInformation(yhat, task.sensitive());
  m.mi = mi.ok() ? mi.value() : 0.0;

  // Violation term of Theorem 1: [v(D_t, theta_t)]_+ on the relaxed notion,
  // scored with the model's class-1 probabilities.
  const Matrix proba = SoftmaxRows(logits);
  std::vector<double> scores(task.size());
  for (std::size_t i = 0; i < task.size(); ++i) scores[i] = proba(i, 1);
  const Result<double> v =
      RelaxedFairness(notion, scores, task.sensitive(), task.labels());
  if (v.ok()) m.fairness_violation = std::max(0.0, v.value());

  return m;
}

StreamSummary Summarize(const std::vector<TaskMetrics>& per_task) {
  StreamSummary s;
  if (per_task.empty()) return s;
  for (const TaskMetrics& m : per_task) {
    s.mean_accuracy += m.accuracy;
    s.mean_ddp += m.ddp;
    s.mean_eod += m.eod;
    s.mean_mi += m.mi;
    s.total_seconds += m.seconds;
    s.total_queries += m.queries_used;
  }
  const double n = static_cast<double>(per_task.size());
  s.mean_accuracy /= n;
  s.mean_ddp /= n;
  s.mean_eod /= n;
  s.mean_mi /= n;
  return s;
}

}  // namespace faction
