#include "stream/drift.h"

#include <cmath>

#include "common/telemetry.h"

namespace faction {

bool DriftDetector::Observe(double value) {
  TelemetryCount("drift.observed");
  if (cooldown_remaining_ > 0) {
    // Post-fire suppression window (kCooldown): absorb the shifted regime
    // without re-firing.
    --cooldown_remaining_;
    stats_.Add(value);
    return false;
  }
  if (stats_.count() >= config_.min_history) {
    const double spread =
        stats_.stddev() > config_.min_std ? stats_.stddev() : config_.min_std;
    if (value < stats_.mean() - config_.threshold * spread) {
      TelemetryCount("drift.fired");
      switch (config_.rearm) {
        case DriftReArm::kResetOnFire:
          // The triggering value is the first observation of the new
          // regime: restart the statistics from it so a sustained shift
          // fires exactly once.
          stats_ = RunningStat();
          stats_.Add(value);
          break;
        case DriftReArm::kCooldown:
          stats_.Add(value);
          cooldown_remaining_ = config_.cooldown;
          break;
        case DriftReArm::kManual:
          // Keep the pre-drift statistics intact; the caller re-arms via
          // Reset().
          break;
      }
      return true;
    }
  }
  stats_.Add(value);
  return false;
}

void DriftDetector::Reset() {
  stats_ = RunningStat();
  cooldown_remaining_ = 0;
}

double MeanLogDensity(const FairDensityEstimator& estimator,
                      const Matrix& features) {
  // Batched evaluation: one blocked solve per mixture component for the
  // whole window instead of per-row solves.
  const std::vector<double> lgs = estimator.LogMarginalDensityBatch(features);
  double sum = 0.0;
  std::size_t counted = 0;
  for (const double lg : lgs) {
    if (std::isfinite(lg)) {
      sum += lg;
      ++counted;
    }
  }
  if (counted == 0) return -1e300;
  return sum / static_cast<double>(counted);
}

}  // namespace faction
