#include "stream/drift.h"

#include <cmath>

#include "common/telemetry.h"

namespace faction {

bool DriftDetector::Observe(double value) {
  TelemetryCount("drift.observed");
  if (stats_.count() >= config_.min_history) {
    const double spread =
        stats_.stddev() > config_.min_std ? stats_.stddev() : config_.min_std;
    if (value < stats_.mean() - config_.threshold * spread) {
      TelemetryCount("drift.fired");
      return true;  // drift: keep the pre-drift statistics intact
    }
  }
  stats_.Add(value);
  return false;
}

void DriftDetector::Reset() { stats_ = RunningStat(); }

double MeanLogDensity(const FairDensityEstimator& estimator,
                      const Matrix& features) {
  // Batched evaluation: one blocked solve per mixture component for the
  // whole window instead of per-row solves.
  const std::vector<double> lgs = estimator.LogMarginalDensityBatch(features);
  double sum = 0.0;
  std::size_t counted = 0;
  for (const double lg : lgs) {
    if (std::isfinite(lg)) {
      sum += lg;
      ++counted;
    }
  }
  if (counted == 0) return -1e300;
  return sum / static_cast<double>(counted);
}

}  // namespace faction
