#ifndef FACTION_STREAM_REPORT_H_
#define FACTION_STREAM_REPORT_H_

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "stream/online_learner.h"

namespace faction {

/// Per-environment aggregate of a run: the changing-environments view of
/// the results (Fig. 2's per-task curves collapse within each
/// environment). Fairness means are taken over the tasks on which the
/// metric is defined ("*_defined_tasks"); a metric defined on no task in
/// the environment has mean NaN (rendered "n/a" in reports).
struct EnvironmentSummary {
  int environment = 0;
  std::size_t num_tasks = 0;
  double mean_accuracy = 0.0;
  double mean_ddp = 0.0;
  double mean_eod = 0.0;
  double mean_mi = 0.0;
  std::size_t ddp_defined_tasks = 0;
  std::size_t eod_defined_tasks = 0;
  std::size_t mi_defined_tasks = 0;
  /// Accuracy on the first task after entering the environment (the
  /// "on-shift" number) versus the last task within it ("recovered").
  double first_task_accuracy = 0.0;
  double last_task_accuracy = 0.0;
};

/// Groups a run's per-task metrics by environment, preserving first
/// appearance order. Tasks with undefined fairness metrics are excluded
/// from the affected means.
std::vector<EnvironmentSummary> SummarizeByEnvironment(
    const RunResult& run);

/// Renders a markdown report of a run: stream-level summary (including the
/// count of metric-undefined tasks), per-environment table, per-task
/// series, and — when the process-wide telemetry registry is enabled — a
/// telemetry section. Suitable for dropping into a results log or issue.
void WriteMarkdownReport(const RunResult& run, std::ostream& os);

/// Compares several runs (e.g. different methods on the same stream) into
/// one markdown table of stream-level means.
void WriteComparisonReport(const std::vector<RunResult>& runs,
                           std::ostream& os);

}  // namespace faction

#endif  // FACTION_STREAM_REPORT_H_
