#include "stream/report.h"

#include "common/table.h"

namespace faction {

std::vector<EnvironmentSummary> SummarizeByEnvironment(
    const RunResult& run) {
  std::vector<EnvironmentSummary> out;
  std::map<int, std::size_t> position;
  for (const TaskMetrics& m : run.per_task) {
    auto it = position.find(m.environment);
    if (it == position.end()) {
      position[m.environment] = out.size();
      EnvironmentSummary s;
      s.environment = m.environment;
      s.first_task_accuracy = m.accuracy;
      out.push_back(s);
      it = position.find(m.environment);
    }
    EnvironmentSummary& s = out[it->second];
    ++s.num_tasks;
    s.mean_accuracy += m.accuracy;
    s.mean_ddp += m.ddp;
    s.mean_eod += m.eod;
    s.mean_mi += m.mi;
    s.last_task_accuracy = m.accuracy;
  }
  for (EnvironmentSummary& s : out) {
    const double n = static_cast<double>(s.num_tasks);
    s.mean_accuracy /= n;
    s.mean_ddp /= n;
    s.mean_eod /= n;
    s.mean_mi /= n;
  }
  return out;
}

void WriteMarkdownReport(const RunResult& run, std::ostream& os) {
  os << "# Run report: " << run.strategy_name << "\n\n";
  os << "- tasks: " << run.per_task.size() << "\n";
  os << "- total queries: " << run.total_queries << "\n";
  os << "- wall clock: " << FormatCell(run.total_seconds, 2) << " s\n";
  os << "- stream means: accuracy "
     << FormatCell(run.summary.mean_accuracy, 3) << ", DDP "
     << FormatCell(run.summary.mean_ddp, 3) << ", EOD "
     << FormatCell(run.summary.mean_eod, 3) << ", MI "
     << FormatCell(run.summary.mean_mi, 3) << "\n\n";

  os << "## Per environment\n\n";
  Table env_table({"env", "tasks", "acc", "DDP", "EOD", "MI",
                   "on-shift acc", "recovered acc"});
  for (const EnvironmentSummary& s : SummarizeByEnvironment(run)) {
    env_table.AddRow({std::to_string(s.environment),
                      std::to_string(s.num_tasks),
                      FormatCell(s.mean_accuracy, 3),
                      FormatCell(s.mean_ddp, 3), FormatCell(s.mean_eod, 3),
                      FormatCell(s.mean_mi, 3),
                      FormatCell(s.first_task_accuracy, 3),
                      FormatCell(s.last_task_accuracy, 3)});
  }
  env_table.Print(os);

  os << "\n## Per task\n\n";
  Table task_table({"task", "env", "acc", "DDP", "EOD", "MI", "queries"});
  for (const TaskMetrics& m : run.per_task) {
    task_table.AddRow({std::to_string(m.task_index + 1),
                       std::to_string(m.environment),
                       FormatCell(m.accuracy, 3), FormatCell(m.ddp, 3),
                       FormatCell(m.eod, 3), FormatCell(m.mi, 3),
                       std::to_string(m.queries_used)});
  }
  task_table.Print(os);
}

void WriteComparisonReport(const std::vector<RunResult>& runs,
                           std::ostream& os) {
  os << "# Method comparison\n\n";
  Table table({"method", "acc", "DDP", "EOD", "MI", "queries", "seconds"});
  for (const RunResult& run : runs) {
    table.AddRow({run.strategy_name,
                  FormatCell(run.summary.mean_accuracy, 3),
                  FormatCell(run.summary.mean_ddp, 3),
                  FormatCell(run.summary.mean_eod, 3),
                  FormatCell(run.summary.mean_mi, 3),
                  std::to_string(run.total_queries),
                  FormatCell(run.total_seconds, 2)});
  }
  table.Print(os);
}

}  // namespace faction
