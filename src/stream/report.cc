#include "stream/report.h"

#include <cmath>
#include <limits>

#include "common/table.h"
#include "common/telemetry.h"

namespace faction {

namespace {

/// Metric cell: the formatted value when defined, "n/a" otherwise.
std::string MetricCell(double value, bool defined, int decimals) {
  if (!defined || std::isnan(value)) return "n/a";
  return FormatCell(value, decimals);
}

}  // namespace

std::vector<EnvironmentSummary> SummarizeByEnvironment(
    const RunResult& run) {
  std::vector<EnvironmentSummary> out;
  std::map<int, std::size_t> position;
  for (const TaskMetrics& m : run.per_task) {
    auto it = position.find(m.environment);
    if (it == position.end()) {
      position[m.environment] = out.size();
      EnvironmentSummary s;
      s.environment = m.environment;
      s.first_task_accuracy = m.accuracy;
      out.push_back(s);
      it = position.find(m.environment);
    }
    EnvironmentSummary& s = out[it->second];
    ++s.num_tasks;
    s.mean_accuracy += m.accuracy;
    // Undefined metrics (NaN + cleared flag) stay out of the sums: one
    // degenerate task must not poison — or flatter — its environment mean.
    if (m.ddp_defined) {
      s.mean_ddp += m.ddp;
      ++s.ddp_defined_tasks;
    }
    if (m.eod_defined) {
      s.mean_eod += m.eod;
      ++s.eod_defined_tasks;
    }
    if (m.mi_defined) {
      s.mean_mi += m.mi;
      ++s.mi_defined_tasks;
    }
    s.last_task_accuracy = m.accuracy;
  }
  constexpr double kUndefined = std::numeric_limits<double>::quiet_NaN();
  for (EnvironmentSummary& s : out) {
    s.mean_accuracy /= static_cast<double>(s.num_tasks);
    s.mean_ddp = s.ddp_defined_tasks > 0
                     ? s.mean_ddp / static_cast<double>(s.ddp_defined_tasks)
                     : kUndefined;
    s.mean_eod = s.eod_defined_tasks > 0
                     ? s.mean_eod / static_cast<double>(s.eod_defined_tasks)
                     : kUndefined;
    s.mean_mi = s.mi_defined_tasks > 0
                    ? s.mean_mi / static_cast<double>(s.mi_defined_tasks)
                    : kUndefined;
  }
  return out;
}

void WriteMarkdownReport(const RunResult& run, std::ostream& os) {
  const StreamSummary& sum = run.summary;
  os << "# Run report: " << run.strategy_name << "\n\n";
  os << "- tasks: " << run.per_task.size() << "\n";
  os << "- total queries: " << run.total_queries << "\n";
  os << "- wall clock: " << FormatCell(run.total_seconds, 2) << " s\n";
  os << "- undefined-metric tasks: " << sum.undefined_metric_tasks << "\n";
  os << "- stream means: accuracy " << FormatCell(sum.mean_accuracy, 3)
     << ", DDP " << MetricCell(sum.mean_ddp, sum.ddp_defined_tasks > 0, 3)
     << ", EOD " << MetricCell(sum.mean_eod, sum.eod_defined_tasks > 0, 3)
     << ", MI " << MetricCell(sum.mean_mi, sum.mi_defined_tasks > 0, 3)
     << "\n\n";

  os << "## Per environment\n\n";
  Table env_table({"env", "tasks", "acc", "DDP", "EOD", "MI",
                   "on-shift acc", "recovered acc"});
  for (const EnvironmentSummary& s : SummarizeByEnvironment(run)) {
    env_table.AddRow(
        {std::to_string(s.environment), std::to_string(s.num_tasks),
         FormatCell(s.mean_accuracy, 3),
         MetricCell(s.mean_ddp, s.ddp_defined_tasks > 0, 3),
         MetricCell(s.mean_eod, s.eod_defined_tasks > 0, 3),
         MetricCell(s.mean_mi, s.mi_defined_tasks > 0, 3),
         FormatCell(s.first_task_accuracy, 3),
         FormatCell(s.last_task_accuracy, 3)});
  }
  env_table.Print(os);

  os << "\n## Per task\n\n";
  Table task_table({"task", "env", "acc", "DDP", "EOD", "MI", "queries"});
  for (const TaskMetrics& m : run.per_task) {
    task_table.AddRow({std::to_string(m.task_index + 1),
                       std::to_string(m.environment),
                       FormatCell(m.accuracy, 3),
                       MetricCell(m.ddp, m.ddp_defined, 3),
                       MetricCell(m.eod, m.eod_defined, 3),
                       MetricCell(m.mi, m.mi_defined, 3),
                       std::to_string(m.queries_used)});
  }
  task_table.Print(os);

  if (const Telemetry* telemetry = Telemetry::Get()) {
    os << "\n";
    telemetry->WriteMarkdown(os);
  }
}

void WriteComparisonReport(const std::vector<RunResult>& runs,
                           std::ostream& os) {
  os << "# Method comparison\n\n";
  Table table({"method", "acc", "DDP", "EOD", "MI", "queries", "seconds"});
  for (const RunResult& run : runs) {
    const StreamSummary& s = run.summary;
    table.AddRow({run.strategy_name, FormatCell(s.mean_accuracy, 3),
                  MetricCell(s.mean_ddp, s.ddp_defined_tasks > 0, 3),
                  MetricCell(s.mean_eod, s.eod_defined_tasks > 0, 3),
                  MetricCell(s.mean_mi, s.mi_defined_tasks > 0, 3),
                  std::to_string(run.total_queries),
                  FormatCell(run.total_seconds, 2)});
  }
  table.Print(os);
}

}  // namespace faction
