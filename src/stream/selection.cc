// FACTION_HOT: selection runs on every acquisition under the steady-state
// allocation ban; allocating idioms here are lint findings (tools/lint.py
// no-alloc-in-hot, DESIGN.md §13).
#include "stream/selection.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace faction {

namespace {

// Sort key that maps NaN to -inf so the descending comparators below are a
// strict weak ordering even on NaN-polluted scores. Raw `a > b` with NaN
// violates transitivity of equivalence, which is UB for std::stable_sort.
inline double SortKey(double v) {
  return std::isnan(v) ? -std::numeric_limits<double>::infinity() : v;
}

}  // namespace

void MinMaxNormalizeInto(const std::vector<double>& scores,
                         std::vector<double>* out) {
  out->assign(scores.size(), 0.5);
  if (scores.empty()) return;
  const auto [mn_it, mx_it] = std::minmax_element(scores.begin(), scores.end());
  const double mn = *mn_it;
  const double mx = *mx_it;
  if (mx - mn < 1e-300) return;  // constant scores
  double* o = out->data();
  for (std::size_t i = 0; i < scores.size(); ++i) {
    o[i] = (scores[i] - mn) / (mx - mn);
  }
}

// FACTION_COLD_BEGIN: value-returning convenience wrapper for tests and
// one-off callers; the pipeline uses the Into variant.
std::vector<double> MinMaxNormalize(const std::vector<double>& scores) {
  std::vector<double> out;
  MinMaxNormalizeInto(scores, &out);
  return out;
}
// FACTION_COLD_END

void BernoulliSelectInto(const std::vector<double>& omega, double alpha,
                         std::size_t batch, Rng* rng,
                         SelectionScratch* scratch,
                         std::vector<std::size_t>* out) {
  SelectionScratch local;
  SelectionScratch* s = scratch != nullptr ? scratch : &local;
  s->order.resize(omega.size());
  std::iota(s->order.begin(), s->order.end(), std::size_t{0});
  std::stable_sort(s->order.begin(), s->order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return SortKey(omega[a]) > SortKey(omega[b]);
                   });
  std::vector<std::size_t>& accepted = *out;
  accepted.clear();
  s->taken.assign(omega.size(), 0);
  const std::size_t want = std::min(batch, omega.size());
  // Cycle over the (sorted) pool until the acquisition batch is filled.
  // When alpha and all omegas are 0 the trials never fire; guard with a
  // pass counter that falls back to deterministic acceptance.
  int passes_without_progress = 0;
  while (accepted.size() < want && passes_without_progress < 64) {
    bool progressed = false;
    for (std::size_t idx : s->order) {
      if (accepted.size() >= want) break;
      if (s->taken[idx] != 0) continue;
      const double raw = alpha * omega[idx];
      // NaN omega (or alpha) yields p = 0: the candidate can only enter
      // through the exhaustion fallback, never through a Bernoulli draw.
      const double p = std::isnan(raw) ? 0.0 : std::min(raw, 1.0);
      if (rng->Bernoulli(p)) {
        s->taken[idx] = 1;
        accepted.push_back(idx);
        progressed = true;
      }
    }
    passes_without_progress = progressed ? 0 : passes_without_progress + 1;
  }
  // Degenerate probabilities: fill deterministically in omega order so the
  // learner still honors its acquisition size.
  if (accepted.size() < want) {
    for (std::size_t idx : s->order) {
      if (accepted.size() >= want) break;
      if (s->taken[idx] == 0) {
        s->taken[idx] = 1;
        accepted.push_back(idx);
      }
    }
  }
}

// FACTION_COLD_BEGIN: the returned index vector is the strategy interface's
// result object — building it allocates by design; strategies keep the ban
// scope closed before calling in. TopK is baseline-only (per-task cadence).
std::vector<std::size_t> BernoulliSelect(const std::vector<double>& omega,
                                         double alpha, std::size_t batch,
                                         Rng* rng,
                                         SelectionScratch* scratch) {
  std::vector<std::size_t> accepted;
  BernoulliSelectInto(omega, alpha, batch, rng, scratch, &accepted);
  return accepted;
}

std::vector<std::size_t> TopK(const std::vector<double>& scores,
                              std::size_t k) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return SortKey(scores[a]) > SortKey(scores[b]);
                   });
  if (order.size() > k) order.resize(k);
  return order;
}
// FACTION_COLD_END

}  // namespace faction
