#include "stream/selection.h"

#include <algorithm>
#include <numeric>

namespace faction {

std::vector<double> MinMaxNormalize(const std::vector<double>& scores) {
  std::vector<double> out(scores.size(), 0.5);
  if (scores.empty()) return out;
  const auto [mn_it, mx_it] = std::minmax_element(scores.begin(), scores.end());
  const double mn = *mn_it;
  const double mx = *mx_it;
  if (mx - mn < 1e-300) return out;  // constant scores
  for (std::size_t i = 0; i < scores.size(); ++i) {
    out[i] = (scores[i] - mn) / (mx - mn);
  }
  return out;
}

std::vector<std::size_t> BernoulliSelect(const std::vector<double>& omega,
                                         double alpha, std::size_t batch,
                                         Rng* rng) {
  std::vector<std::size_t> order(omega.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return omega[a] > omega[b];
                   });
  std::vector<std::size_t> accepted;
  std::vector<bool> taken(omega.size(), false);
  const std::size_t want = std::min(batch, omega.size());
  // Cycle over the (sorted) pool until the acquisition batch is filled.
  // When alpha and all omegas are 0 the trials never fire; guard with a
  // pass counter that falls back to deterministic acceptance.
  int passes_without_progress = 0;
  while (accepted.size() < want && passes_without_progress < 64) {
    bool progressed = false;
    for (std::size_t idx : order) {
      if (accepted.size() >= want) break;
      if (taken[idx]) continue;
      const double p = std::min(alpha * omega[idx], 1.0);
      if (rng->Bernoulli(p)) {
        taken[idx] = true;
        accepted.push_back(idx);
        progressed = true;
      }
    }
    passes_without_progress = progressed ? 0 : passes_without_progress + 1;
  }
  // Degenerate probabilities: fill deterministically in omega order so the
  // learner still honors its acquisition size.
  if (accepted.size() < want) {
    for (std::size_t idx : order) {
      if (accepted.size() >= want) break;
      if (!taken[idx]) {
        taken[idx] = true;
        accepted.push_back(idx);
      }
    }
  }
  return accepted;
}

std::vector<std::size_t> TopK(const std::vector<double>& scores,
                              std::size_t k) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return scores[a] > scores[b];
                   });
  if (order.size() > k) order.resize(k);
  return order;
}

}  // namespace faction
