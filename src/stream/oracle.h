#ifndef FACTION_STREAM_ORACLE_H_
#define FACTION_STREAM_ORACLE_H_

#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace faction {

/// Label oracle over one incoming task D_t^U. Candidates arrive with
/// features, sensitive attribute, and environment visible; the class label
/// is hidden until queried, and each query consumes one unit of the task
/// budget B. (The sensitive attribute is observable pre-query, matching the
/// fair-active-learning literature the paper baselines against.)
class LabelOracle {
 public:
  /// Wraps a task with the given query budget.
  LabelOracle(const Dataset& task, std::size_t budget);

  std::size_t task_size() const { return task_->size(); }
  std::size_t budget_remaining() const { return budget_; }
  std::size_t queries_used() const { return queries_; }

  /// Indices (into the task) still unlabeled, in ascending order.
  std::vector<std::size_t> UnlabeledIndices() const;

  /// Allocation-aware variant: the indices are resized into *out so a
  /// loop-carried buffer is reused across acquisition iterations.
  void UnlabeledIndicesInto(std::vector<std::size_t>* out) const;

  std::size_t num_unlabeled() const { return task_->size() - num_labeled_; }

  bool IsLabeled(std::size_t index) const { return labeled_[index]; }

  /// Reveals the label of the sample at `index`, consuming one budget unit.
  /// Fails when the budget is exhausted, the index is out of range, or the
  /// sample was already queried.
  Result<int> QueryLabel(std::size_t index);

  /// Marks `index` labeled without consuming budget — used for the free
  /// warm-start labels every method receives.
  Result<int> RevealFree(std::size_t index);

  /// The underlying task with ground-truth labels. Reserved for evaluation
  /// code (test metrics and regret tracking); selection strategies must not
  /// touch labels they have not queried.
  const Dataset& ground_truth() const { return *task_; }

 private:
  const Dataset* task_;
  std::size_t budget_;
  std::size_t queries_ = 0;
  std::size_t num_labeled_ = 0;
  std::vector<bool> labeled_;
};

}  // namespace faction

#endif  // FACTION_STREAM_ORACLE_H_
