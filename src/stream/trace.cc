#include "stream/trace.h"

#include <cmath>
#include <cstdio>
#include <memory>
#include <utility>

#include "common/alloc_audit.h"
#include "tensor/simd.h"

namespace faction {

namespace {

std::string JsonBool(bool b) { return b ? "true" : "false"; }

/// ddp/eod/mi cell: the value when defined, null otherwise.
std::string MetricOrNull(double value, bool defined) {
  if (!defined) return "null";
  return JsonNumber(value);
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  // 17 significant digits round-trip any double; the shortest such decimal
  // keeps the trace diffable while staying exact.
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

TraceWriter::TraceWriter(std::ostream* os) : os_(os) {}

TraceWriter::TraceWriter(std::ofstream file)
    : file_(std::move(file)), os_(&file_) {}

Result<std::unique_ptr<TraceWriter>> TraceWriter::Create(
    const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::NotFound("TraceWriter: cannot open " + path);
  }
  return std::make_unique<TraceWriter>(std::move(file));
}

Status TraceWriter::Flush() {
  os_->flush();
  if (!os_->good()) return Status::Internal("TraceWriter: write failed");
  return Status::Ok();
}

Status TraceWriter::WriteRunStart(const std::string& strategy_name,
                                  const DensityInfo& density,
                                  const ScenarioInfo& scenario,
                                  const CheckpointInfo& checkpoint) {
  // The dispatch tier is part of the run's provenance: results are bitwise
  // identical across tiers by contract, so a tier mismatch between two
  // traces that differ is immediately visible evidence of a parity bug.
  // The density, scenario, and checkpoint objects likewise: a window/decay,
  // spec/seed, or snapshot-cadence mismatch explains a divergence before
  // any numeric diffing.
  *os_ << "{\"type\":\"run_start\",\"schema_version\":" << kTraceSchemaVersion
       << ",\"strategy\":\"" << JsonEscape(strategy_name)
       << "\",\"simd_level\":\"" << ActiveSimd().name
       << "\",\"alloc_audit\":\"" << AllocAuditMode()
       << "\",\"density\":{\"window\":" << density.window
       << ",\"decay\":" << JsonNumber(density.decay)
       << "},\"scenario\":{\"spec\":\"" << JsonEscape(scenario.spec)
       << "\",\"world_seed\":" << scenario.world_seed
       << "},\"checkpoint\":{\"enabled\":"
       << (checkpoint.enabled ? "true" : "false")
       << ",\"interval_steps\":" << checkpoint.interval_steps << "}}\n";
  return Flush();
}

Status TraceWriter::WriteRunStart(const std::string& strategy_name,
                                  const ServeInfo& serve,
                                  const DensityInfo& density,
                                  const ScenarioInfo& scenario,
                                  const CheckpointInfo& checkpoint) {
  *os_ << "{\"type\":\"run_start\",\"schema_version\":" << kTraceSchemaVersion
       << ",\"strategy\":\"" << JsonEscape(strategy_name)
       << "\",\"simd_level\":\"" << ActiveSimd().name
       << "\",\"alloc_audit\":\"" << AllocAuditMode()
       << "\",\"density\":{\"window\":" << density.window
       << ",\"decay\":" << JsonNumber(density.decay)
       << "},\"scenario\":{\"spec\":\"" << JsonEscape(scenario.spec)
       << "\",\"world_seed\":" << scenario.world_seed
       << "},\"checkpoint\":{\"enabled\":"
       << (checkpoint.enabled ? "true" : "false")
       << ",\"interval_steps\":" << checkpoint.interval_steps
       << "},\"serve\":{\"workers\":" << serve.workers
       << ",\"sessions\":" << serve.sessions << "}}\n";
  return Flush();
}

Status TraceWriter::WriteTask(const TaskTraceRecord& r) {
  *os_ << "{\"type\":\"task\""
       << ",\"task_index\":" << r.task_index
       << ",\"environment\":" << r.environment
       << ",\"queries\":" << r.queries_spent
       << ",\"acquisition_batches\":" << r.acquisition_batches
       << ",\"train_steps\":" << r.train_steps
       << ",\"density_refit_mode\":\"" << JsonEscape(r.density_refit_mode)
       << "\""
       << ",\"drift_fired\":" << r.drift_fired
       << ",\"metrics\":{"
       << "\"accuracy\":" << JsonNumber(r.accuracy)
       << ",\"nll\":" << JsonNumber(r.nll)
       << ",\"ddp\":" << MetricOrNull(r.ddp, r.ddp_defined)
       << ",\"eod\":" << MetricOrNull(r.eod, r.eod_defined)
       << ",\"mi\":" << MetricOrNull(r.mi, r.mi_defined) << "}"
       << ",\"metric_defined\":{"
       << "\"ddp\":" << JsonBool(r.ddp_defined)
       << ",\"eod\":" << JsonBool(r.eod_defined)
       << ",\"mi\":" << JsonBool(r.mi_defined) << "}"
       << ",\"wall\":{"
       << "\"evaluate_seconds\":" << JsonNumber(r.wall_evaluate_seconds)
       << ",\"acquire_seconds\":" << JsonNumber(r.wall_acquire_seconds)
       << ",\"train_seconds\":" << JsonNumber(r.wall_train_seconds)
       << ",\"task_seconds\":" << JsonNumber(r.wall_task_seconds) << "}}\n";
  return Flush();
}

Status TraceWriter::WriteRunEnd(std::size_t tasks, std::size_t total_queries,
                                std::size_t undefined_metric_tasks) {
  *os_ << "{\"type\":\"run_end\",\"tasks\":" << tasks
       << ",\"total_queries\":" << total_queries
       << ",\"undefined_metric_tasks\":" << undefined_metric_tasks << "}\n";
  return Flush();
}

}  // namespace faction
