#ifndef FACTION_STREAM_TRACE_H_
#define FACTION_STREAM_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "common/status.h"

namespace faction {

/// Schema version stamped into every run_start record. Bump when a field is
/// added, removed, or retyped; tools/validate_trace.py pins the layout.
/// v2: run_start gained "simd_level" (the resolved SIMD dispatch tier).
/// v3: run_start gained "alloc_audit" ("on"/"off" — whether the build
///     interposes the allocator; see common/alloc_audit.h).
/// v4: run_start gained the optional "serve" object ({"workers":N,
///     "sessions":N}) stamped by multi-stream serving runs (src/serve,
///     bench/serve_loadgen); absent for single-stream runs.
/// v5: run_start gained the always-present "density" object
///     ({"window":N,"decay":g}) — the run's density-forgetting
///     configuration (DESIGN.md §15). {"window":0,"decay":1} when the
///     estimator is grow-only.
/// v6: run_start gained the always-present "scenario" object
///     ({"spec":"...","world_seed":N}) — the canonical scenario DSL spec
///     the stream was generated from and the world seed every sub-seed
///     derives from (DESIGN.md §16). {"spec":"none","world_seed":0} for
///     streams built outside the scenario engine.
/// v7: run_start gained the always-present "checkpoint" object
///     ({"enabled":b,"interval_steps":N}) — whether background
///     checkpointing (DESIGN.md §17) was active for the run and its
///     snapshot cadence. {"enabled":false,"interval_steps":0} when off.
constexpr int kTraceSchemaVersion = 7;

/// One structured trace record per stream task (see DESIGN.md §11 for the
/// schema and determinism contract). Every field except the wall_* group is
/// deterministic: for a fixed stream, config, and seed it is bit-identical
/// across runs and worker-thread counts. The wall_* fields are wall-clock
/// stage timings and vary run to run.
struct TaskTraceRecord {
  int task_index = 0;
  int environment = 0;
  std::size_t queries_spent = 0;
  std::size_t acquisition_batches = 0;
  std::size_t train_steps = 0;
  /// How the strategy's density estimator was refreshed during this task:
  /// "batch", "incremental", "mixed", "none", or "unknown" (telemetry
  /// disabled, so counter deltas were unavailable).
  std::string density_refit_mode = "unknown";
  /// Drift-detector firings attributed to this task (counter delta; 0 when
  /// no detector runs or telemetry is disabled).
  std::uint64_t drift_fired = 0;
  double accuracy = 0.0;
  double nll = 0.0;
  /// Fairness metrics; emitted as JSON null when the matching *_defined
  /// flag is false (e.g. a single-group task).
  double ddp = 0.0;
  double eod = 0.0;
  double mi = 0.0;
  bool ddp_defined = true;
  bool eod_defined = true;
  bool mi_defined = true;
  /// Non-deterministic wall-clock stage timings, seconds.
  double wall_evaluate_seconds = 0.0;
  double wall_acquire_seconds = 0.0;
  double wall_train_seconds = 0.0;
  double wall_task_seconds = 0.0;
};

/// Density-forgetting configuration stamped into every run_start (schema
/// v5): the sliding-window length (0 = grow-only) and per-arrival decay
/// factor (1 = none). See FactionStrategyConfig/StreamingFactionConfig.
/// Namespace-scope (not nested in TraceWriter) so it can serve as a
/// defaulted `{}` argument — a nested aggregate's member initializers are
/// not parsed until the enclosing class is complete.
struct TraceDensityInfo {
  std::size_t window = 0;
  double decay = 1.0;
};

/// Scenario provenance stamped into every run_start (schema v6): the
/// canonical DSL spec (data/scenario.h CanonicalScenarioSpec) and the world
/// seed all per-layer sub-seeds derive from. "none"/0 identify a stream
/// built outside the scenario engine. Namespace-scope for the same reason
/// as TraceDensityInfo.
struct TraceScenarioInfo {
  std::string spec = "none";
  std::uint64_t world_seed = 0;
};

/// Checkpointing provenance stamped into every run_start (schema v7):
/// whether background state streaming (serve/checkpoint.h, DESIGN.md §17)
/// was active and the steps-between-snapshots cadence. false/0 for runs
/// without checkpointing. Namespace-scope for the same reason as
/// TraceDensityInfo.
struct TraceCheckpointInfo {
  bool enabled = false;
  std::size_t interval_steps = 0;
};

/// JSONL event trace for streaming runs: a run_start line, one task line
/// per stream task, and a run_end line. The writer is sequential and
/// non-owning of borrowed sinks; it never throws — I/O failures surface as
/// Status from the Write* calls.
class TraceWriter {
 public:
  /// Writes to a borrowed stream (kept alive by the caller); used by tests
  /// and in-memory consumers.
  explicit TraceWriter(std::ostream* os);

  /// Adopts an already-opened file sink. Prefer Create().
  explicit TraceWriter(std::ofstream file);

  /// Opens `path` for truncating write.
  static Result<std::unique_ptr<TraceWriter>> Create(const std::string& path);

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Serving-runtime facts stamped into run_start by multi-stream runs
  /// (schema v4).
  struct ServeInfo {
    int workers = 0;
    std::size_t sessions = 0;
  };

  /// See TraceDensityInfo; aliased here so call sites read
  /// TraceWriter::DensityInfo.
  using DensityInfo = TraceDensityInfo;

  /// See TraceScenarioInfo; aliased like DensityInfo.
  using ScenarioInfo = TraceScenarioInfo;

  /// See TraceCheckpointInfo; aliased like DensityInfo.
  using CheckpointInfo = TraceCheckpointInfo;

  /// {"type":"run_start","schema_version":...,"strategy":...}
  Status WriteRunStart(const std::string& strategy_name,
                       const DensityInfo& density = {},
                       const ScenarioInfo& scenario = {},
                       const CheckpointInfo& checkpoint = {});

  /// Same, plus the "serve" object: {"workers":...,"sessions":...}.
  Status WriteRunStart(const std::string& strategy_name,
                       const ServeInfo& serve,
                       const DensityInfo& density = {},
                       const ScenarioInfo& scenario = {},
                       const CheckpointInfo& checkpoint = {});

  /// {"type":"task",...}; see TaskTraceRecord.
  Status WriteTask(const TaskTraceRecord& record);

  /// {"type":"run_end","tasks":...,"total_queries":...,
  ///  "undefined_metric_tasks":...}
  Status WriteRunEnd(std::size_t tasks, std::size_t total_queries,
                     std::size_t undefined_metric_tasks);

 private:
  Status Flush();

  std::ofstream file_;    // owned sink (Create path)
  std::ostream* os_;      // active sink (points at file_ or the borrowed one)
};

/// Escapes a string for embedding in a JSON double-quoted literal.
std::string JsonEscape(const std::string& s);

/// Formats a double as a JSON number token; non-finite values (which JSON
/// cannot represent) render as null.
std::string JsonNumber(double value);

}  // namespace faction

#endif  // FACTION_STREAM_TRACE_H_
