#ifndef FACTION_STREAM_ONLINE_LEARNER_H_
#define FACTION_STREAM_ONLINE_LEARNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "nn/trainer.h"
#include "stream/evaluator.h"
#include "stream/strategy.h"

namespace faction {

class TraceWriter;

/// Configuration of the fair active online learning protocol (Sec. IV-A and
/// Algorithm 1). Defaults follow the paper: B = 200, A = 50, warm start of
/// 100 free random labels, constant learning rate.
struct OnlineLearnerConfig {
  std::size_t budget_per_task = 200;   ///< B
  std::size_t acquisition_batch = 50;  ///< A
  std::size_t warm_start = 100;        ///< free initial labels (task 0)
  /// Bound on the labeled pool D_t (0 = unlimited, the paper's setting of
  /// training on all labels gathered so far). When positive, the oldest
  /// labeled examples are evicted first (sliding window), bounding both
  /// memory and per-iteration training cost on long streams.
  std::size_t max_pool_size = 0;
  MlpConfig model;
  /// Optional backbone override: when set, the learner (and its regret
  /// oracle) build the classifier from this factory instead of the MLP
  /// config above — e.g. the CNN backbone for image streams.
  std::function<std::unique_ptr<FeatureClassifier>(Rng*)> model_factory;
  TrainConfig train;
  /// Notion instantiated for the violation tracking (the loss penalty's
  /// notion lives in train.fairness.notion).
  FairnessNotion notion = FairnessNotion::kDdp;
  /// When true, each task additionally fits a fresh model on the fully
  /// labeled task to estimate the per-task optimal loss f*_t and track
  /// regret (Eq. 2). Costly; used by the Theorem 1 bench.
  bool track_regret = false;
  /// Training configuration for the per-task regret oracle model.
  TrainConfig oracle_train;
  /// Theorem 1 machinery (used by the theory bench; off for the practical
  /// system): dual ascent on the fairness multiplier,
  ///   mu_{t+1} = [mu_t + dual_step * ([v_t]_+ - epsilon)]_+,
  /// which is the long-term-constraints treatment (Yi et al.) the paper's
  /// proof follows; a constant mu only drives the violation to an
  /// equilibrium, not to zero.
  bool dual_ascent = false;
  double dual_step = 0.5;
  /// Decaying learning-rate schedule gamma_t = gamma_0 / (1+t)^power; the
  /// theorem uses power 0.5. 0 keeps the paper's constant rate.
  double lr_decay_power = 0.0;
  /// Optional JSONL event trace (see stream/trace.h): when set, Run()
  /// writes a run_start record, one task record per stream task, and a
  /// run_end record. Borrowed; must outlive Run(). Tracing never changes
  /// results. Enable the process-wide Telemetry registry as well to
  /// populate the counter-derived fields (density refit mode, drift
  /// firings) — without it they degrade to "unknown"/0.
  TraceWriter* trace = nullptr;
  /// Density-forgetting provenance stamped into the trace's run_start
  /// record (schema v5). The behavior itself lives in the strategy's
  /// config (FactionStrategyConfig::density_window/density_decay); these
  /// mirror it so the trace records what the strategy actually ran with.
  std::size_t density_window = 0;
  double density_decay = 1.0;
  /// Scenario provenance stamped into the trace's run_start record (schema
  /// v6): the canonical scenario DSL spec the stream was generated from and
  /// its world seed. "none"/0 when the stream was built outside the
  /// scenario engine. Mirrors, like the density fields: the stream itself
  /// is already materialized by the time Run() sees it.
  std::string scenario_spec = "none";
  std::uint64_t scenario_world_seed = 0;
  std::uint64_t seed = 1;
};

/// Outcome of driving one strategy across a task stream.
struct RunResult {
  std::string strategy_name;
  std::vector<TaskMetrics> per_task;
  StreamSummary summary;
  /// Per-task regret increments f_t(D_t^U, theta_t) - f*_t(D_t^U), clamped
  /// at 0 (empty unless track_regret).
  std::vector<double> regret_increments;
  double cumulative_regret = 0.0;
  /// Cumulative fairness violation V = sum_t [v(D_t, theta_t)]_+.
  double cumulative_violation = 0.0;
  std::size_t total_queries = 0;
  double total_seconds = 0.0;
};

/// Drives Algorithm 1: per task, evaluate-then-adapt; within a task, loop
/// {train on the labeled pool, select A candidates via the strategy, query
/// them} until the budget B is exhausted. The strategy only ever sees
/// unlabeled candidates' features/sensitive/environment.
class OnlineLearner {
 public:
  /// The strategy is borrowed and must outlive Run().
  OnlineLearner(OnlineLearnerConfig config, QueryStrategy* strategy);

  /// Runs the full protocol over the task sequence.
  Result<RunResult> Run(const std::vector<Dataset>& tasks);

 private:
  OnlineLearnerConfig config_;
  QueryStrategy* strategy_;
};

}  // namespace faction

#endif  // FACTION_STREAM_ONLINE_LEARNER_H_
