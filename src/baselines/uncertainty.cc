#include "baselines/uncertainty.h"

#include <algorithm>
#include <cmath>

namespace faction {

std::vector<double> PredictiveEntropy(const Matrix& proba) {
  std::vector<double> out(proba.rows(), 0.0);
  for (std::size_t i = 0; i < proba.rows(); ++i) {
    const double* row = proba.row_data(i);
    double h = 0.0;
    for (std::size_t j = 0; j < proba.cols(); ++j) {
      if (row[j] > 1e-12) h -= row[j] * std::log(row[j]);
    }
    out[i] = h;
  }
  return out;
}

std::vector<double> MarginUncertainty(const Matrix& proba) {
  std::vector<double> out(proba.rows(), 0.0);
  for (std::size_t i = 0; i < proba.rows(); ++i) {
    const double* row = proba.row_data(i);
    double top1 = -1.0, top2 = -1.0;
    for (std::size_t j = 0; j < proba.cols(); ++j) {
      if (row[j] > top1) {
        top2 = top1;
        top1 = row[j];
      } else if (row[j] > top2) {
        top2 = row[j];
      }
    }
    out[i] = 1.0 - (top1 - std::max(top2, 0.0));
  }
  return out;
}

}  // namespace faction
