#ifndef FACTION_BASELINES_SIMPLE_STRATEGIES_H_
#define FACTION_BASELINES_SIMPLE_STRATEGIES_H_

#include <string>

#include "density/gaussian.h"
#include "stream/strategy.h"

namespace faction {

/// Naive baseline: uniformly random acquisition.
class RandomStrategy : public QueryStrategy {
 public:
  std::string name() const override { return "Random"; }
  Result<std::vector<std::size_t>> SelectBatch(
      const SelectionContext& context, std::size_t batch) override;
};

/// Classical Entropy-AL (Settles): deterministically pick the candidates
/// with the highest predictive entropy.
class EntropyStrategy : public QueryStrategy {
 public:
  std::string name() const override { return "Entropy-AL"; }
  Result<std::vector<std::size_t>> SelectBatch(
      const SelectionContext& context, std::size_t batch) override;
};

/// QuFUR (Chen et al.): active online learning that converts per-sample
/// uncertainty into a query *probability* and acquires via Bernoulli
/// trials, which makes it robust to hidden domain shifts. Our adaptation
/// uses predictive entropy as the uncertainty functional.
class QufurStrategy : public QueryStrategy {
 public:
  /// `alpha` is the query-rate multiplier (same role as FACTION's alpha).
  explicit QufurStrategy(double alpha = 3.0) : alpha_(alpha) {}
  std::string name() const override { return "QuFUR"; }
  Result<std::vector<std::size_t>> SelectBatch(
      const SelectionContext& context, std::size_t batch) override;

 private:
  double alpha_;
};

/// DDU (Mukhoti et al.): deep deterministic uncertainty. Fits a per-class
/// GDA density on the feature space of the labeled pool and queries the
/// candidates with the lowest marginal density (highest epistemic
/// uncertainty). Fairness-unaware by construction.
class DduStrategy : public QueryStrategy {
 public:
  explicit DduStrategy(const CovarianceConfig& covariance = {})
      : covariance_(covariance) {}
  std::string name() const override { return "DDU"; }
  Result<std::vector<std::size_t>> SelectBatch(
      const SelectionContext& context, std::size_t batch) override;

 private:
  CovarianceConfig covariance_;
};

}  // namespace faction

#endif  // FACTION_BASELINES_SIMPLE_STRATEGIES_H_
