#ifndef FACTION_BASELINES_DISENTANGLED_STRATEGY_H_
#define FACTION_BASELINES_DISENTANGLED_STRATEGY_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "stream/strategy.h"

namespace faction {

struct StateCodecAccess;  // serve/state_codec.cc checkpoint accessor

/// Configuration of the disentangled global/environment-specific probe.
struct DisentangledConfig {
  /// Full-batch gradient-descent passes over the labeled pool per
  /// acquisition iteration (the probe is warm-started, so a few suffice).
  int epochs = 25;
  double learning_rate = 0.5;
  /// L2 shrinkage on the per-environment deltas. This is the
  /// disentangling force: structure shared across environments is cheaper
  /// to store in the global weights, so only genuinely environment-specific
  /// variation survives in the deltas.
  double delta_l2 = 0.05;
  /// Weight of the group-rebalancing multiplier on candidate scores:
  /// score *= 1 + boost * (underrepresentation of the candidate's group in
  /// the labeled pool). 0 disables fairness awareness.
  double fairness_boost = 0.5;
};

/// Disentangled acquisition probe: a linear-logistic model whose weights
/// split into a global component w shared by every environment and an
/// additive per-environment delta_e, trained jointly on the labeled pool
/// (gradients from environment e update both w and delta_e; L2 on delta_e
/// pushes shared structure into w). Candidates are scored by the margin
/// uncertainty of the composed model (w + delta_e of the candidate's own
/// environment — an unseen environment falls back to the pure global
/// model), multiplied by a group-underrepresentation weight; the batch is
/// the deterministic top-k. Both components persist and warm-start across
/// SelectBatch calls, so the global part accumulates cross-environment
/// knowledge while each delta tracks only its environment's quirks.
class DisentangledStrategy : public QueryStrategy {
 public:
  explicit DisentangledStrategy(const DisentangledConfig& config)
      : config_(config) {}

  std::string name() const override { return "Disentangled"; }

  Result<std::vector<std::size_t>> SelectBatch(
      const SelectionContext& context, std::size_t batch) override;

  /// Environments with a fitted delta so far; exposed for tests.
  std::size_t num_environment_deltas() const { return deltas_.size(); }

 private:
  friend struct StateCodecAccess;

  DisentangledConfig config_;
  /// Global weights, size dim + 1 (last entry is the bias). Empty until
  /// the first SelectBatch with a non-empty pool.
  std::vector<double> global_;
  /// Per-environment additive deltas, same layout as global_.
  std::map<int, std::vector<double>> deltas_;
};

}  // namespace faction

#endif  // FACTION_BASELINES_DISENTANGLED_STRATEGY_H_
