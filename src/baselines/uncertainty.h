#ifndef FACTION_BASELINES_UNCERTAINTY_H_
#define FACTION_BASELINES_UNCERTAINTY_H_

#include <vector>

#include "tensor/matrix.h"

namespace faction {

/// Shannon entropy (nats) of each row of a probability matrix. The
/// classical uncertainty measure behind Entropy-AL and QuFUR's query
/// probabilities.
std::vector<double> PredictiveEntropy(const Matrix& proba);

/// Margin uncertainty: 1 - (p_top1 - p_top2) per row; higher = more
/// uncertain.
std::vector<double> MarginUncertainty(const Matrix& proba);

}  // namespace faction

#endif  // FACTION_BASELINES_UNCERTAINTY_H_
