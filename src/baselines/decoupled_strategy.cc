#include "baselines/decoupled_strategy.h"

#include <cmath>

#include "stream/selection.h"

namespace faction {

namespace {

// Gathers the sub-pool with the given sensitive value.
Dataset GroupPool(const Dataset& pool, int sensitive) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (pool.sensitive()[i] == sensitive) idx.push_back(i);
  }
  return pool.Subset(idx);
}

}  // namespace

Result<std::vector<std::size_t>> DecoupledStrategy::SelectBatch(
    const SelectionContext& context, std::size_t batch) {
  const Matrix& candidates = *context.candidate_features;
  const std::size_t n = candidates.rows();
  if (n == 0) return std::vector<std::size_t>{};

  const Dataset pool_pos = GroupPool(*context.labeled_pool, 1);
  const Dataset pool_neg = GroupPool(*context.labeled_pool, -1);
  if (pool_pos.empty() || pool_neg.empty()) {
    // One group has no labels yet: disagreement is undefined; fall back to
    // a random batch for this iteration.
    std::vector<std::size_t> perm;
    context.rng->Permutation(n, &perm);
    perm.resize(std::min(batch, n));
    return perm;
  }

  MlpConfig probe_config;
  probe_config.input_dim = candidates.cols();
  probe_config.hidden_dims = config_.probe_hidden;
  probe_config.num_classes = 2;

  TrainConfig train;
  train.epochs = config_.probe_epochs;
  train.batch_size = config_.probe_batch;
  train.learning_rate = config_.probe_lr;
  train.use_fairness_penalty = false;

  Rng rng_pos = context.rng->Fork();
  Rng rng_neg = context.rng->Fork();
  MlpClassifier probe_pos(probe_config, &rng_pos);
  MlpClassifier probe_neg(probe_config, &rng_neg);
  FACTION_RETURN_IF_ERROR(
      TrainClassifier(&probe_pos, pool_pos, train, &rng_pos).status());
  FACTION_RETURN_IF_ERROR(
      TrainClassifier(&probe_neg, pool_neg, train, &rng_neg).status());

  const Matrix proba_pos = probe_pos.PredictProba(candidates);
  const Matrix proba_neg = probe_neg.PredictProba(candidates);
  std::vector<double> disagreement(n);
  for (std::size_t i = 0; i < n; ++i) {
    disagreement[i] = std::fabs(proba_pos(i, 1) - proba_neg(i, 1));
  }

  // The threshold acts as a quality bar: every candidate whose decoupled
  // models disagree by at least alpha is equally promising, and the batch
  // is drawn uniformly among them (higher alpha = a stricter, smaller
  // candidate set). When too few pass, the batch is topped up with the
  // highest sub-threshold disagreements.
  std::vector<std::size_t> passers, rest;
  for (std::size_t i = 0; i < n; ++i) {
    (disagreement[i] >= config_.threshold ? passers : rest).push_back(i);
  }
  std::vector<std::size_t> picked;
  if (!passers.empty()) {
    std::vector<std::size_t> perm;
    context.rng->Permutation(passers.size(), &perm);
    for (std::size_t k = 0; k < perm.size() && picked.size() < batch; ++k) {
      picked.push_back(passers[perm[k]]);
    }
  }
  if (picked.size() < batch && !rest.empty()) {
    std::vector<double> rest_scores(rest.size());
    for (std::size_t k = 0; k < rest.size(); ++k) {
      rest_scores[k] = disagreement[rest[k]];
    }
    for (std::size_t k : TopK(rest_scores, batch - picked.size())) {
      picked.push_back(rest[k]);
    }
  }
  return picked;
}

}  // namespace faction
