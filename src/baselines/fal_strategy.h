#ifndef FACTION_BASELINES_FAL_STRATEGY_H_
#define FACTION_BASELINES_FAL_STRATEGY_H_

#include <string>

#include "stream/strategy.h"

namespace faction {

/// Configuration of the FAL baseline (Anahideh et al., "Fair Active
/// Learning").
struct FalConfig {
  /// Reference-set size l used to estimate Expected Fairness — the method's
  /// key trade-off parameter (Fig. 3 sweeps {64, 96, 128, 196, 256}).
  std::size_t reference_size = 128;
  /// Mixing weight between (normalized) entropy and expected-fairness gain
  /// in the final ranking.
  double entropy_weight = 0.5;
  /// Expected Fairness is evaluated only for the `candidate_factor * batch`
  /// highest-entropy candidates to bound the per-iteration cost.
  std::size_t candidate_factor = 4;
  /// Learning rate of the one-step look-ahead update.
  double lookahead_lr = 0.05;
};

/// FAL selects samples by "Expected Fairness": for each candidate it
/// simulates acquiring the label (one gradient step on a model copy for
/// each hypothetical label, weighted by the model's posterior) and measures
/// the resulting change of demographic disparity on a reference subsample.
/// This look-ahead is what makes FAL the most expensive method in the
/// paper's runtime comparison (Fig. 5a); the adaptation here preserves that
/// cost profile.
class FalStrategy : public QueryStrategy {
 public:
  explicit FalStrategy(const FalConfig& config) : config_(config) {}

  std::string name() const override { return "FAL"; }

  Result<std::vector<std::size_t>> SelectBatch(
      const SelectionContext& context, std::size_t batch) override;

 private:
  FalConfig config_;
};

}  // namespace faction

#endif  // FACTION_BASELINES_FAL_STRATEGY_H_
