#include "baselines/disentangled_strategy.h"

#include <algorithm>
#include <cmath>

#include "stream/selection.h"

namespace faction {

namespace {

double Sigmoid(double z) {
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}

/// Logit of the composed model (weights + delta) on row i; the last weight
/// slot is the bias.
double ComposedLogit(const Matrix& x, std::size_t i,
                     const std::vector<double>& w,
                     const std::vector<double>* delta) {
  const std::size_t d = x.cols();
  double z = w[d] + (delta != nullptr ? (*delta)[d] : 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    const double wj = w[j] + (delta != nullptr ? (*delta)[j] : 0.0);
    z += wj * x(i, j);
  }
  return z;
}

}  // namespace

Result<std::vector<std::size_t>> DisentangledStrategy::SelectBatch(
    const SelectionContext& context, std::size_t batch) {
  const Matrix& candidates = *context.candidate_features;
  const std::size_t n = candidates.rows();
  if (n == 0) return std::vector<std::size_t>{};
  const Dataset& pool = *context.labeled_pool;
  if (pool.empty()) {
    std::vector<std::size_t> perm;
    context.rng->Permutation(n, &perm);
    perm.resize(std::min(batch, n));
    return perm;
  }

  const Matrix& px = pool.features();
  const std::size_t d = px.cols();
  if (global_.size() != d + 1) {
    // First call (or feature-dimension change): start from zero weights;
    // stale deltas from another dimension are meaningless.
    global_.assign(d + 1, 0.0);
    deltas_.clear();
  }
  for (const int env : pool.environments()) {
    auto it = deltas_.find(env);
    if (it == deltas_.end()) deltas_.emplace(env, std::vector<double>(d + 1));
  }

  // Joint full-batch gradient descent: every sample's error updates the
  // global weights; only samples from environment e update delta_e, which
  // additionally shrinks toward zero. Full-batch keeps the probe
  // deterministic (no draw-order dependence).
  const std::size_t m = pool.size();
  const double inv_m = 1.0 / static_cast<double>(m);
  std::vector<double> grad_global(d + 1);
  std::map<int, std::vector<double>> grad_delta;
  for (const auto& [env, unused] : deltas_) {
    (void)unused;
    grad_delta.emplace(env, std::vector<double>(d + 1));
  }
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::fill(grad_global.begin(), grad_global.end(), 0.0);
    for (auto& [env, g] : grad_delta) std::fill(g.begin(), g.end(), 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      const int env = pool.environments()[i];
      const std::vector<double>& delta = deltas_.at(env);
      const double p = Sigmoid(ComposedLogit(px, i, global_, &delta));
      const double err = p - static_cast<double>(pool.labels()[i]);
      std::vector<double>& gd = grad_delta.at(env);
      for (std::size_t j = 0; j < d; ++j) {
        const double g = err * px(i, j);
        grad_global[j] += g;
        gd[j] += g;
      }
      grad_global[d] += err;
      gd[d] += err;
    }
    for (std::size_t j = 0; j <= d; ++j) {
      global_[j] -= config_.learning_rate * inv_m * grad_global[j];
    }
    for (auto& [env, delta] : deltas_) {
      const std::vector<double>& gd = grad_delta.at(env);
      for (std::size_t j = 0; j <= d; ++j) {
        delta[j] -= config_.learning_rate *
                    (inv_m * gd[j] + config_.delta_l2 * delta[j]);
      }
    }
  }

  // Group-rebalancing multiplier: candidates from the group the labeled
  // pool underrepresents get their uncertainty boosted.
  const double pool_pos_frac = pool.GroupFraction();
  std::vector<double> scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int env = (*context.candidate_environments)[i];
    const auto it = deltas_.find(env);
    const std::vector<double>* delta =
        it != deltas_.end() ? &it->second : nullptr;
    const double p = Sigmoid(ComposedLogit(candidates, i, global_, delta));
    const double uncertainty = 1.0 - std::fabs(2.0 * p - 1.0);
    const double group_frac =
        (*context.candidate_sensitive)[i] == 1 ? pool_pos_frac
                                               : 1.0 - pool_pos_frac;
    const double underrep = std::max(0.0, 0.5 - group_frac) * 2.0;
    scores[i] = uncertainty * (1.0 + config_.fairness_boost * underrep);
  }
  return TopK(scores, batch);
}

}  // namespace faction
