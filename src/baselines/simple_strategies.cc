#include "baselines/simple_strategies.h"

#include <cmath>
#include <limits>

#include "baselines/uncertainty.h"
#include "common/logging.h"
#include "density/fair_density.h"
#include "stream/selection.h"

namespace faction {

Result<std::vector<std::size_t>> RandomStrategy::SelectBatch(
    const SelectionContext& context, std::size_t batch) {
  const std::size_t n = context.candidate_features->rows();
  std::vector<std::size_t> perm;
  context.rng->Permutation(n, &perm);
  perm.resize(std::min(batch, n));
  return perm;
}

Result<std::vector<std::size_t>> EntropyStrategy::SelectBatch(
    const SelectionContext& context, std::size_t batch) {
  const Matrix proba =
      context.model->PredictProba(*context.candidate_features);
  return TopK(PredictiveEntropy(proba), batch);
}

Result<std::vector<std::size_t>> QufurStrategy::SelectBatch(
    const SelectionContext& context, std::size_t batch) {
  const Matrix proba =
      context.model->PredictProba(*context.candidate_features);
  // Uncertainty -> query probability, then Bernoulli acquisition; high
  // entropy should map to high probability, so normalize directly.
  const std::vector<double> omega =
      MinMaxNormalize(PredictiveEntropy(proba));
  return BernoulliSelect(omega, alpha_, batch, context.rng);
}

Result<std::vector<std::size_t>> DduStrategy::SelectBatch(
    const SelectionContext& context, std::size_t batch) {
  const Dataset& pool = *context.labeled_pool;
  const std::size_t n = context.candidate_features->rows();
  if (pool.empty()) {
    std::vector<std::size_t> perm;
    context.rng->Permutation(n, &perm);
    perm.resize(std::min(batch, n));
    return perm;
  }
  const Matrix pool_z = context.model->ExtractFeatures(pool.features());
  const Result<ClassDensityEstimator> fit =
      ClassDensityEstimator::Fit(pool_z, pool.labels(), covariance_);
  if (!fit.ok()) {
    FACTION_LOG(kWarning) << "DDU density fit failed ("
                          << fit.status().ToString()
                          << "); falling back to random batch";
    std::vector<std::size_t> perm;
    context.rng->Permutation(n, &perm);
    perm.resize(std::min(batch, n));
    return perm;
  }
  const Matrix cand_z =
      context.model->ExtractFeatures(*context.candidate_features);
  // Score by negative log density: the lowest-density (most epistemically
  // uncertain) candidates are queried first. Batched: one blocked solve
  // per class component for the whole candidate pool.
  const std::vector<double> lgs =
      fit.value().LogMarginalDensityBatch(cand_z);
  std::vector<double> scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    scores[i] = std::isfinite(lgs[i]) ? -lgs[i]
                                      : std::numeric_limits<double>::max();
  }
  return TopK(scores, batch);
}

}  // namespace faction
