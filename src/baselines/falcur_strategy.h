#ifndef FACTION_BASELINES_FALCUR_STRATEGY_H_
#define FACTION_BASELINES_FALCUR_STRATEGY_H_

#include <string>

#include "cluster/kmeans.h"
#include "stream/strategy.h"

namespace faction {

/// Configuration of the FAL-CUR baseline (Fajri et al.).
struct FalCurConfig {
  /// beta: weight of uncertainty versus representativeness in the
  /// per-sample score — the Fig. 3 trade-off parameter ({0.3 .. 0.7}).
  double beta = 0.5;
  /// Number of fair clusters; 0 means one cluster per acquisition slot.
  std::size_t num_clusters = 0;
  /// Admissible deviation of a cluster's group ratio from the global one.
  double balance_slack = 0.1;
  KMeansConfig kmeans;
};

/// FAL-CUR: fair clustering + uncertainty + representativeness. Candidates
/// are clustered with balance-constrained k-means on the feature space;
/// each candidate is scored beta * uncertainty + (1 - beta) *
/// representativeness (inverse distance to its centroid), and acquisition
/// round-robins over clusters taking each cluster's best remaining
/// candidate — the mechanism that spreads queries across (fair) clusters.
class FalCurStrategy : public QueryStrategy {
 public:
  explicit FalCurStrategy(const FalCurConfig& config) : config_(config) {}

  std::string name() const override { return "FAL-CUR"; }

  Result<std::vector<std::size_t>> SelectBatch(
      const SelectionContext& context, std::size_t batch) override;

 private:
  FalCurConfig config_;
};

}  // namespace faction

#endif  // FACTION_BASELINES_FALCUR_STRATEGY_H_
