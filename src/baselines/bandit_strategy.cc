#include "baselines/bandit_strategy.h"

#include <array>
#include <cmath>
#include <limits>
#include <vector>

#include "baselines/uncertainty.h"
#include "stream/selection.h"

namespace faction {

Result<std::vector<std::size_t>> BanditStrategy::SelectBatch(
    const SelectionContext& context, std::size_t batch) {
  const Matrix& candidates = *context.candidate_features;
  const std::size_t n = candidates.rows();
  if (n == 0) return std::vector<std::size_t>{};

  const Matrix proba = context.model->PredictProba(candidates);
  const std::vector<double> reward = MinMaxNormalize(PredictiveEntropy(proba));

  // Per-arm candidate queues, most informative first. TopK is descending
  // with index tie-breaks, so the whole selection is deterministic.
  std::array<std::vector<std::size_t>, 2> queue;
  {
    std::array<std::vector<std::size_t>, 2> members;
    std::array<std::vector<double>, 2> scores;
    for (std::size_t i = 0; i < n; ++i) {
      const int arm = (*context.candidate_sensitive)[i] == 1 ? 0 : 1;
      members[arm].push_back(i);
      scores[arm].push_back(reward[i]);
    }
    for (int arm = 0; arm < 2; ++arm) {
      for (const std::size_t k : TopK(scores[arm], members[arm].size())) {
        queue[arm].push_back(members[arm][k]);
      }
    }
  }

  // Age the arm statistics once per acquisition iteration so a regime
  // where one group stopped being informative decays out of the estimates.
  for (int arm = 0; arm < 2; ++arm) {
    pulls_[arm] *= config_.discount;
    reward_sum_[arm] *= config_.discount;
  }

  std::vector<std::size_t> picked;
  picked.reserve(std::min(batch, n));
  std::array<std::size_t, 2> next = {0, 0};
  while (picked.size() < std::min(batch, n)) {
    const double total = pulls_[0] + pulls_[1];
    int best_arm = -1;
    double best_ucb = 0.0;
    for (int arm = 0; arm < 2; ++arm) {
      if (next[arm] >= queue[arm].size()) continue;  // arm exhausted
      double ucb;
      if (pulls_[arm] <= 1e-12) {
        // Never pulled (or fully decayed): explore unconditionally.
        ucb = std::numeric_limits<double>::infinity();
      } else {
        ucb = reward_sum_[arm] / pulls_[arm] +
              config_.exploration *
                  std::sqrt(std::log(total + 1.0) / pulls_[arm]);
      }
      if (best_arm < 0 || ucb > best_ucb) {  // ties keep the s=+1 arm
        best_arm = arm;
        best_ucb = ucb;
      }
    }
    if (best_arm < 0) break;  // both queues exhausted
    const std::size_t idx = queue[best_arm][next[best_arm]++];
    picked.push_back(idx);
    pulls_[best_arm] += 1.0;
    reward_sum_[best_arm] += reward[idx];
  }
  return picked;
}

}  // namespace faction
