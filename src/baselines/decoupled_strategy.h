#ifndef FACTION_BASELINES_DECOUPLED_STRATEGY_H_
#define FACTION_BASELINES_DECOUPLED_STRATEGY_H_

#include <memory>
#include <string>

#include "nn/trainer.h"
#include "stream/strategy.h"

namespace faction {

/// Configuration of the Decoupled baseline (D-FA^2L, Cao & Lan).
struct DecoupledConfig {
  /// Disagreement threshold alpha: candidates whose two group models
  /// disagree by at least this much are preferred (Fig. 3 sweeps
  /// {0.1 .. 0.8}).
  double threshold = 0.2;
  /// Architecture of the two lightweight per-group probes.
  std::vector<std::size_t> probe_hidden = {16};
  /// Training recipe for the probes at each acquisition iteration.
  int probe_epochs = 2;
  double probe_lr = 0.05;
  std::size_t probe_batch = 32;
};

/// Decoupled fairness-aware AL: two probe models are fitted on the labeled
/// pool restricted to each sensitive group; candidates where the two
/// decoupled models disagree most about the positive-class probability are
/// the most promising for fairness (the groups are treated differently
/// there). Candidates above the threshold are ranked by disagreement; the
/// batch is topped up with the next-highest disagreements if too few pass.
class DecoupledStrategy : public QueryStrategy {
 public:
  explicit DecoupledStrategy(const DecoupledConfig& config)
      : config_(config) {}

  std::string name() const override { return "Decoupled"; }

  Result<std::vector<std::size_t>> SelectBatch(
      const SelectionContext& context, std::size_t batch) override;

 private:
  DecoupledConfig config_;
};

}  // namespace faction

#endif  // FACTION_BASELINES_DECOUPLED_STRATEGY_H_
