#ifndef FACTION_BASELINES_BANDIT_STRATEGY_H_
#define FACTION_BASELINES_BANDIT_STRATEGY_H_

#include <array>
#include <string>

#include "stream/strategy.h"

namespace faction {

struct StateCodecAccess;  // serve/state_codec.cc checkpoint accessor

/// Configuration of the FALCON-style bandit acquisition strategy.
struct BanditConfig {
  /// UCB exploration coefficient (the bonus weight in front of
  /// sqrt(ln T / n_a)).
  double exploration = 1.0;
  /// Per-call discount applied to every arm's pull count and reward sum
  /// (discounted UCB, Garivier & Moulines). 1 = classical UCB1; values
  /// below 1 let arm statistics age out, which is what keeps the bandit
  /// responsive when an environment change flips which group is the more
  /// informative one.
  double discount = 0.98;
};

/// FALCON-style multi-armed-bandit acquisition: each sensitive group is an
/// arm, the payoff of pulling an arm is the (min-max normalized) predictive
/// entropy of the best remaining candidate in that group, and the batch is
/// assembled one pull at a time by discounted UCB. The bandit learns online
/// which group currently yields the most informative labels and shifts
/// budget there, while the UCB bonus keeps probing the other group — a
/// label-efficiency route to group balance that never hard-codes quotas.
/// Arm statistics persist across SelectBatch calls (and so across tasks).
/// Fully deterministic: ties break toward the s=+1 arm and lower candidate
/// index.
class BanditStrategy : public QueryStrategy {
 public:
  explicit BanditStrategy(const BanditConfig& config) : config_(config) {}

  std::string name() const override { return "Bandit"; }

  Result<std::vector<std::size_t>> SelectBatch(
      const SelectionContext& context, std::size_t batch) override;

  /// Discounted pull count of the arm for sensitive value +1 (index 0) or
  /// -1 (index 1); exposed for tests.
  double arm_pulls(int arm) const { return pulls_[arm]; }

 private:
  friend struct StateCodecAccess;

  BanditConfig config_;
  /// Discounted arm statistics; index 0 = group s=+1, 1 = group s=-1.
  std::array<double, 2> pulls_ = {0.0, 0.0};
  std::array<double, 2> reward_sum_ = {0.0, 0.0};
};

}  // namespace faction

#endif  // FACTION_BASELINES_BANDIT_STRATEGY_H_
