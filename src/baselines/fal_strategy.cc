#include "baselines/fal_strategy.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "baselines/uncertainty.h"
#include "fairness/metrics.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "stream/selection.h"

namespace faction {

namespace {

// |DDP| of the model's hard predictions over the reference rows; 0 when a
// group is missing.
double ReferenceDisparity(const FeatureClassifier& model, const Matrix& refs,
                          const std::vector<int>& ref_sensitive) {
  const std::vector<int> yhat = model.Predict(refs);
  const Result<double> ddp = DemographicParityDifference(yhat, ref_sensitive);
  return ddp.ok() ? ddp.value() : 0.0;
}

// One SGD step on the single example (x, y) applied to a copy of `model`;
// returns the updated copy.
std::unique_ptr<FeatureClassifier> LookaheadStep(
    const FeatureClassifier& model, const std::vector<double>& x, int y,
    double lr, Rng* rng) {
  std::unique_ptr<FeatureClassifier> copy = model.CloneArchitecture(rng);
  copy->CopyParametersFrom(model);
  Matrix batch = Matrix::FromRowVector(x);
  const Matrix logits = copy->Forward(batch);
  Matrix dlogits;
  SoftmaxCrossEntropy(logits, {y}, &dlogits);
  copy->ZeroGrad();
  copy->Backward(dlogits);
  SgdOptimizer opt(lr);
  opt.Step(copy->Parameters(), copy->Gradients());
  return copy;
}

}  // namespace

Result<std::vector<std::size_t>> FalStrategy::SelectBatch(
    const SelectionContext& context, std::size_t batch) {
  const Matrix& candidates = *context.candidate_features;
  const std::vector<int>& sensitive = *context.candidate_sensitive;
  const std::size_t n = candidates.rows();
  if (n == 0) return std::vector<std::size_t>{};

  const Matrix proba = context.model->PredictProba(candidates);
  const std::vector<double> entropy = PredictiveEntropy(proba);

  // Reference subsample of size l drawn from the candidate pool: the set on
  // which fairness impact is measured.
  const std::size_t l = std::min(config_.reference_size, n);
  std::vector<std::size_t> perm;
  context.rng->Permutation(n, &perm);
  Matrix refs(l, candidates.cols());
  std::vector<int> ref_sensitive(l);
  for (std::size_t i = 0; i < l; ++i) {
    std::copy(candidates.row_data(perm[i]),
              candidates.row_data(perm[i]) + candidates.cols(),
              refs.row_data(i));
    ref_sensitive[i] = sensitive[perm[i]];
  }
  const double base_disparity =
      ReferenceDisparity(*context.model, refs, ref_sensitive);

  // Expected Fairness is evaluated for the highest-entropy shortlist only.
  const std::size_t shortlist_size =
      std::min(n, std::max(batch, config_.candidate_factor * batch));
  const std::vector<std::size_t> shortlist = TopK(entropy, shortlist_size);

  std::vector<double> fairness_gain(n, 0.0);
  for (std::size_t pos : shortlist) {
    const std::vector<double> x = candidates.Row(pos);
    double expected_disparity = 0.0;
    for (int y = 0; y < 2; ++y) {
      const double weight = proba(pos, static_cast<std::size_t>(y));
      if (weight < 1e-4) continue;  // negligible branch
      const std::unique_ptr<FeatureClassifier> updated = LookaheadStep(
          *context.model, x, y, config_.lookahead_lr, context.rng);
      expected_disparity +=
          weight * ReferenceDisparity(*updated, refs, ref_sensitive);
    }
    fairness_gain[pos] = base_disparity - expected_disparity;
  }

  // Final ranking: normalized entropy blended with normalized expected
  // fairness gain; only shortlisted candidates can win the fairness term.
  const std::vector<double> entropy_norm = MinMaxNormalize(entropy);
  const std::vector<double> gain_norm = MinMaxNormalize(fairness_gain);
  std::vector<double> score(n);
  for (std::size_t i = 0; i < n; ++i) {
    score[i] = config_.entropy_weight * entropy_norm[i] +
               (1.0 - config_.entropy_weight) * gain_norm[i];
  }
  return TopK(score, batch);
}

}  // namespace faction
