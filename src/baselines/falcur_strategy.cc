#include "baselines/falcur_strategy.h"

#include <algorithm>
#include <cmath>

#include "baselines/uncertainty.h"
#include "stream/selection.h"
#include "tensor/ops.h"

namespace faction {

Result<std::vector<std::size_t>> FalCurStrategy::SelectBatch(
    const SelectionContext& context, std::size_t batch) {
  const Matrix& candidates = *context.candidate_features;
  const std::size_t n = candidates.rows();
  if (n == 0) return std::vector<std::size_t>{};
  if (n <= batch) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }

  // Fair clustering over the learned feature space.
  const Matrix features = context.model->ExtractFeatures(candidates);
  KMeansConfig kconfig = config_.kmeans;
  kconfig.k = config_.num_clusters > 0 ? config_.num_clusters : batch;
  FACTION_ASSIGN_OR_RETURN(
      Clustering clustering,
      FairKMeans(features, *context.candidate_sensitive, kconfig,
                 config_.balance_slack, context.rng));

  // Uncertainty and representativeness per candidate.
  const Matrix proba = context.model->PredictProba(candidates);
  const std::vector<double> uncertainty =
      MinMaxNormalize(PredictiveEntropy(proba));
  std::vector<double> dist(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = clustering.assignment[i];
    double acc = 0.0;
    for (std::size_t j = 0; j < features.cols(); ++j) {
      const double d = features(i, j) - clustering.centroids(c, j);
      acc += d * d;
    }
    dist[i] = std::sqrt(acc);
  }
  // Representativeness: closer to the centroid = more representative.
  std::vector<double> representativeness = MinMaxNormalize(dist);
  for (double& r : representativeness) r = 1.0 - r;

  std::vector<double> score(n);
  for (std::size_t i = 0; i < n; ++i) {
    score[i] = config_.beta * uncertainty[i] +
               (1.0 - config_.beta) * representativeness[i];
  }

  // Round-robin across clusters, each time taking the cluster's best
  // remaining candidate, so the batch spans the (balanced) clusters.
  const std::size_t k = clustering.centroids.rows();
  std::vector<std::vector<std::size_t>> by_cluster(k);
  for (std::size_t i = 0; i < n; ++i) {
    by_cluster[clustering.assignment[i]].push_back(i);
  }
  for (auto& members : by_cluster) {
    std::stable_sort(members.begin(), members.end(),
                     [&](std::size_t a, std::size_t b) {
                       return score[a] > score[b];
                     });
  }
  std::vector<std::size_t> picked;
  std::vector<std::size_t> cursor(k, 0);
  while (picked.size() < batch) {
    bool advanced = false;
    for (std::size_t c = 0; c < k && picked.size() < batch; ++c) {
      if (cursor[c] < by_cluster[c].size()) {
        picked.push_back(by_cluster[c][cursor[c]++]);
        advanced = true;
      }
    }
    if (!advanced) break;
  }
  return picked;
}

}  // namespace faction
