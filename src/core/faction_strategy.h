#ifndef FACTION_CORE_FACTION_STRATEGY_H_
#define FACTION_CORE_FACTION_STRATEGY_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/workspace.h"

#include "core/fair_score.h"
#include "density/fair_density.h"
#include "density/gaussian.h"
#include "stream/selection.h"
#include "stream/strategy.h"

namespace faction {

/// Configuration of the FACTION query strategy (Sec. IV-C/IV-D).
struct FactionStrategyConfig {
  /// lambda of Eq. 6: trade-off between epistemic uncertainty g(z) and the
  /// weighted unfairness term.
  double lambda = 1.0;
  /// alpha of Algorithm 1 line 29: query-rate multiplier in the Bernoulli
  /// trials.
  double alpha = 3.0;
  /// Ablation switch: with false, the Delta g_c term is dropped from u(x)
  /// ("w/o Fair Select").
  bool fair_select = true;
  /// Covariance regularization for the GDA components.
  CovarianceConfig covariance;
  /// When true (the default), the GDA estimator is refitted incrementally
  /// between acquisition rounds: only the features of rows labeled since
  /// the last fit are extracted and folded into the per-component
  /// sufficient statistics (O(new * d^2) plus one Cholesky per touched
  /// component), instead of re-extracting and re-scanning the whole pool.
  /// Old rows keep the feature embedding they had when absorbed, so the
  /// estimator drifts from the retrained extractor; a full refit every
  /// `density_resync_interval` rounds bounds that staleness. With false,
  /// every round performs the batch fit (the parity oracle).
  bool incremental_density = true;
  /// Incremental rounds between full batch refits (staleness bound).
  std::size_t density_resync_interval = 8;
  /// Sliding window over the density estimator (DESIGN.md §15): when > 0,
  /// only the last `density_window` labeled rows contribute to the GDA
  /// components. The incremental path evicts the oldest folded embedding
  /// via a rank-1 Cholesky downdate (O(d^2)) per fold past the window;
  /// full (re)fits use exactly the window's rows — so with
  /// incremental_density = false every round is the windowed batch oracle
  /// the incremental path is parity-tested against. Implies
  /// forgetting-mode covariance. 0 disables.
  std::size_t density_window = 0;
  /// Exponential forgetting: each folded row first scales the estimator's
  /// absorbed mass by this factor (factors untouched). In (0, 1]; 1
  /// disables. Composes with `density_window` (evictions use decayed
  /// weights). Also implies forgetting-mode covariance.
  double density_decay = 1.0;
  /// Optional display-name override (used by the ablation benches).
  std::string name_override;
};

/// FACTION's sample selection: fit the (class x sensitive) GDA density
/// estimator on the labeled pool's feature space, score every candidate by
/// Eq. 6, convert to probabilities via Eq. 7, and acquire with Bernoulli
/// trials (Algorithm 1 lines 19-36).
///
/// The fairness *regularizer* half of FACTION lives in the learner's
/// TrainConfig (use_fairness_penalty); see MakeFactionLearnerConfig in
/// core/presets.h for the standard pairing.
class FactionStrategy : public QueryStrategy {
 public:
  explicit FactionStrategy(const FactionStrategyConfig& config);

  std::string name() const override;

  Result<std::vector<std::size_t>> SelectBatch(
      const SelectionContext& context, std::size_t batch) override;

 private:
  /// Returns the estimator to score with: the incremental path folds newly
  /// labeled rows into the cached estimator, falling back to (and
  /// periodically resyncing with) the full batch fit. Returns nullptr when
  /// no estimator can be fitted (degenerate pool) — callers fall back to
  /// random acquisition.
  const FairDensityEstimator* EstimatorFor(const SelectionContext& context);

  /// Folds one embedded row into the cached estimator under the window/
  /// decay discipline (decay, evict-if-full, fold, record). Ok-status on
  /// the plain grow-only path too, so the incremental branch shares one
  /// call site.
  Status FoldOne(const double* z, int label, int sensitive);

  FactionStrategyConfig config_;
  // Incremental-refit state: the cached estimator, how many pool rows it
  // has absorbed, and how many incremental rounds since the last full fit.
  std::optional<FairDensityEstimator> estimator_;
  std::size_t fitted_rows_ = 0;
  std::size_t updates_since_fit_ = 0;
  // Sliding-window state (density_window > 0): ring of folded embeddings
  // with labels/sensitive values and decayed weights; ring_start_ is the
  // oldest entry. Sized at the first windowed fit.
  Matrix ring_z_;
  std::vector<int> ring_label_;
  std::vector<int> ring_sensitive_;
  std::vector<double> ring_weight_;
  std::size_t ring_start_ = 0;
  std::size_t ring_size_ = 0;
  // Per-iteration scoring/selection buffers, reused across SelectBatch
  // calls so steady-state acquisition allocates only the returned indices.
  // The workspace arena holds the candidate feature/probability matrices
  // (unique_ptr so the strategy stays movable); scores_ keeps its capacity
  // across rounds.
  FactionScoreScratch score_scratch_;
  SelectionScratch selection_scratch_;
  std::vector<double> u_scratch_;
  std::vector<FactionScore> scores_;
  std::unique_ptr<Workspace> workspace_;
};

}  // namespace faction

#endif  // FACTION_CORE_FACTION_STRATEGY_H_
