#ifndef FACTION_CORE_FACTION_STRATEGY_H_
#define FACTION_CORE_FACTION_STRATEGY_H_

#include <string>

#include "core/fair_score.h"
#include "density/gaussian.h"
#include "stream/strategy.h"

namespace faction {

/// Configuration of the FACTION query strategy (Sec. IV-C/IV-D).
struct FactionStrategyConfig {
  /// lambda of Eq. 6: trade-off between epistemic uncertainty g(z) and the
  /// weighted unfairness term.
  double lambda = 1.0;
  /// alpha of Algorithm 1 line 29: query-rate multiplier in the Bernoulli
  /// trials.
  double alpha = 3.0;
  /// Ablation switch: with false, the Delta g_c term is dropped from u(x)
  /// ("w/o Fair Select").
  bool fair_select = true;
  /// Covariance regularization for the GDA components.
  CovarianceConfig covariance;
  /// Optional display-name override (used by the ablation benches).
  std::string name_override;
};

/// FACTION's sample selection: fit the (class x sensitive) GDA density
/// estimator on the labeled pool's feature space, score every candidate by
/// Eq. 6, convert to probabilities via Eq. 7, and acquire with Bernoulli
/// trials (Algorithm 1 lines 19-36).
///
/// The fairness *regularizer* half of FACTION lives in the learner's
/// TrainConfig (use_fairness_penalty); see MakeFactionLearnerConfig in
/// core/presets.h for the standard pairing.
class FactionStrategy : public QueryStrategy {
 public:
  explicit FactionStrategy(const FactionStrategyConfig& config);

  std::string name() const override;

  Result<std::vector<std::size_t>> SelectBatch(
      const SelectionContext& context, std::size_t batch) override;

 private:
  FactionStrategyConfig config_;
};

}  // namespace faction

#endif  // FACTION_CORE_FACTION_STRATEGY_H_
