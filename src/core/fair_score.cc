// FACTION_HOT: pool scoring runs every acquisition iteration under the
// steady-state allocation ban; allocating idioms here are lint findings
// (tools/lint.py no-alloc-in-hot, DESIGN.md §13).
#include "core/fair_score.h"

#include <array>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/parallel.h"
#include "stream/selection.h"
#include "tensor/ops.h"

namespace faction {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// log |e^a - e^b| computed stably; -inf when either input is -inf or the
// difference vanishes.
double LogAbsExpDiff(double a, double b) {
  if (!std::isfinite(a) || !std::isfinite(b)) {
    if (std::isfinite(a)) return a;  // |e^a - 0|
    if (std::isfinite(b)) return b;
    return kNegInf;
  }
  const double hi = a > b ? a : b;
  const double lo = a > b ? b : a;
  const double gap = hi - lo;
  if (gap < 1e-300) return kNegInf;  // identical densities
  // |e^hi - e^lo| = e^hi * (1 - e^{-gap}).
  return hi + std::log1p(-std::exp(-gap));
}

// Min-max normalizes `values` into *out, treating -inf entries as the
// minimum: they map to 0. All-(-inf) or constant batches map to all-0.5
// (every candidate equally preferable on this term). Writes through a
// caller-provided buffer so per-iteration pool scoring allocates nothing.
void NormalizeLogTermInto(const std::vector<double>& values,
                          std::vector<double>* out) {
  double mn = std::numeric_limits<double>::infinity();
  double mx = kNegInf;
  for (double v : values) {
    if (!std::isfinite(v)) continue;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  out->assign(values.size(), 0.5);
  double* o = out->data();
  if (!std::isfinite(mx) || mx - mn < 1e-300) {
    // No finite spread; but map -inf (no signal) below the rest.
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (!std::isfinite(values[i]) && std::isfinite(mx)) o[i] = 0.0;
    }
    return;
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    o[i] = std::isfinite(values[i]) ? (values[i] - mn) / (mx - mn) : 0.0;
  }
}

}  // namespace

Status ComputeFactionScoresInto(const FairDensityEstimator& estimator,
                                const Matrix& features,
                                const Matrix& class_proba, double lambda,
                                bool fair_select,
                                FactionScoreScratch* scratch,
                                std::vector<FactionScore>* out_scores) {
  FACTION_CHECK(out_scores != nullptr);
  const std::size_t n = features.rows();
  constexpr int kClasses = FairDensityEstimator::kNumClasses;
  if (class_proba.rows() != n ||
      class_proba.cols() != static_cast<std::size_t>(kClasses)) {
    return Status::InvalidArgument(
        "ComputeFactionScores: class_proba shape mismatch");
  }
  if (features.cols() != estimator.dim()) {
    return Status::InvalidArgument(
        "ComputeFactionScores: feature dimension mismatch");
  }

  std::vector<FactionScore>& out = *out_scores;
  out.resize(n);  // every field of every element is overwritten below
  if (n == 0) return Status::Ok();

  // One batched component pass for the whole pool: each present component's
  // log-densities come from a single blocked triangular solve
  // (density/gaussian.cc) instead of per-sample solves with per-call
  // temporaries. The marginal and the fairness term both read this matrix,
  // so fair selection no longer re-evaluates any Gaussian — the legacy
  // per-sample path solved every component a second time through
  // ComponentLogDensities when fair_select was on.
  FactionScoreScratch local;
  FactionScoreScratch* s = scratch != nullptr ? scratch : &local;
  Matrix& comp = s->component_logpdf;
  estimator.ComponentLogPdfBatch(features, &comp);

  std::vector<double>& log_density = s->log_density;
  std::vector<double>& log_unfair = s->log_unfair;
  log_density.resize(n);
  log_unfair.assign(n, kNegInf);
  estimator.LogMarginalFromComponents(comp, log_density.data());

  if (fair_select) {
    constexpr std::size_t kScoreGrain = 1024;
    ParallelFor(0, n, kScoreGrain, [&](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        // log sum_c p_c * Delta g_c(z) via log-sum-exp over classes
        // (Eqs. 4-6), allocation-free on the per-sample path.
        std::array<double, kClasses> terms;
        std::size_t nt = 0;
        const double* crow = comp.row_data(i);
        for (int c = 0; c < kClasses; ++c) {
          const double lp = crow[FairDensityEstimator::ComponentIndex(c, 1)];
          const double ln = crow[FairDensityEstimator::ComponentIndex(c, -1)];
          const double log_delta = LogAbsExpDiff(lp, ln);
          const double pc = class_proba(i, static_cast<std::size_t>(c));
          if (std::isfinite(log_delta) && pc > 1e-12) {
            terms[nt++] = std::log(pc) + log_delta;
          }
        }
        if (nt > 0) log_unfair[i] = LogSumExp(terms.data(), nt);
      }
    });
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i].log_density = log_density[i];
    out[i].log_unfairness = log_unfair[i];
  }

  NormalizeLogTermInto(log_density, &s->density_norm);
  NormalizeLogTermInto(log_unfair, &s->unfair_norm);
  const std::vector<double>& density_norm = s->density_norm;
  const std::vector<double>& unfair_norm = s->unfair_norm;
  for (std::size_t i = 0; i < n; ++i) {
    out[i].u = density_norm[i] -
               (fair_select ? lambda * unfair_norm[i] : 0.0);
    // Eq. 6 query scores feed directly into top-k selection; a NaN here
    // would silently poison the acquisition ranking.
    FACTION_DCHECK_FINITE(out[i].u);
  }
  return Status::Ok();
}

// FACTION_COLD_BEGIN: value-returning convenience wrapper (tests, one-off
// callers); the pipeline uses the Into variant with loop-carried storage.
Result<std::vector<FactionScore>> ComputeFactionScores(
    const FairDensityEstimator& estimator, const Matrix& features,
    const Matrix& class_proba, double lambda, bool fair_select,
    FactionScoreScratch* scratch) {
  std::vector<FactionScore> out;
  FACTION_RETURN_IF_ERROR(ComputeFactionScoresInto(
      estimator, features, class_proba, lambda, fair_select, scratch, &out));
  return out;
}
// FACTION_COLD_END

}  // namespace faction
