#include "core/fair_score.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "stream/selection.h"
#include "tensor/ops.h"

namespace faction {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// log |e^a - e^b| computed stably; -inf when either input is -inf or the
// difference vanishes.
double LogAbsExpDiff(double a, double b) {
  if (!std::isfinite(a) || !std::isfinite(b)) {
    if (std::isfinite(a)) return a;  // |e^a - 0|
    if (std::isfinite(b)) return b;
    return kNegInf;
  }
  const double hi = a > b ? a : b;
  const double lo = a > b ? b : a;
  const double gap = hi - lo;
  if (gap < 1e-300) return kNegInf;  // identical densities
  // |e^hi - e^lo| = e^hi * (1 - e^{-gap}).
  return hi + std::log1p(-std::exp(-gap));
}

// Min-max normalizes `values` treating -inf entries as the minimum: they
// map to 0. All-(-inf) or constant batches map to all-0.5 (every candidate
// equally preferable on this term).
std::vector<double> NormalizeLogTerm(const std::vector<double>& values) {
  double mn = std::numeric_limits<double>::infinity();
  double mx = kNegInf;
  for (double v : values) {
    if (!std::isfinite(v)) continue;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  std::vector<double> out(values.size(), 0.5);
  if (!std::isfinite(mx) || mx - mn < 1e-300) {
    // No finite spread; but map -inf (no signal) below the rest.
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (!std::isfinite(values[i]) && std::isfinite(mx)) out[i] = 0.0;
    }
    return out;
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] =
        std::isfinite(values[i]) ? (values[i] - mn) / (mx - mn) : 0.0;
  }
  return out;
}

}  // namespace

Result<std::vector<FactionScore>> ComputeFactionScores(
    const FairDensityEstimator& estimator, const Matrix& features,
    const Matrix& class_proba, double lambda, bool fair_select) {
  const std::size_t n = features.rows();
  constexpr int kClasses = FairDensityEstimator::kNumClasses;
  if (class_proba.rows() != n ||
      class_proba.cols() != static_cast<std::size_t>(kClasses)) {
    return Status::InvalidArgument(
        "ComputeFactionScores: class_proba shape mismatch");
  }
  if (features.cols() != estimator.dim()) {
    return Status::InvalidArgument(
        "ComputeFactionScores: feature dimension mismatch");
  }

  std::vector<FactionScore> out(n);
  std::vector<double> log_density(n), log_unfair(n, kNegInf);
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<double> z = features.Row(i);
    log_density[i] = estimator.LogMarginalDensity(z);
    if (fair_select) {
      // log sum_c p_c * Delta g_c(z) via log-sum-exp over classes. The
      // Delta g components are only evaluated when fair selection is on —
      // this is the genuine extra cost of FACTION's fairness term over
      // pure epistemic scoring (Fig. 5b's "w/o fair select" gap).
      std::vector<double> terms;
      terms.reserve(kClasses);
      for (int c = 0; c < kClasses; ++c) {
        double lp = 0.0, ln = 0.0;
        estimator.ComponentLogDensities(z, c, &lp, &ln);
        const double log_delta = LogAbsExpDiff(lp, ln);
        const double pc = class_proba(i, static_cast<std::size_t>(c));
        if (std::isfinite(log_delta) && pc > 1e-12) {
          terms.push_back(std::log(pc) + log_delta);
        }
      }
      if (!terms.empty()) log_unfair[i] = LogSumExp(terms);
    }
    out[i].log_density = log_density[i];
    out[i].log_unfairness = log_unfair[i];
  }

  const std::vector<double> density_norm = NormalizeLogTerm(log_density);
  const std::vector<double> unfair_norm = NormalizeLogTerm(log_unfair);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].u = density_norm[i] -
               (fair_select ? lambda * unfair_norm[i] : 0.0);
    // Eq. 6 query scores feed directly into top-k selection; a NaN here
    // would silently poison the acquisition ranking.
    FACTION_DCHECK_FINITE(out[i].u);
  }
  return out;
}

}  // namespace faction
