// FACTION_HOT: SelectBatch's scoring region runs under the count-mode
// allocation ban every acquisition; allocating idioms here are lint
// findings (tools/lint.py no-alloc-in-hot, DESIGN.md §13). Density
// (re)fitting and the degenerate-pool fallbacks sit inside FACTION_COLD
// fences — they are per-round or off the steady state by design.
#include "core/faction_strategy.h"

#include <algorithm>

#include "common/alloc_audit.h"
#include "common/check.h"
#include "common/logging.h"
#include "common/telemetry.h"
#include "stream/selection.h"

namespace faction {

// FACTION_COLD_BEGIN: one-time construction.
FactionStrategy::FactionStrategy(const FactionStrategyConfig& config)
    : config_(config), workspace_(std::make_unique<Workspace>()) {
  FACTION_CHECK(config_.density_decay > 0.0 && config_.density_decay <= 1.0);
  if (config_.density_window > 0 || config_.density_decay < 1.0) {
    // Windowed/decayed estimators need the rank-1-maintainable ridge
    // regularization (DESIGN.md §15).
    config_.covariance.forgetting = true;
  }
}
// FACTION_COLD_END

std::string FactionStrategy::name() const {
  if (!config_.name_override.empty()) return config_.name_override;
  return config_.fair_select ? "FACTION" : "FACTION(w/o fair select)";
}

// FACTION_COLD_BEGIN: density maintenance — incremental folds amortize over
// the resync interval and full refits over a round; both allocate.
Status FactionStrategy::FoldOne(const double* z, int label, int sensitive) {
  if (config_.density_decay < 1.0) {
    estimator_->Decay(config_.density_decay);
    for (std::size_t i = 0; i < ring_size_; ++i) {
      ring_weight_[(ring_start_ + i) % config_.density_window] *=
          config_.density_decay;
    }
  }
  if (config_.density_window > 0 && ring_size_ >= config_.density_window) {
    // Evict the oldest folded embedding (rank-1 downdate at its decayed
    // weight) before absorbing the new one.
    const std::size_t slot = ring_start_;
    ring_start_ = (ring_start_ + 1) % config_.density_window;
    --ring_size_;
    FACTION_RETURN_IF_ERROR(estimator_->DowndateOne(
        ring_z_.row_data(slot), ring_label_[slot], ring_sensitive_[slot],
        config_.covariance, ring_weight_[slot]));
    TelemetryCount("faction.window_evictions");
  }
  FACTION_RETURN_IF_ERROR(
      estimator_->UpdateOne(z, label, sensitive, config_.covariance));
  if (config_.density_window > 0) {
    const std::size_t slot =
        (ring_start_ + ring_size_) % config_.density_window;
    std::copy(z, z + ring_z_.cols(), ring_z_.row_data(slot));
    ring_label_[slot] = label;
    ring_sensitive_[slot] = sensitive;
    ring_weight_[slot] = 1.0;
    ++ring_size_;
  }
  return Status::Ok();
}

const FairDensityEstimator* FactionStrategy::EstimatorFor(
    const SelectionContext& context) {
  const Dataset& pool = *context.labeled_pool;
  bool need_full = !config_.incremental_density || !estimator_.has_value() ||
                   pool.size() < fitted_rows_ ||
                   updates_since_fit_ >= config_.density_resync_interval;
  if (!need_full) {
    if (pool.size() == fitted_rows_) {
      // Pool unchanged since the last (re)fit: the cache is current.
      return &estimator_.value();
    }
    // Fold only the rows labeled since the last fit, embedded in the
    // *current* feature space. Rows absorbed earlier keep their older
    // embeddings — the staleness the resync interval bounds.
    const std::size_t added = pool.size() - fitted_rows_;
    Matrix fresh(added, pool.dim());
    std::vector<int> labels(added), sensitive(added);
    for (std::size_t i = 0; i < added; ++i) {
      const std::size_t idx = fitted_rows_ + i;
      std::copy(pool.features().row_data(idx),
                pool.features().row_data(idx) + pool.dim(),
                fresh.row_data(i));
      labels[i] = pool.labels()[idx];
      sensitive[i] = pool.sensitive()[idx];
    }
    const Matrix fresh_z = context.model->ExtractFeatures(fresh);
    Status updated = Status::Ok();
    if (config_.density_window == 0 && config_.density_decay >= 1.0) {
      // Grow-only path: one batched fold (bitwise-unchanged legacy).
      updated =
          estimator_->Update(fresh_z, labels, sensitive, config_.covariance);
    } else {
      // Window/decay discipline is per row: decay, evict-if-full, fold.
      for (std::size_t i = 0; i < added && updated.ok(); ++i) {
        updated = FoldOne(fresh_z.row_data(i), labels[i], sensitive[i]);
      }
    }
    if (updated.ok()) {
      fitted_rows_ = pool.size();
      ++updates_since_fit_;
      TelemetryCount("faction.density_incremental_refit");
      return &estimator_.value();
    }
    // A failed update leaves the statistics partially folded: discard the
    // cache and resync with a full batch fit below.
    FACTION_LOG(kWarning) << "FACTION incremental density update failed ("
                          << updated.ToString()
                          << "); falling back to full refit";
    need_full = true;
  }

  Result<FairDensityEstimator> fit = [&]() -> Result<FairDensityEstimator> {
    if (config_.density_window == 0) {
      const Matrix pool_z = context.model->ExtractFeatures(pool.features());
      return FairDensityEstimator::Fit(pool_z, pool.labels(),
                                       pool.sensitive(), config_.covariance);
    }
    // Windowed batch fit: exactly the last min(W, pool) labeled rows,
    // embedded by the current extractor — the oracle the incremental
    // evict/fold path is parity-tested against. The ring re-seeds from
    // the same embeddings at unit weight.
    const std::size_t wn = std::min(config_.density_window, pool.size());
    const std::size_t first = pool.size() - wn;
    Matrix wx(wn, pool.dim());
    std::vector<int> wlabels(wn), wsensitive(wn);
    for (std::size_t i = 0; i < wn; ++i) {
      std::copy(pool.features().row_data(first + i),
                pool.features().row_data(first + i) + pool.dim(),
                wx.row_data(i));
      wlabels[i] = pool.labels()[first + i];
      wsensitive[i] = pool.sensitive()[first + i];
    }
    const Matrix wz = context.model->ExtractFeatures(wx);
    Result<FairDensityEstimator> windowed = FairDensityEstimator::Fit(
        wz, wlabels, wsensitive, config_.covariance);
    if (windowed.ok()) {
      if (ring_z_.rows() != config_.density_window) {
        ring_z_ = Matrix(config_.density_window, wz.cols());
        ring_label_.assign(config_.density_window, 0);
        ring_sensitive_.assign(config_.density_window, 0);
        ring_weight_.assign(config_.density_window, 0.0);
      }
      ring_start_ = 0;
      ring_size_ = 0;
      for (std::size_t i = 0; i < wn; ++i) {
        std::copy(wz.row_data(i), wz.row_data(i) + wz.cols(),
                  ring_z_.row_data(i));
        ring_label_[i] = wlabels[i];
        ring_sensitive_[i] = wsensitive[i];
        ring_weight_[i] = 1.0;
        ++ring_size_;
      }
    }
    return windowed;
  }();
  if (!fit.ok()) {
    FACTION_LOG(kWarning) << "FACTION density fit failed ("
                          << fit.status().ToString()
                          << "); falling back to random batch";
    TelemetryCount("faction.density_fit_failed");
    estimator_.reset();
    fitted_rows_ = 0;
    updates_since_fit_ = 0;
    return nullptr;
  }
  estimator_ = std::move(fit).value();
  fitted_rows_ = pool.size();
  updates_since_fit_ = 0;
  TelemetryCount("faction.density_full_refit");
  return &estimator_.value();
}
// FACTION_COLD_END

Result<std::vector<std::size_t>> FactionStrategy::SelectBatch(
    const SelectionContext& context, std::size_t batch) {
  ScopedTimer select_timer("faction.select.seconds");
  const Dataset& pool = *context.labeled_pool;
  const Matrix& candidates = *context.candidate_features;
  const std::size_t n = candidates.rows();
  if (n == 0) return std::vector<std::size_t>{};
  if (pool.empty()) {
    // FACTION_COLD_BEGIN: no labeled data yet — nothing to fit a density
    // on; fall back to a uniform random batch (warm_start = 0 only).
    std::vector<std::size_t> perm;
    context.rng->Permutation(n, &perm);
    perm.resize(std::min(batch, n));
    return perm;
    // FACTION_COLD_END
  }

  // Density estimator in the feature space of the current extractor
  // r(., theta_temp) — batch-fitted or incrementally refreshed depending
  // on the config.
  const FairDensityEstimator* est = EstimatorFor(context);
  if (est == nullptr) {
    // FACTION_COLD_BEGIN: degenerate pool (e.g. a single class so far) —
    // fall back to random acquisition rather than failing the run.
    std::vector<std::size_t> perm;
    context.rng->Permutation(n, &perm);
    perm.resize(std::min(batch, n));
    return perm;
    // FACTION_COLD_END
  }

  {
    // Scoring is the steady-state region of a round: every temporary is
    // member scratch or an arena buffer, so once shapes are warm this
    // block performs no heap allocation (violations are tallied to
    // alloc.steady_state_* by the count-mode ban). The Bernoulli draw
    // below builds the returned index vector and stays outside the ban.
    ScopedAllocationBan ban("faction.select",
                            ScopedAllocationBan::Mode::kCount);
    Workspace& ws = *workspace_;
    Matrix* cand_z =
        ws.MatrixFor("faction.cand_z", n, context.model->feature_dim());
    context.model->ExtractFeaturesInto(candidates, &ws, cand_z);
    Matrix* proba =
        ws.MatrixFor("faction.cand_proba", n, context.model->num_classes());
    context.model->PredictProbaInto(candidates, &ws, proba);
    // Scores the whole candidate pool in one batched, parallel pass (see
    // core/fair_score.cc); bitwise deterministic for any thread count.
    FACTION_RETURN_IF_ERROR(ComputeFactionScoresInto(
        *est, *cand_z, *proba, config_.lambda, config_.fair_select,
        &score_scratch_, &scores_));

    // Eq. 7: omega(x) = 1 - Normalize(u(x)); lower u = higher probability.
    u_scratch_.resize(n);
    for (std::size_t i = 0; i < n; ++i) u_scratch_[i] = scores_[i].u;
    MinMaxNormalizeInto(u_scratch_, &selection_scratch_.normalized);
  }
  std::vector<double>& omega = selection_scratch_.normalized;
  for (double& w : omega) w = 1.0 - w;

  return BernoulliSelect(omega, config_.alpha, batch, context.rng,
                         &selection_scratch_);
}

}  // namespace faction
