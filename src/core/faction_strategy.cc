#include "core/faction_strategy.h"

#include "common/logging.h"
#include "density/fair_density.h"
#include "stream/selection.h"

namespace faction {

FactionStrategy::FactionStrategy(const FactionStrategyConfig& config)
    : config_(config) {}

std::string FactionStrategy::name() const {
  if (!config_.name_override.empty()) return config_.name_override;
  return config_.fair_select ? "FACTION" : "FACTION(w/o fair select)";
}

Result<std::vector<std::size_t>> FactionStrategy::SelectBatch(
    const SelectionContext& context, std::size_t batch) {
  const Dataset& pool = *context.labeled_pool;
  const Matrix& candidates = *context.candidate_features;
  const std::size_t n = candidates.rows();
  if (n == 0) return std::vector<std::size_t>{};
  if (pool.empty()) {
    // No labeled data yet: nothing to fit a density on; fall back to a
    // uniform random batch (only reachable with warm_start = 0).
    std::vector<std::size_t> perm;
    context.rng->Permutation(n, &perm);
    perm.resize(std::min(batch, n));
    return perm;
  }

  // Feature space of the current extractor r(., theta_temp).
  const Matrix pool_z = context.model->ExtractFeatures(pool.features());
  const Result<FairDensityEstimator> fit = FairDensityEstimator::Fit(
      pool_z, pool.labels(), pool.sensitive(), config_.covariance);
  if (!fit.ok()) {
    // Degenerate pool (e.g. a single class so far): fall back to random
    // acquisition for this iteration rather than failing the run.
    FACTION_LOG(kWarning) << "FACTION density fit failed ("
                          << fit.status().ToString()
                          << "); falling back to random batch";
    std::vector<std::size_t> perm;
    context.rng->Permutation(n, &perm);
    perm.resize(std::min(batch, n));
    return perm;
  }

  const Matrix cand_z = context.model->ExtractFeatures(candidates);
  const Matrix proba = context.model->PredictProba(candidates);
  // Scores the whole candidate pool in one batched, parallel pass (see
  // core/fair_score.cc); bitwise deterministic for any thread count.
  FACTION_ASSIGN_OR_RETURN(
      std::vector<FactionScore> scores,
      ComputeFactionScores(fit.value(), cand_z, proba, config_.lambda,
                           config_.fair_select));

  // Eq. 7: omega(x) = 1 - Normalize(u(x)); lower u = higher probability.
  std::vector<double> u(n);
  for (std::size_t i = 0; i < n; ++i) u[i] = scores[i].u;
  std::vector<double> omega = MinMaxNormalize(u);
  for (double& w : omega) w = 1.0 - w;

  return BernoulliSelect(omega, config_.alpha, batch, context.rng);
}

}  // namespace faction
