#ifndef FACTION_CORE_PRESETS_H_
#define FACTION_CORE_PRESETS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/faction_strategy.h"
#include "stream/online_learner.h"

namespace faction {

/// Shared experiment defaults following Sec. V-A3: B = 200, A = 50, warm
/// start 100, MLP backbone, constant learning rate; FACTION hyperparameters
/// within the paper's tuning ranges.
struct ExperimentDefaults {
  std::size_t budget_per_task = 200;
  std::size_t acquisition_batch = 50;
  std::size_t warm_start = 100;

  /// Backbone (input_dim is overwritten per dataset).
  std::vector<std::size_t> hidden_dims = {48, 16};
  bool spectral_norm = true;
  double spectral_coeff = 3.0;

  /// Per-AL-iteration training recipe.
  int epochs = 3;
  std::size_t train_batch = 64;
  double learning_rate = 0.05;
  double momentum = 0.9;
  double weight_decay = 1e-4;

  /// FACTION hyperparameters (Eq. 6 / Eq. 9 / Alg. 1).
  double lambda = 0.5;
  double alpha = 3.0;
  double mu = 0.6;
  double epsilon = 0.04;
  /// Fairness notion for the regularizer and violation tracking (Eq. 1
  /// instantiated as DDP in the paper's experiments; DEO also supported).
  FairnessNotion notion = FairnessNotion::kDdp;
  /// Penalty form: symmetric [|v|-eps]_+ (default) vs the paper's literal
  /// [v]_+ - eps (see FairnessPenaltyConfig::symmetric).
  bool symmetric_penalty = true;
  /// Covariance shrinkage of FACTION's GDA components.
  double covariance_shrinkage = 0.1;
  /// Density forgetting (DESIGN.md §15): sliding window over the GDA
  /// estimator (0 = grow-only) and per-fold exponential decay (1 = none).
  /// Either being active switches the covariance to forgetting-mode ridge
  /// regularization. Applies to FACTION and its ablation variants.
  std::size_t density_window = 0;
  double density_decay = 1.0;

  /// Baseline hyperparameters at their mid-sweep values.
  std::size_t fal_reference_size = 128;   ///< FAL's l
  double falcur_beta = 0.5;               ///< FAL-CUR's beta
  double decoupled_threshold = 0.2;       ///< Decoupled's alpha
  double qufur_alpha = 3.0;
  double bandit_exploration = 1.0;        ///< Bandit's UCB coefficient
  double bandit_discount = 0.98;          ///< Bandit's per-call decay
  double disentangled_delta_l2 = 0.05;    ///< Disentangled's delta shrinkage
  double disentangled_boost = 0.5;        ///< Disentangled's fairness boost

  /// Optional JSONL event trace (stream/trace.h), forwarded into
  /// OnlineLearnerConfig::trace. Borrowed; must outlive the run.
  TraceWriter* trace = nullptr;
  /// Scenario provenance (trace schema v6) forwarded into
  /// OnlineLearnerConfig: the canonical scenario DSL spec the stream was
  /// generated from and its world seed ("none"/0 outside the scenario
  /// engine).
  std::string scenario_spec = "none";
  std::uint64_t scenario_world_seed = 0;
};

/// The eight methods of Fig. 2, in the paper's order.
const std::vector<std::string>& AllMethodNames();

/// AllMethodNames plus the post-paper strategies ("Bandit",
/// "Disentangled") — the strategy axis of the scenario matrix
/// (EXPERIMENTS.md).
const std::vector<std::string>& ExtendedMethodNames();

/// The four fairness-aware methods of Fig. 3 / Fig. 5a.
const std::vector<std::string>& FairnessAwareMethodNames();

/// FACTION ablation variants of Fig. 4 / Fig. 5b / Table I.
const std::vector<std::string>& AblationVariantNames();

/// Builds the query strategy for a method name ("FACTION", "FAL",
/// "FAL-CUR", "Decoupled", "QuFUR", "DDU", "Entropy-AL", "Random",
/// "Bandit", "Disentangled", and the ablation variants "w/o fair select",
/// "w/o fair reg", "w/o fair select & fair reg"). Fails on unknown names.
Result<std::unique_ptr<QueryStrategy>> MakeStrategy(
    const std::string& method, const ExperimentDefaults& defaults);

/// Whether the method trains with the fairness-regularized loss (Eq. 9):
/// true for FACTION and its "w/o fair select" variant only.
bool MethodUsesFairnessPenalty(const std::string& method);

/// Builds the learner configuration for a method over inputs of the given
/// dimension; `seed` also controls model init and all stochastic choices.
OnlineLearnerConfig MakeLearnerConfig(const ExperimentDefaults& defaults,
                                      std::size_t input_dim,
                                      const std::string& method,
                                      std::uint64_t seed);

/// Convenience driver: builds the strategy + learner for `method` and runs
/// it over the task stream.
Result<RunResult> RunMethodOnStream(const std::string& method,
                                    const std::vector<Dataset>& tasks,
                                    const ExperimentDefaults& defaults,
                                    std::uint64_t seed);

}  // namespace faction

#endif  // FACTION_CORE_PRESETS_H_
