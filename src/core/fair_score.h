#ifndef FACTION_CORE_FAIR_SCORE_H_
#define FACTION_CORE_FAIR_SCORE_H_

#include <vector>

#include "common/status.h"
#include "density/fair_density.h"
#include "tensor/matrix.h"

namespace faction {

/// Per-candidate breakdown of FACTION's query score (Eq. 6):
///   u(x) = g(z) - lambda * sum_c p_c^x * Delta g_c(z).
///
/// Implementation-fidelity note: Eq. 6 combines raw densities. In feature
/// spaces of moderate dimension raw Gaussian densities span hundreds of
/// orders of magnitude, so the literal combination is numerically
/// degenerate (almost every candidate's density underflows relative to the
/// batch maximum and the score collapses onto the fairness term regardless
/// of lambda). This implementation therefore works per batch in the log
/// domain: each term is computed as a log-density, min-max normalized
/// across the batch (a strictly monotone per-term transform), and then
/// combined as u = norm(log g) - lambda * norm(log unfairness). Selection
/// order within each term is identical to the raw formulation; lambda
/// meaningfully balances the two terms. See DESIGN.md.
struct FactionScore {
  double u = 0.0;  ///< combined score; lower = query first
  /// log g(z) (Eq. 3, log domain).
  double log_density = 0.0;
  /// log sum_c p_c^x * Delta g_c(z) (Eqs. 4-6, log domain); -infinity when
  /// every class's cross-group gap is zero or unavailable.
  double log_unfairness = 0.0;
};

/// Reusable intermediates for ComputeFactionScores: the per-component
/// log-density matrix and the per-term log/normalized vectors. A strategy
/// keeps one across AL iterations so pool scoring stops allocating
/// O(pool * components) every round. Buffers grow on demand and keep their
/// capacity; never share one across concurrent callers.
struct FactionScoreScratch {
  Matrix component_logpdf;
  std::vector<double> log_density;
  std::vector<double> log_unfair;
  std::vector<double> density_norm;
  std::vector<double> unfair_norm;
};

/// Computes FACTION scores for a batch of feature vectors.
///
/// `features` holds one z per row; `class_proba` holds the softmax
/// probabilities p_c^x from the previous-step classifier h_{t-1} (same row
/// count, one column per class). With `fair_select` false the unfairness
/// term is dropped entirely (the paper's "w/o Fair Select" ablation).
///
/// The whole pool is scored in one batched pass: component log-densities
/// are computed once per component via blocked triangular solves and shared
/// between the marginal-density and unfairness terms. Scores are bitwise
/// identical for any FACTION_NUM_THREADS setting. `scratch` is optional;
/// passing one reuses its buffers instead of allocating per call (the
/// scores themselves are unaffected).
Result<std::vector<FactionScore>> ComputeFactionScores(
    const FairDensityEstimator& estimator, const Matrix& features,
    const Matrix& class_proba, double lambda, bool fair_select,
    FactionScoreScratch* scratch = nullptr);

/// Allocation-aware variant: scores are resized into *out (capacity kept
/// across rounds) instead of returned by value. Identical numerics; with a
/// warm scratch and a warm *out the call performs no heap allocation.
Status ComputeFactionScoresInto(const FairDensityEstimator& estimator,
                                const Matrix& features,
                                const Matrix& class_proba, double lambda,
                                bool fair_select,
                                FactionScoreScratch* scratch,
                                std::vector<FactionScore>* out);

}  // namespace faction

#endif  // FACTION_CORE_FAIR_SCORE_H_
