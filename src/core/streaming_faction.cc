#include "core/streaming_faction.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/telemetry.h"
#include "tensor/ops.h"

namespace faction {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// log |e^a - e^b|, stable; mirrors the batch scorer's helper.
double LogAbsExpDiff(double a, double b) {
  if (!std::isfinite(a) || !std::isfinite(b)) {
    if (std::isfinite(a)) return a;
    if (std::isfinite(b)) return b;
    return kNegInf;
  }
  const double hi = std::max(a, b);
  const double gap = std::fabs(a - b);
  if (gap < 1e-300) return kNegInf;
  return hi + std::log1p(-std::exp(-gap));
}

}  // namespace

StreamingFaction::StreamingFaction(const StreamingFactionConfig& config)
    : config_(config),
      rng_(config.seed),
      pool_(config.model.input_dim),
      train_workspace_(std::make_unique<Workspace>()) {
  Rng model_rng = rng_.Fork();
  model_ = std::make_unique<MlpClassifier>(config_.model, &model_rng);
}

double StreamingFaction::ScoreSample(const std::vector<double>& x) const {
  const Matrix z =
      model_->ExtractFeatures(Matrix::FromRowVector(x));
  const std::vector<double> zv = z.Row(0);
  const double log_density = estimator_->LogMarginalDensity(zv);
  // log sum_c p_c * Delta g_c(z).
  const Matrix proba = model_->PredictProba(Matrix::FromRowVector(x));
  std::vector<double> terms;
  for (int c = 0; c < FairDensityEstimator::kNumClasses; ++c) {
    double lp = 0.0, ln = 0.0;
    estimator_->ComponentLogDensities(zv, c, &lp, &ln);
    const double log_delta = LogAbsExpDiff(lp, ln);
    const double pc = proba(0, static_cast<std::size_t>(c));
    if (std::isfinite(log_delta) && pc > 1e-12) {
      terms.push_back(std::log(pc) + log_delta);
    }
  }
  const double log_unfair = terms.empty() ? kNegInf : LogSumExp(terms);
  // Combine in the log domain; the incremental normalizer downstream
  // performs the range normalization Eq. 7 needs. Missing unfairness
  // signal contributes nothing.
  double u = std::isfinite(log_density) ? log_density : -1e3;
  if (std::isfinite(log_unfair)) u -= config_.lambda * log_unfair;
  return u;
}

Result<bool> StreamingFaction::ShouldQuery(const Example& example) {
  if (example.x.size() != config_.model.input_dim) {
    return Status::InvalidArgument(
        "StreamingFaction: sample dimension mismatch");
  }
  ++seen_;
  TelemetryCount("streaming.arrivals");
  // Warm start: always acquire until the pool can support the machinery.
  if (queried_ < config_.warm_start) {
    ++queried_;
    TelemetryCount("streaming.queries");
    TelemetryCount("streaming.warm_start_queries");
    return true;
  }
  if (!estimator_.has_value()) {
    // Machinery not ready (e.g. refit failed on a degenerate pool): fall
    // back to a fixed-rate coin matching alpha's scale.
    TelemetryCount("streaming.fallback_coin");
    const bool take = rng_.Bernoulli(std::min(1.0, config_.alpha * 0.25));
    if (take) {
      ++queried_;
      TelemetryCount("streaming.queries");
    }
    return take;
  }
  const double u = ScoreSample(example.x);
  const bool warmed = normalizer_.count() >= config_.burn_in;
  const double omega = 1.0 - normalizer_.Normalize(u);
  normalizer_.Observe(u);
  if (!warmed) return false;
  const bool take =
      rng_.Bernoulli(std::min(config_.alpha * omega, 1.0));
  if (take) {
    ++queried_;
    TelemetryCount("streaming.queries");
  }
  return take;
}

Status StreamingFaction::ProvideLabel(const Example& example) {
  FACTION_RETURN_IF_ERROR(pool_.Append(example));
  ++labels_since_refit_;
  if (labels_since_refit_ >= config_.refit_interval ||
      (!trained_once_ && pool_.size() >= config_.warm_start)) {
    FACTION_RETURN_IF_ERROR(Refit());
    labels_since_refit_ = 0;
    return Status::Ok();
  }
  if (config_.incremental_density && estimator_.has_value()) {
    // Fold the fresh label into the density estimator right away (O(d^2)
    // sufficient-statistics update) so acquisition decisions between full
    // refits see every label bought so far, not a frozen snapshot.
    const Matrix z =
        model_->ExtractFeatures(Matrix::FromRowVector(example.x));
    const Status updated =
        estimator_->Update(z, {example.label}, {example.sensitive},
                           config_.covariance);
    if (updated.ok()) {
      TelemetryCount("streaming.incremental_fold");
    } else {
      TelemetryCount("streaming.incremental_fold_failed");
      // Partially folded statistics are unusable; drop the estimator and
      // let the next scheduled Refit rebuild it.
      FACTION_LOG(kWarning)
          << "StreamingFaction: incremental density update failed ("
          << updated.ToString() << "); awaiting full refit";
      estimator_.reset();
    }
  }
  return Status::Ok();
}

Status StreamingFaction::Refit() {
  ScopedTimer refit_timer("streaming.refit.seconds");
  TelemetryCount("streaming.refit");
  FACTION_RETURN_IF_ERROR(
      TrainClassifier(model_.get(), pool_, config_.train, &rng_,
                      train_workspace_.get())
          .status());
  trained_once_ = true;
  const Matrix pool_z = model_->ExtractFeatures(pool_.features());
  Result<FairDensityEstimator> fit = FairDensityEstimator::Fit(
      pool_z, pool_.labels(), pool_.sensitive(), config_.covariance);
  if (fit.ok()) {
    estimator_ = std::move(fit).value();
    // Scores live in the new feature space: the old range is stale.
    normalizer_.Reset();
  } else {
    TelemetryCount("streaming.refit_density_failed");
    FACTION_LOG(kWarning) << "StreamingFaction: density refit failed ("
                          << fit.status().ToString() << ")";
  }
  return Status::Ok();
}

Result<int> StreamingFaction::Predict(const std::vector<double>& x) const {
  if (x.size() != config_.model.input_dim) {
    return Status::InvalidArgument("StreamingFaction: dimension mismatch");
  }
  return model_->Predict(Matrix::FromRowVector(x))[0];
}

}  // namespace faction
