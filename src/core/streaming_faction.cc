// FACTION_HOT: the per-arrival path (ShouldQuery + non-refit ProvideLabel)
// is the hard-zero steady state of DESIGN.md §13; allocating idioms here
// are lint findings (tools/lint.py no-alloc-in-hot). Per-round work
// (constructor, Refit) sits inside FACTION_COLD fences.
#include "core/streaming_faction.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <optional>

#include "common/alloc_audit.h"
#include "common/logging.h"
#include "common/telemetry.h"
#include "tensor/ops.h"

namespace faction {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// log |e^a - e^b|, stable; mirrors the batch scorer's helper.
double LogAbsExpDiff(double a, double b) {
  if (!std::isfinite(a) || !std::isfinite(b)) {
    if (std::isfinite(a)) return a;
    if (std::isfinite(b)) return b;
    return kNegInf;
  }
  const double hi = std::max(a, b);
  const double gap = std::fabs(a - b);
  if (gap < 1e-300) return kNegInf;
  return hi + std::log1p(-std::exp(-gap));
}

}  // namespace

// FACTION_COLD_BEGIN: one-time construction.
StreamingFaction::StreamingFaction(const StreamingFactionConfig& config)
    : config_(config),
      rng_(config.seed),
      pool_(config.model.input_dim),
      train_workspace_(std::make_unique<Workspace>()) {
  FACTION_CHECK(config_.density_decay > 0.0 && config_.density_decay <= 1.0);
  if (config_.density_window > 0 || config_.density_decay < 1.0) {
    // Windowed/decayed estimators need the rank-1-maintainable ridge
    // regularization (DESIGN.md §15); shrinkage would force a refactor
    // per eviction.
    config_.covariance.forgetting = true;
  }
  Rng model_rng = rng_.Fork();
  model_ = std::make_unique<MlpClassifier>(config_.model, &model_rng);
  if (config_.density_window > 0) {
    // Pre-size the eviction ring once: the steady-state evict ->
    // downdate -> fold path then never touches the heap.
    ring_z_ = Matrix(config_.density_window, model_->feature_dim());
    ring_label_.assign(config_.density_window, 0);
    ring_sensitive_.assign(config_.density_window, 0);
    ring_weight_.assign(config_.density_window, 0.0);
  }
}
// FACTION_COLD_END

void StreamingFaction::EvictOldest() {
  const std::size_t slot = ring_start_;
  const Status evicted = estimator_->DowndateOne(
      ring_z_.row_data(slot), ring_label_[slot], ring_sensitive_[slot],
      config_.covariance, ring_weight_[slot]);
  ring_start_ = (ring_start_ + 1) % config_.density_window;
  --ring_size_;
  if (evicted.ok()) {
    TelemetryCount("streaming.window_evictions");
  } else {
    // Error reporting is off the steady-state path.
    ScopedAllocationAllow allow_error_report;
    TelemetryCount("streaming.window_evict_failed");
    FACTION_LOG(kWarning) << "StreamingFaction: window eviction failed ("
                          << evicted.ToString() << "); awaiting full refit";
    estimator_.reset();
  }
}

void StreamingFaction::RingPush(const double* z, int label, int sensitive) {
  const std::size_t slot =
      (ring_start_ + ring_size_) % config_.density_window;
  std::copy(z, z + ring_z_.cols(), ring_z_.row_data(slot));
  ring_label_[slot] = label;
  ring_sensitive_[slot] = sensitive;
  ring_weight_[slot] = 1.0;
  ++ring_size_;
}

double StreamingFaction::ScoreSample(const std::vector<double>& x) {
  // Every temporary is a named arena buffer: once the shapes are warm a
  // call performs no heap allocation (the per-arrival zero-alloc gate of
  // DESIGN.md §13 asserts exactly this).
  Workspace& ws = *train_workspace_;
  Matrix* x_row = ws.MatrixFor("streaming.x_row", 1, x.size());
  std::copy(x.begin(), x.end(), x_row->row_data(0));
  Matrix* z = ws.MatrixFor("streaming.z_row", 1, model_->feature_dim());
  model_->ExtractFeaturesInto(*x_row, &ws, z);
  const double* zv = z->row_data(0);
  std::vector<double>* solve_scratch =
      ws.DoublesFor("streaming.solve_scratch", estimator_->dim());
  const double log_density =
      estimator_->LogMarginalDensity(zv, solve_scratch->data());
  // log sum_c p_c * Delta g_c(z).
  Matrix* proba =
      ws.MatrixFor("streaming.proba", 1, model_->num_classes());
  model_->PredictProbaInto(*x_row, &ws, proba);
  std::array<double, FairDensityEstimator::kNumClasses> terms;
  std::size_t nt = 0;
  for (int c = 0; c < FairDensityEstimator::kNumClasses; ++c) {
    double lp = 0.0, ln = 0.0;
    estimator_->ComponentLogDensities(zv, c, solve_scratch->data(), &lp,
                                      &ln);
    const double log_delta = LogAbsExpDiff(lp, ln);
    const double pc = (*proba)(0, static_cast<std::size_t>(c));
    if (std::isfinite(log_delta) && pc > 1e-12) {
      terms[nt++] = std::log(pc) + log_delta;
    }
  }
  const double log_unfair =
      nt == 0 ? kNegInf : LogSumExp(terms.data(), nt);
  // Combine in the log domain; the incremental normalizer downstream
  // performs the range normalization Eq. 7 needs. Missing unfairness
  // signal contributes nothing.
  double u = std::isfinite(log_density) ? log_density : -1e3;
  if (std::isfinite(log_unfair)) u -= config_.lambda * log_unfair;
  return u;
}

Result<bool> StreamingFaction::ShouldQuery(const Example& example) {
  if (example.x.size() != config_.model.input_dim) {
    return Status::InvalidArgument(
        "StreamingFaction: sample dimension mismatch");
  }
  ++seen_;
  TelemetryCount("streaming.arrivals");
  // Warm start: always acquire until the pool can support the machinery.
  if (queried_ < config_.warm_start) {
    ++queried_;
    TelemetryCount("streaming.queries");
    TelemetryCount("streaming.warm_start_queries");
    return true;
  }
  if (!estimator_.has_value()) {
    // Machinery not ready (e.g. refit failed on a degenerate pool): fall
    // back to a fixed-rate coin matching alpha's scale.
    TelemetryCount("streaming.fallback_coin");
    const bool take = rng_.Bernoulli(std::min(1.0, config_.alpha * 0.25));
    if (take) {
      ++queried_;
      TelemetryCount("streaming.queries");
    }
    return take;
  }
  const bool warmed = normalizer_.count() >= config_.burn_in;
  // Post-warmup arrivals are the steady state: score -> normalize ->
  // Bernoulli must not touch the heap. Burn-in arrivals warm the arena
  // shapes and stay exempt; afterwards violations are tallied to
  // alloc.steady_state_* rather than aborting (the CI gate asserts the
  // tallies stay at zero).
  std::optional<ScopedAllocationBan> ban;
  if (warmed) {
    ban.emplace("streaming.should_query",
                ScopedAllocationBan::Mode::kCount);
  }
  const double u = ScoreSample(example.x);
  const double omega = 1.0 - normalizer_.Normalize(u);
  normalizer_.Observe(u);
  if (!warmed) return false;
  const bool take =
      rng_.Bernoulli(std::min(config_.alpha * omega, 1.0));
  if (take) {
    ++queried_;
    TelemetryCount("streaming.queries");
  }
  return take;
}

Status StreamingFaction::ProvideLabel(const Example& example) {
  FACTION_RETURN_IF_ERROR(pool_.Append(example));
  ++labels_since_refit_;
  if (labels_since_refit_ >= config_.refit_interval ||
      (!trained_once_ && pool_.size() >= config_.warm_start)) {
    FACTION_RETURN_IF_ERROR(Refit());
    labels_since_refit_ = 0;
    return Status::Ok();
  }
  if (config_.incremental_density && estimator_.has_value()) {
    // Fold the fresh label into the density estimator right away (O(d^2)
    // sufficient-statistics update) so acquisition decisions between full
    // refits see every label bought so far, not a frozen snapshot. Like
    // the scoring path, the fold is steady state: arena-backed feature
    // extraction plus an in-place sufficient-statistics refresh, with the
    // count-mode ban guarding against regressions. The ban shares
    // ShouldQuery's burn-in exemption: a fold can run before any scored
    // arrival (an early interval refit precedes warm-start completion),
    // and that first fold legitimately creates the arena buffers the
    // scoring path would otherwise have warmed.
    std::optional<ScopedAllocationBan> ban;
    if (normalizer_.count() >= config_.burn_in) {
      ban.emplace("streaming.fold", ScopedAllocationBan::Mode::kCount);
    }
    Workspace& ws = *train_workspace_;
    Matrix* x_row = ws.MatrixFor("streaming.x_row", 1, example.x.size());
    std::copy(example.x.begin(), example.x.end(), x_row->row_data(0));
    Matrix* z = ws.MatrixFor("streaming.z_row", 1, model_->feature_dim());
    model_->ExtractFeaturesInto(*x_row, &ws, z);
    if (config_.density_decay < 1.0) {
      // Exponential forgetting: fade every absorbed label (an O(d)
      // statistics rescale per component — factors untouched) and the
      // ring's per-row weights, so a later eviction removes exactly the
      // mass the row still carries.
      estimator_->Decay(config_.density_decay);
      for (std::size_t i = 0; i < ring_size_; ++i) {
        ring_weight_[(ring_start_ + i) % config_.density_window] *=
            config_.density_decay;
      }
    }
    if (config_.density_window > 0 &&
        ring_size_ >= config_.density_window) {
      // Sliding window: evict the oldest folded embedding (rank-1
      // downdate) before absorbing the new one.
      EvictOldest();
      if (!estimator_.has_value()) return Status::Ok();
    }
    const Status updated =
        estimator_->UpdateOne(z->row_data(0), example.label,
                              example.sensitive, config_.covariance);
    if (updated.ok()) {
      TelemetryCount("streaming.incremental_fold");
      if (config_.density_window > 0) {
        RingPush(z->row_data(0), example.label, example.sensitive);
      }
    } else {
      // Error reporting is off the steady-state path; exempt it from the
      // ban so the message assembly does not count as a violation.
      ScopedAllocationAllow allow_error_report;
      TelemetryCount("streaming.incremental_fold_failed");
      // Partially folded statistics are unusable; drop the estimator and
      // let the next scheduled Refit rebuild it.
      FACTION_LOG(kWarning)
          << "StreamingFaction: incremental density update failed ("
          << updated.ToString() << "); awaiting full refit";
      estimator_.reset();
    }
  }
  return Status::Ok();
}

// FACTION_COLD_BEGIN: Refit amortizes over refit_interval arrivals and
// Predict is an evaluation entry point — both off the steady state.
Status StreamingFaction::Refit() {
  ScopedTimer refit_timer("streaming.refit.seconds");
  TelemetryCount("streaming.refit");
  FACTION_RETURN_IF_ERROR(
      TrainClassifier(model_.get(), pool_, config_.train, &rng_,
                      train_workspace_.get())
          .status());
  trained_once_ = true;
  Result<FairDensityEstimator> fit = [&]() -> Result<FairDensityEstimator> {
    if (config_.density_window == 0) {
      const Matrix pool_z = model_->ExtractFeatures(pool_.features());
      return FairDensityEstimator::Fit(pool_z, pool_.labels(),
                                       pool_.sensitive(), config_.covariance);
    }
    // Windowed: the density sees only the last min(W, pool) labels,
    // embedded fresh by the retrained extractor. The ring re-seeds from
    // the same embeddings at unit weight — the batch fit re-absorbs each
    // window row at weight 1, which resets any accumulated decay.
    const std::size_t wn = std::min(config_.density_window, pool_.size());
    const std::size_t first = pool_.size() - wn;
    Matrix wx(wn, pool_.dim());
    std::vector<int> wlabels(wn), wsensitive(wn);
    for (std::size_t i = 0; i < wn; ++i) {
      std::copy(pool_.features().row_data(first + i),
                pool_.features().row_data(first + i) + pool_.dim(),
                wx.row_data(i));
      wlabels[i] = pool_.labels()[first + i];
      wsensitive[i] = pool_.sensitive()[first + i];
    }
    const Matrix wz = model_->ExtractFeatures(wx);
    Result<FairDensityEstimator> windowed = FairDensityEstimator::Fit(
        wz, wlabels, wsensitive, config_.covariance);
    if (windowed.ok()) {
      ring_start_ = 0;
      ring_size_ = 0;
      for (std::size_t i = 0; i < wn; ++i) {
        RingPush(wz.row_data(i), wlabels[i], wsensitive[i]);
      }
    }
    return windowed;
  }();
  if (fit.ok()) {
    estimator_ = std::move(fit).value();
    // Scores live in the new feature space: the old range is stale.
    normalizer_.Reset();
  } else {
    TelemetryCount("streaming.refit_density_failed");
    FACTION_LOG(kWarning) << "StreamingFaction: density refit failed ("
                          << fit.status().ToString() << ")";
  }
  // Pre-grow the pool so the appends until the next refit stay
  // allocation-free. This must come after the features() call above:
  // features() compacts the matrix and would discard the spare rows.
  pool_.Reserve(pool_.size() + config_.refit_interval + 1);
  return Status::Ok();
}

Result<int> StreamingFaction::Predict(const std::vector<double>& x) const {
  if (x.size() != config_.model.input_dim) {
    return Status::InvalidArgument("StreamingFaction: dimension mismatch");
  }
  return model_->Predict(Matrix::FromRowVector(x))[0];
}
// FACTION_COLD_END

}  // namespace faction
