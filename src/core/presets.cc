#include "core/presets.h"

#include <memory>

#include "baselines/bandit_strategy.h"
#include "baselines/decoupled_strategy.h"
#include "baselines/disentangled_strategy.h"
#include "baselines/fal_strategy.h"
#include "baselines/falcur_strategy.h"
#include "baselines/simple_strategies.h"

namespace faction {

const std::vector<std::string>& AllMethodNames() {
  static const std::vector<std::string> names = {
      "FACTION", "FAL",        "FAL-CUR", "Decoupled",
      "QuFUR",   "DDU",        "Entropy-AL", "Random"};
  return names;
}

const std::vector<std::string>& ExtendedMethodNames() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> all = AllMethodNames();
    all.push_back("Bandit");
    all.push_back("Disentangled");
    return all;
  }();
  return names;
}

const std::vector<std::string>& FairnessAwareMethodNames() {
  static const std::vector<std::string> names = {"FACTION", "FAL", "FAL-CUR",
                                                 "Decoupled"};
  return names;
}

const std::vector<std::string>& AblationVariantNames() {
  static const std::vector<std::string> names = {
      "Random", "w/o fair select & fair reg", "w/o fair reg",
      "w/o fair select", "FACTION"};
  return names;
}

Result<std::unique_ptr<QueryStrategy>> MakeStrategy(
    const std::string& method, const ExperimentDefaults& defaults) {
  if (method == "FACTION" || method == "w/o fair reg") {
    // Full fair selection; "w/o fair reg" only disables the loss penalty.
    FactionStrategyConfig config;
    config.lambda = defaults.lambda;
    config.alpha = defaults.alpha;
    config.fair_select = true;
    config.covariance.shrinkage = defaults.covariance_shrinkage;
    config.density_window = defaults.density_window;
    config.density_decay = defaults.density_decay;
    config.name_override = method;
    return std::unique_ptr<QueryStrategy>(
        std::make_unique<FactionStrategy>(config));
  }
  if (method == "w/o fair select" ||
      method == "w/o fair select & fair reg") {
    // Pure epistemic-uncertainty selection (Delta g dropped).
    FactionStrategyConfig config;
    config.lambda = defaults.lambda;
    config.alpha = defaults.alpha;
    config.fair_select = false;
    config.covariance.shrinkage = defaults.covariance_shrinkage;
    config.density_window = defaults.density_window;
    config.density_decay = defaults.density_decay;
    config.name_override = method;
    return std::unique_ptr<QueryStrategy>(
        std::make_unique<FactionStrategy>(config));
  }
  if (method == "FAL") {
    FalConfig config;
    config.reference_size = defaults.fal_reference_size;
    return std::unique_ptr<QueryStrategy>(
        std::make_unique<FalStrategy>(config));
  }
  if (method == "FAL-CUR") {
    FalCurConfig config;
    config.beta = defaults.falcur_beta;
    return std::unique_ptr<QueryStrategy>(
        std::make_unique<FalCurStrategy>(config));
  }
  if (method == "Decoupled") {
    DecoupledConfig config;
    config.threshold = defaults.decoupled_threshold;
    return std::unique_ptr<QueryStrategy>(
        std::make_unique<DecoupledStrategy>(config));
  }
  if (method == "QuFUR") {
    return std::unique_ptr<QueryStrategy>(
        std::make_unique<QufurStrategy>(defaults.qufur_alpha));
  }
  if (method == "DDU") {
    return std::unique_ptr<QueryStrategy>(std::make_unique<DduStrategy>());
  }
  if (method == "Entropy-AL") {
    return std::unique_ptr<QueryStrategy>(std::make_unique<EntropyStrategy>());
  }
  if (method == "Random") {
    return std::unique_ptr<QueryStrategy>(std::make_unique<RandomStrategy>());
  }
  if (method == "Bandit") {
    BanditConfig config;
    config.exploration = defaults.bandit_exploration;
    config.discount = defaults.bandit_discount;
    return std::unique_ptr<QueryStrategy>(
        std::make_unique<BanditStrategy>(config));
  }
  if (method == "Disentangled") {
    DisentangledConfig config;
    config.delta_l2 = defaults.disentangled_delta_l2;
    config.fairness_boost = defaults.disentangled_boost;
    return std::unique_ptr<QueryStrategy>(
        std::make_unique<DisentangledStrategy>(config));
  }
  return Status::NotFound("unknown method: " + method);
}

bool MethodUsesFairnessPenalty(const std::string& method) {
  return method == "FACTION" || method == "w/o fair select";
}

OnlineLearnerConfig MakeLearnerConfig(const ExperimentDefaults& defaults,
                                      std::size_t input_dim,
                                      const std::string& method,
                                      std::uint64_t seed) {
  OnlineLearnerConfig config;
  config.budget_per_task = defaults.budget_per_task;
  config.acquisition_batch = defaults.acquisition_batch;
  config.warm_start = defaults.warm_start;
  config.seed = seed;

  config.model.input_dim = input_dim;
  config.model.hidden_dims = defaults.hidden_dims;
  config.model.num_classes = 2;
  config.model.spectral.enabled = defaults.spectral_norm;
  config.model.spectral.coeff = defaults.spectral_coeff;

  config.train.epochs = defaults.epochs;
  config.train.batch_size = defaults.train_batch;
  config.train.learning_rate = defaults.learning_rate;
  config.train.momentum = defaults.momentum;
  config.train.weight_decay = defaults.weight_decay;
  config.train.use_fairness_penalty = MethodUsesFairnessPenalty(method);
  config.train.fairness.notion = defaults.notion;
  config.train.fairness.mu = defaults.mu;
  config.train.fairness.epsilon = defaults.epsilon;
  config.train.fairness.symmetric = defaults.symmetric_penalty;
  config.notion = defaults.notion;

  // The regret oracle (when enabled) gets a slightly longer recipe since it
  // fits a single task once.
  config.oracle_train = config.train;
  config.oracle_train.use_fairness_penalty = false;
  config.oracle_train.epochs = defaults.epochs * 2;
  config.trace = defaults.trace;
  // Trace provenance (schema v5/v6): record the density-forgetting
  // settings the strategy runs with and the scenario the stream came from.
  config.density_window = defaults.density_window;
  config.density_decay = defaults.density_decay;
  config.scenario_spec = defaults.scenario_spec;
  config.scenario_world_seed = defaults.scenario_world_seed;
  return config;
}

Result<RunResult> RunMethodOnStream(const std::string& method,
                                    const std::vector<Dataset>& tasks,
                                    const ExperimentDefaults& defaults,
                                    std::uint64_t seed) {
  if (tasks.empty()) {
    return Status::InvalidArgument("RunMethodOnStream: no tasks");
  }
  FACTION_ASSIGN_OR_RETURN(std::unique_ptr<QueryStrategy> strategy,
                           MakeStrategy(method, defaults));
  const OnlineLearnerConfig config =
      MakeLearnerConfig(defaults, tasks[0].dim(), method, seed);
  OnlineLearner learner(config, strategy.get());
  return learner.Run(tasks);
}

}  // namespace faction
