#ifndef FACTION_CORE_STREAMING_FACTION_H_
#define FACTION_CORE_STREAMING_FACTION_H_

#include <cstddef>
#include <memory>
#include <optional>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "density/fair_density.h"
#include "nn/trainer.h"
#include "stream/incremental.h"

namespace faction {

/// Defined in serve/state_codec.cc: the single befriended accessor through
/// which the session checkpoint codec captures and restores private
/// learner state (DESIGN.md §17).
struct StateCodecAccess;

/// Configuration of the single-sample-arrival FACTION variant.
struct StreamingFactionConfig {
  MlpConfig model;
  TrainConfig train;
  /// Eq. 6 trade-off and Algorithm 1's query-rate multiplier.
  double lambda = 0.5;
  double alpha = 3.0;
  CovarianceConfig covariance;
  /// The first `warm_start` arrivals are always queried, seeding the
  /// labeled pool.
  std::size_t warm_start = 50;
  /// Arrivals consumed by the incremental normalizer before probabilistic
  /// decisions start (Sec. IV-D's running range warm-up).
  std::size_t burn_in = 8;
  /// Retrain the classifier and refit the density estimator after this
  /// many new labels.
  std::size_t refit_interval = 25;
  /// When true (the default), every labeled arrival between full refits is
  /// folded into the density estimator's sufficient statistics in the
  /// current feature space (O(d^2) per sample) instead of leaving the
  /// estimator frozen until the next refit. The periodic full Refit still
  /// resyncs everything against the retrained extractor.
  bool incremental_density = true;
  /// Sliding window over the density estimator (DESIGN.md §15): when > 0,
  /// only the last `density_window` labeled arrivals contribute to the GDA
  /// components. Each fold past the window evicts the oldest folded
  /// embedding via a rank-1 Cholesky downdate (O(d^2)) before absorbing
  /// the new one, and the periodic full Refit fits on exactly the window's
  /// rows. Implies forgetting-mode covariance (CovarianceConfig::
  /// forgetting, ridge regularization). 0 disables (grow-only estimator).
  std::size_t density_window = 0;
  /// Exponential forgetting: every labeled arrival first scales the
  /// density estimator's absorbed mass by this factor (Gaussian::Decay —
  /// an O(d) statistics rescale that leaves the cached factors untouched),
  /// so older labels fade geometrically. In (0, 1]; 1 disables. Also
  /// implies forgetting-mode covariance. Composes with `density_window`:
  /// evicted rows are downdated at their decayed weight.
  double density_decay = 1.0;
  std::uint64_t seed = 1;
};

/// FACTION for samples arriving one at a time (the extension sketched in
/// Sec. IV-D): the score u(x) of each arrival is normalized against the
/// *incremental* range of all scores gathered so far instead of a batch
/// range, and the Bernoulli query rule is applied per sample. The labeled
/// pool, classifier, and (class x sensitive) density estimator are
/// refreshed every `refit_interval` acquisitions.
///
/// Usage per arrival:
///   if (streaming.ShouldQuery(example_without_label).value()) {
///     example.label = AskTheOracle(...);
///     streaming.ProvideLabel(example);
///   }
class StreamingFaction {
 public:
  explicit StreamingFaction(const StreamingFactionConfig& config);

  StreamingFaction(StreamingFaction&&) = default;
  StreamingFaction(const StreamingFaction&) = delete;
  StreamingFaction& operator=(const StreamingFaction&) = delete;

  /// Decides whether to query the label of the arriving sample (its label
  /// field is ignored). Fails on dimension mismatch.
  Result<bool> ShouldQuery(const Example& example);

  /// Feeds back a labeled sample that was queried. Triggers a refit when
  /// the interval is reached.
  Status ProvideLabel(const Example& example);

  /// Predicts the class of a feature vector with the current model.
  Result<int> Predict(const std::vector<double>& x) const;

  const MlpClassifier& model() const { return *model_; }
  std::size_t samples_seen() const { return seen_; }
  std::size_t queries_made() const { return queried_; }
  std::size_t pool_size() const { return pool_.size(); }
  bool has_estimator() const { return estimator_.has_value(); }

 private:
  friend struct StateCodecAccess;

  /// Retrains the classifier on the pool and refits the density estimator
  /// in the new feature space.
  Status Refit();

  /// FACTION's u(x) for one sample in the current feature space, log
  /// domain (same construction as the batch scorer, without the batch
  /// normalization — the incremental normalizer takes that role).
  /// Allocation-free in steady state: every temporary lives in
  /// train_workspace_ (non-const for that reason).
  double ScoreSample(const std::vector<double>& x);

  /// Evicts the oldest ring entry through the estimator's rank-1 downdate
  /// path. On failure the estimator is dropped (next Refit rebuilds).
  void EvictOldest();
  /// Appends a folded embedding (weight 1) to the ring; caller guarantees
  /// a free slot.
  void RingPush(const double* z, int label, int sensitive);

  StreamingFactionConfig config_;
  Rng rng_;
  std::unique_ptr<MlpClassifier> model_;
  Dataset pool_;
  // Sliding-window state (density_window > 0): a pre-sized ring of the
  // embeddings folded into the estimator, their labels/sensitive values,
  // and their current decayed weights. `ring_start_` is the oldest entry;
  // the ring is allocated once in the constructor so the steady-state
  // evict -> downdate -> fold path never touches the heap.
  Matrix ring_z_;
  std::vector<int> ring_label_;
  std::vector<int> ring_sensitive_;
  std::vector<double> ring_weight_;
  std::size_t ring_start_ = 0;
  std::size_t ring_size_ = 0;
  /// Persistent arena for TrainClassifier's per-step temporaries; owned
  /// via unique_ptr so StreamingFaction stays movable.
  std::unique_ptr<Workspace> train_workspace_;
  std::optional<FairDensityEstimator> estimator_;
  IncrementalNormalizer normalizer_;
  std::size_t seen_ = 0;
  std::size_t queried_ = 0;
  std::size_t labels_since_refit_ = 0;
  bool trained_once_ = false;
};

}  // namespace faction

#endif  // FACTION_CORE_STREAMING_FACTION_H_
