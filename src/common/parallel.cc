#include "common/parallel.h"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"

namespace faction {

namespace {

// True while the current thread is executing a ParallelFor body (worker or
// caller); nested calls detect this and run serially inline.
thread_local bool tl_inside_parallel = false;

int DefaultThreadCount() {
  if (const char* env = std::getenv("FACTION_NUM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != nullptr && end != env && *end == '\0' && v >= 1 &&
        v <= 4096) {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0U ? 1 : static_cast<int>(hw);
}

// A parallel region handed to the pool: erased slot body + context. Plain
// pointers (not std::function) so dispatching a region never allocates.
using SlotBody = void (*)(const void* ctx, int slot);

// Persistent worker pool. One parallel region runs at a time; workers park
// on a condition variable between regions, so a region costs two broadcast
// notifications instead of thread spawns. All shared state is guarded by
// mu_; the caller's final wait on done_cv_ establishes the happens-before
// edge between worker writes and the caller reading the results.
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool pool;
    return pool;
  }

  int thread_count() {
    std::lock_guard<std::mutex> lock(mu_);
    return target_threads_;
  }

  void set_thread_count(int n) {
    FACTION_CHECK(!tl_inside_parallel);
    n = std::max(1, n);
    std::unique_lock<std::mutex> lock(mu_);
    FACTION_CHECK(region_body_ == nullptr);
    StopWorkers(&lock);
    target_threads_ = n;
    // Workers are respawned lazily by the next Run().
  }

  /// Executes body(ctx, slot) for every slot in [0, n_tasks) across the
  /// caller (slot 0) and the pool workers, then rethrows the first stored
  /// exception, if any.
  void Run(int n_tasks, SlotBody body, const void* ctx) {
    // Serialize concurrent top-level regions (nested calls never reach
    // here: they run inline on the worker).
    std::lock_guard<std::mutex> run_lock(run_mu_);
    std::exception_ptr caller_error;
    std::unique_lock<std::mutex> lock(mu_);
    FACTION_CHECK(region_body_ == nullptr);
    EnsureWorkers();
    region_body_ = body;
    region_ctx_ = ctx;
    region_tasks_ = n_tasks;
    arrived_ = 0;
    error_ = nullptr;
    ++epoch_;
    work_cv_.notify_all();
    lock.unlock();

    tl_inside_parallel = true;
    try {
      body(ctx, 0);
    } catch (...) {
      caller_error = std::current_exception();
    }
    tl_inside_parallel = false;

    lock.lock();
    done_cv_.wait(lock, [&] {
      return arrived_ == static_cast<int>(workers_.size());
    });
    region_body_ = nullptr;
    region_ctx_ = nullptr;
    std::exception_ptr error = error_ != nullptr ? error_ : caller_error;
    error_ = nullptr;
    lock.unlock();
    if (error != nullptr) std::rethrow_exception(error);
  }

 private:
  ThreadPool() : target_threads_(DefaultThreadCount()) {}

  ~ThreadPool() {
    std::unique_lock<std::mutex> lock(mu_);
    StopWorkers(&lock);
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Requires mu_ held; spawns the background workers if absent.
  void EnsureWorkers() {
    if (!workers_.empty() || target_threads_ <= 1) return;
    workers_.reserve(static_cast<std::size_t>(target_threads_ - 1));
    for (int i = 0; i < target_threads_ - 1; ++i) {
      workers_.emplace_back([this, i] { WorkerMain(i); });
    }
  }

  // Requires mu_ held via *lock; joins and clears all workers.
  void StopWorkers(std::unique_lock<std::mutex>* lock) {
    if (workers_.empty()) return;
    stop_ = true;
    work_cv_.notify_all();
    lock->unlock();
    for (std::thread& t : workers_) t.join();
    lock->lock();
    workers_.clear();
    stop_ = false;
  }

  void WorkerMain(int worker_index) {
    std::uint64_t seen_epoch = 0;
    for (;;) {
      SlotBody body = nullptr;
      const void* ctx = nullptr;
      int n_tasks = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
        if (stop_) return;
        seen_epoch = epoch_;
        body = region_body_;
        ctx = region_ctx_;
        n_tasks = region_tasks_;
      }
      const int slot = worker_index + 1;
      if (slot < n_tasks) {
        tl_inside_parallel = true;
        try {
          body(ctx, slot);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu_);
          if (error_ == nullptr) error_ = std::current_exception();
        }
        tl_inside_parallel = false;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (++arrived_ == static_cast<int>(workers_.size())) {
          done_cv_.notify_one();
        }
      }
    }
  }

  std::mutex run_mu_;  // serializes whole regions
  std::mutex mu_;      // guards all fields below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  int target_threads_ = 1;
  bool stop_ = false;
  std::uint64_t epoch_ = 0;
  SlotBody region_body_ = nullptr;
  const void* region_ctx_ = nullptr;
  int region_tasks_ = 0;
  int arrived_ = 0;
  std::exception_ptr error_;
};

}  // namespace

ScopedForceSerialParallel::ScopedForceSerialParallel()
    : prev_(tl_inside_parallel) {
  tl_inside_parallel = true;
}

ScopedForceSerialParallel::~ScopedForceSerialParallel() {
  tl_inside_parallel = prev_;
}

int ParallelThreadCount() { return ThreadPool::Instance().thread_count(); }

void SetParallelThreadCount(int n) {
  ThreadPool::Instance().set_thread_count(n);
}

std::size_t ParallelChunkCount(std::size_t begin, std::size_t end,
                               std::size_t grain) {
  if (end <= begin) return 0;
  const std::size_t g = grain == 0 ? 1 : grain;
  return (end - begin + g - 1) / g;
}

namespace internal {

void ParallelForChunksErased(std::size_t begin, std::size_t end,
                             std::size_t grain, ErasedChunkBody body,
                             const void* ctx) {
  if (end <= begin) return;
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t nchunks = (end - begin + g - 1) / g;
  const std::size_t n_tasks = std::min(
      static_cast<std::size_t>(ParallelThreadCount()), nchunks);
  if (n_tasks <= 1 || tl_inside_parallel) {
    for (std::size_t c = 0; c < nchunks; ++c) {
      const std::size_t lo = begin + c * g;
      const std::size_t hi = std::min(end, lo + g);
      body(ctx, c, lo, hi);
    }
    return;
  }
  // Static partition: task `slot` owns a fixed contiguous run of chunks.
  // The region descriptor lives on the caller's stack; Run() blocks until
  // every slot retires, so borrowing it from workers is safe.
  struct Region {
    ErasedChunkBody body;
    const void* ctx;
    std::size_t begin, end, grain, nchunks, n_tasks;
  };
  const Region region{body, ctx, begin, end, g, nchunks, n_tasks};
  ThreadPool::Instance().Run(
      static_cast<int>(n_tasks),
      [](const void* rctx, int slot) {
        const Region& r = *static_cast<const Region*>(rctx);
        const std::size_t s = static_cast<std::size_t>(slot);
        const std::size_t chunk_lo = r.nchunks * s / r.n_tasks;
        const std::size_t chunk_hi = r.nchunks * (s + 1) / r.n_tasks;
        for (std::size_t c = chunk_lo; c < chunk_hi; ++c) {
          const std::size_t lo = r.begin + c * r.grain;
          const std::size_t hi = std::min(r.end, lo + r.grain);
          r.body(r.ctx, c, lo, hi);
        }
      },
      &region);
}

}  // namespace internal

}  // namespace faction
