#ifndef FACTION_COMMON_WORKSPACE_H_
#define FACTION_COMMON_WORKSPACE_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "tensor/matrix.h"

namespace faction {

/// Named scratch-buffer arena for allocation-free hot loops.
///
/// A Workspace owns a set of reusable buffers keyed by name. The first
/// *For() call with a given name allocates the buffer; later calls return
/// the same buffer resized to the requested shape, retaining capacity, so a
/// steady-state training loop performs no heap allocation per step.
///
/// Contract (see DESIGN.md §10):
///  * The Workspace owns every buffer it hands out. Returned pointers stay
///    valid until the Workspace is destroyed; the resizing *For() calls
///    never invalidate them (buffers are node-stored), but they DO
///    invalidate the *contents*.
///  * Contents after a *For() call are unspecified (stale data from the
///    previous use). Callers must fully overwrite a buffer before reading
///    it. This is what makes reuse bitwise-deterministic: results depend
///    only on what the caller writes, never on what was left behind.
///  * A Workspace is single-threaded state. Never share one across
///    concurrent ParallelFor workers; parallel kernels keep per-chunk
///    scratch instead (e.g. Conv2d). Passing a Workspace down a serial
///    call chain that internally runs parallel kernels is fine.
///  * Distinct logical uses must use distinct names. Reusing a name for
///    two buffers that are live simultaneously is a correctness bug the
///    Workspace cannot detect.
class Workspace {
 public:
  Workspace() = default;

  // Buffers are node-stored in maps; moving the Workspace would not
  // invalidate pointers, but copying would silently fork buffer identity,
  // so both are disabled.
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Matrix buffer resized (for overwrite — contents unspecified) to
  /// rows x cols.
  Matrix* MatrixFor(std::string_view name, std::size_t rows,
                    std::size_t cols) {
    Matrix* m = &FindOrCreate(matrices_, name);
    m->ResizeForOverwrite(rows, cols);
    return m;
  }

  /// int vector resized (for overwrite) to n elements.
  std::vector<int>* IntsFor(std::string_view name, std::size_t n) {
    std::vector<int>* v = &FindOrCreate(ints_, name);
    v->resize(n);
    return v;
  }

  /// size_t vector resized (for overwrite) to n elements.
  std::vector<std::size_t>* SizesFor(std::string_view name, std::size_t n) {
    std::vector<std::size_t>* v = &FindOrCreate(sizes_, name);
    v->resize(n);
    return v;
  }

  /// double vector resized (for overwrite) to n elements.
  std::vector<double>* DoublesFor(std::string_view name, std::size_t n) {
    std::vector<double>* v = &FindOrCreate(doubles_, name);
    v->resize(n);
    return v;
  }

  /// Number of distinct buffers currently owned (all types).
  std::size_t buffer_count() const {
    return matrices_.size() + ints_.size() + sizes_.size() + doubles_.size();
  }

 private:
  template <typename MapT>
  static typename MapT::mapped_type& FindOrCreate(MapT& map,
                                                  std::string_view name) {
    FACTION_CHECK(!name.empty());
    auto it = map.find(name);
    if (it == map.end()) {
      it = map.emplace(std::string(name), typename MapT::mapped_type()).first;
    }
    return it->second;
  }

  // std::map keeps stable node addresses across inserts, which is what
  // lets MatrixFor return long-lived pointers.
  std::map<std::string, Matrix, std::less<>> matrices_;
  std::map<std::string, std::vector<int>, std::less<>> ints_;
  std::map<std::string, std::vector<std::size_t>, std::less<>> sizes_;
  std::map<std::string, std::vector<double>, std::less<>> doubles_;
};

}  // namespace faction

#endif  // FACTION_COMMON_WORKSPACE_H_
