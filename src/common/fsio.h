#ifndef FACTION_COMMON_FSIO_H_
#define FACTION_COMMON_FSIO_H_

#include <cstdint>
#include <string>

#include "common/status.h"

// Durable-file-commit helpers shared by every tmp+rename writer in the
// tree (nn/serialize.cc model checkpoints, serve/checkpoint.cc session
// snapshots + manifests). A rename alone makes a save *atomic* but not
// *durable*: on power loss the filesystem may persist the rename before
// the renamed file's blocks, leaving a correctly-named empty or torn
// checkpoint. CommitFileDurable closes that hole with the classic
// sequence fsync(tmp) -> rename -> fsync(parent dir).

namespace faction {

/// False when the FACTION_NO_FSYNC environment variable is set (to any
/// value). The escape hatch exists for tests and bulk experiment runs
/// where per-save fsync latency matters and durability does not; the
/// tmp+rename atomicity is unaffected.
bool FsyncEnabled();

/// fsync(2) the file at `path`. No-op Ok when fsync is disabled.
Status SyncFile(const std::string& path);

/// fsync(2) the parent directory of `path`, making a rename into that
/// directory durable. No-op Ok when fsync is disabled.
Status SyncParentDir(const std::string& path);

/// Durably commits `tmp_path` over `final_path`: fsync(tmp) -> rename ->
/// fsync(parent of final). On any failure the tmp file is removed and the
/// final path is left untouched (never truncated). With fsync disabled
/// this degrades to plain atomic rename.
Status CommitFileDurable(const std::string& tmp_path,
                         const std::string& final_path);

/// Process-wide count of fsync(2) calls issued through this module;
/// regression tests pin that durable saves actually sync.
std::uint64_t FsyncCallsForTest();

}  // namespace faction

#endif  // FACTION_COMMON_FSIO_H_
