#include "common/alloc_audit.h"

#include "common/telemetry.h"

#if defined(FACTION_ALLOC_AUDIT)

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>

#include "common/check.h"

namespace faction {
namespace {

// All state is thread-local and constant-initialized so the interposed
// operator new is safe from the very first allocation, before any dynamic
// initializer runs.
struct TlAudit {
  AllocationStats stats;
  // Innermost active ban (nullptr: none). Nested bans shadow and restore.
  const char* ban_site = nullptr;
  bool ban_fatal = false;
  // Cumulative ban violations on this thread; scopes diff against entry.
  std::uint64_t ban_violations = 0;
  std::uint64_t ban_violation_bytes = 0;
  int allow_depth = 0;
  // Set while composing the fatal diagnostic (which itself allocates).
  bool reporting = false;
};

thread_local TlAudit tl_audit;

[[noreturn]] void ReportBanViolation(const char* site, std::size_t size,
                                     void* caller) {
  TlAudit& tl = tl_audit;
  tl.reporting = true;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "ScopedAllocationBan violated at site '%s': operator "
                "new(%zu) from %p",
                site, size, caller);
  internal_check::CheckFailed(__FILE__, __LINE__, buf);
}

// `caller` is the return address of the interposed operator, i.e. the
// allocating call site, captured before any inlining can fold frames.
inline void NoteAllocation(std::size_t size, void* caller) {
  TlAudit& tl = tl_audit;
  ++tl.stats.allocs;
  tl.stats.bytes += size;
  if (size > tl.stats.peak_bytes) tl.stats.peak_bytes = size;
  if (tl.ban_site != nullptr && tl.allow_depth == 0 && !tl.reporting) {
    ++tl.ban_violations;
    tl.ban_violation_bytes += size;
    if (tl.ban_fatal) ReportBanViolation(tl.ban_site, size, caller);
  }
}

inline void NoteFree() { ++tl_audit.stats.frees; }

// Backing allocator for the interposed operators. malloc/posix_memalign
// (not the replaced operators) so there is no recursion; free() releases
// both shapes, so every delete variant funnels into AuditedFree.
void* AuditedAlloc(std::size_t size, std::size_t align) {
  const std::size_t request = size == 0 ? 1 : size;
  if (align <= alignof(std::max_align_t)) {
    return std::malloc(request);
  }
  void* ptr = nullptr;
  const std::size_t al = align < sizeof(void*) ? sizeof(void*) : align;
  if (posix_memalign(&ptr, al, request) != 0) return nullptr;
  return ptr;
}

void AuditedFree(void* ptr) {
  if (ptr == nullptr) return;
  NoteFree();
  std::free(ptr);
}

}  // namespace

const char* AllocAuditMode() { return "on"; }

AllocationStats ThreadAllocationStats() { return tl_audit.stats; }

ScopedAllocationBan::ScopedAllocationBan(const char* site, Mode mode)
    : site_(site),
      mode_(mode),
      prev_site_(tl_audit.ban_site),
      prev_mode_(tl_audit.ban_fatal ? Mode::kFatal : Mode::kCount),
      entry_violations_(tl_audit.ban_violations),
      entry_violation_bytes_(tl_audit.ban_violation_bytes) {
  tl_audit.ban_site = site_;
  tl_audit.ban_fatal = mode_ == Mode::kFatal;
}

ScopedAllocationBan::~ScopedAllocationBan() {
  TlAudit& tl = tl_audit;
  tl.ban_site = prev_site_;
  tl.ban_fatal = prev_site_ != nullptr && prev_mode_ == Mode::kFatal;
  if (mode_ == Mode::kCount) {
    const std::uint64_t v = tl.ban_violations - entry_violations_;
    const std::uint64_t b = tl.ban_violation_bytes - entry_violation_bytes_;
    if (v > 0) {
      // Publishing may itself allocate (first-touch counter registration);
      // exempt it so an enclosing ban does not trip on the report.
      ++tl.allow_depth;
      TelemetryCount("alloc.steady_state_allocs", v);
      TelemetryCount("alloc.steady_state_bytes", b);
      --tl.allow_depth;
    }
  }
}

std::uint64_t ScopedAllocationBan::violations() const {
  return tl_audit.ban_violations - entry_violations_;
}

std::uint64_t ScopedAllocationBan::violation_bytes() const {
  return tl_audit.ban_violation_bytes - entry_violation_bytes_;
}

ScopedAllocationAllow::ScopedAllocationAllow() { ++tl_audit.allow_depth; }

ScopedAllocationAllow::~ScopedAllocationAllow() { --tl_audit.allow_depth; }

}  // namespace faction

// ---------------------------------------------------------------------------
// Global allocator interposition: every variant the front end can emit.
// Each captures its own return address (the allocating call site) before
// delegating, so fatal ban reports point at the violator.
// ---------------------------------------------------------------------------

void* operator new(std::size_t size) {
  void* ptr = faction::AuditedAlloc(size, 0);
  if (ptr == nullptr) throw std::bad_alloc();
  faction::NoteAllocation(size, __builtin_return_address(0));
  return ptr;
}

void* operator new[](std::size_t size) {
  void* ptr = faction::AuditedAlloc(size, 0);
  if (ptr == nullptr) throw std::bad_alloc();
  faction::NoteAllocation(size, __builtin_return_address(0));
  return ptr;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* ptr = faction::AuditedAlloc(size, 0);
  if (ptr != nullptr) {
    faction::NoteAllocation(size, __builtin_return_address(0));
  }
  return ptr;
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  void* ptr = faction::AuditedAlloc(size, 0);
  if (ptr != nullptr) {
    faction::NoteAllocation(size, __builtin_return_address(0));
  }
  return ptr;
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* ptr = faction::AuditedAlloc(size, static_cast<std::size_t>(align));
  if (ptr == nullptr) throw std::bad_alloc();
  faction::NoteAllocation(size, __builtin_return_address(0));
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* ptr = faction::AuditedAlloc(size, static_cast<std::size_t>(align));
  if (ptr == nullptr) throw std::bad_alloc();
  faction::NoteAllocation(size, __builtin_return_address(0));
  return ptr;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  void* ptr = faction::AuditedAlloc(size, static_cast<std::size_t>(align));
  if (ptr != nullptr) {
    faction::NoteAllocation(size, __builtin_return_address(0));
  }
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  void* ptr = faction::AuditedAlloc(size, static_cast<std::size_t>(align));
  if (ptr != nullptr) {
    faction::NoteAllocation(size, __builtin_return_address(0));
  }
  return ptr;
}

void operator delete(void* ptr) noexcept { faction::AuditedFree(ptr); }
void operator delete[](void* ptr) noexcept { faction::AuditedFree(ptr); }
void operator delete(void* ptr, std::size_t) noexcept {
  faction::AuditedFree(ptr);
}
void operator delete[](void* ptr, std::size_t) noexcept {
  faction::AuditedFree(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  faction::AuditedFree(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  faction::AuditedFree(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept {
  faction::AuditedFree(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  faction::AuditedFree(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  faction::AuditedFree(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  faction::AuditedFree(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  faction::AuditedFree(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  faction::AuditedFree(ptr);
}

#else  // !FACTION_ALLOC_AUDIT

namespace faction {

const char* AllocAuditMode() { return "off"; }

AllocationStats ThreadAllocationStats() { return AllocationStats{}; }

ScopedAllocationBan::ScopedAllocationBan(const char* site, Mode mode)
    : site_(site),
      mode_(mode),
      prev_site_(nullptr),
      prev_mode_(mode),
      entry_violations_(0),
      entry_violation_bytes_(0) {
  static_cast<void>(site_);
  static_cast<void>(mode_);
  static_cast<void>(prev_site_);
  static_cast<void>(prev_mode_);
}

ScopedAllocationBan::~ScopedAllocationBan() = default;

std::uint64_t ScopedAllocationBan::violations() const { return 0; }

std::uint64_t ScopedAllocationBan::violation_bytes() const { return 0; }

ScopedAllocationAllow::ScopedAllocationAllow() = default;

ScopedAllocationAllow::~ScopedAllocationAllow() = default;

}  // namespace faction

#endif  // FACTION_ALLOC_AUDIT
