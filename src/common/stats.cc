#include "common/stats.h"

namespace faction {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = Mean(xs);
  double m2 = 0.0;
  for (double x : xs) m2 += (x - mu) * (x - mu);
  return std::sqrt(m2 / static_cast<double>(xs.size()));
}

double OlsSlope(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = x.size() < y.size() ? x.size() : y.size();
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
  }
  if (sxx == 0.0) return 0.0;
  return sxy / sxx;
}

}  // namespace faction
