#include "common/table.h"

#include <algorithm>
#include <cstdio>

namespace faction {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::PrintCsv(std::ostream& os) const {
  auto emit_cell = [&](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      os << cell;
      return;
    }
    os << '"';
    for (char ch : cell) {
      if (ch == '"') os << '"';
      os << ch;
    }
    os << '"';
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      emit_cell(row[c]);
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
}

std::string FormatCell(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string FormatMeanStd(double mean, double std, int decimals) {
  return FormatCell(mean, decimals) + " ± " + FormatCell(std, decimals);
}

}  // namespace faction
