#ifndef FACTION_COMMON_PARALLEL_H_
#define FACTION_COMMON_PARALLEL_H_

#include <cstddef>
#include <memory>
#include <type_traits>

// Deterministic parallel execution layer.
//
// A single persistent thread pool (no per-call thread spawns) backs
// ParallelFor. The determinism contract:
//
//   * The index range is split into chunks of `grain` consecutive indices.
//     The chunk layout depends ONLY on (begin, end, grain) — never on the
//     thread count — so chunk-indexed partial results (e.g. per-chunk
//     gradient buffers combined in chunk order) are reproducible.
//   * Each chunk is executed by exactly one thread; chunks never split.
//   * The body must write only to chunk-disjoint outputs (no shared
//     accumulators). Reductions go through per-chunk partials combined in
//     chunk order by the caller.
//
// Under this contract every result is bitwise identical for any thread
// count, including the serial path. FACTION_NUM_THREADS configures the
// worker count (default: hardware concurrency; 1 forces the serial path).
//
// Grain-size guidance: pick the smallest grain whose per-chunk work is
// ~10us or more (a few thousand double ops). Too-small grains waste time on
// chunk bookkeeping; too-large grains starve threads on short ranges.
//
// Nested ParallelFor calls are safe: a call made from inside a parallel
// body runs serially inline on the calling worker.
//
// The entry points are templates that type-erase the body into a plain
// function pointer + context pointer. Unlike std::function — whose
// small-buffer optimisation tops out at two words on libstdc++ — this
// never heap-allocates, no matter how much the body captures, which keeps
// ParallelFor legal inside ScopedAllocationBan regions (alloc_audit.h).

namespace faction {

/// Number of threads the parallel layer may use (>= 1). Resolved once from
/// FACTION_NUM_THREADS (default: hardware concurrency).
int ParallelThreadCount();

/// Overrides the thread count at runtime and rebuilds the pool; used by
/// tests and embedders. Values < 1 clamp to 1. Must not be called from
/// inside a ParallelFor body.
void SetParallelThreadCount(int n);

/// Number of chunks ParallelFor will form for this range/grain. Callers
/// sizing per-chunk partial buffers use this; it is independent of the
/// thread count.
std::size_t ParallelChunkCount(std::size_t begin, std::size_t end,
                               std::size_t grain);

/// RAII guard forcing every ParallelFor issued by the current thread to run
/// serially inline while the guard lives — the same code path a nested
/// ParallelFor takes. The serve job system (src/serve) wraps each job in
/// one: its workers multiplex many independent sessions, so intra-kernel
/// parallelism would only serialize on the single process-wide pool, and
/// the inline path keeps job execution allocation-free (the pool spawns
/// its workers lazily on first use). Results are unchanged by construction:
/// the determinism contract above makes every parallel result bitwise
/// identical to the serial path. Guards nest.
class ScopedForceSerialParallel {
 public:
  ScopedForceSerialParallel();
  ~ScopedForceSerialParallel();

  ScopedForceSerialParallel(const ScopedForceSerialParallel&) = delete;
  ScopedForceSerialParallel& operator=(const ScopedForceSerialParallel&) =
      delete;

 private:
  bool prev_;
};

namespace internal {

/// Erased chunk body: body(ctx, chunk, chunk_begin, chunk_end). The ctx is
/// const because the thunks below invoke the caller's functor through its
/// const call operator (reference captures stay mutable through it).
using ErasedChunkBody = void (*)(const void* ctx, std::size_t chunk,
                                 std::size_t chunk_begin,
                                 std::size_t chunk_end);

/// Allocation-free core of ParallelFor/ParallelForChunks. Splits
/// [begin, end) into grain-sized chunks and runs them across the pool per
/// the determinism contract. The first exception thrown by any chunk is
/// rethrown on the calling thread after all chunks retire.
void ParallelForChunksErased(std::size_t begin, std::size_t end,
                             std::size_t grain, ErasedChunkBody body,
                             const void* ctx);

}  // namespace internal

/// Runs fn(chunk, chunk_begin, chunk_end) over consecutive chunks of at
/// most `grain` indices covering [begin, end). Use when the body writes
/// per-chunk partial results that the caller combines in chunk order.
template <typename Fn>
void ParallelForChunks(std::size_t begin, std::size_t end, std::size_t grain,
                       Fn&& fn) {
  using Body = typename std::remove_reference<Fn>::type;
  internal::ParallelForChunksErased(
      begin, end, grain,
      [](const void* ctx, std::size_t chunk, std::size_t lo,
         std::size_t hi) {
        (*static_cast<const Body*>(ctx))(chunk, lo, hi);
      },
      std::addressof(fn));
}

/// Runs fn(chunk_begin, chunk_end) over consecutive chunks of at most
/// `grain` indices covering [begin, end). See the determinism contract
/// above.
template <typename Fn>
void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 Fn&& fn) {
  using Body = typename std::remove_reference<Fn>::type;
  internal::ParallelForChunksErased(
      begin, end, grain,
      [](const void* ctx, std::size_t /*chunk*/, std::size_t lo,
         std::size_t hi) { (*static_cast<const Body*>(ctx))(lo, hi); },
      std::addressof(fn));
}

}  // namespace faction

#endif  // FACTION_COMMON_PARALLEL_H_
