#ifndef FACTION_COMMON_STATUS_H_
#define FACTION_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace faction {

/// Error categories used across the library. Modeled after the RocksDB /
/// Arrow convention of returning rich status objects instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,
  kNotFound,
  kInternal,
  kNumericalError,
  kResourceExhausted,
};

/// Returns a short human-readable name for a status code ("Ok",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A Status carries the outcome of an operation that can fail. The library
/// does not use exceptions; every fallible public function returns Status or
/// Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A kOk code with a
  /// message is allowed but unusual.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "Code: message" for logging.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> is either a value or an error Status. Accessing the value of an
/// error result is a programming error (checked in debug via assert-like
/// abort in ValueOrDie semantics; use ok() first).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value, so `return value;` works.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status)  // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns the error status; OK when the result holds a value.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(payload_);
  }

  /// Returns the contained value. Precondition: ok().
  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  /// Returns the value or a fallback when this holds an error.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK status to the caller.
#define FACTION_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::faction::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates a Result<T> expression, propagating errors, and binds the value.
#define FACTION_ASSIGN_OR_RETURN(lhs, expr)      \
  auto FACTION_CONCAT_(res_, __LINE__) = (expr); \
  if (!FACTION_CONCAT_(res_, __LINE__).ok())     \
    return FACTION_CONCAT_(res_, __LINE__).status(); \
  lhs = std::move(FACTION_CONCAT_(res_, __LINE__)).value()

#define FACTION_CONCAT_INNER_(a, b) a##b
#define FACTION_CONCAT_(a, b) FACTION_CONCAT_INNER_(a, b)

}  // namespace faction

#endif  // FACTION_COMMON_STATUS_H_
