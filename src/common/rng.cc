#include "common/rng.h"

#include <cmath>

namespace faction {

namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64 expands a single seed into well-mixed state words.
inline std::uint64_t SplitMix64(std::uint64_t* x) {
  std::uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t SubSeed(std::uint64_t world_seed, std::string_view tag) {
  // FNV-1a over the tag bytes, with the world seed XOR-folded into the
  // offset basis (the FactionGenerator::sub_seed construction). The result
  // is passed through Rng's splitmix64 expansion on use, so consecutive
  // tags need no extra avalanche here.
  constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
  constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
  std::uint64_t h = kFnvOffsetBasis ^ world_seed;
  for (const char c : tag) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= kFnvPrime;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(&s);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  // Rejection sampling removes modulo bias.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  have_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

void Rng::Permutation(std::size_t n, std::vector<std::size_t>* out) {
  out->resize(n);
  for (std::size_t i = 0; i < n; ++i) (*out)[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(UniformInt(i));
    std::swap((*out)[i - 1], (*out)[j]);
  }
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) {
    return static_cast<std::size_t>(UniformInt(weights.size()));
  }
  double target = Uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    target -= w;
    if (target <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

Rng::State Rng::SaveState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.s[i] = state_[i];
  state.have_cached_gaussian = have_cached_gaussian_;
  state.cached_gaussian = cached_gaussian_;
  return state;
}

void Rng::RestoreState(const State& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
  have_cached_gaussian_ = state.have_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

}  // namespace faction
