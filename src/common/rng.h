#ifndef FACTION_COMMON_RNG_H_
#define FACTION_COMMON_RNG_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace faction {

/// Derives a component sub-seed from a world seed and a textual tag by
/// folding the tag into an FNV-1a hash of the seed. Every independently
/// seeded component of a stream or scenario (prototype draws, group
/// offsets, each task's sample draws, label-noise layers, ...) takes its
/// own tag, so changing how much one component consumes — or whether it
/// runs at all — cannot perturb any other component's draws. Equal
/// (seed, tag) pairs always map to the same sub-seed.
std::uint64_t SubSeed(std::uint64_t world_seed, std::string_view tag);

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in the library draws from an explicitly seeded
/// Rng so that experiment runs are reproducible bit-for-bit: repeated runs of
/// the same configuration differ only through the run index that is folded
/// into the seed.
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield equal streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit value.
  std::uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t UniformInt(std::uint64_t n);

  /// Standard normal via Box-Muller (cached second draw).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli trial returning true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fills `out` with a uniformly random permutation of [0, n).
  void Permutation(std::size_t n, std::vector<std::size_t>* out);

  /// Draws an index in [0, weights.size()) proportionally to non-negative
  /// weights; falls back to uniform when all weights are zero.
  std::size_t Categorical(const std::vector<double>& weights);

  /// Derives an independent child generator; used to give each component of
  /// an experiment its own stream without coupling their consumption order.
  Rng Fork();

  /// Complete generator position: the four xoshiro256** state words plus
  /// the Box-Muller cached-draw latch. Capturing and restoring a State
  /// makes the future output sequence bitwise identical to the captured
  /// generator's — the primitive the session checkpoint codec
  /// (serve/state_codec.h) builds its replay-free restores on.
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    bool have_cached_gaussian = false;
    double cached_gaussian = 0.0;
  };

  State SaveState() const;
  void RestoreState(const State& state);

 private:
  std::uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace faction

#endif  // FACTION_COMMON_RNG_H_
