#include "common/telemetry.h"

#include <algorithm>

#include "common/table.h"

namespace faction {

std::atomic<Telemetry*> Telemetry::instance_{nullptr};

Telemetry* Telemetry::Enable() {
  // Function-local static: the registry outlives every user and is never
  // destroyed mid-run; Enable/Disable only flips the published pointer.
  static Telemetry global;
  instance_.store(&global, std::memory_order_release);
  return &global;
}

void Telemetry::Disable() {
  instance_.store(nullptr, std::memory_order_release);
}

int Telemetry::BucketIndex(double value) {
  if (!(value >= kFirstBound)) return 0;  // underflow (incl. NaN/negative)
  double bound = kFirstBound;
  for (int i = 0; i < kNumBuckets; ++i) {
    bound *= 2.0;
    if (value < bound) return i + 1;
  }
  return kNumBuckets + 1;  // overflow
}

void Telemetry::AddCounter(const std::string& name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void Telemetry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void Telemetry::Observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  Histogram& h = histograms_[name];
  if (h.snap.buckets.empty()) {
    h.snap.buckets.assign(static_cast<std::size_t>(kNumBuckets) + 2, 0);
  }
  if (h.snap.count == 0 || value < h.snap.min) h.snap.min = value;
  if (h.snap.count == 0 || value > h.snap.max) h.snap.max = value;
  ++h.snap.count;
  h.snap.sum += value;
  ++h.snap.buckets[static_cast<std::size_t>(BucketIndex(value))];
}

std::uint64_t Telemetry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Telemetry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

Telemetry::HistogramSnapshot Telemetry::HistogramFor(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    HistogramSnapshot empty;
    empty.buckets.assign(static_cast<std::size_t>(kNumBuckets) + 2, 0);
    return empty;
  }
  return it->second.snap;
}

std::vector<std::pair<std::string, std::uint64_t>> Telemetry::Counters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {counters_.begin(), counters_.end()};
}

std::vector<std::pair<std::string, double>> Telemetry::Gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {gauges_.begin(), gauges_.end()};
}

std::vector<std::string> Telemetry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& kv : histograms_) names.push_back(kv.first);
  return names;
}

void Telemetry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void Telemetry::WriteMarkdown(std::ostream& os) const {
  os << "## Telemetry\n\n";
  const auto counters = Counters();
  if (!counters.empty()) {
    Table table({"counter", "value"});
    for (const auto& kv : counters) {
      table.AddRow({kv.first, std::to_string(kv.second)});
    }
    table.Print(os);
    os << "\n";
  }
  const auto gauges = Gauges();
  if (!gauges.empty()) {
    Table table({"gauge", "value"});
    for (const auto& kv : gauges) {
      table.AddRow({kv.first, FormatCell(kv.second, 6)});
    }
    table.Print(os);
    os << "\n";
  }
  const auto names = HistogramNames();
  if (!names.empty()) {
    Table table({"histogram", "count", "mean", "min", "max"});
    for (const std::string& name : names) {
      const HistogramSnapshot snap = HistogramFor(name);
      const double mean =
          snap.count > 0 ? snap.sum / static_cast<double>(snap.count) : 0.0;
      table.AddRow({name, std::to_string(snap.count), FormatCell(mean, 6),
                    FormatCell(snap.count > 0 ? snap.min : 0.0, 6),
                    FormatCell(snap.count > 0 ? snap.max : 0.0, 6)});
    }
    table.Print(os);
    os << "\n";
  }
}

}  // namespace faction
