#ifndef FACTION_COMMON_STATS_H_
#define FACTION_COMMON_STATS_H_

#include <cmath>
#include <cstddef>
#include <vector>

namespace faction {

struct StateCodecAccess;  // serve/state_codec.cc checkpoint accessor

/// Streaming mean/variance accumulator (Welford). Used to aggregate repeated
/// experiment runs into the "mean ± std" numbers the paper reports.
class RunningStat {
 public:
  /// Adds one observation.
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }

  /// Population variance; 0 with fewer than two observations.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
  }

  double stddev() const { return std::sqrt(variance()); }

 private:
  friend struct StateCodecAccess;

  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Mean of a vector; 0 when empty.
double Mean(const std::vector<double>& xs);

/// Population standard deviation; 0 with fewer than two elements.
double StdDev(const std::vector<double>& xs);

/// Ordinary-least-squares slope of y against x. Returns 0 when fewer than
/// two points or when x is constant. Used by the theory bench to fit
/// log-log growth exponents for regret and fairness violation.
double OlsSlope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace faction

#endif  // FACTION_COMMON_STATS_H_
