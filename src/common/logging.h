#ifndef FACTION_COMMON_LOGGING_H_
#define FACTION_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace faction {

/// Log severities, ascending.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum severity that is emitted. Defaults to kInfo.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum severity.
LogLevel GetLogLevel();

/// Emits one formatted log line to stderr if `level` passes the filter.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

namespace internal_logging {

/// Stream-style accumulator used by the FACTION_LOG macro; writes on
/// destruction.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace faction

/// Usage: FACTION_LOG(kInfo) << "fitted " << n << " components";
#define FACTION_LOG(severity)                                     \
  ::faction::internal_logging::LogStream(                         \
      ::faction::LogLevel::severity, __FILE__, __LINE__)

// FACTION_CHECK and its variants live in common/check.h, the contracts
// layer built on top of this logger.

#endif  // FACTION_COMMON_LOGGING_H_
