#include "common/fsio.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace faction {

namespace {

std::atomic<std::uint64_t> g_fsync_calls{0};

/// Opens `path` read-only (O_DIRECTORY when `directory`), fsyncs the
/// descriptor, and closes it. Linux permits fsync on an O_RDONLY
/// descriptor, which syncs data written through any other descriptor.
Status FsyncPath(const std::string& path, bool directory) {
  int flags = O_RDONLY;
#ifdef O_DIRECTORY
  if (directory) flags |= O_DIRECTORY;
#endif
  const int fd = ::open(path.c_str(), flags);  // NOLINT(*-vararg)
  if (fd < 0) {
    return Status::NotFound("fsio: cannot open " + path + " for fsync: " +
                            std::strerror(errno));
  }
  g_fsync_calls.fetch_add(1, std::memory_order_relaxed);
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("fsio: fsync failed for " + path + ": " +
                            std::strerror(saved_errno));
  }
  return Status::Ok();
}

}  // namespace

bool FsyncEnabled() {
  // Read per call (not cached): tests toggle the escape hatch with setenv
  // around individual saves, and saves are cold control-plane operations.
  return std::getenv("FACTION_NO_FSYNC") == nullptr;
}

Status SyncFile(const std::string& path) {
  if (!FsyncEnabled()) return Status::Ok();
  return FsyncPath(path, /*directory=*/false);
}

Status SyncParentDir(const std::string& path) {
  if (!FsyncEnabled()) return Status::Ok();
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : (slash == 0 ? "/" : path.substr(0, slash));
  return FsyncPath(dir, /*directory=*/true);
}

Status CommitFileDurable(const std::string& tmp_path,
                         const std::string& final_path) {
  Status synced = SyncFile(tmp_path);
  if (!synced.ok()) {
    std::remove(tmp_path.c_str());
    return synced;
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Internal("fsio: cannot rename " + tmp_path + " to " +
                            final_path + ": " + std::strerror(errno));
  }
  // The rename itself must reach disk: sync the directory that now holds
  // the final entry. Failure here leaves a consistent (already renamed)
  // file; report it so callers relying on durability see the problem.
  return SyncParentDir(final_path);
}

std::uint64_t FsyncCallsForTest() {
  return g_fsync_calls.load(std::memory_order_relaxed);
}

}  // namespace faction
