#include "common/check.h"

#include <cstdlib>

namespace faction {
namespace internal_check {

namespace {

[[noreturn]] void FailWith(const char* file, int line,
                           const std::string& message) {
  LogMessage(LogLevel::kError, file, line, message);
  std::abort();
}

}  // namespace

void CheckFailed(const char* file, int line, const std::string& message) {
  FailWith(file, line, message);
}

void CheckOpFailed(const char* file, int line, const char* expr,
                   const std::string& lhs, const std::string& rhs) {
  FailWith(file, line,
           std::string(expr) + " (lhs=" + lhs + ", rhs=" + rhs + ")");
}

void CheckFiniteFailed(const char* file, int line, const char* expr,
                       double value) {
  FailWith(file, line, std::string("CHECK_FINITE failed: ") + expr + " = " +
                           std::to_string(value));
}

void ShapeMismatch(const char* file, int line, const char* expr,
                   std::size_t got_rows, std::size_t got_cols,
                   std::size_t want_rows, std::size_t want_cols) {
  FailWith(file, line,
           std::string("CHECK_SHAPE failed: ") + expr + " (got " +
               std::to_string(got_rows) + "x" + std::to_string(got_cols) +
               ", want " + std::to_string(want_rows) + "x" +
               std::to_string(want_cols) + ")");
}

void LengthMismatch(const char* file, int line, const char* expr,
                    std::size_t got, std::size_t want) {
  FailWith(file, line, std::string("CHECK_LEN failed: ") + expr + " (got " +
                           std::to_string(got) + ", want " +
                           std::to_string(want) + ")");
}

void CheckAllFinite(const char* file, int line, const char* expr,
                    const double* values, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(values[i])) {
      FailWith(file, line, std::string("CHECK_FINITE_ALL failed: ") + expr +
                               "[" + std::to_string(i) + "] = " +
                               std::to_string(values[i]) + " (of " +
                               std::to_string(n) + " elements)");
    }
  }
}

}  // namespace internal_check
}  // namespace faction
